// Invariant checker and watchdog tests: injected violations must be caught
// with block/node/cycle diagnostics, injected hangs must trip the watchdog,
// and the checker must be a pure observer (identical cycle counts on/off).
#include "obs/invariants.hpp"

#include "harness/machine.hpp"
#include "harness/stress.hpp"
#include "harness/workloads.hpp"

#include <gtest/gtest.h>

#include <string>

namespace {

using namespace ccsim;
using harness::DeadlockError;
using harness::Machine;
using harness::MachineConfig;
using obs::InvariantViolation;

MachineConfig checked(proto::Protocol p, unsigned nprocs = 2) {
  MachineConfig cfg;
  cfg.protocol = p;
  cfg.nprocs = nprocs;
  cfg.obs.check_invariants = true;
  return cfg;
}

TEST(InvariantChecker, CleanRunsPassOnAllProtocols) {
  for (proto::Protocol p :
       {proto::Protocol::WI, proto::Protocol::PU, proto::Protocol::CU}) {
    Machine m(checked(p));
    const Addr a = m.alloc().allocate_on(0, 8, "word");
    m.run_all([&](cpu::Cpu& c) -> sim::Task {
      co_await c.store(a + 0, 1 + c.id());  // both write the same word: races
      co_await c.fence();                   // are legal, corruption is not
      (void)co_await c.load(a);
    });
    EXPECT_GT(m.invariant_checks(), 0u) << proto::to_string(p);
  }
}

TEST(InvariantChecker, InjectedSecondWritableCopyFailsTheAudit) {
  Machine m(checked(proto::Protocol::WI));
  const Addr a = m.alloc().allocate_on(0, 8, "victim");
  const mem::BlockAddr b = mem::block_of(a);
  try {
    m.run({[&](cpu::Cpu& c) -> sim::Task {
      co_await c.store(a, 7);
      co_await c.fence();  // block is now Modified in cache 0
      // Inject the violation: forge a second writable copy in cache 1.
      mem::CacheLine& l = m.node(1).cache_ctrl().cache().set_for(b);
      l.block = b;
      l.state = mem::LineState::Modified;
    }});
    FAIL() << "expected an InvariantViolation";
  } catch (const InvariantViolation& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("victim"), std::string::npos) << "symbolic name missing";
    EXPECT_NE(msg.find("Exclusive"), std::string::npos) << msg;
    EXPECT_NE(msg.find("1:Modified"), std::string::npos)
        << "forged holder missing from the cache listing:\n"
        << msg;
  }
}

TEST(InvariantChecker, InjectedSecondWritableCopyIsCaughtOnTheFly) {
  // Forge the extra writable copy while the run is still going: the next
  // upgrade's on_writable notification must trip the continuous SWMR check
  // (not just the final audit).
  Machine m(checked(proto::Protocol::WI));
  const Addr a = m.alloc().allocate_on(0, 8, "victim");
  const Addr other = m.alloc().allocate_on(1, 8, "other");
  const mem::BlockAddr b = mem::block_of(a);
  EXPECT_THROW(
      m.run({[&](cpu::Cpu& c) -> sim::Task {
        co_await c.store(other, 1);
        co_await c.fence();
        mem::CacheLine& l = m.node(1).cache_ctrl().cache().set_for(b);
        l.block = b;
        l.state = mem::LineState::Modified;
        co_await c.store(a, 7);  // cache 0 acquires a writable copy of b
        co_await c.fence();
      }}),
      InvariantViolation);
}

TEST(InvariantChecker, CorruptedCacheDataFailsTheAudit) {
  Machine m(checked(proto::Protocol::WI));
  const Addr a = m.alloc().allocate_on(0, 8, "victim");
  try {
    m.run({[&](cpu::Cpu& c) -> sim::Task {
      co_await c.store(a, 7);
      co_await c.fence();
      // Flip the dirty copy behind the protocol's back: the final audit
      // compares it against shadow memory (which remembers 7).
      m.node(0).cache_ctrl().cache().write(a, 8, 99);
    }});
    FAIL() << "expected an InvariantViolation";
  } catch (const InvariantViolation& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("data mismatch at quiescence"), std::string::npos) << msg;
    EXPECT_NE(msg.find("victim"), std::string::npos);
    EXPECT_NE(msg.find("0x63"), std::string::npos) << msg;  // the corrupted 99
    EXPECT_NE(msg.find("0x7"), std::string::npos) << msg;   // the real value
  }
}

TEST(InvariantChecker, CorruptedValueIsCaughtAtTheReadingProcessor) {
  // The same corruption, but observed by a later load: the read-membership
  // check fires at the reader, mid-run.
  Machine m(checked(proto::Protocol::WI));
  const Addr a = m.alloc().allocate_on(0, 8, "victim");
  try {
    m.run({[&](cpu::Cpu& c) -> sim::Task {
      co_await c.store(a, 7);
      co_await c.fence();
      m.node(0).cache_ctrl().cache().write(a, 8, 99);
      (void)co_await c.load(a);  // hits the corrupted line
    }});
    FAIL() << "expected an InvariantViolation";
  } catch (const InvariantViolation& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("no write produced"), std::string::npos) << msg;
    EXPECT_NE(msg.find("by node 0"), std::string::npos) << msg;
  }
}

TEST(InvariantChecker, HybridIsRejected) {
  MachineConfig cfg = checked(proto::Protocol::Hybrid);
  EXPECT_THROW({ Machine m(cfg); }, std::invalid_argument);
}

TEST(InvariantChecker, ObserverDoesNotChangeSimulatedCycles) {
  for (proto::Protocol p :
       {proto::Protocol::WI, proto::Protocol::PU, proto::Protocol::CU}) {
    harness::LockParams lp;
    lp.total_acquires = 64;
    MachineConfig plain;
    plain.protocol = p;
    plain.nprocs = 4;
    MachineConfig check = plain;
    check.obs.check_invariants = true;
    const auto base =
        harness::run_lock_experiment(plain, harness::LockKind::Ticket, lp);
    const auto audited =
        harness::run_lock_experiment(check, harness::LockKind::Ticket, lp);
    EXPECT_EQ(base.cycles, audited.cycles) << proto::to_string(p);
    EXPECT_EQ(base.invariant_checks, 0u);
    EXPECT_GT(audited.invariant_checks, 0u);
  }
}

TEST(Watchdog, LostWakeupDrainsTheQueueAndThrowsDeadlockError) {
  MachineConfig cfg;
  cfg.nprocs = 2;
  cfg.trace = true;
  Machine m(cfg);
  const Addr a = m.alloc().allocate_on(0, 8, "flag");
  std::vector<Machine::Program> ps;
  ps.push_back([&](cpu::Cpu& c) -> sim::Task {
    co_await c.spin_until(a, [](std::uint64_t v) { return v == 1; });
  });
  try {
    m.run(ps);
    FAIL() << "expected a DeadlockError";
  } catch (const DeadlockError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("drained with programs waiting"), std::string::npos);
    EXPECT_NE(msg.find("stuck processors: 0"), std::string::npos) << msg;
    EXPECT_NE(msg.find("node occupancy"), std::string::npos) << msg;
    EXPECT_NE(msg.find("last trace events"), std::string::npos) << msg;
  }
}

TEST(Watchdog, LivelockTripsTheStallBound) {
  // The queue never drains (processor 1 thinks forever) but no memory
  // operation completes after the spin's first fill: only the stall-bound
  // watchdog can catch this.
  MachineConfig cfg;
  cfg.nprocs = 2;
  cfg.watchdog_stall_cycles = 5000;
  Machine m(cfg);
  const Addr a = m.alloc().allocate_on(0, 8, "flag");
  std::vector<Machine::Program> ps;
  ps.push_back([&](cpu::Cpu& c) -> sim::Task {
    co_await c.spin_until(a, [](std::uint64_t v) { return v == 1; });
  });
  ps.push_back([](cpu::Cpu& c) -> sim::Task {
    for (;;) co_await c.think(50);
  });
  try {
    m.run(ps);
    FAIL() << "expected a DeadlockError";
  } catch (const DeadlockError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("watchdog"), std::string::npos) << msg;
    EXPECT_NE(msg.find("cycle"), std::string::npos) << msg;
  }
}

TEST(Watchdog, DoesNotFireOnAHealthyRun) {
  MachineConfig cfg;
  cfg.nprocs = 4;
  cfg.watchdog_stall_cycles = 100000;
  Machine m(cfg);
  const Addr a = m.alloc().allocate_on(0, 8);
  EXPECT_NO_THROW(m.run_all([&](cpu::Cpu& c) -> sim::Task {
    for (int i = 0; i < 50; ++i) {
      co_await c.fetch_add(a, 1);
      co_await c.think(200);
    }
  }));
  EXPECT_EQ(m.peek(a), 4u * 50u);
}

TEST(Watchdog, StallBoundDoesNotChangeSimulatedCycles) {
  harness::LockParams lp;
  lp.total_acquires = 64;
  MachineConfig plain;
  plain.nprocs = 4;
  MachineConfig watched = plain;
  watched.watchdog_stall_cycles = 1'000'000;
  const auto a = harness::run_lock_experiment(plain, harness::LockKind::Ticket, lp);
  const auto b = harness::run_lock_experiment(watched, harness::LockKind::Ticket, lp);
  EXPECT_EQ(a.cycles, b.cycles);
}

} // namespace
