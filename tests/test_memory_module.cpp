// Unit tests for the memory module: data storage and bank contention.
#include "mem/memory_module.hpp"

#include <gtest/gtest.h>

namespace {

using namespace ccsim;
using namespace ccsim::mem;
using AK = MemoryModule::AccessKind;

TEST(MemoryModule, ZeroInitialized) {
  MemoryModule m;
  EXPECT_EQ(m.read_word(kSharedBase, 8), 0u);
}

TEST(MemoryModule, WordReadBack) {
  MemoryModule m;
  m.write_word(kSharedBase + 16, 8, 0xdeadbeefcafef00dull);
  EXPECT_EQ(m.read_word(kSharedBase + 16, 8), 0xdeadbeefcafef00dull);
  EXPECT_EQ(m.read_word(kSharedBase + 16, 4), 0xcafef00du);
  m.write_word(kSharedBase + 20, 1, 0x42);
  EXPECT_EQ(m.read_word(kSharedBase + 20, 1), 0x42u);
}

TEST(MemoryModule, BlockReadWriteRoundTrip) {
  MemoryModule m;
  std::array<std::byte, kBlockSize> blk{};
  blk[0] = std::byte{0xaa};
  blk[63] = std::byte{0x55};
  const BlockAddr b = block_of(kSharedBase);
  m.write_block(b, blk);
  EXPECT_EQ(m.read_block(b)[0], std::byte{0xaa});
  EXPECT_EQ(m.read_block(b)[63], std::byte{0x55});
  // word view of the same data
  EXPECT_EQ(m.read_word(kSharedBase, 1), 0xaau);
}

TEST(MemoryModule, BankTimingDefaults) {
  MemoryModule m;  // block_read = 20 + 7 per the paper's 20-cycle first word
  EXPECT_EQ(m.book(0, AK::BlockRead), 27u);
  EXPECT_EQ(m.book(100, AK::WordRead), 120u);
}

TEST(MemoryModule, BankContentionSerializes) {
  MemoryModule m;
  const Cycle t1 = m.book(0, AK::BlockRead);   // 0 -> 27
  const Cycle t2 = m.book(5, AK::BlockRead);   // queued: 27 -> 54
  const Cycle t3 = m.book(60, AK::DirOnly);    // idle again: 60 -> 62
  EXPECT_EQ(t1, 27u);
  EXPECT_EQ(t2, 54u);
  EXPECT_EQ(t3, 62u);
}

TEST(MemoryModule, CustomTimings) {
  MemTimings t;
  t.block_read = 10;
  t.dir_op = 1;
  MemoryModule m(t);
  EXPECT_EQ(m.book(0, AK::BlockRead), 10u);
  EXPECT_EQ(m.book(10, AK::DirOnly), 11u);
}

} // namespace
