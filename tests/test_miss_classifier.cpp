// Scenario tests for the miss classifier, straight from the definitions in
// section 3.2 of the paper.
#include "stats/miss_classifier.hpp"

#include <gtest/gtest.h>

namespace {

using namespace ccsim;
using namespace ccsim::stats;

struct Fixture : ::testing::Test {
  Counters counters;
  MissClassifier mc{4, counters};
  const Addr base = mem::kSharedBase;
  const mem::BlockAddr b = mem::block_of(mem::kSharedBase);

  std::uint64_t count(MissClass c) const { return counters.misses[c]; }
};

TEST_F(Fixture, FirstReferenceIsColdStart) {
  EXPECT_EQ(mc.classify_miss(0, base), MissClass::Cold);
  EXPECT_EQ(count(MissClass::Cold), 1u);
}

TEST_F(Fixture, EachProcessorHasItsOwnColdMiss) {
  mc.classify_miss(0, base);
  mc.on_fill(0, b);
  EXPECT_EQ(mc.classify_miss(1, base), MissClass::Cold);
  EXPECT_EQ(count(MissClass::Cold), 2u);
}

TEST_F(Fixture, TrueSharingWhenInvalidatingWordIsReferenced) {
  // P0 caches the block; P1 writes word 0, invalidating P0; P0 re-reads
  // word 0 -> true sharing.
  mc.classify_miss(0, base);
  mc.on_fill(0, b);
  mc.on_invalidated(0, b, base);  // trigger word 0
  mc.on_store(1, base);
  EXPECT_EQ(mc.classify_miss(0, base), MissClass::TrueSharing);
}

TEST_F(Fixture, FalseSharingWhenOnlyOtherWordsWereWritten) {
  mc.classify_miss(0, base);
  mc.on_fill(0, b);
  mc.on_invalidated(0, b, base + 8);  // P1 wrote word 1
  mc.on_store(1, base + 8);
  // P0 re-reads word 0, which nobody wrote -> false sharing.
  EXPECT_EQ(mc.classify_miss(0, base), MissClass::FalseSharing);
}

TEST_F(Fixture, TriggerWordAloneSufficesWithoutVersionBump) {
  // The invalidating write's own word counts even if on_store arrives
  // later (e.g. still in the writer's pipeline).
  mc.classify_miss(0, base);
  mc.on_fill(0, b);
  mc.on_invalidated(0, b, base + 16);
  EXPECT_EQ(mc.classify_miss(0, base + 16), MissClass::TrueSharing);
}

TEST_F(Fixture, WritesAfterLossUpgradeFalseToTrue) {
  mc.classify_miss(0, base);
  mc.on_fill(0, b);
  mc.on_invalidated(0, b, base + 8);
  // Another processor writes word 3 while P0's copy is dead.
  mc.on_store(2, base + 24);
  EXPECT_EQ(mc.classify_miss(0, base + 24), MissClass::TrueSharing);
}

TEST_F(Fixture, EvictionMissRegardlessOfInterveningWrites) {
  mc.classify_miss(0, base);
  mc.on_fill(0, b);
  mc.on_evicted(0, b);
  mc.on_store(1, base);  // write after the replacement
  EXPECT_EQ(mc.classify_miss(0, base), MissClass::Eviction);
}

TEST_F(Fixture, DropMissAfterCompetitiveInvalidation) {
  mc.classify_miss(0, base);
  mc.on_fill(0, b);
  mc.on_dropped(0, b);
  EXPECT_EQ(mc.classify_miss(0, base), MissClass::Drop);
}

TEST_F(Fixture, RefillResetsLossState) {
  mc.classify_miss(0, base);
  mc.on_fill(0, b);
  mc.on_evicted(0, b);
  mc.classify_miss(0, base);
  mc.on_fill(0, b);
  mc.on_invalidated(0, b, base);
  // The eviction from before the refill must not leak through.
  EXPECT_EQ(mc.classify_miss(0, base), MissClass::TrueSharing);
}

TEST_F(Fixture, ExclusiveRequestsCountedSeparately) {
  mc.on_exclusive_request(0);
  mc.on_exclusive_request(1);
  EXPECT_EQ(counters.misses.exclusive_requests, 2u);
  EXPECT_EQ(counters.misses.total(), 0u) << "upgrades are not misses";
}

TEST_F(Fixture, UsefulVersusUseless) {
  mc.classify_miss(0, base);  // cold: useful
  mc.on_fill(0, b);
  mc.on_invalidated(0, b, base);
  mc.classify_miss(0, base);  // true sharing: useful
  mc.on_fill(0, b);
  mc.on_evicted(0, b);
  mc.classify_miss(0, base);  // eviction: useless
  EXPECT_EQ(counters.misses.useful(), 2u);
  EXPECT_EQ(counters.misses.useless(), 1u);
}

TEST_F(Fixture, PrivateAddressesIgnoredByStoreTracking) {
  mc.on_store(0, 0x100);  // below the shared base: no effect, no crash
  EXPECT_EQ(counters.misses.total(), 0u);
}

} // namespace
