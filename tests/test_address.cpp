// Unit tests for address arithmetic.
#include "mem/address.hpp"

#include <gtest/gtest.h>

namespace {

using namespace ccsim::mem;

TEST(Address, BlockOfAndBase) {
  EXPECT_EQ(block_of(0), 0u);
  EXPECT_EQ(block_of(63), 0u);
  EXPECT_EQ(block_of(64), 1u);
  EXPECT_EQ(block_of(kSharedBase), kSharedBase / 64);
  EXPECT_EQ(block_base(block_of(kSharedBase + 100)), kSharedBase + 64);
}

TEST(Address, WordIndexCyclesWithinBlock) {
  const ccsim::Addr base = kSharedBase;
  for (unsigned w = 0; w < kWordsPerBlock; ++w) {
    EXPECT_EQ(word_of(base + w * kWordSize), w);
    EXPECT_EQ(word_of(base + w * kWordSize + 3), w) << "mid-word bytes share the word";
  }
  EXPECT_EQ(word_of(base + kBlockSize), 0u);
}

TEST(Address, OffsetOf) {
  EXPECT_EQ(offset_of(kSharedBase), 0u);
  EXPECT_EQ(offset_of(kSharedBase + 17), 17u);
  EXPECT_EQ(offset_of(kSharedBase + 64 + 5), 5u);
}

TEST(Address, WithinWord) {
  EXPECT_TRUE(within_word(kSharedBase, 8));
  EXPECT_TRUE(within_word(kSharedBase + 4, 4));
  EXPECT_TRUE(within_word(kSharedBase + 7, 1));
  EXPECT_FALSE(within_word(kSharedBase + 4, 8));  // straddles two words
  EXPECT_FALSE(within_word(kSharedBase + 1, 8));
}

TEST(Address, SharedPredicate) {
  EXPECT_FALSE(is_shared(0));
  EXPECT_FALSE(is_shared(kSharedBase - 1));
  EXPECT_TRUE(is_shared(kSharedBase));
  EXPECT_TRUE(is_shared(kSharedBase + (1 << 20)));
}

TEST(Address, GeometryConstants) {
  EXPECT_EQ(kBlockSize, 64u);
  EXPECT_EQ(kWordSize, 8u);
  EXPECT_EQ(kWordsPerBlock, 8u);
}

} // namespace
