// Atomic-primitive reductions: exactness of the fetch_and_add sum and the
// CAS-loop maximum under contention, across protocols and sizes.
#include "ccsim.hpp"

#include <gtest/gtest.h>

#include <tuple>

namespace {

using namespace ccsim;
using harness::Machine;
using harness::MachineConfig;
using proto::Protocol;

using Combo = std::tuple<Protocol, unsigned>;

std::string combo_name(const ::testing::TestParamInfo<Combo>& info) {
  return std::string(proto::to_string(std::get<0>(info.param))) + "_" +
         std::to_string(std::get<1>(info.param));
}

class AtomicReduction : public ::testing::TestWithParam<Combo> {};

INSTANTIATE_TEST_SUITE_P(
    Sweep, AtomicReduction,
    ::testing::Combine(::testing::Values(Protocol::WI, Protocol::PU, Protocol::CU),
                       ::testing::Values(1u, 2u, 8u, 16u)),
    combo_name);

TEST_P(AtomicReduction, SumIsExactEveryRound) {
  const auto& [p, n] = GetParam();
  MachineConfig cfg;
  cfg.protocol = p;
  cfg.nprocs = n;
  Machine m(cfg);
  sync::MagicBarrier barrier(m.queue(), n);
  sync::AtomicSumReduction red(m, barrier);

  const int rounds = 20;
  // Running sum oracle: value of proc q in round r is q + 1 + r.
  std::uint64_t running = 0;
  std::vector<std::uint64_t> oracle;
  for (int r = 0; r < rounds; ++r) {
    for (unsigned q = 0; q < n; ++q) running += q + 1 + r;
    oracle.push_back(running);
  }
  m.run_all([&](cpu::Cpu& c) -> sim::Task {
    for (int r = 0; r < rounds; ++r) {
      std::uint64_t result = 0;
      co_await red.reduce(c, c.id() + 1 + r, &result);
      if (result != oracle[r]) throw std::logic_error("wrong atomic sum");
    }
  });
  EXPECT_EQ(m.peek(red.sum_addr()), oracle.back());
}

TEST_P(AtomicReduction, CasMaxMatchesOracle) {
  const auto& [p, n] = GetParam();
  MachineConfig cfg;
  cfg.protocol = p;
  cfg.nprocs = n;
  Machine m(cfg);
  sync::MagicBarrier barrier(m.queue(), n);
  sync::CasMaxReduction red(m, barrier);

  const int rounds = 20;
  const auto value = [n = n](int r, NodeId q) {
    sim::Rng rng(sim::Rng::derive(0xabc ^ (r * 131), q));
    return rng.below(1u << 30);
  };
  std::uint64_t running = 0;
  std::vector<std::uint64_t> oracle;
  for (int r = 0; r < rounds; ++r) {
    for (unsigned q = 0; q < n; ++q) running = std::max(running, value(r, q));
    oracle.push_back(running);
  }
  m.run_all([&](cpu::Cpu& c) -> sim::Task {
    for (int r = 0; r < rounds; ++r) {
      std::uint64_t result = 0;
      co_await red.reduce(c, value(r, c.id()), &result);
      if (result != oracle[r]) throw std::logic_error("wrong CAS max");
    }
  });
  EXPECT_EQ(m.peek(red.max_addr()), oracle.back());
}

TEST_P(AtomicReduction, CasMaxAllWritersSimultaneously) {
  // Worst case: every processor's candidate beats the current global, so
  // CAS retries collide hard. The result must still be the true max.
  const auto& [p, n] = GetParam();
  MachineConfig cfg;
  cfg.protocol = p;
  cfg.nprocs = n;
  Machine m(cfg);
  sync::MagicBarrier barrier(m.queue(), n);
  sync::CasMaxReduction red(m, barrier);
  m.run_all([&](cpu::Cpu& c) -> sim::Task {
    std::uint64_t result = 0;
    co_await red.reduce(c, 1000 + c.id(), &result);
    if (result != 1000 + m.nprocs() - 1) throw std::logic_error("lost max");
  });
}

TEST(AtomicReductionTraffic, SumUnderPUIsHomeCombining) {
  // Under PU the fetch_and_add executes at the home: P contributions cost
  // P AtomicReq/AtomicReply pairs, with no lock and no block ping-pong.
  MachineConfig cfg;
  cfg.protocol = Protocol::PU;
  cfg.nprocs = 8;
  Machine m(cfg);
  sync::MagicBarrier barrier(m.queue(), 8);
  sync::AtomicSumReduction red(m, barrier);
  m.run_all([&](cpu::Cpu& c) -> sim::Task {
    for (int r = 0; r < 10; ++r) co_await red.reduce(c, 1);
  });
  const auto& net = m.counters().net;
  EXPECT_EQ(net.of(net::MsgType::AtomicReq), 80u);
  EXPECT_EQ(net.of(net::MsgType::AtomicReply), 80u);
  EXPECT_EQ(net.of(net::MsgType::GetX), 0u) << "no exclusive ping-pong under PU";
}

TEST(AtomicReductionTraffic, SumUnderWIPingPongsTheBlock) {
  MachineConfig cfg;
  cfg.protocol = Protocol::WI;
  cfg.nprocs = 8;
  Machine m(cfg);
  sync::MagicBarrier barrier(m.queue(), 8);
  sync::AtomicSumReduction red(m, barrier);
  m.run_all([&](cpu::Cpu& c) -> sim::Task {
    for (int r = 0; r < 10; ++r) co_await red.reduce(c, 1);
  });
  const auto& net = m.counters().net;
  EXPECT_EQ(net.of(net::MsgType::AtomicReq), 0u) << "WI atomics run in the cache";
  EXPECT_GT(net.of(net::MsgType::GetX) + net.of(net::MsgType::Upgrade), 50u);
}

} // namespace
