// Hybrid (per-region protocol) machine: correctness of mixed-domain
// programs, per-domain traffic signatures, fences spanning domains, and
// the paper's punchline -- binding each construct to its best protocol
// beats any single-protocol machine.
#include "ccsim.hpp"

#include <gtest/gtest.h>

namespace {

using namespace ccsim;
using harness::Machine;
using harness::MachineConfig;
using proto::Protocol;

MachineConfig hybrid(unsigned n, Protocol def = Protocol::WI) {
  MachineConfig c;
  c.protocol = Protocol::Hybrid;
  c.hybrid_default = def;
  c.nprocs = n;
  return c;
}

void bind_dissemination(Machine& m, sync::DisseminationBarrier& b, Protocol p) {
  for (NodeId i = 0; i < m.nprocs(); ++i)
    for (unsigned parity = 0; parity < 2; ++parity)
      for (unsigned r = 0; r < b.rounds(); ++r)
        m.bind_protocol(b.flag_addr(i, parity, r), mem::kBlockSize, p);
}

void bind_mcs(Machine& m, sync::McsLock& l, Protocol p) {
  m.bind_protocol(l.tail_addr(), mem::kWordSize, p);
  for (NodeId i = 0; i < m.nprocs(); ++i)
    m.bind_protocol(l.qnode_addr(i), 2 * mem::kWordSize, p);
}

TEST(Hybrid, BindRequiresHybridMachine) {
  MachineConfig cfg;
  cfg.protocol = Protocol::WI;
  Machine m(cfg);
  const Addr a = m.alloc().allocate_on(0, 8);
  EXPECT_THROW(m.bind_protocol(a, 8, Protocol::PU), std::logic_error);
}

TEST(Hybrid, MixedDomainsProduceMixedTrafficSignatures) {
  Machine m(hybrid(2));
  const Addr wi_region = m.alloc().allocate_on(1, 8);
  const Addr pu_region = m.alloc().allocate_on(1, 8);
  m.bind_protocol(wi_region, 8, Protocol::WI);
  m.bind_protocol(pu_region, 8, Protocol::PU);

  std::vector<Machine::Program> ps;
  ps.push_back([&](cpu::Cpu& c) -> sim::Task {  // reader caches both
    (void)co_await c.load(wi_region);
    (void)co_await c.load(pu_region);
    co_await c.spin_until(pu_region, [](std::uint64_t v) { return v == 5; });
    EXPECT_EQ(co_await c.load(wi_region), 5u);
  });
  ps.push_back([&](cpu::Cpu& c) -> sim::Task {  // writer touches both
    co_await c.think(300);
    for (int k = 1; k <= 5; ++k) {
      co_await c.store(wi_region, static_cast<std::uint64_t>(k));
      co_await c.store(pu_region, static_cast<std::uint64_t>(k));
      co_await c.fence();  // spans both domains
    }
  });
  m.run(ps);
  // WI-bound traffic invalidates; PU-bound traffic updates.
  EXPECT_GT(m.counters().net.of(net::MsgType::Inval), 0u);
  EXPECT_GT(m.counters().net.of(net::MsgType::Update), 0u);
  EXPECT_GE(m.counters().updates[stats::UpdateClass::TrueSharing], 4u);
}

TEST(Hybrid, DefaultDomainUsesHybridDefault) {
  Machine m(hybrid(2, Protocol::PU));
  const Addr a = m.alloc().allocate_on(1, 8);  // unbound -> PU
  std::vector<Machine::Program> ps;
  ps.push_back([&](cpu::Cpu& c) -> sim::Task {
    (void)co_await c.load(a);
    co_await c.spin_until(a, [](std::uint64_t v) { return v == 1; });
  });
  ps.push_back([&](cpu::Cpu& c) -> sim::Task {
    co_await c.think(200);
    co_await c.store(a, 1);
    co_await c.fence();
  });
  m.run(ps);
  EXPECT_GT(m.counters().net.of(net::MsgType::Update), 0u);
  EXPECT_EQ(m.counters().net.of(net::MsgType::Inval), 0u);
}

TEST(Hybrid, ConstructsRunCorrectlyInTheirDomains) {
  const unsigned n = 8;
  Machine m(hybrid(n));
  sync::McsLock lock(m);
  sync::DisseminationBarrier barrier(m);
  bind_mcs(m, lock, Protocol::CU);
  bind_dissemination(m, barrier, Protocol::PU);
  const Addr ctr = m.alloc().allocate_on(0, 8);
  m.bind_protocol(ctr, 8, Protocol::WI);

  m.run_all([&](cpu::Cpu& c) -> sim::Task {
    for (int i = 0; i < 12; ++i) {
      co_await lock.acquire(c);
      const std::uint64_t v = co_await c.load(ctr);
      co_await c.store(ctr, v + 1);
      co_await lock.release(c);
      co_await barrier.wait(c);
    }
  });
  EXPECT_EQ(m.peek(ctr), 12u * n);
  // All three engines saw action: CU drops possible, PU updates certain,
  // WI exclusive requests certain.
  EXPECT_GT(m.counters().net.of(net::MsgType::Update), 0u);
  EXPECT_GT(m.counters().net.of(net::MsgType::GetX) +
                m.counters().net.of(net::MsgType::Upgrade),
            0u);
}

TEST(Hybrid, AtomicsRouteToTheirDomainEngine) {
  Machine m(hybrid(4));
  const Addr wi_ctr = m.alloc().allocate_on(0, 8);
  const Addr pu_ctr = m.alloc().allocate_on(0, 8);
  m.bind_protocol(wi_ctr, 8, Protocol::WI);
  m.bind_protocol(pu_ctr, 8, Protocol::PU);
  m.run_all([&](cpu::Cpu& c) -> sim::Task {
    for (int i = 0; i < 10; ++i) {
      (void)co_await c.fetch_add(wi_ctr, 1);
      (void)co_await c.fetch_add(pu_ctr, 1);
    }
  });
  EXPECT_EQ(m.peek(wi_ctr), 40u);
  EXPECT_EQ(m.peek(pu_ctr), 40u);
  // PU atomics run at the home; WI atomics in the cache.
  EXPECT_EQ(m.counters().net.of(net::MsgType::AtomicReq), 40u);
}

TEST(Hybrid, BestOfBothBeatsPureMachines) {
  // The paper's conclusion, executed: a lock-heavy + barrier-heavy loop
  // where the best lock protocol (CU) and best barrier protocol (PU)
  // differ... within one application. The hybrid machine binding each
  // construct to its preferred protocol must beat every pure machine.
  const unsigned n = 16;
  const int rounds = 40;
  const auto run_pure = [&](Protocol p) {
    MachineConfig cfg;
    cfg.protocol = p;
    cfg.nprocs = n;
    Machine m(cfg);
    sync::McsLock lock(m);
    sync::DisseminationBarrier barrier(m);
    return m.run_all([&](cpu::Cpu& c) -> sim::Task {
      for (int i = 0; i < rounds; ++i) {
        co_await lock.acquire(c);
        co_await c.think(30);
        co_await lock.release(c);
        co_await barrier.wait(c);
      }
    });
  };
  const auto run_hybrid = [&] {
    Machine m(hybrid(n));
    sync::McsLock lock(m);
    sync::DisseminationBarrier barrier(m);
    bind_mcs(m, lock, Protocol::CU);
    bind_dissemination(m, barrier, Protocol::PU);
    return m.run_all([&](cpu::Cpu& c) -> sim::Task {
      for (int i = 0; i < rounds; ++i) {
        co_await lock.acquire(c);
        co_await c.think(30);
        co_await lock.release(c);
        co_await barrier.wait(c);
      }
    });
  };
  const Cycle hy = run_hybrid();
  EXPECT_LE(hy, run_pure(Protocol::WI));
  EXPECT_LE(hy, run_pure(Protocol::PU));
  EXPECT_LE(hy, run_pure(Protocol::CU) * 101 / 100);
}

TEST(Hybrid, PunchlineLockWantsCuBarrierWantsWi) {
  // The conflicting-preferences pairing (see bench/abl_hybrid): MCS lock
  // (best under CU) + centralized barrier (best under WI at scale) in one
  // loop. The hybrid binding must beat every pure machine at P=32.
  const unsigned n = 32;
  const int rounds = 25;
  const auto run = [&](Protocol machine, bool bind) {
    MachineConfig cfg;
    cfg.protocol = machine;
    cfg.nprocs = n;
    Machine m(cfg);
    sync::McsLock lock(m);
    sync::CentralBarrier barrier(m);
    if (bind) {
      bind_mcs(m, lock, Protocol::CU);
      m.bind_protocol(barrier.count_addr(), 2 * mem::kWordSize, Protocol::WI);
    }
    return m.run_all([&](cpu::Cpu& c) -> sim::Task {
      for (int i = 0; i < rounds; ++i) {
        co_await lock.acquire(c);
        co_await c.think(50);
        co_await lock.release(c);
        co_await barrier.wait(c);
      }
    });
  };
  const Cycle hy = run(Protocol::Hybrid, true);
  EXPECT_LT(hy, run(Protocol::WI, false));
  EXPECT_LT(hy, run(Protocol::PU, false));
  EXPECT_LT(hy, run(Protocol::CU, false));
}

TEST(Hybrid, DeterministicLikeEverythingElse) {
  const auto once = [&] {
    Machine m(hybrid(4));
    const Addr a = m.alloc().allocate_on(0, 8);
    const Addr b = m.alloc().allocate_on(1, 8);
    m.bind_protocol(a, 8, Protocol::PU);
    m.bind_protocol(b, 8, Protocol::WI);
    m.run_all([&](cpu::Cpu& c) -> sim::Task {
      for (int i = 0; i < 20; ++i) {
        (void)co_await c.fetch_add(a, 1);
        (void)co_await c.fetch_add(b, 1);
      }
    });
    return m.queue().now();
  };
  EXPECT_EQ(once(), once());
}

} // namespace
