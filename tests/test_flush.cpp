// Cpu::flush (user-level block flush) semantics across protocols: drops the
// block, writes dirty data back, removes the node from the sharing set,
// orders after program-order-earlier stores, and is a no-op when absent.
#include "ccsim.hpp"

#include <gtest/gtest.h>

namespace {

using namespace ccsim;
using harness::Machine;
using harness::MachineConfig;
using proto::Protocol;

class Flush : public ::testing::TestWithParam<Protocol> {
protected:
  MachineConfig cfg(unsigned n) {
    MachineConfig c;
    c.protocol = GetParam();
    c.nprocs = n;
    return c;
  }
};

INSTANTIATE_TEST_SUITE_P(AllProtocols, Flush,
                         ::testing::Values(Protocol::WI, Protocol::PU, Protocol::CU),
                         [](const auto& info) {
                           return std::string(proto::to_string(info.param));
                         });

TEST_P(Flush, DropsCleanCopy) {
  Machine m(cfg(2));
  const Addr a = m.alloc().allocate_on(1, 8);
  m.run({[&](cpu::Cpu& c) -> sim::Task {
    (void)co_await c.load(a);
    co_await c.flush(a);
  }});
  EXPECT_EQ(m.node(0).cache_ctrl().cache().find(mem::block_of(a)), nullptr);
}

TEST_P(Flush, DirtyDataSurvivesTheFlush) {
  Machine m(cfg(2));
  const Addr a = m.alloc().allocate_on(1, 8);
  m.run({[&](cpu::Cpu& c) -> sim::Task {
    co_await c.store(a, 4321);
    co_await c.flush(a);  // must wait for the store, then write back
    co_await c.fence();
    EXPECT_EQ(co_await c.load(a), 4321u);
  }});
  EXPECT_EQ(m.peek(a), 4321u);
}

TEST_P(Flush, ReloadClassifiedAsEvictionMiss) {
  Machine m(cfg(2));
  const Addr a = m.alloc().allocate_on(1, 8);
  m.run({[&](cpu::Cpu& c) -> sim::Task {
    (void)co_await c.load(a);
    co_await c.flush(a);
    (void)co_await c.load(a);
  }});
  EXPECT_EQ(m.counters().misses[stats::MissClass::Eviction], 1u);
}

TEST_P(Flush, FlushOfAbsentBlockIsNoop) {
  Machine m(cfg(2));
  const Addr a = m.alloc().allocate_on(1, 8);
  m.run({[&](cpu::Cpu& c) -> sim::Task { co_await c.flush(a); }});
  EXPECT_EQ(m.counters().misses.total(), 0u);
  EXPECT_EQ(m.counters().net.messages, 0u);
}

TEST_P(Flush, FlushedSharerStopsReceivingTraffic) {
  // After the flush, the home must not consider us a sharer: a subsequent
  // remote write generates no message toward us (no Inval / no Update).
  Machine m(cfg(3));
  const Addr a = m.alloc().allocate_on(2, 8);
  const Addr flag = m.alloc().allocate_on(2, 8);
  std::vector<Machine::Program> ps;
  ps.push_back([&](cpu::Cpu& c) -> sim::Task {
    (void)co_await c.load(a);
    co_await c.flush(a);
    co_await c.store(flag, 1);
  });
  ps.push_back([&](cpu::Cpu& c) -> sim::Task {
    co_await c.spin_until(flag, [](std::uint64_t v) { return v == 1; });
    co_await c.store(a, 5);
    co_await c.fence();
  });
  m.run(ps);
  const auto* e = m.node(2).home_ctrl().directory().find(mem::block_of(a));
  ASSERT_NE(e, nullptr);
  EXPECT_FALSE(e->has_sharer(0));
  // No update was delivered to node 0 (nothing pending at finalize).
  EXPECT_EQ(m.counters().updates[stats::UpdateClass::Termination], 0u);
}

} // namespace
