// Workload-harness tests: metrics arithmetic, all kind/protocol combos run
// to completion, and the experiment variants behave sanely.
#include "ccsim.hpp"

#include <gtest/gtest.h>

namespace {

using namespace ccsim;
using harness::BarrierKind;
using harness::LockKind;
using harness::MachineConfig;
using harness::ReductionKind;
using proto::Protocol;

MachineConfig cfg_of(Protocol p, unsigned n) {
  MachineConfig c;
  c.protocol = p;
  c.nprocs = n;
  return c;
}

TEST(LockWorkload, LatencyMetricMatchesDefinition) {
  const auto r = harness::run_lock_experiment(cfg_of(Protocol::WI, 4),
                                              LockKind::Ticket,
                                              {.total_acquires = 400, .hold_cycles = 50});
  // avg = cycles/acquires - hold (figure 8's definition).
  EXPECT_NEAR(r.avg_latency,
              static_cast<double>(r.cycles) / 400.0 - 50.0, 1e-9);
  EXPECT_GT(r.avg_latency, 0.0);
}

TEST(LockWorkload, AllCombosComplete) {
  for (Protocol p : {Protocol::WI, Protocol::PU, Protocol::CU}) {
    for (LockKind k : {LockKind::Ticket, LockKind::Mcs, LockKind::UcMcs}) {
      const auto r = harness::run_lock_experiment(cfg_of(p, 8), k,
                                                  {.total_acquires = 160});
      EXPECT_GT(r.cycles, 0u) << proto::to_string(p) << "/" << to_string(k);
    }
  }
}

TEST(LockWorkload, RandomPauseVariantRunsLonger) {
  const harness::LockParams tight{.total_acquires = 320};
  harness::LockParams paused{.total_acquires = 320};
  paused.random_pause_max = 400;
  const auto t = harness::run_lock_experiment(cfg_of(Protocol::WI, 4),
                                              LockKind::Ticket, tight);
  const auto q = harness::run_lock_experiment(cfg_of(Protocol::WI, 4),
                                              LockKind::Ticket, paused);
  EXPECT_GT(q.cycles, t.cycles);
}

TEST(LockWorkload, WorkRatioVariantReducesContention) {
  harness::LockParams ratio{.total_acquires = 320};
  ratio.work_ratio = 8;  // work outside ~= P * work inside
  const auto r = harness::run_lock_experiment(cfg_of(Protocol::WI, 8),
                                              LockKind::Mcs, ratio);
  EXPECT_GT(r.cycles, 320u / 8 * (50 + 400));
}

TEST(BarrierWorkload, LatencyIsPerEpisode) {
  const auto r = harness::run_barrier_experiment(cfg_of(Protocol::PU, 4),
                                                 BarrierKind::Dissemination,
                                                 {.episodes = 100});
  EXPECT_NEAR(r.avg_latency, static_cast<double>(r.cycles) / 100.0, 1e-9);
}

TEST(BarrierWorkload, AllCombosComplete) {
  for (Protocol p : {Protocol::WI, Protocol::PU, Protocol::CU}) {
    for (BarrierKind k :
         {BarrierKind::Central, BarrierKind::Dissemination, BarrierKind::Tree}) {
      const auto r =
          harness::run_barrier_experiment(cfg_of(p, 8), k, {.episodes = 40});
      EXPECT_GT(r.cycles, 0u) << proto::to_string(p) << "/" << to_string(k);
    }
  }
}

TEST(ReductionWorkload, ImbalanceVariantRunsAndVerifies) {
  for (ReductionKind k : {ReductionKind::Parallel, ReductionKind::Sequential}) {
    const auto r = harness::run_reduction_experiment(
        cfg_of(Protocol::CU, 8), k,
        {.rounds = 30, .imbalance_max = 500, .seed = 3, .verify = true});
    EXPECT_GT(r.cycles, 0u);
  }
}

TEST(ReductionWorkload, MagicSyncMeansNoLockTraffic) {
  // The reduction harness uses zero-traffic sync; with the parallel
  // reduction's shared max being the only shared data, traffic stays tiny.
  const auto r = harness::run_reduction_experiment(
      cfg_of(Protocol::WI, 8), ReductionKind::Parallel, {.rounds = 50});
  EXPECT_LT(r.counters.misses.total(), 300u);
}

TEST(Names, ToStringCoverage) {
  EXPECT_EQ(to_string(LockKind::Ticket), "ticket");
  EXPECT_EQ(to_string(LockKind::Mcs), "MCS");
  EXPECT_EQ(to_string(LockKind::UcMcs), "uc-MCS");
  EXPECT_EQ(to_string(BarrierKind::Central), "central");
  EXPECT_EQ(to_string(BarrierKind::Dissemination), "dissem");
  EXPECT_EQ(to_string(BarrierKind::Tree), "tree");
  EXPECT_EQ(to_string(ReductionKind::Parallel), "parallel");
  EXPECT_EQ(to_string(ReductionKind::Sequential), "sequential");
  EXPECT_EQ(proto::to_string(Protocol::WI), "WI");
  EXPECT_EQ(proto::to_string(Protocol::PU), "PU");
  EXPECT_EQ(proto::to_string(Protocol::CU), "CU");
}

} // namespace
