// Property-based tests: randomized workloads swept over protocol x machine
// size x seed, checking invariants that must hold for ANY execution:
//   - no value fabrication: every load returns a value some store wrote,
//   - post-barrier agreement: after a full barrier every processor reads
//     the latest value of every word,
//   - directory/cache agreement at quiescence,
//   - counter conservation: every classified update was delivered; drops
//     pair with prunes; atomic sums are exact under contention.
#include "ccsim.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <tuple>

namespace {

using namespace ccsim;
using harness::Machine;
using harness::MachineConfig;
using mem::DirState;
using mem::LineState;
using proto::Protocol;

using Combo = std::tuple<Protocol, unsigned, unsigned>;  // protocol, P, seed

std::string combo_name(const ::testing::TestParamInfo<Combo>& info) {
  return std::string(proto::to_string(std::get<0>(info.param))) + "_p" +
         std::to_string(std::get<1>(info.param)) + "_s" +
         std::to_string(std::get<2>(info.param));
}

class RandomWorkload : public ::testing::TestWithParam<Combo> {};

INSTANTIATE_TEST_SUITE_P(
    Sweep, RandomWorkload,
    ::testing::Combine(::testing::Values(Protocol::WI, Protocol::PU, Protocol::CU),
                       ::testing::Values(2u, 5u, 8u),
                       ::testing::Values(1u, 2u, 3u)),
    combo_name);

TEST_P(RandomWorkload, LoadsNeverFabricateValues) {
  const auto& [p, n, seed] = GetParam();
  MachineConfig cfg;
  cfg.protocol = p;
  cfg.nprocs = n;
  // Small cache to force evictions and conflict traffic.
  cfg.cache_bytes = 1024;
  Machine m(cfg);

  constexpr unsigned kWords = 24;
  const Addr base = m.alloc().allocate(kWords * mem::kWordSize, mem::kBlockSize);

  // Every store writes (proc_id, sequence) encoded uniquely; a load must
  // return 0 (initial) or some previously-stored encoding for that word.
  // (Atomics are excluded here -- their effects become globally visible
  // before the issuing coroutine can record them, so a sound oracle would
  // need protocol knowledge; ContendedAtomicSumsAreExact covers them.)
  std::vector<std::set<std::uint64_t>> written(kWords);
  for (unsigned w = 0; w < kWords; ++w) written[w].insert(0);

  m.run_all([&](cpu::Cpu& c) -> sim::Task {
    sim::Rng rng(sim::Rng::derive(seed * 977, c.id()));
    for (int i = 0; i < 120; ++i) {
      const unsigned w = static_cast<unsigned>(rng.below(kWords));
      const Addr a = base + w * mem::kWordSize;
      const auto kind = rng.below(10);
      if (kind < 5) {
        const std::uint64_t v = co_await c.load(a);
        if (!written[w].contains(v))
          throw std::logic_error("load returned a never-written value");
      } else if (kind < 9) {
        const std::uint64_t v = (std::uint64_t(c.id() + 1) << 32) |
                                (std::uint64_t(i) << 8) | w;
        written[w].insert(v);  // record before issuing: visible any time after
        co_await c.store(a, v);
      } else {
        co_await c.fence();
      }
    }
  });
}

TEST_P(RandomWorkload, PostBarrierAgreement) {
  const auto& [p, n, seed] = GetParam();
  MachineConfig cfg;
  cfg.protocol = p;
  cfg.nprocs = n;
  Machine m(cfg);
  sync::DisseminationBarrier barrier(m);

  constexpr unsigned kSlots = 8;
  const Addr base = m.alloc().allocate(kSlots * mem::kWordSize, mem::kBlockSize);

  // Each round: a designated writer updates slot values; after the
  // barrier, every processor must read the round's values.
  const int rounds = 15;
  m.run_all([&](cpu::Cpu& c) -> sim::Task {
    for (int r = 0; r < rounds; ++r) {
      const NodeId writer = static_cast<NodeId>((r * 7 + seed) % m.nprocs());
      if (c.id() == writer) {
        for (unsigned s = 0; s < kSlots; ++s)
          co_await c.store(base + s * mem::kWordSize,
                           (std::uint64_t(r + 1) << 8) | s);
      }
      co_await c.fence();
      co_await barrier.wait(c);
      for (unsigned s = 0; s < kSlots; ++s) {
        const std::uint64_t v = co_await c.load(base + s * mem::kWordSize);
        if (v != ((std::uint64_t(r + 1) << 8) | s))
          throw std::logic_error("stale value visible after barrier");
      }
      co_await barrier.wait(c);
    }
  });
}

TEST_P(RandomWorkload, DirectoryCacheAgreementAtQuiescence) {
  const auto& [p, n, seed] = GetParam();
  MachineConfig cfg;
  cfg.protocol = p;
  cfg.nprocs = n;
  cfg.cache_bytes = 2048;
  Machine m(cfg);
  constexpr unsigned kWords = 40;
  const Addr base = m.alloc().allocate(kWords * mem::kWordSize, mem::kBlockSize);

  m.run_all([&](cpu::Cpu& c) -> sim::Task {
    sim::Rng rng(sim::Rng::derive(seed * 1313, c.id()));
    for (int i = 0; i < 150; ++i) {
      const Addr a = base + rng.below(kWords) * mem::kWordSize;
      if (rng.below(2))
        (void)co_await c.load(a);
      else
        co_await c.store(a, rng.next());
    }
    co_await c.fence();
  });

  // At quiescence: every valid cached copy must be recorded at the home,
  // and every exclusive/private owner really holds the line.
  for (NodeId i = 0; i < n; ++i) {
    auto& cache = m.node(i).cache_ctrl().cache();
    for (unsigned w = 0; w < kWords; w += mem::kWordsPerBlock) {
      const mem::BlockAddr b = mem::block_of(base + w * mem::kWordSize);
      const NodeId home = m.alloc().home_of(b);
      const auto* e = m.node(home).home_ctrl().directory().find(b);
      if (const auto* line = cache.find(b)) {
        ASSERT_NE(e, nullptr);
        switch (line->state) {
          case LineState::Shared:
          case LineState::ValidU:
            EXPECT_TRUE(e->has_sharer(i))
                << "proc " << i << " holds block " << b << " unrecorded";
            break;
          case LineState::Modified:
            EXPECT_EQ(e->state, DirState::Exclusive);
            EXPECT_EQ(e->owner, i);
            break;
          case LineState::PrivateDirty:
            EXPECT_EQ(e->state, DirState::Private);
            EXPECT_EQ(e->owner, i);
            break;
          default:
            break;
        }
      }
      if (e && e->state == DirState::Exclusive) {
        const auto* line = m.node(e->owner).cache_ctrl().cache().find(b);
        EXPECT_NE(line, nullptr) << "directory names an owner without the line";
      }
    }
  }
}

TEST_P(RandomWorkload, ContendedAtomicSumsAreExact) {
  const auto& [p, n, seed] = GetParam();
  MachineConfig cfg;
  cfg.protocol = p;
  cfg.nprocs = n;
  Machine m(cfg);
  constexpr unsigned kCtrs = 4;
  const Addr base = m.alloc().allocate(kCtrs * mem::kWordSize, mem::kBlockSize);
  std::vector<std::uint64_t> expected(kCtrs, 0);

  m.run_all([&](cpu::Cpu& c) -> sim::Task {
    sim::Rng rng(sim::Rng::derive(seed * 31337, c.id()));
    for (int i = 0; i < 60; ++i) {
      const unsigned k = static_cast<unsigned>(rng.below(kCtrs));
      const std::uint64_t d = 1 + rng.below(5);
      expected[k] += d;  // host-side oracle (single-threaded simulator)
      (void)co_await c.fetch_add(base + k * mem::kWordSize, d);
      if (rng.below(4) == 0) (void)co_await c.load(base + k * mem::kWordSize);
    }
  });
  for (unsigned k = 0; k < kCtrs; ++k)
    EXPECT_EQ(m.peek(base + k * mem::kWordSize), expected[k]) << "counter " << k;
}

TEST_P(RandomWorkload, HybridRandomDomainsKeepAllInvariants) {
  // Same randomized access pattern, but on a hybrid machine with every
  // block randomly bound to WI/PU/CU: value-fabrication and atomic-sum
  // invariants must hold across domain boundaries.
  const auto& [p, n, seed] = GetParam();
  MachineConfig cfg;
  cfg.protocol = Protocol::Hybrid;
  cfg.hybrid_default = p;  // reuse the protocol axis as the default domain
  cfg.nprocs = n;
  Machine m(cfg);
  constexpr unsigned kWords = 24;
  const Addr base = m.alloc().allocate(kWords * mem::kWordSize, mem::kBlockSize);
  sim::Rng bind_rng(seed * 7919);
  for (unsigned w = 0; w < kWords; w += mem::kWordsPerBlock) {
    const Addr a = base + w * mem::kWordSize;
    switch (bind_rng.below(4)) {
      case 0: m.bind_protocol(a, mem::kBlockSize, Protocol::WI); break;
      case 1: m.bind_protocol(a, mem::kBlockSize, Protocol::PU); break;
      case 2: m.bind_protocol(a, mem::kBlockSize, Protocol::CU); break;
      default: break;  // leave on the default domain
    }
  }
  std::vector<std::set<std::uint64_t>> written(kWords);
  for (unsigned w = 0; w < kWords; ++w) written[w].insert(0);
  std::vector<std::uint64_t> sum_expect(kWords, 0);
  const Addr ctr = m.alloc().allocate_on(0, 8);
  m.bind_protocol(ctr, 8, Protocol::PU);
  std::uint64_t ctr_expect = 0;

  m.run_all([&](cpu::Cpu& c) -> sim::Task {
    sim::Rng rng(sim::Rng::derive(seed * 977 + 5, c.id()));
    for (int i = 0; i < 100; ++i) {
      const unsigned w = static_cast<unsigned>(rng.below(kWords));
      const Addr a = base + w * mem::kWordSize;
      const auto kind = rng.below(10);
      if (kind < 4) {
        const std::uint64_t v = co_await c.load(a);
        if (!written[w].contains(v))
          throw std::logic_error("hybrid load fabricated a value");
      } else if (kind < 8) {
        const std::uint64_t v = (std::uint64_t(c.id() + 1) << 32) |
                                (std::uint64_t(i) << 8) | w;
        written[w].insert(v);
        co_await c.store(a, v);
      } else if (kind < 9) {
        ++ctr_expect;
        (void)co_await c.fetch_add(ctr, 1);
      } else {
        co_await c.fence();
      }
    }
  });
  EXPECT_EQ(m.peek(ctr), ctr_expect);
}

TEST_P(RandomWorkload, MixedConstructsStressRun) {
  const auto& [p, n, seed] = GetParam();
  MachineConfig cfg;
  cfg.protocol = p;
  cfg.nprocs = n;
  Machine m(cfg);
  sync::TicketLock lock(m);
  sync::TreeBarrier barrier(m);
  const Addr acc = m.alloc().allocate_on(0, 8);

  const int rounds = 10;
  m.run_all([&](cpu::Cpu& c) -> sim::Task {
    sim::Rng rng(sim::Rng::derive(seed * 3, c.id()));
    for (int r = 0; r < rounds; ++r) {
      co_await c.think(rng.below(60));
      co_await lock.acquire(c);
      const std::uint64_t v = co_await c.load(acc);
      co_await c.store(acc, v + 1);
      co_await lock.release(c);
      co_await barrier.wait(c);
      if (c.id() == 0) {
        const std::uint64_t total = co_await c.load(acc);
        if (total != static_cast<std::uint64_t>(r + 1) * m.nprocs())
          throw std::logic_error("lost increments in mixed-construct run");
      }
      co_await barrier.wait(c);
    }
  });
  EXPECT_EQ(m.peek(acc), static_cast<std::uint64_t>(rounds) * n);
}

} // namespace
