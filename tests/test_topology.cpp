// Unit tests for the mesh topology.
#include "net/topology.hpp"

#include <gtest/gtest.h>

namespace {

using ccsim::net::MeshTopology;

TEST(Topology, PaperSizes) {
  // The paper's sweep: 1, 2, 4, 8, 16, 32 processors.
  struct Want {
    unsigned n, x, y;
  } cases[] = {{1, 1, 1}, {2, 2, 1}, {4, 2, 2}, {8, 4, 2}, {16, 4, 4}, {32, 8, 4}};
  for (const auto& c : cases) {
    MeshTopology t(c.n);
    EXPECT_EQ(t.dim_x(), c.x) << c.n;
    EXPECT_EQ(t.dim_y(), c.y) << c.n;
    EXPECT_GE(t.dim_x() * t.dim_y(), c.n);
  }
}

TEST(Topology, CoordsRowMajor) {
  MeshTopology t(8, 4);
  EXPECT_EQ(t.coords(0), std::make_pair(0u, 0u));
  EXPECT_EQ(t.coords(7), std::make_pair(7u, 0u));
  EXPECT_EQ(t.coords(8), std::make_pair(0u, 1u));
  EXPECT_EQ(t.coords(31), std::make_pair(7u, 3u));
}

TEST(Topology, HopsAreManhattanDistance) {
  MeshTopology t(8, 4);
  EXPECT_EQ(t.hops(0, 0), 0u);
  EXPECT_EQ(t.hops(0, 1), 1u);
  EXPECT_EQ(t.hops(0, 8), 1u);
  EXPECT_EQ(t.hops(0, 9), 2u);
  EXPECT_EQ(t.hops(0, 31), 10u);  // 7 in x + 3 in y
  EXPECT_EQ(t.hops(31, 0), 10u);  // symmetric
}

TEST(Topology, HopsSymmetricExhaustive) {
  MeshTopology t(32);
  for (unsigned a = 0; a < 32; ++a)
    for (unsigned b = 0; b < 32; ++b) EXPECT_EQ(t.hops(a, b), t.hops(b, a));
}

TEST(Topology, TriangleInequality) {
  MeshTopology t(16);
  for (unsigned a = 0; a < 16; ++a)
    for (unsigned b = 0; b < 16; ++b)
      for (unsigned c = 0; c < 16; ++c)
        EXPECT_LE(t.hops(a, c), t.hops(a, b) + t.hops(b, c));
}

} // namespace
