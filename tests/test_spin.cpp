// spin_until semantics: correctness of wakeups under every protocol, and
// the traffic signature of spinning (WI re-fetches, update protocols
// update in place).
#include "ccsim.hpp"

#include <gtest/gtest.h>

namespace {

using namespace ccsim;
using harness::Machine;
using harness::MachineConfig;
using proto::Protocol;

class Spin : public ::testing::TestWithParam<Protocol> {
protected:
  MachineConfig cfg(unsigned n) {
    MachineConfig c;
    c.protocol = GetParam();
    c.nprocs = n;
    return c;
  }
};

INSTANTIATE_TEST_SUITE_P(AllProtocols, Spin,
                         ::testing::Values(Protocol::WI, Protocol::PU, Protocol::CU),
                         [](const auto& info) {
                           return std::string(proto::to_string(info.param));
                         });

TEST_P(Spin, AlreadySatisfiedReturnsImmediately) {
  Machine m(cfg(1));
  const Addr a = m.alloc().allocate_on(0, 8);
  m.poke(a, 3);
  const Cycle t = m.run_all([&](cpu::Cpu& c) -> sim::Task {
    const auto v = co_await c.spin_until(a, [](std::uint64_t v) { return v == 3; });
    EXPECT_EQ(v, 3u);
  });
  EXPECT_LT(t, 200u);
}

TEST_P(Spin, WakesOnRemoteWrite) {
  Machine m(cfg(2));
  const Addr a = m.alloc().allocate_on(1, 8);
  std::vector<Machine::Program> ps;
  Cycle woke_at = 0;
  ps.push_back([&](cpu::Cpu& c) -> sim::Task {
    co_await c.spin_until(a, [](std::uint64_t v) { return v == 1; });
    woke_at = c.queue().now();
  });
  ps.push_back([&](cpu::Cpu& c) -> sim::Task {
    co_await c.think(500);
    co_await c.store(a, 1);
  });
  m.run(ps);
  EXPECT_GT(woke_at, 500u);
  EXPECT_LT(woke_at, 800u) << "wakeup should follow the write promptly";
}

TEST_P(Spin, WakesOnAtomicResult) {
  Machine m(cfg(2));
  const Addr a = m.alloc().allocate_on(1, 8);
  std::vector<Machine::Program> ps;
  ps.push_back([&](cpu::Cpu& c) -> sim::Task {
    co_await c.spin_until(a, [](std::uint64_t v) { return v == 5; });
  });
  ps.push_back([&](cpu::Cpu& c) -> sim::Task {
    for (int i = 0; i < 5; ++i) {
      co_await c.think(100);
      (void)co_await c.fetch_add(a, 1);
    }
  });
  m.run(ps);
}

TEST_P(Spin, ManyWaitersAllWake) {
  Machine m(cfg(8));
  const Addr a = m.alloc().allocate_on(0, 8);
  int woke = 0;
  std::vector<Machine::Program> ps;
  for (int i = 0; i < 7; ++i) {
    ps.push_back([&](cpu::Cpu& c) -> sim::Task {
      co_await c.spin_until(a, [](std::uint64_t v) { return v != 0; });
      ++woke;
    });
  }
  ps.push_back([&](cpu::Cpu& c) -> sim::Task {
    co_await c.think(200);
    co_await c.store(a, 1);
  });
  m.run(ps);
  EXPECT_EQ(woke, 7);
}

TEST_P(Spin, SequenceOfValuesObservedMonotonically) {
  Machine m(cfg(2));
  const Addr a = m.alloc().allocate_on(1, 8);
  std::vector<Machine::Program> ps;
  ps.push_back([&](cpu::Cpu& c) -> sim::Task {
    std::uint64_t last = 0;
    for (int k = 1; k <= 10; ++k) {
      const auto v = co_await c.spin_until(
          a, [k](std::uint64_t v) { return v >= (std::uint64_t)k; });
      EXPECT_GE(v, last);
      last = v;
    }
  });
  ps.push_back([&](cpu::Cpu& c) -> sim::Task {
    for (int k = 1; k <= 10; ++k) {
      co_await c.think(50);
      co_await c.store(a, (std::uint64_t)k);
    }
  });
  m.run(ps);
}

TEST(SpinTraffic, WiSpinnersRefetchUpdateSpinnersDoNot) {
  const auto run = [&](Protocol p) {
    MachineConfig c;
    c.protocol = p;
    c.nprocs = 2;
    Machine m(c);
    const Addr a = m.alloc().allocate_on(1, 8);
    std::vector<Machine::Program> ps;
    ps.push_back([&, a](cpu::Cpu& cc) -> sim::Task {
      co_await cc.spin_until(a, [](std::uint64_t v) { return v == 20; });
    });
    ps.push_back([&, a](cpu::Cpu& cc) -> sim::Task {
      for (int k = 1; k <= 20; ++k) {
        co_await cc.think(100);
        co_await cc.store(a, (std::uint64_t)k);
      }
    });
    m.run(ps);
    return m.counters();
  };
  const auto wi = run(Protocol::WI);
  const auto pu = run(Protocol::PU);
  // The WI spinner misses after every one of the ~20 invalidations; the PU
  // spinner's copy is updated in place (no misses beyond cold).
  EXPECT_GE(wi.misses[stats::MissClass::TrueSharing], 15u);
  EXPECT_LE(pu.misses.total(), 3u);
  EXPECT_GE(pu.updates[stats::UpdateClass::TrueSharing], 15u);
}

} // namespace
