// Stress-harness tests: run_stress_cell is deterministic (same seed, same
// machine => identical cycles and check counts, with and without jitter),
// jitter actually perturbs timing, stress cells pass the invariant checker
// on every protocol, and the sweep engine classifies stress failures
// (FailKind propagation for deadlocks and invariant violations).
#include "harness/stress.hpp"

#include "harness/machine.hpp"
#include "harness/sweep.hpp"
#include "obs/invariants.hpp"
#include "sim/rng.hpp"

#include <gtest/gtest.h>

namespace {

using namespace ccsim;
using harness::MachineConfig;
using harness::RunResult;
using harness::run_stress_cell;
using harness::StressParams;
using harness::SweepJob;
using harness::SweepOptions;
using harness::SweepResult;

MachineConfig stress_machine(proto::Protocol p, Cycle jitter = 0,
                             std::uint64_t seed = 1) {
  MachineConfig cfg;
  cfg.protocol = p;
  cfg.nprocs = 4;
  cfg.obs.check_invariants = true;
  cfg.watchdog_stall_cycles = 2'000'000;
  cfg.net.jitter_max = jitter;
  cfg.net.jitter_seed = sim::Rng::derive(seed, 0x717e5);
  return cfg;
}

StressParams small_params(std::uint64_t seed = 1) {
  StressParams sp;
  sp.seed = seed;
  sp.segments = 3;
  sp.ops_per_segment = 24;
  sp.data_blocks = 8;
  return sp;
}

TEST(Stress, CellsPassTheCheckerOnEveryProtocol) {
  for (proto::Protocol p :
       {proto::Protocol::WI, proto::Protocol::PU, proto::Protocol::CU}) {
    const RunResult r = run_stress_cell(stress_machine(p), small_params());
    EXPECT_GT(r.cycles, 0u) << proto::to_string(p);
    EXPECT_GT(r.invariant_checks, 0u) << proto::to_string(p);
  }
}

TEST(Stress, RacingMcsHandoffPassesTheStateAwareAudit) {
  // Regression: CU at 8 procs with this seed runs an MCS segment whose
  // qnode-flag write race strands a superseded value in a ValidU copy —
  // legal for a write-through update protocol (the writer is excluded
  // from its own multicast), so the audit must hold ValidU copies to
  // value-history membership, not memory equality.
  StressParams sp;
  sp.seed = 2;
  const RunResult r =
      run_stress_cell(stress_machine(proto::Protocol::CU, 0, 2), sp);
  EXPECT_GT(r.invariant_checks, 0u);
}

TEST(Stress, SameSeedIsReproducible) {
  for (Cycle jitter : {Cycle{0}, Cycle{7}}) {
    const auto cfg = stress_machine(proto::Protocol::WI, jitter);
    const RunResult a = run_stress_cell(cfg, small_params());
    const RunResult b = run_stress_cell(cfg, small_params());
    EXPECT_EQ(a.cycles, b.cycles) << "jitter " << jitter;
    EXPECT_EQ(a.invariant_checks, b.invariant_checks) << "jitter " << jitter;
  }
}

TEST(Stress, DifferentSeedsDiverge) {
  const auto cfg = stress_machine(proto::Protocol::WI);
  const RunResult a = run_stress_cell(cfg, small_params(1));
  const RunResult b = run_stress_cell(cfg, small_params(2));
  EXPECT_NE(a.cycles, b.cycles);
}

TEST(Stress, JitterPerturbsTimingButNotCorrectness) {
  const RunResult a =
      run_stress_cell(stress_machine(proto::Protocol::PU, 0), small_params());
  const RunResult b =
      run_stress_cell(stress_machine(proto::Protocol::PU, 9), small_params());
  // Perturbed delivery must shift timing -- otherwise the jitter knob is
  // inert and the stress grid explores nothing.
  EXPECT_NE(a.cycles, b.cycles);
}

TEST(Stress, SweepOverStressCellsIsDeterministicAcrossJobs) {
  std::vector<SweepJob> jobs;
  for (proto::Protocol p :
       {proto::Protocol::WI, proto::Protocol::PU, proto::Protocol::CU}) {
    for (std::uint64_t seed : {1ULL, 2ULL}) {
      SweepJob j;
      j.name = std::string("stress/") + std::string(proto::to_string(p)) +
               "/s" + std::to_string(seed);
      j.machine = stress_machine(p, /*jitter=*/3, seed);
      const StressParams sp = small_params(seed);
      j.runner = [sp](const MachineConfig& cfg) {
        return run_stress_cell(cfg, sp);
      };
      jobs.push_back(std::move(j));
    }
  }
  SweepOptions par;
  par.jobs = 4;
  const auto a = harness::run_sweep(jobs, SweepOptions{});
  const auto b = harness::run_sweep(jobs, par);
  ASSERT_EQ(a.size(), jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    ASSERT_TRUE(a[i].ok) << a[i].name << ": " << a[i].error;
    ASSERT_TRUE(b[i].ok) << b[i].name << ": " << b[i].error;
    EXPECT_EQ(a[i].run.cycles, b[i].run.cycles) << jobs[i].name;
    EXPECT_EQ(a[i].run.invariant_checks, b[i].run.invariant_checks)
        << jobs[i].name;
  }
}

TEST(Stress, HungRunnerIsClassifiedAsDeadlock) {
  SweepJob j;
  j.name = "stress/hang";
  j.runner = [](const MachineConfig& cfg) -> RunResult {
    harness::Machine m(cfg);
    const Addr flag = m.alloc().allocate_on(0, 8, "never");
    std::vector<harness::Machine::Program> ps;
    ps.push_back([&](cpu::Cpu& c) -> sim::Task {
      co_await c.spin_until(flag, [](std::uint64_t v) { return v == 1; });
    });
    m.run(ps);  // throws DeadlockError: nobody ever sets the flag
    return {};
  };
  const SweepResult r = harness::run_sweep_job(j);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.fail, SweepResult::FailKind::Deadlock);
  EXPECT_NE(r.error.find("drained with programs waiting"), std::string::npos)
      << r.error;
}

TEST(Stress, CorruptingRunnerIsClassifiedAsInvariantViolation) {
  SweepJob j;
  j.name = "stress/corrupt";
  j.machine.obs.check_invariants = true;
  j.machine.nprocs = 2;
  j.runner = [](const MachineConfig& cfg) -> RunResult {
    harness::Machine m(cfg);
    const Addr a = m.alloc().allocate_on(0, 8, "target");
    std::vector<harness::Machine::Program> ps;
    ps.push_back([&](cpu::Cpu& c) -> sim::Task {
      co_await c.store(a, 5);
      co_await c.fence();
      m.node(0).cache_ctrl().cache().write(a, 8, 1000);  // fault injection
    });
    m.run(ps);  // final audit throws InvariantViolation
    return {};
  };
  const SweepResult r = harness::run_sweep_job(j);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.fail, SweepResult::FailKind::Invariant);
  EXPECT_NE(r.error.find("coherence invariant violation"), std::string::npos)
      << r.error;
}

} // namespace
