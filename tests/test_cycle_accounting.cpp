// Cycle-accounting profiler tests: the conservation invariant (every
// simulated cycle lands in exactly one category, per processor, exact),
// timing-neutrality (enabling the profiler cannot change the simulation),
// and per-(construct, phase) histogram sanity.
#include "ccsim.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace {

using namespace ccsim;

harness::MachineConfig profiled(proto::Protocol p, unsigned nprocs) {
  harness::MachineConfig cfg;
  cfg.protocol = p;
  cfg.nprocs = nprocs;
  cfg.obs.profile = true;
  return cfg;
}

void expect_conserved(const harness::RunResult& r, const char* what) {
  ASSERT_TRUE(r.profile.enabled()) << what;
  EXPECT_EQ(r.profile.wall, r.cycles) << what;
  EXPECT_TRUE(r.profile.conserved()) << what;
  for (std::size_t p = 0; p < r.profile.per_proc.size(); ++p) {
    const auto& by = r.profile.per_proc[p];
    const Cycle sum = std::accumulate(by.begin(), by.end(), Cycle{0});
    EXPECT_EQ(sum, r.profile.wall) << what << " proc " << p;
  }
}

constexpr proto::Protocol kAll[] = {proto::Protocol::WI, proto::Protocol::PU,
                                    proto::Protocol::CU};

TEST(CycleAccounting, DisabledByDefault) {
  harness::MachineConfig cfg;
  cfg.nprocs = 4;
  const auto r = harness::run_lock_experiment(cfg, harness::LockKind::Ticket,
                                              {.total_acquires = 200});
  EXPECT_FALSE(r.profile.enabled());
  EXPECT_EQ(r.profile.wall, 0u);
}

TEST(CycleAccounting, ProfilingDoesNotPerturbTiming) {
  for (proto::Protocol p : kAll) {
    harness::MachineConfig off;
    off.protocol = p;
    off.nprocs = 8;
    const auto base = harness::run_lock_experiment(
        off, harness::LockKind::Mcs, {.total_acquires = 400});
    const auto prof = harness::run_lock_experiment(
        profiled(p, 8), harness::LockKind::Mcs, {.total_acquires = 400});
    EXPECT_EQ(base.cycles, prof.cycles) << proto::to_string(p);
    EXPECT_EQ(base.counters.misses.total(), prof.counters.misses.total())
        << proto::to_string(p);
  }
}

TEST(CycleAccounting, LockConservationAcrossProtocolsAndSeeds) {
  for (proto::Protocol p : kAll) {
    for (std::uint64_t seed : {0x5eedULL, 0xfeedULL}) {
      for (harness::LockKind k : {harness::LockKind::Ticket,
                                  harness::LockKind::Mcs,
                                  harness::LockKind::UcMcs}) {
        harness::LockParams params;
        params.total_acquires = 320;
        params.random_pause_max = 40;  // exercise the pseudorandom path
        params.seed = seed;
        const auto r = harness::run_lock_experiment(profiled(p, 8), k, params);
        expect_conserved(r, "lock");
        const auto totals = r.profile.totals();
        EXPECT_GT(totals[static_cast<std::size_t>(obs::CycleCat::Compute)], 0u);
        EXPECT_GT(totals[static_cast<std::size_t>(obs::CycleCat::LockWait)], 0u)
            << "contended locks must accrue lock-wait cycles";
      }
    }
  }
}

TEST(CycleAccounting, BarrierConservationAcrossProtocols) {
  for (proto::Protocol p : kAll) {
    for (harness::BarrierKind k :
         {harness::BarrierKind::Central, harness::BarrierKind::Dissemination,
          harness::BarrierKind::Tree, harness::BarrierKind::CombiningTree}) {
      const auto r =
          harness::run_barrier_experiment(profiled(p, 8), k, {.episodes = 60});
      expect_conserved(r, "barrier");
      const auto totals = r.profile.totals();
      EXPECT_GT(totals[static_cast<std::size_t>(obs::CycleCat::BarrierWait)], 0u)
          << "barrier episodes must accrue barrier-wait cycles";
    }
  }
}

TEST(CycleAccounting, ReductionConservationAcrossProtocolsAndSeeds) {
  for (proto::Protocol p : kAll) {
    for (std::uint64_t seed : {0xbeefULL, 0x1234ULL}) {
      for (harness::ReductionKind k : {harness::ReductionKind::Parallel,
                                       harness::ReductionKind::Sequential}) {
        harness::ReductionParams params;
        params.rounds = 50;
        params.imbalance_max = 30;
        params.seed = seed;
        const auto r = harness::run_reduction_experiment(profiled(p, 8), k, params);
        expect_conserved(r, "reduction");
        const auto totals = r.profile.totals();
        EXPECT_GT(
            totals[static_cast<std::size_t>(obs::CycleCat::ReductionWait)], 0u)
            << "reduction rounds must accrue reduction-wait cycles";
      }
    }
  }
}

TEST(CycleAccounting, LockPhaseHistogramsMatchAcquireCounts) {
  harness::LockParams params;
  params.total_acquires = 320;
  const auto r = harness::run_lock_experiment(profiled(proto::Protocol::WI, 8),
                                              harness::LockKind::Ticket, params);
  ASSERT_TRUE(r.profile.enabled());
  const auto& ph = r.profile.phases;
  const auto n = [&](obs::SyncPhase s) {
    return ph[static_cast<std::size_t>(s)].count();
  };
  // One acquire / hold / release record per successful acquisition.
  EXPECT_EQ(n(obs::SyncPhase::LockAcquire), params.total_acquires);
  EXPECT_EQ(n(obs::SyncPhase::LockHold), params.total_acquires);
  EXPECT_EQ(n(obs::SyncPhase::LockRelease), params.total_acquires);
  EXPECT_EQ(n(obs::SyncPhase::BarrierArrive), 0u);
  // Holds cover the 50-cycle critical section, so the mean must exceed it.
  EXPECT_GE(ph[static_cast<std::size_t>(obs::SyncPhase::LockHold)].mean(), 50.0);
}

TEST(CycleAccounting, BarrierPhaseHistogramsMatchEpisodeCounts) {
  const harness::BarrierParams params{.episodes = 60};
  const auto r =
      harness::run_barrier_experiment(profiled(proto::Protocol::WI, 8),
                                      harness::BarrierKind::Central, params);
  ASSERT_TRUE(r.profile.enabled());
  const auto& ph = r.profile.phases;
  // Every processor contributes one arrive + one depart per episode.
  const std::uint64_t expect = 8u * params.episodes;
  EXPECT_EQ(ph[static_cast<std::size_t>(obs::SyncPhase::BarrierArrive)].count(),
            expect);
  EXPECT_EQ(ph[static_cast<std::size_t>(obs::SyncPhase::BarrierDepart)].count(),
            expect);
}

TEST(CycleAccounting, ReductionPhaseHistogramRecordsCombines) {
  const auto r = harness::run_reduction_experiment(
      profiled(proto::Protocol::WI, 8), harness::ReductionKind::Parallel,
      {.rounds = 50});
  ASSERT_TRUE(r.profile.enabled());
  const auto& combine =
      r.profile.phases[static_cast<std::size_t>(obs::SyncPhase::ReductionCombine)];
  // Every processor folds once per round.
  EXPECT_EQ(combine.count(), 8u * 50u);
}

TEST(CycleAccounting, SnapshotDeterministicAcrossIdenticalRuns) {
  const auto run = [] {
    return harness::run_lock_experiment(profiled(proto::Protocol::CU, 8),
                                        harness::LockKind::Ticket,
                                        {.total_acquires = 320});
  };
  const auto a = run();
  const auto b = run();
  ASSERT_EQ(a.profile.per_proc.size(), b.profile.per_proc.size());
  for (std::size_t p = 0; p < a.profile.per_proc.size(); ++p)
    EXPECT_EQ(a.profile.per_proc[p], b.profile.per_proc[p]) << "proc " << p;
  EXPECT_EQ(a.profile.wb_peak, b.profile.wb_peak);
  EXPECT_EQ(a.profile.wb_pushes, b.profile.wb_pushes);
}

TEST(CycleAccounting, WriteBufferStatsPopulated) {
  // The lock workload stores through the write buffer on every release;
  // peak occupancy and accepted-store counts must be visible.
  const auto r = harness::run_lock_experiment(profiled(proto::Protocol::WI, 4),
                                              harness::LockKind::Ticket,
                                              {.total_acquires = 200});
  EXPECT_GT(r.profile.wb_pushes, 0u);
  EXPECT_GE(r.profile.wb_peak, 1u);
}

} // namespace
