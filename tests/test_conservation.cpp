// Accounting conservation laws: every counted event must reconcile with
// the message traffic that caused it. These catch double-counting and
// leaks in the classifiers and counters across protocols.
#include "ccsim.hpp"

#include <gtest/gtest.h>

namespace {

using namespace ccsim;
using harness::Machine;
using harness::MachineConfig;
using net::MsgType;
using proto::Protocol;

TEST(Conservation, EveryDeliveredUpdateIsClassifiedOnce_NoDropsNoEvicts) {
  // Dissemination barrier under PU: no drops, no evictions, no stale
  // updates (flags live in dedicated blocks that are never replaced), so
  // #classified updates == #Update messages sent.
  MachineConfig cfg;
  cfg.protocol = Protocol::PU;
  cfg.nprocs = 8;
  Machine m(cfg);
  sync::DisseminationBarrier b(m);
  m.run_all([&](cpu::Cpu& c) -> sim::Task {
    for (int e = 0; e < 50; ++e) co_await b.wait(c);
  });
  const auto& ctr = m.counters();
  EXPECT_EQ(ctr.updates.total(), ctr.net.of(MsgType::Update));
}

TEST(Conservation, UpdateAcksMatchUpdatesPlusDrops) {
  // Every Update delivered to a cache is acknowledged exactly once
  // (applied, dropped, or stale). Ack count == Update count always.
  for (Protocol p : {Protocol::PU, Protocol::CU}) {
    MachineConfig cfg;
    cfg.protocol = p;
    cfg.nprocs = 8;
    const auto r = harness::run_lock_experiment(cfg, harness::LockKind::Mcs,
                                                {.total_acquires = 320});
    EXPECT_EQ(r.counters.net.of(MsgType::Update),
              r.counters.net.of(MsgType::UpdateAck))
        << proto::to_string(p);
  }
}

TEST(Conservation, EveryUpdateReqIsGranted) {
  for (Protocol p : {Protocol::PU, Protocol::CU}) {
    MachineConfig cfg;
    cfg.protocol = p;
    cfg.nprocs = 8;
    const auto r = harness::run_barrier_experiment(
        cfg, harness::BarrierKind::Central, {.episodes = 50});
    EXPECT_EQ(r.counters.net.of(MsgType::UpdateReq),
              r.counters.net.of(MsgType::UpdateGrant))
        << proto::to_string(p);
  }
}

TEST(Conservation, EveryAtomicGetsExactlyOneReply) {
  for (Protocol p : {Protocol::PU, Protocol::CU}) {
    MachineConfig cfg;
    cfg.protocol = p;
    cfg.nprocs = 8;
    const auto r = harness::run_lock_experiment(cfg, harness::LockKind::Ticket,
                                                {.total_acquires = 320});
    EXPECT_EQ(r.counters.net.of(MsgType::AtomicReq),
              r.counters.net.of(MsgType::AtomicReply));
    EXPECT_EQ(r.counters.net.of(MsgType::AtomicReq), r.counters.mem.atomics);
  }
}

TEST(Conservation, WiInvalAcksMatchInvals) {
  MachineConfig cfg;
  cfg.protocol = Protocol::WI;
  cfg.nprocs = 8;
  const auto r = harness::run_barrier_experiment(
      cfg, harness::BarrierKind::Central, {.episodes = 50});
  EXPECT_EQ(r.counters.net.of(MsgType::Inval), r.counters.net.of(MsgType::InvalAck));
}

TEST(Conservation, WiExclusiveGrantsMatchExclDones) {
  MachineConfig cfg;
  cfg.protocol = Protocol::WI;
  cfg.nprocs = 8;
  const auto r = harness::run_lock_experiment(cfg, harness::LockKind::Mcs,
                                              {.total_acquires = 320});
  const auto& n = r.counters.net;
  EXPECT_EQ(n.of(MsgType::DataX) + n.of(MsgType::OwnerDataX) + n.of(MsgType::UpgAck),
            n.of(MsgType::ExclDone));
}

TEST(Conservation, WiDataRepliesMatchReadAndWriteMisses) {
  // Every WI miss transaction receives exactly one data reply; upgrades
  // receive UpgAck (unless converted to DataX by a race, in which case the
  // miss ledger still balances against replies + upgrade acks).
  MachineConfig cfg;
  cfg.protocol = Protocol::WI;
  cfg.nprocs = 8;
  const auto r = harness::run_lock_experiment(cfg, harness::LockKind::Ticket,
                                              {.total_acquires = 320});
  const auto& n = r.counters.net;
  const auto replies = n.of(MsgType::DataS) + n.of(MsgType::OwnerDataS) +
                       n.of(MsgType::DataX) + n.of(MsgType::OwnerDataX) +
                       n.of(MsgType::UpgAck);
  EXPECT_EQ(replies, r.counters.misses.total() + r.counters.misses.exclusive_requests);
}

TEST(Conservation, WritebacksAllAcked) {
  MachineConfig cfg;
  cfg.protocol = Protocol::WI;
  cfg.nprocs = 4;
  cfg.cache_bytes = 512;  // force eviction writebacks
  Machine m(cfg);
  const Addr base = m.alloc().allocate(64 * mem::kBlockSize, mem::kBlockSize);
  m.run_all([&](cpu::Cpu& c) -> sim::Task {
    sim::Rng rng(sim::Rng::derive(5, c.id()));
    for (int i = 0; i < 200; ++i) {
      const Addr a = base + rng.below(64) * mem::kBlockSize;
      if (rng.below(2))
        co_await c.store(a, rng.next());
      else
        (void)co_await c.load(a);
    }
    co_await c.fence();
  });
  const auto& n = m.counters().net;
  EXPECT_EQ(n.of(MsgType::Writeback), n.of(MsgType::WritebackAck));
  EXPECT_GT(n.of(MsgType::Writeback), 0u) << "workload must actually evict";
}

TEST(Conservation, DropsPairWithPrunesAndDropMisses) {
  MachineConfig cfg;
  cfg.protocol = Protocol::CU;
  cfg.nprocs = 16;
  const auto r = harness::run_barrier_experiment(
      cfg, harness::BarrierKind::Central, {.episodes = 100});
  const auto& ctr = r.counters;
  EXPECT_EQ(ctr.updates[stats::UpdateClass::Drop], ctr.net.of(MsgType::Prune));
  // Every drop eventually causes at most one drop miss (the block may not
  // be re-referenced before the run ends).
  EXPECT_LE(ctr.misses[stats::MissClass::Drop], ctr.updates[stats::UpdateClass::Drop]);
  EXPECT_GT(ctr.updates[stats::UpdateClass::Drop], 0u);
}

TEST(Conservation, MissesEqualFillsPlusWriteAllocates) {
  // Under PU, every classified miss is a GetS fetch (read miss,
  // write-allocate, or atomic fill). GetS count >= miss count minus
  // atomic fills, and every GetS gets one DataS.
  MachineConfig cfg;
  cfg.protocol = Protocol::PU;
  cfg.nprocs = 8;
  const auto r = harness::run_barrier_experiment(
      cfg, harness::BarrierKind::Dissemination, {.episodes = 50});
  EXPECT_EQ(r.counters.net.of(MsgType::GetS), r.counters.net.of(MsgType::DataS));
  EXPECT_EQ(r.counters.net.of(MsgType::GetS), r.counters.misses.total());
}

} // namespace
