// Sharing-pattern classifier tests: taxonomy decisions on hand-fed event
// streams, the protocol-replay cost model, the Machine-level report and
// JSON emission, the shared stats::Table formatter, and -- the
// load-bearing guarantee -- zero guest impact: simulated results are
// byte-identical with the tracker on or off.
#include "harness/figure.hpp"
#include "harness/obs_session.hpp"
#include "harness/workloads.hpp"
#include "obs/sharing.hpp"
#include "stats/json.hpp"
#include "stats/report.hpp"
#include "stats/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace {

using namespace ccsim;

constexpr Addr kA = mem::kSharedBase;  ///< word 0 of a shared block
constexpr Addr kB = mem::kSharedBase + mem::kBlockSize;

obs::SharingReport::Row only_row(const obs::SharingTracker& t) {
  const obs::SharingReport r = t.report(nullptr);
  EXPECT_EQ(r.blocks.size(), 1u);
  return r.blocks.at(0);
}

TEST(SharingTracker, RejectsBadNprocs) {
  EXPECT_THROW(obs::SharingTracker t(0, 4), std::invalid_argument);
  EXPECT_THROW(obs::SharingTracker t(33, 4), std::invalid_argument);
}

TEST(SharingTracker, IgnoresPrivateAddressesAndPokes) {
  obs::SharingTracker t(4, 4);
  t.on_read(0, 0x100);          // below kSharedBase
  t.on_global_write(1, 0x200);  // below kSharedBase
  t.on_poke(kA);                // initialization, deliberately ignored
  t.finalize();
  EXPECT_EQ(t.touched_blocks(), 0u);
}

TEST(SharingClassify, PrivateSingleNode) {
  obs::SharingTracker t(4, 4);
  for (int i = 0; i < 10; ++i) {
    t.on_read(2, kA);
    t.on_global_write(2, kA);
  }
  t.finalize();
  const auto row = only_row(t);
  EXPECT_EQ(row.pattern, obs::SharingPattern::Private);
  EXPECT_EQ(row.accessors, 1u);
  EXPECT_NE(row.best, proto::Protocol::CU)
      << "CU has no private-block mode; it writes through forever";
}

TEST(SharingClassify, ReadOnlyManyReaders) {
  obs::SharingTracker t(8, 4);
  for (NodeId n = 0; n < 8; ++n) t.on_read(n, kA + n % 2 * 8);
  t.finalize();
  const auto row = only_row(t);
  EXPECT_EQ(row.pattern, obs::SharingPattern::ReadOnly);
  EXPECT_EQ(row.writes, 0u);
}

TEST(SharingClassify, FalseSharedWordDisjointWriters) {
  // Nodes 0 and 1 each hammer their own word of one block and never touch
  // the other's: classic false sharing.
  obs::SharingTracker t(4, 4);
  for (int i = 0; i < 20; ++i) {
    t.on_read(0, kA);
    t.on_global_write(0, kA);
    t.on_read(1, kA + 8);
    t.on_global_write(1, kA + 8);
  }
  t.finalize();
  const auto row = only_row(t);
  EXPECT_EQ(row.pattern, obs::SharingPattern::FalseShared);
  EXPECT_TRUE(row.word_disjoint);
}

TEST(SharingClassify, ProducerConsumerDisjointSets) {
  // Node 0 writes a flag word; nodes 1..3 read it. Writer and reader sets
  // never overlap, and they share the word (not false sharing).
  obs::SharingTracker t(4, 4);
  for (int i = 0; i < 10; ++i) {
    t.on_global_write(0, kA);
    t.on_read(1, kA);
    t.on_read(2, kA);
    t.on_read(3, kA);
  }
  t.finalize();
  const auto row = only_row(t);
  EXPECT_EQ(row.pattern, obs::SharingPattern::ProducerConsumer);
}

TEST(SharingClassify, MigratoryReadModifyWriteHandoff) {
  // Ownership cycles node to node, each reading what the previous owner
  // wrote before writing itself: every handoff is migratory.
  obs::SharingTracker t(4, 4);
  for (int round = 0; round < 8; ++round) {
    const NodeId n = round % 4;
    t.on_read(n, kA);
    t.on_global_write(n, kA);
  }
  t.finalize();
  const auto row = only_row(t);
  EXPECT_EQ(row.pattern, obs::SharingPattern::Migratory);
  EXPECT_GT(row.migratory_handoffs, 0u);
}

TEST(SharingClassify, WidelySharedManyReadersPerInterval) {
  // One writer, seven readers re-reading every interval, writes frequent
  // enough that reads do not dwarf them.
  obs::SharingTracker t(8, 4);
  for (int i = 0; i < 10; ++i) {
    t.on_global_write(0, kA);
    t.on_read(0, kA);
    for (NodeId n = 1; n < 8; ++n) t.on_read(n, kA);
  }
  t.finalize();
  const auto row = only_row(t);
  EXPECT_EQ(row.pattern, obs::SharingPattern::WidelyShared);
  EXPECT_GE(row.max_interval_readers, 7u);
}

TEST(SharingClassify, ReadMostlyOutranksWidelyShared) {
  // Rare writes, overwhelming reads: read-mostly even though every
  // interval has many distinct readers (the widely-shared trigger).
  obs::SharingTracker t(8, 4);
  t.on_global_write(0, kA);
  t.on_read(0, kA);
  for (int i = 0; i < 10; ++i)
    for (NodeId n = 1; n < 8; ++n) t.on_read(n, kA);
  t.on_global_write(0, kA);
  for (int i = 0; i < 10; ++i)
    for (NodeId n = 1; n < 8; ++n) t.on_read(n, kA);
  t.finalize();
  const auto row = only_row(t);
  EXPECT_GE(row.reads, 16 * row.writes);
  EXPECT_EQ(row.pattern, obs::SharingPattern::ReadMostly);
}

TEST(SharingReplay, PuMulticastsToAllCopiesCuPrunesIdleOnes) {
  // Node 1 reads once, then node 0 writes 10 times. PU multicasts all ten
  // writes to node 1; the CU replay (threshold 4) delivers four, trips the
  // counter, and the drop costs a re-fetch when node 1 finally returns.
  obs::SharingTracker t(2, 4);
  t.on_read(1, kA);
  for (int i = 0; i < 10; ++i) t.on_global_write(0, kA);
  t.on_read(1, kA);  // returns after the counter tripped: re-fetch
  t.finalize();
  const auto row = only_row(t);
  EXPECT_EQ(row.pu_updates, 10u);
  EXPECT_EQ(row.cu_updates, 4u);
  EXPECT_EQ(row.cu_refetches, 1u);
}

TEST(SharingReplay, ActiveReaderKeepsReceivingUpdates) {
  // A reader that reads between every pair of writes never trips the
  // counter: CU delivers exactly what PU delivers, no re-fetches.
  obs::SharingTracker t(2, 4);
  t.on_read(1, kA);
  for (int i = 0; i < 10; ++i) {
    t.on_global_write(0, kA);
    t.on_read(1, kA);
  }
  t.finalize();
  const auto row = only_row(t);
  EXPECT_EQ(row.cu_updates, row.pu_updates);
  EXPECT_EQ(row.cu_refetches, 0u);
}

TEST(SharingReplay, CostModelPrefersTheCheaperReplay) {
  // The producer/consumer flag from above: updates are all useful, so the
  // projected PU cost must undercut WI (which pays a miss per episode).
  obs::SharingTracker t(4, 4);
  for (int i = 0; i < 50; ++i) {
    t.on_global_write(0, kA);
    for (NodeId n = 1; n < 4; ++n) t.on_read(n, kA);
  }
  t.finalize();
  const auto row = only_row(t);
  EXPECT_LT(row.cost_pu, row.cost_wi);
  EXPECT_NE(row.best, proto::Protocol::WI);
}

TEST(SharingReport, CheapestProtocolTieOrder) {
  EXPECT_EQ(obs::cheapest_protocol(1, 1, 1), proto::Protocol::WI);
  EXPECT_EQ(obs::cheapest_protocol(2, 1, 1), proto::Protocol::PU);
  EXPECT_EQ(obs::cheapest_protocol(2, 2, 1), proto::Protocol::CU);
  EXPECT_EQ(obs::cheapest_protocol(1, 2, 3), proto::Protocol::WI);
}

TEST(SharingReport, AggregatesBlocksIntoAllocs) {
  obs::SharingTracker t(4, 4);
  // Two blocks, one private to node 0, one producer/consumer.
  for (int i = 0; i < 5; ++i) {
    t.on_read(0, kA);
    t.on_global_write(0, kA);
    t.on_global_write(1, kB);
    t.on_read(2, kB);
  }
  t.finalize();
  const obs::SharingReport r = t.report(nullptr);
  EXPECT_EQ(r.blocks.size(), 2u);
  ASSERT_EQ(r.allocs.size(), 1u) << "unnamed blocks share one group";
  EXPECT_EQ(r.allocs[0].name, "(unnamed)");
  EXPECT_EQ(r.allocs[0].blocks, 2u);
  std::uint64_t census = 0;
  for (std::uint64_t n : r.pattern_blocks) census += n;
  EXPECT_EQ(census, r.blocks.size());
  EXPECT_EQ(r.total_cost(r.recommended),
            std::min({r.total_wi, r.total_pu, r.total_cu}));
}

// --- Machine-level: real runs with the tracker attached. ---------------

harness::RunResult tiny_lock_run(bool sharing,
                                 proto::Protocol p = proto::Protocol::WI) {
  harness::MachineConfig cfg;
  cfg.nprocs = 4;
  cfg.protocol = p;
  cfg.obs.sharing = sharing;
  harness::LockParams lp;
  lp.total_acquires = 64;
  return harness::run_lock_experiment(cfg, harness::LockKind::Ticket, lp);
}

TEST(SharingMachine, RealRunProducesAReport) {
  const harness::RunResult r = tiny_lock_run(true);
  ASSERT_TRUE(r.sharing.enabled());
  EXPECT_GT(r.sharing.blocks.size(), 0u);
  EXPECT_GT(r.sharing.total_wi, 0.0);
  bool saw_named = false;
  for (const auto& row : r.sharing.blocks) {
    saw_named |= !row.name.empty();
    EXPECT_GT(row.accessors, 0u);
  }
  EXPECT_TRUE(saw_named) << "lock state is allocated with symbolic names";
  bool saw_lock_alloc = false;
  for (const auto& a : r.sharing.allocs) saw_lock_alloc |= a.name == "ticket";
  EXPECT_TRUE(saw_lock_alloc);
}

TEST(SharingMachine, TrackerNeverPerturbsSimulatedResults) {
  // The no-guest-perturbation rule, end to end, under all three protocols
  // plus Hybrid: identical simulated cycles, latency metric and
  // categorized counters with the tracker attached or absent.
  for (proto::Protocol p : {proto::Protocol::WI, proto::Protocol::PU,
                            proto::Protocol::CU, proto::Protocol::Hybrid}) {
    const harness::RunResult off = tiny_lock_run(false, p);
    const harness::RunResult on = tiny_lock_run(true, p);
    EXPECT_FALSE(off.sharing.enabled());
    ASSERT_TRUE(on.sharing.enabled());
    EXPECT_EQ(off.cycles, on.cycles) << proto::to_string(p);
    EXPECT_DOUBLE_EQ(off.avg_latency, on.avg_latency) << proto::to_string(p);
    EXPECT_EQ(stats::to_json(off.counters), stats::to_json(on.counters))
        << proto::to_string(p);
  }
}

TEST(SharingMachine, UpdateProtocolRunCountsDeliveriesAndWaste) {
  const harness::RunResult r = tiny_lock_run(true, proto::Protocol::PU);
  ASSERT_TRUE(r.sharing.enabled());
  std::uint64_t delivered = 0, wasted = 0;
  for (const auto& row : r.sharing.blocks) {
    delivered += row.updates_delivered;
    wasted += row.updates_wasted;
    EXPECT_LE(row.updates_wasted, row.updates_delivered);
  }
  EXPECT_GT(delivered, 0u) << "a contended PU lock multicasts updates";
  EXPECT_GT(wasted, 0u) << "spinning writers overwrite unread deliveries";
}

TEST(SharingMachine, InvalProtocolRunCountsInvalidations) {
  const harness::RunResult r = tiny_lock_run(true, proto::Protocol::WI);
  std::uint64_t invals = 0;
  for (const auto& row : r.sharing.blocks) invals += row.invals_sent;
  EXPECT_GT(invals, 0u) << "a contended WI lock invalidates spinners";
}

TEST(SharingMachine, AdviceIsProtocolInvariant) {
  // The advisor consumes the global write order and reader sets, both of
  // which every protocol preserves: the same program must yield the same
  // recommendation whichever protocol observed it.
  const harness::RunResult wi = tiny_lock_run(true, proto::Protocol::WI);
  const harness::RunResult pu = tiny_lock_run(true, proto::Protocol::PU);
  EXPECT_EQ(wi.sharing.recommended, pu.sharing.recommended);
  ASSERT_EQ(wi.sharing.blocks.size(), pu.sharing.blocks.size());
  for (std::size_t i = 0; i < wi.sharing.blocks.size(); ++i)
    EXPECT_EQ(wi.sharing.blocks[i].pattern, pu.sharing.blocks[i].pattern)
        << wi.sharing.blocks[i].name;
}

TEST(SharingJson, RunFieldsEmitSectionOnlyWhenEnabled) {
  const harness::RunResult off = tiny_lock_run(false);
  std::ostringstream a;
  {
    stats::JsonWriter w(a);
    w.begin_object();
    harness::write_run_fields(w, off);
    w.end_object();
  }
  EXPECT_EQ(a.str().find("\"sharing\""), std::string::npos);

  const harness::RunResult on = tiny_lock_run(true);
  std::ostringstream b;
  {
    stats::JsonWriter w(b);
    w.begin_object();
    harness::write_run_fields(w, on);
    w.end_object();
  }
  const stats::JsonValue doc = stats::parse_json(b.str());
  const stats::JsonValue& s = doc.at("sharing");
  EXPECT_EQ(s.at("schema").integer, obs::SharingReport::kSchema);
  EXPECT_EQ(s.at("nprocs").integer, 4u);
  ASSERT_GT(s.at("blocks").array.size(), 0u);
  const stats::JsonValue& blk = s.at("blocks").array[0];
  EXPECT_NE(blk.find("pattern"), nullptr);
  EXPECT_NE(blk.at("cost").find("WI"), nullptr);
  EXPECT_NE(blk.at("replay").find("cu_refetches"), nullptr);
  EXPECT_NE(s.find("recommended"), nullptr);
  EXPECT_GT(s.at("allocs").array.size(), 0u);
}

TEST(SharingJson, StrippingSectionRestoresByteIdentity) {
  const harness::RunResult off = tiny_lock_run(false);
  harness::RunResult stripped = tiny_lock_run(true);
  stripped.sharing = obs::SharingReport{};
  std::ostringstream a, b;
  {
    stats::JsonWriter w(a);
    w.begin_object();
    harness::write_run_fields(w, off);
    w.end_object();
  }
  {
    stats::JsonWriter w(b);
    w.begin_object();
    harness::write_run_fields(w, stripped);
    w.end_object();
  }
  EXPECT_EQ(a.str(), b.str());
}

TEST(SharingReportPrint, NoOpWhenDisabledTableWhenEnabled) {
  std::ostringstream os;
  stats::print_sharing(os, obs::SharingReport{});
  EXPECT_TRUE(os.str().empty());
  const harness::RunResult r = tiny_lock_run(true);
  stats::print_sharing(os, r.sharing);
  EXPECT_NE(os.str().find("recommend"), std::string::npos);
  EXPECT_NE(os.str().find("per allocation:"), std::string::npos);
  EXPECT_NE(os.str().find("ticket"), std::string::npos);
}

// --- stats::Table (the shared formatter the reports above print with). --

TEST(StatsTable, AutoWidthRightAlignAndRule) {
  stats::Table t = stats::Table::figure({"name", "v"});
  t.add_row({"a", "1"});
  t.add_row({"long-name", "22"});
  std::ostringstream os;
  t.print(os);
  EXPECT_EQ(os.str(),
            "name        v\n"
            "-------------\n"
            "a           1\n"
            "long-name  22\n");
}

TEST(StatsTable, FixedWidthPadsButNeverTruncates) {
  stats::Table t({{"", 6, /*left=*/true, ""}, {"", 4, /*left=*/false, " "}});
  t.add_row({"ab", "1"});
  t.add_row({"longer-than-six", "12345"});
  std::ostringstream os;
  t.print(os);
  EXPECT_EQ(os.str(),
            "ab        1\n"
            "longer-than-six 12345\n");
}

TEST(StatsTable, FinalLeftCellHasNoTrailingPadding) {
  stats::Table t({{"", 8, /*left=*/true, ""}, {"", 0, /*left=*/true, " "}});
  t.add_row({"k", "v"});
  std::ostringstream os;
  t.print(os);
  EXPECT_EQ(os.str(), "k        v\n");
}

TEST(StatsTable, CsvIgnoresAlignment) {
  stats::Table t = stats::Table::figure({"a", "b"});
  t.add_row({"x", "1"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\nx,1\n");
}

TEST(StatsTable, HarnessTableDelegates) {
  // The bench-facing wrapper must format exactly like the figure-style
  // stats::Table it is built on.
  harness::Table h({"series", "p1", "p2"});
  h.add_row({"WI", "1.0", "2.0"});
  stats::Table s = stats::Table::figure({"series", "p1", "p2"});
  s.add_row({"WI", "1.0", "2.0"});
  std::ostringstream a, b;
  h.print(a);
  s.print(b);
  EXPECT_EQ(a.str(), b.str());
  EXPECT_EQ(harness::Table::num(3.14159, 2), stats::Table::num(3.14159, 2));
}

} // namespace
