// Unit tests for the data cache structure and its change notifications.
#include "mem/cache.hpp"

#include <gtest/gtest.h>

namespace {

using namespace ccsim;
using namespace ccsim::mem;

TEST(Cache, GeometryFromSize) {
  DataCache c(64 * 1024);
  EXPECT_EQ(c.num_sets(), 1024u);
  DataCache small(4 * 1024);
  EXPECT_EQ(small.num_sets(), 64u);
}

TEST(Cache, FindOnlyMatchesValidSameBlock) {
  DataCache c(4 * 1024);
  const BlockAddr b = block_of(kSharedBase);
  EXPECT_EQ(c.find(b), nullptr);
  CacheLine& l = c.set_for(b);
  l.block = b;
  l.state = LineState::Shared;
  EXPECT_EQ(c.find(b), &l);
  // A different block mapping to the same set must not match.
  const BlockAddr other = b + c.num_sets();
  EXPECT_EQ(&c.set_for(other), &l);
  EXPECT_EQ(c.find(other), nullptr);
  l.state = LineState::Invalid;
  EXPECT_EQ(c.find(b), nullptr);
}

TEST(Cache, ReadWriteBytesWithinWord) {
  DataCache c(4 * 1024);
  const Addr a = kSharedBase + 128;
  CacheLine& l = c.set_for(block_of(a));
  l.block = block_of(a);
  l.state = LineState::ValidU;
  c.write(a, 8, 0x1122334455667788ull);
  EXPECT_EQ(c.read(a, 8), 0x1122334455667788ull);
  EXPECT_EQ(c.read(a, 4), 0x55667788u);
  EXPECT_EQ(c.read(a + 4, 4), 0x11223344u);
  c.write(a + 2, 1, 0xff);
  EXPECT_EQ(c.read(a, 8), 0x1122334455ff7788ull);
}

TEST(Cache, WatchersAreOneShotAndPerBlock) {
  DataCache c(4 * 1024);
  const BlockAddr b1 = block_of(kSharedBase);
  const BlockAddr b2 = b1 + 1;
  int fired1 = 0, fired2 = 0;
  c.watch(b1, [&] { ++fired1; });
  c.watch(b2, [&] { ++fired2; });
  c.notify(b1);
  EXPECT_EQ(fired1, 1);
  EXPECT_EQ(fired2, 0);
  c.notify(b1);  // one-shot: no second firing
  EXPECT_EQ(fired1, 1);
  c.notify(b2);
  EXPECT_EQ(fired2, 1);
}

TEST(Cache, WatcherMayResubscribeDuringNotify) {
  DataCache c(4 * 1024);
  const BlockAddr b = block_of(kSharedBase);
  int fired = 0;
  std::function<void()> self = [&] {
    if (++fired < 3) c.watch(b, self);
  };
  c.watch(b, self);
  c.notify(b);
  c.notify(b);
  c.notify(b);
  c.notify(b);  // no watcher left
  EXPECT_EQ(fired, 3);
}

TEST(Cache, MultipleWatchersAllFire) {
  DataCache c(4 * 1024);
  const BlockAddr b = block_of(kSharedBase);
  int fired = 0;
  for (int i = 0; i < 5; ++i) c.watch(b, [&] { ++fired; });
  c.notify(b);
  EXPECT_EQ(fired, 5);
}

} // namespace
