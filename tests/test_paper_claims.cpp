// Regression guards for the paper's section-4 findings, as recorded in
// EXPERIMENTS.md. Each test pins one qualitative claim (who wins, which
// direction a trade-off goes) at a scale small enough for CI; the bench
// binaries reproduce the full tables.
#include "ccsim.hpp"

#include <gtest/gtest.h>

namespace {

using namespace ccsim;
using harness::BarrierKind;
using harness::LockKind;
using harness::MachineConfig;
using harness::ReductionKind;
using proto::Protocol;

double lock_latency(Protocol p, unsigned n, LockKind k,
                    std::uint64_t acquires = 1600) {
  MachineConfig cfg;
  cfg.protocol = p;
  cfg.nprocs = n;
  return harness::run_lock_experiment(cfg, k, {.total_acquires = acquires})
      .avg_latency;
}

double barrier_latency(Protocol p, unsigned n, BarrierKind k,
                       std::uint64_t episodes = 250) {
  MachineConfig cfg;
  cfg.protocol = p;
  cfg.nprocs = n;
  return harness::run_barrier_experiment(cfg, k, {episodes}).avg_latency;
}

double reduction_latency(Protocol p, unsigned n, ReductionKind k,
                         std::uint64_t rounds = 250) {
  MachineConfig cfg;
  cfg.protocol = p;
  cfg.nprocs = n;
  return harness::run_reduction_experiment(cfg, k, {.rounds = rounds}).avg_latency;
}

// --- figure 8: locks -------------------------------------------------

TEST(PaperClaims, TicketUpdateBeatsEverythingAtFourProcs) {
  const double best_update =
      std::min(lock_latency(Protocol::PU, 4, LockKind::Ticket),
               lock_latency(Protocol::CU, 4, LockKind::Ticket));
  EXPECT_LT(best_update, lock_latency(Protocol::WI, 4, LockKind::Ticket));
  EXPECT_LT(best_update, lock_latency(Protocol::WI, 4, LockKind::Mcs));
  EXPECT_LT(best_update, lock_latency(Protocol::PU, 4, LockKind::Mcs));
  EXPECT_LT(best_update, lock_latency(Protocol::CU, 4, LockKind::Mcs));
}

TEST(PaperClaims, McsUnderCuBestLockAtSixteenProcs) {
  const double mcs_cu = lock_latency(Protocol::CU, 16, LockKind::Mcs);
  EXPECT_LT(mcs_cu, lock_latency(Protocol::WI, 16, LockKind::Mcs));
  EXPECT_LT(mcs_cu, lock_latency(Protocol::PU, 16, LockKind::Mcs));
  EXPECT_LT(mcs_cu, lock_latency(Protocol::CU, 16, LockKind::Ticket));
  EXPECT_LT(mcs_cu, lock_latency(Protocol::WI, 16, LockKind::Ticket));
}

TEST(PaperClaims, McsUnderPuIsTheWorstMcsVariantAtThirtyTwo) {
  const double pu = lock_latency(Protocol::PU, 32, LockKind::Mcs);
  EXPECT_GT(pu, lock_latency(Protocol::CU, 32, LockKind::Mcs) * 1.5)
      << "the paper's ~2x CU gap";
  EXPECT_GT(pu, lock_latency(Protocol::WI, 32, LockKind::Mcs));
}

TEST(PaperClaims, TicketUpdateFarAheadOfTicketWiAtEverySize) {
  for (unsigned n : {2u, 8u, 32u}) {
    EXPECT_LT(lock_latency(Protocol::PU, n, LockKind::Ticket) * 1.5,
              lock_latency(Protocol::WI, n, LockKind::Ticket))
        << "P=" << n;
  }
}

// --- figures 9/10: lock traffic --------------------------------------

TEST(PaperClaims, UcMcsCutsUpdatesAndMultipliesMisses) {
  MachineConfig cfg;
  cfg.protocol = Protocol::PU;
  cfg.nprocs = 32;
  const auto mcs = harness::run_lock_experiment(cfg, LockKind::Mcs,
                                                {.total_acquires = 1600});
  MachineConfig cfg2 = cfg;
  const auto uc = harness::run_lock_experiment(cfg2, LockKind::UcMcs,
                                               {.total_acquires = 1600});
  EXPECT_LT(uc.counters.updates.total(), mcs.counters.updates.total() * 7 / 10)
      << "the paper reports a 39% reduction";
  EXPECT_GT(uc.counters.misses.total(), mcs.counters.misses.total() * 10)
      << "the paper reports 1089 -> 31588";
}

TEST(PaperClaims, McsUpdateTrafficIsMostlyUseless) {
  MachineConfig cfg;
  cfg.protocol = Protocol::PU;
  cfg.nprocs = 32;
  const auto r = harness::run_lock_experiment(cfg, LockKind::Mcs,
                                              {.total_acquires = 1600});
  EXPECT_GT(r.counters.updates.useless() * 1, r.counters.updates.useful() * 4)
      << "proliferation-dominated";
}

// --- figure 11: barriers ----------------------------------------------

TEST(PaperClaims, CentralBarrierCrossoverWiWinsOnlyLarge) {
  // Small machines: update protocols win; 16+: WI wins.
  EXPECT_LT(barrier_latency(Protocol::PU, 4, BarrierKind::Central),
            barrier_latency(Protocol::WI, 4, BarrierKind::Central));
  EXPECT_LT(barrier_latency(Protocol::WI, 32, BarrierKind::Central),
            barrier_latency(Protocol::PU, 32, BarrierKind::Central));
}

TEST(PaperClaims, DisseminationUnderUpdateIsTheBestBarrierEverywhere) {
  for (unsigned n : {4u, 16u, 32u}) {
    const double db_u = barrier_latency(Protocol::PU, n, BarrierKind::Dissemination);
    for (BarrierKind k :
         {BarrierKind::Central, BarrierKind::Dissemination, BarrierKind::Tree}) {
      for (Protocol p : {Protocol::WI, Protocol::PU, Protocol::CU}) {
        if (k == BarrierKind::Dissemination && p != Protocol::WI) continue;
        EXPECT_LE(db_u, barrier_latency(p, n, k) * 1.02)
            << "P=" << n << " " << to_string(k) << "/" << proto::to_string(p);
      }
    }
  }
}

TEST(PaperClaims, TreeBarrierUpdateBeatsWiEverywhere) {
  for (unsigned n : {4u, 16u, 32u}) {
    EXPECT_LT(barrier_latency(Protocol::PU, n, BarrierKind::Tree),
              barrier_latency(Protocol::WI, n, BarrierKind::Tree))
        << "P=" << n;
  }
}

// --- figure 13: barrier update usefulness -----------------------------

TEST(PaperClaims, CentralBarrierUpdatesMostlyUseless_DisseminationAllUseful) {
  MachineConfig cfg;
  cfg.protocol = Protocol::PU;
  cfg.nprocs = 32;
  const auto cb = harness::run_barrier_experiment(cfg, BarrierKind::Central,
                                                  {.episodes = 100});
  EXPECT_GT(cb.counters.updates.useless(), cb.counters.updates.useful() * 3);

  MachineConfig cfg2 = cfg;
  const auto db = harness::run_barrier_experiment(cfg2, BarrierKind::Dissemination,
                                                  {.episodes = 100});
  EXPECT_EQ(db.counters.updates.useless(), 0u);
}

// --- figure 14: reductions ---------------------------------------------

TEST(PaperClaims, ReductionStrategyDependsOnProtocol) {
  const unsigned n = 16;
  // WI: parallel wins.
  EXPECT_LT(reduction_latency(Protocol::WI, n, ReductionKind::Parallel),
            reduction_latency(Protocol::WI, n, ReductionKind::Sequential));
  // PU/CU: sequential wins.
  EXPECT_LT(reduction_latency(Protocol::PU, n, ReductionKind::Sequential),
            reduction_latency(Protocol::PU, n, ReductionKind::Parallel));
  EXPECT_LT(reduction_latency(Protocol::CU, n, ReductionKind::Sequential),
            reduction_latency(Protocol::CU, n, ReductionKind::Parallel));
  // Update-based sequential beats WI parallel outright.
  EXPECT_LT(reduction_latency(Protocol::PU, n, ReductionKind::Sequential),
            reduction_latency(Protocol::WI, n, ReductionKind::Parallel));
}

// --- figure 16: reduction update usefulness ----------------------------

TEST(PaperClaims, ReductionUpdatesLargelyUseful) {
  for (ReductionKind k : {ReductionKind::Parallel, ReductionKind::Sequential}) {
    MachineConfig cfg;
    cfg.protocol = Protocol::PU;
    cfg.nprocs = 16;
    const auto r = harness::run_reduction_experiment(cfg, k, {.rounds = 150});
    ASSERT_GT(r.counters.updates.total(), 0u);
    EXPECT_GT(r.counters.updates.useful() * 2, r.counters.updates.total())
        << to_string(k);
  }
}

// --- prose: imbalance flips the reduction winner -----------------------

TEST(PaperClaims, ImbalanceMakesParallelReductionCompetitive) {
  MachineConfig cfg;
  cfg.protocol = Protocol::PU;
  cfg.nprocs = 16;
  const auto pr = harness::run_reduction_experiment(
      cfg, ReductionKind::Parallel, {.rounds = 200, .imbalance_max = 2000});
  MachineConfig cfg2 = cfg;
  const auto sr = harness::run_reduction_experiment(
      cfg2, ReductionKind::Sequential, {.rounds = 200, .imbalance_max = 2000});
  EXPECT_LT(pr.avg_latency, sr.avg_latency)
      << "with heavy imbalance the parallel reduction overtakes";
}

} // namespace
