// Barrier correctness across protocols and machine sizes: separation
// (nobody exits episode e before everyone entered it), repeated episodes
// with sense reversal, odd processor counts, and traffic expectations.
#include "ccsim.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <tuple>
#include <vector>

namespace {

using namespace ccsim;
using harness::BarrierKind;
using harness::Machine;
using harness::MachineConfig;
using proto::Protocol;

std::unique_ptr<sync::Barrier> make_barrier(Machine& m, BarrierKind k) {
  switch (k) {
    case BarrierKind::Central: return std::make_unique<sync::CentralBarrier>(m);
    case BarrierKind::Dissemination:
      return std::make_unique<sync::DisseminationBarrier>(m);
    case BarrierKind::Tree: return std::make_unique<sync::TreeBarrier>(m);
    case BarrierKind::CombiningTree:
      return std::make_unique<sync::CombiningTreeBarrier>(m);
  }
  return nullptr;
}

using Combo = std::tuple<Protocol, BarrierKind, unsigned>;

std::string combo_name(const ::testing::TestParamInfo<Combo>& info) {
  const Protocol p = std::get<0>(info.param);
  const BarrierKind k = std::get<1>(info.param);
  const unsigned n = std::get<2>(info.param);
  std::string name = std::string(proto::to_string(p)) + "_";
  name += (k == BarrierKind::Central         ? "cb"
           : k == BarrierKind::Dissemination ? "db"
           : k == BarrierKind::Tree          ? "tb"
                                             : "ct");
  name += "_" + std::to_string(n);
  return name;
}

class BarrierCorrectness : public ::testing::TestWithParam<Combo> {};

INSTANTIATE_TEST_SUITE_P(
    Sweep, BarrierCorrectness,
    ::testing::Combine(::testing::Values(Protocol::WI, Protocol::PU, Protocol::CU),
                       ::testing::Values(BarrierKind::Central,
                                         BarrierKind::Dissemination,
                                         BarrierKind::Tree,
                                         BarrierKind::CombiningTree),
                       ::testing::Values(1u, 2u, 5u, 8u, 16u)),
    combo_name);

TEST_P(BarrierCorrectness, SeparationAcrossEpisodes) {
  const auto& [p, k, n] = GetParam();
  MachineConfig cfg;
  cfg.protocol = p;
  cfg.nprocs = n;
  Machine m(cfg);
  auto barrier = make_barrier(m, k);

  const int episodes = 30;
  std::vector<int> arrived(n, 0);   // episodes entered per proc
  std::vector<int> departed(n, 0);  // episodes exited per proc

  m.run_all([&](cpu::Cpu& c) -> sim::Task {
    for (int e = 0; e < episodes; ++e) {
      arrived[c.id()] = e + 1;
      // Unbalanced work before the barrier stresses the separation.
      co_await c.think(1 + (c.id() * 7 + e * 13) % 50);
      co_await barrier->wait(c);
      departed[c.id()] = e + 1;
      // Separation: when I exit episode e, everyone has entered it.
      for (unsigned q = 0; q < n; ++q) {
        EXPECT_GE(arrived[q], e + 1) << "proc " << q << " had not entered episode "
                                     << e << " when proc " << c.id() << " left it";
      }
    }
  });
  for (unsigned q = 0; q < n; ++q) EXPECT_EQ(departed[q], episodes);
}

TEST_P(BarrierCorrectness, BackToBackEpisodesDoNotInterfere) {
  const auto& [p, k, n] = GetParam();
  MachineConfig cfg;
  cfg.protocol = p;
  cfg.nprocs = n;
  Machine m(cfg);
  auto barrier = make_barrier(m, k);
  // Tight loop with zero work: exercises sense reversal / parity flipping.
  const int episodes = 40;
  std::vector<std::uint64_t> done(n, 0);
  m.run_all([&](cpu::Cpu& c) -> sim::Task {
    for (int e = 0; e < episodes; ++e) {
      co_await barrier->wait(c);
      ++done[c.id()];
    }
  });
  for (unsigned q = 0; q < n; ++q) EXPECT_EQ(done[q], static_cast<unsigned>(episodes));
}

TEST(DisseminationBarrier, UpdateProtocolsGenerateNoUselessUpdates) {
  // Paper section 4.2: the dissemination barrier's update traffic under
  // PU/CU is essentially all useful (each flag write updates exactly the
  // one spinner that needs it).
  for (Protocol p : {Protocol::PU, Protocol::CU}) {
    MachineConfig cfg;
    cfg.protocol = p;
    cfg.nprocs = 8;
    Machine m(cfg);
    sync::DisseminationBarrier barrier(m);
    m.run_all([&](cpu::Cpu& c) -> sim::Task {
      for (int e = 0; e < 50; ++e) co_await barrier.wait(c);
    });
    const auto& u = m.counters().updates;
    EXPECT_GT(u.useful(), 0u);
    // Allow a tiny tail of unconsumed end-of-run updates.
    EXPECT_LE(u.useless(), u.total() / 10)
        << "dissemination barrier should be nearly all useful updates under "
        << proto::to_string(p);
  }
}

TEST(CentralBarrier, UpdateProtocolsGenerateMostlyUselessUpdates) {
  // Paper section 4.2: the centralized barrier's counter updates are
  // mostly useless under update protocols.
  MachineConfig cfg;
  cfg.protocol = Protocol::PU;
  cfg.nprocs = 8;
  Machine m(cfg);
  sync::CentralBarrier barrier(m);
  m.run_all([&](cpu::Cpu& c) -> sim::Task {
    for (int e = 0; e < 50; ++e) co_await barrier.wait(c);
  });
  const auto& u = m.counters().updates;
  EXPECT_GT(u.total(), 0u);
  EXPECT_GT(u.useless(), u.useful());
}

TEST(CombiningTreeBarrier, BeatsGlobalSenseTreeUnderUpdates) {
  // The extension claim (abl_barrier_algos): replacing figure 5's global
  // sense flag with a binary wakeup tree of per-processor flags wins under
  // every protocol at 32 procs (at smaller sizes the global flag's storm
  // is not yet the bottleneck).
  for (Protocol p : {Protocol::WI, Protocol::PU}) {
    Cycle tree = 0, ctree = 0;
    for (bool combining : {false, true}) {
      MachineConfig cfg;
      cfg.protocol = p;
      cfg.nprocs = 32;
      Machine m(cfg);
      std::unique_ptr<sync::Barrier> b;
      if (combining)
        b = std::make_unique<sync::CombiningTreeBarrier>(m);
      else
        b = std::make_unique<sync::TreeBarrier>(m);
      const Cycle t = m.run_all([&](cpu::Cpu& c) -> sim::Task {
        for (int e = 0; e < 60; ++e) co_await b->wait(c);
      });
      (combining ? ctree : tree) = t;
    }
    EXPECT_LT(ctree, tree) << proto::to_string(p);
  }
}

TEST(TreeBarrier, ShapeMatchesMcsArityFour) {
  MachineConfig cfg;
  cfg.protocol = Protocol::WI;
  cfg.nprocs = 9;  // root 0 with children 1..4; node 1 with children 5..8
  Machine m(cfg);
  sync::TreeBarrier barrier(m);
  m.run_all([&](cpu::Cpu& c) -> sim::Task {
    for (int e = 0; e < 5; ++e) co_await barrier.wait(c);
  });
  // After an even number of... 5 episodes: globalsense ends at the 5th
  // toggle value (1,0,1,0,1) = 1.
  EXPECT_EQ(m.peek(barrier.globalsense_addr()), 1u);
}

} // namespace
