// Scenario tests for the update classifier (paper section 3.2 / [2]).
#include "stats/update_classifier.hpp"

#include <gtest/gtest.h>

namespace {

using namespace ccsim;
using namespace ccsim::stats;

struct Fixture : ::testing::Test {
  Counters counters;
  UpdateClassifier uc{4, counters};
  const Addr w0 = mem::kSharedBase;
  const Addr w1 = mem::kSharedBase + 8;
  const mem::BlockAddr b = mem::block_of(mem::kSharedBase);

  std::uint64_t count(UpdateClass c) const { return counters.updates[c]; }
};

TEST_F(Fixture, ReferencedUpdateIsTrueSharing) {
  uc.on_update_applied(0, w0);
  uc.on_reference(0, w0);
  EXPECT_EQ(count(UpdateClass::TrueSharing), 1u);
}

TEST_F(Fixture, StoreToUpdatedWordAlsoCountsAsReference) {
  uc.on_update_applied(0, w0);
  uc.on_reference(0, w0);  // the controller reports loads and stores alike
  uc.on_update_applied(0, w0);
  uc.finalize();
  EXPECT_EQ(count(UpdateClass::TrueSharing), 1u);
  EXPECT_EQ(count(UpdateClass::Termination), 1u);
}

TEST_F(Fixture, OverwrittenUnreferencedUpdateIsProliferation) {
  uc.on_update_applied(0, w0);
  uc.on_update_applied(0, w0);  // overwrites the pending one
  EXPECT_EQ(count(UpdateClass::Proliferation), 1u);
}

TEST_F(Fixture, OtherWordActivityMakesItFalseSharing) {
  uc.on_update_applied(0, w0);
  uc.on_reference(0, w1);       // touches another word of the block
  uc.on_update_applied(0, w0);  // overwrite ends the lifetime
  EXPECT_EQ(count(UpdateClass::FalseSharing), 1u);
  EXPECT_EQ(count(UpdateClass::Proliferation), 0u);
}

TEST_F(Fixture, SuccessiveUselessUpdatesAreProliferationNotFalse) {
  // The paper: successive useless updates to the same word classify as
  // proliferation unless ACTIVE false sharing is detected.
  for (int i = 0; i < 5; ++i) uc.on_update_applied(0, w0);
  EXPECT_EQ(count(UpdateClass::Proliferation), 4u);
  EXPECT_EQ(count(UpdateClass::FalseSharing), 0u);
}

TEST_F(Fixture, ReplacementEndsLifetimes) {
  uc.on_update_applied(0, w0);
  uc.on_update_applied(0, w1);
  uc.on_block_replaced(0, b);
  EXPECT_EQ(count(UpdateClass::Replacement), 2u);
}

TEST_F(Fixture, TerminationAtProgramEnd) {
  uc.on_update_applied(0, w0);
  uc.finalize();
  EXPECT_EQ(count(UpdateClass::Termination), 1u);
}

TEST_F(Fixture, TerminationWithOtherWordActivityIsFalseSharing) {
  uc.on_update_applied(0, w0);
  uc.on_reference(0, w1);
  uc.finalize();
  EXPECT_EQ(count(UpdateClass::FalseSharing), 1u);
  EXPECT_EQ(count(UpdateClass::Termination), 0u);
}

TEST_F(Fixture, DropUpdateCountsOnceAndFlushesBlock) {
  uc.on_update_applied(0, w0);  // pending, unreferenced
  uc.on_drop_update(0, w1);     // this arrival trips the CU counter
  EXPECT_EQ(count(UpdateClass::Drop), 1u);
  EXPECT_EQ(count(UpdateClass::Proliferation), 1u) << "pending update dies unconsumed";
}

TEST_F(Fixture, PerProcessorLifetimesAreIndependent) {
  uc.on_update_applied(0, w0);
  uc.on_update_applied(1, w0);
  uc.on_reference(0, w0);
  uc.finalize();
  EXPECT_EQ(count(UpdateClass::TrueSharing), 1u);
  EXPECT_EQ(count(UpdateClass::Termination), 1u);
}

TEST_F(Fixture, ReferenceWithoutPendingIsNoop) {
  uc.on_reference(0, w0);
  uc.on_reference(2, w1);
  EXPECT_EQ(counters.updates.total(), 0u);
}

TEST_F(Fixture, FinalizeIsIdempotent) {
  uc.on_update_applied(0, w0);
  uc.finalize();
  uc.finalize();
  EXPECT_EQ(counters.updates.total(), 1u);
}

} // namespace
