// Race-path coverage: the transient protocol paths (forward-nack +
// writeback replay, upgrade-converted-to-GetX, recalls hitting evicted
// owners, fills stalled by in-transaction victims) only trigger in narrow
// timing windows. These tests sweep a think()-offset across that window --
// the simulator is deterministic, so the sweep reliably covers the races --
// assert correctness at every offset, and assert that the rare messages
// actually fired somewhere in the sweep (so the paths are provably
// exercised, not silently skipped).
#include "ccsim.hpp"

#include <gtest/gtest.h>

namespace {

using namespace ccsim;
using harness::Machine;
using harness::MachineConfig;
using net::MsgType;
using proto::Protocol;

TEST(ProtocolRaces, WiForwardNackAndWritebackReplay) {
  // Proc 0 dirties block A, then evicts it via a conflicting load while
  // proc 1's read of A is in flight: depending on the offset, the home
  // forwards to proc 0 before/after the writeback, exercising FwdNack and
  // the waiting_wb replay.
  std::uint64_t nacks = 0;
  for (Cycle offset = 0; offset <= 120; offset += 4) {
    MachineConfig cfg;
    cfg.protocol = Protocol::WI;
    cfg.nprocs = 3;
    cfg.cache_bytes = 512;  // 8 sets
    Machine m(cfg);
    const Addr a = m.alloc().allocate_on(2, 8);
    const Addr conflict = a + 8 * mem::kBlockSize;  // same set as a
    std::uint64_t got = 0;
    std::vector<Machine::Program> ps;
    ps.push_back([&](cpu::Cpu& c) -> sim::Task {
      co_await c.store(a, 4242);  // Modified at proc 0
      co_await c.fence();
      (void)co_await c.load(conflict);  // evict dirty A -> writeback
    });
    ps.push_back([&, offset](cpu::Cpu& c) -> sim::Task {
      co_await c.think(80 + offset);
      got = co_await c.load(a);
    });
    ps.push_back([](cpu::Cpu& c) -> sim::Task { co_await c.think(1); });
    m.run(ps);
    EXPECT_EQ(got, 4242u) << "offset " << offset;
    nacks += m.counters().net.of(MsgType::FwdNack);
  }
  EXPECT_GT(nacks, 0u) << "the sweep never hit the forward/writeback race";
}

TEST(ProtocolRaces, WiUpgradeConvertedToGetXUnderContention) {
  // Two procs read-share a block, then both write nearly simultaneously:
  // the loser's Upgrade finds it is no longer a sharer and the home serves
  // data instead. Correctness: the final value is one of the two writes
  // and both writers' fences complete.
  std::uint64_t upgrades = 0, getx = 0;
  for (Cycle offset = 0; offset <= 60; offset += 3) {
    MachineConfig cfg;
    cfg.protocol = Protocol::WI;
    cfg.nprocs = 2;
    Machine m(cfg);
    const Addr a = m.alloc().allocate_on(0, 8);
    m.run_all([&, offset](cpu::Cpu& c) -> sim::Task {
      (void)co_await c.load(a);  // both Shared
      co_await c.think(c.id() == 0 ? 50 : 50 + offset % 7);
      co_await c.store(a, 100 + c.id());
      co_await c.fence();
    });
    const std::uint64_t v = m.peek(a);
    EXPECT_TRUE(v == 100 || v == 101) << "offset " << offset;
    upgrades += m.counters().net.of(MsgType::Upgrade);
    getx += m.counters().net.of(MsgType::GetX);
  }
  EXPECT_GT(upgrades, 0u);
  EXPECT_GT(getx, 0u) << "no upgrade was ever converted/raced to a GetX";
}

TEST(ProtocolRaces, PuRecallMeetsEvictedOwner) {
  // Proc 0 holds a block PrivateDirty, then evicts it (writeback in
  // flight) just as proc 1 reads it: the home's Recall can find the owner
  // without the line (RecallReply-absent + waiting_wb replay).
  std::uint64_t recalls = 0;
  for (Cycle offset = 0; offset <= 160; offset += 8) {
    MachineConfig cfg;
    cfg.protocol = Protocol::PU;
    cfg.nprocs = 2;
    cfg.cache_bytes = 512;
    Machine m(cfg);
    const Addr a = m.alloc().allocate_on(1, 8);
    const Addr conflict = a + 8 * mem::kBlockSize;
    std::uint64_t got = 0;
    std::vector<Machine::Program> ps;
    ps.push_back([&](cpu::Cpu& c) -> sim::Task {
      for (int i = 1; i <= 4; ++i) co_await c.store(a, 10 * i);  // -> private
      co_await c.fence();
      (void)co_await c.load(conflict);  // evict the private block
    });
    ps.push_back([&, offset](cpu::Cpu& c) -> sim::Task {
      co_await c.think(100 + offset);
      got = co_await c.load(a);
    });
    m.run(ps);
    EXPECT_EQ(got, 40u) << "offset " << offset;
    recalls += m.counters().net.of(MsgType::Recall);
  }
  EXPECT_GT(recalls, 0u) << "no recall was exercised across the sweep";
}

TEST(ProtocolRaces, UpdateOvertakesDataSHarmlessly) {
  // A reader's GetS is in flight while a writer streams updates: some
  // update lands before the DataS (acked-and-ignored), and the fill must
  // carry the newest value (read-at-send). The reader then spins to the
  // final value.
  for (Cycle offset = 0; offset <= 60; offset += 2) {
    MachineConfig cfg;
    cfg.protocol = Protocol::PU;
    cfg.nprocs = 3;
    Machine m(cfg);
    const Addr a = m.alloc().allocate_on(2, 8);
    std::vector<Machine::Program> ps;
    ps.push_back([&, offset](cpu::Cpu& c) -> sim::Task {  // reader
      co_await c.think(offset);
      co_await c.spin_until(a, [](std::uint64_t v) { return v == 20; });
    });
    ps.push_back([&](cpu::Cpu& c) -> sim::Task {  // writer
      for (int k = 1; k <= 20; ++k) {
        co_await c.store(a, static_cast<std::uint64_t>(k));
        co_await c.fence();
      }
    });
    ps.push_back([](cpu::Cpu& c) -> sim::Task { co_await c.think(1); });
    m.run(ps);  // termination proves the reader observed the final value
  }
}

TEST(ProtocolRaces, FillStalledByInTransactionVictim) {
  // Two blocks mapping to the same set: an Upgrade on the resident block
  // is outstanding while a fill for the conflicting block arrives. The
  // fill must wait (MSHR conflict) instead of evicting the transaction's
  // line; both writes must land.
  std::uint64_t hit_window = 0;
  for (Cycle offset = 0; offset <= 80; offset += 4) {
    MachineConfig cfg;
    cfg.protocol = Protocol::WI;
    cfg.nprocs = 3;
    cfg.cache_bytes = 512;
    Machine m(cfg);
    const Addr a = m.alloc().allocate_on(2, 8);
    const Addr b = a + 8 * mem::kBlockSize;  // same set
    std::vector<Machine::Program> ps;
    ps.push_back([&, offset](cpu::Cpu& c) -> sim::Task {
      (void)co_await c.load(a);        // Shared
      (void)co_await c.load(b);        // fill b (evicts a)...
      (void)co_await c.load(a);        // ...and re-fetch a: Shared again
      co_await c.think(offset);
      co_await c.store(a, 7);          // Upgrade on a in flight...
      (void)co_await c.load(b);        // ...while b's fill wants the set
      co_await c.fence();
    });
    // A second sharer so the upgrade needs a real invalidation round trip
    // (widening the window where the fill collides with the transaction).
    ps.push_back([&](cpu::Cpu& c) -> sim::Task { (void)co_await c.load(a); });
    ps.push_back([](cpu::Cpu& c) -> sim::Task { co_await c.think(1); });
    m.run(ps);
    EXPECT_EQ(m.peek(a), 7u) << "offset " << offset;
    ++hit_window;
  }
  EXPECT_GT(hit_window, 0u);
}

} // namespace
