// LatencyHistogram unit tests plus the fairness observation it enables.
#include "ccsim.hpp"

#include <gtest/gtest.h>

namespace {

using namespace ccsim;
using stats::LatencyHistogram;

TEST(Histogram, EmptyIsZeroes) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.percentile(0.5), 0u);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
}

TEST(Histogram, SingleValue) {
  LatencyHistogram h;
  h.add(42);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 42u);
  EXPECT_EQ(h.max(), 42u);
  EXPECT_EQ(h.mean(), 42.0);
  EXPECT_EQ(h.percentile(0.5), 42u);
  EXPECT_EQ(h.percentile(0.99), 42u);
}

TEST(Histogram, PercentilesOrderedAndBounded) {
  LatencyHistogram h;
  for (Cycle v = 1; v <= 1000; ++v) h.add(v);
  EXPECT_EQ(h.count(), 1000u);
  const Cycle p10 = h.percentile(0.10);
  const Cycle p50 = h.percentile(0.50);
  const Cycle p90 = h.percentile(0.90);
  const Cycle p99 = h.percentile(0.99);
  EXPECT_LE(p10, p50);
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
  EXPECT_LE(p99, h.max());
  EXPECT_GE(p10, h.min());
  // Log-bucket interpolation: p50 of uniform 1..1000 should land within
  // its power-of-two bucket (512..1000 holds ranks 512..1000, so ~500 is
  // in bucket 256..511).
  EXPECT_GE(p50, 256u);
  EXPECT_LE(p50, 1000u);
}

TEST(Histogram, MeanExact) {
  LatencyHistogram h;
  h.add(10);
  h.add(20);
  h.add(30);
  EXPECT_DOUBLE_EQ(h.mean(), 20.0);
}

TEST(Histogram, ZeroBucket) {
  LatencyHistogram h;
  for (int i = 0; i < 10; ++i) h.add(0);
  h.add(100);
  EXPECT_EQ(h.percentile(0.5), 0u);
  EXPECT_EQ(h.max(), 100u);
}

TEST(Histogram, PercentileZeroIsMin) {
  // Regression: q = 0 used to interpolate inside the minimum's bucket and
  // answer with its clamped upper bound once the bucket held other samples.
  LatencyHistogram h;
  h.add(42);
  EXPECT_EQ(h.percentile(0.0), 42u);
  h.add(40);  // same power-of-two bucket as 42
  h.add(43);
  EXPECT_EQ(h.percentile(0.0), 40u);
  EXPECT_EQ(h.percentile(-0.5), 40u);  // negative clamps to the minimum too
}

TEST(Histogram, MergePropagatesMinMax) {
  LatencyHistogram a, b;
  a.add(100);
  b.add(7);
  b.add(9000);
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.min(), 7u);
  EXPECT_EQ(a.max(), 9000u);
  EXPECT_EQ(a.percentile(0.0), 7u);
}

TEST(Histogram, MergeEmptyIsIdentity) {
  // An empty histogram's min_ sentinel must not leak into either operand.
  LatencyHistogram a, e;
  a.add(5);
  a.add(17);
  a.merge(e);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.min(), 5u);
  EXPECT_EQ(a.max(), 17u);
  e.merge(a);
  EXPECT_EQ(e.count(), 2u);
  EXPECT_EQ(e.min(), 5u);
  EXPECT_EQ(e.max(), 17u);
}

TEST(Histogram, MergeCombines) {
  LatencyHistogram a, b;
  a.add(1);
  a.add(2);
  b.add(1000);
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.max(), 1000u);
  EXPECT_EQ(a.min(), 1u);
}

TEST(Histogram, SummaryFormat) {
  LatencyHistogram h;
  h.add(5);
  const std::string s = h.summary();
  EXPECT_NE(s.find("n=1"), std::string::npos);
  EXPECT_NE(s.find("max=5"), std::string::npos);
}

TEST(Histogram, LockWorkloadRecordsAcquires) {
  harness::MachineConfig cfg;
  cfg.protocol = proto::Protocol::WI;
  cfg.nprocs = 4;
  const auto r = harness::run_lock_experiment(cfg, harness::LockKind::Ticket,
                                              {.total_acquires = 400});
  EXPECT_EQ(r.latency.count(), 400u);
  EXPECT_GT(r.latency.mean(), 0.0);
}

TEST(Histogram, TicketIsFairerThanTasAtTheTail) {
  // FIFO ticket lock: bounded waits. Backoff TAS: unfair -- a spinner can
  // lose arbitration repeatedly, fattening the tail. Compare p99/p50.
  const auto tail_ratio = [&](bool tas) {
    harness::MachineConfig cfg;
    cfg.protocol = proto::Protocol::WI;
    cfg.nprocs = 8;
    harness::Machine m(cfg);
    std::unique_ptr<sync::Lock> lock;
    if (tas)
      lock = std::make_unique<sync::TasLock>(m);
    else
      lock = std::make_unique<sync::TicketLock>(m);
    stats::LatencyHistogram h;
    m.run_all([&](cpu::Cpu& c) -> sim::Task {
      for (int i = 0; i < 60; ++i) {
        const Cycle t0 = c.queue().now();
        co_await lock->acquire(c);
        h.add(c.queue().now() - t0);
        co_await c.think(30);
        co_await lock->release(c);
      }
    });
    return static_cast<double>(h.percentile(0.99)) /
           std::max<double>(1.0, static_cast<double>(h.percentile(0.50)));
  };
  EXPECT_GT(tail_ratio(true), tail_ratio(false) * 1.5)
      << "TAS should have a materially fatter tail than the FIFO ticket lock";
}

} // namespace
