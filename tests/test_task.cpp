// Unit tests for the coroutine task type.
#include "sim/event_queue.hpp"
#include "sim/task.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace {

using ccsim::sim::delay;
using ccsim::sim::EventQueue;
using ccsim::sim::Task;

Task trivial(int& out) {
  out = 42;
  co_return;
}

TEST(Task, LazyUntilStarted) {
  int out = 0;
  Task t = trivial(out);
  EXPECT_EQ(out, 0);
  EXPECT_FALSE(t.done());
  t.start();
  EXPECT_EQ(out, 42);
  EXPECT_TRUE(t.done());
}

Task waits(EventQueue& q, int& out) {
  co_await delay(q, 10);
  out = 1;
  co_await delay(q, 5);
  out = 2;
}

TEST(Task, SuspendsOnDelay) {
  EventQueue q;
  int out = 0;
  Task t = waits(q, out);
  t.start();
  EXPECT_EQ(out, 0);
  q.run();
  EXPECT_EQ(out, 2);
  EXPECT_EQ(q.now(), 15u);
  EXPECT_TRUE(t.done());
}

Task child(EventQueue& q, int& out) {
  co_await delay(q, 3);
  ++out;
}

Task parent(EventQueue& q, int& out) {
  co_await child(q, out);
  co_await child(q, out);
  out *= 10;
}

TEST(Task, NestedTasksCompose) {
  EventQueue q;
  int out = 0;
  Task t = parent(q, out);
  t.start();
  q.run();
  EXPECT_EQ(out, 20);
  EXPECT_EQ(q.now(), 6u);
}

TEST(Task, OnDoneFires) {
  EventQueue q;
  int out = 0;
  bool done_flag = false;
  Task t = waits(q, out);
  t.start([&] { done_flag = true; });
  EXPECT_FALSE(done_flag);
  q.run();
  EXPECT_TRUE(done_flag);
}

Task thrower(EventQueue& q) {
  co_await delay(q, 1);
  throw std::runtime_error("boom");
}

TEST(Task, ExceptionPropagatesThroughAwait) {
  EventQueue q;
  bool caught = false;
  auto outer = [&](EventQueue& qq) -> Task {
    try {
      co_await thrower(qq);
    } catch (const std::runtime_error&) {
      caught = true;
    }
  };
  Task t = outer(q);
  t.start();
  q.run();
  EXPECT_TRUE(caught);
}

TEST(Task, RootExceptionRethrownViaCheck) {
  EventQueue q;
  Task t = thrower(q);
  t.start();
  q.run();
  EXPECT_THROW(t.rethrow_if_failed(), std::runtime_error);
}

Task deep(EventQueue& q, int depth, int& leaf) {
  if (depth == 0) {
    co_await delay(q, 1);
    leaf = 99;
    co_return;
  }
  co_await deep(q, depth - 1, leaf);
}

TEST(Task, DeepNestingSymmetricTransfer) {
  EventQueue q;
  int leaf = 0;
  // Deep chains must not overflow the host stack (symmetric transfer).
  Task t = deep(q, 50000, leaf);
  t.start();
  q.run();
  EXPECT_EQ(leaf, 99);
}

} // namespace
