// Unit tests for the discrete-event kernel.
#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace {

using ccsim::Cycle;
using ccsim::sim::EventQueue;

TEST(EventQueue, StartsAtZeroAndEmpty) {
  EventQueue q;
  EXPECT_EQ(q.now(), 0u);
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(q.step());
}

TEST(EventQueue, RunsEventsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(30, [&] { order.push_back(3); });
  q.schedule_at(10, [&] { order.push_back(1); });
  q.schedule_at(20, [&] { order.push_back(2); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), 30u);
}

TEST(EventQueue, TiesBreakInSchedulingOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 16; ++i) q.schedule_at(5, [&, i] { order.push_back(i); });
  q.run();
  for (int i = 0; i < 16; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueue, RelativeSchedulingUsesNow) {
  EventQueue q;
  Cycle seen = 0;
  q.schedule_at(100, [&] { q.schedule(5, [&] { seen = q.now(); }); });
  q.run();
  EXPECT_EQ(seen, 105u);
}

TEST(EventQueue, EventsMayScheduleMoreEvents) {
  EventQueue q;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 100) q.schedule(1, chain);
  };
  q.schedule(1, chain);
  q.run();
  EXPECT_EQ(count, 100);
  EXPECT_EQ(q.now(), 100u);
}

TEST(EventQueue, RunUntilStopsAtLimit) {
  EventQueue q;
  int ran = 0;
  q.schedule_at(10, [&] { ++ran; });
  q.schedule_at(20, [&] { ++ran; });
  EXPECT_FALSE(q.run_until(15));
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(q.pending(), 1u);
  EXPECT_TRUE(q.run_until(100));
  EXPECT_EQ(ran, 2);
}

TEST(EventQueue, ExecutedCounts) {
  EventQueue q;
  for (int i = 0; i < 7; ++i) q.schedule_at(i, [] {});
  q.run();
  EXPECT_EQ(q.executed(), 7u);
}

TEST(EventQueue, ZeroDelayRunsSameCycleAfterCurrent) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(5, [&] {
    order.push_back(1);
    q.schedule(0, [&] { order.push_back(2); });
  });
  q.schedule_at(5, [&] { order.push_back(3); });
  q.run();
  // The zero-delay event lands at t=5 but behind the already-queued one.
  EXPECT_EQ(order, (std::vector<int>{1, 3, 2}));
}

} // namespace
