// Reduction correctness: both strategies compute the true global maximum
// every round, under every protocol, with real locks/barriers and with the
// zero-traffic magic ones; plus the paper's traffic expectations.
#include "ccsim.hpp"

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

namespace {

using namespace ccsim;
using harness::Machine;
using harness::MachineConfig;
using proto::Protocol;

using Combo = std::tuple<Protocol, unsigned>;

class ReductionCorrectness : public ::testing::TestWithParam<Combo> {};

std::string combo_name(const ::testing::TestParamInfo<Combo>& info) {
  return std::string(proto::to_string(std::get<0>(info.param))) + "_" +
         std::to_string(std::get<1>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ReductionCorrectness,
    ::testing::Combine(::testing::Values(Protocol::WI, Protocol::PU, Protocol::CU),
                       ::testing::Values(1u, 2u, 7u, 8u)),
    combo_name);

TEST_P(ReductionCorrectness, ParallelWithMagicSync) {
  const auto& [p, n] = GetParam();
  MachineConfig cfg;
  cfg.protocol = p;
  cfg.nprocs = n;
  const auto r = harness::run_reduction_experiment(
      cfg, harness::ReductionKind::Parallel,
      {.rounds = 40, .imbalance_max = 0, .seed = 7, .verify = true});
  EXPECT_GT(r.cycles, 0u);
}

TEST_P(ReductionCorrectness, SequentialWithMagicSync) {
  const auto& [p, n] = GetParam();
  MachineConfig cfg;
  cfg.protocol = p;
  cfg.nprocs = n;
  const auto r = harness::run_reduction_experiment(
      cfg, harness::ReductionKind::Sequential,
      {.rounds = 40, .imbalance_max = 0, .seed = 7, .verify = true});
  EXPECT_GT(r.cycles, 0u);
}

TEST_P(ReductionCorrectness, ParallelWithRealTicketLockAndCentralBarrier) {
  const auto& [p, n] = GetParam();
  MachineConfig cfg;
  cfg.protocol = p;
  cfg.nprocs = n;
  Machine m(cfg);
  sync::TicketLock lock(m);
  sync::CentralBarrier barrier(m);
  sync::ParallelReduction red(m, lock, barrier);

  const int rounds = 12;
  const auto value = [n = n](int round, NodeId pid) {
    return ((static_cast<std::uint64_t>(round) + 1) << 16) |
           ((pid * 2654435761u + round * 40503u) & 0xffffu);
  };
  std::vector<std::uint64_t> oracle(rounds, 0);
  for (int r = 0; r < rounds; ++r)
    for (NodeId q = 0; q < n; ++q) oracle[r] = std::max(oracle[r], value(r, q));

  m.run_all([&](cpu::Cpu& c) -> sim::Task {
    for (int r = 0; r < rounds; ++r) {
      std::uint64_t result = 0;
      co_await red.reduce(c, value(r, c.id()), &result);
      if (result != oracle[r]) throw std::logic_error("wrong reduction result");
    }
  });
  EXPECT_EQ(m.peek(red.max_addr()), oracle[rounds - 1]);
}

TEST_P(ReductionCorrectness, SequentialWithRealTreeBarrier) {
  const auto& [p, n] = GetParam();
  MachineConfig cfg;
  cfg.protocol = p;
  cfg.nprocs = n;
  Machine m(cfg);
  sync::TreeBarrier barrier(m);
  sync::SequentialReduction red(m, barrier);

  const int rounds = 12;
  const auto value = [n = n](int round, NodeId pid) {
    return ((static_cast<std::uint64_t>(round) + 1) << 16) |
           ((pid * 40503u + round * 2654435761u) & 0xffffu);
  };
  std::vector<std::uint64_t> oracle(rounds, 0);
  for (int r = 0; r < rounds; ++r)
    for (NodeId q = 0; q < n; ++q) oracle[r] = std::max(oracle[r], value(r, q));

  m.run_all([&](cpu::Cpu& c) -> sim::Task {
    for (int r = 0; r < rounds; ++r) {
      std::uint64_t result = 0;
      co_await red.reduce(c, value(r, c.id()), &result);
      if (result != oracle[r]) throw std::logic_error("wrong reduction result");
    }
  });
  EXPECT_EQ(m.peek(red.max_addr()), oracle[rounds - 1]);
}

TEST(Reductions, UpdateProtocolReductionsAreLargelyUseful) {
  // Paper section 4.3 / figure 16: both reduction flavors show a large
  // fraction of useful updates under update-based protocols.
  for (auto kind : {harness::ReductionKind::Parallel, harness::ReductionKind::Sequential}) {
    MachineConfig cfg;
    cfg.protocol = Protocol::PU;
    cfg.nprocs = 8;
    const auto r = harness::run_reduction_experiment(cfg, kind, {.rounds = 60});
    const auto& u = r.counters.updates;
    ASSERT_GT(u.total(), 0u);
    EXPECT_GT(u.useful() * 2, u.total())
        << "expected >=50% useful updates for " << to_string(kind);
  }
}

TEST(Reductions, SequentialBeatsParallelUnderPU_TightSync) {
  // Paper figure 14: with tightly synchronized processes, the sequential
  // reduction outperforms the parallel one under update-based protocols.
  MachineConfig cfg;
  cfg.protocol = Protocol::PU;
  cfg.nprocs = 16;
  const auto par = harness::run_reduction_experiment(
      cfg, harness::ReductionKind::Parallel, {.rounds = 60});
  MachineConfig cfg2 = cfg;
  const auto seq = harness::run_reduction_experiment(
      cfg2, harness::ReductionKind::Sequential, {.rounds = 60});
  EXPECT_LT(seq.avg_latency, par.avg_latency);
}

TEST(Reductions, ParallelBeatsSequentialUnderWI_TightSync) {
  // Paper figure 14: under WI the parallel reduction wins.
  MachineConfig cfg;
  cfg.protocol = Protocol::WI;
  cfg.nprocs = 16;
  const auto par = harness::run_reduction_experiment(
      cfg, harness::ReductionKind::Parallel, {.rounds = 60});
  MachineConfig cfg2 = cfg;
  const auto seq = harness::run_reduction_experiment(
      cfg2, harness::ReductionKind::Sequential, {.rounds = 60});
  EXPECT_LT(par.avg_latency, seq.avg_latency);
}

} // namespace
