// PU/CU protocol behavior: write-through updates, ack counting, the
// private-block optimization with recalls, write-allocate, competitive
// drops and prunes.
#include "ccsim.hpp"

#include <gtest/gtest.h>

namespace {

using namespace ccsim;
using harness::Machine;
using harness::MachineConfig;
using mem::DirState;
using mem::LineState;
using proto::Protocol;

MachineConfig cfg_of(Protocol p, unsigned n) {
  MachineConfig c;
  c.protocol = p;
  c.nprocs = n;
  return c;
}

TEST(UpdateProtocol, SharerReceivesUpdateInPlace) {
  Machine m(cfg_of(Protocol::PU, 3));
  const Addr a = m.alloc().allocate_on(2, 8);
  const Addr flag = m.alloc().allocate_on(2, 8);
  std::vector<Machine::Program> ps;
  ps.push_back([&](cpu::Cpu& c) -> sim::Task {  // reader caches a
    (void)co_await c.load(a);
    co_await c.store(flag, 1);
    co_await c.spin_until(a, [](std::uint64_t v) { return v == 7; });
    // Spin satisfied by an update, not a refetch: no extra read miss.
  });
  ps.push_back([&](cpu::Cpu& c) -> sim::Task {  // writer
    co_await c.spin_until(flag, [](std::uint64_t v) { return v == 1; });
    co_await c.store(a, 7);
    co_await c.fence();
  });
  m.run(ps);
  // Reader's copy must be fresh and still valid.
  auto* line = m.node(0).cache_ctrl().cache().find(mem::block_of(a));
  ASSERT_NE(line, nullptr);
  EXPECT_EQ(m.node(0).cache_ctrl().cache().read(a, 8), 7u);
  // One useful update (the spinner referenced the word).
  EXPECT_GE(m.counters().updates[stats::UpdateClass::TrueSharing], 1u);
}

TEST(UpdateProtocol, WriteAllocatesAndWriterStaysSharer) {
  Machine m(cfg_of(Protocol::PU, 3));
  const Addr a = m.alloc().allocate_on(2, 8);
  m.run({[&](cpu::Cpu& c) -> sim::Task {
    co_await c.store(a, 1);  // write miss -> allocate
    co_await c.fence();
  }});
  auto* line = m.node(0).cache_ctrl().cache().find(mem::block_of(a));
  ASSERT_NE(line, nullptr);
  EXPECT_EQ(m.counters().misses.total(), 1u) << "the write-allocate fetch";
}

TEST(UpdateProtocol, PuGrantsPrivateToSoleSharer) {
  Machine m(cfg_of(Protocol::PU, 2));
  const Addr a = m.alloc().allocate_on(1, 8);
  m.run({[&](cpu::Cpu& c) -> sim::Task {
    co_await c.store(a, 1);  // allocate; sole sharer -> private grant
    co_await c.fence();
    for (int i = 2; i <= 10; ++i) co_await c.store(a, (std::uint64_t)i);
    co_await c.fence();
  }});
  auto* line = m.node(0).cache_ctrl().cache().find(mem::block_of(a));
  ASSERT_NE(line, nullptr);
  EXPECT_EQ(line->state, LineState::PrivateDirty);
  const auto* e = m.node(1).home_ctrl().directory().find(mem::block_of(a));
  EXPECT_EQ(e->state, DirState::Private);
  EXPECT_EQ(e->owner, 0u);
  // Retained updates: after the first couple of writes everything is
  // local, so the network message count stays small.
  EXPECT_LT(m.counters().net.messages + m.counters().net.local, 12u);
}

TEST(UpdateProtocol, CuNeverGrantsPrivate) {
  Machine m(cfg_of(Protocol::CU, 2));
  const Addr a = m.alloc().allocate_on(1, 8);
  m.run({[&](cpu::Cpu& c) -> sim::Task {
    for (int i = 0; i < 10; ++i) co_await c.store(a, (std::uint64_t)i);
    co_await c.fence();
  }});
  auto* line = m.node(0).cache_ctrl().cache().find(mem::block_of(a));
  ASSERT_NE(line, nullptr);
  EXPECT_EQ(line->state, LineState::ValidU);
}

TEST(UpdateProtocol, RecallReturnsPrivateDataToReader) {
  Machine m(cfg_of(Protocol::PU, 3));
  const Addr a = m.alloc().allocate_on(2, 8);
  const Addr flag = m.alloc().allocate_on(2, 8);
  std::uint64_t got = 0;
  std::vector<Machine::Program> ps;
  ps.push_back([&](cpu::Cpu& c) -> sim::Task {  // private writer
    for (int i = 1; i <= 5; ++i) co_await c.store(a, (std::uint64_t)i * 11);
    co_await c.fence();
    co_await c.store(flag, 1);
  });
  ps.push_back([&](cpu::Cpu& c) -> sim::Task {  // reader triggers recall
    co_await c.spin_until(flag, [](std::uint64_t v) { return v == 1; });
    got = co_await c.load(a);
  });
  m.run(ps);
  EXPECT_EQ(got, 55u);
  // After the recall the block is back in update mode with both sharers.
  const auto* e = m.node(2).home_ctrl().directory().find(mem::block_of(a));
  EXPECT_EQ(e->state, DirState::Update);
  EXPECT_TRUE(e->has_sharer(0));
  EXPECT_TRUE(e->has_sharer(1));
}

TEST(UpdateProtocol, CompetitiveCounterDropsAfterThreshold) {
  MachineConfig cfg = cfg_of(Protocol::CU, 3);
  cfg.cu_threshold = 4;
  Machine m(cfg);
  const Addr a = m.alloc().allocate_on(2, 8);
  const Addr flag = m.alloc().allocate_on(2, 8);
  std::vector<Machine::Program> ps;
  ps.push_back([&](cpu::Cpu& c) -> sim::Task {  // victim caches, never rereads
    (void)co_await c.load(a);
    co_await c.store(flag, 1);
    co_await c.spin_until(flag + 8, [](std::uint64_t v) { return v == 1; });
  });
  ps.push_back([&](cpu::Cpu& c) -> sim::Task {  // writer streams updates
    co_await c.spin_until(flag, [](std::uint64_t v) { return v == 1; });
    for (int i = 0; i < 10; ++i) {
      co_await c.store(a, (std::uint64_t)i);
      co_await c.fence();
    }
    co_await c.store(flag + 8, 1);
  });
  m.run(ps);
  // The victim's copy must have been dropped at the 4th update.
  EXPECT_EQ(m.node(0).cache_ctrl().cache().find(mem::block_of(a)), nullptr);
  EXPECT_EQ(m.counters().updates[stats::UpdateClass::Drop], 1u);
  // And the home pruned it: the remaining updates went nowhere.
  const auto* e = m.node(2).home_ctrl().directory().find(mem::block_of(a));
  EXPECT_FALSE(e->has_sharer(0));
}

TEST(UpdateProtocol, LocalReferenceResetsCounter) {
  MachineConfig cfg = cfg_of(Protocol::CU, 3);
  cfg.cu_threshold = 4;
  Machine m(cfg);
  const Addr a = m.alloc().allocate_on(2, 8);
  const Addr flag = m.alloc().allocate_on(2, 8);
  std::vector<Machine::Program> ps;
  ps.push_back([&](cpu::Cpu& c) -> sim::Task {  // active reader: re-references
    (void)co_await c.load(a);
    co_await c.store(flag, 1);
    for (int i = 0; i < 10; ++i) {
      co_await c.spin_until(a, [i](std::uint64_t v) {
        return v >= static_cast<std::uint64_t>(i);
      });
    }
  });
  ps.push_back([&](cpu::Cpu& c) -> sim::Task {
    co_await c.spin_until(flag, [](std::uint64_t v) { return v == 1; });
    for (int i = 0; i < 10; ++i) {
      co_await c.store(a, (std::uint64_t)i);
      co_await c.fence();
      co_await c.think(20);
    }
  });
  m.run(ps);
  // The active reader kept resetting its counter: no drops.
  EXPECT_EQ(m.counters().updates[stats::UpdateClass::Drop], 0u);
  EXPECT_NE(m.node(0).cache_ctrl().cache().find(mem::block_of(a)), nullptr);
}

TEST(UpdateProtocol, PuEqualsCuWhenNothingDrops) {
  // A workload where every update is consumed: PU and CU must agree on
  // cycles exactly (the protocols only diverge at drops).
  for (unsigned n : {2u, 4u}) {
    Cycle cy[2];
    int i = 0;
    for (Protocol p : {Protocol::PU, Protocol::CU}) {
      Machine m(cfg_of(p, n));
      sync::DisseminationBarrier b(m);
      cy[i++] = m.run_all([&](cpu::Cpu& c) -> sim::Task {
        for (int e = 0; e < 20; ++e) co_await b.wait(c);
      });
    }
    EXPECT_EQ(cy[0], cy[1]) << "PU and CU diverged without any drops (n=" << n << ")";
  }
}

TEST(UpdateProtocol, FenceCollectsAllSharerAcks) {
  Machine m(cfg_of(Protocol::PU, 8));
  const Addr a = m.alloc().allocate_on(0, 8);
  const Addr flag = m.alloc().allocate_on(0, 8);
  // 7 procs cache the block; the writer's fence completes only after all
  // sharers acked its update; afterwards every copy must be fresh.
  std::vector<Machine::Program> ps;
  for (int i = 0; i < 7; ++i) {
    ps.push_back([&](cpu::Cpu& c) -> sim::Task {
      (void)co_await c.load(a);
      co_await c.spin_until(flag, [](std::uint64_t v) { return v == 1; });
      EXPECT_EQ(m.node(c.id()).cache_ctrl().cache().read(a, 8), 99u);
    });
  }
  ps.push_back([&](cpu::Cpu& c) -> sim::Task {
    co_await c.think(300);
    co_await c.store(a, 99);
    co_await c.fence();  // must wait for 7 acks
    co_await c.store(flag, 1);
  });
  m.run(ps);
}

} // namespace
