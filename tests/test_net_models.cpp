// Link-contention network model and consistency-model options.
#include "ccsim.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace {

using namespace ccsim;
using harness::Machine;
using harness::MachineConfig;
using net::Message;
using net::MsgType;
using proto::Protocol;

struct Recorder final : net::MessageSink {
  sim::EventQueue* q = nullptr;
  std::vector<Cycle> at;
  void deliver(const Message&) override { at.push_back(q->now()); }
};

Message mk(NodeId s, NodeId d) {
  Message m;
  m.src = s;
  m.dst = d;
  m.type = MsgType::GetS;
  m.addr = mem::kSharedBase;
  return m;
}

TEST(LinkContention, UncontendedLatencyMatchesEndpointModel) {
  for (bool link : {false, true}) {
    sim::EventQueue q;
    net::Network::Params p;
    p.link_contention = link;
    net::Network net(q, net::MeshTopology(8), p, nullptr);
    std::vector<Recorder> sinks(8);
    for (NodeId i = 0; i < 8; ++i) {
      sinks[i].q = &q;
      net.attach(i, sinks[i]);
    }
    net.send(mk(0, 3));  // 3 hops, no competing traffic
    q.run();
    ASSERT_EQ(sinks[3].at.size(), 1u);
    EXPECT_EQ(sinks[3].at[0], 3 * 2 + 8u) << "link=" << link;
  }
}

TEST(LinkContention, SharedLinkSerializesCrossTraffic) {
  // 4x2 mesh: 0->2 and 1->3 both traverse link 1->2 (dimension-ordered,
  // X first). Under the endpoint model they do not interact; with link
  // contention the second stream waits for the channel.
  const auto second_arrival = [&](bool link) {
    sim::EventQueue q;
    net::Network::Params p;
    p.link_contention = link;
    net::Network net(q, net::MeshTopology(8), p, nullptr);
    std::vector<Recorder> sinks(8);
    for (NodeId i = 0; i < 8; ++i) {
      sinks[i].q = &q;
      net.attach(i, sinks[i]);
    }
    net.send(mk(0, 2));
    net.send(mk(1, 3));
    q.run();
    return sinks[3].at.at(0);
  };
  EXPECT_GT(second_arrival(true), second_arrival(false));
}

TEST(LinkContention, DisjointRoutesDoNotInteract) {
  sim::EventQueue q;
  net::Network::Params p;
  p.link_contention = true;
  net::Network net(q, net::MeshTopology(8), p, nullptr);
  std::vector<Recorder> sinks(8);
  for (NodeId i = 0; i < 8; ++i) {
    sinks[i].q = &q;
    net.attach(i, sinks[i]);
  }
  net.send(mk(0, 1));
  net.send(mk(4, 5));  // other row: disjoint links
  q.run();
  EXPECT_EQ(sinks[1].at.at(0), 10u);
  EXPECT_EQ(sinks[5].at.at(0), 10u);
}

TEST(LinkContention, NextHopFollowsDimensionOrder) {
  net::MeshTopology t(8);  // 4x2
  EXPECT_EQ(t.next_hop(0, 3), 1u);  // X first
  EXPECT_EQ(t.next_hop(1, 3), 2u);
  EXPECT_EQ(t.next_hop(3, 7), 7u);  // then Y
  EXPECT_EQ(t.next_hop(0, 7), 1u);
  EXPECT_EQ(t.next_hop(7, 0), 6u);  // reverse direction
}

TEST(LinkContention, FullWorkloadStillCorrect) {
  MachineConfig cfg;
  cfg.protocol = Protocol::PU;
  cfg.nprocs = 8;
  cfg.net.link_contention = true;
  Machine m(cfg);
  sync::TicketLock lock(m);
  const Addr ctr = m.alloc().allocate_on(0, 8);
  m.run_all([&](cpu::Cpu& c) -> sim::Task {
    for (int i = 0; i < 15; ++i) {
      co_await lock.acquire(c);
      const std::uint64_t v = co_await c.load(ctr);
      co_await c.store(ctr, v + 1);
      co_await lock.release(c);
    }
  });
  EXPECT_EQ(m.peek(ctr), 120u);
}

TEST(LinkContention, CongestionSlowsTheHotWorkload) {
  const auto cycles = [&](bool link) {
    MachineConfig cfg;
    cfg.protocol = Protocol::PU;
    cfg.nprocs = 32;
    cfg.net.link_contention = link;
    const auto r = harness::run_barrier_experiment(
        cfg, harness::BarrierKind::Central, {.episodes = 30});
    return r.cycles;
  };
  EXPECT_GT(cycles(true), cycles(false))
      << "the central barrier's update storm must feel channel contention";
}

TEST(Consistency, SequentialStoresStallAndStayCorrect) {
  for (Protocol p : {Protocol::WI, Protocol::PU, Protocol::CU}) {
    Cycle rc_t = 0, sc_t = 0;
    for (auto model : {proto::Consistency::Release, proto::Consistency::Sequential}) {
      MachineConfig cfg;
      cfg.protocol = p;
      cfg.nprocs = 4;
      cfg.consistency = model;
      Machine m(cfg);
      sync::TicketLock lock(m);
      const Addr ctr = m.alloc().allocate_on(0, 8);
      const Cycle t = m.run_all([&](cpu::Cpu& c) -> sim::Task {
        for (int i = 0; i < 10; ++i) {
          co_await lock.acquire(c);
          const std::uint64_t v = co_await c.load(ctr);
          co_await c.store(ctr, v + 1);
          co_await lock.release(c);
        }
      });
      EXPECT_EQ(m.peek(ctr), 40u) << proto::to_string(p);
      (model == proto::Consistency::Release ? rc_t : sc_t) = t;
    }
    EXPECT_GT(sc_t, rc_t) << "SC must cost cycles under " << proto::to_string(p);
  }
}

TEST(Consistency, ScStoreIsGloballyPerformedAtCompletion) {
  MachineConfig cfg;
  cfg.protocol = Protocol::PU;
  cfg.nprocs = 2;
  cfg.consistency = proto::Consistency::Sequential;
  Machine m(cfg);
  const Addr a = m.alloc().allocate_on(1, 8);
  m.run({[&](cpu::Cpu& c) -> sim::Task {
    co_await c.store(a, 7);
    // No fence: under SC the store itself only completes when performed.
    EXPECT_EQ(m.peek(a), 7u);
  }});
}

} // namespace
