// Magic (zero-traffic) lock and barrier semantics.
#include "ccsim.hpp"

#include <gtest/gtest.h>

namespace {

using namespace ccsim;
using harness::Machine;
using harness::MachineConfig;
using proto::Protocol;

MachineConfig cfg(unsigned n, Protocol p = Protocol::WI) {
  MachineConfig c;
  c.protocol = p;
  c.nprocs = n;
  return c;
}

TEST(MagicLock, MutualExclusion) {
  Machine m(cfg(8));
  sync::MagicLock lock(m.queue());
  int in_cs = 0, max_in = 0;
  m.run_all([&](cpu::Cpu& c) -> sim::Task {
    for (int i = 0; i < 20; ++i) {
      co_await lock.acquire(c);
      max_in = std::max(max_in, ++in_cs);
      co_await c.think(7);
      --in_cs;
      co_await lock.release(c);
    }
  });
  EXPECT_EQ(max_in, 1);
}

TEST(MagicLock, GeneratesNoCoherenceTraffic) {
  Machine m(cfg(8, Protocol::PU));
  sync::MagicLock lock(m.queue());
  m.run_all([&](cpu::Cpu& c) -> sim::Task {
    for (int i = 0; i < 20; ++i) {
      co_await lock.acquire(c);
      co_await lock.release(c);
    }
  });
  EXPECT_EQ(m.counters().net.messages, 0u);
  EXPECT_EQ(m.counters().misses.total(), 0u);
  EXPECT_EQ(m.counters().updates.total(), 0u);
}

TEST(MagicLock, ReleaseHasReleaseSemantics) {
  Machine m(cfg(2, Protocol::PU));
  sync::MagicLock lock(m.queue());
  const Addr a = m.alloc().allocate_on(1, 8);
  std::uint64_t seen = ~0ull;
  std::vector<Machine::Program> ps;
  ps.push_back([&](cpu::Cpu& c) -> sim::Task {
    co_await lock.acquire(c);
    co_await c.store(a, 41);
    co_await c.store(a, 42);
    co_await lock.release(c);  // fences: both stores globally performed
  });
  ps.push_back([&](cpu::Cpu& c) -> sim::Task {
    co_await c.think(5);  // ensure the other proc grabs the lock first
    co_await lock.acquire(c);
    seen = co_await c.load(a);
    co_await lock.release(c);
  });
  m.run(ps);
  EXPECT_EQ(seen, 42u);
}

TEST(MagicLock, FifoHandoffUnderContention) {
  Machine m(cfg(4));
  sync::MagicLock lock(m.queue());
  std::vector<NodeId> order;
  m.run_all([&](cpu::Cpu& c) -> sim::Task {
    for (int i = 0; i < 3; ++i) {
      co_await lock.acquire(c);
      order.push_back(c.id());
      co_await c.think(50);
      co_await lock.release(c);
    }
  });
  ASSERT_EQ(order.size(), 12u);
  // With everyone re-queueing immediately, grants rotate round-robin.
  for (std::size_t i = 4; i < order.size(); ++i)
    EXPECT_EQ(order[i], order[i - 4]) << "at " << i;
}

TEST(MagicBarrier, SeparationHolds) {
  Machine m(cfg(6));
  sync::MagicBarrier barrier(m.queue(), 6);
  std::vector<int> arrived(6, 0);
  m.run_all([&](cpu::Cpu& c) -> sim::Task {
    for (int e = 0; e < 25; ++e) {
      arrived[c.id()] = e + 1;
      co_await c.think(1 + (c.id() * 13 + e * 7) % 40);
      co_await barrier.wait(c);
      for (int q = 0; q < 6; ++q) EXPECT_GE(arrived[q], e + 1);
    }
  });
}

TEST(MagicBarrier, NoTraffic) {
  Machine m(cfg(6, Protocol::CU));
  sync::MagicBarrier barrier(m.queue(), 6);
  m.run_all([&](cpu::Cpu& c) -> sim::Task {
    for (int e = 0; e < 25; ++e) co_await barrier.wait(c);
  });
  EXPECT_EQ(m.counters().net.messages, 0u);
  EXPECT_EQ(m.counters().misses.total(), 0u);
}

TEST(MagicBarrier, SinglePartyNeverBlocks) {
  Machine m(cfg(1));
  sync::MagicBarrier barrier(m.queue(), 1);
  m.run_all([&](cpu::Cpu& c) -> sim::Task {
    for (int e = 0; e < 10; ++e) co_await barrier.wait(c);
  });
}

} // namespace
