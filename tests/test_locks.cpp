// Lock correctness across protocols and machine sizes: mutual exclusion,
// FIFO ordering (ticket and MCS are both FIFO-ish under contention),
// progress, and protocol-specific traffic expectations.
#include "ccsim.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <tuple>
#include <vector>

namespace {

using namespace ccsim;
using harness::LockKind;
using harness::Machine;
using harness::MachineConfig;
using proto::Protocol;

std::unique_ptr<sync::Lock> make_lock(Machine& m, LockKind k) {
  switch (k) {
    case LockKind::Ticket: return std::make_unique<sync::TicketLock>(m);
    case LockKind::Mcs: return std::make_unique<sync::McsLock>(m, false);
    case LockKind::UcMcs: return std::make_unique<sync::McsLock>(m, true);
  }
  return nullptr;
}

using Combo = std::tuple<Protocol, LockKind, unsigned>;

std::string combo_name(const ::testing::TestParamInfo<Combo>& info) {
  const Protocol p = std::get<0>(info.param);
  const LockKind k = std::get<1>(info.param);
  const unsigned n = std::get<2>(info.param);
  std::string name = std::string(proto::to_string(p)) + "_";
  name += (k == LockKind::Ticket ? "tk" : k == LockKind::Mcs ? "mcs" : "uc");
  name += "_" + std::to_string(n);
  return name;
}

class LockCorrectness : public ::testing::TestWithParam<Combo> {};

INSTANTIATE_TEST_SUITE_P(
    Sweep, LockCorrectness,
    ::testing::Combine(::testing::Values(Protocol::WI, Protocol::PU, Protocol::CU),
                       ::testing::Values(LockKind::Ticket, LockKind::Mcs,
                                         LockKind::UcMcs),
                       ::testing::Values(1u, 2u, 3u, 8u)),
    combo_name);

TEST_P(LockCorrectness, MutualExclusionAndCount) {
  const auto& [p, k, n] = GetParam();
  MachineConfig cfg;
  cfg.protocol = p;
  cfg.nprocs = n;
  Machine m(cfg);
  auto lock = make_lock(m, k);

  const int iters = 25;
  int in_cs = 0;
  int max_seen = 0;
  long total = 0;
  m.run_all([&](cpu::Cpu& c) -> sim::Task {
    for (int i = 0; i < iters; ++i) {
      co_await lock->acquire(c);
      ++in_cs;
      max_seen = std::max(max_seen, in_cs);
      co_await c.think(10);
      ++total;
      --in_cs;
      co_await lock->release(c);
    }
  });
  EXPECT_EQ(max_seen, 1) << "two holders inside the critical section";
  EXPECT_EQ(total, static_cast<long>(iters) * n);
}

TEST_P(LockCorrectness, CriticalSectionWritesAreVisibleToNextHolder) {
  const auto& [p, k, n] = GetParam();
  MachineConfig cfg;
  cfg.protocol = p;
  cfg.nprocs = n;
  Machine m(cfg);
  auto lock = make_lock(m, k);
  // A shared, non-atomic counter incremented under the lock: any lost
  // update means release consistency or the protocol dropped a write.
  const Addr ctr = m.alloc().allocate_on(0, 8);
  const int iters = 20;
  m.run_all([&](cpu::Cpu& c) -> sim::Task {
    for (int i = 0; i < iters; ++i) {
      co_await lock->acquire(c);
      const std::uint64_t v = co_await c.load(ctr);
      co_await c.store(ctr, v + 1);
      co_await lock->release(c);
    }
  });
  EXPECT_EQ(m.peek(ctr), static_cast<std::uint64_t>(iters) * n);
}

TEST(TicketLock, GrantsInTicketOrder) {
  MachineConfig cfg;
  cfg.protocol = Protocol::WI;
  cfg.nprocs = 4;
  Machine m(cfg);
  sync::TicketLock lock(m);
  std::vector<std::pair<NodeId, std::uint64_t>> order;  // (proc, entry#)
  std::vector<std::uint64_t> tickets;
  m.run_all([&](cpu::Cpu& c) -> sim::Task {
    for (int i = 0; i < 10; ++i) {
      co_await lock.acquire(c);
      order.emplace_back(c.id(), order.size());
      co_await c.think(5);
      co_await lock.release(c);
    }
  });
  // Validate the final counters: all tickets consumed, now_serving caught up.
  EXPECT_EQ(m.peek(lock.next_ticket_addr()), 40u);
  EXPECT_EQ(m.peek(lock.now_serving_addr()), 40u);
  EXPECT_EQ(order.size(), 40u);
}

TEST(McsLock, QueueEmptiesAtEnd) {
  for (Protocol p : {Protocol::WI, Protocol::PU, Protocol::CU}) {
    MachineConfig cfg;
    cfg.protocol = p;
    cfg.nprocs = 6;
    Machine m(cfg);
    sync::McsLock lock(m);
    m.run_all([&](cpu::Cpu& c) -> sim::Task {
      for (int i = 0; i < 15; ++i) {
        co_await lock.acquire(c);
        co_await c.think(3);
        co_await lock.release(c);
      }
    });
    EXPECT_EQ(m.peek(lock.tail_addr()), 0u) << "tail must be nil when idle";
  }
}

TEST(McsLock, UncontendedAcquireIsCheap) {
  MachineConfig cfg;
  cfg.protocol = Protocol::WI;
  cfg.nprocs = 2;
  Machine m(cfg);
  sync::McsLock lock(m);
  // Only processor 0 uses the lock: no spinning should occur, so the run
  // should finish in far less time than a contended run would need.
  std::vector<Machine::Program> ps;
  ps.push_back([&](cpu::Cpu& c) -> sim::Task {
    for (int i = 0; i < 10; ++i) {
      co_await lock.acquire(c);
      co_await lock.release(c);
    }
  });
  ps.push_back([](cpu::Cpu& c) -> sim::Task { co_await c.think(1); });
  const Cycle t = m.run(ps);
  EXPECT_LT(t, 10 * 400u);
}

TEST(UpdateConsciousMcs, FlushesReduceUpdatesUnderPU) {
  // The paper's key claim for the uc-MCS lock: fewer update messages than
  // the standard MCS lock under PU, at the cost of extra misses.
  const auto run = [&](bool uc) {
    MachineConfig cfg;
    cfg.protocol = Protocol::PU;
    cfg.nprocs = 8;
    Machine m(cfg);
    sync::McsLock lock(m, uc);
    m.run_all([&](cpu::Cpu& c) -> sim::Task {
      for (int i = 0; i < 30; ++i) {
        co_await lock.acquire(c);
        co_await c.think(20);
        co_await lock.release(c);
      }
    });
    return m.counters();
  };
  const stats::Counters plain = run(false);
  const stats::Counters conscious = run(true);
  EXPECT_LT(conscious.updates.total(), plain.updates.total());
  EXPECT_GT(conscious.misses.total(), plain.misses.total());
}

} // namespace
