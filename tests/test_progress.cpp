// ProgressReporter tests: pinned line format, TTY gating, throttling, and
// the erase-on-finish contract (a --progress line must never contaminate
// piped output).
#include "harness/progress.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace {

using ccsim::harness::ProgressReporter;

TEST(ProgressFormat, PlainCountsAndPercent) {
  EXPECT_EQ(ProgressReporter::format_line("cells", 12, 60, 0.0),
            "cells: 12/60 (20.0%)");
}

TEST(ProgressFormat, RateAndEtaWhenElapsed) {
  // 5 done in 2s -> 2.5/s; 5 left -> ETA 2s.
  EXPECT_EQ(ProgressReporter::format_line("cells", 5, 10, 2.0),
            "cells: 5/10 (50.0%) 2.5/s ETA 2s");
}

TEST(ProgressFormat, ZeroDoneOmitsRate) {
  // No completions yet: a rate would be 0/elapsed = meaningless noise.
  EXPECT_EQ(ProgressReporter::format_line("cells", 0, 10, 5.0),
            "cells: 0/10 (0.0%)");
}

TEST(ProgressFormat, ZeroTotalReadsAsComplete) {
  EXPECT_EQ(ProgressReporter::format_line("runs", 0, 0, 0.0),
            "runs: 0/0 (100.0%)");
}

TEST(ProgressFormat, CompleteRunHasZeroEta) {
  EXPECT_EQ(ProgressReporter::format_line("cells", 10, 10, 2.0),
            "cells: 10/10 (100.0%) 5.0/s ETA 0s");
}

TEST(ProgressReporterTest, InactiveWithoutTerminalUnlessForced) {
  // Under ctest stderr is a pipe, so the unforced reporter must be inert;
  // guard on the actual TTY state so a developer running the binary by
  // hand in a terminal does not see a spurious failure.
  if (ProgressReporter::stderr_is_tty()) GTEST_SKIP() << "stderr is a tty";
  std::ostringstream os;
  ProgressReporter r(os, 10);
  EXPECT_FALSE(r.active());
  r.update(3);
  r.update(10);
  r.finish();
  EXPECT_TRUE(os.str().empty()) << "inactive reporter must write nothing";
}

TEST(ProgressReporterTest, ForcedReporterPaintsAndFinishErases) {
  std::ostringstream os;
  ProgressReporter::Options o;
  o.force = true;
  o.min_interval_ms = 0;
  ProgressReporter r(os, 3, o);
  EXPECT_TRUE(r.active());
  r.update(1);
  const std::string painted = os.str();
  EXPECT_NE(painted.find('\r'), std::string::npos);
  EXPECT_NE(painted.find("cells: 1/3"), std::string::npos);
  r.finish();
  EXPECT_NE(os.str().find("\r\033[K"), std::string::npos)
      << "finish() must erase the line before normal output resumes";
}

TEST(ProgressReporterTest, ThrottleSuppressesRapidRepaints) {
  std::ostringstream os;
  ProgressReporter::Options o;
  o.force = true;
  o.min_interval_ms = 60000;  // nothing mid-run can beat this throttle
  ProgressReporter r(os, 3, o);
  r.update(1);
  const std::size_t after_first = os.str().size();
  EXPECT_GT(after_first, 0u) << "the first update always paints";
  r.update(2);
  EXPECT_EQ(os.str().size(), after_first) << "throttled update must not paint";
  r.update(3);
  EXPECT_GT(os.str().size(), after_first) << "the final update always paints";
}

TEST(ProgressReporterTest, FinishIsIdempotentAndStopsUpdates) {
  std::ostringstream os;
  ProgressReporter::Options o;
  o.force = true;
  ProgressReporter r(os, 5, o);
  r.update(5);
  r.finish();
  const std::string done = os.str();
  r.finish();
  r.update(5);
  EXPECT_EQ(os.str(), done);
}

TEST(ProgressReporterTest, CustomLabelAppearsInLine) {
  std::ostringstream os;
  ProgressReporter::Options o;
  o.force = true;
  o.label = "runs";
  ProgressReporter r(os, 4, o);
  r.update(4);
  EXPECT_NE(os.str().find("runs: 4/4"), std::string::npos);
}

} // namespace
