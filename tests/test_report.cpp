// print_report formatting.
#include "ccsim.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace {

using namespace ccsim;

TEST(Report, ContainsEverySection) {
  harness::MachineConfig cfg;
  cfg.protocol = proto::Protocol::CU;
  cfg.nprocs = 4;
  harness::Machine m(cfg);
  sync::TicketLock lock(m);
  m.run_all([&](cpu::Cpu& c) -> sim::Task {
    for (int i = 0; i < 5; ++i) {
      co_await lock.acquire(c);
      co_await lock.release(c);
    }
  });
  std::ostringstream os;
  stats::print_report(os, m.counters());
  const std::string out = os.str();
  EXPECT_NE(out.find("cache misses"), std::string::npos);
  EXPECT_NE(out.find("update messages"), std::string::npos);
  EXPECT_NE(out.find("network:"), std::string::npos);
  EXPECT_NE(out.find("message profile:"), std::string::npos);
  EXPECT_NE(out.find("memory:"), std::string::npos);
  EXPECT_NE(out.find("AtomicReq="), std::string::npos)
      << "ticket acquires must appear in the profile under CU";
}

TEST(Report, ZeroCountersStillWellFormed) {
  stats::Counters c;
  std::ostringstream os;
  stats::print_report(os, c);
  EXPECT_NE(os.str().find("0 total"), std::string::npos);
}

} // namespace
