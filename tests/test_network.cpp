// Unit tests for the endpoint-contention wormhole network model.
#include "net/network.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace {

using namespace ccsim;
using net::Message;
using net::MsgType;

struct Recorder final : net::MessageSink {
  struct Got {
    Cycle t;
    Message msg;
  };
  sim::EventQueue* q = nullptr;
  std::vector<Got> got;
  void deliver(const Message& m) override { got.push_back({q->now(), m}); }
};

struct NetFixture : ::testing::Test {
  sim::EventQueue q;
  stats::NetCounters counters;
  net::Network net{q, net::MeshTopology(8), {}, &counters};
  std::vector<Recorder> sinks{8};

  void SetUp() override {
    for (NodeId i = 0; i < 8; ++i) {
      sinks[i].q = &q;
      net.attach(i, sinks[i]);
    }
  }

  Message mk(NodeId src, NodeId dst, MsgType t = MsgType::GetS) {
    Message m;
    m.src = src;
    m.dst = dst;
    m.type = t;
    m.addr = mem::kSharedBase;
    return m;
  }
};

TEST_F(NetFixture, ControlMessageLatency) {
  // 16-byte header / 2-byte flits = 8 flits; 1 hop = 2 cycles.
  net.send(mk(0, 1));
  q.run();
  ASSERT_EQ(sinks[1].got.size(), 1u);
  // start 0, head arrives at 2, ejection takes 8 flits -> t = 10.
  EXPECT_EQ(sinks[1].got[0].t, 10u);
}

TEST_F(NetFixture, BlockMessageCarriesMoreFlits) {
  Message m = mk(0, 1, MsgType::DataS);
  m.has_block = true;
  net.send(m);
  q.run();
  // (16 + 64) / 2 = 40 flits + 2 cycles hop = 42.
  EXPECT_EQ(sinks[1].got[0].t, 42u);
}

TEST_F(NetFixture, DistanceAddsSwitchDelay) {
  net.send(mk(0, 3));  // 3 hops on the 4x2 mesh
  q.run();
  EXPECT_EQ(sinks[3].got[0].t, 3 * 2 + 8u);
}

TEST_F(NetFixture, LocalDeliveryBypassesNetwork) {
  net.send(mk(2, 2));
  q.run();
  EXPECT_EQ(sinks[2].got[0].t, 1u);  // local latency
  EXPECT_EQ(counters.messages, 0u);
  EXPECT_EQ(counters.local, 1u);
}

TEST_F(NetFixture, SourceInjectionSerializes) {
  net.send(mk(0, 1));
  net.send(mk(0, 2));
  q.run();
  // Second message's injection starts after the first's 8 flits.
  EXPECT_EQ(sinks[1].got[0].t, 10u);
  EXPECT_EQ(sinks[2].got[0].t, 8 + 2 * 2 + 8u);
}

TEST_F(NetFixture, DestinationEjectionSerializes) {
  net.send(mk(0, 1));
  net.send(mk(2, 1));
  q.run();
  ASSERT_EQ(sinks[1].got.size(), 2u);
  // Both head flits arrive at t=2; ejections serialize at 8 flits each.
  EXPECT_EQ(sinks[1].got[0].t, 10u);
  EXPECT_EQ(sinks[1].got[1].t, 18u);
}

TEST_F(NetFixture, SameSrcDstPairIsFifo) {
  for (int i = 0; i < 20; ++i) {
    Message m = mk(0, 5);
    m.payload = static_cast<std::uint64_t>(i);
    net.send(m);
  }
  q.run();
  ASSERT_EQ(sinks[5].got.size(), 20u);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(sinks[5].got[i].msg.payload, (std::uint64_t)i);
}

TEST_F(NetFixture, CountersTrackVolume) {
  net.send(mk(0, 1));
  Message m = mk(1, 0, MsgType::DataS);
  m.has_block = true;
  net.send(m);
  q.run();
  EXPECT_EQ(counters.messages, 2u);
  EXPECT_EQ(counters.flits, 8u + 40u);
  EXPECT_EQ(counters.hops, 2u);
}

TEST(NetworkSizes, WireBytesPerType) {
  Message m;
  m.type = MsgType::GetS;
  EXPECT_EQ(m.wire_bytes(), 16u);
  m.type = MsgType::UpdateReq;
  EXPECT_EQ(m.wire_bytes(), 24u);
  m.type = MsgType::Update;
  EXPECT_EQ(m.wire_bytes(), 24u);
  m.type = MsgType::AtomicReply;
  EXPECT_EQ(m.wire_bytes(), 24u);
  m.type = MsgType::DataS;
  m.has_block = true;
  EXPECT_EQ(m.wire_bytes(), 80u);
}

} // namespace
