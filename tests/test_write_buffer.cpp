// Unit tests for the 4-entry write buffer.
#include "mem/write_buffer.hpp"

#include <gtest/gtest.h>

namespace {

using namespace ccsim;
using namespace ccsim::mem;

TEST(WriteBuffer, CapacityAndFifo) {
  WriteBuffer wb(4);
  EXPECT_TRUE(wb.empty());
  for (std::uint64_t i = 0; i < 4; ++i) {
    EXPECT_FALSE(wb.full());
    wb.push({kSharedBase + i * 8, 8, i});
  }
  EXPECT_TRUE(wb.full());
  for (std::uint64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(wb.front().value, i);
    wb.pop();
  }
  EXPECT_TRUE(wb.empty());
}

TEST(WriteBuffer, ForwardsNewestExactMatch) {
  WriteBuffer wb(4);
  const Addr a = kSharedBase;
  wb.push({a, 8, 1});
  wb.push({a + 8, 8, 2});
  wb.push({a, 8, 3});  // newer write to the same word
  auto f = wb.forward(a, 8);
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(*f, 3u);
  EXPECT_FALSE(wb.forward(a + 16, 8).has_value());
}

TEST(WriteBuffer, ForwardRequiresExactSize) {
  WriteBuffer wb(4);
  wb.push({kSharedBase, 8, 42});
  EXPECT_FALSE(wb.forward(kSharedBase, 4).has_value());
  EXPECT_TRUE(wb.partially_overlaps(kSharedBase, 4));
}

TEST(WriteBuffer, PartialOverlapDetection) {
  WriteBuffer wb(4);
  wb.push({kSharedBase + 4, 4, 7});
  EXPECT_TRUE(wb.partially_overlaps(kSharedBase, 8));   // covers bytes 4..7
  EXPECT_FALSE(wb.partially_overlaps(kSharedBase, 4));  // disjoint bytes 0..3
  EXPECT_FALSE(wb.partially_overlaps(kSharedBase + 4, 4));  // exact match
}

TEST(WriteBuffer, ContainsBlock) {
  WriteBuffer wb(4);
  wb.push({kSharedBase + 24, 8, 1});
  EXPECT_TRUE(wb.contains_block(block_of(kSharedBase)));
  EXPECT_FALSE(wb.contains_block(block_of(kSharedBase) + 1));
}

} // namespace
