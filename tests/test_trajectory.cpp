// Trajectory document tests: round-trip, schema gating, and the
// bench_compare regression rules (notably: an injected 20% latency
// regression must fail the gate -- ISSUE acceptance criterion).
#include "harness/trajectory.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace {

using namespace ccsim;
using harness::CompareOptions;
using harness::TrajectoryDoc;
using harness::TrajectoryEntry;

TrajectoryEntry entry(std::string name, double avg) {
  TrajectoryEntry e;
  e.name = std::move(name);
  e.cycles = static_cast<Cycle>(avg * 100);
  e.avg_latency = avg;
  e.p50 = avg * 0.9;
  e.p99 = avg * 3.0;
  e.breakdown = {10, 0, 5, 0, 0, 0, 1, 2, 3, 4, 0, 0, 6};
  return e;
}

TrajectoryDoc sample_doc() {
  TrajectoryDoc d;
  d.bench = "ppopp97";
  d.entries.push_back(entry("fig08/tk/WI/p16", 250.0));
  d.entries.push_back(entry("fig11/cb/PU/p16", 1800.5));
  d.entries.push_back(entry("fig14/pr/CU/p16", 950.25));
  return d;
}

TEST(Trajectory, RoundTripPreservesEverything) {
  const TrajectoryDoc d = sample_doc();
  std::stringstream ss;
  harness::write_trajectory(ss, d);
  const TrajectoryDoc r = harness::read_trajectory(ss);
  ASSERT_EQ(r.bench, d.bench);
  ASSERT_EQ(r.entries.size(), d.entries.size());
  for (std::size_t i = 0; i < d.entries.size(); ++i) {
    EXPECT_EQ(r.entries[i].name, d.entries[i].name);
    EXPECT_EQ(r.entries[i].cycles, d.entries[i].cycles);
    EXPECT_DOUBLE_EQ(r.entries[i].avg_latency, d.entries[i].avg_latency);
    EXPECT_DOUBLE_EQ(r.entries[i].p50, d.entries[i].p50);
    EXPECT_DOUBLE_EQ(r.entries[i].p99, d.entries[i].p99);
    EXPECT_EQ(r.entries[i].breakdown, d.entries[i].breakdown);
  }
}

TEST(Trajectory, WriteIsByteStable) {
  std::stringstream a, b;
  harness::write_trajectory(a, sample_doc());
  harness::write_trajectory(b, sample_doc());
  EXPECT_EQ(a.str(), b.str());
}

TEST(Trajectory, RejectsWrongSchema) {
  std::stringstream ss(R"({"schema":99,"bench":"x","entries":[]})");
  EXPECT_THROW((void)harness::read_trajectory(ss), std::runtime_error);
}

TEST(Trajectory, RejectsMalformedJson) {
  std::stringstream ss("{\"schema\":1,");
  EXPECT_THROW((void)harness::read_trajectory(ss), std::runtime_error);
}

TEST(Trajectory, IdenticalDocsCompareClean) {
  const auto r =
      harness::compare_trajectories(sample_doc(), sample_doc(), CompareOptions{});
  EXPECT_TRUE(r.ok);
  ASSERT_EQ(r.rows.size(), 3u);
  for (const auto& row : r.rows) {
    EXPECT_FALSE(row.regression);
    EXPECT_DOUBLE_EQ(row.delta_pct, 0.0);
  }
  EXPECT_TRUE(r.missing.empty());
  EXPECT_TRUE(r.added.empty());
}

TEST(Trajectory, TwentyPercentRegressionFailsTheGate) {
  const TrajectoryDoc base = sample_doc();
  TrajectoryDoc cand = sample_doc();
  cand.entries[1].avg_latency *= 1.20;  // synthetic 20% slowdown
  const auto r = harness::compare_trajectories(base, cand, CompareOptions{});
  EXPECT_FALSE(r.ok) << "a 20% regression must fail the default 10% gate";
  ASSERT_EQ(r.rows.size(), 3u);
  EXPECT_FALSE(r.rows[0].regression);
  EXPECT_TRUE(r.rows[1].regression);
  EXPECT_NEAR(r.rows[1].delta_pct, 20.0, 1e-9);
  EXPECT_FALSE(r.rows[2].regression);
}

TEST(Trajectory, RegressionWithinThresholdPasses) {
  const TrajectoryDoc base = sample_doc();
  TrajectoryDoc cand = sample_doc();
  cand.entries[0].avg_latency *= 1.05;  // 5% < the 10% default
  const auto r = harness::compare_trajectories(base, cand, CompareOptions{});
  EXPECT_TRUE(r.ok);
  EXPECT_FALSE(r.rows[0].regression);
}

TEST(Trajectory, SpeedupsNeverFail) {
  const TrajectoryDoc base = sample_doc();
  TrajectoryDoc cand = sample_doc();
  for (auto& e : cand.entries) e.avg_latency *= 0.5;
  const auto r = harness::compare_trajectories(base, cand, CompareOptions{});
  EXPECT_TRUE(r.ok);
}

TEST(Trajectory, ThresholdIsConfigurable) {
  const TrajectoryDoc base = sample_doc();
  TrajectoryDoc cand = sample_doc();
  cand.entries[2].avg_latency *= 1.20;
  CompareOptions loose;
  loose.max_regress_pct = 25.0;
  EXPECT_TRUE(harness::compare_trajectories(base, cand, loose).ok);
  CompareOptions tight;
  tight.max_regress_pct = 5.0;
  EXPECT_FALSE(harness::compare_trajectories(base, cand, tight).ok);
}

TEST(Trajectory, MissingBenchmarkFailsUnlessAllowed) {
  const TrajectoryDoc base = sample_doc();
  TrajectoryDoc cand = sample_doc();
  cand.entries.pop_back();
  CompareOptions strict;
  const auto r = harness::compare_trajectories(base, cand, strict);
  EXPECT_FALSE(r.ok);
  ASSERT_EQ(r.missing.size(), 1u);
  EXPECT_EQ(r.missing[0], "fig14/pr/CU/p16");

  CompareOptions lax;
  lax.require_all = false;
  EXPECT_TRUE(harness::compare_trajectories(base, cand, lax).ok);
}

TEST(Trajectory, AddedBenchmarksAreInformational) {
  const TrajectoryDoc base = sample_doc();
  TrajectoryDoc cand = sample_doc();
  cand.entries.push_back(entry("fig08/tk/WI/p32", 400.0));
  const auto r = harness::compare_trajectories(base, cand, CompareOptions{});
  EXPECT_TRUE(r.ok);
  ASSERT_EQ(r.added.size(), 1u);
  EXPECT_EQ(r.added[0], "fig08/tk/WI/p32");
}

TrajectoryEntry host_entry(std::string name, double avg, double cps) {
  TrajectoryEntry e = entry(std::move(name), avg);
  e.has_host = true;
  e.host_ms = 12.5;
  e.cycles_per_sec = cps;
  e.events_per_sec = cps / 3.0;
  return e;
}

TrajectoryDoc host_doc() {
  TrajectoryDoc d;
  d.bench = "ppopp97";
  d.entries.push_back(host_entry("fig08/tk/WI/p16", 250.0, 40e6));
  d.entries.push_back(host_entry("fig11/cb/PU/p16", 1800.5, 25e6));
  return d;
}

TEST(Trajectory, HostFieldsRoundTrip) {
  const TrajectoryDoc d = host_doc();
  std::stringstream ss;
  harness::write_trajectory(ss, d);
  const TrajectoryDoc r = harness::read_trajectory(ss);
  ASSERT_EQ(r.entries.size(), 2u);
  for (std::size_t i = 0; i < r.entries.size(); ++i) {
    EXPECT_TRUE(r.entries[i].has_host);
    // The writer emits doubles at %.6g; throughput survives to 6
    // significant digits, which is far finer than the percent-level gate.
    EXPECT_NEAR(r.entries[i].host_ms, d.entries[i].host_ms,
                d.entries[i].host_ms * 1e-5);
    EXPECT_NEAR(r.entries[i].cycles_per_sec, d.entries[i].cycles_per_sec,
                d.entries[i].cycles_per_sec * 1e-5);
    EXPECT_NEAR(r.entries[i].events_per_sec, d.entries[i].events_per_sec,
                d.entries[i].events_per_sec * 1e-5);
  }
}

TEST(Trajectory, TwentyPercentThroughputDropFailsTheGate) {
  const TrajectoryDoc base = host_doc();
  TrajectoryDoc cand = host_doc();
  cand.entries[0].cycles_per_sec *= 0.80;  // synthetic 20% throughput drop
  const auto r = harness::compare_trajectories(base, cand, CompareOptions{});
  EXPECT_FALSE(r.ok) << "a 20% throughput drop must fail the default 10% gate";
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_TRUE(r.rows[0].has_tput);
  EXPECT_TRUE(r.rows[0].tput_regression);
  EXPECT_NEAR(r.rows[0].tput_delta_pct, -20.0, 1e-9);
  EXPECT_FALSE(r.rows[0].regression) << "latency did not move";
  EXPECT_FALSE(r.rows[1].tput_regression);
}

TEST(Trajectory, TwentyPercentThroughputGainPasses) {
  const TrajectoryDoc base = host_doc();
  TrajectoryDoc cand = host_doc();
  for (auto& e : cand.entries) e.cycles_per_sec *= 1.20;
  const auto r = harness::compare_trajectories(base, cand, CompareOptions{});
  EXPECT_TRUE(r.ok) << "throughput gains never fail the gate";
  for (const auto& row : r.rows) {
    EXPECT_TRUE(row.has_tput);
    EXPECT_FALSE(row.tput_regression);
  }
}

TEST(Trajectory, BaselineWithoutHostSectionComparesCleanly) {
  // Old baselines (and the committed one) carry no host data: the
  // throughput gate must not activate against them, in either direction.
  TrajectoryDoc base;
  base.bench = "ppopp97";
  base.entries.push_back(entry("fig08/tk/WI/p16", 250.0));
  base.entries.push_back(entry("fig11/cb/PU/p16", 1800.5));
  const TrajectoryDoc cand = host_doc();  // candidate measured host

  auto r = harness::compare_trajectories(base, cand, CompareOptions{});
  EXPECT_TRUE(r.ok);
  for (const auto& row : r.rows) EXPECT_FALSE(row.has_tput);

  // And the mirror case: baseline has host data, candidate does not.
  r = harness::compare_trajectories(cand, base, CompareOptions{});
  EXPECT_TRUE(r.ok);
  for (const auto& row : r.rows) EXPECT_FALSE(row.has_tput);
}

TEST(Trajectory, ThroughputThresholdIsConfigurable) {
  const TrajectoryDoc base = host_doc();
  TrajectoryDoc cand = host_doc();
  cand.entries[1].cycles_per_sec *= 0.80;
  CompareOptions loose;
  loose.max_tput_drop_pct = 25.0;
  EXPECT_TRUE(harness::compare_trajectories(base, cand, loose).ok);
  CompareOptions tight;
  tight.max_tput_drop_pct = 5.0;
  EXPECT_FALSE(harness::compare_trajectories(base, cand, tight).ok);
}

TEST(Trajectory, PrintCompareNamesThroughputRegressions) {
  const TrajectoryDoc base = host_doc();
  TrajectoryDoc cand = host_doc();
  cand.entries[0].cycles_per_sec *= 0.5;
  const CompareOptions opt;
  const auto r = harness::compare_trajectories(base, cand, opt);
  std::stringstream ss;
  harness::print_compare(ss, r, opt);
  EXPECT_NE(ss.str().find("TPUT REGRESSION"), std::string::npos);
  EXPECT_NE(ss.str().find("throughput drop"), std::string::npos);
}

TEST(Trajectory, PrintCompareNamesRegressions) {
  const TrajectoryDoc base = sample_doc();
  TrajectoryDoc cand = sample_doc();
  cand.entries[0].avg_latency *= 1.5;
  const CompareOptions opt;
  const auto r = harness::compare_trajectories(base, cand, opt);
  std::stringstream ss;
  harness::print_compare(ss, r, opt);
  EXPECT_NE(ss.str().find("REGRESSION"), std::string::npos);
  EXPECT_NE(ss.str().find("FAIL"), std::string::npos);
}

} // namespace
