// Structured trace facility: ring buffer behavior, category masking,
// machine integration, and deadlock reports carrying the trace tail.
#include "ccsim.hpp"

#include <gtest/gtest.h>

namespace {

using namespace ccsim;
using harness::DeadlockError;
using harness::Machine;
using harness::MachineConfig;
using proto::Protocol;

TEST(TraceLog, RecordsAndFormats) {
  sim::TraceLog t;
  t.log(sim::TraceCat::Cache, 42, "cache%u <- %s", 3u, "GetS");
  ASSERT_EQ(t.recent().size(), 1u);
  EXPECT_EQ(t.recent()[0], "t=42 [cache] cache3 <- GetS");
  EXPECT_EQ(t.total_events(), 1u);
}

TEST(TraceLog, RingBounded) {
  sim::TraceLog t(static_cast<unsigned>(sim::TraceCat::All), 8);
  for (int i = 0; i < 100; ++i) t.log(sim::TraceCat::Home, i, "ev%d", i);
  EXPECT_EQ(t.recent().size(), 8u);
  EXPECT_EQ(t.total_events(), 100u);
  EXPECT_EQ(t.recent().back(), "t=99 [home] ev99");
  EXPECT_EQ(t.recent().front(), "t=92 [home] ev92");
}

TEST(TraceLog, CategoryMasking) {
  sim::TraceLog t(static_cast<unsigned>(sim::TraceCat::Home));
  t.log(sim::TraceCat::Cache, 1, "hidden");
  t.log(sim::TraceCat::Home, 2, "visible");
  ASSERT_EQ(t.recent().size(), 1u);
  EXPECT_EQ(t.recent()[0], "t=2 [home] visible");
  // Masked events are suppressed from the ring but still counted.
  EXPECT_EQ(t.total_events(), 2u);
  EXPECT_TRUE(t.on(sim::TraceCat::Home));
  EXPECT_FALSE(t.on(sim::TraceCat::Cache));
}

TEST(TraceLog, TailJoinsLastN) {
  sim::TraceLog t;
  for (int i = 0; i < 5; ++i) t.log(sim::TraceCat::Cpu, i, "e%d", i);
  EXPECT_EQ(t.tail(2), "t=3 [cpu] e3\nt=4 [cpu] e4\n");
  EXPECT_EQ(t.tail(100), t.tail(5));
}

TEST(TraceMachine, DisabledByDefault) {
  Machine m(MachineConfig{});
  EXPECT_EQ(m.trace(), nullptr);
}

TEST(TraceMachine, CapturesProtocolEvents) {
  for (Protocol p : {Protocol::WI, Protocol::PU}) {
    MachineConfig cfg;
    cfg.protocol = p;
    cfg.nprocs = 2;
    cfg.trace = true;
    Machine m(cfg);
    const Addr a = m.alloc().allocate_on(1, 8);
    m.run({[&](cpu::Cpu& c) -> sim::Task {
      co_await c.store(a, 1);
      co_await c.fence();
      (void)co_await c.load(a);
    }});
    ASSERT_NE(m.trace(), nullptr);
    EXPECT_GT(m.trace()->total_events(), 0u);
    // Both sides of the protocol show up.
    const std::string all = m.trace()->tail(1000);
    EXPECT_NE(all.find("home1 <-"), std::string::npos) << proto::to_string(p);
    EXPECT_NE(all.find("cache0 <-"), std::string::npos) << proto::to_string(p);
  }
}

TEST(TraceMachine, DeadlockReportIncludesTraceAndStuckProcs) {
  MachineConfig cfg;
  cfg.nprocs = 2;
  cfg.trace = true;
  Machine m(cfg);
  const Addr a = m.alloc().allocate_on(0, 8);
  std::vector<Machine::Program> ps;
  ps.push_back([&](cpu::Cpu& c) -> sim::Task {
    // Waits forever: nobody ever writes 1.
    co_await c.spin_until(a, [](std::uint64_t v) { return v == 1; });
  });
  ps.push_back([](cpu::Cpu& c) -> sim::Task { co_await c.think(10); });
  try {
    m.run(ps);
    FAIL() << "expected a deadlock";
  } catch (const DeadlockError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("drained with programs waiting"), std::string::npos);
    EXPECT_NE(msg.find("stuck processors: 0"), std::string::npos);
    EXPECT_NE(msg.find("last trace events"), std::string::npos);
    EXPECT_NE(msg.find("GetS"), std::string::npos) << "spin's fetch should be traced";
  }
}

} // namespace
