// Table formatting / CLI parsing used by the figure benches.
#include "harness/cli.hpp"
#include "harness/figure.hpp"
#include "stats/counters.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>

namespace {

using namespace ccsim;
using harness::BenchOptions;
using harness::Table;

TEST(Table, AlignsColumns) {
  Table t({"name", "p=1", "p=32"});
  t.add_row({"ticket/WI", "12.5", "2657.1"});
  t.add_row({"MCS/CU", "7.0", "190.0"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("ticket/WI"), std::string::npos);
  EXPECT_NE(out.find("2657.1"), std::string::npos);
  // Header, rule, two rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

TEST(Table, CsvOutput) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(Table, NumberFormatting) {
  EXPECT_EQ(Table::num(3.14159, 1), "3.1");
  EXPECT_EQ(Table::num(3.14159, 3), "3.142");
  EXPECT_EQ(Table::num(std::uint64_t{12345}), "12345");
}

TEST(Figure, PaperProcCounts) {
  EXPECT_EQ(harness::paper_proc_counts(),
            (std::vector<unsigned>{1, 2, 4, 8, 16, 32}));
}

TEST(Figure, MissCellsMatchHeaders) {
  stats::MissCounts m;
  m[stats::MissClass::Cold] = 3;
  m.exclusive_requests = 7;
  const auto cells = harness::miss_cells(m);
  ASSERT_EQ(cells.size(), harness::miss_headers().size());
  EXPECT_EQ(cells[0], "3");
  EXPECT_EQ(cells[5], "3");  // total
  EXPECT_EQ(cells[6], "7");  // excl-req
}

TEST(Figure, UpdateCellsMatchHeaders) {
  stats::UpdateCounts u;
  u[stats::UpdateClass::TrueSharing] = 10;
  u[stats::UpdateClass::Drop] = 2;
  const auto cells = harness::update_cells(u);
  ASSERT_EQ(cells.size(), harness::update_headers().size());
  EXPECT_EQ(cells[0], "10");
  EXPECT_EQ(cells[5], "2");
  EXPECT_EQ(cells[6], "12");  // total
}

TEST(Cli, Defaults) {
  unsetenv("REPRO_SCALE");
  char prog[] = "bench";
  char* argv[] = {prog};
  const BenchOptions o = harness::parse_bench_args(1, argv);
  EXPECT_FALSE(o.csv);
  EXPECT_EQ(o.procs.size(), 6u);
  EXPECT_GT(o.scale, 0.0);
}

TEST(Cli, PaperFlag) {
  char prog[] = "bench", paper[] = "--paper";
  char* argv[] = {prog, paper};
  EXPECT_EQ(harness::parse_bench_args(2, argv).scale, 1.0);
}

TEST(Cli, ScaleAndProcsAndCsv) {
  char prog[] = "bench", s[] = "--scale=0.25", p[] = "--procs=2,8", c[] = "--csv";
  char* argv[] = {prog, s, p, c};
  const BenchOptions o = harness::parse_bench_args(4, argv);
  EXPECT_DOUBLE_EQ(o.scale, 0.25);
  EXPECT_EQ(o.procs, (std::vector<unsigned>{2, 8}));
  EXPECT_TRUE(o.csv);
}

TEST(Cli, ScaledCountsHaveFloor) {
  char prog[] = "bench", s[] = "--scale=0.0001";
  char* argv[] = {prog, s};
  const BenchOptions o = harness::parse_bench_args(2, argv);
  EXPECT_EQ(o.scaled(32000), 32u);
}

TEST(Cli, RejectsBadArgs) {
  char prog[] = "bench", bad[] = "--bogus";
  char* argv[] = {prog, bad};
  EXPECT_THROW(harness::parse_bench_args(2, argv), std::invalid_argument);
  char s2[] = "--scale=7";
  char* argv2[] = {prog, s2};
  EXPECT_THROW(harness::parse_bench_args(2, argv2), std::invalid_argument);
}

TEST(Cli, EnvDefaultScale) {
  setenv("REPRO_SCALE", "0.5", 1);
  char prog[] = "bench";
  char* argv[] = {prog};
  EXPECT_DOUBLE_EQ(harness::parse_bench_args(1, argv).scale, 0.5);
  unsetenv("REPRO_SCALE");
}

} // namespace
