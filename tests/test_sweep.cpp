// Sweep-engine tests: deterministic parallel execution (per-cell JSON
// byte-identical between jobs=8 and jobs=1 across protocol x construct x
// seed -- ISSUE acceptance criterion), submission-order results, failure
// containment (a throwing job becomes a failed cell, the sweep survives),
// and the shared-sink rejection contract.
#include "harness/sweep.hpp"

#include "harness/obs_session.hpp"
#include "obs/jsonl_sink.hpp"
#include "stats/json.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

namespace {

using namespace ccsim;
using harness::ConstructFamily;
using harness::SweepJob;
using harness::SweepOptions;
using harness::SweepResult;

harness::MachineConfig small_machine(proto::Protocol p, bool profile = false) {
  harness::MachineConfig cfg;
  cfg.protocol = p;
  cfg.nprocs = 4;
  cfg.obs.profile = profile;
  return cfg;
}

/// The ISSUE's determinism grid: WI/PU/CU x lock/barrier/reduction x two
/// workload seeds (barriers take no seed; they appear once per protocol,
/// keeping the grid the full construct cross product).
std::vector<SweepJob> determinism_grid(bool profile = false) {
  std::vector<SweepJob> jobs;
  for (proto::Protocol p :
       {proto::Protocol::WI, proto::Protocol::PU, proto::Protocol::CU}) {
    for (std::uint64_t seed : {0x5eedULL, 0x1234ULL}) {
      SweepJob lock;
      lock.name = "lock/" + std::string(proto::to_string(p)) + "/s" +
                  std::to_string(seed);
      lock.machine = small_machine(p, profile);
      lock.family = ConstructFamily::Lock;
      lock.lock = harness::LockKind::Mcs;
      lock.lock_params.total_acquires = 200;
      lock.lock_params.random_pause_max = 40;  // makes the seed matter
      lock.lock_params.seed = seed;
      jobs.push_back(std::move(lock));

      SweepJob red;
      red.name = "reduction/" + std::string(proto::to_string(p)) + "/s" +
                 std::to_string(seed);
      red.machine = small_machine(p, profile);
      red.family = ConstructFamily::Reduction;
      red.reduction = harness::ReductionKind::Parallel;
      red.reduction_params.rounds = 50;
      red.reduction_params.seed = seed;
      jobs.push_back(std::move(red));
    }
    SweepJob bar;
    bar.name = "barrier/" + std::string(proto::to_string(p));
    bar.machine = small_machine(p, profile);
    bar.family = ConstructFamily::Barrier;
    bar.barrier = harness::BarrierKind::Dissemination;
    bar.barrier_params.episodes = 50;
    jobs.push_back(std::move(bar));
  }
  return jobs;
}

/// Serialize one cell the way ccsweep does: the shared run-object schema.
std::string cell_json(const SweepResult& r) {
  std::ostringstream os;
  stats::JsonWriter w(os);
  w.begin_object();
  w.key("name").value(r.name);
  w.key("ok").value(r.ok);
  if (r.ok)
    harness::write_run_fields(w, r.run);
  else
    w.key("error").value(r.error);
  w.end_object();
  return os.str();
}

TEST(Sweep, ParallelRunIsByteIdenticalToSequential) {
  const auto jobs = determinism_grid();
  SweepOptions seq;
  seq.jobs = 1;
  SweepOptions par;
  par.jobs = 8;
  const auto a = harness::run_sweep(jobs, seq);
  const auto b = harness::run_sweep(jobs, par);
  ASSERT_EQ(a.size(), jobs.size());
  ASSERT_EQ(b.size(), jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    ASSERT_TRUE(a[i].ok) << a[i].name << ": " << a[i].error;
    ASSERT_TRUE(b[i].ok) << b[i].name << ": " << b[i].error;
    EXPECT_EQ(cell_json(a[i]), cell_json(b[i])) << jobs[i].name;
  }
}

TEST(Sweep, ProfiledParallelRunIsByteIdenticalToSequential) {
  // Per-machine observability (the cycle-accounting profiler) is safe
  // under parallel execution and must not perturb determinism.
  const auto jobs = determinism_grid(/*profile=*/true);
  SweepOptions par;
  par.jobs = 8;
  const auto a = harness::run_sweep(jobs, SweepOptions{});
  const auto b = harness::run_sweep(jobs, par);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    ASSERT_TRUE(a[i].ok && b[i].ok) << jobs[i].name;
    ASSERT_TRUE(a[i].run.profile.enabled());
    EXPECT_EQ(cell_json(a[i]), cell_json(b[i])) << jobs[i].name;
  }
}

TEST(Sweep, ResultsComeBackInSubmissionOrder) {
  const auto jobs = determinism_grid();
  SweepOptions par;
  par.jobs = 8;
  const auto results = harness::run_sweep(jobs, par);
  ASSERT_EQ(results.size(), jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i)
    EXPECT_EQ(results[i].name, jobs[i].name);
}

TEST(Sweep, ThrowingJobBecomesFailedCellWithoutAbortingTheSweep) {
  auto jobs = determinism_grid();
  // Force one mid-sweep cell over its deadlock backstop: Machine::run
  // throws, and the sweep must contain it.
  const std::size_t victim = jobs.size() / 2;
  jobs[victim].machine.max_cycles = 10;
  SweepOptions par;
  par.jobs = 8;
  const auto results = harness::run_sweep(jobs, par);
  ASSERT_EQ(results.size(), jobs.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (i == victim) {
      EXPECT_FALSE(results[i].ok);
      EXPECT_FALSE(results[i].error.empty());
      // Hitting the max_cycles backstop is classified as a deadlock cell.
      EXPECT_EQ(results[i].fail, SweepResult::FailKind::Deadlock);
    } else {
      EXPECT_TRUE(results[i].ok) << results[i].name << ": " << results[i].error;
    }
  }
}

TEST(Sweep, FailedCellsAreContainedSequentiallyToo) {
  auto jobs = determinism_grid();
  jobs[0].machine.max_cycles = 10;
  const auto results = harness::run_sweep(jobs, SweepOptions{});
  EXPECT_FALSE(results[0].ok);
  EXPECT_EQ(results[0].fail, SweepResult::FailKind::Deadlock);
  for (std::size_t i = 1; i < results.size(); ++i) {
    EXPECT_TRUE(results[i].ok) << results[i].name;
    EXPECT_EQ(results[i].fail, SweepResult::FailKind::None);
  }
}

TEST(Sweep, CustomRunnerOverridesFamilyDispatch) {
  SweepJob j;
  j.name = "custom";
  j.runner = [](const harness::MachineConfig&) {
    harness::RunResult r;
    r.cycles = 1234;
    return r;
  };
  const SweepResult r = harness::run_sweep_job(j);
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.run.cycles, 1234u);
}

TEST(Sweep, SharedTraceSinkIsRejectedWhenParallel) {
  std::ostringstream os;
  obs::JsonlSink sink(os);
  auto jobs = determinism_grid();
  jobs[1].machine.obs.sink = &sink;
  SweepOptions par;
  par.jobs = 4;
  EXPECT_THROW((void)harness::run_sweep(jobs, par), std::invalid_argument);
  // Sequential execution with a sink stays allowed.
  const auto results = harness::run_sweep(jobs, SweepOptions{});
  EXPECT_TRUE(results[1].ok) << results[1].error;
}

TEST(Sweep, ZeroJobsMeansHardwareConcurrency) {
  const auto jobs = determinism_grid();
  SweepOptions all;
  all.jobs = 0;
  const auto a = harness::run_sweep(jobs, SweepOptions{});
  const auto b = harness::run_sweep(jobs, all);
  for (std::size_t i = 0; i < jobs.size(); ++i)
    EXPECT_EQ(cell_json(a[i]), cell_json(b[i]));
}

TEST(Sweep, EmptyJobListIsFine) {
  const auto results = harness::run_sweep({}, SweepOptions{});
  EXPECT_TRUE(results.empty());
}

} // namespace
