// Edge cases: write-buffer-full stalls, byte-granular flags, tiny caches
// under every protocol, odd machine sizes, recall chains, CU threshold 1,
// and maximum-size (32-processor) construct runs.
#include "ccsim.hpp"

#include <gtest/gtest.h>

namespace {

using namespace ccsim;
using harness::Machine;
using harness::MachineConfig;
using proto::Protocol;

TEST(EdgeCases, WriteBufferFullStallsAndRecovers) {
  // Fire more back-to-back stores than the 4-entry buffer can hold while
  // the head is blocked on a write-allocate fetch: the processor must
  // stall, the stall cycles must be counted, and all stores must land.
  for (Protocol p : {Protocol::WI, Protocol::PU, Protocol::CU}) {
    MachineConfig cfg;
    cfg.protocol = p;
    cfg.nprocs = 2;
    Machine m(cfg);
    const Addr base = m.alloc().allocate(8 * mem::kBlockSize, mem::kBlockSize);
    m.run({[&](cpu::Cpu& c) -> sim::Task {
      for (int i = 0; i < 8; ++i)
        co_await c.store(base + i * mem::kBlockSize, 100 + i);  // 8 cold blocks
      co_await c.fence();
    }});
    for (int i = 0; i < 8; ++i)
      EXPECT_EQ(m.peek(base + i * mem::kBlockSize), 100u + i) << proto::to_string(p);
    EXPECT_GT(m.counters().mem.write_buffer_stalls, 0u) << proto::to_string(p);
  }
}

TEST(EdgeCases, ByteGranularSharedAccess) {
  // The tree barrier writes single bytes; check the primitive directly:
  // four processors each own one byte of the same word.
  for (Protocol p : {Protocol::WI, Protocol::PU, Protocol::CU}) {
    MachineConfig cfg;
    cfg.protocol = p;
    cfg.nprocs = 4;
    Machine m(cfg);
    const Addr w = m.alloc().allocate_on(0, 8);
    m.run_all([&](cpu::Cpu& c) -> sim::Task {
      co_await c.store(w + c.id(), 0x10 + c.id(), 1);
      co_await c.fence();
    });
    for (unsigned i = 0; i < 4; ++i)
      EXPECT_EQ(m.peek(w + i, 1), 0x10u + i) << proto::to_string(p) << " byte " << i;
  }
}

TEST(EdgeCases, TinyCacheConstructsStillCorrect) {
  // A 256-byte cache (4 lines) forces constant evictions of the very
  // blocks the constructs spin on.
  for (Protocol p : {Protocol::WI, Protocol::PU, Protocol::CU}) {
    MachineConfig cfg;
    cfg.protocol = p;
    cfg.nprocs = 4;
    cfg.cache_bytes = 256;
    Machine m(cfg);
    sync::TicketLock lock(m);
    sync::DisseminationBarrier barrier(m);
    const Addr ctr = m.alloc().allocate_on(0, 8);
    m.run_all([&](cpu::Cpu& c) -> sim::Task {
      for (int i = 0; i < 10; ++i) {
        co_await lock.acquire(c);
        const std::uint64_t v = co_await c.load(ctr);
        co_await c.store(ctr, v + 1);
        co_await lock.release(c);
        co_await barrier.wait(c);
      }
    });
    EXPECT_EQ(m.peek(ctr), 40u) << proto::to_string(p);
    EXPECT_GT(m.counters().misses[stats::MissClass::Eviction], 0u)
        << "the tiny cache should evict " << proto::to_string(p);
  }
}

TEST(EdgeCases, OddProcessorCounts) {
  for (unsigned n : {3u, 7u, 13u}) {
    for (Protocol p : {Protocol::WI, Protocol::PU, Protocol::CU}) {
      MachineConfig cfg;
      cfg.protocol = p;
      cfg.nprocs = n;
      const auto r = harness::run_barrier_experiment(
          cfg, harness::BarrierKind::Dissemination, {.episodes = 25});
      EXPECT_GT(r.cycles, 0u) << n << " " << proto::to_string(p);
    }
  }
}

TEST(EdgeCases, RecallChainUnderPU) {
  // Private-mode ping-pong: two writers alternate bursts on the same
  // block, each burst re-entering private mode, each switch a recall.
  MachineConfig cfg;
  cfg.protocol = Protocol::PU;
  cfg.nprocs = 2;
  Machine m(cfg);
  const Addr a = m.alloc().allocate_on(0, 8);
  const Addr turn = m.alloc().allocate_on(1, 8);
  m.run_all([&](cpu::Cpu& c) -> sim::Task {
    for (int round = 0; round < 6; ++round) {
      co_await c.spin_until(turn, [round, me = c.id()](std::uint64_t v) {
        return v == static_cast<std::uint64_t>(2 * round + me);
      });
      const std::uint64_t start = co_await c.load(a);
      for (int k = 1; k <= 5; ++k) co_await c.store(a, start + k);
      co_await c.fence();
      co_await c.store(turn, 2 * round + c.id() + 1);
    }
  });
  EXPECT_EQ(m.peek(a), 60u);
  EXPECT_GT(m.counters().net.of(net::MsgType::Recall), 0u)
      << "alternating private writers must trigger recalls";
}

TEST(EdgeCases, CuThresholdOneInvalidatesOnFirstUpdate) {
  MachineConfig cfg;
  cfg.protocol = Protocol::CU;
  cfg.nprocs = 2;
  cfg.cu_threshold = 1;
  Machine m(cfg);
  const Addr a = m.alloc().allocate_on(1, 8);
  const Addr flag = m.alloc().allocate_on(1, 8);
  std::vector<Machine::Program> ps;
  ps.push_back([&](cpu::Cpu& c) -> sim::Task {
    (void)co_await c.load(a);  // cache it
    co_await c.store(flag, 1);
    co_await c.spin_until(flag, [](std::uint64_t v) { return v == 2; });
  });
  ps.push_back([&](cpu::Cpu& c) -> sim::Task {
    co_await c.spin_until(flag, [](std::uint64_t v) { return v == 1; });
    co_await c.store(a, 9);
    co_await c.fence();
    co_await c.store(flag, 2);
  });
  m.run(ps);
  // At threshold 1 every first update drops a copy: the data block at the
  // reader, and the spun-on flag copies at both ends.
  EXPECT_GE(m.counters().updates[stats::UpdateClass::Drop], 1u);
  EXPECT_EQ(m.node(0).cache_ctrl().cache().find(mem::block_of(a)), nullptr);
}

TEST(EdgeCases, FullMachineEveryConstructOnce) {
  // 32 processors, one pass through every construct family per protocol.
  for (Protocol p : {Protocol::WI, Protocol::PU, Protocol::CU}) {
    MachineConfig cfg;
    cfg.protocol = p;
    cfg.nprocs = 32;
    Machine m(cfg);
    sync::McsLock lock(m);
    sync::CombiningTreeBarrier barrier(m);
    sync::SequentialReduction red(m, barrier);
    const Addr acc = m.alloc().allocate_on(0, 8);
    m.run_all([&](cpu::Cpu& c) -> sim::Task {
      co_await lock.acquire(c);
      const std::uint64_t v = co_await c.load(acc);
      co_await c.store(acc, v + 1);
      co_await lock.release(c);
      std::uint64_t result = 0;
      co_await red.reduce(c, c.id() + 1, &result);
      if (result != 32) throw std::logic_error("bad 32-proc reduction");
    });
    EXPECT_EQ(m.peek(acc), 32u) << proto::to_string(p);
  }
}

TEST(EdgeCases, SingleProcessorEveryConstruct) {
  for (Protocol p : {Protocol::WI, Protocol::PU, Protocol::CU}) {
    MachineConfig cfg;
    cfg.protocol = p;
    cfg.nprocs = 1;
    Machine m(cfg);
    sync::TicketLock tk(m);
    sync::McsLock mcs(m);
    sync::TasLock tas(m);
    sync::CentralBarrier cb(m);
    sync::DisseminationBarrier db(m);
    sync::TreeBarrier tb(m);
    sync::CombiningTreeBarrier ct(m);
    m.run_all([&](cpu::Cpu& c) -> sim::Task {
      co_await tk.acquire(c);
      co_await tk.release(c);
      co_await mcs.acquire(c);
      co_await mcs.release(c);
      co_await tas.acquire(c);
      co_await tas.release(c);
      co_await cb.wait(c);
      co_await db.wait(c);
      co_await tb.wait(c);
      co_await ct.wait(c);
    });
  }
}

TEST(EdgeCases, FenceWithNothingOutstandingIsImmediate) {
  MachineConfig cfg;
  cfg.nprocs = 1;
  Machine m(cfg);
  const Cycle t = m.run_all([&](cpu::Cpu& c) -> sim::Task {
    for (int i = 0; i < 50; ++i) co_await c.fence();
  });
  EXPECT_LT(t, 100u);
}

} // namespace
