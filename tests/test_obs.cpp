// Observability layer: interval sampling invariants, hot-block attribution,
// and the Perfetto / JSONL trace sinks wired through a real machine.
#include "ccsim.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <vector>

namespace {

using namespace ccsim;

// --- tiny JSON helpers (structure checks, no external parser) -------------

/// Braces/brackets balanced outside string literals, strings closed.
bool json_balanced(const std::string& s) {
  int depth = 0;
  bool in_str = false, esc = false;
  for (char ch : s) {
    if (in_str) {
      if (esc)
        esc = false;
      else if (ch == '\\')
        esc = true;
      else if (ch == '"')
        in_str = false;
      continue;
    }
    if (ch == '"') in_str = true;
    else if (ch == '{' || ch == '[') ++depth;
    else if (ch == '}' || ch == ']') {
      if (--depth < 0) return false;
    }
  }
  return depth == 0 && !in_str;
}

/// Value of `"key":<int>` inside a one-line JSON record (-1 = absent).
std::int64_t field_u64(const std::string& rec, const std::string& key) {
  const std::string pat = "\"" + key + "\":";
  const auto pos = rec.find(pat);
  if (pos == std::string::npos) return -1;
  return std::stoll(rec.substr(pos + pat.size()));
}

/// Value of `"key":"<string>"` inside a one-line JSON record ("" = absent).
std::string field_str(const std::string& rec, const std::string& key) {
  const std::string pat = "\"" + key + "\":\"";
  const auto pos = rec.find(pat);
  if (pos == std::string::npos) return "";
  const auto end = rec.find('"', pos + pat.size());
  return rec.substr(pos + pat.size(), end - pos - pat.size());
}

std::vector<std::string> lines_of(const std::string& s) {
  std::vector<std::string> out;
  std::istringstream is(s);
  for (std::string l; std::getline(is, l);) out.push_back(l);
  return out;
}

harness::RunResult sampled_lock_run(harness::MachineConfig cfg) {
  return harness::run_lock_experiment(cfg, harness::LockKind::Ticket,
                                      {.total_acquires = 800});
}

// --- interval sampler ------------------------------------------------------

TEST(IntervalSampler, OffByDefault) {
  harness::MachineConfig cfg;
  cfg.nprocs = 4;
  const auto r = sampled_lock_run(cfg);
  EXPECT_TRUE(r.samples.empty());
  EXPECT_TRUE(r.hot.empty());
}

TEST(IntervalSampler, DeltasSumToFinalCounters) {
  harness::MachineConfig cfg;
  cfg.nprocs = 4;
  cfg.protocol = proto::Protocol::PU;  // updates exercise finalize()
  cfg.obs.sample_interval = 500;
  const auto r = sampled_lock_run(cfg);

  ASSERT_FALSE(r.samples.empty());
  EXPECT_EQ(r.samples.interval, 500u);

  stats::Counters sum;
  Cycle prev_end = 0;
  for (const obs::Sample& s : r.samples.samples) {
    EXPECT_EQ(s.begin, prev_end) << "intervals must tile the run";
    EXPECT_GT(s.end, s.begin);
    prev_end = s.end;
    stats::accumulate(sum, s.delta);
  }
  // The invariant the sampler promises: the series accounts for every
  // counted event, including end-of-run update finalization.
  EXPECT_EQ(stats::to_json(sum), stats::to_json(r.counters));
}

TEST(IntervalSampler, SamplingDoesNotPerturbTheRun) {
  harness::MachineConfig cfg;
  cfg.nprocs = 4;
  const auto plain = sampled_lock_run(cfg);
  cfg.obs.sample_interval = 250;
  const auto sampled = sampled_lock_run(cfg);
  EXPECT_EQ(plain.cycles, sampled.cycles);
  EXPECT_EQ(stats::to_json(plain.counters), stats::to_json(sampled.counters));
}

// --- hot-block attribution --------------------------------------------------

TEST(HotBlocks, AttributesNamedLockBlocks) {
  harness::MachineConfig cfg;
  cfg.nprocs = 8;
  cfg.obs.hot_blocks = true;
  const auto r = sampled_lock_run(cfg);

  ASSERT_FALSE(r.hot.empty());
  // Score-descending, deterministic order.
  for (std::size_t i = 1; i < r.hot.size(); ++i)
    EXPECT_GE(r.hot[i - 1].cell.score(), r.hot[i].cell.score());
  // The contended ticket-lock counters must be the hottest block, and the
  // shared allocator must resolve its symbolic name.
  EXPECT_NE(r.hot[0].name.find("ticket"), std::string::npos) << r.hot[0].name;
  EXPECT_GT(r.hot[0].cell.miss_total() + r.hot[0].cell.update_total(), 0u);
}

TEST(HotBlocks, CountsMatchGlobalCounters) {
  harness::MachineConfig cfg;
  cfg.nprocs = 4;
  cfg.protocol = proto::Protocol::PU;
  cfg.obs.hot_blocks = true;
  cfg.obs.hot_top_k = 1u << 20;  // everything
  const auto r = sampled_lock_run(cfg);

  std::uint64_t misses = 0, updates = 0;
  for (const auto& row : r.hot) {
    misses += row.cell.miss_total();
    updates += row.cell.update_total();
  }
  // Attribution rides the classifier hooks, so per-block counts are exact.
  EXPECT_EQ(misses, r.counters.misses.total());
  EXPECT_EQ(updates, r.counters.updates.total());
}

// --- perfetto sink ----------------------------------------------------------

TEST(PerfettoSink, EmitsBalancedTraceWithMonotoneTracks) {
  std::ostringstream os;
  obs::PerfettoSink sink(os);
  sink.begin_run("tk/i/P4");

  harness::MachineConfig cfg;
  cfg.nprocs = 4;
  cfg.obs.sink = &sink;
  const auto r = sampled_lock_run(cfg);
  (void)r;
  sink.finish();

  const std::string trace = os.str();
  ASSERT_TRUE(json_balanced(trace)) << trace.substr(0, 200);
  EXPECT_NE(trace.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(trace.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(trace.find("\"process_name\""), std::string::npos);
  EXPECT_NE(trace.find("\"tk/i/P4\""), std::string::npos);
  EXPECT_NE(trace.find("\"thread_name\""), std::string::npos);

  // Per-(pid,tid) timestamps must be monotone non-decreasing in file order,
  // and every flow start must have a matching finish.
  std::map<std::pair<std::int64_t, std::int64_t>, std::int64_t> last_ts;
  std::map<std::int64_t, int> flows;  // id -> starts - finishes
  std::size_t records = 0;
  for (const std::string& raw : lines_of(trace)) {
    if (raw.empty() || raw[0] != '{' || raw.find("\"ts\":") == std::string::npos)
      continue;
    std::string rec = raw;
    if (rec.back() == ',') rec.pop_back();
    ASSERT_TRUE(json_balanced(rec)) << rec;
    ++records;
    const auto pid = field_u64(rec, "pid");
    const auto tid = field_u64(rec, "tid");
    const auto ts = field_u64(rec, "ts");
    ASSERT_GE(pid, 0);
    ASSERT_GE(ts, 0);
    auto [it, fresh] = last_ts.try_emplace({pid, tid}, ts);
    if (!fresh) {
      EXPECT_LE(it->second, ts) << "track (" << pid << "," << tid
                                << ") went backwards: " << rec;
      it->second = ts;
    }
    const std::string ph = field_str(rec, "ph");
    if (ph == "s") ++flows[field_u64(rec, "id")];
    if (ph == "f") --flows[field_u64(rec, "id")];
  }
  EXPECT_GT(records, 0u);
  EXPECT_GT(last_ts.size(), 1u) << "expected more than one node track";
  for (const auto& [id, balance] : flows)
    EXPECT_EQ(balance, 0) << "unbalanced flow id " << id;
}

TEST(PerfettoSink, SeparatesRunsIntoProcesses) {
  std::ostringstream os;
  obs::PerfettoSink sink(os);
  for (int run = 0; run < 2; ++run) {
    sink.begin_run("run" + std::to_string(run));
    harness::MachineConfig cfg;
    cfg.nprocs = 2;
    cfg.obs.sink = &sink;
    (void)sampled_lock_run(cfg);
  }
  sink.finish();
  const std::string trace = os.str();
  ASSERT_TRUE(json_balanced(trace));
  EXPECT_NE(trace.find("\"run0\""), std::string::npos);
  EXPECT_NE(trace.find("\"run1\""), std::string::npos);
  EXPECT_NE(trace.find("\"pid\":2"), std::string::npos);
}

// --- jsonl sink --------------------------------------------------------------

TEST(JsonlSink, OneBalancedObjectPerLine) {
  std::ostringstream os;
  obs::JsonlSink sink(os);
  sink.begin_run("lines");

  harness::MachineConfig cfg;
  cfg.nprocs = 2;
  cfg.obs.sink = &sink;
  (void)sampled_lock_run(cfg);
  sink.finish();

  const auto lines = lines_of(os.str());
  ASSERT_GT(lines.size(), 1u);
  EXPECT_EQ(lines[0], "{\"run\":\"lines\"}");
  for (const std::string& l : lines) {
    ASSERT_FALSE(l.empty());
    EXPECT_EQ(l.front(), '{');
    EXPECT_EQ(l.back(), '}');
    EXPECT_TRUE(json_balanced(l)) << l;
  }
  // Network events carry flow ids that join send to recv.
  EXPECT_NE(os.str().find("\"kind\":\"send\""), std::string::npos);
  EXPECT_NE(os.str().find("\"kind\":\"recv\""), std::string::npos);
  EXPECT_NE(os.str().find("\"flow\":"), std::string::npos);
}

// --- determinism -------------------------------------------------------------

TEST(Observability, TraceIsDeterministic) {
  const auto render = [] {
    std::ostringstream os;
    obs::PerfettoSink sink(os);
    sink.begin_run("det");
    harness::MachineConfig cfg;
    cfg.nprocs = 4;
    cfg.obs.sink = &sink;
    cfg.obs.sample_interval = 300;
    cfg.obs.hot_blocks = true;
    (void)sampled_lock_run(cfg);
    sink.finish();
    return os.str();
  };
  EXPECT_EQ(render(), render());
}

} // namespace
