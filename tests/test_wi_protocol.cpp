// WI protocol behavior: MSI state transitions, forwarding, invalidation
// acknowledgements, release consistency, directory/cache agreement.
#include "ccsim.hpp"

#include <gtest/gtest.h>

namespace {

using namespace ccsim;
using harness::Machine;
using harness::MachineConfig;
using mem::DirState;
using mem::LineState;
using proto::Protocol;

MachineConfig wi(unsigned n) {
  MachineConfig c;
  c.protocol = Protocol::WI;
  c.nprocs = n;
  return c;
}

TEST(WiProtocol, ReadFillsShared) {
  Machine m(wi(2));
  const Addr a = m.alloc().allocate_on(1, 8);
  m.poke(a, 5);
  m.run({[&](cpu::Cpu& c) -> sim::Task { (void)co_await c.load(a); }});
  auto* line = m.node(0).cache_ctrl().cache().find(mem::block_of(a));
  ASSERT_NE(line, nullptr);
  EXPECT_EQ(line->state, LineState::Shared);
  const auto* e = m.node(1).home_ctrl().directory().find(mem::block_of(a));
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->state, DirState::Shared);
  EXPECT_TRUE(e->has_sharer(0));
}

TEST(WiProtocol, WriteObtainsModified) {
  Machine m(wi(2));
  const Addr a = m.alloc().allocate_on(1, 8);
  m.run({[&](cpu::Cpu& c) -> sim::Task {
    co_await c.store(a, 9);
    co_await c.fence();
  }});
  auto* line = m.node(0).cache_ctrl().cache().find(mem::block_of(a));
  ASSERT_NE(line, nullptr);
  EXPECT_EQ(line->state, LineState::Modified);
  const auto* e = m.node(1).home_ctrl().directory().find(mem::block_of(a));
  EXPECT_EQ(e->state, DirState::Exclusive);
  EXPECT_EQ(e->owner, 0u);
}

TEST(WiProtocol, WriteHitOnSharedIsUpgradeNotMiss) {
  Machine m(wi(2));
  const Addr a = m.alloc().allocate_on(1, 8);
  m.run({[&](cpu::Cpu& c) -> sim::Task {
    (void)co_await c.load(a);  // Shared
    co_await c.store(a, 1);    // upgrade
    co_await c.fence();
  }});
  EXPECT_EQ(m.counters().misses.exclusive_requests, 1u);
  EXPECT_EQ(m.counters().misses.total(), 1u) << "only the initial read miss";
}

TEST(WiProtocol, WriterInvalidatesReaders) {
  Machine m(wi(3));
  const Addr a = m.alloc().allocate_on(2, 8);
  const Addr go = m.alloc().allocate_on(2, 8);
  std::vector<Machine::Program> ps;
  // Two readers cache the block, then the writer takes it exclusive.
  for (int r = 0; r < 2; ++r) {
    ps.push_back([&](cpu::Cpu& c) -> sim::Task {
      (void)co_await c.load(a);
      co_await c.store(go + 8 * c.id(), 1);  // private-ish signal word
      co_await c.spin_until(go + 16, [](std::uint64_t v) { return v == 1; });
      (void)co_await c.load(a);  // re-read after invalidation
    });
  }
  ps.push_back([&](cpu::Cpu& c) -> sim::Task {
    co_await c.spin_until(go, [](std::uint64_t v) { return v == 1; });
    co_await c.spin_until(go + 8, [](std::uint64_t v) { return v == 1; });
    co_await c.store(a, 77);
    co_await c.fence();
    co_await c.store(go + 16, 1);
  });
  m.run(ps);
  // Each reader re-reads a after invalidation (2 true-sharing misses), and
  // the spins on the go block add more as its words are written.
  EXPECT_GE(m.counters().misses[stats::MissClass::TrueSharing], 4u);
  EXPECT_EQ(m.peek(a), 77u);
}

TEST(WiProtocol, DirtyForwardingServesReaderFromOwner) {
  Machine m(wi(3));
  const Addr a = m.alloc().allocate_on(2, 8);
  const Addr flag = m.alloc().allocate_on(2, 8);
  std::uint64_t got = 0;
  std::vector<Machine::Program> ps;
  ps.push_back([&](cpu::Cpu& c) -> sim::Task {  // writer: dirty copy
    co_await c.store(a, 1234);
    co_await c.fence();
    co_await c.store(flag, 1);
  });
  ps.push_back([&](cpu::Cpu& c) -> sim::Task {  // reader
    co_await c.spin_until(flag, [](std::uint64_t v) { return v == 1; });
    got = co_await c.load(a);
  });
  m.run(ps);
  EXPECT_EQ(got, 1234u);
  // After the forward the block is Shared at both and the home is clean.
  const auto* e = m.node(2).home_ctrl().directory().find(mem::block_of(a));
  EXPECT_EQ(e->state, DirState::Shared);
  EXPECT_TRUE(e->has_sharer(0));
  EXPECT_TRUE(e->has_sharer(1));
  EXPECT_EQ(m.node(2).home_ctrl().memory().read_word(a, 8), 1234u);
}

TEST(WiProtocol, EvictionWritesBackDirtyData) {
  MachineConfig cfg = wi(2);
  cfg.cache_bytes = 1024;  // 16 sets: easy to conflict
  Machine m(cfg);
  const Addr a = m.alloc().allocate_on(1, 8);
  // A second block 16 blocks later maps to the same set.
  const Addr conflict = a + 16 * mem::kBlockSize;
  m.run({[&](cpu::Cpu& c) -> sim::Task {
    co_await c.store(a, 42);
    co_await c.fence();
    (void)co_await c.load(conflict);  // evicts the dirty block
    (void)co_await c.load(a);         // reload: eviction miss
  }});
  EXPECT_EQ(m.counters().misses[stats::MissClass::Eviction], 1u);
  EXPECT_EQ(m.peek(a), 42u);
}

TEST(WiProtocol, NoUpdateMessagesEver) {
  Machine m(wi(4));
  const Addr a = m.alloc().allocate_on(0, 8);
  m.run_all([&](cpu::Cpu& c) -> sim::Task {
    for (int i = 0; i < 10; ++i) {
      (void)co_await c.fetch_add(a, 1);
      (void)co_await c.load(a);
    }
  });
  EXPECT_EQ(m.counters().updates.total(), 0u);
}

TEST(WiProtocol, ReleaseFenceWaitsForInvalAcks) {
  Machine m(wi(8));
  const Addr a = m.alloc().allocate_on(0, 8);
  const Addr flag = m.alloc().allocate_on(0, 8);
  // 7 readers cache block a; the writer upgrades and fences. The fence
  // cannot complete before the 7 invalidation acks arrive, so the flag
  // write is ordered after them.
  std::vector<Machine::Program> ps;
  ps.push_back([&](cpu::Cpu& c) -> sim::Task {
    (void)co_await c.load(a);
    co_await c.spin_until(flag, [](std::uint64_t v) { return v == 1; });
    // After the writer's release, our copy of a must be gone or fresh.
    EXPECT_EQ(co_await c.load(a), 50u);
  });
  for (int i = 1; i < 7; ++i)
    ps.push_back([&](cpu::Cpu& c) -> sim::Task { (void)co_await c.load(a); });
  ps.push_back([&](cpu::Cpu& c) -> sim::Task {
    co_await c.think(200);  // let the readers cache it
    co_await c.store(a, 50);
    co_await c.fence();
    co_await c.store(flag, 1);
  });
  m.run(ps);
}

} // namespace
