// End-to-end smoke tests: build a machine per protocol, run simple
// programs, check values, timing sanity and basic counter behavior.
#include "ccsim.hpp"

#include <gtest/gtest.h>

namespace {

using namespace ccsim;
using harness::Machine;
using harness::MachineConfig;
using proto::Protocol;

MachineConfig cfg_for(Protocol p, unsigned n) {
  MachineConfig c;
  c.protocol = p;
  c.nprocs = n;
  return c;
}

class MachineBasic : public ::testing::TestWithParam<Protocol> {};

INSTANTIATE_TEST_SUITE_P(AllProtocols, MachineBasic,
                         ::testing::Values(Protocol::WI, Protocol::PU, Protocol::CU),
                         [](const auto& info) {
                           return std::string(proto::to_string(info.param));
                         });

TEST_P(MachineBasic, SingleProcLoadAfterStore) {
  Machine m(cfg_for(GetParam(), 1));
  const Addr a = m.alloc().allocate(8);
  std::uint64_t seen = 0;
  m.run_all([&](cpu::Cpu& c) -> sim::Task {
    co_await c.store(a, 123);
    co_await c.fence();
    seen = co_await c.load(a);
  });
  EXPECT_EQ(seen, 123u);
  EXPECT_EQ(m.peek(a), 123u);
}

TEST_P(MachineBasic, PokeIsVisibleToLoads) {
  Machine m(cfg_for(GetParam(), 2));
  const Addr a = m.alloc().allocate_on(1, 8);
  m.poke(a, 77);
  std::uint64_t seen[2] = {0, 0};
  m.run_all([&](cpu::Cpu& c) -> sim::Task { seen[c.id()] = co_await c.load(a); });
  EXPECT_EQ(seen[0], 77u);
  EXPECT_EQ(seen[1], 77u);
}

TEST_P(MachineBasic, ProducerConsumerThroughSpin) {
  Machine m(cfg_for(GetParam(), 2));
  const Addr flag = m.alloc().allocate_on(1, 8);
  const Addr data = m.alloc().allocate_on(0, 8);
  std::uint64_t got = 0;
  std::vector<Machine::Program> ps;
  ps.push_back([&](cpu::Cpu& c) -> sim::Task {  // producer
    co_await c.store(data, 555);
    co_await c.fence();
    co_await c.store(flag, 1);
  });
  ps.push_back([&](cpu::Cpu& c) -> sim::Task {  // consumer
    co_await c.spin_until(flag, [](std::uint64_t v) { return v == 1; });
    got = co_await c.load(data);
  });
  m.run(ps);
  EXPECT_EQ(got, 555u);
}

TEST_P(MachineBasic, FetchAddSerializesAcrossProcs) {
  const unsigned P = 8;
  Machine m(cfg_for(GetParam(), P));
  const Addr ctr = m.alloc().allocate_on(0, 8);
  std::vector<std::uint64_t> got;
  m.run_all([&](cpu::Cpu& c) -> sim::Task {
    for (int i = 0; i < 4; ++i) {
      const std::uint64_t old = co_await c.fetch_add(ctr, 1);
      got.push_back(old);
    }
  });
  EXPECT_EQ(m.peek(ctr), 4 * P);
  // Every intermediate value must have been handed out exactly once.
  std::sort(got.begin(), got.end());
  for (std::uint64_t i = 0; i < got.size(); ++i) EXPECT_EQ(got[i], i);
}

TEST_P(MachineBasic, ThinkAdvancesTime) {
  Machine m(cfg_for(GetParam(), 1));
  const Cycle t = m.run_all([&](cpu::Cpu& c) -> sim::Task { co_await c.think(1000); });
  EXPECT_GE(t, 1000u);
  EXPECT_LT(t, 1100u);
}

TEST_P(MachineBasic, PrivateMemoryCostsOneCycleAndStaysLocal) {
  Machine m(cfg_for(GetParam(), 1));
  std::uint64_t v = 0;
  m.run_all([&](cpu::Cpu& c) -> sim::Task {
    co_await c.store(0x100, 9);  // below kSharedBase: private
    v = co_await c.load(0x100);
  });
  EXPECT_EQ(v, 9u);
  EXPECT_EQ(m.counters().net.messages, 0u);
  EXPECT_EQ(m.counters().misses.total(), 0u);
}

TEST_P(MachineBasic, RunTwiceThrows) {
  Machine m(cfg_for(GetParam(), 1));
  m.run_all([](cpu::Cpu& c) -> sim::Task { co_await c.think(1); });
  EXPECT_THROW(m.run_all([](cpu::Cpu& c) -> sim::Task { co_await c.think(1); }),
               std::logic_error);
}

TEST_P(MachineBasic, ColdMissesAreClassifiedCold) {
  Machine m(cfg_for(GetParam(), 2));
  const Addr a = m.alloc().allocate_on(0, 8);
  m.run_all([&](cpu::Cpu& c) -> sim::Task { (void)co_await c.load(a); });
  EXPECT_EQ(m.counters().misses[stats::MissClass::Cold], 2u);
  EXPECT_EQ(m.counters().misses.total(), 2u);
}

} // namespace
