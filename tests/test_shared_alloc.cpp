// Unit tests for the shared allocator (interleave + explicit placement).
#include "mem/shared_alloc.hpp"

#include <gtest/gtest.h>

namespace {

using namespace ccsim;
using namespace ccsim::mem;

TEST(SharedAlloc, StartsAtSharedBaseAligned) {
  SharedAllocator a(8);
  const Addr p = a.allocate(8);
  EXPECT_GE(p, kSharedBase);
  EXPECT_EQ(p % kWordSize, 0u);
}

TEST(SharedAlloc, InterleavedHomeIsBlockModNodes) {
  SharedAllocator a(8);
  const Addr p = a.allocate(16 * kBlockSize, kBlockSize);
  for (unsigned i = 0; i < 16; ++i) {
    const BlockAddr b = block_of(p) + i;
    EXPECT_EQ(a.home_of(b), b % 8);
  }
}

TEST(SharedAlloc, PlacementOverridesInterleave) {
  SharedAllocator a(8);
  const Addr p = a.allocate_on(5, 3 * kBlockSize);
  EXPECT_EQ(p % kBlockSize, 0u) << "placed regions are block aligned";
  for (unsigned i = 0; i < 3; ++i) EXPECT_EQ(a.home_of(block_of(p) + i), 5u);
}

TEST(SharedAlloc, PlacedRegionsNeverShareBlocks) {
  SharedAllocator a(4);
  const Addr p1 = a.allocate_on(1, 8);   // less than a block
  const Addr p2 = a.allocate_on(2, 8);
  EXPECT_NE(block_of(p1), block_of(p2));
  EXPECT_EQ(a.home_of(block_of(p1)), 1u);
  EXPECT_EQ(a.home_of(block_of(p2)), 2u);
}

TEST(SharedAlloc, AllocationsDoNotOverlap) {
  SharedAllocator a(4);
  const Addr p1 = a.allocate(24);
  const Addr p2 = a.allocate(8);
  const Addr p3 = a.allocate_on(0, 100);
  const Addr p4 = a.allocate(8);
  EXPECT_GE(p2, p1 + 24);
  EXPECT_GE(p3, p2 + 8);
  EXPECT_GE(p4, p3 + 100);
}

TEST(SharedAlloc, AlignmentRespected) {
  SharedAllocator a(4);
  (void)a.allocate(3);
  const Addr p = a.allocate(8, 64);
  EXPECT_EQ(p % 64, 0u);
}

} // namespace
