// Unit tests for the full-map directory.
#include "mem/directory.hpp"

#include <gtest/gtest.h>

namespace {

using namespace ccsim;
using namespace ccsim::mem;

TEST(Directory, EntriesStartUnowned) {
  Directory d;
  EXPECT_EQ(d.find(7), nullptr);
  DirEntry& e = d.entry(7);
  EXPECT_EQ(e.state, DirState::Unowned);
  EXPECT_EQ(e.sharers, 0u);
  EXPECT_NE(d.find(7), nullptr);
}

TEST(Directory, SharerBitOperations) {
  DirEntry e;
  e.add_sharer(0);
  e.add_sharer(31);
  EXPECT_TRUE(e.has_sharer(0));
  EXPECT_TRUE(e.has_sharer(31));
  EXPECT_FALSE(e.has_sharer(5));
  EXPECT_EQ(e.sharer_count(), 2u);
  e.remove_sharer(0);
  EXPECT_FALSE(e.has_sharer(0));
  EXPECT_EQ(e.sharer_count(), 1u);
  e.remove_sharer(0);  // idempotent
  EXPECT_EQ(e.sharer_count(), 1u);
}

TEST(Directory, OnlySharerIs) {
  DirEntry e;
  e.add_sharer(4);
  EXPECT_TRUE(e.only_sharer_is(4));
  EXPECT_FALSE(e.only_sharer_is(3));
  e.add_sharer(9);
  EXPECT_FALSE(e.only_sharer_is(4));
  e.remove_sharer(9);
  EXPECT_TRUE(e.only_sharer_is(4));
}

TEST(Directory, AllThirtyTwoSharers) {
  DirEntry e;
  for (NodeId i = 0; i < 32; ++i) e.add_sharer(i);
  EXPECT_EQ(e.sharer_count(), 32u);
  for (NodeId i = 0; i < 32; ++i) EXPECT_TRUE(e.has_sharer(i));
}

} // namespace
