// TAS / TTAS-with-backoff lock correctness and traffic signatures.
#include "ccsim.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <tuple>

namespace {

using namespace ccsim;
using harness::Machine;
using harness::MachineConfig;
using proto::Protocol;

enum class Kind { Tas, Ttas };

std::unique_ptr<sync::Lock> make_lock(Machine& m, Kind k) {
  if (k == Kind::Tas) return std::make_unique<sync::TasLock>(m);
  return std::make_unique<sync::TtasLock>(m);
}

using Combo = std::tuple<Protocol, Kind, unsigned>;

std::string combo_name(const ::testing::TestParamInfo<Combo>& info) {
  return std::string(proto::to_string(std::get<0>(info.param))) +
         (std::get<1>(info.param) == Kind::Tas ? "_tas_" : "_ttas_") +
         std::to_string(std::get<2>(info.param));
}

class SimpleLock : public ::testing::TestWithParam<Combo> {};

INSTANTIATE_TEST_SUITE_P(
    Sweep, SimpleLock,
    ::testing::Combine(::testing::Values(Protocol::WI, Protocol::PU, Protocol::CU),
                       ::testing::Values(Kind::Tas, Kind::Ttas),
                       ::testing::Values(1u, 2u, 4u, 8u)),
    combo_name);

TEST_P(SimpleLock, MutualExclusion) {
  const auto& [p, k, n] = GetParam();
  MachineConfig cfg;
  cfg.protocol = p;
  cfg.nprocs = n;
  Machine m(cfg);
  auto lock = make_lock(m, k);
  int in_cs = 0, max_in = 0;
  m.run_all([&](cpu::Cpu& c) -> sim::Task {
    for (int i = 0; i < 20; ++i) {
      co_await lock->acquire(c);
      max_in = std::max(max_in, ++in_cs);
      co_await c.think(15);
      --in_cs;
      co_await lock->release(c);
    }
  });
  EXPECT_EQ(max_in, 1);
}

TEST_P(SimpleLock, CriticalSectionWritesVisible) {
  const auto& [p, k, n] = GetParam();
  MachineConfig cfg;
  cfg.protocol = p;
  cfg.nprocs = n;
  Machine m(cfg);
  auto lock = make_lock(m, k);
  const Addr ctr = m.alloc().allocate_on(0, 8);
  m.run_all([&](cpu::Cpu& c) -> sim::Task {
    for (int i = 0; i < 15; ++i) {
      co_await lock->acquire(c);
      const std::uint64_t v = co_await c.load(ctr);
      co_await c.store(ctr, v + 1);
      co_await lock->release(c);
    }
  });
  EXPECT_EQ(m.peek(ctr), 15u * n);
}

TEST_P(SimpleLock, LockWordFreeAtEnd) {
  const auto& [p, k, n] = GetParam();
  MachineConfig cfg;
  cfg.protocol = p;
  cfg.nprocs = n;
  Machine m(cfg);
  auto lock = make_lock(m, k);
  const Addr la = (k == Kind::Tas)
                      ? static_cast<sync::TasLock*>(lock.get())->lock_addr()
                      : static_cast<sync::TtasLock*>(lock.get())->lock_addr();
  m.run_all([&](cpu::Cpu& c) -> sim::Task {
    for (int i = 0; i < 10; ++i) {
      co_await lock->acquire(c);
      co_await lock->release(c);
    }
  });
  EXPECT_EQ(m.peek(la), 0u);
}

TEST(SimpleLock, TtasGeneratesFewerAtomicsThanTasUnderContention) {
  // The whole point of test-and-test&set: failed attempts spin in the
  // cache instead of hammering the lock word with atomics.
  const auto atomics = [&](bool ttas) {
    MachineConfig cfg;
    cfg.protocol = Protocol::WI;
    cfg.nprocs = 8;
    Machine m(cfg);
    std::unique_ptr<sync::Lock> lock;
    if (ttas)
      lock = std::make_unique<sync::TtasLock>(m);
    else
      lock = std::make_unique<sync::TasLock>(m, 0, sync::BackoffParams{1, 4});
    m.run_all([&](cpu::Cpu& c) -> sim::Task {
      for (int i = 0; i < 25; ++i) {
        co_await lock->acquire(c);
        co_await c.think(40);
        co_await lock->release(c);
      }
    });
    return m.counters().mem.atomics;
  };
  EXPECT_LT(atomics(true), atomics(false));
}

TEST(SimpleLock, BackoffBoundsRespected) {
  // With a huge initial backoff, an uncontended acquire must still be
  // immediate (backoff only applies after a failed attempt).
  MachineConfig cfg;
  cfg.protocol = Protocol::WI;
  cfg.nprocs = 1;
  Machine m(cfg);
  sync::TasLock lock(m, 0, sync::BackoffParams{100000, 200000});
  const Cycle t = m.run_all([&](cpu::Cpu& c) -> sim::Task {
    co_await lock.acquire(c);
    co_await lock.release(c);
  });
  EXPECT_LT(t, 1000u);
}

} // namespace
