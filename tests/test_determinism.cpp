// Determinism: identical configuration => identical cycle counts and
// traffic, across every protocol and construct. This is the invariant that
// makes the figure benches reproducible.
#include "ccsim.hpp"

#include <gtest/gtest.h>

namespace {

using namespace ccsim;
using harness::BarrierKind;
using harness::LockKind;
using harness::MachineConfig;
using harness::ReductionKind;
using proto::Protocol;

MachineConfig cfg_of(Protocol p, unsigned n) {
  MachineConfig c;
  c.protocol = p;
  c.nprocs = n;
  return c;
}

void expect_equal(const harness::RunResult& a, const harness::RunResult& b,
                  const char* what) {
  EXPECT_EQ(a.cycles, b.cycles) << what;
  EXPECT_EQ(a.counters.misses.by, b.counters.misses.by) << what;
  EXPECT_EQ(a.counters.updates.by, b.counters.updates.by) << what;
  EXPECT_EQ(a.counters.net.messages, b.counters.net.messages) << what;
  EXPECT_EQ(a.counters.net.flits, b.counters.net.flits) << what;
}

TEST(Determinism, LockExperimentsAreBitExact) {
  for (Protocol p : {Protocol::WI, Protocol::PU, Protocol::CU}) {
    for (LockKind k : {LockKind::Ticket, LockKind::Mcs, LockKind::UcMcs}) {
      const harness::LockParams params{.total_acquires = 200};
      const auto a = harness::run_lock_experiment(cfg_of(p, 8), k, params);
      const auto b = harness::run_lock_experiment(cfg_of(p, 8), k, params);
      expect_equal(a, b, to_string(k).data());
    }
  }
}

TEST(Determinism, BarrierExperimentsAreBitExact) {
  for (Protocol p : {Protocol::WI, Protocol::PU, Protocol::CU}) {
    for (BarrierKind k :
         {BarrierKind::Central, BarrierKind::Dissemination, BarrierKind::Tree}) {
      const harness::BarrierParams params{.episodes = 60};
      const auto a = harness::run_barrier_experiment(cfg_of(p, 8), k, params);
      const auto b = harness::run_barrier_experiment(cfg_of(p, 8), k, params);
      expect_equal(a, b, to_string(k).data());
    }
  }
}

TEST(Determinism, ReductionExperimentsAreBitExact) {
  for (Protocol p : {Protocol::WI, Protocol::PU, Protocol::CU}) {
    for (ReductionKind k : {ReductionKind::Parallel, ReductionKind::Sequential}) {
      const harness::ReductionParams params{.rounds = 40};
      const auto a = harness::run_reduction_experiment(cfg_of(p, 8), k, params);
      const auto b = harness::run_reduction_experiment(cfg_of(p, 8), k, params);
      expect_equal(a, b, to_string(k).data());
    }
  }
}

TEST(Determinism, SeedChangesChangeVariantTiming) {
  harness::LockParams a{.total_acquires = 200};
  a.random_pause_max = 300;
  a.seed = 1;
  harness::LockParams b = a;
  b.seed = 2;
  const auto ra = harness::run_lock_experiment(cfg_of(Protocol::WI, 8),
                                               LockKind::Ticket, a);
  const auto rb = harness::run_lock_experiment(cfg_of(Protocol::WI, 8),
                                               LockKind::Ticket, b);
  EXPECT_NE(ra.cycles, rb.cycles) << "different seeds should perturb timing";
}

} // namespace
