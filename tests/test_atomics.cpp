// Atomic-instruction semantics across protocols: fetch_and_add,
// fetch_and_store, compare_and_swap; serialization under contention; the
// WI cache-side vs update home-side execution split.
#include "ccsim.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace {

using namespace ccsim;
using harness::Machine;
using harness::MachineConfig;
using proto::Protocol;

class Atomics : public ::testing::TestWithParam<Protocol> {
protected:
  MachineConfig cfg(unsigned n) {
    MachineConfig c;
    c.protocol = GetParam();
    c.nprocs = n;
    return c;
  }
};

INSTANTIATE_TEST_SUITE_P(AllProtocols, Atomics,
                         ::testing::Values(Protocol::WI, Protocol::PU, Protocol::CU),
                         [](const auto& info) {
                           return std::string(proto::to_string(info.param));
                         });

TEST_P(Atomics, FetchAddReturnsOldAndAccumulates) {
  Machine m(cfg(4));
  const Addr a = m.alloc().allocate_on(0, 8);
  m.poke(a, 100);
  std::vector<std::uint64_t> olds;
  m.run_all([&](cpu::Cpu& c) -> sim::Task {
    olds.push_back(co_await c.fetch_add(a, 10));
  });
  EXPECT_EQ(m.peek(a), 140u);
  std::sort(olds.begin(), olds.end());
  EXPECT_EQ(olds, (std::vector<std::uint64_t>{100, 110, 120, 130}));
}

TEST_P(Atomics, FetchAddWithNegativeDelta) {
  Machine m(cfg(1));
  const Addr a = m.alloc().allocate_on(0, 8);
  m.poke(a, 5);
  m.run_all([&](cpu::Cpu& c) -> sim::Task {
    EXPECT_EQ(co_await c.fetch_add(a, static_cast<std::uint64_t>(-1)), 5u);
  });
  EXPECT_EQ(m.peek(a), 4u);
}

TEST_P(Atomics, FetchStoreSwaps) {
  Machine m(cfg(2));
  const Addr a = m.alloc().allocate_on(0, 8);
  std::vector<std::uint64_t> olds;
  m.run_all([&](cpu::Cpu& c) -> sim::Task {
    olds.push_back(co_await c.fetch_store(a, c.id() + 1));
  });
  // One proc got 0 (initial), the other got the first proc's value, and
  // the final memory value is whichever swapped last.
  std::sort(olds.begin(), olds.end());
  EXPECT_EQ(olds[0], 0u);
  const std::uint64_t last = m.peek(a);
  EXPECT_TRUE(last == 1u || last == 2u);
  EXPECT_EQ(olds[1], last == 1u ? 2u : 1u);
}

TEST_P(Atomics, CompareSwapSucceedsExactlyOnce) {
  Machine m(cfg(8));
  const Addr a = m.alloc().allocate_on(0, 8);
  int winners = 0;
  m.run_all([&](cpu::Cpu& c) -> sim::Task {
    const std::uint64_t old = co_await c.compare_swap(a, 0, c.id() + 1);
    if (old == 0) ++winners;
  });
  EXPECT_EQ(winners, 1);
  EXPECT_NE(m.peek(a), 0u);
}

TEST_P(Atomics, FailedCompareSwapWritesNothing) {
  Machine m(cfg(1));
  const Addr a = m.alloc().allocate_on(0, 8);
  m.poke(a, 42);
  m.run_all([&](cpu::Cpu& c) -> sim::Task {
    EXPECT_EQ(co_await c.compare_swap(a, 7, 99), 42u);
  });
  EXPECT_EQ(m.peek(a), 42u);
}

TEST_P(Atomics, AtomicsForceWriteBufferFlush) {
  Machine m(cfg(2));
  const Addr data = m.alloc().allocate_on(1, 8);
  const Addr ctr = m.alloc().allocate_on(1, 8);
  // The store is in the write buffer when the atomic issues; the atomic
  // must flush it first, so after the atomic the store is globally
  // performed.
  m.run({[&](cpu::Cpu& c) -> sim::Task {
    co_await c.store(data, 5);
    (void)co_await c.fetch_add(ctr, 1);
    EXPECT_EQ(m.peek(data), 5u);
  }});
}

TEST_P(Atomics, HighContentionCounter) {
  Machine m(cfg(8));
  const Addr a = m.alloc().allocate_on(3, 8);
  m.run_all([&](cpu::Cpu& c) -> sim::Task {
    for (int i = 0; i < 50; ++i) (void)co_await c.fetch_add(a, 1);
  });
  EXPECT_EQ(m.peek(a), 400u);
}

TEST(AtomicsPlacement, WiExecutesInCacheUpdateExecutesAtHome) {
  // Under WI, repeated atomics by one processor hit its Modified copy:
  // after the first, no more network traffic. Under PU, every atomic goes
  // to the home memory.
  const Addr probe = 0;
  (void)probe;
  MachineConfig wi;
  wi.protocol = Protocol::WI;
  wi.nprocs = 2;
  Machine mw(wi);
  const Addr aw = mw.alloc().allocate_on(1, 8);
  mw.run({[&](cpu::Cpu& c) -> sim::Task {
    for (int i = 0; i < 100; ++i) (void)co_await c.fetch_add(aw, 1);
  }});
  const auto wi_msgs = mw.counters().net.messages;

  MachineConfig pu;
  pu.protocol = Protocol::PU;
  pu.nprocs = 2;
  Machine mp(pu);
  const Addr ap = mp.alloc().allocate_on(1, 8);
  mp.run({[&](cpu::Cpu& c) -> sim::Task {
    for (int i = 0; i < 100; ++i) (void)co_await c.fetch_add(ap, 1);
  }});
  const auto pu_msgs = mp.counters().net.messages;

  EXPECT_LT(wi_msgs, 10u) << "WI: one GetX, then local atomics";
  EXPECT_GE(pu_msgs, 200u) << "PU: AtomicReq + AtomicReply per operation";
}

} // namespace
