// Unit tests for the deterministic RNG.
#include "sim/rng.hpp"

#include <gtest/gtest.h>

#include <set>

namespace {

using ccsim::sim::Rng;

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Rng, BelowStaysInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, BetweenInclusive) {
  Rng r(7);
  bool lo = false, hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = r.between(3, 5);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 5u);
    lo |= v == 3;
    hi |= v == 5;
  }
  EXPECT_TRUE(lo);
  EXPECT_TRUE(hi);
}

TEST(Rng, DerivedStreamsAreIndependent) {
  std::set<std::uint64_t> seeds;
  for (std::uint64_t s = 0; s < 64; ++s) seeds.insert(Rng::derive(123, s));
  EXPECT_EQ(seeds.size(), 64u) << "derived stream seeds must not collide";
}

TEST(Rng, RoughUniformity) {
  Rng r(99);
  int buckets[8] = {};
  for (int i = 0; i < 8000; ++i) ++buckets[r.below(8)];
  for (int i = 0; i < 8; ++i) {
    EXPECT_GT(buckets[i], 800);
    EXPECT_LT(buckets[i], 1200);
  }
}

} // namespace
