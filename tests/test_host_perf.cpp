// Host-performance telemetry tests: collector accounting, deterministic
// queue-depth sampling, the Machine-level report, JSON emission, and --
// the load-bearing guarantee -- zero guest impact: simulated results are
// identical with host metrics on or off.
#include "harness/obs_session.hpp"
#include "harness/workloads.hpp"
#include "obs/host_perf.hpp"
#include "stats/json.hpp"
#include "stats/report.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <thread>

namespace {

using namespace ccsim;

TEST(HostPerfCollector, RejectsZeroSampleInterval) {
  EXPECT_THROW(obs::HostPerfCollector c(0), std::invalid_argument);
}

TEST(HostPerfCollector, AttributionConservesHostTime) {
  obs::HostPerfCollector c(1024);
  c.run_begin();
  {
    obs::ScopedHostCat p(&c, obs::HostCat::Protocol);
    { obs::ScopedHostCat n(&c, obs::HostCat::Network); }
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  c.run_end();
  const obs::HostPerfReport r = c.report();
  EXPECT_TRUE(r.enabled());
  std::uint64_t sum = 0;
  for (std::uint64_t ns : r.ns_by) sum += ns;
  EXPECT_EQ(sum, r.host_ns) << "exclusive scopes must conserve host_ns";
  EXPECT_GT(r.host_ns, 0u);
  // The sleep happened outside any scope: the base category got it.
  EXPECT_GT(r.ns_by[static_cast<std::size_t>(obs::HostCat::EventLoop)], 0u);
}

TEST(HostPerfCollector, NullCollectorScopesAreNoOps) {
  // The call-site convention: sites pass a possibly-null pointer.
  obs::ScopedHostCat s(nullptr, obs::HostCat::Protocol);
}

TEST(HostPerfCollector, QueueSamplingIsDeterministicInSimTime) {
  // Samples are cut at simulated-cycle boundaries, so two collectors fed
  // the same (cycle, depth) series produce identical histograms even
  // though their host-time readings differ.
  auto feed = [](obs::HostPerfCollector& c) {
    c.run_begin();
    c.before_event(10, 3);     // before the first boundary: no sample
    c.before_event(1100, 5);   // crosses 1024: one sample of depth 5
    c.before_event(1500, 9);   // still inside [1024, 2048): no sample
    c.before_event(4200, 2);   // crosses 2048, 3072, 4096: three samples
    c.run_end();
    return c.report();
  };
  obs::HostPerfCollector a(1024), b(1024);
  const obs::HostPerfReport ra = feed(a), rb = feed(b);
  EXPECT_EQ(ra.queue_depth.count(), 4u);
  EXPECT_EQ(ra.queue_peak, 9u);
  EXPECT_EQ(ra.queue_sample_interval, 1024u);
  EXPECT_EQ(ra.queue_depth.count(), rb.queue_depth.count());
  EXPECT_EQ(ra.queue_depth.min(), rb.queue_depth.min());
  EXPECT_EQ(ra.queue_depth.max(), rb.queue_depth.max());
  EXPECT_EQ(ra.queue_peak, rb.queue_peak);
}

TEST(HostPerfReport, MergeAddsCountersAndMaxesPeak) {
  obs::HostPerfReport a;
  a.on = true;
  a.host_ns = 1000;
  a.sim_cycles = 500;
  a.events_executed = 10;
  a.messages = 3;
  a.queue_peak = 7;
  obs::HostPerfReport b;
  b.on = true;
  b.host_ns = 2000;
  b.sim_cycles = 700;
  b.events_executed = 20;
  b.messages = 4;
  b.queue_peak = 5;
  a.merge(b);
  EXPECT_EQ(a.host_ns, 3000u);
  EXPECT_EQ(a.sim_cycles, 1200u);
  EXPECT_EQ(a.events_executed, 30u);
  EXPECT_EQ(a.messages, 7u);
  EXPECT_EQ(a.queue_peak, 7u);
}

harness::RunResult tiny_lock_run(bool host_metrics) {
  harness::MachineConfig cfg;
  cfg.nprocs = 4;
  cfg.obs.host_metrics = host_metrics;
  harness::LockParams p;
  p.total_acquires = 64;
  return harness::run_lock_experiment(cfg, harness::LockKind::Ticket, p);
}

TEST(HostPerfMachine, RealRunProducesAFullReport) {
  const harness::RunResult r = tiny_lock_run(true);
  const obs::HostPerfReport& h = r.host;
  ASSERT_TRUE(h.enabled());
  EXPECT_GT(h.host_ns, 0u);
  EXPECT_GT(h.sim_cycles, 0u);
  EXPECT_GT(h.events_executed, 0u);
  EXPECT_GE(h.events_scheduled, h.events_executed);
  EXPECT_GT(h.cycles_per_sec(), 0.0);
  EXPECT_GT(h.events_per_sec(), 0.0);
  EXPECT_GT(h.messages, 0u) << "a 4-proc lock loop sends protocol messages";
  EXPECT_GT(h.frames, 0u) << "every program is at least one coroutine frame";
  EXPECT_GT(h.queue_depth.count(), 0u);
  EXPECT_GT(h.queue_peak, 0u);
  // Protocol handlers and the network must both have been attributed.
  EXPECT_GT(h.ns_by[static_cast<std::size_t>(obs::HostCat::Protocol)], 0u);
  EXPECT_GT(h.ns_by[static_cast<std::size_t>(obs::HostCat::Network)], 0u);
  // Shares sum to 1 (host_ns conservation, fraction form).
  double shares = 0.0;
  for (std::size_t i = 0; i < obs::kHostCats; ++i)
    shares += h.share(static_cast<obs::HostCat>(i));
  EXPECT_NEAR(shares, 1.0, 1e-9);
}

TEST(HostPerfMachine, HostMetricsNeverPerturbSimulatedResults) {
  // The no-guest-perturbation rule, end to end: identical simulated
  // cycles, latency metric and categorized counters with the collector
  // attached or absent.
  const harness::RunResult off = tiny_lock_run(false);
  const harness::RunResult on = tiny_lock_run(true);
  EXPECT_FALSE(off.host.enabled());
  ASSERT_TRUE(on.host.enabled());
  EXPECT_EQ(off.cycles, on.cycles);
  EXPECT_DOUBLE_EQ(off.avg_latency, on.avg_latency);
  EXPECT_EQ(stats::to_json(off.counters), stats::to_json(on.counters));
}

TEST(HostPerfMachine, ReportMatchesGuestCounters) {
  const harness::RunResult r = tiny_lock_run(true);
  EXPECT_EQ(r.host.sim_cycles, r.cycles);
  EXPECT_EQ(r.host.messages, r.counters.net.messages + r.counters.net.local);
}

TEST(HostPerfJson, RunFieldsEmitHostSectionOnlyWhenEnabled) {
  const harness::RunResult off = tiny_lock_run(false);
  std::ostringstream a;
  {
    stats::JsonWriter w(a);
    w.begin_object();
    harness::write_run_fields(w, off);
    w.end_object();
  }
  EXPECT_EQ(a.str().find("\"host\""), std::string::npos);

  const harness::RunResult on = tiny_lock_run(true);
  std::ostringstream b;
  {
    stats::JsonWriter w(b);
    w.begin_object();
    harness::write_run_fields(w, on);
    w.end_object();
  }
  const stats::JsonValue doc = stats::parse_json(b.str());
  const stats::JsonValue& host = doc.at("host");
  EXPECT_EQ(host.at("schema").integer, obs::HostPerfReport::kSchema);
  EXPECT_GT(host.at("ms").number, 0.0);
  EXPECT_GT(host.at("cycles_per_sec").number, 0.0);
  EXPECT_GT(host.at("events_per_sec").number, 0.0);
  EXPECT_GT(host.at("queue").at("peak").integer, 0u);
  EXPECT_GT(host.at("alloc").at("messages").integer, 0u);
  EXPECT_GT(host.at("alloc").at("frames").integer, 0u);
  const stats::JsonValue& sub = host.at("subsystems");
  std::uint64_t sum = 0;
  for (const auto& [k, v] : sub.object) sum += v.integer;
  std::uint64_t ns = 0;
  for (std::uint64_t x : on.host.ns_by) ns += x;
  EXPECT_EQ(sum, ns) << "serialized subsystem ns must conserve host_ns";
}

TEST(HostPerfJson, StrippingHostSectionRestoresByteIdentity) {
  // The byte-identity contract: the ONLY difference between a document
  // written with host metrics and one without is the opt-in "host"
  // object; everything simulated serializes identically.
  const harness::RunResult off = tiny_lock_run(false);
  const harness::RunResult on = tiny_lock_run(true);
  harness::RunResult stripped = on;
  stripped.host = obs::HostPerfReport{};
  std::ostringstream a, b;
  {
    stats::JsonWriter w(a);
    w.begin_object();
    harness::write_run_fields(w, off);
    w.end_object();
  }
  {
    stats::JsonWriter w(b);
    w.begin_object();
    harness::write_run_fields(w, stripped);
    w.end_object();
  }
  EXPECT_EQ(a.str(), b.str());
}

TEST(HostPerfReport, PrintHostIsNoOpWhenDisabled) {
  std::ostringstream os;
  stats::print_host(os, obs::HostPerfReport{});
  EXPECT_TRUE(os.str().empty());
  const harness::RunResult r = tiny_lock_run(true);
  stats::print_host(os, r.host);
  EXPECT_NE(os.str().find("Mcyc/s"), std::string::npos);
  EXPECT_NE(os.str().find("queue depth"), std::string::npos);
}

} // namespace
