// JSON metrics export: writer primitives, the golden counters document
// (stable insertion-order keys -- scripts depend on the schema), and the
// delta/accumulate pair the interval sampler is built on.
#include "ccsim.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace {

using namespace ccsim;

TEST(JsonWriter, NestingAndCommas) {
  std::ostringstream os;
  stats::JsonWriter w(os);
  w.begin_object();
  w.key("a").value(std::uint64_t{1});
  w.key("b").begin_array();
  w.value(std::uint64_t{2}).value(std::uint64_t{3});
  w.begin_object().key("c").value(true).end_object();
  w.end_array();
  w.key("d").value("x");
  w.end_object();
  EXPECT_EQ(os.str(), R"({"a":1,"b":[2,3,{"c":true}],"d":"x"})");
}

TEST(JsonWriter, EscapesStrings) {
  std::ostringstream os;
  stats::JsonWriter w(os);
  w.begin_object();
  w.key("s").value("a\"b\\c\nd");
  w.end_object();
  EXPECT_EQ(os.str(), "{\"s\":\"a\\\"b\\\\c\\nd\"}");
}

TEST(JsonEscape, NamedControlCharacters) {
  EXPECT_EQ(stats::json_escape("a\nb"), "a\\nb");
  EXPECT_EQ(stats::json_escape("a\rb"), "a\\rb");
  EXPECT_EQ(stats::json_escape("a\tb"), "a\\tb");
}

TEST(JsonEscape, QuotesAndBackslashes) {
  EXPECT_EQ(stats::json_escape("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(stats::json_escape("C:\\tmp\\x"), "C:\\\\tmp\\\\x");
  // A backslash followed by a letter must not collapse into an escape.
  EXPECT_EQ(stats::json_escape("\\n"), "\\\\n");
}

TEST(JsonEscape, UnnamedControlCharactersUseUnicodeEscapes) {
  // Everything below 0x20 without a short form gets \u00XX -- including
  // NUL, which must not truncate the string.
  EXPECT_EQ(stats::json_escape(std::string_view("\0", 1)), "\\u0000");
  EXPECT_EQ(stats::json_escape("\x01"), "\\u0001");
  EXPECT_EQ(stats::json_escape("\b"), "\\u0008");
  EXPECT_EQ(stats::json_escape("\f"), "\\u000c");
  EXPECT_EQ(stats::json_escape("\x1f"), "\\u001f");
}

TEST(JsonEscape, NonAsciiBytesPassThroughUntouched) {
  // UTF-8 payloads (bytes >= 0x80) are legal inside JSON strings and must
  // not be mangled even where char is signed.
  const std::string utf8 = "caf\xc3\xa9 \xe2\x86\x92 \xf0\x9f\x94\x92";
  EXPECT_EQ(stats::json_escape(utf8), utf8);
}

TEST(JsonEscape, EscapedStringsRoundTripThroughOurParser) {
  const std::string nasty =
      std::string("line1\nli\"ne2\\\t\x01\x1f caf\xc3\xa9") +
      std::string("\0!", 2);
  std::ostringstream os;
  stats::JsonWriter w(os);
  w.begin_object();
  w.key("s").value(nasty);
  w.end_object();
  const stats::JsonValue v = stats::parse_json(os.str());
  EXPECT_EQ(v.at("s").string, nasty);
}

TEST(JsonEscape, KeysAreEscapedLikeValues) {
  std::ostringstream os;
  stats::JsonWriter w(os);
  w.begin_object();
  w.key("we\"ird\nkey").value(std::uint64_t{1});
  w.end_object();
  EXPECT_EQ(os.str(), "{\"we\\\"ird\\nkey\":1}");
  EXPECT_EQ(stats::parse_json(os.str()).at("we\"ird\nkey").integer, 1u);
}

TEST(JsonWriter, RawSplicesVerbatim) {
  std::ostringstream os;
  stats::JsonWriter w(os);
  w.begin_object();
  w.key("inner").raw("{\"x\":1}");
  w.key("after").value(std::uint64_t{2});
  w.end_object();
  EXPECT_EQ(os.str(), R"({"inner":{"x":1},"after":2})");
}

TEST(CountersJson, GoldenDocument) {
  stats::Counters c;
  c.misses[stats::MissClass::Cold] = 3;
  c.misses[stats::MissClass::TrueSharing] = 2;
  c.misses[stats::MissClass::FalseSharing] = 1;
  c.misses.exclusive_requests = 4;
  c.updates[stats::UpdateClass::TrueSharing] = 5;
  c.updates[stats::UpdateClass::Termination] = 1;
  c.net.messages = 7;
  c.net.flits = 21;
  c.net.hops = 14;
  c.net.local = 2;
  c.mem.shared_reads = 8;
  c.mem.shared_writes = 9;
  c.mem.read_hits = 6;
  c.mem.write_hits = 5;
  c.mem.atomics = 2;
  c.mem.write_buffer_stalls = 1;
  c.mem.fence_stall_cycles = 30;

  const std::string expected =
      R"({"misses":{"by":{"cold":3,"true":2,"false":1,"evict":0,"drop":0},)"
      R"("exclusive_requests":4,"total":6,"useful":5},)"
      R"("updates":{"by":{"useful":5,"false":0,"prolif":0,"repl":0,"end":1,"drop":0},)"
      R"("total":6,"useful":5},)"
      R"("net":{"messages":7,"flits":21,"hops":14,"local":2,"by_type":{}},)"
      R"("mem":{"shared_reads":8,"shared_writes":9,"read_hits":6,"write_hits":5,)"
      R"("atomics":2,"write_buffer_stalls":1,"fence_stall_cycles":30}})";
  EXPECT_EQ(stats::to_json(c), expected);
}

TEST(CountersJson, ByTypeListsOnlyNonzero) {
  stats::Counters c;
  c.net.by_type[static_cast<std::size_t>(net::MsgType::GetS)] = 2;
  const std::string j = stats::to_json(c);
  EXPECT_NE(j.find("\"by_type\":{\"" +
                   std::string(net::to_string(net::MsgType::GetS)) + "\":2}"),
            std::string::npos)
      << j;
}

TEST(CountersJson, RealRunProducesParseableTotals) {
  harness::MachineConfig cfg;
  cfg.nprocs = 4;
  const auto r = harness::run_lock_experiment(cfg, harness::LockKind::Ticket,
                                              {.total_acquires = 400});
  const std::string j = stats::to_json(r.counters);
  // Spot-check that the totals embedded in the document match the counters.
  EXPECT_NE(j.find("\"messages\":" + std::to_string(r.counters.net.messages)),
            std::string::npos);
  EXPECT_NE(j.find("\"total\":" + std::to_string(r.counters.misses.total())),
            std::string::npos);
}

TEST(HistogramJson, EmitsSummaryAndBuckets) {
  stats::LatencyHistogram h;
  h.add(3);
  h.add(3);
  h.add(100);
  std::ostringstream os;
  stats::JsonWriter w(os);
  stats::histogram_to_json(w, h);
  const stats::JsonValue v = stats::parse_json(os.str());
  EXPECT_EQ(v.at("n").integer, 3u);
  EXPECT_EQ(v.at("min").integer, 3u);
  EXPECT_EQ(v.at("max").integer, 100u);
  ASSERT_EQ(v.at("buckets").array.size(), 2u);
  const stats::JsonValue& b0 = v.at("buckets").array[0];
  EXPECT_EQ(b0.at("lo").integer, 3u);
  EXPECT_EQ(b0.at("hi").integer, 3u);
  EXPECT_EQ(b0.at("n").integer, 2u);
  // Bucket mass must account for every sample.
  std::uint64_t mass = 0;
  for (const auto& b : v.at("buckets").array) mass += b.at("n").integer;
  EXPECT_EQ(mass, h.count());
}

TEST(JsonReader, ParsesScalarsArraysObjects) {
  const stats::JsonValue v = stats::parse_json(
      R"({"i":42,"f":1.5,"neg":-3,"s":"hi\n","b":true,"z":null,"a":[1,[2],{"k":3}]})");
  EXPECT_EQ(v.at("i").integer, 42u);
  EXPECT_TRUE(v.at("i").is_integer);
  EXPECT_DOUBLE_EQ(v.at("f").number, 1.5);
  EXPECT_FALSE(v.at("f").is_integer);
  EXPECT_DOUBLE_EQ(v.at("neg").number, -3.0);
  EXPECT_EQ(v.at("s").string, "hi\n");
  EXPECT_TRUE(v.at("b").boolean);
  EXPECT_EQ(v.at("z").kind, stats::JsonValue::Kind::Null);
  ASSERT_EQ(v.at("a").array.size(), 3u);
  EXPECT_EQ(v.at("a").array[1].array[0].integer, 2u);
  EXPECT_EQ(v.at("a").array[2].at("k").integer, 3u);
  EXPECT_EQ(v.find("nope"), nullptr);
  EXPECT_THROW((void)v.at("nope"), std::runtime_error);
}

TEST(JsonReader, ExactLargeIntegers) {
  // uint64 values beyond the double mantissa must survive exactly (cycle
  // counts in trajectory documents can exceed 2^53).
  const stats::JsonValue v = stats::parse_json(R"({"c":18446744073709551615})");
  EXPECT_TRUE(v.at("c").is_integer);
  EXPECT_EQ(v.at("c").integer, 18446744073709551615ull);
}

TEST(JsonReader, RejectsMalformedInput) {
  EXPECT_THROW((void)stats::parse_json("{"), std::runtime_error);
  EXPECT_THROW((void)stats::parse_json("[1,]"), std::runtime_error);
  EXPECT_THROW((void)stats::parse_json("{\"a\":1} extra"), std::runtime_error);
  EXPECT_THROW((void)stats::parse_json("\"unterminated"), std::runtime_error);
  EXPECT_THROW((void)stats::parse_json(""), std::runtime_error);
}

TEST(JsonReader, RoundTripsWriterOutput) {
  stats::Counters c;
  c.misses[stats::MissClass::Cold] = 3;
  c.net.messages = 7;
  const stats::JsonValue v = stats::parse_json(stats::to_json(c));
  EXPECT_EQ(v.at("misses").at("by").at("cold").integer, 3u);
  EXPECT_EQ(v.at("net").at("messages").integer, 7u);
}

TEST(JsonReader, UnicodeEscapesDecode) {
  // \uXXXX escapes: ASCII, the control range our writer emits, and
  // non-ASCII code points rendered as UTF-8.
  const stats::JsonValue v = stats::parse_json(
      R"({"s":"a\u0041\u000a\u001fb","e":"caf\u00e9","cjk":"\u4e2d"})");
  EXPECT_EQ(v.at("s").string, std::string("aA\n\x1f") + "b");
  EXPECT_EQ(v.at("e").string, "caf\xc3\xa9");
  EXPECT_EQ(v.at("cjk").string, "\xe4\xb8\xad");
  EXPECT_THROW((void)stats::parse_json(R"({"s":"\u12"})"), std::runtime_error);
  EXPECT_THROW((void)stats::parse_json(R"({"s":"\uzzzz"})"), std::runtime_error);
}

TEST(JsonReader, NestedContainersRoundTripThroughWriter) {
  // Writer -> reader round trip of a deeply nested document: arrays of
  // objects of arrays, mixed scalar kinds, and awkward strings in both
  // keys and values (quotes, backslashes, newlines, NUL).
  std::ostringstream os;
  {
    stats::JsonWriter w(os);
    w.begin_object();
    w.key("matrix").begin_array();
    for (int i = 0; i < 3; ++i) {
      w.begin_array();
      for (int j = 0; j < 3; ++j) w.value(static_cast<std::uint64_t>(i * 3 + j));
      w.end_array();
    }
    w.end_array();
    w.key("cells").begin_array();
    w.begin_object()
        .key("name")
        .value("a\"b\\c")
        .key("deep")
        .begin_object()
        .key("vals")
        .begin_array()
        .value(1.25)
        .value(true)
        .value(std::uint64_t{18446744073709551615ull})
        .end_array()
        .end_object()
        .end_object();
    w.end_array();
    w.key("line\nbreak").value(std::string_view("nul\0byte", 8));
    w.end_object();
  }
  const stats::JsonValue v = stats::parse_json(os.str());
  ASSERT_EQ(v.at("matrix").array.size(), 3u);
  EXPECT_EQ(v.at("matrix").array[2].array[1].integer, 7u);
  const stats::JsonValue& cell = v.at("cells").array[0];
  EXPECT_EQ(cell.at("name").string, "a\"b\\c");
  const stats::JsonValue& vals = cell.at("deep").at("vals");
  ASSERT_EQ(vals.array.size(), 3u);
  EXPECT_DOUBLE_EQ(vals.array[0].number, 1.25);
  EXPECT_TRUE(vals.array[1].boolean);
  EXPECT_EQ(vals.array[2].integer, 18446744073709551615ull);
  EXPECT_EQ(v.at("line\nbreak").string, std::string("nul\0byte", 8));

  // Parsing what the writer wrote and re-writing the scalars must not
  // have lost anything: spot-check by re-parsing a second time.
  const stats::JsonValue again = stats::parse_json(os.str());
  EXPECT_EQ(again.at("matrix").array[0].array[0].integer,
            v.at("matrix").array[0].array[0].integer);
}

TEST(CountersDelta, DeltaAndAccumulateAreInverse) {
  harness::MachineConfig cfg;
  cfg.nprocs = 4;
  cfg.protocol = proto::Protocol::PU;
  const auto a = harness::run_lock_experiment(cfg, harness::LockKind::Mcs,
                                              {.total_acquires = 200});
  const auto b = harness::run_lock_experiment(cfg, harness::LockKind::Mcs,
                                              {.total_acquires = 400});
  const stats::Counters d = stats::delta(b.counters, a.counters);
  stats::Counters sum = a.counters;
  stats::accumulate(sum, d);
  EXPECT_EQ(stats::to_json(sum), stats::to_json(b.counters));
}

} // namespace
