// JSON metrics export: writer primitives, the golden counters document
// (stable insertion-order keys -- scripts depend on the schema), and the
// delta/accumulate pair the interval sampler is built on.
#include "ccsim.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace {

using namespace ccsim;

TEST(JsonWriter, NestingAndCommas) {
  std::ostringstream os;
  stats::JsonWriter w(os);
  w.begin_object();
  w.key("a").value(std::uint64_t{1});
  w.key("b").begin_array();
  w.value(std::uint64_t{2}).value(std::uint64_t{3});
  w.begin_object().key("c").value(true).end_object();
  w.end_array();
  w.key("d").value("x");
  w.end_object();
  EXPECT_EQ(os.str(), R"({"a":1,"b":[2,3,{"c":true}],"d":"x"})");
}

TEST(JsonWriter, EscapesStrings) {
  std::ostringstream os;
  stats::JsonWriter w(os);
  w.begin_object();
  w.key("s").value("a\"b\\c\nd");
  w.end_object();
  EXPECT_EQ(os.str(), "{\"s\":\"a\\\"b\\\\c\\nd\"}");
}

TEST(JsonWriter, RawSplicesVerbatim) {
  std::ostringstream os;
  stats::JsonWriter w(os);
  w.begin_object();
  w.key("inner").raw("{\"x\":1}");
  w.key("after").value(std::uint64_t{2});
  w.end_object();
  EXPECT_EQ(os.str(), R"({"inner":{"x":1},"after":2})");
}

TEST(CountersJson, GoldenDocument) {
  stats::Counters c;
  c.misses[stats::MissClass::Cold] = 3;
  c.misses[stats::MissClass::TrueSharing] = 2;
  c.misses[stats::MissClass::FalseSharing] = 1;
  c.misses.exclusive_requests = 4;
  c.updates[stats::UpdateClass::TrueSharing] = 5;
  c.updates[stats::UpdateClass::Termination] = 1;
  c.net.messages = 7;
  c.net.flits = 21;
  c.net.hops = 14;
  c.net.local = 2;
  c.mem.shared_reads = 8;
  c.mem.shared_writes = 9;
  c.mem.read_hits = 6;
  c.mem.write_hits = 5;
  c.mem.atomics = 2;
  c.mem.write_buffer_stalls = 1;
  c.mem.fence_stall_cycles = 30;

  const std::string expected =
      R"({"misses":{"by":{"cold":3,"true":2,"false":1,"evict":0,"drop":0},)"
      R"("exclusive_requests":4,"total":6,"useful":5},)"
      R"("updates":{"by":{"useful":5,"false":0,"prolif":0,"repl":0,"end":1,"drop":0},)"
      R"("total":6,"useful":5},)"
      R"("net":{"messages":7,"flits":21,"hops":14,"local":2,"by_type":{}},)"
      R"("mem":{"shared_reads":8,"shared_writes":9,"read_hits":6,"write_hits":5,)"
      R"("atomics":2,"write_buffer_stalls":1,"fence_stall_cycles":30}})";
  EXPECT_EQ(stats::to_json(c), expected);
}

TEST(CountersJson, ByTypeListsOnlyNonzero) {
  stats::Counters c;
  c.net.by_type[static_cast<std::size_t>(net::MsgType::GetS)] = 2;
  const std::string j = stats::to_json(c);
  EXPECT_NE(j.find("\"by_type\":{\"" +
                   std::string(net::to_string(net::MsgType::GetS)) + "\":2}"),
            std::string::npos)
      << j;
}

TEST(CountersJson, RealRunProducesParseableTotals) {
  harness::MachineConfig cfg;
  cfg.nprocs = 4;
  const auto r = harness::run_lock_experiment(cfg, harness::LockKind::Ticket,
                                              {.total_acquires = 400});
  const std::string j = stats::to_json(r.counters);
  // Spot-check that the totals embedded in the document match the counters.
  EXPECT_NE(j.find("\"messages\":" + std::to_string(r.counters.net.messages)),
            std::string::npos);
  EXPECT_NE(j.find("\"total\":" + std::to_string(r.counters.misses.total())),
            std::string::npos);
}

TEST(CountersDelta, DeltaAndAccumulateAreInverse) {
  harness::MachineConfig cfg;
  cfg.nprocs = 4;
  cfg.protocol = proto::Protocol::PU;
  const auto a = harness::run_lock_experiment(cfg, harness::LockKind::Mcs,
                                              {.total_acquires = 200});
  const auto b = harness::run_lock_experiment(cfg, harness::LockKind::Mcs,
                                              {.total_acquires = 400});
  const stats::Counters d = stats::delta(b.counters, a.counters);
  stats::Counters sum = a.counters;
  stats::accumulate(sum, d);
  EXPECT_EQ(stats::to_json(sum), stats::to_json(b.counters));
}

} // namespace
