// Application kernels: every kernel's oracle must hold under every
// protocol and several machine sizes and parameterizations.
#include "apps/kernels.hpp"
#include "ccsim.hpp"

#include <gtest/gtest.h>

#include <tuple>

namespace {

using namespace ccsim;
using proto::Protocol;

using Combo = std::tuple<Protocol, unsigned>;

std::string combo_name(const ::testing::TestParamInfo<Combo>& info) {
  return std::string(proto::to_string(std::get<0>(info.param))) + "_" +
         std::to_string(std::get<1>(info.param));
}

class Apps : public ::testing::TestWithParam<Combo> {};

INSTANTIATE_TEST_SUITE_P(
    Sweep, Apps,
    ::testing::Combine(::testing::Values(Protocol::WI, Protocol::PU, Protocol::CU),
                       ::testing::Values(1u, 2u, 4u, 8u)),
    combo_name);

TEST_P(Apps, SorMatchesOracle) {
  const auto& [p, n] = GetParam();
  apps::SorParams params;
  params.sweeps = 12;
  params.cells_per_proc = 10;
  const auto r = apps::run_sor(p, n, params);
  EXPECT_TRUE(r.correct);
  EXPECT_GT(r.cycles, 0u);
}

TEST_P(Apps, SorWithCentralBarrier) {
  const auto& [p, n] = GetParam();
  apps::SorParams params;
  params.sweeps = 8;
  params.cells_per_proc = 6;
  params.barrier = harness::BarrierKind::Central;
  EXPECT_TRUE(apps::run_sor(p, n, params).correct);
}

TEST_P(Apps, HistogramExactCounts) {
  const auto& [p, n] = GetParam();
  apps::HistogramParams params;
  params.items_per_proc = 40;
  const auto r = apps::run_histogram(p, n, params);
  EXPECT_TRUE(r.correct);
}

TEST_P(Apps, HistogramWithMcsLocks) {
  const auto& [p, n] = GetParam();
  apps::HistogramParams params;
  params.items_per_proc = 30;
  params.buckets = 4;  // heavier per-lock contention
  params.lock = harness::LockKind::Mcs;
  EXPECT_TRUE(apps::run_histogram(p, n, params).correct);
}

TEST_P(Apps, NbodyParallelReduction) {
  const auto& [p, n] = GetParam();
  apps::NbodyParams params;
  params.steps = 10;
  params.parallel_reduction = true;
  EXPECT_TRUE(apps::run_nbody_step(p, n, params).correct);
}

TEST_P(Apps, NbodySequentialReduction) {
  const auto& [p, n] = GetParam();
  apps::NbodyParams params;
  params.steps = 10;
  params.parallel_reduction = false;
  EXPECT_TRUE(apps::run_nbody_step(p, n, params).correct);
}

TEST_P(Apps, PipelineChecksum) {
  const auto& [p, n] = GetParam();
  apps::PipelineParams params;
  params.items = 60;
  const auto r = apps::run_pipeline(p, n, params);
  EXPECT_TRUE(r.correct);
}

TEST_P(Apps, PipelineTinyQueues) {
  const auto& [p, n] = GetParam();
  apps::PipelineParams params;
  params.items = 40;
  params.queue_slots = 1;  // fully synchronous hand-off
  EXPECT_TRUE(apps::run_pipeline(p, n, params).correct);
}

TEST_P(Apps, MatmulMatchesOracle) {
  const auto& [p, n] = GetParam();
  apps::MatmulParams params;
  params.dim = 8;
  const auto r = apps::run_matmul(p, n, params);
  EXPECT_TRUE(r.correct);
}

TEST_P(Apps, MatmulWithCentralBarrier) {
  const auto& [p, n] = GetParam();
  apps::MatmulParams params;
  params.dim = 6;
  params.barrier = harness::BarrierKind::Central;
  EXPECT_TRUE(apps::run_matmul(p, n, params).correct);
}

TEST(AppsHybrid, KernelsRunOnHybridMachines) {
  // Kernels accept any machine protocol, including Hybrid (all regions on
  // the default domain): oracles must still hold.
  for (Protocol def : {Protocol::WI, Protocol::PU}) {
    (void)def;
  }
  apps::SorParams sor;
  sor.sweeps = 8;
  sor.cells_per_proc = 6;
  EXPECT_TRUE(apps::run_sor(Protocol::Hybrid, 4, sor).correct);
  apps::PipelineParams pipe;
  pipe.items = 30;
  EXPECT_TRUE(apps::run_pipeline(Protocol::Hybrid, 4, pipe).correct);
  apps::MatmulParams mat;
  mat.dim = 6;
  EXPECT_TRUE(apps::run_matmul(Protocol::Hybrid, 4, mat).correct);
}

TEST(AppsTraffic, PipelineUpdatesAreUseful) {
  // Producer/consumer flag traffic is the best case for update protocols:
  // most updates land exactly where the consumer spins.
  const auto r = apps::run_pipeline(Protocol::PU, 6, {.items = 80, .queue_slots = 4});
  ASSERT_TRUE(r.correct);
  EXPECT_GT(r.counters.updates.useful() * 3, r.counters.updates.total() * 2)
      << "expected >= ~2/3 useful updates in the pipeline";
}

TEST(AppsTraffic, SorUpdateBarrierBeatsWi) {
  apps::SorParams params;
  params.sweeps = 16;
  const auto wi = apps::run_sor(Protocol::WI, 8, params);
  const auto pu = apps::run_sor(Protocol::PU, 8, params);
  ASSERT_TRUE(wi.correct);
  ASSERT_TRUE(pu.correct);
  EXPECT_LT(pu.cycles, wi.cycles)
      << "halo exchange + dissemination barrier should favor updates";
}

} // namespace
