#include "stats/json.hpp"

#include <cinttypes>
#include <cstdio>
#include <sstream>

namespace ccsim::stats {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", ch);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

void JsonWriter::comma() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // value completes "key":
  }
  if (!first_.empty()) {
    if (!first_.back()) os_ << ',';
    first_.back() = false;
  }
}

JsonWriter& JsonWriter::begin_object() {
  comma();
  os_ << '{';
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  first_.pop_back();
  os_ << '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  comma();
  os_ << '[';
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  first_.pop_back();
  os_ << ']';
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  comma();
  os_ << '"' << json_escape(k) << "\":";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  comma();
  os_ << '"' << json_escape(v) << '"';
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  comma();
  os_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  comma();
  os_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  comma();
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  os_ << buf;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  comma();
  os_ << (v ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::raw(std::string_view json) {
  comma();
  os_ << json;
  return *this;
}

void to_json(std::ostream& os, const Counters& c) {
  JsonWriter w(os);
  w.begin_object();

  w.key("misses").begin_object();
  w.key("by").begin_object();
  for (std::size_t i = 0; i < kMissClasses; ++i) {
    const auto cls = static_cast<MissClass>(i);
    w.key(to_string(cls)).value(c.misses[cls]);
  }
  w.end_object();
  w.key("exclusive_requests").value(c.misses.exclusive_requests);
  w.key("total").value(c.misses.total());
  w.key("useful").value(c.misses.useful());
  w.end_object();

  w.key("updates").begin_object();
  w.key("by").begin_object();
  for (std::size_t i = 0; i < kUpdateClasses; ++i) {
    const auto cls = static_cast<UpdateClass>(i);
    w.key(to_string(cls)).value(c.updates[cls]);
  }
  w.end_object();
  w.key("total").value(c.updates.total());
  w.key("useful").value(c.updates.useful());
  w.end_object();

  w.key("net").begin_object();
  w.key("messages").value(c.net.messages);
  w.key("flits").value(c.net.flits);
  w.key("hops").value(c.net.hops);
  w.key("local").value(c.net.local);
  w.key("by_type").begin_object();
  for (std::size_t i = 0; i < kMsgTypeCount; ++i) {
    if (c.net.by_type[i] == 0) continue;
    w.key(net::to_string(static_cast<net::MsgType>(i))).value(c.net.by_type[i]);
  }
  w.end_object();
  w.end_object();

  w.key("mem").begin_object();
  w.key("shared_reads").value(c.mem.shared_reads);
  w.key("shared_writes").value(c.mem.shared_writes);
  w.key("read_hits").value(c.mem.read_hits);
  w.key("write_hits").value(c.mem.write_hits);
  w.key("atomics").value(c.mem.atomics);
  w.key("write_buffer_stalls").value(c.mem.write_buffer_stalls);
  w.key("fence_stall_cycles").value(c.mem.fence_stall_cycles);
  w.end_object();

  w.end_object();
}

std::string to_json(const Counters& c) {
  std::ostringstream os;
  to_json(os, c);
  return os.str();
}

void histogram_to_json(JsonWriter& w, const LatencyHistogram& h) {
  w.begin_object();
  w.key("n").value(h.count());
  w.key("mean").value(h.mean());
  w.key("min").value(h.min());
  w.key("max").value(h.max());
  w.key("p50").value(h.percentile(0.50));
  w.key("p90").value(h.percentile(0.90));
  w.key("p99").value(h.percentile(0.99));
  w.key("buckets").begin_array();
  for (const LatencyHistogram::Bucket& b : h.nonzero_buckets()) {
    w.begin_object();
    w.key("lo").value(b.lo);
    w.key("hi").value(b.hi);
    w.key("n").value(b.count);
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

// ---------------------------------------------------------------------
// JSON reader
// ---------------------------------------------------------------------

const JsonValue* JsonValue::find(std::string_view key) const {
  for (const auto& [k, v] : object)
    if (k == key) return &v;
  return nullptr;
}

const JsonValue& JsonValue::at(std::string_view key) const {
  if (const JsonValue* v = find(key)) return *v;
  throw std::runtime_error("json: missing key \"" + std::string(key) + '"');
}

namespace {

class Parser {
public:
  explicit Parser(std::string_view text) : s_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != s_.size()) fail("trailing characters");
    return v;
  }

private:
  [[noreturn]] void fail(const char* what) const {
    throw std::runtime_error("json parse error at byte " + std::to_string(pos_) +
                             ": " + what);
  }

  void skip_ws() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\t' ||
                                s_[pos_] == '\n' || s_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    if (pos_ >= s_.size()) fail("unexpected end of input");
    return s_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail("unexpected character");
    ++pos_;
  }

  bool consume(std::string_view word) {
    if (s_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        JsonValue v;
        v.kind = JsonValue::Kind::String;
        v.string = parse_string();
        return v;
      }
      case 't': {
        if (!consume("true")) fail("bad literal");
        JsonValue v;
        v.kind = JsonValue::Kind::Bool;
        v.boolean = true;
        return v;
      }
      case 'f': {
        if (!consume("false")) fail("bad literal");
        JsonValue v;
        v.kind = JsonValue::Kind::Bool;
        return v;
      }
      case 'n': {
        if (!consume("null")) fail("bad literal");
        return {};
      }
      default: return parse_number();
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= s_.size()) fail("unterminated string");
      char c = s_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= s_.size()) fail("unterminated escape");
      c = s_[pos_++];
      switch (c) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > s_.size()) fail("bad \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = s_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          // Our own writers only escape control characters; render other
          // code points as UTF-8.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xc0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3f));
          } else {
            out += static_cast<char>(0xe0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (code & 0x3f));
          }
          break;
        }
        default: fail("bad escape");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           ((s_[pos_] >= '0' && s_[pos_] <= '9') || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E' || s_[pos_] == '+' ||
            s_[pos_] == '-'))
      ++pos_;
    if (pos_ == start) fail("expected a value");
    const std::string text(s_.substr(start, pos_ - start));
    JsonValue v;
    v.kind = JsonValue::Kind::Number;
    try {
      v.number = std::stod(text);
    } catch (...) {
      fail("bad number");
    }
    if (text.find_first_of(".eE-") == std::string::npos) {
      try {
        v.integer = std::stoull(text);
        v.is_integer = true;
      } catch (...) {
        // magnitude beyond uint64: keep the double only
      }
    }
    return v;
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.kind = JsonValue::Kind::Array;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.array.push_back(parse_value());
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == ']') return v;
      if (c != ',') fail("expected ',' or ']'");
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v;
    v.kind = JsonValue::Kind::Object;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.object.emplace_back(std::move(key), parse_value());
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == '}') return v;
      if (c != ',') fail("expected ',' or '}'");
    }
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

} // namespace

JsonValue parse_json(std::string_view text) {
  return Parser(text).parse_document();
}

} // namespace ccsim::stats
