#include "stats/json.hpp"

#include <cinttypes>
#include <cstdio>
#include <sstream>

namespace ccsim::stats {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", ch);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

void JsonWriter::comma() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // value completes "key":
  }
  if (!first_.empty()) {
    if (!first_.back()) os_ << ',';
    first_.back() = false;
  }
}

JsonWriter& JsonWriter::begin_object() {
  comma();
  os_ << '{';
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  first_.pop_back();
  os_ << '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  comma();
  os_ << '[';
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  first_.pop_back();
  os_ << ']';
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  comma();
  os_ << '"' << json_escape(k) << "\":";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  comma();
  os_ << '"' << json_escape(v) << '"';
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  comma();
  os_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  comma();
  os_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  comma();
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  os_ << buf;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  comma();
  os_ << (v ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::raw(std::string_view json) {
  comma();
  os_ << json;
  return *this;
}

void to_json(std::ostream& os, const Counters& c) {
  JsonWriter w(os);
  w.begin_object();

  w.key("misses").begin_object();
  w.key("by").begin_object();
  for (std::size_t i = 0; i < kMissClasses; ++i) {
    const auto cls = static_cast<MissClass>(i);
    w.key(to_string(cls)).value(c.misses[cls]);
  }
  w.end_object();
  w.key("exclusive_requests").value(c.misses.exclusive_requests);
  w.key("total").value(c.misses.total());
  w.key("useful").value(c.misses.useful());
  w.end_object();

  w.key("updates").begin_object();
  w.key("by").begin_object();
  for (std::size_t i = 0; i < kUpdateClasses; ++i) {
    const auto cls = static_cast<UpdateClass>(i);
    w.key(to_string(cls)).value(c.updates[cls]);
  }
  w.end_object();
  w.key("total").value(c.updates.total());
  w.key("useful").value(c.updates.useful());
  w.end_object();

  w.key("net").begin_object();
  w.key("messages").value(c.net.messages);
  w.key("flits").value(c.net.flits);
  w.key("hops").value(c.net.hops);
  w.key("local").value(c.net.local);
  w.key("by_type").begin_object();
  for (std::size_t i = 0; i < kMsgTypeCount; ++i) {
    if (c.net.by_type[i] == 0) continue;
    w.key(net::to_string(static_cast<net::MsgType>(i))).value(c.net.by_type[i]);
  }
  w.end_object();
  w.end_object();

  w.key("mem").begin_object();
  w.key("shared_reads").value(c.mem.shared_reads);
  w.key("shared_writes").value(c.mem.shared_writes);
  w.key("read_hits").value(c.mem.read_hits);
  w.key("write_hits").value(c.mem.write_hits);
  w.key("atomics").value(c.mem.atomics);
  w.key("write_buffer_stalls").value(c.mem.write_buffer_stalls);
  w.key("fence_stall_cycles").value(c.mem.fence_stall_cycles);
  w.end_object();

  w.end_object();
}

std::string to_json(const Counters& c) {
  std::ostringstream os;
  to_json(os, c);
  return os.str();
}

} // namespace ccsim::stats
