#include "stats/report.hpp"

#include "stats/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <string>

namespace ccsim::stats {

void print_report(std::ostream& os, const Counters& c) {
  os << "cache misses (" << c.misses.total() << " total, " << c.misses.useful()
     << " useful):\n";
  for (std::size_t i = 0; i < kMissClasses; ++i) {
    const auto cls = static_cast<MissClass>(i);
    os << "  " << to_string(cls) << ": " << c.misses[cls] << '\n';
  }
  os << "  exclusive requests: " << c.misses.exclusive_requests << '\n';

  os << "update messages (" << c.updates.total() << " total, " << c.updates.useful()
     << " useful):\n";
  for (std::size_t i = 0; i < kUpdateClasses; ++i) {
    const auto cls = static_cast<UpdateClass>(i);
    os << "  " << to_string(cls) << ": " << c.updates[cls] << '\n';
  }

  os << "network: " << c.net.messages << " messages, " << c.net.flits << " flits, "
     << c.net.hops << " total hops, " << c.net.local << " local deliveries\n";
  os << "message profile:";
  for (std::size_t i = 0; i < kMsgTypeCount; ++i) {
    if (c.net.by_type[i] == 0) continue;
    os << ' ' << net::to_string(static_cast<net::MsgType>(i)) << '='
       << c.net.by_type[i];
  }
  os << '\n';
  os << "memory:  " << c.mem.shared_reads << " shared reads (" << c.mem.read_hits
     << " hits), " << c.mem.shared_writes << " shared writes, " << c.mem.atomics
     << " atomics, " << c.mem.write_buffer_stalls << " WB-stall cycles\n";
}

void print_profile(std::ostream& os, const obs::ProfileSnapshot& p) {
  if (!p.enabled()) return;
  const auto totals = p.totals();
  const double denom =
      static_cast<double>(p.wall) * static_cast<double>(p.per_proc.size());

  os << "cycle breakdown (" << p.per_proc.size() << " procs x " << p.wall
     << " cycles";
  if (!p.conserved()) os << ", NOT CONSERVED";
  os << "):\n";
  Table cats({{"", 14, /*left=*/true, "  "},
              {"", 6, /*left=*/false, " "},
              {"", 0, /*left=*/true, ""}});
  for (std::size_t i = 0; i < obs::kCycleCats; ++i) {
    if (totals[i] == 0) continue;
    const double pct = denom > 0.0 ? 100.0 * static_cast<double>(totals[i]) / denom
                                   : 0.0;
    // Stacked-bar rendering: one '#' per 2% of total processor-cycles.
    const int cols = static_cast<int>(pct / 2.0 + 0.5);
    cats.add_row({std::string(to_string(static_cast<obs::CycleCat>(i))),
                  Table::num(pct, 2), "% " + std::string(cols, '#')});
  }
  cats.print(os);
  os << "write buffer: peak occupancy " << p.wb_peak << ", " << p.wb_pushes
     << " stores accepted\n";

  bool any_phase = false;
  for (const auto& h : p.phases) any_phase |= h.count() != 0;
  if (any_phase) {
    os << "sync phases:\n";
    Table phases({{"", 17, /*left=*/true, "  "}, {"", 0, /*left=*/true, " "}});
    for (std::size_t i = 0; i < obs::kSyncPhases; ++i) {
      if (p.phases[i].count() == 0) continue;
      phases.add_row({std::string(to_string(static_cast<obs::SyncPhase>(i))),
                      p.phases[i].summary()});
    }
    phases.print(os);
  }
}

void print_host(std::ostream& os, const obs::HostPerfReport& h) {
  if (!h.enabled()) return;
  char line[160];
  std::snprintf(line, sizeof line,
                "host: %.1f ms, %.2f Mcyc/s, %.1f kev/s (%llu events, %llu cycles)\n",
                h.ms(), h.cycles_per_sec() * 1e-6, h.events_per_sec() * 1e-3,
                static_cast<unsigned long long>(h.events_executed),
                static_cast<unsigned long long>(h.sim_cycles));
  os << line;
  std::snprintf(line, sizeof line,
                "  queue depth: %s peak=%llu (sampled every %llu cycles)\n",
                h.queue_depth.summary().c_str(),
                static_cast<unsigned long long>(h.queue_peak),
                static_cast<unsigned long long>(h.queue_sample_interval));
  os << line;
  std::snprintf(line, sizeof line,
                "  alloc: %llu messages, %llu coroutine frames, %llu events scheduled\n",
                static_cast<unsigned long long>(h.messages),
                static_cast<unsigned long long>(h.frames),
                static_cast<unsigned long long>(h.events_scheduled));
  os << line;
  os << "  host time:";
  for (std::size_t i = 0; i < obs::kHostCats; ++i) {
    const auto c = static_cast<obs::HostCat>(i);
    std::snprintf(line, sizeof line, " %s=%.1f%%",
                  std::string(obs::to_string(c)).c_str(), 100.0 * h.share(c));
    os << line;
  }
  os << '\n';
}

void print_sharing(std::ostream& os, const obs::SharingReport& r,
                   std::size_t max_rows) {
  if (!r.enabled()) return;
  char line[160];
  std::snprintf(line, sizeof line,
                "sharing: %zu blocks, recommend %s (projected Mcyc: WI=%.2f "
                "PU=%.2f CU=%.2f)\n",
                r.blocks.size(), std::string(proto::to_string(r.recommended)).c_str(),
                r.total_wi * 1e-6, r.total_pu * 1e-6, r.total_cu * 1e-6);
  os << line;
  os << "  patterns:";
  for (std::size_t i = 0; i < obs::kSharingPatterns; ++i) {
    if (r.pattern_blocks[i] == 0) continue;
    os << ' ' << obs::to_string(static_cast<obs::SharingPattern>(i)) << '='
       << r.pattern_blocks[i];
  }
  os << '\n';

  Table blocks({{"block", 0, /*left=*/true, "  "},
                {"pattern", 0, /*left=*/true, "  "},
                {"acc", 0, false, "  "},
                {"reads", 0, false, "  "},
                {"writes", 0, false, "  "},
                {"rd/int", 0, false, "  "},
                {"runs", 0, false, "  "},
                {"inv", 0, false, "  "},
                {"upd", 0, false, "  "},
                {"wasted", 0, false, "  "},
                {"best", 0, false, "  "}},
               /*rule=*/true);
  const std::size_t shown = std::min(max_rows, r.blocks.size());
  for (std::size_t i = 0; i < shown; ++i) {
    const obs::SharingReport::Row& row = r.blocks[i];
    char addr[32] = "";
    if (row.name.empty())
      std::snprintf(addr, sizeof addr, "0x%llx",
                    static_cast<unsigned long long>(row.base));
    blocks.add_row({row.name.empty() ? std::string(addr) : row.name,
                    std::string(obs::to_string(row.pattern)),
                    Table::num(static_cast<std::uint64_t>(row.accessors)),
                    Table::num(row.reads), Table::num(row.writes),
                    Table::num(row.avg_interval_readers(), 1),
                    Table::num(row.runs), Table::num(row.invals_sent),
                    Table::num(row.updates_delivered),
                    Table::num(row.updates_wasted),
                    std::string(proto::to_string(row.best))});
  }
  blocks.print(os);
  if (shown < r.blocks.size())
    os << "  ... (" << (r.blocks.size() - shown) << " more blocks)\n";

  if (!r.allocs.empty()) {
    os << "per allocation:\n";
    Table allocs({{"name", 0, /*left=*/true, "  "},
                  {"blocks", 0, false, "  "},
                  {"pattern", 0, /*left=*/true, "  "},
                  {"reads", 0, false, "  "},
                  {"writes", 0, false, "  "},
                  {"cost.WI", 0, false, "  "},
                  {"cost.PU", 0, false, "  "},
                  {"cost.CU", 0, false, "  "},
                  {"best", 0, false, "  "}},
                 /*rule=*/true);
    for (const obs::SharingReport::Alloc& a : r.allocs)
      allocs.add_row({a.name, Table::num(static_cast<std::uint64_t>(a.blocks)),
                      std::string(obs::to_string(a.pattern)),
                      Table::num(a.reads), Table::num(a.writes),
                      Table::num(a.cost_wi, 0), Table::num(a.cost_pu, 0),
                      Table::num(a.cost_cu, 0),
                      std::string(proto::to_string(a.best))});
    allocs.print(os);
  }
}

} // namespace ccsim::stats
