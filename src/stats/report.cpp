#include "stats/report.hpp"

#include <cstdio>
#include <ostream>
#include <string>

namespace ccsim::stats {

void print_report(std::ostream& os, const Counters& c) {
  os << "cache misses (" << c.misses.total() << " total, " << c.misses.useful()
     << " useful):\n";
  for (std::size_t i = 0; i < kMissClasses; ++i) {
    const auto cls = static_cast<MissClass>(i);
    os << "  " << to_string(cls) << ": " << c.misses[cls] << '\n';
  }
  os << "  exclusive requests: " << c.misses.exclusive_requests << '\n';

  os << "update messages (" << c.updates.total() << " total, " << c.updates.useful()
     << " useful):\n";
  for (std::size_t i = 0; i < kUpdateClasses; ++i) {
    const auto cls = static_cast<UpdateClass>(i);
    os << "  " << to_string(cls) << ": " << c.updates[cls] << '\n';
  }

  os << "network: " << c.net.messages << " messages, " << c.net.flits << " flits, "
     << c.net.hops << " total hops, " << c.net.local << " local deliveries\n";
  os << "message profile:";
  for (std::size_t i = 0; i < kMsgTypeCount; ++i) {
    if (c.net.by_type[i] == 0) continue;
    os << ' ' << net::to_string(static_cast<net::MsgType>(i)) << '='
       << c.net.by_type[i];
  }
  os << '\n';
  os << "memory:  " << c.mem.shared_reads << " shared reads (" << c.mem.read_hits
     << " hits), " << c.mem.shared_writes << " shared writes, " << c.mem.atomics
     << " atomics, " << c.mem.write_buffer_stalls << " WB-stall cycles\n";
}

void print_profile(std::ostream& os, const obs::ProfileSnapshot& p) {
  if (!p.enabled()) return;
  const auto totals = p.totals();
  const double denom =
      static_cast<double>(p.wall) * static_cast<double>(p.per_proc.size());

  os << "cycle breakdown (" << p.per_proc.size() << " procs x " << p.wall
     << " cycles";
  if (!p.conserved()) os << ", NOT CONSERVED";
  os << "):\n";
  for (std::size_t i = 0; i < obs::kCycleCats; ++i) {
    if (totals[i] == 0) continue;
    const double pct = denom > 0.0 ? 100.0 * static_cast<double>(totals[i]) / denom
                                   : 0.0;
    char line[64];
    std::snprintf(line, sizeof line, "  %-14s %6.2f%% ",
                  std::string(to_string(static_cast<obs::CycleCat>(i))).c_str(),
                  pct);
    os << line;
    // Stacked-bar rendering: one '#' per 2% of total processor-cycles.
    const int cols = static_cast<int>(pct / 2.0 + 0.5);
    for (int b = 0; b < cols; ++b) os << '#';
    os << '\n';
  }
  os << "write buffer: peak occupancy " << p.wb_peak << ", " << p.wb_pushes
     << " stores accepted\n";

  bool any_phase = false;
  for (const auto& h : p.phases) any_phase |= h.count() != 0;
  if (any_phase) {
    os << "sync phases:\n";
    for (std::size_t i = 0; i < obs::kSyncPhases; ++i) {
      if (p.phases[i].count() == 0) continue;
      char name[32];
      std::snprintf(name, sizeof name, "  %-17s ",
                    std::string(to_string(static_cast<obs::SyncPhase>(i))).c_str());
      os << name << p.phases[i].summary() << '\n';
    }
  }
}

void print_host(std::ostream& os, const obs::HostPerfReport& h) {
  if (!h.enabled()) return;
  char line[160];
  std::snprintf(line, sizeof line,
                "host: %.1f ms, %.2f Mcyc/s, %.1f kev/s (%llu events, %llu cycles)\n",
                h.ms(), h.cycles_per_sec() * 1e-6, h.events_per_sec() * 1e-3,
                static_cast<unsigned long long>(h.events_executed),
                static_cast<unsigned long long>(h.sim_cycles));
  os << line;
  std::snprintf(line, sizeof line,
                "  queue depth: %s peak=%llu (sampled every %llu cycles)\n",
                h.queue_depth.summary().c_str(),
                static_cast<unsigned long long>(h.queue_peak),
                static_cast<unsigned long long>(h.queue_sample_interval));
  os << line;
  std::snprintf(line, sizeof line,
                "  alloc: %llu messages, %llu coroutine frames, %llu events scheduled\n",
                static_cast<unsigned long long>(h.messages),
                static_cast<unsigned long long>(h.frames),
                static_cast<unsigned long long>(h.events_scheduled));
  os << line;
  os << "  host time:";
  for (std::size_t i = 0; i < obs::kHostCats; ++i) {
    const auto c = static_cast<obs::HostCat>(i);
    std::snprintf(line, sizeof line, " %s=%.1f%%",
                  std::string(obs::to_string(c)).c_str(), 100.0 * h.share(c));
    os << line;
  }
  os << '\n';
}

} // namespace ccsim::stats
