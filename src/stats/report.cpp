#include "stats/report.hpp"

#include <ostream>

namespace ccsim::stats {

void print_report(std::ostream& os, const Counters& c) {
  os << "cache misses (" << c.misses.total() << " total, " << c.misses.useful()
     << " useful):\n";
  for (std::size_t i = 0; i < kMissClasses; ++i) {
    const auto cls = static_cast<MissClass>(i);
    os << "  " << to_string(cls) << ": " << c.misses[cls] << '\n';
  }
  os << "  exclusive requests: " << c.misses.exclusive_requests << '\n';

  os << "update messages (" << c.updates.total() << " total, " << c.updates.useful()
     << " useful):\n";
  for (std::size_t i = 0; i < kUpdateClasses; ++i) {
    const auto cls = static_cast<UpdateClass>(i);
    os << "  " << to_string(cls) << ": " << c.updates[cls] << '\n';
  }

  os << "network: " << c.net.messages << " messages, " << c.net.flits << " flits, "
     << c.net.hops << " total hops, " << c.net.local << " local deliveries\n";
  os << "message profile:";
  for (std::size_t i = 0; i < kMsgTypeCount; ++i) {
    if (c.net.by_type[i] == 0) continue;
    os << ' ' << net::to_string(static_cast<net::MsgType>(i)) << '='
       << c.net.by_type[i];
  }
  os << '\n';
  os << "memory:  " << c.mem.shared_reads << " shared reads (" << c.mem.read_hits
     << " hits), " << c.mem.shared_writes << " shared writes, " << c.mem.atomics
     << " atomics, " << c.mem.write_buffer_stalls << " WB-stall cycles\n";
}

} // namespace ccsim::stats
