// Log-scale latency histogram.
//
// The paper reports averages; distributions expose what averages hide --
// most notably lock FAIRNESS: a FIFO ticket lock and an unfair
// test-and-set lock can have similar mean acquire latencies while their
// p99s differ by orders of magnitude (see bench/abl_lock_fairness).
//
// Power-of-two buckets: values 0, 1, 2-3, 4-7, ... Percentiles are
// resolved by linear interpolation within the winning bucket.
#pragma once

#include "sim/types.hpp"

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace ccsim::stats {

class LatencyHistogram {
public:
  static constexpr std::size_t kBuckets = 40;

  /// One occupied bucket: inclusive value bounds and its sample count.
  /// Bounds are clamped to the observed [min, max], so external tooling
  /// can re-bin or merge distributions without inventing out-of-range
  /// mass (the satellite of stats::histogram_to_json).
  struct Bucket {
    Cycle lo = 0;
    Cycle hi = 0;
    std::uint64_t count = 0;
  };

  void add(Cycle v) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] Cycle min() const noexcept { return count_ ? min_ : 0; }
  [[nodiscard]] Cycle max() const noexcept { return max_; }
  [[nodiscard]] double mean() const noexcept {
    return count_ ? static_cast<double>(sum_) / static_cast<double>(count_) : 0.0;
  }

  /// Value at quantile q in [0, 1] (interpolated within the bucket).
  /// q = 0 is exact: it returns min().
  [[nodiscard]] Cycle percentile(double q) const noexcept;

  /// The occupied buckets in ascending value order.
  [[nodiscard]] std::vector<Bucket> nonzero_buckets() const;

  /// "n=.. mean=.. p50=.. p90=.. p99=.. max=.." one-liner.
  [[nodiscard]] std::string summary() const;

  /// Merge another histogram into this one.
  void merge(const LatencyHistogram& o) noexcept;

private:
  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  Cycle min_ = ~Cycle{0};
  Cycle max_ = 0;
};

} // namespace ccsim::stats
