#include "stats/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

namespace ccsim::stats {

Table::Table(std::vector<Column> columns, bool rule)
    : cols_(std::move(columns)), rule_(rule) {}

Table Table::figure(const std::vector<std::string>& headers) {
  std::vector<Column> cols;
  cols.reserve(headers.size());
  for (std::size_t i = 0; i < headers.size(); ++i)
    cols.push_back({headers[i], 0, i == 0, i == 0 ? "" : "  "});
  return Table(std::move(cols), /*rule=*/true);
}

void Table::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string Table::num(std::uint64_t v) { return std::to_string(v); }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(cols_.size());
  bool any_header = false;
  for (std::size_t i = 0; i < cols_.size(); ++i) {
    any_header |= !cols_[i].header.empty();
    width[i] = std::max<std::size_t>(cols_[i].width < 0 ? 0 : cols_[i].width,
                                     cols_[i].header.size());
    if (cols_[i].width == 0)
      for (const auto& r : rows_)
        if (i < r.size()) width[i] = std::max(width[i], r[i].size());
  }

  const auto line = [&](const std::vector<std::string>& cells) {
    const std::size_t n = std::min(cells.size(), cols_.size());
    for (std::size_t i = 0; i < n; ++i) {
      os << cols_[i].gap;
      const std::size_t pad =
          cells[i].size() < width[i] ? width[i] - cells[i].size() : 0;
      if (cols_[i].left) {
        os << cells[i];
        // No trailing whitespace: a left-aligned final cell ends the line.
        if (i + 1 < n) os << std::string(pad, ' ');
      } else {
        os << std::string(pad, ' ') << cells[i];
      }
    }
    os << '\n';
  };

  std::vector<std::string> headers;
  headers.reserve(cols_.size());
  for (const Column& c : cols_) headers.push_back(c.header);
  if (any_header) line(headers);
  if (rule_) {
    std::size_t total = 0;
    for (std::size_t i = 0; i < cols_.size(); ++i)
      total += width[i] + cols_[i].gap.size();
    os << std::string(total, '-') << '\n';
  }
  for (const auto& r : rows_) line(r);
}

void Table::print_csv(std::ostream& os) const {
  const auto line = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i)
      os << (i == 0 ? "" : ",") << cells[i];
    os << '\n';
  };
  std::vector<std::string> headers;
  headers.reserve(cols_.size());
  for (const Column& c : cols_) headers.push_back(c.header);
  line(headers);
  for (const auto& r : rows_) line(r);
}

} // namespace ccsim::stats
