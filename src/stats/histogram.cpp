#include "stats/histogram.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>

namespace ccsim::stats {

namespace {
/// Bucket index: 0 -> 0; v -> floor(log2 v) + 1, capped.
std::size_t bucket_of(Cycle v) noexcept {
  if (v == 0) return 0;
  const std::size_t b = static_cast<std::size_t>(std::bit_width(v));
  return std::min(b, LatencyHistogram::kBuckets - 1);
}

/// Inclusive value range covered by a bucket.
void bucket_range(std::size_t b, Cycle& lo, Cycle& hi) noexcept {
  if (b == 0) {
    lo = hi = 0;
    return;
  }
  lo = Cycle{1} << (b - 1);
  hi = (Cycle{1} << b) - 1;
}
} // namespace

void LatencyHistogram::add(Cycle v) noexcept {
  ++buckets_[bucket_of(v)];
  ++count_;
  sum_ += v;
  min_ = std::min(min_, v);
  max_ = std::max(max_, v);
}

Cycle LatencyHistogram::percentile(double q) const noexcept {
  if (count_ == 0) return 0;
  // q = 0 means "the smallest observed value", which bucket interpolation
  // cannot recover once the minimum's bucket holds other samples (a
  // single-sample bucket used to answer with its clamped UPPER bound).
  if (q <= 0.0) return min();
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count_);
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    if (buckets_[b] == 0) continue;
    const std::uint64_t next = seen + buckets_[b];
    if (static_cast<double>(next) >= target) {
      Cycle lo, hi;
      bucket_range(b, lo, hi);
      lo = std::max(lo, min_);
      hi = std::min(hi, max_);
      if (hi <= lo || buckets_[b] == 1) return hi;
      const double frac =
          (target - static_cast<double>(seen)) / static_cast<double>(buckets_[b]);
      return lo + static_cast<Cycle>(frac * static_cast<double>(hi - lo));
    }
    seen = next;
  }
  return max_;
}

std::vector<LatencyHistogram::Bucket> LatencyHistogram::nonzero_buckets() const {
  std::vector<Bucket> out;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    if (buckets_[b] == 0) continue;
    Cycle lo, hi;
    bucket_range(b, lo, hi);
    out.push_back({std::max(lo, min()), std::min(hi, max_), buckets_[b]});
  }
  return out;
}

std::string LatencyHistogram::summary() const {
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "n=%llu mean=%.1f p50=%llu p90=%llu p99=%llu max=%llu",
                static_cast<unsigned long long>(count_), mean(),
                static_cast<unsigned long long>(percentile(0.50)),
                static_cast<unsigned long long>(percentile(0.90)),
                static_cast<unsigned long long>(percentile(0.99)),
                static_cast<unsigned long long>(max_));
  return buf;
}

void LatencyHistogram::merge(const LatencyHistogram& o) noexcept {
  for (std::size_t b = 0; b < kBuckets; ++b) buckets_[b] += o.buckets_[b];
  count_ += o.count_;
  sum_ += o.sum_;
  min_ = std::min(min_, o.min_);
  max_ = std::max(max_, o.max_);
}

} // namespace ccsim::stats
