#include "stats/update_classifier.hpp"

#include "obs/hot_blocks.hpp"

namespace ccsim::stats {

UpdateClassifier::PerProc& UpdateClassifier::state(NodeId proc, mem::BlockAddr b) {
  BlockInfo& bi = blocks_[b];
  if (bi.procs.empty()) bi.procs.resize(nprocs_);
  return bi.procs[proc];
}

void UpdateClassifier::count(mem::BlockAddr b, UpdateClass cls) {
  ++counters_.updates[cls];
  if (hot_) hot_->on_update(b, cls);
}

void UpdateClassifier::finalize_word(PerProc& pp, mem::BlockAddr b, unsigned w,
                                     UpdateClass cls) {
  const std::uint8_t bit = static_cast<std::uint8_t>(1u << w);
  if (!(pp.pending & bit)) return;
  // "Classify useless updates as proliferation unless active false sharing
  // is detected" -- refother upgrades the class to false sharing for the
  // overwrite and end-of-program cases.
  if ((pp.refother & bit) &&
      (cls == UpdateClass::Proliferation || cls == UpdateClass::Termination))
    cls = UpdateClass::FalseSharing;
  count(b, cls);
  pp.pending = static_cast<std::uint8_t>(pp.pending & ~bit);
  pp.refother = static_cast<std::uint8_t>(pp.refother & ~bit);
}

void UpdateClassifier::on_update_applied(NodeId proc, Addr addr) {
  const mem::BlockAddr b = mem::block_of(addr);
  PerProc& pp = state(proc, b);
  const unsigned w = mem::word_of(addr);
  // Overwriting a still-pending update ends its lifetime uselessly.
  finalize_word(pp, b, w, UpdateClass::Proliferation);
  pp.pending = static_cast<std::uint8_t>(pp.pending | (1u << w));
  pp.refother = static_cast<std::uint8_t>(pp.refother & ~(1u << w));
}

void UpdateClassifier::on_drop_update(NodeId proc, Addr addr) {
  const mem::BlockAddr b = mem::block_of(addr);
  PerProc& pp = state(proc, b);
  const unsigned w = mem::word_of(addr);
  // The arriving update itself is the drop update...
  count(b, UpdateClass::Drop);
  // ...and the block's other pending updates die unconsumed.
  finalize_word(pp, b, w, UpdateClass::Proliferation);  // pending older update on w
  for (unsigned i = 0; i < mem::kWordsPerBlock; ++i)
    finalize_word(pp, b, i, UpdateClass::Proliferation);
}

void UpdateClassifier::on_reference(NodeId proc, Addr addr) {
  if (!mem::is_shared(addr)) return;
  const mem::BlockAddr b = mem::block_of(addr);
  auto it = blocks_.find(b);
  if (it == blocks_.end() || it->second.procs.empty()) return;
  PerProc& pp = it->second.procs[proc];
  if (pp.pending == 0) return;
  const unsigned w = mem::word_of(addr);
  const std::uint8_t bit = static_cast<std::uint8_t>(1u << w);
  if (pp.pending & bit) {
    // Referenced the updated word: useful, finalize eagerly.
    count(b, UpdateClass::TrueSharing);
    pp.pending = static_cast<std::uint8_t>(pp.pending & ~bit);
    pp.refother = static_cast<std::uint8_t>(pp.refother & ~bit);
  }
  // Every other pending update in the block now has other-word activity.
  pp.refother = static_cast<std::uint8_t>(pp.refother | (pp.pending & ~bit));
}

void UpdateClassifier::on_block_replaced(NodeId proc, mem::BlockAddr b) {
  auto it = blocks_.find(b);
  if (it == blocks_.end() || it->second.procs.empty()) return;
  PerProc& pp = it->second.procs[proc];
  for (unsigned w = 0; w < mem::kWordsPerBlock; ++w)
    finalize_word(pp, b, w, UpdateClass::Replacement);
}

void UpdateClassifier::finalize(Cycle) {
  for (auto& [b, bi] : blocks_) {
    for (auto& pp : bi.procs) {
      for (unsigned w = 0; w < mem::kWordsPerBlock; ++w)
        finalize_word(pp, b, w, UpdateClass::Termination);
    }
  }
}

} // namespace ccsim::stats
