// Aggregate counters: categorized miss/update traffic and raw volumes.
//
// The miss and update categories follow section 3.2 of the paper exactly.
// Misses split into cold start, true sharing, false sharing, eviction and
// drop; exclusive requests (upgrades) are counted alongside because they
// cause traffic without being misses. Updates split into true sharing
// (useful), false sharing, proliferation, replacement, termination and drop.
#pragma once

#include "net/message.hpp"
#include "sim/types.hpp"

#include <array>
#include <cstdint>
#include <string_view>

namespace ccsim::stats {

/// Number of distinct coherence message types (for per-type profiles).
inline constexpr std::size_t kMsgTypeCount =
    static_cast<std::size_t>(net::MsgType::AtomicReply) + 1;

enum class MissClass : std::uint8_t {
  Cold,         ///< first reference to the block by this processor
  TrueSharing,  ///< copy invalidated by a write to a word we now reference
  FalseSharing, ///< copy invalidated, but by writes to other words only
  Eviction,     ///< copy lost to a conflict replacement, later reloaded
  Drop,         ///< copy self-invalidated by the competitive-update counter
  Count_
};
inline constexpr std::size_t kMissClasses = static_cast<std::size_t>(MissClass::Count_);

enum class UpdateClass : std::uint8_t {
  TrueSharing,   ///< receiver referenced the updated word before overwrite (useful)
  FalseSharing,  ///< receiver referenced another word of the block instead
  Proliferation, ///< receiver referenced nothing in the block before overwrite
  Replacement,   ///< block replaced before the word was referenced
  Termination,   ///< update still unreferenced when the program ended
  Drop,          ///< the update that triggered a competitive-update drop
  Count_
};
inline constexpr std::size_t kUpdateClasses = static_cast<std::size_t>(UpdateClass::Count_);

[[nodiscard]] std::string_view to_string(MissClass c) noexcept;
[[nodiscard]] std::string_view to_string(UpdateClass c) noexcept;

struct MissCounts {
  std::array<std::uint64_t, kMissClasses> by{};
  /// Write-hit-on-shared upgrade transactions: not misses, but traffic.
  std::uint64_t exclusive_requests = 0;

  std::uint64_t& operator[](MissClass c) { return by[static_cast<std::size_t>(c)]; }
  std::uint64_t operator[](MissClass c) const { return by[static_cast<std::size_t>(c)]; }
  [[nodiscard]] std::uint64_t total() const noexcept;
  /// Cold + true sharing (the paper's "useful" misses).
  [[nodiscard]] std::uint64_t useful() const noexcept;
  [[nodiscard]] std::uint64_t useless() const noexcept { return total() - useful(); }
};

struct UpdateCounts {
  std::array<std::uint64_t, kUpdateClasses> by{};

  std::uint64_t& operator[](UpdateClass c) { return by[static_cast<std::size_t>(c)]; }
  std::uint64_t operator[](UpdateClass c) const { return by[static_cast<std::size_t>(c)]; }
  [[nodiscard]] std::uint64_t total() const noexcept;
  [[nodiscard]] std::uint64_t useful() const noexcept {
    return (*this)[UpdateClass::TrueSharing];
  }
  [[nodiscard]] std::uint64_t useless() const noexcept { return total() - useful(); }
};

struct NetCounters {
  std::uint64_t messages = 0;  ///< remote messages injected
  std::uint64_t flits = 0;     ///< total flits injected
  std::uint64_t hops = 0;      ///< sum of per-message switch hops
  std::uint64_t local = 0;     ///< node-local deliveries (no network)
  /// Per-message-type profile (remote + local), e.g. how many Updates vs
  /// Invals a run generated -- the protocol's communication signature.
  std::array<std::uint64_t, kMsgTypeCount> by_type{};

  [[nodiscard]] std::uint64_t of(net::MsgType t) const {
    return by_type[static_cast<std::size_t>(t)];
  }
};

struct MemCounters {
  std::uint64_t shared_reads = 0;
  std::uint64_t shared_writes = 0;
  std::uint64_t read_hits = 0;
  std::uint64_t write_hits = 0;
  std::uint64_t atomics = 0;
  std::uint64_t write_buffer_stalls = 0;  ///< cycles lost to a full write buffer
  std::uint64_t fence_stall_cycles = 0;   ///< cycles waiting for acks at releases
};

/// Everything one simulation run accumulates.
struct Counters {
  MissCounts misses;
  UpdateCounts updates;
  NetCounters net;
  MemCounters mem;
};

/// Field-wise `now - prev`. All counters are monotone over a run, so this
/// is the traffic of the window between two snapshots (interval sampling).
[[nodiscard]] Counters delta(const Counters& now, const Counters& prev) noexcept;

/// Field-wise accumulation (the inverse of delta; used to check that
/// per-interval samples sum back to the run totals).
void accumulate(Counters& into, const Counters& add) noexcept;

} // namespace ccsim::stats
