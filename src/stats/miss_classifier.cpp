#include "stats/miss_classifier.hpp"

#include "obs/cycle_accounting.hpp"
#include "obs/hot_blocks.hpp"

#include <cassert>

namespace ccsim::stats {

MissClassifier::BlockInfo& MissClassifier::info(mem::BlockAddr b) {
  BlockInfo& bi = blocks_[b];
  if (bi.procs.empty()) bi.procs.resize(nprocs_);
  return bi;
}

void MissClassifier::on_store(NodeId proc, Addr addr) {
  (void)proc;
  if (!mem::is_shared(addr)) return;
  BlockInfo& bi = info(mem::block_of(addr));
  ++bi.version[mem::word_of(addr)];
}

void MissClassifier::on_invalidated(NodeId proc, mem::BlockAddr b, Addr trigger) {
  BlockInfo& bi = info(b);
  PerProc& pp = bi.procs[proc];
  pp.loss = Loss::Inval;
  pp.snapshot = bi.version;
  pp.trigger_mask = static_cast<std::uint8_t>(1u << mem::word_of(trigger));
  if (hot_) hot_->on_inval(b);
}

void MissClassifier::on_evicted(NodeId proc, mem::BlockAddr b) {
  PerProc& pp = info(b).procs[proc];
  pp.loss = Loss::Evict;
  pp.trigger_mask = 0;
}

void MissClassifier::on_dropped(NodeId proc, mem::BlockAddr b) {
  PerProc& pp = info(b).procs[proc];
  pp.loss = Loss::Drop;
  pp.trigger_mask = 0;
}

void MissClassifier::on_fill(NodeId proc, mem::BlockAddr b) {
  PerProc& pp = info(b).procs[proc];
  pp.ever_cached = true;
  pp.loss = Loss::None;
  pp.trigger_mask = 0;
}

MissClass MissClassifier::classify_miss(NodeId proc, Addr addr) {
  BlockInfo& bi = info(mem::block_of(addr));
  PerProc& pp = bi.procs[proc];

  MissClass c;
  if (!pp.ever_cached) {
    c = MissClass::Cold;
  } else {
    switch (pp.loss) {
      case Loss::Evict:
        c = MissClass::Eviction;
        break;
      case Loss::Drop:
        c = MissClass::Drop;
        break;
      case Loss::Inval: {
        const unsigned w = mem::word_of(addr);
        const bool written_since =
            (pp.trigger_mask >> w) & 1u || bi.version[w] != pp.snapshot[w];
        c = written_since ? MissClass::TrueSharing : MissClass::FalseSharing;
        break;
      }
      case Loss::None:
      default:
        // A miss without a recorded loss can only be cold (defensive).
        c = MissClass::Cold;
        break;
    }
  }
  ++counters_.misses[c];
  if (hot_) hot_->on_miss(mem::block_of(addr), c);
  if (ledger_) ledger_->note_miss(proc, addr, c);
  return c;
}

void MissClassifier::on_exclusive_request(NodeId) {
  ++counters_.misses.exclusive_requests;
}

} // namespace ccsim::stats
