// Shared fixed-width stdout table formatting.
//
// One helper behind every aligned table the project prints: the bench
// figure tables (harness::Table delegates here), the ccperf host-profile
// table, stats::print_profile's cycle-breakdown rows, and the sharing /
// advisor reports. Two column modes:
//
//   - auto  (width == 0): the column is sized to its widest cell
//     (header included), the figure-table style;
//   - fixed (width > 0): cells are padded to at least `width` but never
//     truncated, matching printf's minimum-field-width semantics.
//
// Each column carries its own alignment and the separator string printed
// before it, so existing printf format strings translate byte-for-byte.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace ccsim::stats {

/// One column of a Table.
struct Column {
  std::string header;
  int width = 0;           ///< minimum cell width; 0 = size to content
  bool left = false;       ///< left-align (default: right-align)
  std::string gap = "  ";  ///< separator printed before this column
};

class Table {
public:
  /// Columns given explicitly; `rule` draws a dashed line under the header
  /// spanning the full row width. A table whose headers are all empty
  /// prints no header line.
  explicit Table(std::vector<Column> columns, bool rule = false);

  /// The bench-figure style: every column auto-width, first column
  /// left-aligned with no leading gap, the rest right-aligned behind
  /// two-space gaps, dashed rule under the header.
  static Table figure(const std::vector<std::string>& headers);

  void add_row(std::vector<std::string> cells);
  void print(std::ostream& os) const;
  void print_csv(std::ostream& os) const;

  [[nodiscard]] static std::string num(double v, int precision = 1);
  [[nodiscard]] static std::string num(std::uint64_t v);

private:
  std::vector<Column> cols_;
  bool rule_;
  std::vector<std::vector<std::string>> rows_;
};

} // namespace ccsim::stats
