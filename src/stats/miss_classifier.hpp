// Cache-miss categorization (paper section 3.2).
//
// Implements the algorithm of Dubois et al. [5] as extended by Bianchini &
// Kontothanassis [2]: misses are cold start, true sharing, false sharing,
// eviction, or drop; exclusive-request (upgrade) transactions are counted
// alongside because they generate traffic without being misses.
//
// Mechanism: every globally-performed store bumps a per-word version
// counter. When a processor loses its copy the classifier records the
// reason and snapshots the block's word versions (plus the word whose write
// triggered an invalidation). At the next miss by that processor:
//   - never cached the block            -> cold start
//   - lost to conflict replacement      -> eviction
//   - lost to a competitive-update drop -> drop
//   - lost to an invalidation           -> true sharing if the accessed
//     word was written by another processor since the loss (version moved
//     or it was the triggering word), else false sharing.
#pragma once

#include "mem/address.hpp"
#include "sim/types.hpp"
#include "stats/counters.hpp"

#include <array>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace ccsim::obs {
class CycleLedger;
class HotBlockTable;
}

namespace ccsim::stats {

class MissClassifier {
public:
  MissClassifier(unsigned nprocs, Counters& counters)
      : nprocs_(nprocs), counters_(counters) {}

  /// Attach a hot-block table: every classified miss and every invalidation
  /// is additionally attributed to its block (nullptr = off).
  void set_hot(obs::HotBlockTable* hot) noexcept { hot_ = hot; }

  /// Attach a cycle ledger: every classified miss is reported so an open
  /// read-stall span can resolve to its miss class (nullptr = off).
  void set_ledger(obs::CycleLedger* l) noexcept { ledger_ = l; }

  /// A store to `addr` became globally visible, performed by `proc`.
  /// (WI: at the writer's cache once exclusive; PU/CU: at the home.)
  void on_store(NodeId proc, Addr addr);

  /// `proc`'s copy of block `b` was invalidated by a write to `trigger`
  /// (word address) issued by another processor.
  void on_invalidated(NodeId proc, mem::BlockAddr b, Addr trigger);

  /// `proc` lost its copy of `b` to a conflict replacement (or user flush).
  void on_evicted(NodeId proc, mem::BlockAddr b);

  /// `proc` self-invalidated `b` under the competitive-update policy.
  void on_dropped(NodeId proc, mem::BlockAddr b);

  /// `proc` filled block `b` into its cache.
  void on_fill(NodeId proc, mem::BlockAddr b);

  /// Classify and count the miss `proc` takes at `addr`. Returns the class.
  MissClass classify_miss(NodeId proc, Addr addr);

  /// Count an upgrade (write hit on a read-shared copy under WI).
  void on_exclusive_request(NodeId proc);

private:
  enum class Loss : std::uint8_t { None, Inval, Evict, Drop };

  struct PerProc {
    bool ever_cached = false;
    Loss loss = Loss::None;
    std::uint8_t trigger_mask = 0;  ///< words whose writes caused the loss
    std::array<std::uint32_t, mem::kWordsPerBlock> snapshot{};
  };
  struct BlockInfo {
    std::array<std::uint32_t, mem::kWordsPerBlock> version{};
    std::vector<PerProc> procs;  ///< size nprocs
  };

  BlockInfo& info(mem::BlockAddr b);

  unsigned nprocs_;
  Counters& counters_;
  obs::HotBlockTable* hot_ = nullptr;
  obs::CycleLedger* ledger_ = nullptr;
  std::unordered_map<mem::BlockAddr, BlockInfo> blocks_;
};

} // namespace ccsim::stats
