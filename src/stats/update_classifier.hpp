// Update-message categorization (paper section 3.2, after [2]).
//
// An update's lifetime ends when it is overwritten by another update to the
// same word, when the block is replaced, when the program ends, or (CU)
// when it triggers a drop. At that point it is classified:
//   - true sharing  (useful): the receiver referenced the updated word
//     during the lifetime (finalized eagerly at the reference);
//   - false sharing: never referenced the word, but the receiver touched
//     some other word of the block during the lifetime;
//   - proliferation: never referenced anything in the block;
//   - replacement:  block replaced while the update was still pending;
//   - termination:  still pending when the program ended and no false
//     sharing was active (the paper's "End" bar);
//   - drop:         the update whose arrival tripped the competitive
//     counter and invalidated the block.
//
// State is two bitmasks per (processor, block): which words hold a pending
// (not yet classified) update, and which of those saw the processor touch a
// *different* word of the block since the update arrived.
#pragma once

#include "mem/address.hpp"
#include "sim/types.hpp"
#include "stats/counters.hpp"

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace ccsim::obs {
class HotBlockTable;
}

namespace ccsim::stats {

class UpdateClassifier {
public:
  UpdateClassifier(unsigned nprocs, Counters& counters)
      : nprocs_(nprocs), counters_(counters) {}

  /// Attach a hot-block table: every classified update lifetime is
  /// additionally attributed to its block (nullptr = off).
  void set_hot(obs::HotBlockTable* hot) noexcept { hot_ = hot; }

  /// An update to `addr` was applied to `proc`'s cached copy.
  void on_update_applied(NodeId proc, Addr addr);

  /// The update to `addr` arriving at `proc` tripped the CU counter: the
  /// block is being invalidated. Counts one Drop and ends the lifetimes of
  /// the block's other pending updates (as proliferation/false sharing --
  /// the receiver will reload the block, so they were never consumed).
  void on_drop_update(NodeId proc, Addr addr);

  /// `proc` referenced (load or store) `addr` in its cache.
  void on_reference(NodeId proc, Addr addr);

  /// `proc` replaced / flushed its copy of block `b`.
  void on_block_replaced(NodeId proc, mem::BlockAddr b);

  /// Program end: classify every still-pending update.
  void finalize(Cycle /*now*/ = 0);

private:
  struct PerProc {
    std::uint8_t pending = 0;   ///< words with an unclassified update
    std::uint8_t refother = 0;  ///< pending words with other-word activity
  };
  struct BlockInfo {
    std::vector<PerProc> procs;
  };

  PerProc& state(NodeId proc, mem::BlockAddr b);
  void finalize_word(PerProc& pp, mem::BlockAddr b, unsigned w,
                     UpdateClass overwrite_class);
  void count(mem::BlockAddr b, UpdateClass cls);

  unsigned nprocs_;
  Counters& counters_;
  obs::HotBlockTable* hot_ = nullptr;
  std::unordered_map<mem::BlockAddr, BlockInfo> blocks_;
};

} // namespace ccsim::stats
