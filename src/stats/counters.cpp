#include "stats/counters.hpp"

#include <numeric>

namespace ccsim::stats {

std::string_view to_string(MissClass c) noexcept {
  switch (c) {
    case MissClass::Cold: return "cold";
    case MissClass::TrueSharing: return "true";
    case MissClass::FalseSharing: return "false";
    case MissClass::Eviction: return "evict";
    case MissClass::Drop: return "drop";
    case MissClass::Count_: break;
  }
  return "?";
}

std::string_view to_string(UpdateClass c) noexcept {
  switch (c) {
    case UpdateClass::TrueSharing: return "useful";
    case UpdateClass::FalseSharing: return "false";
    case UpdateClass::Proliferation: return "prolif";
    case UpdateClass::Replacement: return "repl";
    case UpdateClass::Termination: return "end";
    case UpdateClass::Drop: return "drop";
    case UpdateClass::Count_: break;
  }
  return "?";
}

std::uint64_t MissCounts::total() const noexcept {
  return std::accumulate(by.begin(), by.end(), std::uint64_t{0});
}

std::uint64_t MissCounts::useful() const noexcept {
  return (*this)[MissClass::Cold] + (*this)[MissClass::TrueSharing];
}

std::uint64_t UpdateCounts::total() const noexcept {
  return std::accumulate(by.begin(), by.end(), std::uint64_t{0});
}

} // namespace ccsim::stats
