#include "stats/counters.hpp"

#include <numeric>

namespace ccsim::stats {

std::string_view to_string(MissClass c) noexcept {
  switch (c) {
    case MissClass::Cold: return "cold";
    case MissClass::TrueSharing: return "true";
    case MissClass::FalseSharing: return "false";
    case MissClass::Eviction: return "evict";
    case MissClass::Drop: return "drop";
    case MissClass::Count_: break;
  }
  return "?";
}

std::string_view to_string(UpdateClass c) noexcept {
  switch (c) {
    case UpdateClass::TrueSharing: return "useful";
    case UpdateClass::FalseSharing: return "false";
    case UpdateClass::Proliferation: return "prolif";
    case UpdateClass::Replacement: return "repl";
    case UpdateClass::Termination: return "end";
    case UpdateClass::Drop: return "drop";
    case UpdateClass::Count_: break;
  }
  return "?";
}

std::uint64_t MissCounts::total() const noexcept {
  return std::accumulate(by.begin(), by.end(), std::uint64_t{0});
}

std::uint64_t MissCounts::useful() const noexcept {
  return (*this)[MissClass::Cold] + (*this)[MissClass::TrueSharing];
}

std::uint64_t UpdateCounts::total() const noexcept {
  return std::accumulate(by.begin(), by.end(), std::uint64_t{0});
}

Counters delta(const Counters& now, const Counters& prev) noexcept {
  Counters d;
  for (std::size_t i = 0; i < kMissClasses; ++i)
    d.misses.by[i] = now.misses.by[i] - prev.misses.by[i];
  d.misses.exclusive_requests =
      now.misses.exclusive_requests - prev.misses.exclusive_requests;
  for (std::size_t i = 0; i < kUpdateClasses; ++i)
    d.updates.by[i] = now.updates.by[i] - prev.updates.by[i];
  d.net.messages = now.net.messages - prev.net.messages;
  d.net.flits = now.net.flits - prev.net.flits;
  d.net.hops = now.net.hops - prev.net.hops;
  d.net.local = now.net.local - prev.net.local;
  for (std::size_t i = 0; i < kMsgTypeCount; ++i)
    d.net.by_type[i] = now.net.by_type[i] - prev.net.by_type[i];
  d.mem.shared_reads = now.mem.shared_reads - prev.mem.shared_reads;
  d.mem.shared_writes = now.mem.shared_writes - prev.mem.shared_writes;
  d.mem.read_hits = now.mem.read_hits - prev.mem.read_hits;
  d.mem.write_hits = now.mem.write_hits - prev.mem.write_hits;
  d.mem.atomics = now.mem.atomics - prev.mem.atomics;
  d.mem.write_buffer_stalls =
      now.mem.write_buffer_stalls - prev.mem.write_buffer_stalls;
  d.mem.fence_stall_cycles =
      now.mem.fence_stall_cycles - prev.mem.fence_stall_cycles;
  return d;
}

void accumulate(Counters& into, const Counters& add) noexcept {
  for (std::size_t i = 0; i < kMissClasses; ++i)
    into.misses.by[i] += add.misses.by[i];
  into.misses.exclusive_requests += add.misses.exclusive_requests;
  for (std::size_t i = 0; i < kUpdateClasses; ++i)
    into.updates.by[i] += add.updates.by[i];
  into.net.messages += add.net.messages;
  into.net.flits += add.net.flits;
  into.net.hops += add.net.hops;
  into.net.local += add.net.local;
  for (std::size_t i = 0; i < kMsgTypeCount; ++i)
    into.net.by_type[i] += add.net.by_type[i];
  into.mem.shared_reads += add.mem.shared_reads;
  into.mem.shared_writes += add.mem.shared_writes;
  into.mem.read_hits += add.mem.read_hits;
  into.mem.write_hits += add.mem.write_hits;
  into.mem.atomics += add.mem.atomics;
  into.mem.write_buffer_stalls += add.mem.write_buffer_stalls;
  into.mem.fence_stall_cycles += add.mem.fence_stall_cycles;
}

} // namespace ccsim::stats
