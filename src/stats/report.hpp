// Human-readable run reports: categorized traffic summaries for examples
// and the protocol-explorer tool, plus the --profile cycle-accounting table.
#pragma once

#include "obs/cycle_accounting.hpp"
#include "obs/host_perf.hpp"
#include "stats/counters.hpp"

#include <iosfwd>

namespace ccsim::stats {

/// Print a full breakdown of one run's counters (misses by class, updates
/// by class, network volume, memory-system activity).
void print_report(std::ostream& os, const Counters& c);

/// Print the cycle-accounting breakdown of one run: a stacked percentage
/// bar per category (summed over processors), write-buffer pressure, and
/// one latency summary line per occupied (construct, phase) histogram.
/// No-op when the snapshot is disabled.
void print_profile(std::ostream& os, const obs::ProfileSnapshot& p);

/// Print one run's host-performance telemetry: throughput, queue-depth
/// summary, allocation counters and the subsystem host-time shares.
/// No-op when the report is disabled.
void print_host(std::ostream& os, const obs::HostPerfReport& h);

} // namespace ccsim::stats
