// Human-readable run reports: categorized traffic summaries for examples
// and the protocol-explorer tool, plus the --profile cycle-accounting table.
#pragma once

#include "obs/cycle_accounting.hpp"
#include "obs/host_perf.hpp"
#include "obs/sharing.hpp"
#include "stats/counters.hpp"

#include <cstddef>
#include <iosfwd>

namespace ccsim::stats {

/// Print a full breakdown of one run's counters (misses by class, updates
/// by class, network volume, memory-system activity).
void print_report(std::ostream& os, const Counters& c);

/// Print the cycle-accounting breakdown of one run: a stacked percentage
/// bar per category (summed over processors), write-buffer pressure, and
/// one latency summary line per occupied (construct, phase) histogram.
/// No-op when the snapshot is disabled.
void print_profile(std::ostream& os, const obs::ProfileSnapshot& p);

/// Print one run's host-performance telemetry: throughput, queue-depth
/// summary, allocation counters and the subsystem host-time shares.
/// No-op when the report is disabled.
void print_host(std::ostream& os, const obs::HostPerfReport& h);

/// Print one run's sharing-pattern report: the pattern census, the top
/// `max_rows` blocks by activity, and the per-allocation aggregation with
/// projected WI/PU/CU costs and the advised protocol.
/// No-op when the report is disabled.
void print_sharing(std::ostream& os, const obs::SharingReport& r,
                   std::size_t max_rows = 16);

} // namespace ccsim::stats
