// Human-readable run reports: categorized traffic summaries for examples
// and the protocol-explorer tool.
#pragma once

#include "stats/counters.hpp"

#include <iosfwd>

namespace ccsim::stats {

/// Print a full breakdown of one run's counters (misses by class, updates
/// by class, network volume, memory-system activity).
void print_report(std::ostream& os, const Counters& c);

} // namespace ccsim::stats
