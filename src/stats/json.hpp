// Minimal streaming JSON writer and the counters -> JSON exporter.
//
// The writer tracks nesting and comma placement so callers only name keys
// and values; keys are emitted in call order, which makes every document
// this library produces byte-stable across runs (golden-file testable).
#pragma once

#include "stats/counters.hpp"
#include "stats/histogram.hpp"

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace ccsim::stats {

/// `s` with JSON string escaping applied (quotes, backslashes, control
/// characters); no surrounding quotes.
[[nodiscard]] std::string json_escape(std::string_view s);

class JsonWriter {
public:
  explicit JsonWriter(std::ostream& os) : os_(os) {}

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Key inside an object; follow with exactly one value or container.
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(unsigned v) { return value(static_cast<std::uint64_t>(v)); }
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(double v);
  JsonWriter& value(bool v);

  /// Emit preserialized JSON verbatim in value position.
  JsonWriter& raw(std::string_view json);

private:
  void comma();

  std::ostream& os_;
  std::vector<bool> first_{};  ///< per open container: nothing emitted yet
  bool pending_key_ = false;
};

/// Serialize one run's counters: misses by class, updates by class, network
/// volume and per-message-type profile, memory-system activity. Key order
/// is fixed (declaration order of the enums and structs).
void to_json(std::ostream& os, const Counters& c);
[[nodiscard]] std::string to_json(const Counters& c);

/// Serialize a latency histogram in value position: summary statistics
/// (n, mean, min, max, p50/p90/p99) plus the full occupied-bucket contents
/// (inclusive bounds and counts), so external tooling can re-bin and merge
/// distributions instead of being limited to our percentile choices.
void histogram_to_json(JsonWriter& w, const LatencyHistogram& h);

// ---------------------------------------------------------------------
// Minimal JSON reader (for tools that consume our own documents, e.g.
// tools/bench_compare diffing two bench-trajectory files). Accepts
// standard JSON; numbers are kept as doubles plus the exact uint64 when
// the text is a non-negative integer.
// ---------------------------------------------------------------------

class JsonValue {
public:
  enum class Kind : std::uint8_t { Null, Bool, Number, String, Array, Object };

  Kind kind = Kind::Null;
  bool boolean = false;
  double number = 0.0;
  std::uint64_t integer = 0;  ///< exact value when the text was 0..2^64-1
  bool is_integer = false;
  std::string string;
  std::vector<JsonValue> array;
  /// Insertion-ordered object members.
  std::vector<std::pair<std::string, JsonValue>> object;

  [[nodiscard]] const JsonValue* find(std::string_view key) const;
  /// find() that throws std::runtime_error naming the missing key.
  [[nodiscard]] const JsonValue& at(std::string_view key) const;
};

/// Parse one JSON document. Throws std::runtime_error (with byte offset)
/// on malformed input or trailing garbage.
[[nodiscard]] JsonValue parse_json(std::string_view text);

} // namespace ccsim::stats
