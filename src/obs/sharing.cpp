#include "obs/sharing.hpp"

#include "mem/shared_alloc.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>
#include <utility>

namespace ccsim::obs {

std::string_view to_string(SharingPattern p) noexcept {
  switch (p) {
    case SharingPattern::Private: return "private";
    case SharingPattern::ReadOnly: return "read-only";
    case SharingPattern::ReadMostly: return "read-mostly";
    case SharingPattern::Migratory: return "migratory";
    case SharingPattern::ProducerConsumer: return "producer-consumer";
    case SharingPattern::WidelyShared: return "widely-shared";
    case SharingPattern::FalseShared: return "false-shared";
    case SharingPattern::Mixed: return "mixed";
  }
  return "?";
}

proto::Protocol cheapest_protocol(double wi, double pu, double cu) noexcept {
  proto::Protocol best = proto::Protocol::WI;
  double c = wi;
  if (pu < c) {
    best = proto::Protocol::PU;
    c = pu;
  }
  if (cu < c) best = proto::Protocol::CU;
  return best;
}

double SharingReport::total_cost(proto::Protocol p) const noexcept {
  switch (p) {
    case proto::Protocol::WI: return total_wi;
    case proto::Protocol::PU: return total_pu;
    case proto::Protocol::CU: return total_cu;
    case proto::Protocol::Hybrid: break;
  }
  return 0.0;
}

SharingTracker::SharingTracker(unsigned nprocs, unsigned cu_threshold,
                               SharingConfig cfg)
    : nprocs_(nprocs), cu_threshold_(cu_threshold), cfg_(cfg) {
  if (nprocs == 0 || nprocs > 32)
    throw std::invalid_argument(
        "SharingTracker: nprocs must be in [1, 32] (32-bit accessor sets)");
}

void SharingTracker::on_read(NodeId reader, Addr a) {
  if (!mem::is_shared(a)) return;
  BlockStats& s = blocks_[mem::block_of(a)];
  const std::uint32_t bit = 1u << reader;
  const unsigned w = mem::word_of(a);
  s.readers |= bit;
  s.word_readers[w] |= bit;
  s.cur_readers |= bit;
  s.pending_unread[w] &= ~bit;  // the delivered update was useful after all
  ++s.reads;
  // CU replay: a read resets the node's competitive counter; a read on a
  // copy whose counter already tripped is the re-fetch CU pays for.
  if ((s.copies & bit) == 0) {
    s.copies |= bit;
  } else if ((s.cu_live & bit) == 0) {
    ++s.cu_refetches;
  }
  s.cu_live |= bit;
  s.cu_streak[reader] = 0;
}

void SharingTracker::close_interval(BlockStats& s, NodeId next_writer) {
  ++s.intervals;
  const auto n = static_cast<std::uint64_t>(std::popcount(s.cur_readers));
  s.reader_episodes += n;
  s.max_interval_readers = std::max(s.max_interval_readers, n);
  if (n != 0) ++s.intervals_with_readers;
  if (next_writer != s.last_writer) {
    ++s.handoffs;
    if (next_writer != kInvalidNode &&
        ((s.cur_readers | s.prev_readers) & (1u << next_writer)) != 0)
      ++s.migratory_handoffs;
    ++s.runs;
    s.max_run = std::max(s.max_run, s.run_len);
    s.run_len = 0;
  }
}

void SharingTracker::on_global_write(NodeId writer, Addr a) {
  if (!mem::is_shared(a)) return;
  BlockStats& s = blocks_[mem::block_of(a)];
  const std::uint32_t bit = 1u << writer;
  if (s.writes != 0) close_interval(s, writer);
  s.prev_readers = s.cur_readers;
  s.cur_readers = 0;
  s.last_writer = writer;
  ++s.run_len;
  s.writers |= bit;
  s.word_writers[mem::word_of(a)] |= bit;
  ++s.writes;
  s.sharers_at_write +=
      static_cast<std::uint64_t>(std::popcount((s.readers | s.writers) & ~bit));
  // PU replay: the write is multicast to every other node that ever held a
  // copy. CU replay: only copies whose counter has not tripped receive it;
  // `threshold` consecutive unread updates trip the counter (reads reset
  // it in on_read, so the streaks already reflect reads since the previous
  // write).
  s.pu_updates += static_cast<std::uint64_t>(std::popcount(s.copies & ~bit));
  const std::uint8_t t =
      cu_threshold_ != 0
          ? static_cast<std::uint8_t>(std::min(cu_threshold_, 255u))
          : std::uint8_t{4};
  std::uint32_t targets = s.cu_live & ~bit;
  while (targets != 0) {
    const unsigned n = static_cast<unsigned>(std::countr_zero(targets));
    targets &= targets - 1;
    ++s.cu_updates;
    if (++s.cu_streak[n] >= t) s.cu_live &= ~(1u << n);
  }
  s.copies |= bit;
  s.cu_live |= bit;
  s.cu_streak[writer] = 0;
}

void SharingTracker::on_local_write(NodeId writer, Addr a) {
  // The matching global-order point fires on_global_write at the home; here
  // only the accessor bitmaps learn about the writer (idempotent).
  if (!mem::is_shared(a)) return;
  BlockStats& s = blocks_[mem::block_of(a)];
  const std::uint32_t bit = 1u << writer;
  s.writers |= bit;
  s.word_writers[mem::word_of(a)] |= bit;
  // The writer's own copy is fresh by definition.
  s.copies |= bit;
  s.cu_live |= bit;
  s.cu_streak[writer] = 0;
}

void SharingTracker::on_writable(NodeId node, mem::BlockAddr b) {
  (void)node;
  ++blocks_[b].writable_grants;
}

void SharingTracker::on_poke(Addr a) {
  // Pre-run initialization is not program sharing; deliberately ignored.
  (void)a;
}

void SharingTracker::on_inval_sent(NodeId dst, Addr trigger, NodeId writer) {
  (void)dst, (void)writer;
  ++blocks_[mem::block_of(trigger)].invals_sent;
}

void SharingTracker::on_update_delivered(NodeId dst, Addr a, NodeId writer,
                                         Delivery d) {
  (void)writer;
  BlockStats& s = blocks_[mem::block_of(a)];
  const std::uint32_t bit = 1u << dst;
  const unsigned w = mem::word_of(a);
  ++s.updates_delivered;
  switch (d) {
    case Delivery::Applied:
      // A still-pending bit means the previous delivery to this cache was
      // overwritten before anyone read it: wasted.
      if ((s.pending_unread[w] & bit) != 0) ++s.updates_wasted;
      s.pending_unread[w] |= bit;
      break;
    case Delivery::Stale:
      ++s.updates_wasted;
      break;
    case Delivery::Dropped:
      ++s.updates_dropped;
      break;
  }
}

void SharingTracker::finalize() {
  if (finalized_) return;
  finalized_ = true;
  for (auto& [b, s] : blocks_) {
    (void)b;
    if (s.writes != 0) {
      close_interval(s, kInvalidNode);
      if (s.run_len != 0) {
        ++s.runs;
        s.max_run = std::max(s.max_run, s.run_len);
        s.run_len = 0;
      }
    }
    for (unsigned w = 0; w < mem::kWordsPerBlock; ++w) {
      s.updates_wasted +=
          static_cast<std::uint64_t>(std::popcount(s.pending_unread[w]));
      s.pending_unread[w] = 0;
    }
  }
}

SharingPattern SharingTracker::classify(const BlockStats& s) const {
  const std::uint32_t acc = s.readers | s.writers;
  if (std::popcount(acc) <= 1) return SharingPattern::Private;
  if (s.writes == 0) return SharingPattern::ReadOnly;

  bool word_multi = false;
  std::uint32_t word_owners = 0;
  for (unsigned w = 0; w < mem::kWordsPerBlock; ++w) {
    const std::uint32_t wa = s.word_readers[w] | s.word_writers[w];
    if (wa == 0) continue;
    if (std::popcount(wa) > 1) word_multi = true;
    word_owners |= wa;
  }
  if (!word_multi && std::popcount(word_owners) >= 2)
    return SharingPattern::FalseShared;

  if (s.readers != 0 && (s.writers & s.readers) == 0)
    return SharingPattern::ProducerConsumer;

  const double avg_r = s.intervals != 0
                           ? static_cast<double>(s.reader_episodes) /
                                 static_cast<double>(s.intervals)
                           : 0.0;
  if (std::popcount(s.writers) >= 2 && s.handoffs != 0 &&
      2 * s.migratory_handoffs >= s.handoffs &&
      avg_r <= cfg_.migratory_readers_max)
    return SharingPattern::Migratory;
  // Read-mostly outranks widely-shared: a block with rare writes is
  // read-mostly however many nodes read it. Raw reads (not episodes)
  // carry the signal -- episodes are capped at nprocs per interval, so an
  // episode ratio above `widely_avg_readers` would always have triggered
  // the widely-shared test instead.
  if (static_cast<double>(s.reads) >=
      cfg_.read_mostly_ratio * static_cast<double>(s.writes))
    return SharingPattern::ReadMostly;
  if (avg_r >= cfg_.widely_avg_readers ||
      s.max_interval_readers >=
          std::max<std::uint64_t>(cfg_.widely_min_readers, nprocs_ / 2))
    return SharingPattern::WidelyShared;
  return SharingPattern::Mixed;
}

void SharingTracker::project(const BlockStats& s, double& wi, double& pu,
                             double& cu) const {
  const SharingCostParams& c = cfg_.cost;
  const int accessors = std::popcount(s.readers | s.writers);
  const double w = static_cast<double>(s.writes);
  const double r = static_cast<double>(s.reader_episodes);

  if (accessors <= 1) {
    // One node: WI writes locally after one ownership acquisition; PU pays
    // one write-through before the private-block grant; CU (no private
    // mode) writes through forever.
    wi = (s.writes != 0 ? c.write_acq : 0.0) + w * c.local_write;
    pu = (s.writes != 0 ? c.write_through : 0.0) + w * c.local_write;
    cu = w * c.write_through;
    return;
  }

  // WI: a write pays the exclusive acquisition when ownership moves (a new
  // run) or when readers demoted the owner since the last write; same-owner
  // writes inside an undisturbed run are free. The two conditions overlap
  // heavily in practice (a reader episode usually precedes the handoff), so
  // charging their max rather than their sum avoids double-billing one
  // acquisition. Each reader episode then re-fetches the block; the
  // invalidation fan-out itself rides inside `write_acq`.
  wi = static_cast<double>(std::max(s.runs, s.intervals_with_readers)) *
           c.write_acq +
       r * c.read_miss;

  // PU: each write goes through the home and is multicast to every other
  // node holding a copy (the replayed multicast set).
  pu = w * c.write_through + static_cast<double>(s.pu_updates) * c.update;

  // CU: the replayed competitive counter says exactly which of those
  // deliveries survive the threshold and how many re-fetches the drops
  // cost (see SharingCostParams for why `cu_update` and `refetch` are
  // dearer than their PU/WI counterparts).
  cu = w * c.write_through +
       static_cast<double>(s.cu_updates) * c.cu_update +
       static_cast<double>(s.cu_refetches) * c.refetch;
}

SharingReport SharingTracker::report(const mem::SharedAllocator* alloc) const {
  SharingReport r;
  r.on = true;
  r.nprocs = nprocs_;
  r.cu_threshold = cu_threshold_;
  r.blocks.reserve(blocks_.size());

  for (const auto& [b, s] : blocks_) {
    SharingReport::Row row;
    row.block = b;
    row.base = mem::block_base(b);
    if (alloc) row.name = alloc->name_of(row.base);
    row.accessors = static_cast<unsigned>(std::popcount(s.readers | s.writers));
    row.reader_count = static_cast<unsigned>(std::popcount(s.readers));
    row.writer_count = static_cast<unsigned>(std::popcount(s.writers));
    row.reads = s.reads;
    row.writes = s.writes;
    row.intervals = s.intervals;
    row.reader_episodes = s.reader_episodes;
    row.max_interval_readers = s.max_interval_readers;
    row.runs = s.runs;
    row.max_run = s.max_run;
    row.handoffs = s.handoffs;
    row.migratory_handoffs = s.migratory_handoffs;
    row.invals_sent = s.invals_sent;
    row.writable_grants = s.writable_grants;
    row.updates_delivered = s.updates_delivered;
    row.updates_wasted = s.updates_wasted;
    row.updates_dropped = s.updates_dropped;
    row.pu_updates = s.pu_updates;
    row.cu_updates = s.cu_updates;
    row.cu_refetches = s.cu_refetches;
    bool word_multi = false;
    for (unsigned w = 0; w < mem::kWordsPerBlock; ++w)
      if (std::popcount(s.word_readers[w] | s.word_writers[w]) > 1)
        word_multi = true;
    row.word_disjoint = !word_multi && row.accessors >= 2;
    row.pattern = classify(s);
    project(s, row.cost_wi, row.cost_pu, row.cost_cu);
    row.best = cheapest_protocol(row.cost_wi, row.cost_pu, row.cost_cu);

    r.total_wi += row.cost_wi;
    r.total_pu += row.cost_pu;
    r.total_cu += row.cost_cu;
    ++r.pattern_blocks[static_cast<std::size_t>(row.pattern)];
    r.blocks.push_back(std::move(row));
  }

  std::sort(r.blocks.begin(), r.blocks.end(),
            [](const SharingReport::Row& a, const SharingReport::Row& b) {
              if (a.activity() != b.activity()) return a.activity() > b.activity();
              return a.block < b.block;
            });

  // Aggregate per symbolic allocation: "barrier.sense+0x18" -> "barrier.sense".
  struct Agg {
    SharingReport::Alloc alloc;
    std::array<std::uint64_t, kSharingPatterns> activity_by_pattern{};
  };
  std::map<std::string, Agg> by_name;
  for (const SharingReport::Row& row : r.blocks) {
    std::string name = row.name.substr(0, row.name.find('+'));
    if (name.empty()) name = "(unnamed)";
    Agg& g = by_name[name];
    g.alloc.name = name;
    ++g.alloc.blocks;
    g.alloc.reads += row.reads;
    g.alloc.writes += row.writes;
    g.alloc.invals_sent += row.invals_sent;
    g.alloc.updates_wasted += row.updates_wasted;
    g.alloc.cost_wi += row.cost_wi;
    g.alloc.cost_pu += row.cost_pu;
    g.alloc.cost_cu += row.cost_cu;
    g.activity_by_pattern[static_cast<std::size_t>(row.pattern)] +=
        row.activity() + 1;  // +1 so zero-traffic blocks still vote
  }
  r.allocs.reserve(by_name.size());
  for (auto& [name, g] : by_name) {
    (void)name;
    std::size_t dominant = 0;
    for (std::size_t i = 1; i < kSharingPatterns; ++i)
      if (g.activity_by_pattern[i] > g.activity_by_pattern[dominant])
        dominant = i;
    g.alloc.pattern = static_cast<SharingPattern>(dominant);
    g.alloc.best =
        cheapest_protocol(g.alloc.cost_wi, g.alloc.cost_pu, g.alloc.cost_cu);
    r.allocs.push_back(std::move(g.alloc));
  }
  std::sort(r.allocs.begin(), r.allocs.end(),
            [](const SharingReport::Alloc& a, const SharingReport::Alloc& b) {
              const std::uint64_t aa = a.reads + a.writes;
              const std::uint64_t bb = b.reads + b.writes;
              if (aa != bb) return aa > bb;
              return a.name < b.name;
            });

  r.recommended = cheapest_protocol(r.total_wi, r.total_pu, r.total_cu);
  return r;
}

} // namespace ccsim::obs
