#include "obs/hot_blocks.hpp"

#include "mem/shared_alloc.hpp"

#include <algorithm>
#include <numeric>

namespace ccsim::obs {

std::uint64_t HotBlockTable::Cell::miss_total() const noexcept {
  return std::accumulate(misses.begin(), misses.end(), std::uint64_t{0});
}

std::uint64_t HotBlockTable::Cell::update_total() const noexcept {
  return std::accumulate(updates.begin(), updates.end(), std::uint64_t{0});
}

std::uint64_t HotBlockTable::Cell::score() const noexcept {
  return miss_total() + update_total() + invals + home_txns;
}

std::vector<HotBlockTable::Row> HotBlockTable::top(
    std::size_t k, const mem::SharedAllocator* alloc) const {
  std::vector<Row> rows;
  rows.reserve(table_.size());
  for (const auto& [b, cell] : table_) {
    Row r;
    r.block = b;
    r.base = mem::block_base(b);
    if (alloc) r.name = alloc->name_of(r.base);
    r.cell = cell;
    rows.push_back(std::move(r));
  }
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    const std::uint64_t sa = a.cell.score(), sb = b.cell.score();
    return sa != sb ? sa > sb : a.block < b.block;
  });
  if (rows.size() > k) rows.resize(k);
  return rows;
}

} // namespace ccsim::obs
