// Cycle-accounting profiler: a per-processor ledger attributing every
// simulated cycle to exactly one cost category.
//
// The paper explains *why* WI/PU/CU differ by decomposing construct latency
// into its causes (miss stalls, update/ack stalls at releases, spin-wait
// time). The ledger reproduces that decomposition mechanically: each
// processor's timeline is partitioned into charged spans. Attribution is a
// per-processor stack of scopes -- sync constructs push construct-wait
// scopes (lock/barrier/reduction), the CPU's memory awaitables push spans
// for each shared-memory operation, and the INNERMOST scope wins. Cycles
// outside any scope are compute. Because every charge advances the
// processor's accounted-until watermark and finalize() charges the tail,
// the conservation invariant
//
//     sum over categories == wall cycles          (per processor, exact)
//
// holds by construction and is asserted by tests/test_cycle_accounting.
//
// Memory-operation spans resolve their category at completion time:
//   - loads: <= hit latency -> inherit the enclosing scope (a cached poll
//     inside a lock spin is lock-wait, not a miss); longer -> the miss
//     class the classifier reported for the block (cold / true / false /
//     eviction / drop), or miss_other for unclassified read stalls
//     (in-flight-transaction merges, write-buffer overlap waits);
//   - stores: beyond the 1-cycle buffer accept -> wb_full (under SC this
//     also covers the chained global-perform wait);
//   - fences: release-ack stall (drain + invalidation/update acks);
//   - flushes: release_ack (they wait for the block's writes to perform);
//   - atomics: beyond the local read-modify-write cost -> net_queue (the
//     remote round-trip: network latency plus home-side queueing).
//
// Everything here is passive bookkeeping driven by existing events -- no
// events are scheduled, so enabling the profiler cannot perturb timing,
// and a null ledger pointer makes every hook a no-op.
#pragma once

#include "sim/event_queue.hpp"
#include "sim/types.hpp"
#include "stats/counters.hpp"
#include "stats/histogram.hpp"

#include <array>
#include <cstdint>
#include <string_view>
#include <vector>

namespace ccsim::obs {

enum class CycleCat : std::uint8_t {
  Compute,        ///< instruction execution, cache hits, local think time
  MissCold,       ///< read stall, classifier said cold-start miss
  MissTrue,       ///< read stall, true-sharing miss
  MissFalse,      ///< read stall, false-sharing miss
  MissEvict,      ///< read stall, eviction miss
  MissDrop,       ///< read stall, competitive-update drop miss
  MissOther,      ///< read stall without a classified miss (merges, races)
  WbFull,         ///< store stalled on a full write buffer
  ReleaseAck,     ///< fence/flush waiting for drains and coherence acks
  LockWait,       ///< inside a lock acquire/release, not otherwise attributed
  BarrierWait,    ///< inside a barrier episode, not otherwise attributed
  ReductionWait,  ///< inside a reduction combine, not otherwise attributed
  NetQueue,       ///< remote atomic round-trips (network + home queueing)
  Count_
};
inline constexpr std::size_t kCycleCats = static_cast<std::size_t>(CycleCat::Count_);

[[nodiscard]] std::string_view to_string(CycleCat c) noexcept;

/// Construct phases with a latency histogram each (construct x phase).
enum class SyncPhase : std::uint8_t {
  LockAcquire,      ///< lock->acquire() entry to grant
  LockHold,         ///< grant to the matching release() entry
  LockRelease,      ///< release() entry to completion
  BarrierArrive,    ///< signalling our arrival (fan-in contribution)
  BarrierDepart,    ///< waiting for / propagating the wakeup
  ReductionCombine, ///< folding the local value into the global result
  Count_
};
inline constexpr std::size_t kSyncPhases = static_cast<std::size_t>(SyncPhase::Count_);

[[nodiscard]] std::string_view to_string(SyncPhase p) noexcept;

/// Immutable copy of one run's accounting, taken after Machine::run.
struct ProfileSnapshot {
  Cycle wall = 0;  ///< 0 means profiling was off
  /// per_proc[p][cat]: cycles processor p spent in that category.
  std::vector<std::array<Cycle, kCycleCats>> per_proc;
  /// One latency distribution per (construct, phase) pair.
  std::array<stats::LatencyHistogram, kSyncPhases> phases;
  /// Write-buffer pressure, aggregated over all nodes.
  std::uint64_t wb_peak = 0;    ///< deepest observed occupancy of any buffer
  std::uint64_t wb_pushes = 0;  ///< stores accepted into any buffer

  [[nodiscard]] bool enabled() const noexcept { return !per_proc.empty(); }
  /// Category totals summed over processors.
  [[nodiscard]] std::array<Cycle, kCycleCats> totals() const noexcept;
  /// True if every processor's categories sum exactly to `wall`.
  [[nodiscard]] bool conserved() const noexcept;
};

class CycleLedger {
public:
  CycleLedger(unsigned nprocs, const sim::EventQueue& q);

  [[nodiscard]] Cycle now() const noexcept { return q_.now(); }

  // --- scope stack (categories) ---------------------------------------

  /// Charge the elapsed gap to the enclosing scope and push `c`.
  void begin(NodeId p, CycleCat c);
  /// Charge the span since the last charge to the scope's own category.
  void end(NodeId p);
  /// As end(), but charge to `c` instead (late-resolved spans).
  void end_as(NodeId p, CycleCat c);
  /// As end(), but charge to the ENCLOSING scope (fast ops that should not
  /// steal cycles from the construct they serve).
  void end_inherit(NodeId p);
  /// Spans at or below `fast_cycles` long inherit the enclosing category
  /// (the op completed at its uncontended cost); longer spans charge their
  /// own category (the excess is the stall being measured).
  void end_fast(NodeId p, Cycle fast_cycles);

  // --- memory-operation spans (resolve on completion) ------------------

  /// A load span for `a` starts now (also used by spin polls).
  void begin_load(NodeId p, Addr a);
  /// The load span completes; `hit_cycles` is the cost below which the
  /// span counts as a hit and inherits the enclosing category.
  void end_load(NodeId p, Cycle hit_cycles);
  /// The classifier classified a miss by `p` at `a` (called mid-span).
  void note_miss(NodeId p, Addr a, stats::MissClass c);

  // --- construct phases -------------------------------------------------

  void phase_record(NodeId p, SyncPhase ph, Cycle dur);
  /// A release began: close the implicit hold phase opened by the last
  /// acquire (no-op if no hold is open, e.g. hand-written release-only use).
  void note_release_begin(NodeId p);

  // --- lifecycle --------------------------------------------------------

  /// Charge every processor's tail (to its current scope, normally
  /// compute) up to `end`. Call exactly once, after the run completes.
  void finalize(Cycle end);

  [[nodiscard]] ProfileSnapshot snapshot() const;

private:
  struct Scope {
    CycleCat cat;
    Cycle start;
    bool is_load = false;
    Addr load_addr = 0;
    bool miss_noted = false;
    CycleCat miss_cat = CycleCat::MissOther;
  };
  struct Proc {
    Cycle accounted = 0;  ///< timeline charged up to here
    std::vector<Scope> stack;
    std::array<Cycle, kCycleCats> by{};
    Cycle hold_since = 0;
    bool holding = false;
  };

  void charge(Proc& pr, CycleCat c, Cycle until);
  [[nodiscard]] CycleCat enclosing(const Proc& pr) const noexcept {
    return pr.stack.empty() ? CycleCat::Compute : pr.stack.back().cat;
  }

  const sim::EventQueue& q_;
  std::vector<Proc> procs_;
  std::array<stats::LatencyHistogram, kSyncPhases> phases_;
  bool finalized_ = false;
};

/// RAII category scope for construct implementations. Null ledger = no-op.
class ScopedWait {
public:
  ScopedWait(CycleLedger* l, NodeId p, CycleCat c) : l_(l), p_(p) {
    if (l_) l_->begin(p_, c);
  }
  ~ScopedWait() {
    if (l_) l_->end(p_);
  }
  ScopedWait(const ScopedWait&) = delete;
  ScopedWait& operator=(const ScopedWait&) = delete;

private:
  CycleLedger* l_;
  NodeId p_;
};

/// RAII scope that both attributes cycles to `c` and records the scope's
/// wall duration into the (construct, phase) histogram.
class ScopedPhase {
public:
  ScopedPhase(CycleLedger* l, NodeId p, CycleCat c, SyncPhase ph)
      : l_(l), p_(p), ph_(ph) {
    if (!l_) return;
    l_->begin(p_, c);
    start_ = l_->now();
    if (ph_ == SyncPhase::LockRelease) l_->note_release_begin(p_);
  }
  ~ScopedPhase() {
    if (!l_) return;
    l_->end(p_);
    l_->phase_record(p_, ph_, l_->now() - start_);
  }
  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

private:
  CycleLedger* l_;
  NodeId p_;
  SyncPhase ph_;
  Cycle start_ = 0;
};

} // namespace ccsim::obs
