// Structured event tracing: TraceEvent records dispatched to pluggable sinks.
//
// Every controller logs its message receptions and key decisions through a
// TraceLog when one is attached (MachineConfig::trace). Events are structured
// records (cycle, node, category, message type, address, small payload), not
// preformatted strings, so sinks can render them any way they like:
//
//   - the built-in bounded ring of formatted lines (always on; cheap enough
//     to leave enabled for debugging runs, and attached to deadlock reports
//     by Machine::run so failures are diagnosable post-mortem);
//   - TextSink     -- the same formatted lines streamed to an ostream;
//   - JsonlSink    -- one JSON object per line, for scripts (obs/jsonl_sink.hpp);
//   - PerfettoSink -- Chrome trace_event JSON with per-node tracks and
//     message-lifetime flow arrows, loadable in chrome://tracing or
//     https://ui.perfetto.dev (obs/perfetto_sink.hpp).
//
// The network logs MsgSend/MsgRecv pairs joined by a flow id (one per
// injected message); controllers log their receptions and decisions as
// instant events on their node's track.
#pragma once

#include "net/message.hpp"
#include "sim/types.hpp"

#include <cstdarg>
#include <cstdio>
#include <deque>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace ccsim::obs {

struct IntervalSeries;   // obs/sampler.hpp
struct ProfileSnapshot;  // obs/cycle_accounting.hpp
struct SharingReport;    // obs/sharing.hpp

/// Trace categories; enable any subset.
enum class TraceCat : unsigned {
  Cache = 1u << 0,  ///< cache-controller message receptions / decisions
  Home = 1u << 1,   ///< directory/home message receptions
  Cpu = 1u << 2,    ///< processor-level operations (atomics, flushes)
  Net = 1u << 3,    ///< network injections and deliveries (flow arrows)
  All = 0xffffffffu,
};

[[nodiscard]] std::string_view to_string(TraceCat c) noexcept;

/// What a TraceEvent describes.
enum class EventKind : std::uint8_t {
  Note,     ///< free-form text (the printf-style TraceLog::log path)
  MsgSend,  ///< message injected into the network at `node`, bound for `peer`
  MsgRecv,  ///< message delivered to / handled by `node`, sent by `peer`
};

/// One structured trace record. `cycle` is when the event starts; `dur` is
/// its extent (port occupancy for network events, 0 for instants). `flow`
/// joins a MsgSend to its MsgRecv (0 = not part of a flow).
struct TraceEvent {
  Cycle cycle = 0;
  Cycle dur = 0;
  TraceCat cat = TraceCat::Cpu;
  EventKind kind = EventKind::Note;
  NodeId node = kInvalidNode;
  NodeId peer = kInvalidNode;
  bool has_msg = false;
  net::MsgType msg{};
  Addr addr = 0;
  std::uint64_t payload = 0;
  std::uint64_t flow = 0;
  std::string text;
};

/// Convenience: the structured record for a controller handling `msg`.
[[nodiscard]] inline TraceEvent recv_event(TraceCat cat, Cycle now, NodeId node,
                                           const net::Message& msg) {
  TraceEvent e;
  e.cycle = now;
  e.cat = cat;
  e.kind = EventKind::MsgRecv;
  e.node = node;
  e.peer = msg.src;
  e.has_msg = true;
  e.msg = msg.type;
  e.addr = msg.addr;
  e.payload = msg.payload;
  return e;
}

/// One line of human-readable text for an event ("t=42 [cache] cache3 <-
/// GetS addr=0x10000000 from 1"), the ring / text-sink / echo rendering.
[[nodiscard]] std::string format_event(const TraceEvent& e);

/// Where structured events go. Sinks are registered on a TraceLog and
/// receive every unmasked event in simulation order. File-writing sinks
/// group events into runs: begin_run() starts a new labeled section (a new
/// Perfetto process, a JSONL run marker, a text header) and finish() flushes
/// trailers; both are optional for sinks that need neither.
class TraceSink {
public:
  virtual ~TraceSink() = default;
  virtual void begin_run(const std::string& label) { (void)label; }
  virtual void on_event(const TraceEvent& e) = 0;
  virtual void finish() {}

  // Optional run-scoped attachments, delivered after the run completes and
  // before the next begin_run()/finish(). Sinks that can render counter
  // tracks (Perfetto) override; everyone else ignores them.

  /// The run's interval-sampled counter deltas.
  virtual void on_samples(const IntervalSeries& s) { (void)s; }
  /// The run's cycle-accounting snapshot.
  virtual void on_profile(const ProfileSnapshot& p) { (void)p; }
  /// The run's sharing-pattern report.
  virtual void on_sharing(const SharingReport& r) { (void)r; }
};

/// Formatted text lines streamed to an ostream (--trace-format ring).
class TextSink : public TraceSink {
public:
  explicit TextSink(std::ostream& os) : os_(os) {}
  void begin_run(const std::string& label) override;
  void on_event(const TraceEvent& e) override;

private:
  std::ostream& os_;
};

/// Collects structured events and fans them out: always into the bounded
/// ring of formatted lines, optionally to an echo stream and to registered
/// sinks. Category masking filters retention/dispatch but every event --
/// masked or not, evicted or not -- counts toward total_events().
class TraceLog {
public:
  explicit TraceLog(unsigned mask = static_cast<unsigned>(TraceCat::All),
                    std::size_t ring_capacity = 512)
      : mask_(mask), capacity_(ring_capacity) {}

  [[nodiscard]] bool on(TraceCat c) const noexcept {
    return (mask_ & static_cast<unsigned>(c)) != 0;
  }
  void set_mask(unsigned mask) noexcept { mask_ = mask; }

  /// Echo every retained event to `f` as it is logged (nullptr = ring only).
  void set_echo(std::FILE* f) noexcept { echo_ = f; }

  /// Register an additional sink (not owned; must outlive the log).
  void add_sink(TraceSink* s) { if (s) sinks_.push_back(s); }

  /// Record one structured event; dispatched unless the category is masked.
  void event(const TraceEvent& e);

  /// printf-style free-form event (kind = Note); masked categories are
  /// still counted but neither retained nor dispatched.
  void log(TraceCat c, Cycle now, const char* fmt, ...)
#if defined(__GNUC__)
      __attribute__((format(printf, 4, 5)))
#endif
      ;

  /// Fresh id joining one message's MsgSend to its MsgRecv.
  [[nodiscard]] std::uint64_t next_flow_id() noexcept { return ++flow_seq_; }

  [[nodiscard]] const std::deque<std::string>& recent() const noexcept {
    return ring_;
  }
  /// Every event ever logged, including masked-off and ring-evicted ones.
  [[nodiscard]] std::size_t total_events() const noexcept { return total_; }

  /// The last `n` retained events joined with newlines (deadlock reports).
  [[nodiscard]] std::string tail(std::size_t n) const;

  void clear() {
    ring_.clear();
    total_ = 0;
  }

private:
  unsigned mask_;
  std::size_t capacity_;
  std::deque<std::string> ring_;
  std::size_t total_ = 0;
  std::uint64_t flow_seq_ = 0;
  std::FILE* echo_ = nullptr;
  std::vector<TraceSink*> sinks_;
};

/// Trace output renderings selectable on bench command lines.
enum class TraceFormat : std::uint8_t { Ring, Jsonl, Perfetto };

} // namespace ccsim::obs
