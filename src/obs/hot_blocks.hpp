// Hot-block attribution: which cache lines cause the traffic.
//
// The paper's counters say HOW MUCH false sharing or proliferation a run
// suffered; this table says WHERE. Every classified miss (by MissClass),
// classified update (by UpdateClass), invalidation, and home-directory
// transaction is attributed to its block address, and the top-K offenders
// are reported with symbolic names resolved through the shared allocator
// ("mcs.qnodes+0x10" instead of 0x10000040).
//
// Attribution rides the existing classifier hooks, so it is exact by
// construction (same classification, same counts) and costs one hash-map
// update per classified event -- only when a table is attached.
#pragma once

#include "mem/address.hpp"
#include "sim/types.hpp"
#include "stats/counters.hpp"

#include <array>
#include <string>
#include <unordered_map>
#include <vector>

namespace ccsim::mem {
class SharedAllocator;
}

namespace ccsim::obs {

class HotBlockTable {
public:
  /// Per-block traffic attribution.
  struct Cell {
    std::array<std::uint64_t, stats::kMissClasses> misses{};
    std::array<std::uint64_t, stats::kUpdateClasses> updates{};
    std::uint64_t invals = 0;
    std::uint64_t home_txns = 0;

    [[nodiscard]] std::uint64_t miss_total() const noexcept;
    [[nodiscard]] std::uint64_t update_total() const noexcept;
    /// Heat score ranking the report (classified events + coherence work;
    /// the components overlap -- a miss usually implies a home transaction
    /// -- so this is a ranking key, not a traffic volume).
    [[nodiscard]] std::uint64_t score() const noexcept;
  };

  struct Row {
    mem::BlockAddr block = 0;
    Addr base = 0;      ///< first byte address of the block
    std::string name;   ///< allocator-assigned name + offset ("" = unnamed)
    Cell cell;
  };

  void on_miss(mem::BlockAddr b, stats::MissClass c) {
    ++table_[b].misses[static_cast<std::size_t>(c)];
  }
  void on_update(mem::BlockAddr b, stats::UpdateClass c) {
    ++table_[b].updates[static_cast<std::size_t>(c)];
  }
  void on_inval(mem::BlockAddr b) { ++table_[b].invals; }
  void on_home_txn(mem::BlockAddr b) { ++table_[b].home_txns; }

  [[nodiscard]] std::size_t distinct_blocks() const noexcept {
    return table_.size();
  }

  /// The k hottest blocks, score-descending (block address breaks ties, so
  /// the report is deterministic). Names resolve via `alloc` when given.
  [[nodiscard]] std::vector<Row> top(std::size_t k,
                                     const mem::SharedAllocator* alloc) const;

private:
  std::unordered_map<mem::BlockAddr, Cell> table_;
};

} // namespace ccsim::obs
