// Host-performance telemetry: measure the simulator itself, not the guest.
//
// Every other observability layer (traces, cycle ledgers, interval samples)
// attributes *simulated* cycles. This subsystem is the same cost-accounting
// idea applied one level down: how fast does the host execute the discrete-
// event loop, where does host time go, and how hard is the event queue being
// worked? It exists so simulator-core optimizations (calendar queue,
// allocation pooling, delivery batching) can be *gated* like guest-latency
// regressions instead of eyeballed.
//
// What one run's HostPerfReport carries:
//   - throughput: simulated cycles/sec and executed events/sec, from one
//     steady_clock interval spanning Machine::run;
//   - event-queue statistics: a depth histogram sampled at deterministic
//     *simulated*-cycle boundaries (so the histogram itself is byte-stable
//     across hosts and runs) plus the true peak depth;
//   - allocation counters: protocol messages injected, coroutine frames
//     allocated, events scheduled -- the three allocation streams a pooling
//     PR would shrink;
//   - coarse host-time attribution over subsystems (event loop, protocol
//     handlers, network routing, obs hooks) via the same exclusive
//     scope-stack scheme as obs::CycleLedger, but charging host nanoseconds
//     instead of simulated cycles.
//
// The no-guest-perturbation rule: the collector is a pure observer. It
// schedules no events and is consulted only from host-side hook points, so
// every simulated result (cycles, counters, traffic, JSON minus the opt-in
// "host" section) is byte-identical with host metrics on or off. The
// converse does NOT hold -- host readings are wall-clock and vary run to
// run -- which is why the "host" section is opt-in and excluded from all
// byte-identity checks (docs/schema.md).
#pragma once

#include "sim/types.hpp"
#include "stats/histogram.hpp"

#include <array>
#include <chrono>
#include <cstdint>
#include <string_view>
#include <vector>

namespace ccsim::obs {

/// Where host time goes. Exclusive attribution: a scope's nanoseconds do
/// not include its nested scopes (Network time spent inside a Protocol
/// handler is charged to Network, not Protocol).
enum class HostCat : std::uint8_t {
  EventLoop,  ///< dispatch, coroutine execution, everything unattributed
  Protocol,   ///< cache/home controller message handling (Node::deliver)
  Network,    ///< routing + contention arithmetic (Network::send)
  ObsHooks,   ///< sampler boundary cuts, invariant final audit
  Count_
};
inline constexpr std::size_t kHostCats = static_cast<std::size_t>(HostCat::Count_);

[[nodiscard]] std::string_view to_string(HostCat c) noexcept;

/// Immutable host-side profile of one run, taken after Machine::run.
/// Assembled by Machine::host_report(); enabled() == false (all zeros)
/// unless ObsConfig::host_metrics was set.
struct HostPerfReport {
  /// Version of the serialized "host" JSON section (docs/schema.md).
  static constexpr std::uint64_t kSchema = 1;

  bool on = false;              ///< was the collector attached?
  std::uint64_t host_ns = 0;    ///< host nanoseconds spent inside run()
  Cycle sim_cycles = 0;         ///< simulated cycles the run covered
  std::uint64_t events_executed = 0;
  std::uint64_t events_scheduled = 0;

  // Allocation streams (targets of the pooling roadmap item).
  std::uint64_t messages = 0;   ///< protocol messages injected (incl. local)
  std::uint64_t frames = 0;     ///< coroutine frames allocated during run()

  // Event-queue statistics.
  stats::LatencyHistogram queue_depth;  ///< pending-event samples
  std::uint64_t queue_peak = 0;         ///< true peak over every event
  Cycle queue_sample_interval = 0;      ///< simulated-cycle sampling period

  /// Exclusive host-time attribution; sums to host_ns by construction.
  std::array<std::uint64_t, kHostCats> ns_by{};

  [[nodiscard]] bool enabled() const noexcept { return on; }
  [[nodiscard]] double seconds() const noexcept { return static_cast<double>(host_ns) * 1e-9; }
  [[nodiscard]] double ms() const noexcept { return static_cast<double>(host_ns) * 1e-6; }
  /// Simulated cycles per host second (0 when the run was too fast to time).
  [[nodiscard]] double cycles_per_sec() const noexcept;
  /// Executed events per host second.
  [[nodiscard]] double events_per_sec() const noexcept;
  /// Fraction of host_ns charged to `c`, in [0, 1].
  [[nodiscard]] double share(HostCat c) const noexcept;

  /// Fold another run's report into this one (ccperf aggregate row):
  /// times/counters add, the queue histogram merges, peak takes the max.
  void merge(const HostPerfReport& o);
};

/// The live collector one Machine owns while running. All hooks are
/// host-side only; a null collector pointer makes every hook a no-op
/// (same convention as CycleLedger / HotBlockTable).
class HostPerfCollector {
public:
  /// `queue_sample_interval` is in simulated cycles and must be > 0; the
  /// depth histogram gets one sample per elapsed interval boundary.
  explicit HostPerfCollector(Cycle queue_sample_interval);

  /// Stamp the run start; captures the thread's coroutine-frame baseline.
  void run_begin();
  /// Charge the tail and freeze the totals. Call exactly once.
  void run_end();

  /// Enter/leave an attribution scope (use ScopedHostCat).
  void push(HostCat c);
  void pop();

  /// Called before executing the event at simulated time `t` with `pending`
  /// events in the queue: tracks the peak and cuts one histogram sample per
  /// crossed interval boundary. Pure sim-time logic -- deterministic.
  void before_event(Cycle t, std::size_t pending);

  /// The collector's own readings (run_* / queue / frames). The Machine
  /// fills in the sim-side fields (cycles, events, messages).
  [[nodiscard]] HostPerfReport report() const;

private:
  using Clock = std::chrono::steady_clock;

  /// Charge now-last_ to `c` and advance the stamp.
  void charge(HostCat c);
  [[nodiscard]] HostCat current() const noexcept {
    return stack_.empty() ? HostCat::EventLoop : stack_.back();
  }

  Clock::time_point last_{};
  std::array<std::uint64_t, kHostCats> ns_by_{};
  std::vector<HostCat> stack_;

  Cycle interval_;
  Cycle next_boundary_;
  std::size_t last_pending_ = 0;
  stats::LatencyHistogram depth_;
  std::uint64_t peak_ = 0;

  std::uint64_t frames_at_begin_ = 0;
  std::uint64_t frames_ = 0;
  bool running_ = false;
  bool done_ = false;
};

/// RAII attribution scope. Null collector = no-op, so call sites stay
/// unconditional (mirrors obs::ScopedWait).
class ScopedHostCat {
public:
  ScopedHostCat(HostPerfCollector* c, HostCat cat) : c_(c) {
    if (c_) c_->push(cat);
  }
  ~ScopedHostCat() {
    if (c_) c_->pop();
  }
  ScopedHostCat(const ScopedHostCat&) = delete;
  ScopedHostCat& operator=(const ScopedHostCat&) = delete;

private:
  HostPerfCollector* c_;
};

} // namespace ccsim::obs
