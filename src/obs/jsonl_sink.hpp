// JSONL trace sink: one JSON object per line, one line per event.
//
// The machine-friendly flat rendering (--trace-format jsonl): trivially
// consumed by jq / pandas / awk without a JSON-array parser, and safe to
// tail while the simulation runs. Runs are delimited by {"run": <label>}
// marker lines.
#pragma once

#include "obs/trace.hpp"

#include <ostream>

namespace ccsim::obs {

class JsonlSink : public TraceSink {
public:
  explicit JsonlSink(std::ostream& os) : os_(os) {}

  void begin_run(const std::string& label) override;
  void on_event(const TraceEvent& e) override;
  void finish() override;

private:
  std::ostream& os_;
};

} // namespace ccsim::obs
