// Chrome trace_event / Perfetto JSON trace sink.
//
// Renders one simulation (or one bench's whole sweep) as a trace loadable
// in chrome://tracing or https://ui.perfetto.dev:
//
//   - each run is a "process" (pid), named by its series label, so a bench
//     sweep shows "tk/i P=4", "MCS/u P=8", ... as collapsible groups;
//   - each node is a "thread" (tid) inside its run: a per-node timeline;
//   - network messages are complete slices on the injecting and receiving
//     node's tracks (duration = port occupancy in cycles), joined by flow
//     arrows (ph "s"/"f" with a per-message id) that draw the message's
//     flight across tracks;
//   - controller and CPU events are instants on their node's track.
//   - interval-sampled counter deltas become counter tracks ("ph":"C"):
//     per-interval miss/update/network rates graphed under the run;
//   - a cycle-accounting snapshot becomes one counter record per processor
//     on its node track, stacking the run's category breakdown;
//   - a sharing report becomes one "sharing/<pattern>" counter track per
//     observed pattern, graphing how many blocks each pattern covers.
//
// Simulated cycles map 1:1 to trace microseconds. Events are buffered per
// run and sorted by timestamp before writing, so each track's `ts` sequence
// is monotone in the file -- some consumers (and our tests) require that.
#pragma once

#include "obs/cycle_accounting.hpp"
#include "obs/sampler.hpp"
#include "obs/sharing.hpp"
#include "obs/trace.hpp"

#include <ostream>
#include <vector>

namespace ccsim::obs {

class PerfettoSink : public TraceSink {
public:
  explicit PerfettoSink(std::ostream& os);

  void begin_run(const std::string& label) override;
  void on_event(const TraceEvent& e) override;
  void finish() override;
  void on_samples(const IntervalSeries& s) override;
  void on_profile(const ProfileSnapshot& p) override;
  void on_sharing(const SharingReport& r) override;

private:
  void flush_run();
  void emit(const std::string& json);

  std::ostream& os_;
  std::vector<TraceEvent> buf_;
  IntervalSeries samples_;
  ProfileSnapshot profile_;
  SharingReport sharing_;
  std::string run_label_;
  int pid_ = 0;
  bool first_record_ = true;
  bool finished_ = false;
};

} // namespace ccsim::obs
