// Runtime coherence-invariant checker: SWMR, directory/cache agreement,
// and shadow-memory data values.
//
// The checker is an opt-in observer (MachineConfig::obs.check_invariants)
// that the protocol engines notify synchronously at their transition
// points. It schedules no events and books no bank or port time, so a run
// with the checker enabled produces exactly the same simulated cycle
// counts as one without -- it can only throw.
//
// What is checked, and why exactly this set:
//
//  - Single writer (continuous). Whenever a cache installs a writable copy
//    (WI Modified, PU PrivateDirty) the checker asserts no other cache
//    holds a writable copy of the same block. Note the classic textbook
//    form -- "one writer OR n readers" -- is deliberately NOT asserted
//    instantaneously: under release consistency a WI home grants an
//    upgrade while its invalidations are still in flight, so a Modified
//    copy legitimately coexists with stale Shared copies for a bounded
//    window. Two *writable* copies are never legal at any instant, under
//    any of the paper's protocols.
//
//  - Value integrity (continuous). Every globally-ordered write deposits
//    the resulting word into a shadow memory and a bounded per-word value
//    history; locally-visible-but-not-yet-ordered writes (an update
//    protocol's write-through into its own cache) go into the history too.
//    Every load completion is checked for membership in that history
//    (never-written words must read zero). A read may legitimately be
//    *stale* under release consistency, but it can never be a value no
//    write produced -- membership catches lost updates applied to the
//    wrong word, mis-sized write-through, and corrupted fills, without
//    false positives on legal staleness.
//
//  - Directory/cache agreement + exact data audit (at quiescence). Strict
//    instantaneous agreement between a home's sharer set and the caches is
//    intentionally not asserted either: a WI home removes sharers when it
//    *sends* invalidations, an update home adds a sharer before the fill
//    arrives. Once the event queue drains, every in-flight transition has
//    landed, and the checker audits both directions: each directory entry
//    against the caches (Unowned => no copies; Shared/Update => sharer set
//    == exactly the caches holding Shared/ValidU; Exclusive/Private =>
//    owner holds the only, writable, copy) and each valid cache line
//    against its home's entry. The data audit then compares the
//    authoritative copy of every written word (owner's cache for
//    Exclusive/Private, home memory otherwise) -- and every other valid
//    copy -- against the shadow memory, word for word.
//
// Violations throw InvariantViolation carrying a structured report: the
// block (with its allocator-assigned symbolic name), its home, the
// directory entry, every cache holding the block, the shadow/observed
// values, and the last-N trace events touching that block (the checker
// registers as a TraceSink to keep a small per-block event ring).
#pragma once

#include "mem/address.hpp"
#include "mem/cache.hpp"
#include "mem/directory.hpp"
#include "mem/memory_module.hpp"
#include "mem/shared_alloc.hpp"
#include "obs/trace.hpp"
#include "sim/types.hpp"

#include <cstdint>
#include <deque>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

namespace ccsim::obs {

/// A coherence invariant failed. what() is the full structured report.
class InvariantViolation : public std::runtime_error {
public:
  using std::runtime_error::runtime_error;
};

class InvariantChecker : public TraceSink {
public:
  struct Config {
    /// Distinct values remembered per word for the read-membership check.
    /// Deep enough that a legally stale copy's value is always still
    /// remembered; a word is rarely overwritten 1024 times while one stale
    /// copy survives.
    std::size_t history_depth = 1024;
    /// Per-block ring of recent trace events attached to violation reports.
    std::size_t trace_tail = 12;
  };

  InvariantChecker() = default;
  explicit InvariantChecker(Config cfg) : cfg_(cfg) {}

  /// Name lookup for reports (optional; not owned).
  void set_alloc(const mem::SharedAllocator* a) noexcept { alloc_ = a; }

  /// Register one node's cache, home directory, and home memory. Pointers
  /// are not owned and must outlive the checker. Call once per node, in
  /// node-id order, before the run.
  void attach_node(mem::DataCache* cache, const mem::Directory* dir,
                   mem::MemoryModule* memory);

  // --- protocol notifications (all synchronous, all may throw) ----------

  /// A write became globally ordered (WI store into a Modified line, an
  /// update home's write-through, a PU store into a PrivateDirty line).
  /// `word` is the resulting value of the full word containing `addr`.
  void on_global_write(NodeId writer, Addr addr, std::uint64_t word);

  /// A write became visible in `writer`'s own cache but is not (yet) the
  /// globally ordered value: an update protocol's local write-through, or
  /// an Update message applied to a copy. History only; no shadow update.
  void on_local_write(NodeId writer, Addr addr, std::uint64_t word);

  /// A load completed. `word` is the full word containing `addr` as the
  /// reader observed it. Checks membership in the word's value history.
  void on_read(NodeId reader, Addr addr, std::uint64_t word);

  /// `node`'s cache now holds a writable copy of `b` (Modified or
  /// PrivateDirty). Checks single-writer against every other cache.
  void on_writable(NodeId node, mem::BlockAddr b);

  /// Machine::poke wrote simulated memory before the run.
  void on_poke(Addr addr, std::uint64_t word);

  /// Full directory/cache agreement + shadow data audit. Call only at
  /// quiescence (event queue drained, all programs complete).
  void final_audit();

  /// Total individual invariant checks performed (reporting aid).
  [[nodiscard]] std::uint64_t checks() const noexcept { return checks_; }

  // --- TraceSink (per-block event ring for reports) ---------------------
  void on_event(const TraceEvent& e) override;

private:
  struct NodeView {
    mem::DataCache* cache = nullptr;
    const mem::Directory* dir = nullptr;
    mem::MemoryModule* memory = nullptr;
  };
  struct History {
    std::vector<std::uint64_t> values;  ///< ring, newest at (head-1)
    std::size_t head = 0;
    bool wrapped = false;
  };

  void record(Addr word_addr, std::uint64_t word);
  [[nodiscard]] bool known_value(Addr word_addr, std::uint64_t word) const;

  /// All caches currently holding block `b`, with their line states.
  [[nodiscard]] std::vector<std::pair<NodeId, mem::LineState>> holders(
      mem::BlockAddr b) const;

  [[nodiscard]] std::string describe_block(mem::BlockAddr b) const;
  [[noreturn]] void fail(mem::BlockAddr b, const std::string& what) const;

  void audit_entry(NodeId home, mem::BlockAddr b, const mem::DirEntry& e);
  void audit_data(NodeId home, mem::BlockAddr b, const mem::DirEntry& e);

  Config cfg_{};
  const mem::SharedAllocator* alloc_ = nullptr;
  std::vector<NodeView> nodes_;
  std::unordered_map<Addr, std::uint64_t> shadow_;  ///< word addr -> value
  std::unordered_map<Addr, History> history_;
  std::unordered_map<mem::BlockAddr, std::deque<std::string>> recent_;
  std::uint64_t checks_ = 0;
};

} // namespace ccsim::obs
