#include "obs/jsonl_sink.hpp"

#include "stats/json.hpp"

#include <cstdio>

namespace ccsim::obs {

namespace {
std::string_view kind_name(EventKind k) noexcept {
  switch (k) {
    case EventKind::Note: return "note";
    case EventKind::MsgSend: return "send";
    case EventKind::MsgRecv: return "recv";
  }
  return "?";
}
} // namespace

void JsonlSink::begin_run(const std::string& label) {
  os_ << "{\"run\":\"" << stats::json_escape(label) << "\"}\n";
}

void JsonlSink::on_event(const TraceEvent& e) {
  stats::JsonWriter w(os_);
  w.begin_object();
  w.key("t").value(static_cast<std::uint64_t>(e.cycle));
  if (e.dur != 0) w.key("dur").value(static_cast<std::uint64_t>(e.dur));
  w.key("cat").value(to_string(e.cat));
  w.key("kind").value(kind_name(e.kind));
  if (e.node != kInvalidNode) w.key("node").value(e.node);
  if (e.peer != kInvalidNode) w.key("peer").value(e.peer);
  if (e.has_msg) {
    w.key("msg").value(net::to_string(e.msg));
    char addr[24];
    std::snprintf(addr, sizeof addr, "0x%llx",
                  static_cast<unsigned long long>(e.addr));
    w.key("addr").value(addr);
    if (e.payload != 0) w.key("pay").value(e.payload);
  }
  if (e.flow != 0) w.key("flow").value(e.flow);
  if (!e.text.empty()) w.key("text").value(e.text);
  w.end_object();
  os_ << '\n';
}

void JsonlSink::finish() { os_.flush(); }

} // namespace ccsim::obs
