#include "obs/host_perf.hpp"

#include "sim/task.hpp"

#include <cassert>
#include <stdexcept>

namespace ccsim::obs {

std::string_view to_string(HostCat c) noexcept {
  switch (c) {
    case HostCat::EventLoop: return "event_loop";
    case HostCat::Protocol: return "protocol";
    case HostCat::Network: return "network";
    case HostCat::ObsHooks: return "obs_hooks";
    case HostCat::Count_: break;
  }
  return "?";
}

double HostPerfReport::cycles_per_sec() const noexcept {
  return host_ns == 0 ? 0.0
                      : static_cast<double>(sim_cycles) / seconds();
}

double HostPerfReport::events_per_sec() const noexcept {
  return host_ns == 0 ? 0.0
                      : static_cast<double>(events_executed) / seconds();
}

double HostPerfReport::share(HostCat c) const noexcept {
  if (host_ns == 0) return 0.0;
  return static_cast<double>(ns_by[static_cast<std::size_t>(c)]) /
         static_cast<double>(host_ns);
}

void HostPerfReport::merge(const HostPerfReport& o) {
  on = on || o.on;
  host_ns += o.host_ns;
  sim_cycles += o.sim_cycles;
  events_executed += o.events_executed;
  events_scheduled += o.events_scheduled;
  messages += o.messages;
  frames += o.frames;
  queue_depth.merge(o.queue_depth);
  queue_peak = std::max(queue_peak, o.queue_peak);
  if (queue_sample_interval == 0) queue_sample_interval = o.queue_sample_interval;
  for (std::size_t i = 0; i < kHostCats; ++i) ns_by[i] += o.ns_by[i];
}

HostPerfCollector::HostPerfCollector(Cycle queue_sample_interval)
    : interval_(queue_sample_interval), next_boundary_(queue_sample_interval) {
  if (interval_ == 0)
    throw std::invalid_argument("host_perf: queue sample interval must be > 0");
}

void HostPerfCollector::run_begin() {
  assert(!running_ && !done_);
  running_ = true;
  frames_at_begin_ = sim::frames_allocated();
  last_ = Clock::now();
}

void HostPerfCollector::run_end() {
  assert(running_ && !done_);
  // Any scopes still open (an exception unwound past run_end) charge to
  // their own category on destruction; the tail here is event-loop time.
  charge(current());
  frames_ = sim::frames_allocated() - frames_at_begin_;
  running_ = false;
  done_ = true;
}

void HostPerfCollector::charge(HostCat c) {
  const Clock::time_point now = Clock::now();
  ns_by_[static_cast<std::size_t>(c)] += static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(now - last_).count());
  last_ = now;
}

void HostPerfCollector::push(HostCat c) {
  if (!running_) return;  // construction-time scopes (before run_begin)
  charge(current());
  stack_.push_back(c);
}

void HostPerfCollector::pop() {
  if (!running_ || stack_.empty()) return;
  charge(stack_.back());
  stack_.pop_back();
}

void HostPerfCollector::before_event(Cycle t, std::size_t pending) {
  if (pending > peak_) peak_ = pending;
  last_pending_ = pending;
  // One sample per elapsed boundary: a quiet stretch (no events for many
  // intervals) still contributes one sample per interval, carrying the
  // depth the queue held across it.
  while (t >= next_boundary_) {
    depth_.add(static_cast<Cycle>(pending));
    next_boundary_ += interval_;
  }
}

HostPerfReport HostPerfCollector::report() const {
  HostPerfReport r;
  r.on = true;
  r.ns_by = ns_by_;
  for (std::uint64_t ns : ns_by_) r.host_ns += ns;
  r.frames = frames_;
  r.queue_depth = depth_;
  r.queue_peak = peak_;
  r.queue_sample_interval = interval_;
  return r;
}

} // namespace ccsim::obs
