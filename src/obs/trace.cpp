#include "obs/trace.hpp"

#include <cinttypes>
#include <cstdio>

namespace ccsim::obs {

std::string_view to_string(TraceCat c) noexcept {
  switch (c) {
    case TraceCat::Cache: return "cache";
    case TraceCat::Home: return "home";
    case TraceCat::Cpu: return "cpu";
    case TraceCat::Net: return "net";
    case TraceCat::All: return "all";
  }
  return "?";
}

namespace {
/// Track prefix controllers use in formatted lines ("cache3", "home1").
std::string_view side_of(TraceCat c) noexcept {
  switch (c) {
    case TraceCat::Cache: return "cache";
    case TraceCat::Home: return "home";
    default: return "node";
  }
}
} // namespace

std::string format_event(const TraceEvent& e) {
  char buf[320];
  int n = std::snprintf(buf, sizeof buf, "t=%" PRIu64 " [%.*s] ", e.cycle,
                        static_cast<int>(to_string(e.cat).size()),
                        to_string(e.cat).data());
  const auto room = [&] { return sizeof buf - static_cast<std::size_t>(n); };
  switch (e.kind) {
    case EventKind::MsgRecv:
      n += std::snprintf(buf + n, room(), "%.*s%u <- %.*s addr=0x%" PRIx64 " from %u",
                         static_cast<int>(side_of(e.cat).size()), side_of(e.cat).data(),
                         e.node, static_cast<int>(net::to_string(e.msg).size()),
                         net::to_string(e.msg).data(), e.addr, e.peer);
      if (e.payload != 0)
        n += std::snprintf(buf + n, room(), " pay=%" PRIu64, e.payload);
      break;
    case EventKind::MsgSend:
      n += std::snprintf(buf + n, room(), "node%u -> %.*s addr=0x%" PRIx64 " to %u",
                         e.node, static_cast<int>(net::to_string(e.msg).size()),
                         net::to_string(e.msg).data(), e.addr, e.peer);
      break;
    case EventKind::Note:
      n += std::snprintf(buf + n, room(), "%s", e.text.c_str());
      break;
  }
  return std::string(buf, static_cast<std::size_t>(n));
}

void TextSink::begin_run(const std::string& label) {
  os_ << "# run: " << label << '\n';
}

void TextSink::on_event(const TraceEvent& e) { os_ << format_event(e) << '\n'; }

void TraceLog::event(const TraceEvent& e) {
  ++total_;  // masked and ring-evicted events still count
  if (!on(e.cat)) return;
  std::string line = format_event(e);
  if (echo_) std::fprintf(echo_, "%s\n", line.c_str());
  ring_.push_back(std::move(line));
  if (ring_.size() > capacity_) ring_.pop_front();
  for (TraceSink* s : sinks_) s->on_event(e);
}

void TraceLog::log(TraceCat c, Cycle now, const char* fmt, ...) {
  if (!on(c)) {
    ++total_;
    return;
  }
  char buf[256];
  std::va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, args);
  va_end(args);

  TraceEvent e;
  e.cycle = now;
  e.cat = c;
  e.kind = EventKind::Note;
  e.text = buf;
  event(e);
}

std::string TraceLog::tail(std::size_t n) const {
  std::string out;
  const std::size_t start = ring_.size() > n ? ring_.size() - n : 0;
  for (std::size_t i = start; i < ring_.size(); ++i) {
    out += ring_[i];
    out += '\n';
  }
  return out;
}

} // namespace ccsim::obs
