// Cycle-interval metrics sampling.
//
// An IntervalSampler snapshots the live stats::Counters every N cycles and
// stores the per-interval deltas as a time series, so a figure can show how
// the miss/update class composition evolves over the lifetime of a lock,
// barrier, or reduction loop instead of one flattened end-of-run total.
//
// The Machine drives it from the event loop: before executing any event at
// time t, every interval boundary <= t is closed (an interval covers
// [k*N, (k+1)*N)). finish() closes the final partial interval after
// end-of-run classification (termination updates land there), which makes
// the invariant exact: the samples sum to the run's final counters.
#pragma once

#include "sim/types.hpp"
#include "stats/counters.hpp"

#include <vector>

namespace ccsim::obs {

/// Counter traffic of one interval [begin, end).
struct Sample {
  Cycle begin = 0;
  Cycle end = 0;
  stats::Counters delta;
};

/// The sampled time series of one run.
struct IntervalSeries {
  Cycle interval = 0;  ///< configured sampling period (0 = sampling was off)
  std::vector<Sample> samples;

  [[nodiscard]] bool empty() const noexcept { return samples.empty(); }
};

class IntervalSampler {
public:
  /// Watch `live` (the machine's counters), cutting a sample every
  /// `interval` cycles. `interval` must be > 0.
  IntervalSampler(Cycle interval, const stats::Counters& live);

  /// Close every interval whose end boundary is <= t (call before the
  /// simulation clock advances to t).
  void advance_to(Cycle t);

  /// Close the final (possibly partial, possibly past-the-end) interval so
  /// the series accounts for every counted event, including end-of-run
  /// update finalization.
  void finish(Cycle end);

  [[nodiscard]] const IntervalSeries& series() const noexcept { return series_; }

private:
  void cut(Cycle boundary);

  const stats::Counters& live_;
  stats::Counters last_;    ///< snapshot at the last closed boundary
  Cycle next_boundary_;
  IntervalSeries series_;
};

} // namespace ccsim::obs
