// Per-block sharing-pattern classification and protocol advice.
//
// SharingTracker is an opt-in pure observer (ObsConfig::sharing) fed by the
// same protocol hook points as the invariant checker, plus two hooks of its
// own: invalidation sends at the WI home and update deliveries at the PU/CU
// caches. It schedules no events and sends no messages, so simulated cycles
// and counters are byte-identical with it on or off (DESIGN.md section 13's
// no-guest-perturbation rule; section 14 describes this subsystem).
//
// Per block it records:
//   - write runs: maximal sequences of globally-ordered writes by one node;
//   - reader sets per write interval: which nodes read the block between
//     two consecutive globally-ordered writes (set semantics, so a spinner
//     re-reading ten thousand times counts once per interval -- this is
//     what makes the numbers comparable across protocols);
//   - per-word accessor bitmaps, separating true sharing from false
//     sharing within one 64-byte block;
//   - invalidations issued (WI) and update deliveries (PU/CU), including
//     *wasted* updates: deliveries the receiving cache never read before
//     the word was written again (or before the run ended).
//
// A classifier folds these into the taxonomy the paper explains its results
// with -- private, read-only, read-mostly, migratory, producer/consumer,
// widely-shared, false-shared -- and a cost model replays the observed
// event counts against WI/PU/CU cost parameters to recommend a protocol
// per block, per symbolic allocation, and for the run as a whole.
// tools/ccadvise cross-validates the recommendation against measured
// sweeps; thresholds and the cost model are documented in DESIGN.md §14.
#pragma once

#include "mem/address.hpp"
#include "proto/protocol.hpp"
#include "sim/types.hpp"

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace ccsim::mem {
class SharedAllocator;
}

namespace ccsim::obs {

/// The taxonomy (paper sections 5-7; DESIGN.md section 14). Mixed is the
/// fall-through for blocks matching no clean pattern.
enum class SharingPattern : std::uint8_t {
  Private,           ///< one node accounts for every access
  ReadOnly,          ///< never written (after poke-time initialization)
  ReadMostly,        ///< written, but reads dwarf writes
  Migratory,         ///< read-modify-write ownership passing node to node
  ProducerConsumer,  ///< disjoint writer and reader sets
  WidelyShared,      ///< many readers per write interval
  FalseShared,       ///< word-disjoint accessors forced into one block
  Mixed,             ///< none of the above
};
inline constexpr std::size_t kSharingPatterns = 8;

[[nodiscard]] std::string_view to_string(SharingPattern p) noexcept;

/// Cost-model parameters: approximate cycles per replayed event, derived
/// from the machine's MemTimings/network constants and calibrated against
/// measured sweeps at the default machine size (tools/ccadvise validates
/// the calibration; DESIGN.md section 14 derives each one). All doubles
/// so sweeps can recalibrate them.
struct SharingCostParams {
  /// WI: acquire exclusive ownership (2-3 hops, invalidation fan-out and
  /// acks included -- they overlap the acquisition round trip).
  double write_acq = 60.0;
  double read_miss = 55.0;     ///< WI: re-fetch an invalidated block
  double update = 14.0;        ///< PU: one update delivery + ack
  /// CU: one update delivery + ack + competitive-counter maintenance.
  /// Slightly above PU's `update`: where the replayed delivery sets are
  /// equal, plain update wins.
  double cu_update = 15.0;
  double write_through = 12.0; ///< PU/CU: word write-through to the home
  double local_write = 1.0;    ///< write hit in a writable copy
  /// CU: re-fetch after a competitive drop. Calibrated at twice a plain
  /// read miss: the drop self-invalidates a line its node was actively
  /// polling, so the miss serializes with the spin loop and the re-fetched
  /// line immediately re-attracts the update stream it just shed.
  double refetch = 110.0;
};

/// Classifier thresholds (see classify() for the decision order).
struct SharingConfig {
  /// Migratory: average readers per write interval must not exceed this.
  double migratory_readers_max = 2.0;
  /// Widely-shared: average readers per write interval at or above this.
  double widely_avg_readers = 3.0;
  /// Widely-shared (alternative trigger): some interval saw at least
  /// max(this, nprocs/2) distinct readers.
  unsigned widely_min_readers = 4;
  /// Read-mostly: completed reads at least this multiple of writes.
  double read_mostly_ratio = 16.0;
  SharingCostParams cost{};
};

/// The classifier's output for one run. Opt-in: enabled() mirrors
/// ObsConfig::sharing, and the "sharing" JSON section appears only when on
/// (byte-identity everywhere else, like the host report).
struct SharingReport {
  static constexpr std::uint64_t kSchema = 1;

  struct Row {
    mem::BlockAddr block = 0;
    Addr base = 0;
    std::string name;  ///< SharedAllocator symbolic name ("" = unnamed)
    SharingPattern pattern = SharingPattern::Private;
    unsigned accessors = 0;     ///< distinct nodes that read or wrote
    unsigned reader_count = 0;  ///< distinct nodes that read
    unsigned writer_count = 0;  ///< distinct nodes that wrote
    std::uint64_t reads = 0;    ///< completed reads (spins included)
    std::uint64_t writes = 0;   ///< globally-ordered writes
    std::uint64_t intervals = 0;            ///< closed write intervals
    std::uint64_t reader_episodes = 0;      ///< sum over intervals of |readers|
    std::uint64_t max_interval_readers = 0;
    std::uint64_t runs = 0;      ///< write runs (same writer, no handoff)
    std::uint64_t max_run = 0;   ///< longest run
    std::uint64_t handoffs = 0;  ///< writer changes
    std::uint64_t migratory_handoffs = 0;  ///< new writer read it just before
    std::uint64_t invals_sent = 0;         ///< WI home invalidations
    std::uint64_t writable_grants = 0;     ///< exclusive/private grants
    std::uint64_t updates_delivered = 0;   ///< PU/CU update deliveries
    std::uint64_t updates_wasted = 0;      ///< delivered but never read
    std::uint64_t updates_dropped = 0;     ///< CU competitive self-invals
    std::uint64_t pu_updates = 0;    ///< replay: updates a PU run multicasts
    std::uint64_t cu_updates = 0;    ///< replay: updates a CU run delivers
    std::uint64_t cu_refetches = 0;  ///< replay: re-reads after a CU drop
    bool word_disjoint = false;  ///< no word has two accessors
    double cost_wi = 0, cost_pu = 0, cost_cu = 0;  ///< projected cycles
    proto::Protocol best = proto::Protocol::WI;
    [[nodiscard]] std::uint64_t activity() const noexcept {
      return reads + writes;
    }
    [[nodiscard]] double avg_interval_readers() const noexcept {
      return intervals ? static_cast<double>(reader_episodes) /
                             static_cast<double>(intervals)
                       : 0.0;
    }
  };

  /// Per symbolic allocation (HotBlockTable-style names, aggregated over
  /// the allocation's blocks; pattern = the pattern carrying the most
  /// read+write activity within the group).
  struct Alloc {
    std::string name;  ///< allocation name ("(unnamed)" when anonymous)
    std::size_t blocks = 0;
    SharingPattern pattern = SharingPattern::Private;
    std::uint64_t reads = 0, writes = 0;
    std::uint64_t invals_sent = 0, updates_wasted = 0;
    double cost_wi = 0, cost_pu = 0, cost_cu = 0;
    proto::Protocol best = proto::Protocol::WI;
  };

  bool on = false;
  unsigned nprocs = 0;
  unsigned cu_threshold = 4;
  std::vector<Row> blocks;   ///< activity-descending, then by address
  std::vector<Alloc> allocs; ///< activity-descending, then by name
  std::array<std::uint64_t, kSharingPatterns> pattern_blocks{};
  double total_wi = 0, total_pu = 0, total_cu = 0;
  proto::Protocol recommended = proto::Protocol::WI;

  [[nodiscard]] bool enabled() const noexcept { return on; }
  /// Projected cycles had the whole run used static protocol `p`.
  [[nodiscard]] double total_cost(proto::Protocol p) const noexcept;
};

/// Pick WI/PU/CU by minimum cost; ties resolve in WI, PU, CU order.
[[nodiscard]] proto::Protocol cheapest_protocol(double wi, double pu,
                                                double cu) noexcept;

class SharingTracker {
public:
  /// How an update delivery landed at a cache (on_update_delivered).
  enum class Delivery : std::uint8_t {
    Applied,  ///< written into a valid copy
    Stale,    ///< no copy present (pruned/evicted while in flight)
    Dropped,  ///< tripped the competitive-update counter (self-invalidate)
  };

  /// Throws std::invalid_argument if nprocs exceeds 32 (accessor sets are
  /// 32-bit node bitmaps, matching the machine's maximum).
  explicit SharingTracker(unsigned nprocs, unsigned cu_threshold,
                          SharingConfig cfg = {});

  // Hook points (mirroring obs::InvariantChecker; every caller guards with
  // `if (ctx_.sharing)`). All are O(1) per call and allocate only on the
  // first touch of a block.

  /// A read of `a` completed at `reader` (cache hits included).
  void on_read(NodeId reader, Addr a);
  /// A write to `a` by `writer` reached its global-order point.
  void on_global_write(NodeId writer, Addr a);
  /// A locally-visible write not yet globally ordered (PU/CU write-through
  /// into the writer's own copy); the matching global order point fires
  /// on_global_write at the home. Marks accessor bitmaps only.
  void on_local_write(NodeId writer, Addr a);
  /// `node` obtained a writable (WI Modified / PU PrivateDirty) copy of `b`.
  void on_writable(NodeId node, mem::BlockAddr b);
  /// Pre-run initialization write (Machine::poke); not program sharing.
  void on_poke(Addr a);
  /// The WI home sent an invalidation of `trigger`'s block to `dst` on
  /// behalf of `writer`.
  void on_inval_sent(NodeId dst, Addr trigger, NodeId writer);
  /// The PU/CU cache at `dst` received an update of `a` written by
  /// `writer`; `d` says whether it was applied, stale, or dropped.
  void on_update_delivered(NodeId dst, Addr a, NodeId writer, Delivery d);

  /// Close open write intervals and count still-unread deliveries as
  /// wasted. Machine::run calls this once at the end of the run.
  void finalize();

  /// Classify every touched block and project costs. `alloc` (may be null)
  /// resolves symbolic names for the per-allocation aggregation.
  [[nodiscard]] SharingReport report(const mem::SharedAllocator* alloc) const;

  [[nodiscard]] const SharingConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] std::size_t touched_blocks() const noexcept {
    return blocks_.size();
  }

private:
  struct BlockStats {
    std::uint32_t readers = 0, writers = 0;  ///< node bitmaps
    std::array<std::uint32_t, mem::kWordsPerBlock> word_readers{};
    std::array<std::uint32_t, mem::kWordsPerBlock> word_writers{};
    std::uint64_t reads = 0, writes = 0;
    // Current write interval / run state.
    std::uint32_t cur_readers = 0;   ///< readers since the last write
    std::uint32_t prev_readers = 0;  ///< readers of the interval before
    NodeId last_writer = kInvalidNode;
    std::uint64_t run_len = 0;
    // Closed aggregates.
    std::uint64_t runs = 0, max_run = 0;
    std::uint64_t intervals = 0, reader_episodes = 0;
    std::uint64_t max_interval_readers = 0, intervals_with_readers = 0;
    std::uint64_t handoffs = 0, migratory_handoffs = 0;
    std::uint64_t sharers_at_write = 0;  ///< sum of |other accessors| per write
    // Protocol replay for the cost model: a per-node simulation of the CU
    // competitive counter driven by the observed global write order and
    // read hooks. `copies` is the set of nodes that ever touched the block
    // (the PU multicast set); `cu_live` are the copies whose counter has
    // not tripped; `cu_streak[n]` counts consecutive updates node n
    // received without reading. Protocol-invariant by construction -- it
    // only consumes the global write order and per-node reads.
    std::uint32_t copies = 0, cu_live = 0;
    std::array<std::uint8_t, 32> cu_streak{};
    std::uint64_t pu_updates = 0, cu_updates = 0, cu_refetches = 0;
    std::uint64_t invals_sent = 0, writable_grants = 0;
    std::uint64_t updates_delivered = 0, updates_wasted = 0,
                  updates_dropped = 0;
    /// Per word: nodes holding a delivered-but-unread update.
    std::array<std::uint32_t, mem::kWordsPerBlock> pending_unread{};
  };

  [[nodiscard]] SharingPattern classify(const BlockStats& s) const;
  void project(const BlockStats& s, double& wi, double& pu, double& cu) const;
  void close_interval(BlockStats& s, NodeId next_writer);

  unsigned nprocs_;
  unsigned cu_threshold_;
  SharingConfig cfg_;
  /// Ordered map: deterministic iteration for byte-stable reports.
  std::map<mem::BlockAddr, BlockStats> blocks_;
  bool finalized_ = false;
};

} // namespace ccsim::obs
