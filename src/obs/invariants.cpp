#include "obs/invariants.hpp"

#include <algorithm>
#include <cstdio>

namespace ccsim::obs {
namespace {

[[nodiscard]] constexpr Addr word_base(Addr a) noexcept {
  return a - a % mem::kWordSize;
}

[[nodiscard]] std::string_view state_name(mem::LineState s) noexcept {
  switch (s) {
    case mem::LineState::Invalid: return "Invalid";
    case mem::LineState::Shared: return "Shared";
    case mem::LineState::Modified: return "Modified";
    case mem::LineState::ValidU: return "ValidU";
    case mem::LineState::PrivateDirty: return "PrivateDirty";
  }
  return "?";
}

[[nodiscard]] std::string_view state_name(mem::DirState s) noexcept {
  switch (s) {
    case mem::DirState::Unowned: return "Unowned";
    case mem::DirState::Shared: return "Shared";
    case mem::DirState::Exclusive: return "Exclusive";
    case mem::DirState::Update: return "Update";
    case mem::DirState::Private: return "Private";
  }
  return "?";
}

[[nodiscard]] bool writable(mem::LineState s) noexcept {
  return s == mem::LineState::Modified || s == mem::LineState::PrivateDirty;
}

[[nodiscard]] std::string hexs(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "0x%llx", static_cast<unsigned long long>(v));
  return buf;
}

[[nodiscard]] std::string sharer_list(std::uint64_t mask) {
  std::string s = "{";
  bool first = true;
  for (unsigned n = 0; n < 64; ++n) {
    if (!((mask >> n) & 1u)) continue;
    if (!first) s += ',';
    s += std::to_string(n);
    first = false;
  }
  s += '}';
  return s;
}

} // namespace

void InvariantChecker::attach_node(mem::DataCache* cache,
                                   const mem::Directory* dir,
                                   mem::MemoryModule* memory) {
  nodes_.push_back(NodeView{cache, dir, memory});
}

void InvariantChecker::record(Addr word_addr, std::uint64_t word) {
  History& h = history_[word_addr];
  if (h.values.empty()) h.values.resize(cfg_.history_depth, 0);
  h.values[h.head] = word;
  h.head = (h.head + 1) % h.values.size();
  if (h.head == 0) h.wrapped = true;
}

bool InvariantChecker::known_value(Addr word_addr, std::uint64_t word) const {
  auto it = history_.find(word_addr);
  if (it == history_.end()) return word == 0;  // memory zero-initializes
  const History& h = it->second;
  const std::size_t n = h.wrapped ? h.values.size() : h.head;
  for (std::size_t i = 0; i < n; ++i)
    if (h.values[i] == word) return true;
  // A word that has been written but not often enough to wrap the history
  // may still legally read as its initial zero (stale copy of the first
  // fill).
  return !h.wrapped && word == 0;
}

void InvariantChecker::on_global_write(NodeId writer, Addr addr,
                                       std::uint64_t word) {
  (void)writer;
  if (!mem::is_shared(addr)) return;
  shadow_[word_base(addr)] = word;
  record(word_base(addr), word);
}

void InvariantChecker::on_local_write(NodeId writer, Addr addr,
                                      std::uint64_t word) {
  (void)writer;
  if (!mem::is_shared(addr)) return;
  record(word_base(addr), word);
}

void InvariantChecker::on_poke(Addr addr, std::uint64_t word) {
  if (!mem::is_shared(addr)) return;
  shadow_[word_base(addr)] = word;
  record(word_base(addr), word);
}

void InvariantChecker::on_read(NodeId reader, Addr addr, std::uint64_t word) {
  if (!mem::is_shared(addr)) return;
  ++checks_;
  const Addr wa = word_base(addr);
  if (known_value(wa, word)) return;
  std::string what = "read of a value no write produced\n";
  what += "  word " + hexs(wa) + " read as " + hexs(word) + " by node " +
          std::to_string(reader);
  if (auto it = shadow_.find(wa); it != shadow_.end())
    what += " (last globally-ordered value " + hexs(it->second) + ")";
  else
    what += " (word never globally written)";
  fail(mem::block_of(addr), what);
}

void InvariantChecker::on_writable(NodeId node, mem::BlockAddr b) {
  ++checks_;
  for (NodeId n = 0; n < nodes_.size(); ++n) {
    if (n == node) continue;
    const mem::CacheLine* l = nodes_[n].cache->find(b);
    if (l && writable(l->state))
      fail(b, "two writable copies (single-writer violation)\n  node " +
                  std::to_string(node) + " installed a writable copy while node " +
                  std::to_string(n) + " holds " + std::string(state_name(l->state)));
  }
}

std::vector<std::pair<NodeId, mem::LineState>> InvariantChecker::holders(
    mem::BlockAddr b) const {
  std::vector<std::pair<NodeId, mem::LineState>> out;
  for (NodeId n = 0; n < nodes_.size(); ++n)
    if (const mem::CacheLine* l = nodes_[n].cache->find(b))
      out.emplace_back(n, l->state);
  return out;
}

std::string InvariantChecker::describe_block(mem::BlockAddr b) const {
  std::string s = "  block " + hexs(b) + " (base " + hexs(mem::block_base(b));
  NodeId home = kInvalidNode;
  if (alloc_) {
    if (std::string name = alloc_->name_of(mem::block_base(b)); !name.empty())
      s += ", \"" + name + "\"";
    home = alloc_->home_of(b);
    s += ", home " + std::to_string(home);
  }
  s += ")\n";
  if (home != kInvalidNode && home < nodes_.size()) {
    if (const mem::DirEntry* e = nodes_[home].dir->find(b)) {
      s += "  directory: state=";
      s += state_name(e->state);
      s += " owner=";
      s += e->owner == kInvalidNode ? "-" : std::to_string(e->owner);
      s += " sharers=" + sharer_list(e->sharers) + "\n";
    } else {
      s += "  directory: (no entry)\n";
    }
  }
  s += "  caches:";
  const auto hs = holders(b);
  if (hs.empty()) s += " (none)";
  for (const auto& [n, st] : hs) {
    s += ' ';
    s += std::to_string(n);
    s += ':';
    s += state_name(st);
  }
  s += '\n';
  if (auto it = recent_.find(b); it != recent_.end() && !it->second.empty()) {
    s += "  recent events for block:\n";
    for (const std::string& line : it->second) s += "    " + line + "\n";
  }
  return s;
}

void InvariantChecker::fail(mem::BlockAddr b, const std::string& what) const {
  throw InvariantViolation("coherence invariant violation: " + what + "\n" +
                           describe_block(b));
}

void InvariantChecker::on_event(const TraceEvent& e) {
  if (!e.has_msg) return;
  std::deque<std::string>& ring = recent_[mem::block_of(e.addr)];
  ring.push_back(format_event(e));
  while (ring.size() > cfg_.trace_tail) ring.pop_front();
}

void InvariantChecker::audit_entry(NodeId home, mem::BlockAddr b,
                                   const mem::DirEntry& e) {
  (void)home;
  ++checks_;
  const auto hs = holders(b);
  std::uint64_t held = 0;
  for (const auto& [n, st] : hs) held |= std::uint64_t{1} << n;

  const auto require = [&](bool ok, const char* what) {
    if (!ok)
      fail(b, std::string("directory/cache disagreement at quiescence: ") + what);
  };
  const auto all_in_state = [&](mem::LineState want) {
    return std::all_of(hs.begin(), hs.end(),
                       [&](const auto& p) { return p.second == want; });
  };

  switch (e.state) {
    case mem::DirState::Unowned:
      require(hs.empty(), "Unowned block still cached somewhere");
      break;
    case mem::DirState::Shared:
      require(all_in_state(mem::LineState::Shared),
              "Shared block cached in a non-Shared state");
      require(held == e.sharers, "sharer set != caches holding the block");
      break;
    case mem::DirState::Exclusive:
      require(e.owner != kInvalidNode, "Exclusive entry with no owner");
      require(held == (std::uint64_t{1} << e.owner) &&
                  all_in_state(mem::LineState::Modified),
              "Exclusive block not held Modified by exactly its owner");
      break;
    case mem::DirState::Update:
      require(all_in_state(mem::LineState::ValidU),
              "Update block cached in a non-ValidU state");
      require(held == e.sharers, "sharer set != caches holding the block");
      break;
    case mem::DirState::Private:
      require(e.owner != kInvalidNode, "Private entry with no owner");
      require(held == (std::uint64_t{1} << e.owner) &&
                  all_in_state(mem::LineState::PrivateDirty),
              "Private block not held PrivateDirty by exactly its owner");
      require(e.sharers == (std::uint64_t{1} << e.owner),
              "Private entry lists sharers beyond its owner");
      break;
  }
}

void InvariantChecker::audit_data(NodeId home, mem::BlockAddr b,
                                  const mem::DirEntry& e) {
  const bool dirty = e.state == mem::DirState::Exclusive ||
                     e.state == mem::DirState::Private;
  for (unsigned w = 0; w < mem::kWordsPerBlock; ++w) {
    const Addr wa = mem::block_base(b) + w * mem::kWordSize;
    std::uint64_t expect = 0;
    if (auto it = shadow_.find(wa); it != shadow_.end()) expect = it->second;
    ++checks_;
    const auto check = [&](std::uint64_t got, const std::string& where) {
      if (got != expect)
        fail(b, "data mismatch at quiescence\n  word " + hexs(wa) + " " +
                    where + " holds " + hexs(got) +
                    ", last globally-ordered value " + hexs(expect));
    };
    if (dirty) {
      // The owner's cache is the authoritative copy; home memory is stale.
      if (const mem::CacheLine* l = e.owner != kInvalidNode
                                        ? nodes_[e.owner].cache->find(b)
                                        : nullptr)
        check(nodes_[e.owner].cache->read(wa, mem::kWordSize),
              "owner " + std::to_string(e.owner) + " cache");
    } else {
      check(nodes_[home].memory->read_word(wa, mem::kWordSize), "home memory");
      for (const auto& [n, st] : holders(b)) {
        const std::uint64_t got = nodes_[n].cache->read(wa, mem::kWordSize);
        if (st == mem::LineState::ValidU) {
          // A write-through update protocol can legally strand a racing
          // writer's copy at a superseded value: the writer applies its
          // store at issue, the home orders it BEFORE a concurrent write
          // whose update had already left for this node, and the writer is
          // excluded from its own multicast — so nothing ever corrects the
          // copy (MCS qnode flags hit this constantly). Equality with
          // memory is therefore not an invariant for ValidU copies; every
          // word must still be a value some write actually produced.
          if (!known_value(wa, got))
            fail(b, "data fabrication at quiescence\n  word " + hexs(wa) +
                        " node " + std::to_string(n) + " cache holds " +
                        hexs(got) + ", which no write produced (memory holds " +
                        hexs(expect) + ")");
        } else {
          // A clean invalidation-protocol copy has no racing-writer excuse:
          // it was filled from memory and invalidated on every write.
          check(got, "node " + std::to_string(n) + " cache");
        }
      }
    }
  }
}

void InvariantChecker::final_audit() {
  for (NodeId h = 0; h < nodes_.size(); ++h) {
    for (const auto& [b, e] : nodes_[h].dir->entries()) {
      audit_entry(h, b, e);
      audit_data(h, b, e);
    }
  }
  // Reverse direction: a valid cache line must be backed by a home entry
  // (the forward pass then audited its state against the entry).
  for (NodeId n = 0; n < nodes_.size(); ++n) {
    const mem::DataCache& c = *nodes_[n].cache;
    for (std::size_t i = 0; i < c.num_sets(); ++i) {
      const mem::CacheLine& l = c.line_at(i);
      if (!l.valid()) continue;
      ++checks_;
      if (!alloc_) continue;
      const NodeId home = alloc_->home_of(l.block);
      if (home >= nodes_.size() || !nodes_[home].dir->find(l.block))
        fail(l.block, "cached block with no directory entry at its home\n  node " +
                          std::to_string(n) + " holds " +
                          std::string(state_name(l.state)));
    }
  }
}

} // namespace ccsim::obs
