#include "obs/cycle_accounting.hpp"

#include "mem/address.hpp"

#include <cassert>

namespace ccsim::obs {

std::string_view to_string(CycleCat c) noexcept {
  switch (c) {
    case CycleCat::Compute: return "compute";
    case CycleCat::MissCold: return "miss_cold";
    case CycleCat::MissTrue: return "miss_true";
    case CycleCat::MissFalse: return "miss_false";
    case CycleCat::MissEvict: return "miss_evict";
    case CycleCat::MissDrop: return "miss_drop";
    case CycleCat::MissOther: return "miss_other";
    case CycleCat::WbFull: return "wb_full";
    case CycleCat::ReleaseAck: return "release_ack";
    case CycleCat::LockWait: return "lock_wait";
    case CycleCat::BarrierWait: return "barrier_wait";
    case CycleCat::ReductionWait: return "reduction_wait";
    case CycleCat::NetQueue: return "net_queue";
    case CycleCat::Count_: break;
  }
  return "?";
}

std::string_view to_string(SyncPhase p) noexcept {
  switch (p) {
    case SyncPhase::LockAcquire: return "lock_acquire";
    case SyncPhase::LockHold: return "lock_hold";
    case SyncPhase::LockRelease: return "lock_release";
    case SyncPhase::BarrierArrive: return "barrier_arrive";
    case SyncPhase::BarrierDepart: return "barrier_depart";
    case SyncPhase::ReductionCombine: return "reduction_combine";
    case SyncPhase::Count_: break;
  }
  return "?";
}

namespace {
CycleCat miss_cat(stats::MissClass c) noexcept {
  switch (c) {
    case stats::MissClass::Cold: return CycleCat::MissCold;
    case stats::MissClass::TrueSharing: return CycleCat::MissTrue;
    case stats::MissClass::FalseSharing: return CycleCat::MissFalse;
    case stats::MissClass::Eviction: return CycleCat::MissEvict;
    case stats::MissClass::Drop: return CycleCat::MissDrop;
    case stats::MissClass::Count_: break;
  }
  return CycleCat::MissOther;
}
} // namespace

std::array<Cycle, kCycleCats> ProfileSnapshot::totals() const noexcept {
  std::array<Cycle, kCycleCats> t{};
  for (const auto& proc : per_proc)
    for (std::size_t i = 0; i < kCycleCats; ++i) t[i] += proc[i];
  return t;
}

bool ProfileSnapshot::conserved() const noexcept {
  for (const auto& proc : per_proc) {
    Cycle sum = 0;
    for (Cycle c : proc) sum += c;
    if (sum != wall) return false;
  }
  return true;
}

CycleLedger::CycleLedger(unsigned nprocs, const sim::EventQueue& q)
    : q_(q), procs_(nprocs) {}

void CycleLedger::charge(Proc& pr, CycleCat c, Cycle until) {
  assert(until >= pr.accounted && "simulated time went backwards");
  pr.by[static_cast<std::size_t>(c)] += until - pr.accounted;
  pr.accounted = until;
}

void CycleLedger::begin(NodeId p, CycleCat c) {
  Proc& pr = procs_.at(p);
  charge(pr, enclosing(pr), now());
  pr.stack.push_back({c, now(), false, 0, false, CycleCat::MissOther});
}

void CycleLedger::end(NodeId p) {
  Proc& pr = procs_.at(p);
  assert(!pr.stack.empty());
  charge(pr, pr.stack.back().cat, now());
  pr.stack.pop_back();
}

void CycleLedger::end_as(NodeId p, CycleCat c) {
  Proc& pr = procs_.at(p);
  assert(!pr.stack.empty());
  charge(pr, c, now());
  pr.stack.pop_back();
}

void CycleLedger::end_inherit(NodeId p) {
  Proc& pr = procs_.at(p);
  assert(!pr.stack.empty());
  pr.stack.pop_back();
  charge(pr, enclosing(pr), now());
}

void CycleLedger::end_fast(NodeId p, Cycle fast_cycles) {
  Proc& pr = procs_.at(p);
  assert(!pr.stack.empty());
  if (now() - pr.stack.back().start <= fast_cycles)
    end_inherit(p);
  else
    end(p);
}

void CycleLedger::begin_load(NodeId p, Addr a) {
  Proc& pr = procs_.at(p);
  charge(pr, enclosing(pr), now());
  pr.stack.push_back({CycleCat::MissOther, now(), true, a, false,
                      CycleCat::MissOther});
}

void CycleLedger::end_load(NodeId p, Cycle hit_cycles) {
  Proc& pr = procs_.at(p);
  assert(!pr.stack.empty() && pr.stack.back().is_load);
  const Scope s = pr.stack.back();
  pr.stack.pop_back();
  const Cycle elapsed = now() - s.start;
  if (s.miss_noted)
    charge(pr, s.miss_cat, now());
  else if (elapsed <= hit_cycles)
    charge(pr, enclosing(pr), now());  // a hit: part of whatever it serves
  else
    charge(pr, CycleCat::MissOther, now());
}

void CycleLedger::note_miss(NodeId p, Addr a, stats::MissClass c) {
  Proc& pr = procs_.at(p);
  // Attach only to an active load span for the same block: drain-triggered
  // store misses classify concurrently with unrelated CPU activity.
  if (pr.stack.empty()) return;
  Scope& s = pr.stack.back();
  if (!s.is_load || mem::block_of(s.load_addr) != mem::block_of(a)) return;
  s.miss_noted = true;
  s.miss_cat = miss_cat(c);
}

void CycleLedger::phase_record(NodeId p, SyncPhase ph, Cycle dur) {
  phases_[static_cast<std::size_t>(ph)].add(dur);
  if (ph == SyncPhase::LockAcquire) {
    Proc& pr = procs_.at(p);
    pr.hold_since = now();
    pr.holding = true;
  }
}

void CycleLedger::note_release_begin(NodeId p) {
  Proc& pr = procs_.at(p);
  if (!pr.holding) return;
  pr.holding = false;
  phases_[static_cast<std::size_t>(SyncPhase::LockHold)].add(now() -
                                                            pr.hold_since);
}

void CycleLedger::finalize(Cycle end) {
  assert(!finalized_);
  finalized_ = true;
  for (Proc& pr : procs_) {
    // Scopes are RAII inside coroutine frames and unwind before the run
    // returns; anything left (aborted runs) is charged to its own category.
    while (!pr.stack.empty()) {
      charge(pr, pr.stack.back().cat, end);
      pr.stack.pop_back();
    }
    charge(pr, CycleCat::Compute, end);
  }
}

ProfileSnapshot CycleLedger::snapshot() const {
  ProfileSnapshot s;
  s.wall = finalized_ && !procs_.empty() ? procs_.front().accounted : 0;
  s.per_proc.reserve(procs_.size());
  for (const Proc& pr : procs_) s.per_proc.push_back(pr.by);
  s.phases = phases_;
  return s;
}

} // namespace ccsim::obs
