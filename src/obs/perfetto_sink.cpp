#include "obs/perfetto_sink.hpp"

#include "stats/json.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <set>

namespace ccsim::obs {

namespace {

std::string u64(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  return buf;
}

std::string hex(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "0x%" PRIx64, v);
  return buf;
}

/// `"pid":P,"tid":N,"ts":T` -- the track-and-time triple of every record.
std::string where(int pid, NodeId tid, Cycle ts) {
  return "\"pid\":" + u64(static_cast<std::uint64_t>(pid)) +
         ",\"tid\":" + u64(tid) + ",\"ts\":" + u64(ts);
}

} // namespace

PerfettoSink::PerfettoSink(std::ostream& os) : os_(os) {
  os_ << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
}

void PerfettoSink::emit(const std::string& json) {
  if (!first_record_) os_ << ",\n";
  first_record_ = false;
  os_ << json;
}

void PerfettoSink::begin_run(const std::string& label) {
  flush_run();
  ++pid_;
  run_label_ = label;
}

void PerfettoSink::on_event(const TraceEvent& e) {
  if (pid_ == 0) {  // standalone use without begin_run(): one anonymous run
    pid_ = 1;
    run_label_ = "run";
  }
  buf_.push_back(e);
}

void PerfettoSink::on_samples(const IntervalSeries& s) {
  if (pid_ == 0) {
    pid_ = 1;
    run_label_ = "run";
  }
  samples_ = s;
}

void PerfettoSink::on_profile(const ProfileSnapshot& p) {
  if (pid_ == 0) {
    pid_ = 1;
    run_label_ = "run";
  }
  profile_ = p;
}

void PerfettoSink::on_sharing(const SharingReport& r) {
  if (pid_ == 0) {
    pid_ = 1;
    run_label_ = "run";
  }
  sharing_ = r;
}

void PerfettoSink::flush_run() {
  if (pid_ == 0 || (buf_.empty() && samples_.empty() && !profile_.enabled() &&
                    !sharing_.enabled())) {
    buf_.clear();
    return;
  }

  emit("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" + u64(pid_) +
       ",\"args\":{\"name\":\"" + stats::json_escape(run_label_) + "\"}}");

  std::set<NodeId> nodes;
  for (const TraceEvent& e : buf_)
    if (e.node != kInvalidNode) nodes.insert(e.node);
  for (NodeId n : nodes)
    emit("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" + u64(pid_) +
         ",\"tid\":" + u64(n) + ",\"args\":{\"name\":\"node" + u64(n) + "\"}}");

  // Sort by cycle (stable: simulation order breaks ties) so every track's
  // ts sequence is monotone in the file.
  std::stable_sort(buf_.begin(), buf_.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.cycle < b.cycle;
                   });

  for (const TraceEvent& e : buf_) {
    const std::string loc = where(pid_, e.node, e.cycle);
    const std::string cat(to_string(e.cat));
    switch (e.kind) {
      case EventKind::MsgSend:
      case EventKind::MsgRecv: {
        const std::string name(net::to_string(e.msg));
        const bool send = e.kind == EventKind::MsgSend;
        if (e.dur == 0 && e.flow == 0) {
          // Controller-level handling: an instant marker on the node track.
          std::string rec = "{\"name\":\"" + name + "\",\"cat\":\"" + cat +
                            "\",\"ph\":\"i\",\"s\":\"t\"," + loc +
                            ",\"args\":{\"addr\":\"" + hex(e.addr) + "\",\"" +
                            (send ? "to" : "from") + "\":" + u64(e.peer);
          if (e.payload != 0) rec += ",\"pay\":" + u64(e.payload);
          rec += "}}";
          emit(rec);
          break;
        }
        std::string rec = "{\"name\":\"" + name + "\",\"cat\":\"" + cat +
                          "\",\"ph\":\"X\"," + loc +
                          ",\"dur\":" + u64(e.dur > 0 ? e.dur : 1) +
                          ",\"args\":{\"addr\":\"" + hex(e.addr) + "\",\"" +
                          (send ? "to" : "from") + "\":" + u64(e.peer);
        if (e.payload != 0) rec += ",\"pay\":" + u64(e.payload);
        rec += "}}";
        emit(rec);
        if (e.flow != 0) {
          if (send)
            emit("{\"name\":\"" + name + "\",\"cat\":\"flow\",\"ph\":\"s\",\"id\":" +
                 u64(e.flow) + "," + loc + "}");
          else
            emit("{\"name\":\"" + name +
                 "\",\"cat\":\"flow\",\"ph\":\"f\",\"bp\":\"e\",\"id\":" +
                 u64(e.flow) + "," + loc + "}");
        }
        break;
      }
      case EventKind::Note:
        emit("{\"name\":\"" + stats::json_escape(e.text) + "\",\"cat\":\"" + cat +
             "\",\"ph\":\"i\",\"s\":\"t\"," + loc + "}");
        break;
    }
  }

  // Interval samples as a counter track: one "C" record per interval, its
  // args graphed as stacked sub-series of the "traffic" counter.
  for (const Sample& s : samples_.samples) {
    emit("{\"name\":\"traffic\",\"ph\":\"C\",\"pid\":" + u64(pid_) +
         ",\"ts\":" + u64(s.begin) + ",\"args\":{\"misses\":" +
         u64(s.delta.misses.total()) + ",\"updates\":" +
         u64(s.delta.updates.total()) + ",\"messages\":" + u64(s.delta.net.messages) +
         ",\"flits\":" + u64(s.delta.net.flits) + "}}");
  }
  if (!samples_.samples.empty()) {
    // Close the last step so the final interval renders with its width.
    emit("{\"name\":\"traffic\",\"ph\":\"C\",\"pid\":" + u64(pid_) +
         ",\"ts\":" + u64(samples_.samples.back().end) +
         ",\"args\":{\"misses\":0,\"updates\":0,\"messages\":0,\"flits\":0}}");
  }

  // The cycle-accounting breakdown as one counter record per processor on
  // its node track: the args stack the run's per-category totals.
  for (NodeId p = 0; p < profile_.per_proc.size(); ++p) {
    std::string rec = "{\"name\":\"cycle_breakdown\",\"ph\":\"C\",\"pid\":" +
                      u64(pid_) + ",\"tid\":" + u64(p) + ",\"ts\":0,\"args\":{";
    bool first = true;
    for (std::size_t c = 0; c < kCycleCats; ++c) {
      if (profile_.per_proc[p][c] == 0) continue;
      if (!first) rec += ',';
      first = false;
      rec += '"';
      rec += to_string(static_cast<CycleCat>(c));
      rec += "\":" + u64(profile_.per_proc[p][c]);
    }
    rec += "}}";
    emit(rec);
  }

  // The sharing taxonomy as one counter track per observed pattern: how
  // many of the run's touched blocks each pattern covers.
  for (std::size_t i = 0; i < kSharingPatterns; ++i) {
    if (sharing_.pattern_blocks[i] == 0) continue;
    emit("{\"name\":\"sharing/" +
         std::string(to_string(static_cast<SharingPattern>(i))) +
         "\",\"ph\":\"C\",\"pid\":" + u64(pid_) + ",\"ts\":0,\"args\":{\"blocks\":" +
         u64(sharing_.pattern_blocks[i]) + "}}");
  }

  buf_.clear();
  samples_ = {};
  profile_ = {};
  sharing_ = {};
}

void PerfettoSink::finish() {
  if (finished_) return;
  finished_ = true;
  flush_run();
  os_ << "\n]}\n";
  os_.flush();
}

} // namespace ccsim::obs
