#include "obs/sampler.hpp"

#include <cassert>

namespace ccsim::obs {

IntervalSampler::IntervalSampler(Cycle interval, const stats::Counters& live)
    : live_(live), next_boundary_(interval) {
  assert(interval > 0);
  series_.interval = interval;
}

void IntervalSampler::cut(Cycle boundary) {
  Sample s;
  s.begin = next_boundary_ - series_.interval;
  s.end = boundary;
  s.delta = stats::delta(live_, last_);
  last_ = live_;
  series_.samples.push_back(std::move(s));
}

void IntervalSampler::advance_to(Cycle t) {
  while (next_boundary_ <= t) {
    cut(next_boundary_);
    next_boundary_ += series_.interval;
  }
}

void IntervalSampler::finish(Cycle end) {
  advance_to(end);
  // Whatever accrued past the last boundary -- a partial interval, or
  // counter movement with no clock movement (end-of-run update
  // classification) -- goes into one final sample.
  const Cycle begin = next_boundary_ - series_.interval;
  const stats::Counters d = stats::delta(live_, last_);
  const bool moved = d.misses.total() + d.misses.exclusive_requests +
                         d.updates.total() + d.net.messages + d.net.local +
                         d.net.flits + d.net.hops + d.mem.shared_reads +
                         d.mem.shared_writes + d.mem.read_hits +
                         d.mem.write_hits + d.mem.atomics +
                         d.mem.write_buffer_stalls + d.mem.fence_stall_cycles !=
                     0;
  if (end > begin || moved) {
    Sample s;
    s.begin = begin;
    s.end = end;
    s.delta = d;
    last_ = live_;
    series_.samples.push_back(std::move(s));
  }
}

} // namespace ccsim::obs
