// Processor-facing memory API.
//
// Simulated programs are C++20 coroutines; every shared-memory operation is
// a co_await on one of these awaitables, resolved by the node's cache
// controller with full protocol timing. Instruction costs follow the paper:
// ordinary instructions and read hits take 1 cycle; `think(n)` charges n
// cycles of local computation.
//
// spin_until() is the simulator's spin-loop primitive: it polls the
// location and, while the cached value leaves the predicate unsatisfied,
// sleeps until the cache line changes (fill, update, invalidation) instead
// of burning simulated events -- timing-equivalent to a polling loop, since
// a cached poll can only observe a change when the line changes.
#pragma once

#include "mem/address.hpp"
#include "obs/cycle_accounting.hpp"
#include "proto/protocol.hpp"
#include "sim/event_queue.hpp"
#include "sim/task.hpp"

#include <coroutine>
#include <cstdint>
#include <functional>
#include <memory>

namespace ccsim::cpu {

class Cpu {
public:
  Cpu(NodeId id, sim::EventQueue& q, proto::CacheController& cc)
      : id_(id), q_(q), cc_(cc) {}

  [[nodiscard]] NodeId id() const noexcept { return id_; }
  [[nodiscard]] sim::EventQueue& queue() noexcept { return q_; }
  [[nodiscard]] proto::CacheController& controller() noexcept { return cc_; }

  /// Attach the cycle-accounting ledger (nullptr = profiling off). Every
  /// awaitable below then opens a span at issue and resolves its category
  /// at completion; spans that finish at the uncontended cost inherit the
  /// enclosing scope so hits never masquerade as stalls.
  void set_ledger(obs::CycleLedger* l) noexcept { ledger_ = l; }
  [[nodiscard]] obs::CycleLedger* ledger() const noexcept { return ledger_; }

  /// Attach a shared forward-progress counter (the machine watchdog's).
  /// Every completed memory operation bumps it; a processor that only
  /// thinks between operations does not, so the watchdog stall bound must
  /// exceed the longest think in the workload.
  void set_progress(std::uint64_t* p) noexcept { progress_ = p; }

  /// Uncontended completion costs (paper section 3.1): at or below these,
  /// a span is not a stall. Loads/stores: the 1-cycle hit / buffer-accept;
  /// atomics: hit + read-modify-write when the line is held locally.
  static constexpr Cycle kHitLatency = 1;
  static constexpr Cycle kLocalAtomicLatency = 3;

  // --- awaitables -----------------------------------------------------

  struct LoadAwaiter {
    Cpu& cpu;
    Addr addr;
    std::size_t size;
    std::uint64_t result = 0;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) {
      if (auto* l = cpu.ledger_) l->begin_load(cpu.id_, addr);
      cpu.cc_.cpu_load(addr, size, [this, h](std::uint64_t v) {
        if (auto* l = cpu.ledger_) l->end_load(cpu.id_, kHitLatency);
        result = v;
        cpu.bump_progress();
        h.resume();
      });
    }
    std::uint64_t await_resume() const noexcept { return result; }
  };

  struct StoreAwaiter {
    Cpu& cpu;
    Addr addr;
    std::size_t size;
    std::uint64_t value;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) {
      if (auto* l = cpu.ledger_) l->begin(cpu.id_, obs::CycleCat::WbFull);
      cpu.cc_.cpu_store(addr, size, value, [this, h] {
        if (auto* l = cpu.ledger_) l->end_fast(cpu.id_, kHitLatency);
        cpu.bump_progress();
        h.resume();
      });
    }
    void await_resume() const noexcept {}
  };

  struct AtomicAwaiter {
    Cpu& cpu;
    net::AtomicOp op;
    Addr addr;
    std::uint64_t v1, v2;
    std::uint64_t result = 0;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) {
      if (auto* l = cpu.ledger_) l->begin(cpu.id_, obs::CycleCat::NetQueue);
      cpu.cc_.cpu_atomic(op, addr, v1, v2, [this, h](std::uint64_t v) {
        if (auto* l = cpu.ledger_) l->end_fast(cpu.id_, kLocalAtomicLatency);
        result = v;
        cpu.bump_progress();
        h.resume();
      });
    }
    std::uint64_t await_resume() const noexcept { return result; }
  };

  struct FenceAwaiter {
    Cpu& cpu;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) {
      if (auto* l = cpu.ledger_) l->begin(cpu.id_, obs::CycleCat::ReleaseAck);
      cpu.cc_.cpu_fence([this, h] {
        if (auto* l = cpu.ledger_) l->end_fast(cpu.id_, 0);
        cpu.bump_progress();
        h.resume();
      });
    }
    void await_resume() const noexcept {}
  };

  struct FlushAwaiter {
    Cpu& cpu;
    Addr addr;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) {
      if (auto* l = cpu.ledger_) l->begin(cpu.id_, obs::CycleCat::ReleaseAck);
      cpu.cc_.cpu_flush(addr, [this, h] {
        if (auto* l = cpu.ledger_) l->end_fast(cpu.id_, kHitLatency);
        cpu.bump_progress();
        h.resume();
      });
    }
    void await_resume() const noexcept {}
  };

  /// Spin until pred(value-at-addr) holds; resolves to the final value.
  struct SpinAwaiter {
    Cpu& cpu;
    Addr addr;
    std::size_t size;
    std::function<bool(std::uint64_t)> pred;
    std::uint64_t result = 0;
    std::coroutine_handle<> h_;

    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) {
      h_ = h;
      poll();
    }
    std::uint64_t await_resume() const noexcept { return result; }

    void poll() {
      if (auto* l = cpu.ledger_) l->begin_load(cpu.id_, addr);
      cpu.cc_.cpu_load(addr, size, [this](std::uint64_t v) {
        if (auto* l = cpu.ledger_) l->end_load(cpu.id_, kHitLatency);
        if (pred(v)) {
          // Progress counts only the satisfied poll: an unsatisfied spin --
          // even one re-polling on the uncached-retry path -- must look
          // stalled to the watchdog, or lost wakeups go undetected.
          result = v;
          cpu.bump_progress();
          h_.resume();
          return;
        }
        const mem::BlockAddr b = mem::block_of(addr);
        mem::DataCache& cache = cpu.cc_.cache_for(b);
        if (cache.find(b)) {
          // Line cached: sleep until it changes, then re-poll (1 cycle of
          // loop overhead models the compare-and-branch).
          cache.watch(b, [this] { cpu.q_.schedule(1, [this] { poll(); }); });
        } else {
          // Not cached (e.g. mid-transaction churn): retry shortly.
          cpu.q_.schedule(2, [this] { poll(); });
        }
      });
    }
  };

  [[nodiscard]] LoadAwaiter load(Addr a, std::size_t size = mem::kWordSize) {
    return {*this, a, size};
  }
  [[nodiscard]] StoreAwaiter store(Addr a, std::uint64_t v,
                                   std::size_t size = mem::kWordSize) {
    return {*this, a, size, v};
  }
  [[nodiscard]] AtomicAwaiter fetch_add(Addr a, std::uint64_t delta) {
    return {*this, net::AtomicOp::FetchAdd, a, delta, 0};
  }
  [[nodiscard]] AtomicAwaiter fetch_store(Addr a, std::uint64_t v) {
    return {*this, net::AtomicOp::FetchStore, a, v, 0};
  }
  [[nodiscard]] AtomicAwaiter compare_swap(Addr a, std::uint64_t expected,
                                           std::uint64_t desired) {
    return {*this, net::AtomicOp::CompareSwap, a, expected, desired};
  }
  /// Release fence: all prior writes globally performed before continuing.
  [[nodiscard]] FenceAwaiter fence() { return {*this}; }
  /// User-level block flush of the block containing `a`.
  [[nodiscard]] FlushAwaiter flush(Addr a) { return {*this, a}; }
  /// Local computation for `n` cycles.
  [[nodiscard]] sim::DelayAwaiter think(Cycle n) { return sim::delay(q_, n); }
  [[nodiscard]] SpinAwaiter spin_until(Addr a, std::function<bool(std::uint64_t)> pred,
                                       std::size_t size = mem::kWordSize) {
    return {*this, a, size, std::move(pred), 0, {}};
  }

  /// Release store: fence, then store (used by lock releases).
  sim::Task store_release(Addr a, std::uint64_t v, std::size_t size = mem::kWordSize);

private:
  void bump_progress() noexcept {
    if (progress_) ++*progress_;
  }

  NodeId id_;
  sim::EventQueue& q_;
  proto::CacheController& cc_;
  obs::CycleLedger* ledger_ = nullptr;
  std::uint64_t* progress_ = nullptr;
};

} // namespace ccsim::cpu
