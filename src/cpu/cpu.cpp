#include "cpu/cpu.hpp"

namespace ccsim::cpu {

sim::Task Cpu::store_release(Addr a, std::uint64_t v, std::size_t size) {
  co_await fence();
  co_await store(a, v, size);
}

} // namespace ccsim::cpu
