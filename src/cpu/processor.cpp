#include "cpu/processor.hpp"
