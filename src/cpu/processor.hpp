// One simulated processor: a Cpu bound to the root coroutine it runs.
#pragma once

#include "cpu/cpu.hpp"
#include "sim/task.hpp"

#include <functional>
#include <utility>

namespace ccsim::cpu {

class Processor {
public:
  Processor(NodeId id, sim::EventQueue& q, proto::CacheController& cc)
      : cpu_(id, q, cc) {}

  [[nodiscard]] Cpu& cpu() noexcept { return cpu_; }
  [[nodiscard]] bool done() const noexcept { return done_; }

  /// Launch `program` as this processor's root task.
  void run(const std::function<sim::Task(Cpu&)>& program,
           std::function<void()> on_done) {
    task_ = program(cpu_);
    task_.start([this, cb = std::move(on_done)] {
      done_ = true;
      if (cb) cb();
    });
  }

  /// Rethrow any exception the program body raised (checked after run).
  void rethrow_if_failed() { task_.rethrow_if_failed(); }

private:
  Cpu cpu_;
  sim::Task task_;
  bool done_ = false;
};

} // namespace ccsim::cpu
