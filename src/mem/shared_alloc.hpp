// Shared-segment allocator with home placement and symbolic names.
//
// The paper maps shared data "to the processors that use them most
// frequently" (section 4). allocate_on() places a block-aligned region at a
// chosen home node; allocate() falls back to block-level interleaving
// across all nodes (section 3.1).
//
// Allocations may carry a symbolic name; name_of() resolves any address
// back to "name+0xoffset", which the observability layer uses to label
// hot blocks ("mcs.qnodes+0x10" instead of a raw address).
#pragma once

#include "mem/address.hpp"
#include "sim/types.hpp"

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace ccsim::mem {

class SharedAllocator {
public:
  /// One named allocation (regions are recorded in address order).
  struct Region {
    Addr start = 0;
    std::size_t size = 0;
    std::string name;
  };

  explicit SharedAllocator(unsigned nodes) : nodes_(nodes) {}

  /// Allocate interleaved shared memory (home = block mod nodes).
  Addr allocate(std::size_t size, std::size_t align = kWordSize,
                std::string_view name = {});

  /// Allocate shared memory homed at `home`. The region is padded to whole
  /// blocks so placement never splits a block.
  Addr allocate_on(NodeId home, std::size_t size, std::string_view name = {});

  /// Home node of a block.
  [[nodiscard]] NodeId home_of(BlockAddr b) const;

  /// Symbolic name of the allocation containing `a` ("name+0x18"), or ""
  /// when `a` falls outside every named region.
  [[nodiscard]] std::string name_of(Addr a) const;

  [[nodiscard]] const std::vector<Region>& regions() const noexcept {
    return regions_;
  }

  /// Protocol-domain binding (hybrid machines): tag every block of
  /// [start, start+size) with an opaque domain id. Domain 0 is the
  /// default; the protocol layer maps ids to coherence protocols.
  void set_domain(Addr start, std::size_t size, std::uint8_t domain);
  [[nodiscard]] std::uint8_t domain_of(BlockAddr b) const;

  [[nodiscard]] unsigned nodes() const noexcept { return nodes_; }

private:
  void record_region(Addr start, std::size_t size, std::string_view name);

  unsigned nodes_;
  Addr next_ = kSharedBase;
  std::unordered_map<BlockAddr, NodeId> placed_;
  std::unordered_map<BlockAddr, std::uint8_t> domains_;
  std::vector<Region> regions_;  ///< named allocations, start ascending
};

} // namespace ccsim::mem
