// Shared-segment allocator with home placement.
//
// The paper maps shared data "to the processors that use them most
// frequently" (section 4). allocate_on() places a block-aligned region at a
// chosen home node; allocate() falls back to block-level interleaving
// across all nodes (section 3.1).
#pragma once

#include "mem/address.hpp"
#include "sim/types.hpp"

#include <cstddef>
#include <cstdint>
#include <unordered_map>

namespace ccsim::mem {

class SharedAllocator {
public:
  explicit SharedAllocator(unsigned nodes) : nodes_(nodes) {}

  /// Allocate interleaved shared memory (home = block mod nodes).
  Addr allocate(std::size_t size, std::size_t align = kWordSize);

  /// Allocate shared memory homed at `home`. The region is padded to whole
  /// blocks so placement never splits a block.
  Addr allocate_on(NodeId home, std::size_t size);

  /// Home node of a block.
  [[nodiscard]] NodeId home_of(BlockAddr b) const;

  /// Protocol-domain binding (hybrid machines): tag every block of
  /// [start, start+size) with an opaque domain id. Domain 0 is the
  /// default; the protocol layer maps ids to coherence protocols.
  void set_domain(Addr start, std::size_t size, std::uint8_t domain);
  [[nodiscard]] std::uint8_t domain_of(BlockAddr b) const;

  [[nodiscard]] unsigned nodes() const noexcept { return nodes_; }

private:
  unsigned nodes_;
  Addr next_ = kSharedBase;
  std::unordered_map<BlockAddr, NodeId> placed_;
  std::unordered_map<BlockAddr, std::uint8_t> domains_;
};

} // namespace ccsim::mem
