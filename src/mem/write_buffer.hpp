// 4-entry write buffer (paper, section 3.1).
//
// Stores enter the buffer in 1 cycle; the processor stalls only when the
// buffer is full. Reads bypass queued writes, with store-to-load forwarding
// when a queued entry covers the loaded bytes. Drain policy (when an entry
// may retire) is protocol-specific and lives in the cache controllers.
#pragma once

#include "mem/address.hpp"
#include "sim/types.hpp"

#include <cstddef>
#include <cstdint>
#include <deque>
#include <optional>

namespace ccsim::mem {

struct WriteBufferEntry {
  Addr addr = 0;
  std::size_t size = 0;
  std::uint64_t value = 0;
};

class WriteBuffer {
public:
  explicit WriteBuffer(std::size_t capacity = 4) : capacity_(capacity) {}

  [[nodiscard]] bool full() const noexcept { return entries_.size() >= capacity_; }
  [[nodiscard]] bool empty() const noexcept { return entries_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  void push(WriteBufferEntry e) {
    entries_.push_back(e);
    ++pushes_;
    if (entries_.size() > peak_) peak_ = entries_.size();
  }

  /// Lifetime stats (never reset): stores accepted, deepest occupancy.
  [[nodiscard]] std::uint64_t pushes() const noexcept { return pushes_; }
  [[nodiscard]] std::size_t peak() const noexcept { return peak_; }

  [[nodiscard]] const WriteBufferEntry& front() const { return entries_.front(); }
  void pop() { entries_.pop_front(); }

  /// Newest queued value covering exactly the loaded bytes, if any.
  [[nodiscard]] std::optional<std::uint64_t> forward(Addr addr, std::size_t size) const;

  /// True if any queued entry touches the same word as [addr, addr+size)
  /// without being an exact match -- the load must then wait for the drain.
  [[nodiscard]] bool partially_overlaps(Addr addr, std::size_t size) const;

  /// True if any queued entry writes into block `b` (flush instructions
  /// must wait for such stores to drain before dropping the block).
  [[nodiscard]] bool contains_block(BlockAddr b) const;

private:
  std::size_t capacity_;
  std::deque<WriteBufferEntry> entries_;
  std::uint64_t pushes_ = 0;
  std::size_t peak_ = 0;
};

} // namespace ccsim::mem
