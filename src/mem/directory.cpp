#include "mem/directory.hpp"
