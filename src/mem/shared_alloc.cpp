#include "mem/shared_alloc.hpp"

#include <algorithm>
#include <cassert>
#include <cinttypes>
#include <cstdio>

namespace ccsim::mem {

namespace {
Addr align_up(Addr a, std::size_t align) {
  return (a + align - 1) / align * align;
}
} // namespace

void SharedAllocator::record_region(Addr start, std::size_t size,
                                    std::string_view name) {
  if (name.empty()) return;
  regions_.push_back(Region{start, size, std::string(name)});
}

Addr SharedAllocator::allocate(std::size_t size, std::size_t align,
                               std::string_view name) {
  assert(size > 0);
  next_ = align_up(next_, align);
  const Addr a = next_;
  next_ += size;
  record_region(a, size, name);
  return a;
}

Addr SharedAllocator::allocate_on(NodeId home, std::size_t size,
                                  std::string_view name) {
  assert(home < nodes_);
  assert(size > 0);
  next_ = align_up(next_, kBlockSize);
  const Addr a = next_;
  next_ = align_up(next_ + size, kBlockSize);
  for (BlockAddr b = block_of(a); b < block_of(next_ - 1) + 1; ++b) placed_[b] = home;
  record_region(a, size, name);
  return a;
}

std::string SharedAllocator::name_of(Addr a) const {
  // Regions are recorded with ascending start addresses: binary-search the
  // last region starting at or before `a`.
  auto it = std::upper_bound(
      regions_.begin(), regions_.end(), a,
      [](Addr v, const Region& r) { return v < r.start; });
  if (it == regions_.begin()) return {};
  --it;
  // Home placement pads to whole blocks; attribute the padding to the
  // region too (a block is hot as a unit).
  const Addr padded_end = align_up(it->start + it->size, kBlockSize);
  if (a >= padded_end) return {};
  std::string out = it->name;
  if (a != it->start) {
    char off[24];
    std::snprintf(off, sizeof off, "+0x%" PRIx64, a - it->start);
    out += off;
  }
  return out;
}

void SharedAllocator::set_domain(Addr start, std::size_t size, std::uint8_t domain) {
  assert(size > 0);
  for (BlockAddr b = block_of(start); b <= block_of(start + size - 1); ++b)
    domains_[b] = domain;
}

std::uint8_t SharedAllocator::domain_of(BlockAddr b) const {
  auto it = domains_.find(b);
  return it == domains_.end() ? 0 : it->second;
}

NodeId SharedAllocator::home_of(BlockAddr b) const {
  if (auto it = placed_.find(b); it != placed_.end()) return it->second;
  return static_cast<NodeId>(b % nodes_);
}

} // namespace ccsim::mem
