#include "mem/shared_alloc.hpp"

#include <cassert>

namespace ccsim::mem {

namespace {
Addr align_up(Addr a, std::size_t align) {
  return (a + align - 1) / align * align;
}
} // namespace

Addr SharedAllocator::allocate(std::size_t size, std::size_t align) {
  assert(size > 0);
  next_ = align_up(next_, align);
  const Addr a = next_;
  next_ += size;
  return a;
}

Addr SharedAllocator::allocate_on(NodeId home, std::size_t size) {
  assert(home < nodes_);
  assert(size > 0);
  next_ = align_up(next_, kBlockSize);
  const Addr a = next_;
  next_ = align_up(next_ + size, kBlockSize);
  for (BlockAddr b = block_of(a); b < block_of(next_ - 1) + 1; ++b) placed_[b] = home;
  return a;
}

void SharedAllocator::set_domain(Addr start, std::size_t size, std::uint8_t domain) {
  assert(size > 0);
  for (BlockAddr b = block_of(start); b <= block_of(start + size - 1); ++b)
    domains_[b] = domain;
}

std::uint8_t SharedAllocator::domain_of(BlockAddr b) const {
  auto it = domains_.find(b);
  return it == domains_.end() ? 0 : it->second;
}

NodeId SharedAllocator::home_of(BlockAddr b) const {
  if (auto it = placed_.find(b); it != placed_.end()) return it->second;
  return static_cast<NodeId>(b % nodes_);
}

} // namespace ccsim::mem
