#include "mem/cache.hpp"

#include "sim/check.hpp"

#include <bit>
#include <cassert>
#include <cstring>

namespace ccsim::mem {

DataCache::DataCache(std::size_t size_bytes) {
  const std::size_t sets = size_bytes / kBlockSize;
  assert(std::has_single_bit(sets) && "cache size must give a power-of-two set count");
  lines_.resize(sets);
}

std::uint64_t DataCache::read(Addr addr, std::size_t size) const {
  CCSIM_CHECK(within_word(addr, size),
              "addr=%#llx size=%zu: cache read crosses a word boundary",
              static_cast<unsigned long long>(addr), size);
  const CacheLine& l = set_for(block_of(addr));
  CCSIM_CHECK(l.valid() && l.block == block_of(addr),
              "addr=%#llx block=%#llx: cache read of a non-resident line "
              "(set holds %#llx, state %u)",
              static_cast<unsigned long long>(addr),
              static_cast<unsigned long long>(block_of(addr)),
              static_cast<unsigned long long>(l.block),
              static_cast<unsigned>(l.state));
  std::uint64_t v = 0;
  std::memcpy(&v, l.data.data() + offset_of(addr), size);
  return v;
}

void DataCache::write(Addr addr, std::size_t size, std::uint64_t value) {
  CCSIM_CHECK(within_word(addr, size),
              "addr=%#llx size=%zu: cache write crosses a word boundary",
              static_cast<unsigned long long>(addr), size);
  CacheLine& l = set_for(block_of(addr));
  CCSIM_CHECK(l.valid() && l.block == block_of(addr),
              "addr=%#llx block=%#llx: cache write to a non-resident line "
              "(set holds %#llx, state %u)",
              static_cast<unsigned long long>(addr),
              static_cast<unsigned long long>(block_of(addr)),
              static_cast<unsigned long long>(l.block),
              static_cast<unsigned>(l.state));
  std::memcpy(l.data.data() + offset_of(addr), &value, size);
}

void DataCache::notify(BlockAddr b) {
  auto it = watchers_.find(b);
  if (it == watchers_.end()) return;
  // Move out first: a watcher may re-subscribe synchronously.
  std::vector<std::function<void()>> fns = std::move(it->second);
  watchers_.erase(it);
  for (auto& fn : fns) fn();
}

} // namespace ccsim::mem
