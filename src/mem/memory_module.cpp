#include "mem/memory_module.hpp"

#include "sim/check.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace ccsim::mem {

Cycle MemoryModule::service_time(AccessKind kind) const noexcept {
  switch (kind) {
    case AccessKind::BlockRead: return timings_.block_read;
    case AccessKind::BlockWrite: return timings_.block_write;
    case AccessKind::WordRead: return timings_.word_read;
    case AccessKind::WordWrite: return timings_.word_write;
    case AccessKind::DirOnly: return timings_.dir_op;
  }
  return 1;
}

Cycle MemoryModule::book(Cycle now, AccessKind kind) {
  const Cycle start = std::max(now, busy_until_);
  busy_until_ = start + service_time(kind);
  return busy_until_;
}

std::uint64_t MemoryModule::read_word(Addr addr, std::size_t size) const {
  CCSIM_CHECK(within_word(addr, size),
              "addr=%#llx size=%zu: memory read crosses a word boundary",
              static_cast<unsigned long long>(addr), size);
  auto& blk = store_[block_of(addr)];  // zero-init on first touch
  std::uint64_t v = 0;
  std::memcpy(&v, blk.data() + offset_of(addr), size);
  return v;
}

void MemoryModule::write_word(Addr addr, std::size_t size, std::uint64_t value) {
  CCSIM_CHECK(within_word(addr, size),
              "addr=%#llx size=%zu: memory write crosses a word boundary",
              static_cast<unsigned long long>(addr), size);
  auto& blk = store_[block_of(addr)];
  std::memcpy(blk.data() + offset_of(addr), &value, size);
}

const std::array<std::byte, kBlockSize>& MemoryModule::read_block(BlockAddr b) {
  return store_[b];
}

void MemoryModule::write_block(BlockAddr b, const std::array<std::byte, kBlockSize>& data) {
  store_[b] = data;
}

} // namespace ccsim::mem
