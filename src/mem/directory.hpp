// Full-map directory (one entry per shared block, lazily created).
#pragma once

#include "mem/address.hpp"
#include "sim/types.hpp"

#include <bit>
#include <cstdint>
#include <unordered_map>

namespace ccsim::mem {

/// Home-side view of a block.
enum class DirState : std::uint8_t {
  Unowned,   ///< no cached copies
  Shared,    ///< WI: one or more clean copies
  Exclusive, ///< WI: one dirty copy at `owner`
  Update,    ///< PU/CU: copies at `sharers`, memory up to date
  Private,   ///< PU: one retained-update copy at `owner` (may be dirty)
};

struct DirEntry {
  DirState state = DirState::Unowned;
  std::uint64_t sharers = 0;  ///< full-map bit vector
  NodeId owner = kInvalidNode;

  [[nodiscard]] bool has_sharer(NodeId n) const noexcept {
    return (sharers >> n) & 1u;
  }
  void add_sharer(NodeId n) noexcept { sharers |= std::uint64_t{1} << n; }
  void remove_sharer(NodeId n) noexcept { sharers &= ~(std::uint64_t{1} << n); }
  [[nodiscard]] unsigned sharer_count() const noexcept {
    return static_cast<unsigned>(std::popcount(sharers));
  }
  [[nodiscard]] bool only_sharer_is(NodeId n) const noexcept {
    return sharers == (std::uint64_t{1} << n);
  }
};

class Directory {
public:
  /// Entry for block `b`, creating an Unowned one on first touch.
  [[nodiscard]] DirEntry& entry(BlockAddr b) { return map_[b]; }

  [[nodiscard]] const DirEntry* find(BlockAddr b) const {
    auto it = map_.find(b);
    return it == map_.end() ? nullptr : &it->second;
  }

  [[nodiscard]] const std::unordered_map<BlockAddr, DirEntry>& entries() const {
    return map_;
  }

private:
  std::unordered_map<BlockAddr, DirEntry> map_;
};

} // namespace ccsim::mem
