// Direct-mapped data cache holding real data.
//
// Caches (like memories) store actual bytes and messages carry values, so
// algorithm correctness -- MCS queue pointers, ticket values, reduction
// results -- exercises protocol correctness: a mis-ordered update or a lost
// invalidation corrupts program results and fails the test suite.
//
// 64 KB direct-mapped with 64-byte blocks (paper, section 3.1) by default.
#pragma once

#include "mem/address.hpp"
#include "sim/types.hpp"

#include <array>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

namespace ccsim::mem {

/// Per-line coherence state. WI uses Invalid/Shared/Modified; the update
/// protocols use Invalid/ValidU/PrivateDirty (PrivateDirty only under PU's
/// private-block optimization).
enum class LineState : std::uint8_t {
  Invalid,
  Shared,       ///< WI: clean, possibly replicated
  Modified,     ///< WI: exclusive dirty
  ValidU,       ///< update protocols: valid, kept fresh by updates
  PrivateDirty, ///< PU: home granted private mode; writes stay local
};

struct CacheLine {
  BlockAddr block = 0;
  LineState state = LineState::Invalid;
  std::uint8_t cu_counter = 0;  ///< competitive-update counter (CU only)
  std::array<std::byte, kBlockSize> data{};

  [[nodiscard]] bool valid() const noexcept { return state != LineState::Invalid; }
};

class DataCache {
public:
  explicit DataCache(std::size_t size_bytes = 64 * 1024);

  [[nodiscard]] std::size_t num_sets() const noexcept { return lines_.size(); }

  /// The (single) line that block `b` maps to, whatever it currently holds.
  [[nodiscard]] CacheLine& set_for(BlockAddr b) noexcept {
    return lines_[static_cast<std::size_t>(b) & (lines_.size() - 1)];
  }
  [[nodiscard]] const CacheLine& set_for(BlockAddr b) const noexcept {
    return lines_[static_cast<std::size_t>(b) & (lines_.size() - 1)];
  }

  /// The line holding block `b`, or nullptr if absent/invalid.
  [[nodiscard]] CacheLine* find(BlockAddr b) noexcept {
    CacheLine& l = set_for(b);
    return (l.valid() && l.block == b) ? &l : nullptr;
  }
  [[nodiscard]] const CacheLine* find(BlockAddr b) const noexcept {
    const CacheLine& l = set_for(b);
    return (l.valid() && l.block == b) ? &l : nullptr;
  }

  /// Direct set access for auditors (i < num_sets()).
  [[nodiscard]] const CacheLine& line_at(std::size_t i) const noexcept {
    return lines_[i];
  }

  /// Read up to 8 bytes from a resident line. The caller must know the line
  /// is present (checked in debug builds).
  [[nodiscard]] std::uint64_t read(Addr addr, std::size_t size) const;

  /// Write up to 8 bytes into a resident line.
  void write(Addr addr, std::size_t size, std::uint64_t value);

  // --- line-change notification (spin-wait support) -------------------
  //
  // Cpu::spin_until subscribes to a block; protocol code calls notify()
  // after any state or data mutation (fill, update, invalidation, drop,
  // eviction). Watchers are one-shot: notify() clears the list.

  void watch(BlockAddr b, std::function<void()> fn) {
    watchers_[b].push_back(std::move(fn));
  }
  void notify(BlockAddr b);

  [[nodiscard]] bool has_watchers(BlockAddr b) const {
    return watchers_.contains(b);
  }

private:
  std::vector<CacheLine> lines_;
  std::unordered_map<BlockAddr, std::vector<std::function<void()>>> watchers_;
};

} // namespace ccsim::mem
