#include "mem/address.hpp"
