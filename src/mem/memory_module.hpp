// Per-node memory module: backing store plus bank timing.
//
// A memory module can provide the first word 20 cycles after a request and
// subsequent words at 1 word/cycle; memory contention is fully modeled
// (paper, section 3.1) as bank occupancy: each access books the bank from
// its start until its completion, and a request arriving while the bank is
// busy waits.
#pragma once

#include "mem/address.hpp"
#include "sim/types.hpp"

#include <array>
#include <cstddef>
#include <cstdint>
#include <unordered_map>

namespace ccsim::mem {

/// Service times for the kinds of work a home performs.
struct MemTimings {
  Cycle block_read = 27;  ///< 20-cycle first word + 7 more words
  Cycle block_write = 8;  ///< buffered writeback absorb
  Cycle word_read = 20;   ///< atomic read-modify-write reads the word
  Cycle word_write = 4;   ///< buffered word write (update write-through)
  Cycle dir_op = 2;       ///< directory-only bookkeeping
};

class MemoryModule {
public:
  explicit MemoryModule(MemTimings t = {}) : timings_(t) {}

  enum class AccessKind { BlockRead, BlockWrite, WordRead, WordWrite, DirOnly };

  /// Book the bank for one access starting no earlier than `now`.
  /// Returns the completion time.
  Cycle book(Cycle now, AccessKind kind);

  // --- backing store (blocks are lazily zero-initialized) -------------

  [[nodiscard]] std::uint64_t read_word(Addr addr, std::size_t size) const;
  void write_word(Addr addr, std::size_t size, std::uint64_t value);

  [[nodiscard]] const std::array<std::byte, kBlockSize>& read_block(BlockAddr b);
  void write_block(BlockAddr b, const std::array<std::byte, kBlockSize>& data);

  [[nodiscard]] Cycle busy_until() const noexcept { return busy_until_; }
  [[nodiscard]] const MemTimings& timings() const noexcept { return timings_; }

private:
  [[nodiscard]] Cycle service_time(AccessKind kind) const noexcept;

  MemTimings timings_;
  Cycle busy_until_ = 0;
  mutable std::unordered_map<BlockAddr, std::array<std::byte, kBlockSize>> store_;
};

} // namespace ccsim::mem
