// Address arithmetic and machine-wide geometry constants.
//
// The simulated machine follows the paper's parameters: 64-byte cache
// blocks, and an 8-byte word as the unit of update propagation and of the
// miss/update classification algorithms (8 words per block). Words are
// 8 bytes so that flags, counters and MCS queue pointers each occupy
// exactly one classified word.
#pragma once

#include "sim/types.hpp"

#include <cassert>
#include <cstddef>

namespace ccsim::mem {

inline constexpr std::size_t kBlockSize = 64;  ///< bytes per cache block
inline constexpr std::size_t kWordSize = 8;    ///< bytes per classified word
inline constexpr std::size_t kWordsPerBlock = kBlockSize / kWordSize;

/// Block number of an address (addresses within one block share it).
using BlockAddr = Addr;

[[nodiscard]] constexpr BlockAddr block_of(Addr a) noexcept { return a / kBlockSize; }

/// First byte address of a block.
[[nodiscard]] constexpr Addr block_base(BlockAddr b) noexcept { return b * kBlockSize; }

/// Word index (0..7) of an address within its block.
[[nodiscard]] constexpr unsigned word_of(Addr a) noexcept {
  return static_cast<unsigned>((a / kWordSize) % kWordsPerBlock);
}

/// Byte offset of an address within its block.
[[nodiscard]] constexpr std::size_t offset_of(Addr a) noexcept {
  return static_cast<std::size_t>(a % kBlockSize);
}

/// True if [a, a+size) stays within one word. Every simulated access must
/// (the classification algorithms are word-granular).
[[nodiscard]] constexpr bool within_word(Addr a, std::size_t size) noexcept {
  return size <= kWordSize && (a % kWordSize) + size <= kWordSize;
}

/// Base of the simulated shared segment. Anything below is private memory
/// that the coherence machinery never sees.
inline constexpr Addr kSharedBase = 0x1000'0000;

[[nodiscard]] constexpr bool is_shared(Addr a) noexcept { return a >= kSharedBase; }

} // namespace ccsim::mem
