#include "mem/write_buffer.hpp"

namespace ccsim::mem {

std::optional<std::uint64_t> WriteBuffer::forward(Addr addr, std::size_t size) const {
  for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) {
    if (it->addr == addr && it->size == size) return it->value;
  }
  return std::nullopt;
}

bool WriteBuffer::contains_block(BlockAddr b) const {
  for (const auto& e : entries_) {
    if (block_of(e.addr) == b) return true;
  }
  return false;
}

bool WriteBuffer::partially_overlaps(Addr addr, std::size_t size) const {
  const Addr lo = addr, hi = addr + size;
  for (const auto& e : entries_) {
    const Addr elo = e.addr, ehi = e.addr + e.size;
    const bool overlap = elo < hi && lo < ehi;
    const bool exact = e.addr == addr && e.size == size;
    if (overlap && !exact) return true;
  }
  return false;
}

} // namespace ccsim::mem
