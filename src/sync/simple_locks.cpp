#include "sync/simple_locks.hpp"

#include "obs/cycle_accounting.hpp"

#include <algorithm>

namespace ccsim::sync {

TasLock::TasLock(harness::Machine& m, NodeId home, BackoffParams b)
    : lock_(m.alloc().allocate_on(home, mem::kWordSize, "tas.lock")), backoff_(b) {}

sim::Task TasLock::acquire(cpu::Cpu& c) {
  obs::ScopedPhase phase(c.ledger(), c.id(), obs::CycleCat::LockWait,
                         obs::SyncPhase::LockAcquire);
  Cycle delay = backoff_.initial;
  for (;;) {
    const std::uint64_t old = co_await c.fetch_store(lock_, 1);
    if (old == 0) co_return;
    co_await c.think(delay);
    delay = std::min<Cycle>(delay * 2, backoff_.max);
  }
}

sim::Task TasLock::release(cpu::Cpu& c) {
  obs::ScopedPhase phase(c.ledger(), c.id(), obs::CycleCat::LockWait,
                         obs::SyncPhase::LockRelease);
  co_await c.fence();  // release semantics
  co_await c.store(lock_, 0);
}

TtasLock::TtasLock(harness::Machine& m, NodeId home, BackoffParams b)
    : lock_(m.alloc().allocate_on(home, mem::kWordSize, "ttas.lock")), backoff_(b) {}

sim::Task TtasLock::acquire(cpu::Cpu& c) {
  obs::ScopedPhase phase(c.ledger(), c.id(), obs::CycleCat::LockWait,
                         obs::SyncPhase::LockAcquire);
  Cycle delay = backoff_.initial;
  for (;;) {
    // Test: spin in the cache until the lock looks free (no global traffic
    // per iteration -- the re-check happens only when the line changes).
    co_await c.spin_until(lock_, [](std::uint64_t v) { return v == 0; });
    // Test-and-set: one global attempt.
    const std::uint64_t old = co_await c.fetch_store(lock_, 1);
    if (old == 0) co_return;
    co_await c.think(delay);
    delay = std::min<Cycle>(delay * 2, backoff_.max);
  }
}

sim::Task TtasLock::release(cpu::Cpu& c) {
  obs::ScopedPhase phase(c.ledger(), c.id(), obs::CycleCat::LockWait,
                         obs::SyncPhase::LockRelease);
  co_await c.fence();
  co_await c.store(lock_, 0);
}

} // namespace ccsim::sync
