// Reductions built directly on atomic primitives -- a third strategy
// beyond the paper's lock-based parallel and owner-based sequential
// reductions, and a natural extension of its framework: under update-based
// protocols the atomic executes AT THE MEMORY, so a fetch_and_add
// reduction is effectively hardware combining at the home node.
//
//   - AtomicSumReduction: every processor fetch_and_adds its contribution
//     into the shared accumulator (associative op done by the home under
//     PU/CU, by the cache owner under WI);
//   - CasMaxReduction: lock-free maximum via a compare_and_swap retry
//     loop (reads are cheap, the CAS only fires while the candidate still
//     beats the current global value).
//
// Both follow figure 6's round structure: contribute; BARRIER; use;
// BARRIER. See bench/abl_reduction_atomic.
#pragma once

#include "harness/machine.hpp"
#include "sync/sync.hpp"

namespace ccsim::sync {

class AtomicSumReduction {
public:
  AtomicSumReduction(harness::Machine& m, Barrier& barrier, NodeId home = 0);

  /// Add `value` into the running global sum; `*result` receives the sum
  /// this processor observed after the barrier.
  sim::Task reduce(cpu::Cpu& c, std::uint64_t value, std::uint64_t* result = nullptr);

  [[nodiscard]] Addr sum_addr() const noexcept { return sum_; }

private:
  Addr sum_;
  Barrier& barrier_;
};

class CasMaxReduction {
public:
  CasMaxReduction(harness::Machine& m, Barrier& barrier, NodeId home = 0);

  /// Fold `value` into the running global maximum.
  sim::Task reduce(cpu::Cpu& c, std::uint64_t value, std::uint64_t* result = nullptr);

  [[nodiscard]] Addr max_addr() const noexcept { return max_; }

private:
  Addr max_;
  Barrier& barrier_;
};

} // namespace ccsim::sync
