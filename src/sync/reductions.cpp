#include "sync/reductions.hpp"

#include "obs/cycle_accounting.hpp"

#include <string>

namespace ccsim::sync {

ParallelReduction::ParallelReduction(harness::Machine& m, Lock& lock, Barrier& barrier,
                                     NodeId home)
    : max_(m.alloc().allocate_on(home, mem::kWordSize, "reduction.max")),
      lock_(lock),
      barrier_(barrier) {}

sim::Task ParallelReduction::reduce(cpu::Cpu& c, std::uint64_t value,
                                    std::uint64_t* result) {
  // LOCK; if (max < local_max) max := local_max; UNLOCK  (figure 6)
  {
    // Innermost-scope-wins: the lock's own acquire/release spans charge
    // lock_wait; only the folding in between lands in reduction_wait.
    obs::ScopedPhase combine(c.ledger(), c.id(), obs::CycleCat::ReductionWait,
                             obs::SyncPhase::ReductionCombine);
    co_await lock_.acquire(c);
    const std::uint64_t m = co_await c.load(max_);
    if (m < value) co_await c.store(max_, value);
    co_await lock_.release(c);
  }

  co_await barrier_.wait(c);
  const std::uint64_t global = co_await c.load(max_);  // code that uses max
  if (result) *result = global;
  co_await barrier_.wait(c);
}

SequentialReduction::SequentialReduction(harness::Machine& m, Barrier& barrier,
                                         NodeId home)
    : max_(m.alloc().allocate_on(home, mem::kWordSize, "reduction.max")),
      parties_(m.nprocs()),
      barrier_(barrier) {
  locals_.reserve(parties_);
  for (NodeId i = 0; i < parties_; ++i)
    locals_.push_back(m.alloc().allocate_on(
        i, mem::kWordSize, "reduction.local" + std::to_string(i)));
}

sim::Task SequentialReduction::reduce(cpu::Cpu& c, std::uint64_t value,
                                      std::uint64_t* result) {
  // Publish the local value, then processor 0 folds the array (figure 7).
  {
    obs::ScopedPhase combine(c.ledger(), c.id(), obs::CycleCat::ReductionWait,
                             obs::SyncPhase::ReductionCombine);
    co_await c.store(local_max_addr(c.id()), value);
  }
  co_await barrier_.wait(c);
  if (c.id() == 0) {
    obs::ScopedPhase combine(c.ledger(), c.id(), obs::CycleCat::ReductionWait,
                             obs::SyncPhase::ReductionCombine);
    for (NodeId i = 0; i < parties_; ++i) {
      const std::uint64_t l = co_await c.load(local_max_addr(i));
      const std::uint64_t m = co_await c.load(max_);
      if (m < l) co_await c.store(max_, l);
    }
  }
  co_await barrier_.wait(c);
  const std::uint64_t global = co_await c.load(max_);  // code that uses max
  if (result) *result = global;
}

} // namespace ccsim::sync
