// Abstract lock / barrier interfaces.
//
// Every construct in this library (and any user-defined one) implements
// these, so workloads and reductions can be composed with any
// implementation -- including the zero-traffic "magic" ones the paper uses
// to isolate reduction behavior (section 4.3).
#pragma once

#include "cpu/cpu.hpp"
#include "sim/task.hpp"

namespace ccsim::sync {

class Lock {
public:
  virtual ~Lock() = default;
  virtual sim::Task acquire(cpu::Cpu& c) = 0;
  virtual sim::Task release(cpu::Cpu& c) = 0;
};

class Barrier {
public:
  virtual ~Barrier() = default;
  virtual sim::Task wait(cpu::Cpu& c) = 0;
};

} // namespace ccsim::sync
