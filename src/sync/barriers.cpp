#include "sync/barriers.hpp"

#include "obs/cycle_accounting.hpp"

#include <bit>
#include <string>

namespace ccsim::sync {

// ---------------------------------------------------------------------
// CentralBarrier
// ---------------------------------------------------------------------

CentralBarrier::CentralBarrier(harness::Machine& m, NodeId home)
    : base_(m.alloc().allocate_on(home, 2 * mem::kWordSize, "central_barrier")),
      parties_(m.nprocs()),
      local_sense_(m.nprocs(), 1) {
  m.poke(count_addr(), parties_);
  // Figure 3: both the global sense and every local_sense start true; the
  // first episode spins on the toggled local value (false), so the global
  // sense must NOT begin there.
  m.poke(sense_addr(), 1);
}

sim::Task CentralBarrier::wait(cpu::Cpu& c) {
  // Each processor toggles its own (private) sense.
  const std::uint64_t ls = local_sense_[c.id()] ^ 1u;
  local_sense_[c.id()] = static_cast<std::uint8_t>(ls);
  std::uint64_t prev;
  {
    obs::ScopedPhase arrive(c.ledger(), c.id(), obs::CycleCat::BarrierWait,
                            obs::SyncPhase::BarrierArrive);
    co_await c.think(1);
    prev = co_await c.fetch_add(count_addr(), static_cast<std::uint64_t>(-1));
  }
  obs::ScopedPhase depart(c.ledger(), c.id(), obs::CycleCat::BarrierWait,
                          obs::SyncPhase::BarrierDepart);
  if (prev == 1) {
    // Last arriver: reset the count, then toggle the global sense.
    co_await c.store(count_addr(), parties_);
    co_await c.fence();
    co_await c.store(sense_addr(), ls);
  } else {
    co_await c.spin_until(sense_addr(),
                          [ls](std::uint64_t v) { return v == ls; });
  }
}

// ---------------------------------------------------------------------
// DisseminationBarrier
// ---------------------------------------------------------------------

DisseminationBarrier::DisseminationBarrier(harness::Machine& m)
    : parties_(m.nprocs()),
      rounds_(parties_ > 1 ? std::bit_width(parties_ - 1) : 1),
      state_(parties_) {
  flags_.reserve(parties_);
  for (NodeId i = 0; i < parties_; ++i)
    flags_.push_back(m.alloc().allocate_on(
        i, 2 * rounds_ * mem::kBlockSize, "dissem.flags" + std::to_string(i)));
  // allnodes[i].myflags[r][k] starts false for all i, r, k: memory is
  // zero-initialized, nothing to poke.
}

sim::Task DisseminationBarrier::wait(cpu::Cpu& c) {
  const NodeId pid = c.id();
  PerProc& st = state_[pid];
  if (parties_ == 1) {
    co_await c.think(1);
    co_return;
  }
  for (unsigned k = 0; k < rounds_; ++k) {
    const NodeId partner = static_cast<NodeId>((pid + (1u << k)) % parties_);
    {
      obs::ScopedPhase arrive(c.ledger(), c.id(), obs::CycleCat::BarrierWait,
                              obs::SyncPhase::BarrierArrive);
      co_await c.store(flag_addr(partner, st.parity, k), st.sense);
    }
    obs::ScopedPhase depart(c.ledger(), c.id(), obs::CycleCat::BarrierWait,
                            obs::SyncPhase::BarrierDepart);
    const std::uint64_t sense = st.sense;
    co_await c.spin_until(flag_addr(pid, st.parity, k),
                          [sense](std::uint64_t v) { return v == sense; });
  }
  if (st.parity == 1) st.sense ^= 1u;
  st.parity ^= 1u;
}

// ---------------------------------------------------------------------
// TreeBarrier
// ---------------------------------------------------------------------

TreeBarrier::TreeBarrier(harness::Machine& m)
    : parties_(m.nprocs()), sense_(m.nprocs(), 1), havechild_(m.nprocs()) {
  havechild_word_.resize(parties_);
  nodes_.reserve(parties_);
  for (NodeId i = 0; i < parties_; ++i) {
    // treenode: childnotready[0..3] packed as bytes of word 0 (figure 5);
    // word 1 is the record's pseudo-data.
    nodes_.push_back(m.alloc().allocate_on(i, 2 * mem::kWordSize,
                                           "tree.node" + std::to_string(i)));
  }
  globalsense_ = m.alloc().allocate_on(0, mem::kWordSize, "tree.globalsense");
  for (NodeId i = 0; i < parties_; ++i) {
    std::uint32_t word = 0;
    for (unsigned j = 0; j < kArity; ++j) {
      havechild_[i][j] = kArity * i + j + 1 < parties_;
      if (havechild_[i][j]) word |= 1u << (8 * j);
    }
    havechild_word_[i] = word;
    // childnotready starts equal to havechild.
    m.poke(nodes_[i], word, 4);
  }
  m.poke(globalsense_, 0);  // false; processors' sense starts true
}

sim::Task TreeBarrier::wait(cpu::Cpu& c) {
  const NodeId i = c.id();
  const std::uint64_t sense = sense_[i];

  // Wait until childnotready = {false,false,false,false} (the packed word
  // reaches zero), then re-arm it to havechild with one store.
  {
    obs::ScopedPhase arrive(c.ledger(), c.id(), obs::CycleCat::BarrierWait,
                            obs::SyncPhase::BarrierArrive);
    if (havechild_word_[i] != 0) {
      co_await c.spin_until(nodes_[i], [](std::uint64_t v) { return v == 0; });
      co_await c.store(nodes_[i], havechild_word_[i], 4);
    }
    co_await c.fence();  // arrivals release this subtree's prior writes
    if (i != 0) {
      // Tell the parent this subtree has arrived.
      const NodeId parent = (i - 1) / kArity;
      const unsigned slot = (i - 1) % kArity;
      co_await c.store(childnotready_addr(parent, slot), 0, 1);
    }
  }
  obs::ScopedPhase depart(c.ledger(), c.id(), obs::CycleCat::BarrierWait,
                          obs::SyncPhase::BarrierDepart);
  if (i != 0) {
    co_await c.spin_until(globalsense_,
                          [sense](std::uint64_t v) { return v == sense; });
  } else {
    co_await c.store(globalsense_, sense);
  }
  sense_[i] = sense ^ 1u;
}

// ---------------------------------------------------------------------
// CombiningTreeBarrier
// ---------------------------------------------------------------------

CombiningTreeBarrier::CombiningTreeBarrier(harness::Machine& m)
    : parties_(m.nprocs()), sense_(m.nprocs(), 1) {
  havechild_word_.resize(parties_);
  arrival_.reserve(parties_);
  wakeup_.reserve(parties_);
  for (NodeId i = 0; i < parties_; ++i) {
    arrival_.push_back(m.alloc().allocate_on(
        i, mem::kWordSize, "ctree.arrival" + std::to_string(i)));
    wakeup_.push_back(m.alloc().allocate_on(
        i, mem::kWordSize, "ctree.wakeup" + std::to_string(i)));
    std::uint32_t word = 0;
    for (unsigned j = 0; j < kArrivalArity; ++j) {
      if (kArrivalArity * i + j + 1 < parties_) word |= 1u << (8 * j);
    }
    havechild_word_[i] = word;
  }
  for (NodeId i = 0; i < parties_; ++i) {
    m.poke(arrival_[i], havechild_word_[i], 4);
    m.poke(wakeup_[i], 0);
  }
}

sim::Task CombiningTreeBarrier::wait(cpu::Cpu& c) {
  const NodeId i = c.id();
  const std::uint64_t sense = sense_[i];

  // Arrival: 4-ary fan-in, identical to the figure-5 tree.
  {
    obs::ScopedPhase arrive(c.ledger(), c.id(), obs::CycleCat::BarrierWait,
                            obs::SyncPhase::BarrierArrive);
    if (havechild_word_[i] != 0) {
      co_await c.spin_until(arrival_[i], [](std::uint64_t v) { return v == 0; });
      co_await c.store(arrival_[i], havechild_word_[i], 4);
    }
    if (i != 0) {
      const NodeId parent = (i - 1) / kArrivalArity;
      const unsigned slot = (i - 1) % kArrivalArity;
      co_await c.fence();
      co_await c.store(childnotready_addr(parent, slot), 0, 1);
    }
  }
  obs::ScopedPhase depart(c.ledger(), c.id(), obs::CycleCat::BarrierWait,
                          obs::SyncPhase::BarrierDepart);
  if (i != 0) {
    // Wakeup: spin on a flag in our own memory (exactly one writer).
    co_await c.spin_until(wakeup_[i],
                          [sense](std::uint64_t v) { return v == sense; });
  }
  // Propagate the wakeup down the binary tree.
  for (unsigned j = 1; j <= kWakeupArity; ++j) {
    const NodeId child = kWakeupArity * i + j;
    if (child < parties_) co_await c.store(wakeup_[child], sense);
  }
  sense_[i] = sense ^ 1u;
}

} // namespace ccsim::sync
