// The paper's three barriers (section 2.2):
//   - sense-reversing centralized barrier (figure 3),
//   - dissemination barrier (figure 4),
//   - 4-ary arrival-tree barrier with a global wakeup flag (figure 5,
//     the Mellor-Crummey & Scott tree barrier).
//
// Processor-private variables (sense, parity) are plain host-side state --
// private references cost 1 cycle and never touch the coherence machinery.
#pragma once

#include "harness/machine.hpp"
#include "sync/sync.hpp"

#include <array>
#include <cstdint>
#include <vector>

namespace ccsim::sync {

/// Sense-reversing centralized barrier. `count` (word 0) and `sense`
/// (word 1) share one block on the home node, as in the paper's figure 3
/// declarations -- the source of its heavy useless update traffic.
class CentralBarrier final : public Barrier {
public:
  explicit CentralBarrier(harness::Machine& m, NodeId home = 0);

  sim::Task wait(cpu::Cpu& c) override;

  [[nodiscard]] Addr count_addr() const noexcept { return base_; }
  [[nodiscard]] Addr sense_addr() const noexcept { return base_ + mem::kWordSize; }

private:
  Addr base_;
  unsigned parties_;
  std::vector<std::uint8_t> local_sense_;
};

/// Dissemination barrier: ceil(log2 P) rounds; in round k processor i
/// signals processor (i + 2^k) mod P. Each processor's flag array lives in
/// its own node's memory; signalling writes the partner's flag (remote,
/// no-allocate under the update protocols) and spinning reads the local one.
class DisseminationBarrier final : public Barrier {
public:
  explicit DisseminationBarrier(harness::Machine& m);

  sim::Task wait(cpu::Cpu& c) override;

  [[nodiscard]] unsigned rounds() const noexcept { return rounds_; }
  /// Each flag lives in its own cache block ("shared data are mapped to the
  /// processors that use them most frequently", section 4): the spinner and
  /// its single writer are then the block's only sharers, which is what
  /// gives the dissemination barrier its all-useful update traffic under
  /// PU/CU (figure 13).
  [[nodiscard]] Addr flag_addr(NodeId i, unsigned parity, unsigned round) const {
    return flags_.at(i) + (parity * rounds_ + round) * mem::kBlockSize;
  }

private:
  struct PerProc {
    unsigned parity = 0;
    std::uint64_t sense = 1;
  };
  unsigned parties_;
  unsigned rounds_;
  std::vector<Addr> flags_;
  std::vector<PerProc> state_;
};

/// 4-ary arrival tree + global wakeup flag (MCS tree barrier). Node i's
/// treenode lives on node i; per figure 5, childnotready is an array of
/// four BOOLEANS packed into the first word, so children 4i+1..4i+4 clear
/// one byte each, the parent spins on the whole word reaching zero and
/// re-arms it with a single 4-byte store of havechild. The root toggles a
/// global sense flag that everyone else spins on.
class TreeBarrier final : public Barrier {
public:
  explicit TreeBarrier(harness::Machine& m);

  sim::Task wait(cpu::Cpu& c) override;

  /// Byte address of childnotready[j] in node i's treenode.
  [[nodiscard]] Addr childnotready_addr(NodeId i, unsigned j) const {
    return nodes_.at(i) + j;
  }
  [[nodiscard]] Addr globalsense_addr() const noexcept { return globalsense_; }

private:
  static constexpr unsigned kArity = 4;

  unsigned parties_;
  std::vector<Addr> nodes_;  ///< per-processor treenode blocks
  Addr globalsense_;
  std::vector<std::uint64_t> sense_;
  std::vector<std::array<bool, kArity>> havechild_;
  std::vector<std::uint32_t> havechild_word_;  ///< re-arm value per node
};

/// The full MCS'91 scalable tree barrier (library extension beyond the
/// paper's figure 5): the same 4-ary arrival tree, but wakeup propagates
/// down a BINARY tree of per-processor flags instead of one global sense
/// word -- every processor spins on a flag in its own memory and receives
/// exactly one wakeup write. Under WI this removes the global-flag
/// invalidation storm; under PU/CU it makes the wakeup traffic one useful
/// update per processor (like the dissemination barrier's signals).
class CombiningTreeBarrier final : public Barrier {
public:
  explicit CombiningTreeBarrier(harness::Machine& m);

  sim::Task wait(cpu::Cpu& c) override;

  [[nodiscard]] Addr childnotready_addr(NodeId i, unsigned j) const {
    return arrival_.at(i) + j;
  }
  [[nodiscard]] Addr wakeup_addr(NodeId i) const { return wakeup_.at(i); }

private:
  static constexpr unsigned kArrivalArity = 4;
  static constexpr unsigned kWakeupArity = 2;

  unsigned parties_;
  std::vector<Addr> arrival_;  ///< per-processor childnotready words
  std::vector<Addr> wakeup_;   ///< per-processor wakeup flags (own block)
  std::vector<std::uint64_t> sense_;
  std::vector<std::uint32_t> havechild_word_;
};

} // namespace ccsim::sync
