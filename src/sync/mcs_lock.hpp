// MCS list-based queuing lock (paper figure 2), plus the paper's proposed
// update-conscious variant.
//
// Qnodes (next pointer, locked flag; 2 words) are PACKED into a shared
// array -- four qnodes per cache block -- as in the paper's experiments:
// processors spinning on their own flag thereby cache blocks holding other
// processors' qnodes, which under update-based protocols means they
// receive an update for each modification of those qnodes (section 4.1's
// "intense messaging activity"). A `padded` variant (one block per qnode,
// homed at its owner) is provided for the layout ablation. The global tail
// pointer lives on the lock's home node. Pointers are simulated addresses
// stored in simulated memory, so queue integrity exercises protocol
// correctness end to end.
//
// The update-conscious variant (update_conscious = true) adds the block
// flushes the paper proposes for update-based protocols: after linking
// behind a predecessor the acquirer flushes its cached copy of the
// predecessor's qnode, and after signalling its successor the releaser
// flushes its copy of the successor's qnode -- cutting the proliferation
// updates that otherwise flow to every past holder.
#pragma once

#include "harness/machine.hpp"
#include "sync/sync.hpp"

#include <vector>

namespace ccsim::sync {

class McsLock final : public Lock {
public:
  McsLock(harness::Machine& m, bool update_conscious = false, NodeId home = 0,
          bool padded = false);

  sim::Task acquire(cpu::Cpu& c) override;
  sim::Task release(cpu::Cpu& c) override;

  [[nodiscard]] Addr tail_addr() const noexcept { return tail_; }
  [[nodiscard]] Addr qnode_addr(NodeId i) const { return qnodes_.at(i); }

private:
  static constexpr Addr kNextOff = 0;
  static constexpr Addr kLockedOff = mem::kWordSize;

  Addr tail_;
  std::vector<Addr> qnodes_;
  bool update_conscious_;
};

} // namespace ccsim::sync
