// Centralized test-and-set locks (Mellor-Crummey & Scott '91), the
// baselines against which the paper's chosen locks (ticket, MCS) were
// originally established:
//
//   - TasLock:  spin on fetch_and_store(L, 1) with bounded exponential
//     backoff between attempts;
//   - TtasLock: "test-and-test&set" -- spin reading the lock word until it
//     looks free, then attempt the fetch_and_store, with backoff on
//     failure. Under WI the read spin stays in the local cache; under
//     PU/CU the spinners' copies are kept fresh by updates.
//
// Both extend the paper's study to the full MCS'91 lock set and plug into
// the same workloads and classifiers (see bench/abl_lock_algos).
#pragma once

#include "harness/machine.hpp"
#include "sync/sync.hpp"

namespace ccsim::sync {

struct BackoffParams {
  Cycle initial = 16;   ///< first pause after a failed attempt
  Cycle max = 1024;     ///< pause cap (bounded exponential backoff)
};

class TasLock final : public Lock {
public:
  explicit TasLock(harness::Machine& m, NodeId home = 0, BackoffParams b = {});

  sim::Task acquire(cpu::Cpu& c) override;
  sim::Task release(cpu::Cpu& c) override;

  [[nodiscard]] Addr lock_addr() const noexcept { return lock_; }

private:
  Addr lock_;
  BackoffParams backoff_;
};

class TtasLock final : public Lock {
public:
  explicit TtasLock(harness::Machine& m, NodeId home = 0, BackoffParams b = {});

  sim::Task acquire(cpu::Cpu& c) override;
  sim::Task release(cpu::Cpu& c) override;

  [[nodiscard]] Addr lock_addr() const noexcept { return lock_; }

private:
  Addr lock_;
  BackoffParams backoff_;
};

} // namespace ccsim::sync
