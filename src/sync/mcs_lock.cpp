#include "sync/mcs_lock.hpp"

#include "obs/cycle_accounting.hpp"

#include <string>

namespace ccsim::sync {

McsLock::McsLock(harness::Machine& m, bool update_conscious, NodeId home, bool padded)
    : tail_(m.alloc().allocate_on(home, mem::kWordSize, "mcs.tail")),
      update_conscious_(update_conscious) {
  qnodes_.reserve(m.nprocs());
  if (padded) {
    // Layout ablation: one block per qnode, homed at its owner.
    for (NodeId i = 0; i < m.nprocs(); ++i)
      qnodes_.push_back(m.alloc().allocate_on(
          i, 2 * mem::kWordSize, "mcs.qnode" + std::to_string(i)));
  } else {
    // The paper's layout: a packed shared array, four qnodes per block,
    // interleaved across the machine's memories.
    const Addr base =
        m.alloc().allocate(m.nprocs() * 2 * mem::kWordSize, mem::kBlockSize,
                           "mcs.qnodes");
    for (NodeId i = 0; i < m.nprocs(); ++i)
      qnodes_.push_back(base + i * 2 * mem::kWordSize);
  }
}

sim::Task McsLock::acquire(cpu::Cpu& c) {
  obs::ScopedPhase phase(c.ledger(), c.id(), obs::CycleCat::LockWait,
                         obs::SyncPhase::LockAcquire);
  const Addr I = qnodes_.at(c.id());
  co_await c.store(I + kNextOff, 0);
  const Addr pred = co_await c.fetch_store(tail_, I);
  if (pred != 0) {
    // Queue was non-empty: link behind the predecessor and spin on our own
    // flag. The write buffer drains FIFO, so locked=1 is performed before
    // pred->next becomes visible.
    co_await c.store(I + kLockedOff, 1);
    co_await c.store(pred + kNextOff, I);
    if (update_conscious_) co_await c.flush(pred);  // Flush *pred (figure 2)
    co_await c.spin_until(I + kLockedOff, [](std::uint64_t v) { return v == 0; });
  }
}

sim::Task McsLock::release(cpu::Cpu& c) {
  obs::ScopedPhase phase(c.ledger(), c.id(), obs::CycleCat::LockWait,
                         obs::SyncPhase::LockRelease);
  const Addr I = qnodes_.at(c.id());
  Addr next = co_await c.load(I + kNextOff);
  if (next == 0) {
    // No known successor: try to swing the tail back to nil.
    co_await c.fence();  // release semantics before the lock is freed
    const std::uint64_t old = co_await c.compare_swap(tail_, I, 0);
    if (old == I) co_return;
    // Someone is linking in; wait for the pointer to appear.
    next = co_await c.spin_until(I + kNextOff,
                                 [](std::uint64_t v) { return v != 0; });
  }
  co_await c.fence();
  co_await c.store(next + kLockedOff, 0);
  if (update_conscious_) co_await c.flush(next);  // Flush *(I->next) (figure 2)
}

} // namespace ccsim::sync
