// Parallel and sequential reduction operations (paper figures 6 and 7).
//
// Both compute a global maximum of per-processor values, round by round.
// The parallel reduction has every processor update the shared `max` inside
// a critical section; the sequential reduction has each processor publish
// its value into local_max[pid] and processor 0 fold the array.
//
// Repeated rounds: callers make each round's candidates strictly dominate
// the previous round's (e.g. by prefixing a round number, see
// harness/workloads.cpp), which restarts the reduction each round without
// extra reset traffic or races -- figures 6/7 show a single round.
#pragma once

#include "harness/machine.hpp"
#include "sync/sync.hpp"

namespace ccsim::sync {

class ParallelReduction {
public:
  ParallelReduction(harness::Machine& m, Lock& lock, Barrier& barrier, NodeId home = 0);

  /// One reduction round contributing `value`; `*result` (optional)
  /// receives the global maximum this processor observed.
  sim::Task reduce(cpu::Cpu& c, std::uint64_t value, std::uint64_t* result = nullptr);

  [[nodiscard]] Addr max_addr() const noexcept { return max_; }

private:
  Addr max_;
  Lock& lock_;
  Barrier& barrier_;
};

class SequentialReduction {
public:
  SequentialReduction(harness::Machine& m, Barrier& barrier, NodeId home = 0);

  sim::Task reduce(cpu::Cpu& c, std::uint64_t value, std::uint64_t* result = nullptr);

  [[nodiscard]] Addr max_addr() const noexcept { return max_; }
  /// local_max[i] is block-padded and homed at its writer (the paper's
  /// placement rule): the writer and processor 0 are then the slot's only
  /// sharers, making its update traffic useful (figure 16).
  [[nodiscard]] Addr local_max_addr(NodeId i) const { return locals_.at(i); }

private:
  Addr max_;
  std::vector<Addr> locals_;
  unsigned parties_;
  Barrier& barrier_;
};

} // namespace ccsim::sync
