#include "sync/magic_sync.hpp"

namespace ccsim::sync {

sim::Task MagicLock::acquire(cpu::Cpu& c) {
  co_await AcquireAwaiter{*this};
  // The acquire-path instructions run once the lock is granted (exiting
  // the spin, re-establishing the critical section) and are therefore part
  // of every critical section's serialized length -- the heart of section
  // 2.3's argument.
  co_await c.think(kAcquireCycles);
}

sim::Task MagicLock::release(cpu::Cpu& c) {
  // The lock variable itself generates no traffic, but release semantics
  // still apply: critical-section writes must be globally performed before
  // the next holder can run.
  co_await c.think(kReleaseCycles);
  co_await c.fence();
  if (waiters_.empty()) {
    held_ = false;
  } else {
    auto h = waiters_.front();
    waiters_.pop_front();
    q_.schedule(1, [h] { h.resume(); });
  }
  co_await sim::delay(c.queue(), 1);
}

sim::Task MagicBarrier::wait(cpu::Cpu& c) {
  // Same release semantics as a real barrier: everything written before
  // arrival is visible to every processor after departure.
  co_await c.think(kArriveCycles);
  co_await c.fence();
  co_await WaitAwaiter{*this};
}

} // namespace ccsim::sync
