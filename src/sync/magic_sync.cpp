#include "sync/magic_sync.hpp"

#include "obs/cycle_accounting.hpp"

namespace ccsim::sync {

sim::Task MagicLock::acquire(cpu::Cpu& c) {
  obs::ScopedPhase phase(c.ledger(), c.id(), obs::CycleCat::LockWait,
                         obs::SyncPhase::LockAcquire);
  co_await AcquireAwaiter{*this};
  // The acquire-path instructions run once the lock is granted (exiting
  // the spin, re-establishing the critical section) and are therefore part
  // of every critical section's serialized length -- the heart of section
  // 2.3's argument.
  co_await c.think(kAcquireCycles);
}

sim::Task MagicLock::release(cpu::Cpu& c) {
  obs::ScopedPhase phase(c.ledger(), c.id(), obs::CycleCat::LockWait,
                         obs::SyncPhase::LockRelease);
  // The lock variable itself generates no traffic, but release semantics
  // still apply: critical-section writes must be globally performed before
  // the next holder can run.
  co_await c.think(kReleaseCycles);
  co_await c.fence();
  if (waiters_.empty()) {
    held_ = false;
  } else {
    auto h = waiters_.front();
    waiters_.pop_front();
    q_.schedule(1, [h] { h.resume(); });
  }
  co_await sim::delay(c.queue(), 1);
}

sim::Task MagicBarrier::wait(cpu::Cpu& c) {
  // Same release semantics as a real barrier: everything written before
  // arrival is visible to every processor after departure.
  {
    obs::ScopedPhase arrive(c.ledger(), c.id(), obs::CycleCat::BarrierWait,
                            obs::SyncPhase::BarrierArrive);
    co_await c.think(kArriveCycles);
    co_await c.fence();
  }
  obs::ScopedPhase depart(c.ledger(), c.id(), obs::CycleCat::BarrierWait,
                          obs::SyncPhase::BarrierDepart);
  co_await WaitAwaiter{*this};
}

} // namespace ccsim::sync
