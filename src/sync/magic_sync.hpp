// "Magic" synchronization: mutual exclusion and barrier semantics with no
// coherence traffic, used by the reduction experiments to isolate the
// reduction's own communication (paper, section 4.3: "we simulated locks
// and barriers that synchronize without generating any communication
// traffic").
//
// The lock still serializes critical sections, and the lock-manipulation
// INSTRUCTIONS still execute and cost time -- section 2.3's argument is
// that "due to the manipulation of the lock variable, the sum of P
// critical sections of the parallel reduction is much longer than the
// critical path of the sequential reduction" (measured from gcc -O2
// output). kAcquireCycles/kReleaseCycles model that instruction overhead;
// only the memory TRAFFIC is magically free.
#pragma once

#include "sync/sync.hpp"

#include <coroutine>
#include <deque>
#include <vector>

namespace ccsim::sync {

class MagicLock final : public Lock {
public:
  /// Instruction cost of the acquire / release code paths (section 2.3's
  /// gcc -O2 lock-manipulation overhead).
  static constexpr Cycle kAcquireCycles = 12;
  static constexpr Cycle kReleaseCycles = 8;

  explicit MagicLock(sim::EventQueue& q) : q_(q) {}

  sim::Task acquire(cpu::Cpu& c) override;
  sim::Task release(cpu::Cpu& c) override;

private:
  struct AcquireAwaiter {
    MagicLock& l;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) {
      if (!l.held_) {
        l.held_ = true;
        l.q_.schedule(1, [h] { h.resume(); });
      } else {
        l.waiters_.push_back(h);
      }
    }
    void await_resume() const noexcept {}
  };

  sim::EventQueue& q_;
  bool held_ = false;
  std::deque<std::coroutine_handle<>> waiters_;
};

class MagicBarrier final : public Barrier {
public:
  /// Instruction cost of one barrier arrival (flag toggles and checks).
  static constexpr Cycle kArriveCycles = 6;

  MagicBarrier(sim::EventQueue& q, unsigned parties) : q_(q), parties_(parties) {}

  sim::Task wait(cpu::Cpu& c) override;

private:
  struct WaitAwaiter {
    MagicBarrier& b;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) {
      b.waiters_.push_back(h);
      if (b.waiters_.size() == b.parties_) {
        auto ws = std::move(b.waiters_);
        b.waiters_.clear();
        for (auto w : ws) b.q_.schedule(1, [w] { w.resume(); });
      }
    }
    void await_resume() const noexcept {}
  };

  sim::EventQueue& q_;
  unsigned parties_;
  std::vector<std::coroutine_handle<>> waiters_;
};

} // namespace ccsim::sync
