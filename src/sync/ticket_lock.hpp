// Centralized ticket lock (paper figure 1).
//
// Two shared counters live in one cache block on a chosen home node:
// next_ticket (word 0), handed out with fetch_and_add, and now_serving
// (word 1), spun on by waiters and incremented by the releaser. Keeping
// both in the same block matches the natural struct layout the paper uses
// and is what produces its false-sharing update traffic under PU/CU.
// A `split` variant places the counters in separate blocks, quantifying
// that layout cost (bench/abl_lock_layouts).
#pragma once

#include "harness/machine.hpp"
#include "sync/sync.hpp"

namespace ccsim::sync {

class TicketLock final : public Lock {
public:
  /// Allocates the lock's block(s) on `home` (default: node 0). With
  /// split = true the two counters get separate cache blocks.
  explicit TicketLock(harness::Machine& m, NodeId home = 0, bool split = false);

  sim::Task acquire(cpu::Cpu& c) override;
  sim::Task release(cpu::Cpu& c) override;

  [[nodiscard]] Addr next_ticket_addr() const noexcept { return next_; }
  [[nodiscard]] Addr now_serving_addr() const noexcept { return serving_; }

private:
  Addr next_;
  Addr serving_;
};

} // namespace ccsim::sync
