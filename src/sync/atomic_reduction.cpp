#include "sync/atomic_reduction.hpp"

#include "obs/cycle_accounting.hpp"

namespace ccsim::sync {

AtomicSumReduction::AtomicSumReduction(harness::Machine& m, Barrier& barrier,
                                       NodeId home)
    : sum_(m.alloc().allocate_on(home, mem::kWordSize, "atomic_reduction.sum")),
      barrier_(barrier) {}

sim::Task AtomicSumReduction::reduce(cpu::Cpu& c, std::uint64_t value,
                                     std::uint64_t* result) {
  {
    obs::ScopedPhase combine(c.ledger(), c.id(), obs::CycleCat::ReductionWait,
                             obs::SyncPhase::ReductionCombine);
    (void)co_await c.fetch_add(sum_, value);
  }
  co_await barrier_.wait(c);
  const std::uint64_t global = co_await c.load(sum_);
  if (result) *result = global;
  co_await barrier_.wait(c);
}

CasMaxReduction::CasMaxReduction(harness::Machine& m, Barrier& barrier, NodeId home)
    : max_(m.alloc().allocate_on(home, mem::kWordSize, "atomic_reduction.max")),
      barrier_(barrier) {}

sim::Task CasMaxReduction::reduce(cpu::Cpu& c, std::uint64_t value,
                                  std::uint64_t* result) {
  // Lock-free maximum: retry while our candidate still beats the global.
  {
    obs::ScopedPhase combine(c.ledger(), c.id(), obs::CycleCat::ReductionWait,
                             obs::SyncPhase::ReductionCombine);
    for (;;) {
      const std::uint64_t cur = co_await c.load(max_);
      if (cur >= value) break;
      const std::uint64_t old = co_await c.compare_swap(max_, cur, value);
      if (old == cur) break;  // our CAS installed the new maximum
      // Lost a race: someone raised the value; re-check against it.
    }
  }
  co_await barrier_.wait(c);
  const std::uint64_t global = co_await c.load(max_);
  if (result) *result = global;
  co_await barrier_.wait(c);
}

} // namespace ccsim::sync
