#include "sync/ticket_lock.hpp"

#include "obs/cycle_accounting.hpp"

namespace ccsim::sync {

TicketLock::TicketLock(harness::Machine& m, NodeId home, bool split) {
  if (split) {
    next_ = m.alloc().allocate_on(home, mem::kWordSize, "ticket.next");
    serving_ = m.alloc().allocate_on(home, mem::kWordSize, "ticket.serving");
  } else {
    next_ = m.alloc().allocate_on(home, 2 * mem::kWordSize, "ticket");
    serving_ = next_ + mem::kWordSize;
  }
}

sim::Task TicketLock::acquire(cpu::Cpu& c) {
  obs::ScopedPhase phase(c.ledger(), c.id(), obs::CycleCat::LockWait,
                         obs::SyncPhase::LockAcquire);
  const std::uint64_t my = co_await c.fetch_add(next_ticket_addr(), 1);
  co_await c.spin_until(now_serving_addr(),
                        [my](std::uint64_t v) { return v == my; });
}

sim::Task TicketLock::release(cpu::Cpu& c) {
  obs::ScopedPhase phase(c.ledger(), c.id(), obs::CycleCat::LockWait,
                         obs::SyncPhase::LockRelease);
  const std::uint64_t now = co_await c.load(now_serving_addr());
  // Release semantics: critical-section writes must be globally performed
  // before the next holder can observe now_serving advance.
  co_await c.fence();
  co_await c.store(now_serving_addr(), now + 1);
}

} // namespace ccsim::sync
