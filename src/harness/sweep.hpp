// Parallel sweep engine: run independent simulation configs concurrently.
//
// Every bench walks a (protocol x construct x machine size) grid of
// simulations that are deterministic, fully independent event-loop runs --
// there is no shared mutable state between two Machines. The sweep engine
// exploits that: a SweepJob names one cell of the grid, run_sweep() fans
// the jobs out over a pool of std::jthread workers (each job constructs
// its own Machine inside the worker), and results come back buffered
// per-job in submission order, so output built from them is byte-identical
// to a sequential run regardless of completion order or worker count.
//
// Failure containment: a job that throws is reported as a failed cell
// carrying the exception text (SweepResult::ok == false) instead of taking
// down the sweep -- the remaining cells still run and the caller decides
// whether a failed cell is fatal.
//
// Thread-safety contract: the simulator keeps all state inside the
// Machine, so concurrent jobs are safe as long as they do not share
// attachments. The one sharable attachment is ObsConfig::sink (trace
// sinks write to one stream); run_sweep() therefore rejects any job with
// a sink when more than one worker would run. Per-machine observability
// (profile, sampling, hot blocks) is safe and allowed.
#pragma once

#include "harness/workloads.hpp"

#include <functional>
#include <string>
#include <string_view>
#include <vector>

namespace ccsim::harness {

/// Which experiment family a SweepJob runs (the paper's three synthetic
/// programs, sections 4.1-4.3).
enum class ConstructFamily : std::uint8_t { Lock, Barrier, Reduction };

[[nodiscard]] std::string_view to_string(ConstructFamily f) noexcept;

/// One cell of a sweep grid: everything needed to run one simulation.
/// Only the member selected by `family` (and its params) is consulted.
struct SweepJob {
  std::string name;       ///< cell label, e.g. "fig08/tk/WI/p16"
  MachineConfig machine;  ///< protocol, nprocs, cu_threshold, obs, ...
  ConstructFamily family = ConstructFamily::Lock;
  LockKind lock = LockKind::Ticket;
  BarrierKind barrier = BarrierKind::Central;
  ReductionKind reduction = ReductionKind::Sequential;
  LockParams lock_params{};
  BarrierParams barrier_params{};
  ReductionParams reduction_params{};
  /// Custom experiment (tools/ccstress): when set, run_sweep_job invokes
  /// this instead of the family dispatch above. Must be safe to call from
  /// a worker thread (i.e. keep all state inside the Machine it builds).
  std::function<RunResult(const MachineConfig&)> runner;
};

/// The outcome of one cell: either a RunResult or an exception text.
struct SweepResult {
  std::string name;
  bool ok = false;
  /// What kind of failure a !ok cell is: a watchdog/deadlock trip, a
  /// coherence-invariant violation, or any other exception. Callers (the
  /// ccstress/ccsweep tools) map these to distinct exit codes.
  enum class FailKind : std::uint8_t { None, Deadlock, Invariant, Other };
  FailKind fail = FailKind::None;
  std::string error;  ///< exception text when !ok
  RunResult run;      ///< valid only when ok
};

[[nodiscard]] std::string_view to_string(SweepResult::FailKind k) noexcept;

struct SweepOptions {
  /// Worker threads. 1 = in-caller sequential execution (still with
  /// failure containment); 0 = one per hardware thread. The pool never
  /// exceeds the number of jobs.
  unsigned jobs = 1;
  /// Invoked after each cell completes with the number of cells finished
  /// so far and the total (tools wire a ProgressReporter here). Called
  /// from worker threads when jobs > 1 -- must be thread-safe.
  std::function<void(std::size_t done, std::size_t total)> progress;
};

/// Run one job synchronously, containing any exception as a failed cell.
[[nodiscard]] SweepResult run_sweep_job(const SweepJob& job);

/// Run every job and return results in submission order (results[i] is
/// jobs[i]). Throws std::invalid_argument before running anything if
/// more than one worker would run and a job carries a trace sink (the
/// only cross-job shared state; see the header comment).
[[nodiscard]] std::vector<SweepResult> run_sweep(
    const std::vector<SweepJob>& jobs, const SweepOptions& opts = {});

} // namespace ccsim::harness
