#include "harness/machine.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <string>

namespace ccsim::harness {

Machine::Machine(MachineConfig cfg)
    : cfg_(cfg),
      trace_(cfg.trace || cfg.obs.sink ? std::make_unique<sim::TraceLog>()
                                       : nullptr),
      alloc_(cfg.nprocs),
      misses_(cfg.nprocs, counters_),
      updates_(cfg.nprocs, counters_),
      net_(q_, net::MeshTopology(cfg.nprocs), cfg.net, &counters_.net),
      hot_(cfg.obs.hot_blocks ? std::make_unique<obs::HotBlockTable>() : nullptr),
      ledger_(cfg.obs.profile
                  ? std::make_unique<obs::CycleLedger>(cfg.nprocs, q_)
                  : nullptr),
      ctx_{q_,
           net_,
           alloc_,
           counters_,
           misses_,
           updates_,
           cfg.nprocs,
           cfg.cu_threshold,
           trace_.get(),
           hot_.get(),
           ledger_.get(),
           cfg.consistency,
           cfg.hybrid_default} {
  if (trace_) {
    if (cfg_.obs.sink) trace_->add_sink(cfg_.obs.sink);
    net_.set_trace(trace_.get());
  }
  if (hot_) {
    misses_.set_hot(hot_.get());
    updates_.set_hot(hot_.get());
  }
  if (ledger_) misses_.set_ledger(ledger_.get());
  nodes_.reserve(cfg_.nprocs);
  procs_.reserve(cfg_.nprocs);
  for (NodeId i = 0; i < cfg_.nprocs; ++i) {
    nodes_.push_back(std::make_unique<proto::Node>(cfg_.protocol, i, ctx_,
                                                   cfg_.cache_bytes, cfg_.wb_entries,
                                                   cfg_.timings));
    net_.attach(i, *nodes_.back());
    procs_.push_back(std::make_unique<cpu::Processor>(i, q_, nodes_[i]->cache_ctrl()));
    procs_.back()->cpu().set_ledger(ledger_.get());
  }
}

Cycle Machine::run(const std::vector<Program>& programs) {
  if (ran_) throw std::logic_error("Machine::run may only be called once");
  ran_ = true;
  if (programs.size() > cfg_.nprocs)
    throw std::invalid_argument("more programs than processors");

  unsigned remaining = static_cast<unsigned>(programs.size());
  for (std::size_t i = 0; i < programs.size(); ++i)
    procs_[i]->run(programs[i], [&remaining] { --remaining; });

  std::unique_ptr<obs::IntervalSampler> sampler;
  if (cfg_.obs.sample_interval > 0)
    sampler =
        std::make_unique<obs::IntervalSampler>(cfg_.obs.sample_interval, counters_);

  bool drained;
  if (sampler) {
    // Drive the queue manually so interval boundaries are cut at the right
    // sim times. A self-rescheduling sampler event would keep the queue
    // non-empty forever and defeat drain-based deadlock detection.
    while (!q_.empty() && q_.next_time() <= cfg_.max_cycles) {
      sampler->advance_to(q_.next_time());
      q_.step();
    }
    drained = q_.empty();
  } else {
    drained = q_.run_until(cfg_.max_cycles);
  }
  for (auto& p : procs_) p->rethrow_if_failed();
  if (remaining != 0) {
    std::string msg =
        drained ? "simulation deadlock: event queue drained with programs waiting"
                : "simulation exceeded max_cycles";
    msg += " (";
    msg += std::to_string(remaining);
    msg += " of ";
    msg += std::to_string(programs.size());
    msg += " programs unfinished; stuck:";
    for (std::size_t i = 0; i < programs.size(); ++i) {
      if (!procs_[i]->done()) {
        msg += ' ';
        msg += std::to_string(i);
      }
    }
    msg += ')';
    if (trace_) {
      msg += "\nlast trace events:\n";
      msg += trace_->tail(40);
    }
    throw std::runtime_error(msg);
  }
  updates_.finalize(q_.now());
  if (ledger_) ledger_->finalize(q_.now());
  if (sampler) {
    // After finalize: termination-classified updates land in the final
    // sample, preserving "interval deltas sum to the final counters".
    sampler->finish(q_.now());
    samples_ = sampler->series();
  }
  return q_.now();
}

std::vector<obs::HotBlockTable::Row> Machine::hot_blocks() const {
  if (!hot_) return {};
  return hot_->top(cfg_.obs.hot_top_k, &alloc_);
}

obs::ProfileSnapshot Machine::profile() const {
  if (!ledger_) return {};
  obs::ProfileSnapshot s = ledger_->snapshot();
  for (const auto& n : nodes_) {
    const mem::WriteBuffer& wb = n->cache_ctrl().write_buffer();
    s.wb_peak = std::max<std::uint64_t>(s.wb_peak, wb.peak());
    s.wb_pushes += wb.pushes();
  }
  return s;
}

Cycle Machine::run_all(const Program& program) {
  std::vector<Program> ps(cfg_.nprocs, program);
  return run(ps);
}

void Machine::poke(Addr addr, std::uint64_t value, std::size_t size) {
  assert(mem::is_shared(addr));
  const mem::BlockAddr b = mem::block_of(addr);
  const NodeId home = alloc_.home_of(b);
  nodes_[home]->home_ctrl().memory_for(b).write_word(addr, size, value);
}

void Machine::bind_protocol(Addr addr, std::size_t size, proto::Protocol p) {
  if (cfg_.protocol != proto::Protocol::Hybrid)
    throw std::logic_error("bind_protocol requires Protocol::Hybrid");
  alloc_.set_domain(addr, size, proto::domain_of_protocol(p));
}

std::uint64_t Machine::peek(Addr addr, std::size_t size) {
  const mem::BlockAddr b = mem::block_of(addr);
  const NodeId home = alloc_.home_of(b);
  auto& hc = nodes_[home]->home_ctrl();
  // A dirty copy (WI Exclusive / PU Private) holds the freshest data.
  if (const mem::DirEntry* e = hc.directory_for(b).find(b);
      e && (e->state == mem::DirState::Exclusive || e->state == mem::DirState::Private) &&
      e->owner != kInvalidNode) {
    if (nodes_[e->owner]->cache_ctrl().cache_for(b).find(b))
      return nodes_[e->owner]->cache_ctrl().cache_for(b).read(addr, size);
  }
  return hc.memory_for(b).read_word(addr, size);
}

} // namespace ccsim::harness
