#include "harness/machine.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <string>

namespace ccsim::harness {

Machine::Machine(MachineConfig cfg)
    : cfg_(cfg),
      trace_(cfg.trace || cfg.obs.sink || cfg.obs.check_invariants
                 ? std::make_unique<sim::TraceLog>()
                 : nullptr),
      alloc_(cfg.nprocs),
      misses_(cfg.nprocs, counters_),
      updates_(cfg.nprocs, counters_),
      net_(q_, net::MeshTopology(cfg.nprocs), cfg.net, &counters_.net),
      hot_(cfg.obs.hot_blocks ? std::make_unique<obs::HotBlockTable>() : nullptr),
      ledger_(cfg.obs.profile
                  ? std::make_unique<obs::CycleLedger>(cfg.nprocs, q_)
                  : nullptr),
      checker_(cfg.obs.check_invariants ? std::make_unique<obs::InvariantChecker>()
                                        : nullptr),
      host_(cfg.obs.host_metrics ? std::make_unique<obs::HostPerfCollector>(
                                       cfg.obs.host_queue_sample)
                                 : nullptr),
      sharing_(cfg.obs.sharing ? std::make_unique<obs::SharingTracker>(
                                     cfg.nprocs, cfg.cu_threshold)
                               : nullptr),
      ctx_{q_,
           net_,
           alloc_,
           counters_,
           misses_,
           updates_,
           cfg.nprocs,
           cfg.cu_threshold,
           trace_.get(),
           hot_.get(),
           ledger_.get(),
           checker_.get(),
           host_.get(),
           sharing_.get(),
           cfg.consistency,
           cfg.hybrid_default} {
  if (checker_ && cfg_.protocol == proto::Protocol::Hybrid)
    throw std::invalid_argument(
        "check_invariants is not supported on Protocol::Hybrid");
  if (trace_) {
    if (cfg_.obs.sink) trace_->add_sink(cfg_.obs.sink);
    net_.set_trace(trace_.get());
  }
  if (hot_) {
    misses_.set_hot(hot_.get());
    updates_.set_hot(hot_.get());
  }
  if (ledger_) misses_.set_ledger(ledger_.get());
  if (host_) net_.set_host(host_.get());
  nodes_.reserve(cfg_.nprocs);
  procs_.reserve(cfg_.nprocs);
  for (NodeId i = 0; i < cfg_.nprocs; ++i) {
    nodes_.push_back(std::make_unique<proto::Node>(cfg_.protocol, i, ctx_,
                                                   cfg_.cache_bytes, cfg_.wb_entries,
                                                   cfg_.timings));
    net_.attach(i, *nodes_.back());
    procs_.push_back(std::make_unique<cpu::Processor>(i, q_, nodes_[i]->cache_ctrl()));
    procs_.back()->cpu().set_ledger(ledger_.get());
    procs_.back()->cpu().set_progress(&progress_);
  }
  if (checker_) {
    checker_->set_alloc(&alloc_);
    for (NodeId i = 0; i < cfg_.nprocs; ++i)
      checker_->attach_node(&nodes_[i]->cache_ctrl().cache(),
                            &nodes_[i]->home_ctrl().directory(),
                            &nodes_[i]->home_ctrl().memory());
    trace_->add_sink(checker_.get());
  }
}

Cycle Machine::run(const std::vector<Program>& programs) {
  if (ran_) throw std::logic_error("Machine::run may only be called once");
  ran_ = true;
  if (programs.size() > cfg_.nprocs)
    throw std::invalid_argument("more programs than processors");

  unsigned remaining = static_cast<unsigned>(programs.size());
  for (std::size_t i = 0; i < programs.size(); ++i)
    procs_[i]->run(programs[i], [&remaining] { --remaining; });

  std::unique_ptr<obs::IntervalSampler> sampler;
  if (cfg_.obs.sample_interval > 0)
    sampler =
        std::make_unique<obs::IntervalSampler>(cfg_.obs.sample_interval, counters_);

  if (host_) host_->run_begin();
  const bool watch = cfg_.watchdog_stall_cycles > 0;
  std::uint64_t seen_progress = progress_;
  Cycle progress_cycle = q_.now();
  bool drained;
  if (sampler || watch || host_) {
    // Drive the queue manually so interval boundaries are cut at the right
    // sim times (a self-rescheduling sampler event would keep the queue
    // non-empty forever and defeat drain-based deadlock detection), so
    // the watchdog can compare the next event time against the last cycle
    // at which some processor completed a memory operation, and so the
    // host collector can observe queue depth between events.
    while (!q_.empty() && q_.next_time() <= cfg_.max_cycles) {
      if (watch) {
        if (progress_ != seen_progress) {
          seen_progress = progress_;
          progress_cycle = q_.now();
        } else if (remaining != 0 &&
                   q_.next_time() > progress_cycle + cfg_.watchdog_stall_cycles) {
          throw DeadlockError(diagnose("watchdog: no memory operation completed for " +
                                           std::to_string(cfg_.watchdog_stall_cycles) +
                                           " cycles (livelock?)",
                                       remaining, programs.size()));
        }
      }
      if (sampler) {
        obs::ScopedHostCat t(host_.get(), obs::HostCat::ObsHooks);
        sampler->advance_to(q_.next_time());
      }
      if (host_) host_->before_event(q_.next_time(), q_.pending());
      q_.step();
    }
    drained = q_.empty();
  } else {
    drained = q_.run_until(cfg_.max_cycles);
  }
  for (auto& p : procs_) p->rethrow_if_failed();
  if (remaining != 0) {
    throw DeadlockError(diagnose(
        drained ? "event queue drained with programs waiting (lost wakeup?)"
                : "simulated time exceeded max_cycles",
        remaining, programs.size()));
  }
  if (checker_) {
    obs::ScopedHostCat t(host_.get(), obs::HostCat::ObsHooks);
    checker_->final_audit();
  }
  if (sharing_) {
    obs::ScopedHostCat t(host_.get(), obs::HostCat::ObsHooks);
    sharing_->finalize();
  }
  updates_.finalize(q_.now());
  if (ledger_) ledger_->finalize(q_.now());
  if (sampler) {
    // After finalize: termination-classified updates land in the final
    // sample, preserving "interval deltas sum to the final counters".
    sampler->finish(q_.now());
    samples_ = sampler->series();
  }
  if (host_) host_->run_end();
  return q_.now();
}

std::string Machine::diagnose(const std::string& what, unsigned remaining,
                              std::size_t nprograms) const {
  std::string msg = "simulation stalled: " + what;
  msg += " (cycle " + std::to_string(q_.now()) + "; " + std::to_string(remaining) +
         " of " + std::to_string(nprograms) + " programs unfinished)";
  msg += "\nstuck processors:";
  for (std::size_t i = 0; i < nprograms; ++i) {
    if (!procs_[i]->done()) {
      msg += ' ';
      msg += std::to_string(i);
    }
  }
  // Occupancy per node: in-flight messages addressed to it plus its cache
  // controller's queues. Quiet nodes are elided.
  msg += "\nnode occupancy (in-flight msgs, wb entries, mshrs, pending acks, "
         "outstanding ops):";
  bool any = false;
  for (NodeId i = 0; i < cfg_.nprocs; ++i) {
    const std::uint64_t inflight = net_.in_flight(i);
    const proto::CacheDebug d = nodes_[i]->cache_ctrl().debug_state();
    if (inflight == 0 && d.wb_entries == 0 && d.mshr == 0 && d.pending_acks == 0 &&
        d.outstanding == 0)
      continue;
    any = true;
    msg += "\n  node " + std::to_string(i) + ": inflight=" + std::to_string(inflight) +
           " wb=" + std::to_string(d.wb_entries) + " mshr=" + std::to_string(d.mshr) +
           " acks=" + std::to_string(d.pending_acks) +
           " outstanding=" + std::to_string(d.outstanding);
  }
  if (!any) msg += " (all quiet)";
  if (ledger_) {
    const obs::ProfileSnapshot s = ledger_->snapshot();
    msg += "\ncycle ledger: wall=" + std::to_string(s.wall);
  }
  if (trace_) {
    msg += "\nlast trace events:\n";
    msg += trace_->tail(40);
  }
  return msg;
}

std::vector<obs::HotBlockTable::Row> Machine::hot_blocks() const {
  if (!hot_) return {};
  return hot_->top(cfg_.obs.hot_top_k, &alloc_);
}

obs::HostPerfReport Machine::host_report() const {
  if (!host_) return {};
  obs::HostPerfReport r = host_->report();
  r.sim_cycles = q_.now();
  r.events_executed = q_.executed();
  r.events_scheduled = q_.scheduled();
  r.messages = counters_.net.messages + counters_.net.local;
  return r;
}

obs::SharingReport Machine::sharing_report() const {
  if (!sharing_) return {};
  return sharing_->report(&alloc_);
}

obs::ProfileSnapshot Machine::profile() const {
  if (!ledger_) return {};
  obs::ProfileSnapshot s = ledger_->snapshot();
  for (const auto& n : nodes_) {
    const mem::WriteBuffer& wb = n->cache_ctrl().write_buffer();
    s.wb_peak = std::max<std::uint64_t>(s.wb_peak, wb.peak());
    s.wb_pushes += wb.pushes();
  }
  return s;
}

Cycle Machine::run_all(const Program& program) {
  std::vector<Program> ps(cfg_.nprocs, program);
  return run(ps);
}

void Machine::poke(Addr addr, std::uint64_t value, std::size_t size) {
  assert(mem::is_shared(addr));
  const mem::BlockAddr b = mem::block_of(addr);
  const NodeId home = alloc_.home_of(b);
  mem::MemoryModule& m = nodes_[home]->home_ctrl().memory_for(b);
  m.write_word(addr, size, value);
  const Addr base = addr - addr % mem::kWordSize;
  if (checker_) {
    // Record the full resulting word so sub-word pokes stay consistent
    // with the checker's whole-word shadow.
    checker_->on_poke(base, m.read_word(base, mem::kWordSize));
  }
  if (sharing_) sharing_->on_poke(base);
}

void Machine::bind_protocol(Addr addr, std::size_t size, proto::Protocol p) {
  if (cfg_.protocol != proto::Protocol::Hybrid)
    throw std::logic_error("bind_protocol requires Protocol::Hybrid");
  alloc_.set_domain(addr, size, proto::domain_of_protocol(p));
}

std::uint64_t Machine::peek(Addr addr, std::size_t size) {
  const mem::BlockAddr b = mem::block_of(addr);
  const NodeId home = alloc_.home_of(b);
  auto& hc = nodes_[home]->home_ctrl();
  // A dirty copy (WI Exclusive / PU Private) holds the freshest data.
  if (const mem::DirEntry* e = hc.directory_for(b).find(b);
      e && (e->state == mem::DirState::Exclusive || e->state == mem::DirState::Private) &&
      e->owner != kInvalidNode) {
    if (nodes_[e->owner]->cache_ctrl().cache_for(b).find(b))
      return nodes_[e->owner]->cache_ctrl().cache_for(b).read(addr, size);
  }
  return hc.memory_for(b).read_word(addr, size);
}

} // namespace ccsim::harness
