#include "harness/sweep.hpp"

#include <atomic>
#include <algorithm>
#include <stdexcept>
#include <thread>

namespace ccsim::harness {

std::string_view to_string(ConstructFamily f) noexcept {
  switch (f) {
    case ConstructFamily::Lock: return "lock";
    case ConstructFamily::Barrier: return "barrier";
    case ConstructFamily::Reduction: return "reduction";
  }
  return "?";
}

std::string_view to_string(SweepResult::FailKind k) noexcept {
  switch (k) {
    case SweepResult::FailKind::None: return "none";
    case SweepResult::FailKind::Deadlock: return "deadlock";
    case SweepResult::FailKind::Invariant: return "invariant";
    case SweepResult::FailKind::Other: return "other";
  }
  return "?";
}

SweepResult run_sweep_job(const SweepJob& job) {
  SweepResult r;
  r.name = job.name;
  try {
    if (job.runner) {
      r.run = job.runner(job.machine);
    } else {
      switch (job.family) {
        case ConstructFamily::Lock:
          r.run = run_lock_experiment(job.machine, job.lock, job.lock_params);
          break;
        case ConstructFamily::Barrier:
          r.run = run_barrier_experiment(job.machine, job.barrier,
                                         job.barrier_params);
          break;
        case ConstructFamily::Reduction:
          r.run = run_reduction_experiment(job.machine, job.reduction,
                                           job.reduction_params);
          break;
      }
    }
    r.ok = true;
  } catch (const DeadlockError& e) {
    r.fail = SweepResult::FailKind::Deadlock;
    r.error = e.what();
  } catch (const obs::InvariantViolation& e) {
    r.fail = SweepResult::FailKind::Invariant;
    r.error = e.what();
  } catch (const std::exception& e) {
    r.fail = SweepResult::FailKind::Other;
    r.error = e.what();
  } catch (...) {
    r.fail = SweepResult::FailKind::Other;
    r.error = "unknown exception";
  }
  return r;
}

std::vector<SweepResult> run_sweep(const std::vector<SweepJob>& jobs,
                                   const SweepOptions& opts) {
  std::vector<SweepResult> results(jobs.size());
  if (jobs.empty()) return results;

  unsigned workers = opts.jobs != 0 ? opts.jobs
                                    : std::max(1u, std::thread::hardware_concurrency());
  workers = std::min<unsigned>(workers, static_cast<unsigned>(jobs.size()));

  if (workers > 1) {
    for (const SweepJob& j : jobs)
      if (j.machine.obs.sink != nullptr)
        throw std::invalid_argument(
            "sweep: job \"" + j.name +
            "\" carries a trace sink; sinks are not thread-safe, run with "
            "jobs=1");
  }

  if (workers == 1) {
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      results[i] = run_sweep_job(jobs[i]);
      if (opts.progress) opts.progress(i + 1, jobs.size());
    }
    return results;
  }

  // Work-stealing by shared index: each worker claims the next unclaimed
  // job. results[i] slots are disjoint per job, and the jthread joins at
  // scope exit publish every slot before we return.
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  {
    std::vector<std::jthread> pool;
    pool.reserve(workers);
    for (unsigned w = 0; w < workers; ++w) {
      pool.emplace_back([&jobs, &results, &next, &done, &opts] {
        for (;;) {
          const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
          if (i >= jobs.size()) return;
          results[i] = run_sweep_job(jobs[i]);
          const std::size_t d = done.fetch_add(1, std::memory_order_relaxed) + 1;
          if (opts.progress) opts.progress(d, jobs.size());
        }
      });
    }
  }
  return results;
}

} // namespace ccsim::harness
