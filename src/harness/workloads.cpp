#include "harness/workloads.hpp"

#include "sim/rng.hpp"
#include "sync/barriers.hpp"
#include "sync/magic_sync.hpp"
#include "sync/mcs_lock.hpp"
#include "sync/reductions.hpp"
#include "sync/sync.hpp"
#include "sync/ticket_lock.hpp"

#include <memory>
#include <stdexcept>
#include <vector>

namespace ccsim::harness {

std::string_view to_string(LockKind k) noexcept {
  switch (k) {
    case LockKind::Ticket: return "ticket";
    case LockKind::Mcs: return "MCS";
    case LockKind::UcMcs: return "uc-MCS";
  }
  return "?";
}
std::string_view to_string(BarrierKind k) noexcept {
  switch (k) {
    case BarrierKind::Central: return "central";
    case BarrierKind::Dissemination: return "dissem";
    case BarrierKind::Tree: return "tree";
    case BarrierKind::CombiningTree: return "ctree";
  }
  return "?";
}
std::string_view to_string(ReductionKind k) noexcept {
  switch (k) {
    case ReductionKind::Parallel: return "parallel";
    case ReductionKind::Sequential: return "sequential";
  }
  return "?";
}

namespace {
std::unique_ptr<sync::Lock> make_lock(Machine& m, LockKind kind) {
  switch (kind) {
    case LockKind::Ticket: return std::make_unique<sync::TicketLock>(m);
    case LockKind::Mcs: return std::make_unique<sync::McsLock>(m, false);
    case LockKind::UcMcs: return std::make_unique<sync::McsLock>(m, true);
  }
  throw std::invalid_argument("bad lock kind");
}

std::unique_ptr<sync::Barrier> make_barrier(Machine& m, BarrierKind kind) {
  switch (kind) {
    case BarrierKind::Central: return std::make_unique<sync::CentralBarrier>(m);
    case BarrierKind::Dissemination:
      return std::make_unique<sync::DisseminationBarrier>(m);
    case BarrierKind::Tree: return std::make_unique<sync::TreeBarrier>(m);
    case BarrierKind::CombiningTree:
      return std::make_unique<sync::CombiningTreeBarrier>(m);
  }
  throw std::invalid_argument("bad barrier kind");
}

void capture_obs(RunResult& r, const Machine& m) {
  r.samples = m.samples();
  r.hot = m.hot_blocks();
  r.profile = m.profile();
  r.invariant_checks = m.invariant_checks();
  r.host = m.host_report();
  r.sharing = m.sharing_report();
}
} // namespace

RunResult run_lock_experiment(const MachineConfig& cfg, LockKind kind,
                              const LockParams& params) {
  Machine m(cfg);
  auto lock = make_lock(m, kind);

  const std::uint64_t iters = std::max<std::uint64_t>(1, params.total_acquires / cfg.nprocs);
  const std::uint64_t executed = iters * cfg.nprocs;

  // Host-side mutual-exclusion check: free (no simulated traffic), fatal
  // if the lock ever admits two holders.
  int in_cs = 0;

  RunResult r;
  const auto program = [&](cpu::Cpu& c) -> sim::Task {
    sim::Rng rng(sim::Rng::derive(params.seed, c.id()));
    for (std::uint64_t i = 0; i < iters; ++i) {
      const Cycle t0 = c.queue().now();
      co_await lock->acquire(c);
      r.latency.add(c.queue().now() - t0);
      if (++in_cs != 1) throw std::logic_error("mutual exclusion violated");
      co_await c.think(params.hold_cycles);
      --in_cs;
      co_await lock->release(c);
      if (params.work_ratio != 0) {
        // Work outside / inside the critical section ~= work_ratio (+-10%).
        const Cycle base = params.hold_cycles * params.work_ratio;
        const Cycle jitter = base / 10;
        co_await c.think(base - jitter + rng.below(2 * jitter + 1));
      } else if (params.random_pause_max != 0) {
        co_await c.think(1 + rng.below(params.random_pause_max));
      }
    }
  };

  r.cycles = m.run_all(program);
  r.avg_latency = static_cast<double>(r.cycles) / static_cast<double>(executed) -
                  static_cast<double>(params.hold_cycles);
  r.counters = m.counters();
  capture_obs(r, m);
  return r;
}

RunResult run_barrier_experiment(const MachineConfig& cfg, BarrierKind kind,
                                 const BarrierParams& params) {
  Machine m(cfg);
  auto barrier = make_barrier(m, kind);

  // Host-side episode tracking: no processor may be more than one episode
  // ahead of any other once it leaves the barrier.
  std::vector<std::uint64_t> finished(cfg.nprocs, 0);
  std::vector<Cycle> last_exit(cfg.nprocs, 0);

  RunResult r;
  const auto program = [&](cpu::Cpu& c) -> sim::Task {
    for (std::uint64_t e = 0; e < params.episodes; ++e) {
      co_await barrier->wait(c);
      r.latency.add(c.queue().now() - last_exit[c.id()]);
      last_exit[c.id()] = c.queue().now();
      finished[c.id()] = e + 1;
      for (std::uint64_t f : finished) {
        if (f + 1 < e + 1) throw std::logic_error("barrier episode overlap");
      }
    }
  };

  r.cycles = m.run_all(program);
  r.avg_latency = static_cast<double>(r.cycles) / static_cast<double>(params.episodes);
  r.counters = m.counters();
  capture_obs(r, m);
  return r;
}

RunResult run_reduction_experiment(const MachineConfig& cfg, ReductionKind kind,
                                   const ReductionParams& params) {
  Machine m(cfg);
  sync::MagicLock lock(m.queue());
  sync::MagicBarrier barrier(m.queue(), cfg.nprocs);

  std::unique_ptr<sync::ParallelReduction> par;
  std::unique_ptr<sync::SequentialReduction> seq;
  if (kind == ReductionKind::Parallel)
    par = std::make_unique<sync::ParallelReduction>(m, lock, barrier);
  else
    seq = std::make_unique<sync::SequentialReduction>(m, barrier);

  // Fresh i.i.d. candidates each round, reduced into a RUNNING maximum --
  // exactly the paper's figure-6/7 loop, where "code that changes
  // local_max" draws new values but `max` is never reset. Writes to `max`
  // become rare after warm-up (expected total ~ln(rounds * P)), which is
  // what makes the parallel reduction read-mostly. The oracle is the
  // running maximum over all candidates seen so far.
  const auto candidate = [&](std::uint64_t round, NodeId pid) {
    sim::Rng rng(sim::Rng::derive(params.seed ^ (round * 0x9e37ULL), pid));
    return rng.below(1ULL << 40);
  };
  std::vector<std::uint64_t> oracle(params.rounds, 0);
  std::uint64_t running = 0;
  for (std::uint64_t rd = 0; rd < params.rounds; ++rd) {
    for (NodeId p = 0; p < cfg.nprocs; ++p)
      running = std::max(running, candidate(rd, p));
    oracle[rd] = running;
  }

  const auto program = [&](cpu::Cpu& c) -> sim::Task {
    sim::Rng pause_rng(sim::Rng::derive(params.seed * 31, c.id()));
    for (std::uint64_t rd = 0; rd < params.rounds; ++rd) {
      if (params.imbalance_max != 0)
        co_await c.think(pause_rng.below(params.imbalance_max + 1));
      std::uint64_t result = 0;
      const std::uint64_t v = candidate(rd, c.id());
      if (par)
        co_await par->reduce(c, v, &result);
      else
        co_await seq->reduce(c, v, &result);
      if (params.verify && result != oracle[rd])
        throw std::logic_error("reduction produced a wrong global maximum");
    }
  };

  RunResult r;
  r.cycles = m.run_all(program);
  r.avg_latency = static_cast<double>(r.cycles) / static_cast<double>(params.rounds);
  r.counters = m.counters();
  capture_obs(r, m);
  return r;
}

} // namespace ccsim::harness
