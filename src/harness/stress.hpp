// Seeded randomized stress workload (tools/ccstress).
//
// One stress cell runs a segment-structured random program on every
// processor: within a segment each processor issues a pseudorandom mix of
// reads (anywhere in a shared arena), writes (to its own stripe of words,
// so blocks are falsely shared but no word has two plain-store writers --
// under the update protocols concurrent plain stores to one word are a
// program bug, not a protocol bug), home-serialized atomics, lock-protected
// read-modify-writes and think pauses; segments end in a randomly chosen
// barrier, optionally preceded by a reduction round. The whole schedule is
// a pure function of (seed, nprocs): the master seed picks the per-segment
// constructs and per-processor streams derive from it, so one seed replays
// byte-identically -- including under deterministic network jitter
// (net::Network::Params::jitter_max), which perturbs timing only.
//
// Built-in end-to-end checks (all independent of the invariant checker):
// host-side mutual exclusion, reduction results against the oracle, and a
// final sweep comparing every stripe word and the lock-protected counter
// against host-tracked expected values via Machine::peek.
#pragma once

#include "harness/workloads.hpp"

#include <cstdint>

namespace ccsim::harness {

struct StressParams {
  std::uint64_t seed = 1;
  unsigned segments = 6;          ///< barrier-delimited segments
  unsigned ops_per_segment = 48;  ///< random memory ops per proc per segment
  unsigned data_blocks = 16;      ///< shared arena size (64 B blocks)
  Cycle hold_cycles = 20;         ///< critical-section hold time
  Cycle max_think = 40;           ///< think pause bound between ops
};

/// Run one stress cell. Enable the invariant checker / watchdog / jitter
/// through `cfg` (obs.check_invariants, watchdog_stall_cycles, net.jitter_*).
/// Throws DeadlockError, obs::InvariantViolation, or std::logic_error (an
/// end-to-end value check failed) on any detected misbehavior.
[[nodiscard]] RunResult run_stress_cell(const MachineConfig& cfg,
                                        const StressParams& params);

} // namespace ccsim::harness
