// Machine: builds and runs one simulated multiprocessor.
//
// Wires together the event kernel, network, per-node cache/home controllers
// for the chosen protocol, the traffic classifiers, and one processor per
// node; runs a set of coroutine programs to completion and reports cycles
// and categorized traffic.
#pragma once

#include "cpu/processor.hpp"
#include "net/network.hpp"
#include "obs/cycle_accounting.hpp"
#include "obs/host_perf.hpp"
#include "obs/hot_blocks.hpp"
#include "obs/invariants.hpp"
#include "obs/sampler.hpp"
#include "obs/sharing.hpp"
#include "obs/trace.hpp"
#include "proto/hybrid.hpp"
#include "proto/node.hpp"
#include "proto/protocol.hpp"
#include "sim/event_queue.hpp"
#include "stats/counters.hpp"

#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace ccsim::harness {

/// The run stopped making forward progress: the event queue drained with
/// programs still waiting (lost wakeup), no processor completed a memory
/// operation for watchdog_stall_cycles (livelock), or simulated time passed
/// max_cycles. what() carries the full diagnostic dump: stuck processors,
/// per-node in-flight messages and controller occupancy, and the trace tail.
class DeadlockError : public std::runtime_error {
public:
  explicit DeadlockError(const std::string& what) : std::runtime_error(what) {}
};

/// Observability attachments. Everything here is off by default: with the
/// defaults a Machine behaves (and its runs cost) exactly as before.
struct ObsConfig {
  /// Snapshot counter deltas every N cycles (0 = no sampling).
  Cycle sample_interval = 0;
  /// Attribute misses/updates/invalidations/home transactions to blocks.
  bool hot_blocks = false;
  /// How many blocks Machine::hot_blocks() reports.
  std::size_t hot_top_k = 16;
  /// Structured trace sink (JSONL, Perfetto, ...). Non-owning; must outlive
  /// the Machine. Setting a sink enables tracing even if trace is false.
  obs::TraceSink* sink = nullptr;
  /// Attach the cycle-accounting profiler: attribute every simulated cycle
  /// of every processor to a cost category and collect per-(construct,
  /// phase) latency histograms. See Machine::profile().
  bool profile = false;
  /// Run the coherence-invariant checker (obs/invariants.hpp): assert the
  /// single-writable-copy and value-history invariants on the fly and audit
  /// directories, caches and data against shadow memory at the end of the
  /// run. Pure observer -- it schedules no events, so simulated cycle
  /// counts are identical with it on or off. Not supported on
  /// Protocol::Hybrid (three engines share each node; the per-node
  /// cache/directory pairing the checker audits does not exist).
  bool check_invariants = false;
  /// Collect host-performance telemetry (obs/host_perf.hpp): simulator
  /// throughput, event-queue depth statistics, allocation counters, and
  /// host-time attribution across subsystems. Pure host-side observer:
  /// simulated cycles, counters and run JSON (minus the opt-in "host"
  /// section) are byte-identical with it on or off.
  bool host_metrics = false;
  /// Simulated-cycle period at which the host collector samples event-queue
  /// depth. Cycle-based so the histogram is deterministic across hosts.
  Cycle host_queue_sample = 4096;
  /// Classify per-block sharing patterns and advise a protocol
  /// (obs/sharing.hpp). Pure observer: simulated cycles, counters and run
  /// JSON (minus the opt-in "sharing" section) are byte-identical with it
  /// on or off. Works under every protocol, Hybrid included.
  bool sharing = false;
};

struct MachineConfig {
  unsigned nprocs = 32;
  proto::Protocol protocol = proto::Protocol::WI;
  std::size_t cache_bytes = 64 * 1024;  ///< direct-mapped, 64 B blocks
  std::size_t wb_entries = 4;
  unsigned cu_threshold = 4;  ///< competitive-update invalidation threshold
  mem::MemTimings timings{};
  net::Network::Params net{};
  /// Hybrid machines: protocol for regions without a bind_protocol tag.
  proto::Protocol hybrid_default = proto::Protocol::WI;
  /// Abort the run if simulated time exceeds this (deadlock backstop).
  Cycle max_cycles = 4'000'000'000ULL;
  /// Watchdog: throw DeadlockError if no processor completes a memory
  /// operation for this many simulated cycles (0 = off). think() cycles do
  /// not count as progress, so the bound must exceed the longest think in
  /// the workload plus the worst contended-operation latency.
  Cycle watchdog_stall_cycles = 0;
  /// Attach a structured trace (ring of recent protocol events, appended
  /// to deadlock reports; see Machine::trace() to echo it live).
  bool trace = false;
  /// Memory consistency model (the paper's machine is release consistent).
  proto::Consistency consistency = proto::Consistency::Release;
  /// Observability: sampling, hot-block attribution, trace sinks.
  ObsConfig obs{};
};

class Machine {
public:
  using Program = std::function<sim::Task(cpu::Cpu&)>;

  explicit Machine(MachineConfig cfg);
  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  /// Run one program per processor (programs.size() <= nprocs) until all
  /// complete; classifies remaining update lifetimes as termination.
  /// Returns the total simulated cycles. Throws on deadlock or timeout.
  Cycle run(const std::vector<Program>& programs);

  /// Convenience: the same program body on every processor.
  Cycle run_all(const Program& program);

  /// Initialize simulated shared memory before the run (no traffic).
  void poke(Addr addr, std::uint64_t value, std::size_t size = mem::kWordSize);

  /// Hybrid machines (protocol == Protocol::Hybrid): bind every block of
  /// [addr, addr+size) to a coherence protocol. Regions left unbound use
  /// MachineConfig::hybrid_default. Must be called before the run and
  /// never across a block already bound differently.
  void bind_protocol(Addr addr, std::size_t size, proto::Protocol p);

  /// Read simulated shared memory after the run (home memory; for checking
  /// results the coherence protocol must have made globally visible).
  [[nodiscard]] std::uint64_t peek(Addr addr, std::size_t size = mem::kWordSize);

  [[nodiscard]] const MachineConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] sim::EventQueue& queue() noexcept { return q_; }
  [[nodiscard]] mem::SharedAllocator& alloc() noexcept { return alloc_; }
  [[nodiscard]] stats::Counters& counters() noexcept { return counters_; }
  [[nodiscard]] cpu::Cpu& cpu(NodeId i) { return procs_.at(i)->cpu(); }
  [[nodiscard]] proto::Node& node(NodeId i) { return *nodes_.at(i); }
  [[nodiscard]] unsigned nprocs() const noexcept { return cfg_.nprocs; }
  /// The attached trace log, or nullptr when MachineConfig::trace is off.
  [[nodiscard]] sim::TraceLog* trace() noexcept { return trace_.get(); }

  /// Per-interval counter samples (empty unless obs.sample_interval > 0).
  [[nodiscard]] const obs::IntervalSeries& samples() const noexcept {
    return samples_;
  }
  /// Top-K hottest blocks with allocator-assigned names (empty unless
  /// obs.hot_blocks). Valid after run().
  [[nodiscard]] std::vector<obs::HotBlockTable::Row> hot_blocks() const;

  /// The run's cycle accounting (default-constructed snapshot with
  /// enabled() == false unless obs.profile). Valid after run().
  [[nodiscard]] obs::ProfileSnapshot profile() const;

  /// Invariant checks performed (0 unless obs.check_invariants).
  [[nodiscard]] std::uint64_t invariant_checks() const noexcept {
    return checker_ ? checker_->checks() : 0;
  }

  /// The run's host-performance report (default-constructed snapshot with
  /// enabled() == false unless obs.host_metrics). Valid after run().
  [[nodiscard]] obs::HostPerfReport host_report() const;

  /// The run's sharing-pattern report (default-constructed snapshot with
  /// enabled() == false unless obs.sharing). Valid after run().
  [[nodiscard]] obs::SharingReport sharing_report() const;

private:
  [[nodiscard]] std::string diagnose(const std::string& what, unsigned remaining,
                                     std::size_t nprograms) const;

  MachineConfig cfg_;
  sim::EventQueue q_;
  std::unique_ptr<sim::TraceLog> trace_;
  stats::Counters counters_;
  mem::SharedAllocator alloc_;
  stats::MissClassifier misses_;
  stats::UpdateClassifier updates_;
  net::Network net_;
  std::unique_ptr<obs::HotBlockTable> hot_;
  std::unique_ptr<obs::CycleLedger> ledger_;  ///< must precede ctx_
  std::unique_ptr<obs::InvariantChecker> checker_;  ///< must precede ctx_
  std::unique_ptr<obs::HostPerfCollector> host_;  ///< must precede ctx_
  std::unique_ptr<obs::SharingTracker> sharing_;  ///< must precede ctx_
  proto::ProtocolContext ctx_;
  obs::IntervalSeries samples_;
  std::vector<std::unique_ptr<proto::Node>> nodes_;
  std::vector<std::unique_ptr<cpu::Processor>> procs_;
  std::uint64_t progress_ = 0;  ///< completed memory ops (watchdog)
  bool ran_ = false;
};

} // namespace ccsim::harness
