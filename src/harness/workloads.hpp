// The paper's synthetic programs (section 4) packaged as one-call
// experiments: lock loops, barrier loops, and reduction loops, each
// returning simulated cycles, the paper's per-operation latency metric,
// and the categorized traffic counters.
#pragma once

#include "harness/machine.hpp"
#include "stats/counters.hpp"
#include "stats/histogram.hpp"

#include <cstdint>
#include <string_view>

namespace ccsim::harness {

enum class LockKind { Ticket, Mcs, UcMcs };
enum class BarrierKind { Central, Dissemination, Tree, CombiningTree };
enum class ReductionKind { Parallel, Sequential };

[[nodiscard]] std::string_view to_string(LockKind k) noexcept;
[[nodiscard]] std::string_view to_string(BarrierKind k) noexcept;
[[nodiscard]] std::string_view to_string(ReductionKind k) noexcept;

struct RunResult {
  Cycle cycles = 0;          ///< total simulated execution time
  double avg_latency = 0.0;  ///< the paper's per-operation latency metric
  stats::Counters counters;
  /// Distribution of individual operation latencies (lock experiments:
  /// per-acquire wait; barrier experiments: per-episode period).
  stats::LatencyHistogram latency;
  /// Per-interval counter samples (empty unless obs.sample_interval > 0).
  obs::IntervalSeries samples;
  /// Hottest blocks with allocator names (empty unless obs.hot_blocks).
  std::vector<obs::HotBlockTable::Row> hot;
  /// Cycle accounting (enabled() == false unless obs.profile).
  obs::ProfileSnapshot profile;
  /// Coherence-invariant checks performed (0 unless obs.check_invariants).
  std::uint64_t invariant_checks = 0;
  /// Host-performance telemetry (enabled() == false unless
  /// obs.host_metrics). Never affects the simulated fields above.
  obs::HostPerfReport host;
  /// Sharing-pattern classification and protocol advice (enabled() ==
  /// false unless obs.sharing). Never affects the simulated fields above.
  obs::SharingReport sharing;
};

/// Lock experiment (section 4.1): each processor acquires, holds for
/// `hold_cycles`, releases, in a tight loop executed total_acquires/P
/// times. avg_latency = cycles/total_acquires - hold_cycles (figure 8).
struct LockParams {
  std::uint64_t total_acquires = 32000;
  Cycle hold_cycles = 50;
  /// Pseudorandom bounded pause after each release (0 = the paper's tight
  /// loop; >0 = the reduced-contention variant, pause in [1, value]).
  Cycle random_pause_max = 0;
  /// If nonzero, overrides random_pause_max with a deterministic pause of
  /// hold_cycles * work_ratio (the "work outside/inside = P" variant).
  unsigned work_ratio = 0;
  std::uint64_t seed = 0x5eed;
};

RunResult run_lock_experiment(const MachineConfig& cfg, LockKind kind,
                              const LockParams& params);

/// Barrier experiment (section 4.2): `episodes` barrier episodes in a
/// tight loop. avg_latency = cycles/episodes (figure 11).
struct BarrierParams {
  std::uint64_t episodes = 5000;
};

RunResult run_barrier_experiment(const MachineConfig& cfg, BarrierKind kind,
                                 const BarrierParams& params);

/// Reduction experiment (section 4.3): `rounds` max-reductions in a tight
/// loop, synchronized by zero-traffic magic lock/barrier so only the
/// reduction's own traffic is measured. avg_latency = cycles/rounds
/// (figure 14). `imbalance_max` > 0 adds a pseudorandom pre-reduction
/// delay in [0, value] to reduce lock contention (the paper's load
/// imbalance variant).
struct ReductionParams {
  std::uint64_t rounds = 5000;
  Cycle imbalance_max = 0;
  std::uint64_t seed = 0xbeef;
  bool verify = true;  ///< check every round's result against the oracle
};

RunResult run_reduction_experiment(const MachineConfig& cfg, ReductionKind kind,
                                   const ReductionParams& params);

} // namespace ccsim::harness
