#include "harness/stress.hpp"

#include "sim/rng.hpp"
#include "sync/barriers.hpp"
#include "sync/mcs_lock.hpp"
#include "sync/reductions.hpp"
#include "sync/sync.hpp"
#include "sync/ticket_lock.hpp"

#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace ccsim::harness {
namespace {

[[noreturn]] void value_mismatch(const char* what, Addr a, std::uint64_t got,
                                 std::uint64_t want) {
  throw std::logic_error("stress end-to-end check failed: " + std::string(what) +
                         " at addr " + std::to_string(a) + ": got " +
                         std::to_string(got) + ", want " + std::to_string(want));
}

} // namespace

RunResult run_stress_cell(const MachineConfig& cfg, const StressParams& params) {
  Machine m(cfg);
  const unsigned P = cfg.nprocs;
  const std::size_t total_words =
      static_cast<std::size_t>(params.data_blocks) * mem::kWordsPerBlock;

  // Host-side plan: every construct choice comes from the master stream,
  // drawn before the run, so the schedule is a pure function of the seed.
  sim::Rng master(sim::Rng::derive(params.seed, 0));

  const Addr arena = m.alloc().allocate(
      static_cast<std::size_t>(params.data_blocks) * mem::kBlockSize,
      mem::kBlockSize, "stress.data");
  // Word 0: lock-protected counter; words 1..7: home-serialized atomics.
  const Addr counters =
      m.alloc().allocate(mem::kBlockSize, mem::kBlockSize, "stress.counters");
  constexpr std::size_t kAtomicWords = mem::kWordsPerBlock - 1;

  std::unique_ptr<sync::Lock> lock;
  if (master.below(2) == 0)
    lock = std::make_unique<sync::TicketLock>(m);
  else
    lock = std::make_unique<sync::McsLock>(m, /*update_conscious=*/false);

  std::unique_ptr<sync::Barrier> barriers[3] = {
      std::make_unique<sync::CentralBarrier>(m),
      std::make_unique<sync::DisseminationBarrier>(m),
      std::make_unique<sync::TreeBarrier>(m),
  };
  sync::ParallelReduction reduction(m, *lock, *barriers[0]);

  std::vector<unsigned> seg_barrier(params.segments);
  std::vector<bool> seg_reduce(params.segments);
  for (unsigned s = 0; s < params.segments; ++s) {
    seg_barrier[s] = static_cast<unsigned>(master.below(3));
    seg_reduce[s] = master.below(4) == 0;
  }

  // Host-tracked expected memory images, filled in as the coroutines issue
  // operations (the simulator is single-threaded, and every stripe word has
  // exactly one writer, so "last host assignment" == "last simulated store").
  std::vector<std::uint64_t> expected(total_words, 0);
  std::vector<std::uint64_t> atomic_expected(kAtomicWords, 0);
  std::uint64_t cs_total = 0;
  std::uint64_t ops_total = 0;
  int in_cs = 0;

  RunResult r;
  const auto program = [&](cpu::Cpu& c) -> sim::Task {
    const NodeId p = c.id();
    sim::Rng rng(sim::Rng::derive(params.seed, 1 + p));
    // This processor's stripe: words w with w % P == p.
    const std::size_t own_count = total_words / P + (total_words % P > p ? 1 : 0);
    std::uint64_t reduce_round = 0;
    for (unsigned seg = 0; seg < params.segments; ++seg) {
      for (unsigned op = 0; op < params.ops_per_segment; ++op) {
        const std::uint64_t roll = rng.below(100);
        if (roll < 35 || (roll < 65 && own_count == 0)) {
          const std::size_t w = rng.below(total_words);
          co_await c.load(arena + w * mem::kWordSize);
          ++ops_total;
        } else if (roll < 65) {
          const std::size_t w = rng.below(own_count) * P + p;
          const std::uint64_t v = rng.next();
          expected[w] = v;
          co_await c.store(arena + w * mem::kWordSize, v);
          ++ops_total;
        } else if (roll < 75) {
          const std::size_t k = rng.below(kAtomicWords);
          ++atomic_expected[k];
          co_await c.fetch_add(counters + (1 + k) * mem::kWordSize, 1);
          ++ops_total;
        } else if (roll < 90) {
          const Cycle t0 = c.queue().now();
          co_await lock->acquire(c);
          r.latency.add(c.queue().now() - t0);
          if (++in_cs != 1) throw std::logic_error("mutual exclusion violated");
          const std::uint64_t v = co_await c.load(counters);
          co_await c.think(params.hold_cycles);
          co_await c.store(counters, v + 1);
          ++cs_total;
          --in_cs;
          co_await lock->release(c);
          ++ops_total;
        } else {
          co_await c.think(1 + rng.below(params.max_think));
        }
      }
      if (seg_reduce[seg]) {
        // Round k's candidates dominate round k-1's, restarting the
        // running maximum; the winner each round is processor P-1.
        const std::uint64_t cand = (reduce_round + 1) * 256 + p + 1;
        std::uint64_t result = 0;
        co_await reduction.reduce(c, cand, &result);
        const std::uint64_t want = (reduce_round + 1) * 256 + P;
        if (result != want)
          throw std::logic_error("stress reduction produced " +
                                 std::to_string(result) + ", want " +
                                 std::to_string(want));
        ++reduce_round;
      }
      co_await barriers[seg_barrier[seg]]->wait(c);
    }
  };

  r.cycles = m.run_all(program);

  // End-to-end value audit against the host-tracked images (independent of
  // the invariant checker's shadow memory).
  if (const std::uint64_t got = m.peek(counters); got != cs_total)
    value_mismatch("lock-protected counter", counters, got, cs_total);
  for (std::size_t k = 0; k < kAtomicWords; ++k) {
    const Addr a = counters + (1 + k) * mem::kWordSize;
    if (const std::uint64_t got = m.peek(a); got != atomic_expected[k])
      value_mismatch("atomic counter", a, got, atomic_expected[k]);
  }
  for (std::size_t w = 0; w < total_words; ++w) {
    const Addr a = arena + w * mem::kWordSize;
    if (const std::uint64_t got = m.peek(a); got != expected[w])
      value_mismatch("stripe word", a, got, expected[w]);
  }

  r.avg_latency = ops_total == 0
                      ? 0.0
                      : static_cast<double>(r.cycles) / static_cast<double>(ops_total);
  r.counters = m.counters();
  r.samples = m.samples();
  r.hot = m.hot_blocks();
  r.profile = m.profile();
  r.invariant_checks = m.invariant_checks();
  r.host = m.host_report();
  return r;
}

} // namespace ccsim::harness
