// Live progress line for long sweeps (ccsweep/ccstress/ccperf --progress).
//
// Writes a single self-overwriting stderr line -- "12/60 cells (20.0%)
// 3.4/s ETA 14s" -- throttled to at most one repaint per min_interval_ms so
// a fast sweep does not spend its time repainting a terminal. Off unless
// stderr is a TTY (or Options::force, for tests); progress is presentation,
// not data, so redirected runs and CI logs never see control characters.
//
// Thread-safe: the sweep engine invokes the callback from worker threads.
#pragma once

#include <cstddef>
#include <chrono>
#include <mutex>
#include <ostream>
#include <string>

namespace ccsim::harness {

class ProgressReporter {
public:
  struct Options {
    /// Minimum host milliseconds between repaints (the final update and
    /// finish() always paint).
    unsigned min_interval_ms = 100;
    /// Paint even when stderr is not a terminal (tests).
    bool force = false;
    /// Noun printed after the counts ("cells", "runs", ...).
    std::string label = "cells";
  };

  /// Reports to `os` (normally std::cerr). Inactive -- every call a no-op
  /// -- unless `os` should paint per `force`/TTY.
  ProgressReporter(std::ostream& os, std::size_t total);
  ProgressReporter(std::ostream& os, std::size_t total, Options opts);
  ProgressReporter(const ProgressReporter&) = delete;
  ProgressReporter& operator=(const ProgressReporter&) = delete;
  ~ProgressReporter();

  /// Record that `done` items have completed; repaints when the throttle
  /// interval has elapsed or the run just finished.
  void update(std::size_t done);

  /// Erase the progress line (call before printing normal output).
  /// Idempotent; also runs from the destructor.
  void finish();

  /// True when updates will paint (TTY or forced).
  [[nodiscard]] bool active() const noexcept { return active_; }

  /// Is stderr attached to a terminal? (isatty(2); the reason --progress
  /// defaults to off under redirection.)
  [[nodiscard]] static bool stderr_is_tty() noexcept;

  /// The line body, separated out so tests can pin the format:
  /// "<label>: <done>/<total> (<pct>%) <rate>/s ETA <eta>s".
  /// elapsed_sec <= 0 omits rate and ETA.
  [[nodiscard]] static std::string format_line(const std::string& label,
                                               std::size_t done, std::size_t total,
                                               double elapsed_sec);

private:
  using Clock = std::chrono::steady_clock;

  std::ostream& os_;
  std::size_t total_;
  Options opts_;
  bool active_;
  std::mutex mu_;
  Clock::time_point start_;
  Clock::time_point last_paint_;
  bool painted_ = false;
  bool finished_ = false;
};

} // namespace ccsim::harness
