#include "harness/obs_session.hpp"

#include "harness/machine.hpp"
#include "obs/jsonl_sink.hpp"
#include "obs/perfetto_sink.hpp"

#include <cinttypes>
#include <cstdio>
#include <stdexcept>
#include <utility>

namespace ccsim::harness {

ObsSession::ObsSession(ObsOptions opts, std::string name)
    : opts_(std::move(opts)), name_(std::move(name)) {
  if (opts_.trace_path.empty()) return;
  trace_file_.open(opts_.trace_path);
  if (!trace_file_)
    throw std::runtime_error("cannot open trace file: " + opts_.trace_path);
  switch (opts_.trace_format) {
    case obs::TraceFormat::Ring:
      sink_ = std::make_unique<obs::TextSink>(trace_file_);
      break;
    case obs::TraceFormat::Jsonl:
      sink_ = std::make_unique<obs::JsonlSink>(trace_file_);
      break;
    case obs::TraceFormat::Perfetto:
      sink_ = std::make_unique<obs::PerfettoSink>(trace_file_);
      break;
  }
}

ObsSession::~ObsSession() {
  try {
    finish();
  } catch (...) {
    // Destructors must not throw; an explicit finish() reports the error.
  }
}

void ObsSession::configure(MachineConfig& cfg, std::string label) {
  label_ = std::move(label);
  cfg.obs.sample_interval = opts_.sample_interval;
  cfg.obs.hot_blocks = !opts_.json_path.empty();
  cfg.obs.hot_top_k = opts_.hot_top_k;
  cfg.obs.sink = sink_.get();
  if (sink_) sink_->begin_run(label_);
}

void ObsSession::record(const RunResult& r) {
  if (!opts_.json_path.empty()) runs_.push_back({label_, r});
}

void ObsSession::finish() {
  if (finished_) return;
  finished_ = true;
  if (sink_) {
    sink_->finish();
    trace_file_.close();
  }
  if (opts_.json_path.empty()) return;
  std::ofstream js(opts_.json_path);
  if (!js)
    throw std::runtime_error("cannot open metrics file: " + opts_.json_path);
  stats::JsonWriter w(js);
  w.begin_object();
  w.key("bench").value(name_);
  w.key("runs").begin_array();
  for (const Entry& e : runs_) write_run_json(w, e.label, e.result);
  w.end_array();
  w.end_object();
  js << '\n';
}

void write_run_json(stats::JsonWriter& w, const std::string& label,
                    const RunResult& r) {
  w.begin_object();
  w.key("label").value(label);
  w.key("cycles").value(r.cycles);
  w.key("avg_latency").value(r.avg_latency);
  w.key("counters").raw(stats::to_json(r.counters));

  if (!r.samples.empty()) {
    w.key("samples").begin_object();
    w.key("interval").value(r.samples.interval);
    w.key("data").begin_array();
    for (const obs::Sample& s : r.samples.samples) {
      w.begin_object();
      w.key("begin").value(s.begin);
      w.key("end").value(s.end);
      w.key("counters").raw(stats::to_json(s.delta));
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }

  if (!r.hot.empty()) {
    w.key("hot_blocks").begin_array();
    for (const obs::HotBlockTable::Row& row : r.hot) {
      char addr[24];
      std::snprintf(addr, sizeof addr, "0x%" PRIx64,
                    static_cast<std::uint64_t>(row.base));
      w.begin_object();
      w.key("addr").value(addr);
      if (!row.name.empty()) w.key("name").value(row.name);
      w.key("score").value(row.cell.score());
      w.key("misses").begin_object();
      for (std::size_t i = 0; i < stats::kMissClasses; ++i) {
        if (row.cell.misses[i] == 0) continue;
        w.key(stats::to_string(static_cast<stats::MissClass>(i)))
            .value(row.cell.misses[i]);
      }
      w.end_object();
      w.key("updates").begin_object();
      for (std::size_t i = 0; i < stats::kUpdateClasses; ++i) {
        if (row.cell.updates[i] == 0) continue;
        w.key(stats::to_string(static_cast<stats::UpdateClass>(i)))
            .value(row.cell.updates[i]);
      }
      w.end_object();
      w.key("invals").value(row.cell.invals);
      w.key("home_txns").value(row.cell.home_txns);
      w.end_object();
    }
    w.end_array();
  }

  w.end_object();
}

} // namespace ccsim::harness
