#include "harness/obs_session.hpp"

#include "harness/machine.hpp"
#include "obs/jsonl_sink.hpp"
#include "obs/perfetto_sink.hpp"
#include "stats/report.hpp"

#include <cinttypes>
#include <cstdio>
#include <iostream>
#include <stdexcept>
#include <utility>

namespace ccsim::harness {

ObsSession::ObsSession(ObsOptions opts, std::string name)
    : opts_(std::move(opts)), name_(std::move(name)) {
  if (opts_.trace_path.empty()) return;
  trace_file_.open(opts_.trace_path);
  if (!trace_file_)
    throw std::runtime_error("cannot open trace file: " + opts_.trace_path);
  switch (opts_.trace_format) {
    case obs::TraceFormat::Ring:
      sink_ = std::make_unique<obs::TextSink>(trace_file_);
      break;
    case obs::TraceFormat::Jsonl:
      sink_ = std::make_unique<obs::JsonlSink>(trace_file_);
      break;
    case obs::TraceFormat::Perfetto:
      sink_ = std::make_unique<obs::PerfettoSink>(trace_file_);
      break;
  }
}

ObsSession::~ObsSession() {
  try {
    finish();
  } catch (...) {
    // Destructors must not throw; an explicit finish() reports the error.
  }
}

void ObsSession::configure(MachineConfig& cfg, std::string label) {
  label_ = std::move(label);
  cfg.obs.sample_interval = opts_.sample_interval;
  cfg.obs.hot_blocks = !opts_.json_path.empty();
  cfg.obs.hot_top_k = opts_.hot_top_k;
  cfg.obs.sink = sink_.get();
  cfg.obs.profile = opts_.profile;
  cfg.obs.host_metrics = opts_.host_metrics;
  cfg.obs.sharing = opts_.sharing;
  if (sink_) sink_->begin_run(label_);
}

void ObsSession::record(const RunResult& r) {
  if (sink_) {
    if (!r.samples.empty()) sink_->on_samples(r.samples);
    if (r.profile.enabled()) sink_->on_profile(r.profile);
    if (r.sharing.enabled()) sink_->on_sharing(r.sharing);
  }
  if (opts_.profile && r.profile.enabled()) {
    std::cout << "[" << label_ << "]\n";
    stats::print_profile(std::cout, r.profile);
    std::cout << '\n';
  }
  if (opts_.host_metrics && r.host.enabled()) {
    std::cout << "[" << label_ << "]\n";
    stats::print_host(std::cout, r.host);
    std::cout << '\n';
  }
  if (opts_.sharing && r.sharing.enabled()) {
    std::cout << "[" << label_ << "]\n";
    stats::print_sharing(std::cout, r.sharing);
    std::cout << '\n';
  }
  if (!opts_.json_path.empty()) runs_.push_back({label_, r});
}

void ObsSession::finish() {
  if (finished_) return;
  finished_ = true;
  if (sink_) {
    sink_->finish();
    trace_file_.close();
  }
  if (opts_.json_path.empty()) return;
  std::ofstream js(opts_.json_path);
  if (!js)
    throw std::runtime_error("cannot open metrics file: " + opts_.json_path);
  stats::JsonWriter w(js);
  w.begin_object();
  w.key("bench").value(name_);
  w.key("runs").begin_array();
  for (const Entry& e : runs_) write_run_json(w, e.label, e.result);
  w.end_array();
  w.end_object();
  js << '\n';
}

void write_run_json(stats::JsonWriter& w, const std::string& label,
                    const RunResult& r) {
  w.begin_object();
  w.key("label").value(label);
  write_run_fields(w, r);
  w.end_object();
}

void write_run_fields(stats::JsonWriter& w, const RunResult& r) {
  w.key("cycles").value(r.cycles);
  w.key("avg_latency").value(r.avg_latency);
  if (r.invariant_checks != 0)
    w.key("invariant_checks").value(r.invariant_checks);
  w.key("counters").raw(stats::to_json(r.counters));
  if (r.latency.count() != 0) {
    w.key("latency");
    stats::histogram_to_json(w, r.latency);
  }

  if (!r.samples.empty()) {
    w.key("samples").begin_object();
    w.key("interval").value(r.samples.interval);
    w.key("data").begin_array();
    for (const obs::Sample& s : r.samples.samples) {
      w.begin_object();
      w.key("begin").value(s.begin);
      w.key("end").value(s.end);
      w.key("counters").raw(stats::to_json(s.delta));
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }

  if (!r.hot.empty()) {
    w.key("hot_blocks").begin_array();
    for (const obs::HotBlockTable::Row& row : r.hot) {
      char addr[24];
      std::snprintf(addr, sizeof addr, "0x%" PRIx64,
                    static_cast<std::uint64_t>(row.base));
      w.begin_object();
      w.key("addr").value(addr);
      if (!row.name.empty()) w.key("name").value(row.name);
      w.key("score").value(row.cell.score());
      w.key("misses").begin_object();
      for (std::size_t i = 0; i < stats::kMissClasses; ++i) {
        if (row.cell.misses[i] == 0) continue;
        w.key(stats::to_string(static_cast<stats::MissClass>(i)))
            .value(row.cell.misses[i]);
      }
      w.end_object();
      w.key("updates").begin_object();
      for (std::size_t i = 0; i < stats::kUpdateClasses; ++i) {
        if (row.cell.updates[i] == 0) continue;
        w.key(stats::to_string(static_cast<stats::UpdateClass>(i)))
            .value(row.cell.updates[i]);
      }
      w.end_object();
      w.key("invals").value(row.cell.invals);
      w.key("home_txns").value(row.cell.home_txns);
      w.end_object();
    }
    w.end_array();
  }

  if (r.profile.enabled()) {
    const auto totals = r.profile.totals();
    w.key("profile").begin_object();
    w.key("wall").value(r.profile.wall);
    w.key("conserved").value(r.profile.conserved());
    w.key("totals").begin_object();
    for (std::size_t i = 0; i < obs::kCycleCats; ++i)
      w.key(obs::to_string(static_cast<obs::CycleCat>(i))).value(totals[i]);
    w.end_object();
    w.key("per_proc").begin_array();
    for (const auto& proc : r.profile.per_proc) {
      w.begin_array();
      for (Cycle c : proc) w.value(c);
      w.end_array();
    }
    w.end_array();
    w.key("phases").begin_object();
    for (std::size_t i = 0; i < obs::kSyncPhases; ++i) {
      if (r.profile.phases[i].count() == 0) continue;
      w.key(obs::to_string(static_cast<obs::SyncPhase>(i)));
      stats::histogram_to_json(w, r.profile.phases[i]);
    }
    w.end_object();
    w.key("wb_peak").value(r.profile.wb_peak);
    w.key("wb_pushes").value(r.profile.wb_pushes);
    w.end_object();
  }

  if (r.sharing.enabled()) {
    w.key("sharing").begin_object();
    write_sharing_fields(w, r.sharing);
    w.end_object();
  }

  if (r.host.enabled()) {
    w.key("host").begin_object();
    write_host_fields(w, r.host);
    w.end_object();
  }
}

void write_sharing_fields(stats::JsonWriter& w, const obs::SharingReport& s) {
  w.key("schema").value(obs::SharingReport::kSchema);
  w.key("nprocs").value(static_cast<std::uint64_t>(s.nprocs));
  w.key("recommended").value(std::string(proto::to_string(s.recommended)));
  w.key("projected_cost").begin_object();
  w.key("WI").value(s.total_wi);
  w.key("PU").value(s.total_pu);
  w.key("CU").value(s.total_cu);
  w.end_object();
  w.key("patterns").begin_object();
  for (std::size_t i = 0; i < obs::kSharingPatterns; ++i) {
    if (s.pattern_blocks[i] == 0) continue;
    w.key(std::string(obs::to_string(static_cast<obs::SharingPattern>(i))))
        .value(s.pattern_blocks[i]);
  }
  w.end_object();
  w.key("blocks").begin_array();
  for (const obs::SharingReport::Row& row : s.blocks) {
    char addr[24];
    std::snprintf(addr, sizeof addr, "0x%" PRIx64,
                  static_cast<std::uint64_t>(row.base));
    w.begin_object();
    w.key("addr").value(addr);
    if (!row.name.empty()) w.key("name").value(row.name);
    w.key("pattern").value(std::string(obs::to_string(row.pattern)));
    w.key("accessors").value(static_cast<std::uint64_t>(row.accessors));
    w.key("readers").value(static_cast<std::uint64_t>(row.reader_count));
    w.key("writers").value(static_cast<std::uint64_t>(row.writer_count));
    w.key("reads").value(row.reads);
    w.key("writes").value(row.writes);
    w.key("intervals").value(row.intervals);
    w.key("reader_episodes").value(row.reader_episodes);
    w.key("avg_interval_readers").value(row.avg_interval_readers());
    w.key("max_interval_readers").value(row.max_interval_readers);
    w.key("runs").value(row.runs);
    w.key("max_run").value(row.max_run);
    w.key("handoffs").value(row.handoffs);
    w.key("migratory_handoffs").value(row.migratory_handoffs);
    w.key("invals_sent").value(row.invals_sent);
    w.key("writable_grants").value(row.writable_grants);
    w.key("updates").begin_object();
    w.key("delivered").value(row.updates_delivered);
    w.key("wasted").value(row.updates_wasted);
    w.key("dropped").value(row.updates_dropped);
    w.end_object();
    w.key("replay").begin_object();
    w.key("pu_updates").value(row.pu_updates);
    w.key("cu_updates").value(row.cu_updates);
    w.key("cu_refetches").value(row.cu_refetches);
    w.end_object();
    w.key("word_disjoint").value(row.word_disjoint);
    w.key("cost").begin_object();
    w.key("WI").value(row.cost_wi);
    w.key("PU").value(row.cost_pu);
    w.key("CU").value(row.cost_cu);
    w.end_object();
    w.key("best").value(std::string(proto::to_string(row.best)));
    w.end_object();
  }
  w.end_array();
  w.key("allocs").begin_array();
  for (const obs::SharingReport::Alloc& a : s.allocs) {
    w.begin_object();
    w.key("name").value(a.name);
    w.key("blocks").value(static_cast<std::uint64_t>(a.blocks));
    w.key("pattern").value(std::string(obs::to_string(a.pattern)));
    w.key("reads").value(a.reads);
    w.key("writes").value(a.writes);
    w.key("invals_sent").value(a.invals_sent);
    w.key("updates_wasted").value(a.updates_wasted);
    w.key("cost").begin_object();
    w.key("WI").value(a.cost_wi);
    w.key("PU").value(a.cost_pu);
    w.key("CU").value(a.cost_cu);
    w.end_object();
    w.key("best").value(std::string(proto::to_string(a.best)));
    w.end_object();
  }
  w.end_array();
}

void write_host_fields(stats::JsonWriter& w, const obs::HostPerfReport& h) {
  w.key("schema").value(obs::HostPerfReport::kSchema);
  w.key("ms").value(h.ms());
  w.key("sim_cycles").value(h.sim_cycles);
  w.key("events").value(h.events_executed);
  w.key("events_scheduled").value(h.events_scheduled);
  w.key("cycles_per_sec").value(h.cycles_per_sec());
  w.key("events_per_sec").value(h.events_per_sec());
  w.key("queue").begin_object();
  w.key("depth");
  stats::histogram_to_json(w, h.queue_depth);
  w.key("peak").value(h.queue_peak);
  w.key("sample_interval").value(h.queue_sample_interval);
  w.end_object();
  w.key("alloc").begin_object();
  w.key("messages").value(h.messages);
  w.key("frames").value(h.frames);
  w.end_object();
  w.key("subsystems").begin_object();
  for (std::size_t i = 0; i < obs::kHostCats; ++i) {
    const auto c = static_cast<obs::HostCat>(i);
    w.key(std::string(obs::to_string(c)) + "_ns").value(h.ns_by[i]);
  }
  w.end_object();
}

} // namespace ccsim::harness
