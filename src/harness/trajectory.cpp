#include "harness/trajectory.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <set>
#include <sstream>
#include <stdexcept>
#include <unordered_map>

namespace ccsim::harness {

void write_trajectory(std::ostream& os, const TrajectoryDoc& doc) {
  stats::JsonWriter w(os);
  w.begin_object();
  w.key("schema").value(TrajectoryDoc::kSchema);
  w.key("bench").value(doc.bench);
  w.key("entries").begin_array();
  for (const TrajectoryEntry& e : doc.entries) {
    w.begin_object();
    w.key("name").value(e.name);
    w.key("cycles").value(e.cycles);
    w.key("avg_latency").value(e.avg_latency);
    w.key("p50").value(e.p50);
    w.key("p99").value(e.p99);
    if (!e.breakdown.empty()) {
      w.key("breakdown").begin_array();
      for (Cycle c : e.breakdown) w.value(c);
      w.end_array();
    }
    if (e.has_host) {
      w.key("host").begin_object();
      w.key("ms").value(e.host_ms);
      w.key("cycles_per_sec").value(e.cycles_per_sec);
      w.key("events_per_sec").value(e.events_per_sec);
      w.end_object();
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  os << '\n';
}

TrajectoryDoc read_trajectory(std::istream& is) {
  std::ostringstream buf;
  buf << is.rdbuf();
  const stats::JsonValue root = stats::parse_json(buf.str());
  if (root.kind != stats::JsonValue::Kind::Object)
    throw std::runtime_error("trajectory: document is not a JSON object");

  const stats::JsonValue& schema = root.at("schema");
  if (!schema.is_integer || schema.integer != TrajectoryDoc::kSchema)
    throw std::runtime_error(
        "trajectory: unsupported schema version (this reader speaks " +
        std::to_string(TrajectoryDoc::kSchema) + ")");

  TrajectoryDoc doc;
  doc.bench = root.at("bench").string;
  for (const stats::JsonValue& v : root.at("entries").array) {
    TrajectoryEntry e;
    e.name = v.at("name").string;
    e.cycles = v.at("cycles").integer;
    e.avg_latency = v.at("avg_latency").number;
    e.p50 = v.at("p50").number;
    e.p99 = v.at("p99").number;
    if (const stats::JsonValue* b = v.find("breakdown"))
      for (const stats::JsonValue& c : b->array) e.breakdown.push_back(c.integer);
    if (const stats::JsonValue* h = v.find("host")) {
      e.has_host = true;
      e.host_ms = h->at("ms").number;
      e.cycles_per_sec = h->at("cycles_per_sec").number;
      e.events_per_sec = h->at("events_per_sec").number;
    }
    doc.entries.push_back(std::move(e));
  }
  return doc;
}

CompareResult compare_trajectories(const TrajectoryDoc& base,
                                   const TrajectoryDoc& cand,
                                   const CompareOptions& opt) {
  std::unordered_map<std::string, const TrajectoryEntry*> by_name;
  for (const TrajectoryEntry& e : cand.entries) by_name.emplace(e.name, &e);

  CompareResult r;
  std::set<std::string> matched;
  for (const TrajectoryEntry& b : base.entries) {
    auto it = by_name.find(b.name);
    if (it == by_name.end()) {
      r.missing.push_back(b.name);
      if (opt.require_all) r.ok = false;
      continue;
    }
    matched.insert(b.name);
    const TrajectoryEntry& c = *it->second;
    CompareResult::Row row;
    row.name = b.name;
    row.base = b.avg_latency;
    row.cand = c.avg_latency;
    row.delta_pct =
        b.avg_latency > 0.0 ? (c.avg_latency - b.avg_latency) / b.avg_latency * 100.0
                            : 0.0;
    row.regression = row.delta_pct > opt.max_regress_pct;
    if (row.regression) r.ok = false;
    // Throughput gates only when both sides measured it: baselines
    // recorded without --host-metrics compare on latency alone.
    if (b.has_host && c.has_host && b.cycles_per_sec > 0.0) {
      row.has_tput = true;
      row.base_tput = b.cycles_per_sec;
      row.cand_tput = c.cycles_per_sec;
      row.tput_delta_pct =
          (c.cycles_per_sec - b.cycles_per_sec) / b.cycles_per_sec * 100.0;
      row.tput_regression = row.tput_delta_pct < -opt.max_tput_drop_pct;
      if (row.tput_regression) r.ok = false;
    }
    r.rows.push_back(std::move(row));
  }
  for (const TrajectoryEntry& c : cand.entries)
    if (matched.find(c.name) == matched.end()) r.added.push_back(c.name);
  return r;
}

void print_compare(std::ostream& os, const CompareResult& r,
                   const CompareOptions& opt) {
  std::size_t width = 4;
  for (const CompareResult::Row& row : r.rows)
    width = std::max(width, row.name.size());

  char line[160];
  std::snprintf(line, sizeof line, "%-*s %12s %12s %8s\n",
                static_cast<int>(width), "name", "base", "cand", "delta");
  os << line;
  for (const CompareResult::Row& row : r.rows) {
    std::snprintf(line, sizeof line, "%-*s %12.2f %12.2f %+7.1f%%%s\n",
                  static_cast<int>(width), row.name.c_str(), row.base, row.cand,
                  row.delta_pct, row.regression ? "  REGRESSION" : "");
    os << line;
    if (row.has_tput) {
      std::snprintf(line, sizeof line,
                    "%-*s %10.2fM %10.2fM %+7.1f%%%s  (host cyc/s)\n",
                    static_cast<int>(width), "", row.base_tput * 1e-6,
                    row.cand_tput * 1e-6, row.tput_delta_pct,
                    row.tput_regression ? "  TPUT REGRESSION" : "");
      os << line;
    }
  }
  for (const std::string& n : r.missing)
    os << "MISSING from candidate: " << n << '\n';
  for (const std::string& n : r.added)
    os << "new in candidate: " << n << '\n';
  if (r.ok) {
    os << "OK: no regressions beyond " << opt.max_regress_pct << "%\n";
  } else {
    std::size_t regressed = 0;
    std::size_t tput_regressed = 0;
    for (const CompareResult::Row& row : r.rows) {
      regressed += row.regression;
      tput_regressed += row.tput_regression;
    }
    os << "FAIL: " << regressed << " regression(s) beyond "
       << opt.max_regress_pct << "%";
    if (tput_regressed != 0)
      os << ", " << tput_regressed << " throughput drop(s) beyond "
         << opt.max_tput_drop_pct << "%";
    if (!r.missing.empty()) os << ", " << r.missing.size() << " missing";
    os << '\n';
  }
}

} // namespace ccsim::harness
