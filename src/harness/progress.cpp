#include "harness/progress.hpp"

#include <cstdio>

#if defined(_WIN32)
#include <io.h>
#define CCSIM_ISATTY _isatty
#define CCSIM_FILENO _fileno
#else
#include <unistd.h>
#define CCSIM_ISATTY isatty
#define CCSIM_FILENO fileno
#endif

namespace ccsim::harness {

bool ProgressReporter::stderr_is_tty() noexcept {
  return CCSIM_ISATTY(CCSIM_FILENO(stderr)) != 0;
}

std::string ProgressReporter::format_line(const std::string& label,
                                          std::size_t done, std::size_t total,
                                          double elapsed_sec) {
  const double pct = total == 0 ? 100.0
                                : 100.0 * static_cast<double>(done) /
                                      static_cast<double>(total);
  char buf[160];
  int n = std::snprintf(buf, sizeof buf, "%s: %zu/%zu (%.1f%%)", label.c_str(),
                        done, total, pct);
  if (elapsed_sec > 0.0 && done > 0) {
    const double rate = static_cast<double>(done) / elapsed_sec;
    const std::size_t left = total > done ? total - done : 0;
    const double eta = rate > 0.0 ? static_cast<double>(left) / rate : 0.0;
    std::snprintf(buf + n, sizeof buf - static_cast<std::size_t>(n),
                  " %.1f/s ETA %.0fs", rate, eta);
  }
  return buf;
}

ProgressReporter::ProgressReporter(std::ostream& os, std::size_t total)
    : ProgressReporter(os, total, Options{}) {}

ProgressReporter::ProgressReporter(std::ostream& os, std::size_t total,
                                   Options opts)
    : os_(os),
      total_(total),
      opts_(std::move(opts)),
      active_(opts_.force || stderr_is_tty()),
      start_(Clock::now()),
      last_paint_(start_) {}

ProgressReporter::~ProgressReporter() { finish(); }

void ProgressReporter::update(std::size_t done) {
  if (!active_) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (finished_) return;
  const Clock::time_point now = Clock::now();
  const bool final = done >= total_;
  if (painted_ && !final &&
      now - last_paint_ < std::chrono::milliseconds(opts_.min_interval_ms))
    return;
  last_paint_ = now;
  painted_ = true;
  const double elapsed =
      std::chrono::duration_cast<std::chrono::duration<double>>(now - start_)
          .count();
  // \r + trailing clear-to-spaces keeps a shrinking line from leaving
  // stale characters; no newline until finish().
  os_ << '\r' << format_line(opts_.label, done, total_, elapsed) << "    "
      << "\r" << format_line(opts_.label, done, total_, elapsed);
  os_.flush();
}

void ProgressReporter::finish() {
  if (!active_) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (finished_) return;
  finished_ = true;
  if (painted_) {
    // Erase the line so subsequent normal output starts clean.
    os_ << "\r\033[K";
    os_.flush();
  }
}

} // namespace ccsim::harness
