#include "harness/figure.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

namespace ccsim::harness {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

std::string Table::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string Table::num(std::uint64_t v) { return std::to_string(v); }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t i = 0; i < headers_.size(); ++i) width[i] = headers_[i].size();
  for (const auto& r : rows_)
    for (std::size_t i = 0; i < r.size() && i < width.size(); ++i)
      width[i] = std::max(width[i], r[i].size());

  const auto line = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      os << (i == 0 ? "" : "  ");
      // left-align the first column (series name), right-align numbers
      if (i == 0)
        os << cells[i] << std::string(width[i] - cells[i].size(), ' ');
      else
        os << std::string(width[i] - cells[i].size(), ' ') << cells[i];
    }
    os << '\n';
  };
  line(headers_);
  std::size_t total = 0;
  for (std::size_t i = 0; i < headers_.size(); ++i) total += width[i] + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& r : rows_) line(r);
}

void Table::print_csv(std::ostream& os) const {
  const auto line = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i)
      os << (i == 0 ? "" : ",") << cells[i];
    os << '\n';
  };
  line(headers_);
  for (const auto& r : rows_) line(r);
}

const std::vector<unsigned>& paper_proc_counts() {
  static const std::vector<unsigned> ps{1, 2, 4, 8, 16, 32};
  return ps;
}

std::vector<std::string> miss_headers() {
  return {"cold", "true", "false", "evict", "drop", "total", "excl-req"};
}

std::vector<std::string> miss_cells(const stats::MissCounts& m) {
  using stats::MissClass;
  return {Table::num(m[MissClass::Cold]),     Table::num(m[MissClass::TrueSharing]),
          Table::num(m[MissClass::FalseSharing]), Table::num(m[MissClass::Eviction]),
          Table::num(m[MissClass::Drop]),     Table::num(m.total()),
          Table::num(m.exclusive_requests)};
}

std::vector<std::string> update_headers() {
  return {"useful", "false", "prolif", "repl", "end", "drop", "total"};
}

std::vector<std::string> update_cells(const stats::UpdateCounts& u) {
  using stats::UpdateClass;
  return {Table::num(u[UpdateClass::TrueSharing]),  Table::num(u[UpdateClass::FalseSharing]),
          Table::num(u[UpdateClass::Proliferation]), Table::num(u[UpdateClass::Replacement]),
          Table::num(u[UpdateClass::Termination]),  Table::num(u[UpdateClass::Drop]),
          Table::num(u.total())};
}

} // namespace ccsim::harness
