#include "harness/figure.hpp"

#include <ostream>

namespace ccsim::harness {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

std::string Table::num(double v, int precision) {
  return stats::Table::num(v, precision);
}

std::string Table::num(std::uint64_t v) { return stats::Table::num(v); }

stats::Table Table::build() const {
  stats::Table t = stats::Table::figure(headers_);
  for (const auto& r : rows_) t.add_row(r);
  return t;
}

void Table::print(std::ostream& os) const { build().print(os); }

void Table::print_csv(std::ostream& os) const { build().print_csv(os); }

const std::vector<unsigned>& paper_proc_counts() {
  static const std::vector<unsigned> ps{1, 2, 4, 8, 16, 32};
  return ps;
}

std::vector<std::string> miss_headers() {
  return {"cold", "true", "false", "evict", "drop", "total", "excl-req"};
}

std::vector<std::string> miss_cells(const stats::MissCounts& m) {
  using stats::MissClass;
  return {Table::num(m[MissClass::Cold]),     Table::num(m[MissClass::TrueSharing]),
          Table::num(m[MissClass::FalseSharing]), Table::num(m[MissClass::Eviction]),
          Table::num(m[MissClass::Drop]),     Table::num(m.total()),
          Table::num(m.exclusive_requests)};
}

std::vector<std::string> update_headers() {
  return {"useful", "false", "prolif", "repl", "end", "drop", "total"};
}

std::vector<std::string> update_cells(const stats::UpdateCounts& u) {
  using stats::UpdateClass;
  return {Table::num(u[UpdateClass::TrueSharing]),  Table::num(u[UpdateClass::FalseSharing]),
          Table::num(u[UpdateClass::Proliferation]), Table::num(u[UpdateClass::Replacement]),
          Table::num(u[UpdateClass::Termination]),  Table::num(u[UpdateClass::Drop]),
          Table::num(u.total())};
}

} // namespace ccsim::harness
