#include "harness/cli.hpp"

#include <cstdlib>
#include <cstring>
#include <stdexcept>

namespace ccsim::harness {

namespace {
std::vector<unsigned> parse_list(const std::string& s) {
  std::vector<unsigned> out;
  std::size_t pos = 0;
  while (pos < s.size()) {
    std::size_t comma = s.find(',', pos);
    if (comma == std::string::npos) comma = s.size();
    out.push_back(static_cast<unsigned>(std::stoul(s.substr(pos, comma - pos))));
    pos = comma + 1;
  }
  if (out.empty()) throw std::invalid_argument("--procs needs at least one value");
  return out;
}

/// Match `--flag=value` or `--flag value`; on a match, `value` is set and
/// `i` is left on the last argv slot consumed.
bool take_value(const std::string& flag, int argc, char** argv, int& i,
                std::string& value) {
  const std::string a = argv[i];
  if (a.rfind(flag + "=", 0) == 0) {
    value = a.substr(flag.size() + 1);
    return true;
  }
  if (a == flag) {
    if (i + 1 >= argc) throw std::invalid_argument(flag + " needs a value");
    value = argv[++i];
    return true;
  }
  return false;
}

obs::TraceFormat parse_trace_format(const std::string& s) {
  if (s == "ring") return obs::TraceFormat::Ring;
  if (s == "jsonl") return obs::TraceFormat::Jsonl;
  if (s == "perfetto") return obs::TraceFormat::Perfetto;
  throw std::invalid_argument("--trace-format must be ring, jsonl or perfetto");
}
} // namespace

bool parse_obs_arg(ObsOptions& o, int argc, char** argv, int& i) {
  std::string v;
  if (take_value("--json", argc, argv, i, v)) {
    o.json_path = v;
  } else if (take_value("--trace-out", argc, argv, i, v)) {
    o.trace_path = v;
  } else if (take_value("--trace-format", argc, argv, i, v)) {
    o.trace_format = parse_trace_format(v);
  } else if (take_value("--sample-interval", argc, argv, i, v)) {
    o.sample_interval = std::strtoull(v.c_str(), nullptr, 10);
    if (o.sample_interval == 0)
      throw std::invalid_argument("--sample-interval must be > 0");
  } else if (take_value("--hot-top", argc, argv, i, v)) {
    o.hot_top_k = std::strtoull(v.c_str(), nullptr, 10);
    if (o.hot_top_k == 0) throw std::invalid_argument("--hot-top must be > 0");
  } else if (std::strcmp(argv[i], "--profile") == 0) {
    o.profile = true;
  } else if (std::strcmp(argv[i], "--host-metrics") == 0) {
    o.host_metrics = true;
  } else if (std::strcmp(argv[i], "--sharing") == 0) {
    o.sharing = true;
  } else {
    return false;
  }
  return true;
}

BenchOptions parse_bench_args(int argc, char** argv) {
  BenchOptions o;
  if (const char* env = std::getenv("REPRO_SCALE")) o.scale = std::atof(env);
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    std::string v;
    if (a == "--paper") {
      o.scale = 1.0;
    } else if (a.rfind("--scale=", 0) == 0) {
      o.scale = std::atof(a.c_str() + 8);
    } else if (a.rfind("--procs=", 0) == 0) {
      o.procs = parse_list(a.substr(8));
    } else if (a == "--csv") {
      o.csv = true;
    } else if (take_value("--jobs", argc, argv, i, v)) {
      char* end = nullptr;
      const unsigned long n = std::strtoul(v.c_str(), &end, 10);
      if (end == v.c_str() || *end != '\0')
        throw std::invalid_argument("--jobs needs a non-negative integer");
      o.jobs = static_cast<unsigned>(n);
    } else if (parse_obs_arg(o.obs, argc, argv, i)) {
      // consumed (possibly including a separate value argument)
    } else if (a == "--help" || a == "-h") {
      // handled by the bench's own usage text; ignore here
    } else {
      throw std::invalid_argument("unknown argument: " + a);
    }
  }
  if (o.scale <= 0.0 || o.scale > 1.0)
    throw std::invalid_argument("scale must be in (0, 1]");
  return o;
}

} // namespace ccsim::harness
