#include "harness/cli.hpp"

#include <cstdlib>
#include <cstring>
#include <stdexcept>

namespace ccsim::harness {

namespace {
std::vector<unsigned> parse_list(const std::string& s) {
  std::vector<unsigned> out;
  std::size_t pos = 0;
  while (pos < s.size()) {
    std::size_t comma = s.find(',', pos);
    if (comma == std::string::npos) comma = s.size();
    out.push_back(static_cast<unsigned>(std::stoul(s.substr(pos, comma - pos))));
    pos = comma + 1;
  }
  if (out.empty()) throw std::invalid_argument("--procs needs at least one value");
  return out;
}
} // namespace

BenchOptions parse_bench_args(int argc, char** argv) {
  BenchOptions o;
  if (const char* env = std::getenv("REPRO_SCALE")) o.scale = std::atof(env);
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--paper") {
      o.scale = 1.0;
    } else if (a.rfind("--scale=", 0) == 0) {
      o.scale = std::atof(a.c_str() + 8);
    } else if (a.rfind("--procs=", 0) == 0) {
      o.procs = parse_list(a.substr(8));
    } else if (a == "--csv") {
      o.csv = true;
    } else if (a == "--help" || a == "-h") {
      // handled by the bench's own usage text; ignore here
    } else {
      throw std::invalid_argument("unknown argument: " + a);
    }
  }
  if (o.scale <= 0.0 || o.scale > 1.0)
    throw std::invalid_argument("scale must be in (0, 1]");
  return o;
}

} // namespace ccsim::harness
