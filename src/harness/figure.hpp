// Small table / CSV formatting helpers for the figure-reproduction benches.
#pragma once

#include "stats/counters.hpp"
#include "stats/table.hpp"

#include <iosfwd>
#include <string>
#include <vector>

namespace ccsim::harness {

/// Fixed-width text table, printed in the style of the paper's figures
/// (one series per row, one machine size / category per column). Thin
/// wrapper over stats::Table::figure, kept so the benches read unchanged.
class Table {
public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  void print(std::ostream& os) const;
  void print_csv(std::ostream& os) const;

  static std::string num(double v, int precision = 1);
  static std::string num(std::uint64_t v);

private:
  [[nodiscard]] stats::Table build() const;

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// The machine sizes the paper sweeps.
[[nodiscard]] const std::vector<unsigned>& paper_proc_counts();

/// Cells for a categorized miss breakdown (cold/true/false/evict/drop + excl).
[[nodiscard]] std::vector<std::string> miss_cells(const stats::MissCounts& m);
[[nodiscard]] std::vector<std::string> miss_headers();

/// Cells for a categorized update breakdown (useful/false/prolif/end/drop;
/// the replacement column is included for completeness -- the paper notes
/// it was never observed, which our runs reproduce).
[[nodiscard]] std::vector<std::string> update_cells(const stats::UpdateCounts& u);
[[nodiscard]] std::vector<std::string> update_headers();

} // namespace ccsim::harness
