// Bench-trajectory documents: the perf-regression contract for CI.
//
// A trajectory is a schema-versioned JSON snapshot of the figure suite --
// one entry per (figure, construct, protocol, machine size) point, carrying
// the run's total cycles, the paper's per-operation latency metric, its
// p50/p99 operation latencies, and the cycle-accounting breakdown vector.
// bench/run_trajectory writes one; tools/bench_compare diffs two and fails
// on latency regressions beyond a threshold, which is what lets CI keep a
// committed baseline (BENCH_ppopp97.json) honest.
//
// The simulator is deterministic, so a baseline regenerated from the same
// tree is byte-identical and any drift is a real behavior change.
#pragma once

#include "sim/types.hpp"
#include "stats/json.hpp"

#include <iosfwd>
#include <string>
#include <vector>

namespace ccsim::harness {

/// One benchmark point in a trajectory document.
struct TrajectoryEntry {
  std::string name;          ///< e.g. "fig08/lock/tk/WI/p16"
  Cycle cycles = 0;          ///< total simulated cycles for the run
  double avg_latency = 0.0;  ///< the paper's per-operation latency metric
  double p50 = 0.0;          ///< median per-operation latency
  double p99 = 0.0;          ///< tail per-operation latency
  /// Cycle-accounting totals in CycleCat order (empty = profiling off).
  std::vector<Cycle> breakdown;
  /// Optional host-performance readings (--host-metrics): present only
  /// when the run collected them. Additive -- schema stays 1; documents
  /// without a "host" object read back with has_host == false and compare
  /// on latency only. Host numbers are wall-clock and therefore excluded
  /// from byte-identity checks (docs/schema.md).
  bool has_host = false;
  double host_ms = 0.0;          ///< host milliseconds inside Machine::run
  double cycles_per_sec = 0.0;   ///< simulated-cycle throughput
  double events_per_sec = 0.0;   ///< executed-event throughput
};

struct TrajectoryDoc {
  /// Bump when the document layout changes incompatibly; readers reject
  /// mismatches instead of silently comparing apples to oranges.
  static constexpr std::uint64_t kSchema = 1;
  std::string bench;  ///< suite name, e.g. "ppopp97"
  std::vector<TrajectoryEntry> entries;
};

/// Serialize `doc` as canonical JSON (insertion-order keys, byte-stable
/// for a given doc, trailing newline).
void write_trajectory(std::ostream& os, const TrajectoryDoc& doc);

/// Parse a trajectory document. Throws std::runtime_error on malformed
/// JSON, missing keys, or a schema version this reader does not speak.
[[nodiscard]] TrajectoryDoc read_trajectory(std::istream& is);

struct CompareOptions {
  /// Fail when a benchmark's avg_latency regresses by more than this
  /// percentage over the baseline (slowdowns only; speedups always pass).
  double max_regress_pct = 10.0;
  /// Also fail when a benchmark present in the baseline is missing from
  /// the candidate (coverage must not silently shrink).
  bool require_all = true;
  /// Direction-aware host-throughput gate: fail when an entry's simulated
  /// cycles/sec *drops* by more than this percentage (throughput gains
  /// always pass; latency is gated the other way round by max_regress_pct).
  /// Only applies when BOTH entries carry host data, so comparing against
  /// a baseline written without --host-metrics never trips it.
  double max_tput_drop_pct = 10.0;
};

/// The verdict for one benchmark and for the diff as a whole.
struct CompareResult {
  struct Row {
    std::string name;
    double base = 0.0;       ///< baseline avg_latency
    double cand = 0.0;       ///< candidate avg_latency
    double delta_pct = 0.0;  ///< (cand - base) / base * 100; + = slower
    bool regression = false;
    /// Host-throughput comparison; meaningful only when has_tput (both
    /// sides carried host data).
    bool has_tput = false;
    double base_tput = 0.0;       ///< baseline cycles_per_sec
    double cand_tput = 0.0;       ///< candidate cycles_per_sec
    double tput_delta_pct = 0.0;  ///< (cand - base) / base * 100; - = slower
    bool tput_regression = false;
  };
  std::vector<Row> rows;             ///< every benchmark in both docs
  std::vector<std::string> missing;  ///< in baseline, absent from candidate
  std::vector<std::string> added;    ///< in candidate only (informational)
  bool ok = true;                    ///< no regressions (and, if required, no missing)
};

[[nodiscard]] CompareResult compare_trajectories(const TrajectoryDoc& base,
                                                 const TrajectoryDoc& cand,
                                                 const CompareOptions& opt);

/// Human-readable diff table: one row per benchmark with the delta,
/// regressions flagged, missing/added listed, and a one-line verdict.
void print_compare(std::ostream& os, const CompareResult& r,
                   const CompareOptions& opt);

} // namespace ccsim::harness
