// One observability session for a whole bench/driver invocation.
//
// Owns the output files and the trace sink selected by the --json /
// --trace-out / --trace-format / --sample-interval flags, configures every
// Machine the driver builds, collects the per-run results, and writes the
// machine-readable metrics document at the end. With no obs flags all calls
// are no-ops, so drivers adopt it unconditionally without changing their
// default output.
#pragma once

#include "harness/cli.hpp"
#include "harness/workloads.hpp"
#include "stats/json.hpp"

#include <fstream>
#include <memory>
#include <string>
#include <vector>

namespace ccsim::harness {

class ObsSession {
public:
  /// `name` labels the metrics document (typically the bench binary name).
  ObsSession(ObsOptions opts, std::string name);
  ObsSession(const ObsSession&) = delete;
  ObsSession& operator=(const ObsSession&) = delete;
  ~ObsSession();

  /// Point `cfg` at this session's sink/sampling/hot-block settings and
  /// open a new trace run labeled `label`. Call once per Machine, right
  /// before constructing it.
  void configure(MachineConfig& cfg, std::string label);

  /// Collect the result of the run last configure()d (kept only when a
  /// metrics file was requested).
  void record(const RunResult& r);

  /// Flush the trace and write the metrics JSON. Idempotent; also runs
  /// from the destructor.
  void finish();

  /// True if any obs flag was given.
  [[nodiscard]] bool enabled() const noexcept { return opts_.any(); }

private:
  ObsOptions opts_;
  std::string name_;
  std::ofstream trace_file_;
  std::unique_ptr<obs::TraceSink> sink_;
  std::string label_;
  struct Entry {
    std::string label;
    RunResult result;
  };
  std::vector<Entry> runs_;
  bool finished_ = false;
};

/// Write one run as a JSON object: label, cycles, avg_latency, counters,
/// interval samples (when sampled) and hot blocks (when attributed).
void write_run_json(stats::JsonWriter& w, const std::string& label,
                    const RunResult& r);

/// The body of write_run_json without the label: emits the run's keys
/// (cycles, avg_latency, counters, latency?, samples?, hot_blocks?,
/// profile?) into the object currently open on `w`. Shared with
/// tools/ccsweep so sweep cells and --json runs carry one schema
/// (documented in docs/schema.md).
void write_run_fields(stats::JsonWriter& w, const RunResult& r);

/// Emit the body of the "sharing" section (schema, per-pattern block
/// counts, per-block rows, per-allocation aggregates, projected WI/PU/CU
/// costs and the recommended protocol) into the object currently open on
/// `w`. Shared with tools/ccadvise. Schema in docs/schema.md; the section
/// is opt-in and excluded from byte-identity comparisons.
void write_sharing_fields(stats::JsonWriter& w, const obs::SharingReport& s);

/// Emit the body of the "host" section (schema, throughput, queue stats,
/// allocation counters, subsystem nanoseconds) into the object currently
/// open on `w`. Shared with tools/ccperf. Schema in docs/schema.md; the
/// section is opt-in and excluded from byte-identity comparisons.
void write_host_fields(stats::JsonWriter& w, const obs::HostPerfReport& h);

} // namespace ccsim::harness
