// Shared command-line handling for the bench binaries.
//
// Every figure bench accepts:
//   --paper       run the paper's full iteration counts (32000 acquires,
//                 5000 episodes/rounds); the default is a scaled-down run
//                 whose steady-state averages match
//   --scale=X     explicit scale factor (0 < X <= 1)
//   --procs=a,b   override the machine-size sweep
//   --csv         emit CSV instead of the aligned table
// The REPRO_SCALE environment variable, if set, provides the default scale.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ccsim::harness {

struct BenchOptions {
  double scale = 0.05;
  bool csv = false;
  std::vector<unsigned> procs{1, 2, 4, 8, 16, 32};

  /// Apply the scale to one of the paper's iteration counts (>= 32).
  [[nodiscard]] std::uint64_t scaled(std::uint64_t paper_count) const {
    const auto n = static_cast<std::uint64_t>(static_cast<double>(paper_count) * scale);
    return n < 32 ? 32 : n;
  }
};

BenchOptions parse_bench_args(int argc, char** argv);

} // namespace ccsim::harness
