// Shared command-line handling for the bench binaries.
//
// Every figure bench accepts:
//   --paper       run the paper's full iteration counts (32000 acquires,
//                 5000 episodes/rounds); the default is a scaled-down run
//                 whose steady-state averages match
//   --scale=X     explicit scale factor (0 < X <= 1)
//   --procs=a,b   override the machine-size sweep
//   --csv         emit CSV instead of the aligned table
//   --jobs=N      run the sweep's independent cells on N worker threads
//                 (0 = one per hardware thread; default 1 = sequential).
//                 Output is byte-identical for every N. Observability
//                 flags stream per-run output and therefore force
//                 sequential execution (a note is printed).
// Observability (everything off by default; the default output is unchanged):
//   --json FILE           write machine-readable metrics (counters, interval
//                         samples, hot-block table) for every run
//   --trace-out FILE      write a structured event trace
//   --trace-format F      ring | jsonl | perfetto (default perfetto)
//   --sample-interval N   snapshot counter deltas every N cycles
//   --hot-top K           report the K hottest blocks (default 16)
//   --profile             cycle-accounting profiler: per-category stall
//                         breakdown and sync-phase latency histograms,
//                         printed per run and embedded in --json output
//   --host-metrics        host-performance telemetry: simulator throughput,
//                         event-queue depth stats, allocation counters and
//                         host-time attribution, printed per run and added
//                         as a "host" section to --json output. Never
//                         changes simulated results.
//   --sharing             per-block sharing-pattern classification and
//                         protocol advice: taxonomy table and projected
//                         WI/PU/CU costs, printed per run and added as a
//                         "sharing" section to --json output. Never
//                         changes simulated results.
// Each obs flag accepts both `--flag value` and `--flag=value`.
// The REPRO_SCALE environment variable, if set, provides the default scale.
#pragma once

#include "obs/trace.hpp"

#include <cstdint>
#include <string>
#include <vector>

namespace ccsim::harness {

/// Observability-related command-line options (shared by the benches and
/// examples/protocol_explorer).
struct ObsOptions {
  std::string json_path;   ///< --json: metrics JSON output ("" = off)
  std::string trace_path;  ///< --trace-out: trace file ("" = off)
  obs::TraceFormat trace_format = obs::TraceFormat::Perfetto;
  Cycle sample_interval = 0;  ///< --sample-interval (0 = off)
  std::size_t hot_top_k = 16; ///< --hot-top
  bool profile = false;       ///< --profile (cycle accounting)
  bool host_metrics = false;  ///< --host-metrics (host telemetry)
  bool sharing = false;       ///< --sharing (sharing-pattern classifier)
  [[nodiscard]] bool any() const noexcept {
    return !json_path.empty() || !trace_path.empty() || sample_interval != 0 ||
           profile || host_metrics || sharing;
  }
};

struct BenchOptions {
  double scale = 0.05;
  bool csv = false;
  std::vector<unsigned> procs{1, 2, 4, 8, 16, 32};
  /// Sweep worker threads (--jobs): 1 = sequential, 0 = hardware threads.
  unsigned jobs = 1;
  ObsOptions obs;

  /// Apply the scale to one of the paper's iteration counts (>= 32).
  [[nodiscard]] std::uint64_t scaled(std::uint64_t paper_count) const {
    const auto n = static_cast<std::uint64_t>(static_cast<double>(paper_count) * scale);
    return n < 32 ? 32 : n;
  }
};

BenchOptions parse_bench_args(int argc, char** argv);

/// Try to consume one observability flag at argv[i] (advancing i past a
/// separate value argument if needed). Returns false if argv[i] is not an
/// obs flag. Shared between parse_bench_args and the example drivers.
bool parse_obs_arg(ObsOptions& o, int argc, char** argv, int& i);

} // namespace ccsim::harness
