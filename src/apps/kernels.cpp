#include "apps/kernels.hpp"

#include "sim/rng.hpp"
#include "sync/barriers.hpp"
#include "sync/mcs_lock.hpp"
#include "sync/reductions.hpp"
#include "sync/simple_locks.hpp"
#include "sync/ticket_lock.hpp"

#include <memory>
#include <string>
#include <vector>

namespace ccsim::apps {

namespace {

std::unique_ptr<sync::Barrier> make_barrier(harness::Machine& m,
                                            harness::BarrierKind k) {
  switch (k) {
    case harness::BarrierKind::Central:
      return std::make_unique<sync::CentralBarrier>(m);
    case harness::BarrierKind::Dissemination:
      return std::make_unique<sync::DisseminationBarrier>(m);
    case harness::BarrierKind::Tree:
      return std::make_unique<sync::TreeBarrier>(m);
    case harness::BarrierKind::CombiningTree:
      return std::make_unique<sync::CombiningTreeBarrier>(m);
  }
  return nullptr;
}

std::unique_ptr<sync::Lock> make_lock(harness::Machine& m, harness::LockKind k,
                                      NodeId home) {
  switch (k) {
    case harness::LockKind::Ticket:
      return std::make_unique<sync::TicketLock>(m, home);
    case harness::LockKind::Mcs:
      return std::make_unique<sync::McsLock>(m, false, home);
    case harness::LockKind::UcMcs:
      return std::make_unique<sync::McsLock>(m, true, home);
  }
  return nullptr;
}

} // namespace

// ---------------------------------------------------------------------
// SOR
// ---------------------------------------------------------------------

KernelResult run_sor(proto::Protocol p, unsigned nprocs,
                    const SorParams& params,
                    const harness::ObsConfig* obs) {
  harness::MachineConfig cfg;
  cfg.protocol = p;
  cfg.nprocs = nprocs;
  if (obs) cfg.obs = *obs;
  harness::Machine m(cfg);
  auto barrier = make_barrier(m, params.barrier);

  const unsigned cells = params.cells_per_proc;
  std::vector<Addr> band(nprocs), halo_lo(nprocs), halo_hi(nprocs);
  for (NodeId i = 0; i < nprocs; ++i) {
    band[i] = m.alloc().allocate_on(i, cells * mem::kWordSize,
                                    "stencil.band" + std::to_string(i));
    halo_lo[i] = m.alloc().allocate_on(i, mem::kWordSize,
                                       "stencil.halo_lo" + std::to_string(i));
    halo_hi[i] = m.alloc().allocate_on(i, mem::kWordSize,
                                       "stencil.halo_hi" + std::to_string(i));
  }
  m.poke(band[0], 1'000'000);  // hot left boundary

  // Host-side oracle: the same relaxation on a flat array.
  const unsigned total = nprocs * cells;
  std::vector<std::uint64_t> oracle(total, 0);
  oracle[0] = 1'000'000;
  for (int s = 0; s < params.sweeps; ++s) {
    std::vector<std::uint64_t> next(total);
    std::uint64_t left_halo = 0;
    for (unsigned i = 0; i < total; ++i) {
      const std::uint64_t left = i == 0 ? 0 : (i % cells == 0 ? left_halo : next[i - 1]);
      const std::uint64_t right = i + 1 < total ? oracle[i + 1] : 0;
      next[i] = (left + 2 * oracle[i] + right) / 4;
      // A processor reads its left neighbor's PRE-sweep boundary value
      // (published before the barrier), but its own in-band left neighbor
      // post-sweep (Gauss-Seidel within the band).
      if ((i + 1) % cells == 0) left_halo = oracle[i];  // halo published pre-sweep
    }
    // Fix the halo semantics: halo for band b is oracle[b*cells - 1]
    // (pre-sweep), which the loop above captured as it passed.
    oracle = next;
  }

  KernelResult res;
  res.cycles = m.run_all([&, cells](cpu::Cpu& c) -> sim::Task {
    const NodeId me = c.id();
    for (int s = 0; s < params.sweeps; ++s) {
      if (me > 0) {
        const std::uint64_t first = co_await c.load(band[me]);
        co_await c.store(halo_hi[me - 1], first);
      }
      if (me + 1 < m.nprocs()) {
        const std::uint64_t last =
            co_await c.load(band[me] + (cells - 1) * mem::kWordSize);
        co_await c.store(halo_lo[me + 1], last);
      }
      co_await c.fence();
      co_await barrier->wait(c);

      std::uint64_t left = me > 0 ? co_await c.load(halo_lo[me]) : 0;
      for (unsigned i = 0; i < cells; ++i) {
        const Addr a = band[me] + i * mem::kWordSize;
        const std::uint64_t v = co_await c.load(a);
        const std::uint64_t right =
            i + 1 < cells ? co_await c.load(a + mem::kWordSize)
                          : (me + 1 < m.nprocs() ? co_await c.load(halo_hi[me]) : 0);
        const std::uint64_t nv = (left + 2 * v + right) / 4;
        co_await c.store(a, nv);
        left = nv;
        co_await c.think(4);
      }
      co_await barrier->wait(c);
    }
    co_await c.fence();
  });

  res.correct = true;
  for (NodeId i = 0; i < nprocs && res.correct; ++i)
    for (unsigned k = 0; k < cells && res.correct; ++k)
      res.correct = m.peek(band[i] + k * mem::kWordSize) == oracle[i * cells + k];
  res.counters = m.counters();
  res.samples = m.samples();
  res.hot = m.hot_blocks();
  return res;
}

// ---------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------

KernelResult run_histogram(proto::Protocol p, unsigned nprocs,
                    const HistogramParams& params,
                    const harness::ObsConfig* obs) {
  harness::MachineConfig cfg;
  cfg.protocol = p;
  cfg.nprocs = nprocs;
  if (obs) cfg.obs = *obs;
  harness::Machine m(cfg);

  // One bucket counter + one lock per bucket, distributed round-robin.
  std::vector<Addr> bucket(params.buckets);
  std::vector<std::unique_ptr<sync::Lock>> lock(params.buckets);
  for (unsigned b = 0; b < params.buckets; ++b) {
    const NodeId home = static_cast<NodeId>(b % nprocs);
    bucket[b] = m.alloc().allocate_on(home, mem::kWordSize,
                                      "hist.bucket" + std::to_string(b));
    lock[b] = make_lock(m, params.lock, home);
  }

  // Oracle.
  std::vector<std::uint64_t> expect(params.buckets, 0);
  for (NodeId q = 0; q < nprocs; ++q) {
    sim::Rng rng(sim::Rng::derive(params.seed, q));
    for (unsigned i = 0; i < params.items_per_proc; ++i)
      ++expect[rng.below(params.buckets)];
  }

  KernelResult res;
  res.cycles = m.run_all([&](cpu::Cpu& c) -> sim::Task {
    sim::Rng rng(sim::Rng::derive(params.seed, c.id()));
    for (unsigned i = 0; i < params.items_per_proc; ++i) {
      const unsigned b = static_cast<unsigned>(rng.below(params.buckets));
      co_await c.think(10);  // classify the item
      co_await lock[b]->acquire(c);
      const std::uint64_t v = co_await c.load(bucket[b]);
      co_await c.store(bucket[b], v + 1);
      co_await lock[b]->release(c);
    }
  });

  res.correct = true;
  for (unsigned b = 0; b < params.buckets && res.correct; ++b)
    res.correct = m.peek(bucket[b]) == expect[b];
  res.counters = m.counters();
  res.samples = m.samples();
  res.hot = m.hot_blocks();
  return res;
}

// ---------------------------------------------------------------------
// N-body step
// ---------------------------------------------------------------------

KernelResult run_nbody_step(proto::Protocol p, unsigned nprocs,
                    const NbodyParams& params,
                    const harness::ObsConfig* obs) {
  harness::MachineConfig cfg;
  cfg.protocol = p;
  cfg.nprocs = nprocs;
  if (obs) cfg.obs = *obs;
  harness::Machine m(cfg);

  sync::TicketLock lock(m);
  sync::DisseminationBarrier barrier(m);
  sync::ParallelReduction par(m, lock, barrier);
  sync::SequentialReduction seq(m, barrier);

  // Oracle: running max over the same velocity streams.
  std::uint64_t running = 0;
  std::vector<std::uint64_t> oracle;
  {
    std::vector<sim::Rng> rngs;
    std::vector<std::uint64_t> vel(nprocs * params.bodies_per_proc);
    for (NodeId q = 0; q < nprocs; ++q) {
      sim::Rng rng(sim::Rng::derive(params.seed, q));
      for (unsigned b = 0; b < params.bodies_per_proc; ++b)
        vel[q * params.bodies_per_proc + b] = rng.below(1000);
      rngs.push_back(rng);
    }
    for (int t = 0; t < params.steps; ++t) {
      for (NodeId q = 0; q < nprocs; ++q) {
        std::uint64_t local = 0;
        for (unsigned b = 0; b < params.bodies_per_proc; ++b) {
          auto& v = vel[q * params.bodies_per_proc + b];
          v += rngs[q].below(50);
          local = std::max(local, v);
        }
        running = std::max(running, local);
      }
      oracle.push_back(running);
    }
  }

  bool ok = true;
  KernelResult res;
  res.cycles = m.run_all([&](cpu::Cpu& c) -> sim::Task {
    sim::Rng rng(sim::Rng::derive(params.seed, c.id()));
    std::vector<std::uint64_t> vel(params.bodies_per_proc);
    for (auto& v : vel) v = rng.below(1000);
    for (int t = 0; t < params.steps; ++t) {
      std::uint64_t local = 0;
      for (auto& v : vel) {
        v += rng.below(50);
        local = std::max(local, v);
      }
      co_await c.think(params.bodies_per_proc * 8);
      std::uint64_t global = 0;
      if (params.parallel_reduction)
        co_await par.reduce(c, local, &global);
      else
        co_await seq.reduce(c, local, &global);
      if (global != oracle[static_cast<std::size_t>(t)]) ok = false;
    }
  });
  res.correct = ok;
  res.counters = m.counters();
  res.samples = m.samples();
  res.hot = m.hot_blocks();
  return res;
}

// ---------------------------------------------------------------------
// Pipeline
// ---------------------------------------------------------------------

KernelResult run_pipeline(proto::Protocol p, unsigned nprocs,
                    const PipelineParams& params,
                    const harness::ObsConfig* obs) {
  harness::MachineConfig cfg;
  cfg.protocol = p;
  cfg.nprocs = nprocs;
  if (obs) cfg.obs = *obs;
  harness::Machine m(cfg);

  // nprocs stages connected by nprocs-1 SPSC rings. Ring i sits on the
  // consumer's node (stage i+1): slots + head (producer writes) + tail
  // (consumer writes), each in its own block to keep the flag traffic
  // clean producer/consumer pairs.
  const unsigned slots = params.queue_slots;
  struct Ring {
    Addr data;
    Addr head;  ///< items produced so far
    Addr tail;  ///< items consumed so far
  };
  std::vector<Ring> ring(nprocs > 1 ? nprocs - 1 : 0);
  for (unsigned i = 0; i + 1 < nprocs; ++i) {
    const NodeId home = static_cast<NodeId>(i + 1);
    ring[i].data = m.alloc().allocate_on(home, slots * mem::kWordSize,
                                         "pipe.data" + std::to_string(i));
    ring[i].head = m.alloc().allocate_on(home, mem::kWordSize,
                                         "pipe.head" + std::to_string(i));
    ring[i].tail = m.alloc().allocate_on(home, mem::kWordSize,
                                         "pipe.tail" + std::to_string(i));
  }

  // Stage transform: x -> 3x + stage. Oracle for the final checksum.
  std::uint64_t expect = 0;
  for (unsigned it = 0; it < params.items; ++it) {
    std::uint64_t x = it + 1;
    for (unsigned s = 1; s < nprocs; ++s) x = 3 * x + s;
    expect += x;
  }
  const Addr sink = m.alloc().allocate_on(nprocs - 1, mem::kWordSize, "pipe.sink");

  KernelResult res;
  res.cycles = m.run_all([&, slots](cpu::Cpu& c) -> sim::Task {
    const NodeId me = c.id();
    const unsigned items = params.items;

    if (m.nprocs() == 1) {
      // Degenerate single-stage pipeline: transform and sum locally.
      std::uint64_t sum = 0;
      for (unsigned it = 0; it < items; ++it) sum += it + 1;
      co_await c.store(sink, sum);
      co_await c.fence();
      co_return;
    }

    std::uint64_t checksum = 0;
    for (unsigned it = 0; it < items; ++it) {
      std::uint64_t x;
      if (me == 0) {
        x = it + 1;  // source stage generates
      } else {
        // Consume from ring[me-1]: wait until head > consumed.
        const Ring& in = ring[me - 1];
        co_await c.spin_until(in.head, [it](std::uint64_t h) { return h > it; });
        x = co_await c.load(in.data + (it % slots) * mem::kWordSize);
        x = 3 * x + me;  // stage transform
        co_await c.think(12);
        co_await c.store(in.tail, it + 1);  // free the slot
      }
      if (me + 1 < m.nprocs()) {
        // Produce into ring[me]: wait for a free slot, write, publish.
        const Ring& out = ring[me];
        co_await c.spin_until(out.tail, [it, slots](std::uint64_t t) {
          return it < t + slots;
        });
        co_await c.store(out.data + (it % slots) * mem::kWordSize, x);
        co_await c.fence();  // data visible before the publish
        co_await c.store(out.head, it + 1);
      } else {
        checksum += x;
      }
    }
    if (me + 1 == m.nprocs()) {
      co_await c.store(sink, checksum);
      co_await c.fence();
    }
  });

  res.correct = nprocs == 1
                    ? m.peek(sink) == params.items * (params.items + 1ull) / 2
                    : m.peek(sink) == expect;
  res.counters = m.counters();
  res.samples = m.samples();
  res.hot = m.hot_blocks();
  return res;
}

// ---------------------------------------------------------------------
// Matmul
// ---------------------------------------------------------------------

KernelResult run_matmul(proto::Protocol p, unsigned nprocs,
                    const MatmulParams& params,
                    const harness::ObsConfig* obs) {
  harness::MachineConfig cfg;
  cfg.protocol = p;
  cfg.nprocs = nprocs;
  if (obs) cfg.obs = *obs;
  harness::Machine m(cfg);
  auto barrier = make_barrier(m, params.barrier);

  const unsigned n = params.dim;
  // Row-major shared matrices; A and C rows homed at their owning
  // processor's node, B interleaved (read by everyone).
  std::vector<Addr> a_row(n), c_row(n);
  const Addr b_base =
      m.alloc().allocate(n * n * mem::kWordSize, mem::kBlockSize, "mm.B");
  const auto owner = [&](unsigned row) {
    return static_cast<NodeId>(row * nprocs / n);
  };
  for (unsigned r = 0; r < n; ++r) {
    a_row[r] = m.alloc().allocate_on(owner(r), n * mem::kWordSize,
                                     "mm.A.row" + std::to_string(r));
    c_row[r] = m.alloc().allocate_on(owner(r), n * mem::kWordSize,
                                     "mm.C.row" + std::to_string(r));
  }

  // Host-side oracle over the same deterministic fill.
  const auto a_val = [&](unsigned r, unsigned c) {
    return sim::Rng(params.seed ^ (r * 131u + c)).next() % 97;
  };
  const auto b_val = [&](unsigned r, unsigned c) {
    return sim::Rng(~params.seed ^ (r * 17u + c)).next() % 89;
  };
  std::vector<std::uint64_t> expect(n * n, 0);
  for (unsigned r = 0; r < n; ++r)
    for (unsigned c = 0; c < n; ++c) {
      std::uint64_t acc = 0;
      for (unsigned k = 0; k < n; ++k) acc += a_val(r, k) * b_val(k, c);
      expect[r * n + c] = acc;
    }

  KernelResult res;
  res.cycles = m.run_all([&, n](cpu::Cpu& c) -> sim::Task {
    const NodeId me = c.id();
    // Fill phase: each processor writes its band of A; processor 0 fills B.
    for (unsigned r = 0; r < n; ++r) {
      if (owner(r) != me) continue;
      for (unsigned k = 0; k < n; ++k)
        co_await c.store(a_row[r] + k * mem::kWordSize, a_val(r, k));
    }
    if (me == 0) {
      for (unsigned r = 0; r < n; ++r)
        for (unsigned k = 0; k < n; ++k)
          co_await c.store(b_base + (r * n + k) * mem::kWordSize, b_val(r, k));
    }
    co_await c.fence();
    co_await barrier->wait(c);

    // Multiply phase: C's bands, reading the shared B.
    for (unsigned r = 0; r < n; ++r) {
      if (owner(r) != me) continue;
      for (unsigned col = 0; col < n; ++col) {
        std::uint64_t acc = 0;
        for (unsigned k = 0; k < n; ++k) {
          const std::uint64_t av = co_await c.load(a_row[r] + k * mem::kWordSize);
          const std::uint64_t bv =
              co_await c.load(b_base + (k * n + col) * mem::kWordSize);
          acc += av * bv;
          co_await c.think(2);  // multiply-accumulate
        }
        co_await c.store(c_row[r] + col * mem::kWordSize, acc);
      }
    }
    co_await c.fence();
    co_await barrier->wait(c);
  });

  res.correct = true;
  for (unsigned r = 0; r < n && res.correct; ++r)
    for (unsigned col = 0; col < n && res.correct; ++col)
      res.correct = m.peek(c_row[r] + col * mem::kWordSize) == expect[r * n + col];
  res.counters = m.counters();
  res.samples = m.samples();
  res.hot = m.hot_blocks();
  return res;
}

} // namespace ccsim::apps
