// Application kernels: small whole-program workloads in the style of the
// SPLASH-2 kernels the paper's methodology targets (its figure-6 snippet
// is lifted from Barnes-Hut). Each kernel builds its own machine, runs to
// completion, CHECKS ITS NUMERICAL RESULT against a host-side oracle, and
// returns cycles + categorized traffic -- so protocol/construct choices
// can be compared at application level (bench/app_suite) with correctness
// enforced on every run.
//
// Kernels:
//   - sor:        red-black successive over-relaxation on a 1D rod;
//                 barrier-per-phase, halo exchange between neighbors.
//   - histogram:  each processor classifies a private stream into shared
//                 buckets; bucket updates guarded by a sharded lock array.
//   - nbody_step: force-accumulation timesteps with a global max-velocity
//                 reduction (parallel or sequential) deciding dt.
//   - pipeline:   a chain of single-producer single-consumer ring buffers;
//                 each stage transforms items and passes them on --
//                 pure producer/consumer flag traffic.
#pragma once

#include "harness/machine.hpp"
#include "harness/workloads.hpp"

#include <cstdint>

namespace ccsim::apps {

/// Outcome of one kernel run. `correct` is the oracle check; benches and
/// tests must treat false as a hard failure.
struct KernelResult {
  Cycle cycles = 0;
  stats::Counters counters;
  bool correct = false;
  /// Per-interval counter samples (empty unless obs sampling was on).
  obs::IntervalSeries samples;
  /// Hottest blocks with allocator names (empty unless obs attribution).
  std::vector<obs::HotBlockTable::Row> hot;
};

struct SorParams {
  unsigned cells_per_proc = 24;
  int sweeps = 32;
  harness::BarrierKind barrier = harness::BarrierKind::Dissemination;
};
KernelResult run_sor(proto::Protocol p, unsigned nprocs,
                    const SorParams& params,
                    const harness::ObsConfig* obs = nullptr);

struct HistogramParams {
  unsigned buckets = 16;        ///< shared buckets (one lock per bucket)
  unsigned items_per_proc = 64; ///< classified stream length per processor
  harness::LockKind lock = harness::LockKind::Ticket;
  std::uint64_t seed = 99;
};
KernelResult run_histogram(proto::Protocol p, unsigned nprocs,
                    const HistogramParams& params,
                    const harness::ObsConfig* obs = nullptr);

struct NbodyParams {
  unsigned bodies_per_proc = 12;
  int steps = 16;
  bool parallel_reduction = true;  ///< figure 6 vs figure 7 strategy
  std::uint64_t seed = 7;
};
KernelResult run_nbody_step(proto::Protocol p, unsigned nprocs,
                    const NbodyParams& params,
                    const harness::ObsConfig* obs = nullptr);

struct PipelineParams {
  unsigned items = 128;        ///< items fed into the first stage
  unsigned queue_slots = 4;    ///< ring-buffer capacity between stages
};
KernelResult run_pipeline(proto::Protocol p, unsigned nprocs,
                    const PipelineParams& params,
                    const harness::ObsConfig* obs = nullptr);

struct MatmulParams {
  unsigned dim = 8;  ///< square matrix dimension (rows split across procs)
  harness::BarrierKind barrier = harness::BarrierKind::Dissemination;
  std::uint64_t seed = 17;
};
/// C = A x B over shared matrices: each processor owns a band of C's rows,
/// reads all of B (read-shared) and its band of A; a barrier separates the
/// fill phase from the multiply.
KernelResult run_matmul(proto::Protocol p, unsigned nprocs,
                    const MatmulParams& params,
                    const harness::ObsConfig* obs = nullptr);

} // namespace ccsim::apps
