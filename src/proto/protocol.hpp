// Coherence-protocol framework: the interfaces the CPU model and the node
// wiring program against, plus the factory selecting WI / PU / CU.
#pragma once

#include "mem/address.hpp"
#include "mem/cache.hpp"
#include "mem/directory.hpp"
#include "mem/memory_module.hpp"
#include "mem/shared_alloc.hpp"
#include "mem/write_buffer.hpp"
#include "net/message.hpp"
#include "net/network.hpp"
#include "sim/event_queue.hpp"
#include "sim/trace.hpp"
#include "stats/counters.hpp"
#include "stats/miss_classifier.hpp"
#include "stats/update_classifier.hpp"

#include <cstdint>
#include <functional>
#include <memory>

namespace ccsim::obs {
class CycleLedger;
class HostPerfCollector;
class HotBlockTable;
class InvariantChecker;
class SharingTracker;
}

namespace ccsim::proto {

/// Which coherence protocol a machine runs (paper, sections 1 and 3.1).
enum class Protocol : std::uint8_t {
  WI,  ///< write invalidate (DASH-like, release consistent)
  PU,  ///< pure update (write-through + update multicast)
  CU,  ///< competitive update (PU + per-block counters, threshold 4)
  /// Per-region protocol binding on one machine (the paper's
  /// programmable-protocol-processor scenario, FLASH/Typhoon style):
  /// shared regions are tagged WI/PU/CU via Machine::bind_protocol and
  /// each node runs all three engines side by side.
  Hybrid,
};

[[nodiscard]] constexpr std::string_view to_string(Protocol p) noexcept {
  switch (p) {
    case Protocol::WI: return "WI";
    case Protocol::PU: return "PU";
    case Protocol::CU: return "CU";
    case Protocol::Hybrid: return "Hybrid";
  }
  return "?";
}

/// Memory consistency model. The paper's machine is release consistent
/// (writes stall only at releases); sequential consistency stalls every
/// shared store until it is globally performed -- provided as an ablation
/// of how much the constructs' performance depends on RC.
enum class Consistency : std::uint8_t { Release, Sequential };

/// Services shared by every controller of one simulated machine.
struct ProtocolContext {
  sim::EventQueue& q;
  net::Network& net;
  mem::SharedAllocator& alloc;
  stats::Counters& counters;
  stats::MissClassifier& misses;
  stats::UpdateClassifier& updates;
  unsigned nprocs;
  unsigned cu_threshold = 4;  ///< competitive-update invalidation threshold
  sim::TraceLog* trace = nullptr;  ///< optional structured event trace
  obs::HotBlockTable* hot = nullptr;  ///< optional per-block attribution
  obs::CycleLedger* ledger = nullptr;  ///< optional cycle-accounting profiler
  /// Optional runtime coherence-invariant checker (obs/invariants.hpp).
  /// Engines notify it synchronously at transition points; it never
  /// schedules events, so timing is unchanged whether or not it is set.
  obs::InvariantChecker* checker = nullptr;
  /// Optional host-performance telemetry (obs/host_perf.hpp). Pure
  /// host-side observer: nodes attribute their message-handling host time
  /// to it; simulated results are identical with or without it.
  obs::HostPerfCollector* host = nullptr;
  /// Optional sharing-pattern tracker (obs/sharing.hpp). Pure observer fed
  /// at the same transition points as the checker plus the invalidation /
  /// update-delivery sends; schedules no events, so simulated results are
  /// byte-identical with or without it.
  obs::SharingTracker* sharing = nullptr;
  Consistency consistency = Consistency::Release;
  /// Hybrid machines: protocol for blocks whose domain id is 0.
  Protocol hybrid_default = Protocol::WI;
};

/// Point-in-time occupancy of a cache controller's queues, reported in
/// deadlock/watchdog diagnostics (see Machine::run).
struct CacheDebug {
  std::size_t wb_entries = 0;   ///< write-buffer occupancy
  std::size_t mshr = 0;         ///< outstanding block transactions
  std::int64_t pending_acks = 0;///< coherence acks a fence would wait for
  int outstanding = 0;          ///< granted-but-unacknowledged operations
};

/// Processor-side controller: cache + write buffer + protocol engine.
///
/// Completion callbacks fire when the operation completes from the
/// processor's point of view (loads: data available; stores: accepted by
/// the write buffer; atomics: old value returned; fences: all prior writes
/// globally performed).
class CacheController {
public:
  using LoadCallback = std::function<void(std::uint64_t)>;
  using DoneCallback = std::function<void()>;

  explicit CacheController(NodeId id, ProtocolContext& ctx, std::size_t cache_bytes,
                           std::size_t wb_entries)
      : id_(id), ctx_(ctx), cache_(cache_bytes), wb_(wb_entries) {}
  virtual ~CacheController() = default;

  virtual void cpu_load(Addr a, std::size_t size, LoadCallback done) = 0;
  virtual void cpu_store(Addr a, std::size_t size, std::uint64_t v, DoneCallback done) = 0;
  virtual void cpu_atomic(net::AtomicOp op, Addr a, std::uint64_t v1, std::uint64_t v2,
                          LoadCallback done) = 0;
  /// Release fence: wait for the write buffer to drain and all coherence
  /// acknowledgements of prior writes to arrive.
  virtual void cpu_fence(DoneCallback done) = 0;
  /// User-level block flush (PowerPC-604 style): drop `block_of(a)` from
  /// this cache, writing it back if dirty.
  virtual void cpu_flush(Addr a, DoneCallback done) = 0;

  virtual void on_message(const net::Message& msg) = 0;

  [[nodiscard]] NodeId id() const noexcept { return id_; }
  [[nodiscard]] mem::DataCache& cache() noexcept { return cache_; }
  /// The cache that holds (or would hold) `b` -- hybrid controllers
  /// dispatch to the owning protocol's cache; plain ones return cache().
  [[nodiscard]] virtual mem::DataCache& cache_for(mem::BlockAddr) noexcept {
    return cache_;
  }
  [[nodiscard]] const mem::WriteBuffer& write_buffer() const noexcept { return wb_; }

  /// Queue occupancy snapshot for watchdog/deadlock diagnostics.
  [[nodiscard]] virtual CacheDebug debug_state() const {
    return {wb_.size(), 0, 0, 0};
  }

protected:
  NodeId id_;
  ProtocolContext& ctx_;
  mem::DataCache cache_;
  mem::WriteBuffer wb_;
};

/// Home-side controller: directory + memory bank + protocol engine.
class HomeController {
public:
  HomeController(NodeId id, ProtocolContext& ctx, mem::MemTimings timings)
      : id_(id), ctx_(ctx), memory_(timings) {}
  virtual ~HomeController() = default;

  virtual void on_message(const net::Message& msg) = 0;

  [[nodiscard]] NodeId id() const noexcept { return id_; }
  [[nodiscard]] mem::MemoryModule& memory() noexcept { return memory_; }
  [[nodiscard]] mem::Directory& directory() noexcept { return dir_; }
  /// Hybrid dispatch points (plain homes return their own members).
  [[nodiscard]] virtual mem::MemoryModule& memory_for(mem::BlockAddr) noexcept {
    return memory_;
  }
  [[nodiscard]] virtual mem::Directory& directory_for(mem::BlockAddr) noexcept {
    return dir_;
  }

protected:
  NodeId id_;
  ProtocolContext& ctx_;
  mem::MemoryModule memory_;
  mem::Directory dir_;
};

/// True if `t` is addressed to the home (directory/memory) side of a node.
[[nodiscard]] bool is_home_bound(net::MsgType t) noexcept;

std::unique_ptr<CacheController> make_cache_controller(Protocol p, NodeId id,
                                                       ProtocolContext& ctx,
                                                       std::size_t cache_bytes,
                                                       std::size_t wb_entries);
std::unique_ptr<HomeController> make_home_controller(Protocol p, NodeId id,
                                                     ProtocolContext& ctx,
                                                     mem::MemTimings timings);

} // namespace ccsim::proto
