#include "proto/update_controllers.hpp"

#include "obs/invariants.hpp"
#include "obs/sharing.hpp"
#include "sim/check.hpp"

#include <cassert>
#include <string>

namespace ccsim::proto {

using net::Message;
using net::MsgType;

// ---------------------------------------------------------------------
// loads
// ---------------------------------------------------------------------

void UpdateCacheController::handle_load_miss(Addr a, std::size_t size, LoadCallback done) {
  const mem::BlockAddr b = mem::block_of(a);
  if (auto it = txns_.find(b); it != txns_.end()) {
    it->second.loads.push_back({a, size, std::move(done)});
    return;
  }
  ctx_.misses.classify_miss(id_, a);
  txns_[b].loads.push_back({a, size, std::move(done)});

  Message m;
  m.type = MsgType::GetS;
  m.dst = ctx_.alloc.home_of(b);
  m.addr = a;
  send(m);
}

void UpdateCacheController::fill(mem::BlockAddr b,
                                 const std::array<std::byte, mem::kBlockSize>& data) {
  mem::CacheLine& line = cache_.set_for(b);
  if (line.valid() && line.block != b) evict_line(line, /*flushing=*/false);
  line.block = b;
  line.state = mem::LineState::ValidU;
  line.data = data;
  line.cu_counter = 0;
  ctx_.misses.on_fill(id_, b);
  cache_.notify(b);

  auto it = txns_.find(b);
  if (it == txns_.end()) return;
  Txn t = std::move(it->second);
  txns_.erase(it);
  for (auto& w : t.loads) complete_load_later(w.addr, w.size, std::move(w.done));
  for (auto& r : t.retries) ctx_.q.schedule(1, std::move(r));
}

void UpdateCacheController::evict_line(mem::CacheLine& line, bool flushing) {
  const mem::BlockAddr b = line.block;
  Message m;
  m.dst = ctx_.alloc.home_of(b);
  m.addr = mem::block_base(b);
  if (line.state == mem::LineState::PrivateDirty) {
    m.type = MsgType::Writeback;
    m.flag = false;  // evicting: drop me from the sharing set
    m.has_block = true;
    m.block = line.data;
    note_writeback_sent(b);
  } else {
    m.type = MsgType::ReplHint;
  }
  send(m);
  ctx_.misses.on_evicted(id_, b);
  ctx_.updates.on_block_replaced(id_, b);
  line.state = mem::LineState::Invalid;
  cache_.notify(b);
  if (atomic_.active && mem::block_of(atomic_.addr) == b) atomic_.fill_ok = false;
  (void)flushing;
}

// ---------------------------------------------------------------------
// stores: write through to the home, no allocate on miss
// ---------------------------------------------------------------------

void UpdateCacheController::drain_head() {
  const mem::WriteBufferEntry e = wb_.front();
  if (!mem::is_shared(e.addr)) {
    private_mem_[e.addr] = e.value;
    entry_done();
    return;
  }
  const mem::BlockAddr b = mem::block_of(e.addr);
  mem::CacheLine* line = cache_.find(b);

  if (line && line->state == mem::LineState::PrivateDirty) {
    // Retained-update mode: the home asked us to keep updates local.
    ++ctx_.counters.mem.write_hits;
    cache_.write(e.addr, e.size, e.value);
    ctx_.misses.on_store(id_, e.addr);
    line->cu_counter = 0;
    // Single writer: a store into a private copy is globally ordered here.
    if (ctx_.checker)
      ctx_.checker->on_global_write(
          id_, e.addr,
          cache_.read(e.addr - e.addr % mem::kWordSize, mem::kWordSize));
    if (ctx_.sharing) ctx_.sharing->on_global_write(id_, e.addr);
    entry_done();
    return;
  }
  if (!line) {
    // Write-allocate: fetch the block first, then write through. The
    // writer stays a sharer afterwards, receiving updates for every later
    // modification of the block until it drops or flushes the copy.
    const mem::BlockAddr wb = mem::block_of(e.addr);
    if (auto it = txns_.find(wb); it != txns_.end()) {
      it->second.retries.push_back([this] { drain_head(); });
      return;
    }
    ctx_.misses.classify_miss(id_, e.addr);
    txns_[wb].retries.push_back([this] { drain_head(); });
    Message g;
    g.type = MsgType::GetS;
    g.dst = ctx_.alloc.home_of(wb);
    g.addr = e.addr;
    send(g);
    return;
  }
  // Keep our own copy fresh; the global store is performed at the home.
  ++ctx_.counters.mem.write_hits;
  cache_.write(e.addr, e.size, e.value);
  line->cu_counter = 0;
  if (ctx_.checker)
    ctx_.checker->on_local_write(
        id_, e.addr,
        cache_.read(e.addr - e.addr % mem::kWordSize, mem::kWordSize));
  if (ctx_.sharing) ctx_.sharing->on_local_write(id_, e.addr);
  Message m;
  m.type = MsgType::UpdateReq;
  m.dst = ctx_.alloc.home_of(b);
  m.addr = e.addr;
  m.payload = e.value;
  m.payload2 = e.size;
  send(m);
  ++outstanding_;  // one UpdateGrant per write-through
  entry_done();    // write-through does not block the buffer
}

// ---------------------------------------------------------------------
// atomics: executed at the home memory
// ---------------------------------------------------------------------

void UpdateCacheController::cpu_atomic(net::AtomicOp op, Addr a, std::uint64_t v1,
                                       std::uint64_t v2, LoadCallback done) {
  assert(mem::is_shared(a));
  CCSIM_CHECK(!atomic_.active,
              "node=%u addr=%#llx cycle=%llu: second atomic issued while one "
              "is in flight",
              static_cast<unsigned>(id_), static_cast<unsigned long long>(a),
              static_cast<unsigned long long>(ctx_.q.now()));
  ++ctx_.counters.mem.atomics;
  // Atomic instructions force a write-buffer flush (paper, section 3.1).
  cpu_fence([this, op, a, v1, v2, done = std::move(done)]() mutable {
    ctx_.updates.on_reference(id_, a);
    const mem::BlockAddr b = mem::block_of(a);
    if (mem::CacheLine* line = cache_.find(b);
        line && line->state == mem::LineState::PrivateDirty) {
      // Give the dirty copy back first so the home operates on fresh data.
      // FIFO delivery guarantees the Writeback precedes the AtomicReq.
      Message wb;
      wb.type = MsgType::Writeback;
      wb.dst = ctx_.alloc.home_of(b);
      wb.addr = mem::block_base(b);
      wb.flag = true;  // demote: we keep a ValidU copy
      wb.has_block = true;
      wb.block = line->data;
      note_writeback_sent(b);
      send(wb);
      line->state = mem::LineState::ValidU;
    }
    atomic_ = PendingAtomic{op, a, v1, v2, std::move(done), true, true};
    Message m;
    m.type = MsgType::AtomicReq;
    m.dst = ctx_.alloc.home_of(mem::block_of(a));
    m.addr = a;
    m.op = op;
    m.payload = v1;
    m.payload2 = v2;
    send(m);
  });
}

// ---------------------------------------------------------------------
// flush
// ---------------------------------------------------------------------

void UpdateCacheController::cpu_flush(Addr a, DoneCallback done) {
  const mem::BlockAddr b = mem::block_of(a);
  // The flush takes effect after program-order-earlier stores to the block
  // have been performed (a queued store would otherwise re-fetch the block
  // via write-allocate right after we dropped it).
  if (wb_.contains_block(b) || txns_.contains(b)) {
    ctx_.q.schedule(1, [this, a, done = std::move(done)]() mutable {
      cpu_flush(a, std::move(done));
    });
    return;
  }
  if (mem::CacheLine* line = cache_.find(b)) evict_line(*line, /*flushing=*/true);
  ctx_.q.schedule(kHitCycles, std::move(done));
}

// ---------------------------------------------------------------------
// incoming messages
// ---------------------------------------------------------------------

void UpdateCacheController::apply_update(const Message& msg) {
  const mem::BlockAddr b = mem::block_of(msg.addr);
  mem::CacheLine* line = cache_.find(b);

  Message ack;
  ack.type = MsgType::UpdateAck;
  ack.dst = msg.requester;
  ack.addr = msg.addr;

  if (!line) {
    // Stale update: we pruned or evicted the block while this message was
    // in flight. Still acknowledge so the writer's count settles.
    if (ctx_.sharing)
      ctx_.sharing->on_update_delivered(id_, msg.addr, msg.requester,
                                        obs::SharingTracker::Delivery::Stale);
    send(ack);
    return;
  }
  if (drop_threshold_ != 0 && ++line->cu_counter >= drop_threshold_) {
    // Competitive policy: this update trips the counter; self-invalidate
    // and ask the home to stop sending updates.
    ctx_.updates.on_drop_update(id_, msg.addr);
    if (ctx_.sharing)
      ctx_.sharing->on_update_delivered(id_, msg.addr, msg.requester,
                                        obs::SharingTracker::Delivery::Dropped);
    ctx_.misses.on_dropped(id_, b);
    line->state = mem::LineState::Invalid;
    cache_.notify(b);
    if (atomic_.active && mem::block_of(atomic_.addr) == b) atomic_.fill_ok = false;
    Message prune;
    prune.type = MsgType::Prune;
    prune.dst = ctx_.alloc.home_of(b);
    prune.addr = mem::block_base(b);
    send(prune);
    send(ack);
    return;
  }
  cache_.write(msg.addr, msg.payload2 ? msg.payload2 : mem::kWordSize, msg.payload);
  ctx_.updates.on_update_applied(id_, msg.addr);
  if (ctx_.sharing)
    ctx_.sharing->on_update_delivered(id_, msg.addr, msg.requester,
                                      obs::SharingTracker::Delivery::Applied);
  // The value is already globally ordered (the home multicast it); record
  // the word image this copy now shows, which can differ transiently from
  // the home's under sub-word write interleavings.
  if (ctx_.checker)
    ctx_.checker->on_local_write(
        id_, msg.addr,
        cache_.read(msg.addr - msg.addr % mem::kWordSize, mem::kWordSize));
  cache_.notify(b);
  send(ack);
}

void UpdateCacheController::on_message(const Message& msg) {
  const mem::BlockAddr b = mem::block_of(msg.addr);

  // MSHR conflict: a fill must not evict a line whose own transaction is
  // outstanding; stall it until that transaction completes (defensive --
  // under the update protocols a valid line cannot have a transaction,
  // but the atomic-reply fill path shares this dispatch).
  if (msg.type == MsgType::DataS || msg.type == MsgType::AtomicReply) {
    const mem::CacheLine& victim = cache_.set_for(b);
    if (victim.valid() && victim.block != b) {
      if (auto it = txns_.find(victim.block); it != txns_.end()) {
        it->second.retries.push_back([this, msg] { on_message(msg); });
        return;
      }
    }
  }
  if (ctx_.trace)
    ctx_.trace->event(
        obs::recv_event(obs::TraceCat::Cache, ctx_.q.now(), id_, msg));
  switch (msg.type) {
    case MsgType::DataS:
      fill(b, msg.block);
      break;

    case MsgType::Update:
      apply_update(msg);
      break;

    case MsgType::UpdateGrant:
      --outstanding_;
      pending_acks_ += static_cast<std::int64_t>(msg.payload);
      if (msg.flag) {
        if (mem::CacheLine* line = cache_.find(b)) {
          line->state = mem::LineState::PrivateDirty;
          if (ctx_.checker) ctx_.checker->on_writable(id_, b);
          if (ctx_.sharing) ctx_.sharing->on_writable(id_, b);
        }
      }
      check_fences();
      break;

    case MsgType::UpdateAck:
      --pending_acks_;
      check_fences();
      break;

    case MsgType::WritebackAck:
      note_writeback_acked(b);
      break;

    case MsgType::Recall: {
      mem::CacheLine* line = cache_.find(b);
      Message r;
      r.type = MsgType::RecallReply;
      r.dst = ctx_.alloc.home_of(b);
      r.addr = mem::block_base(b);
      if (line) {
        r.flag = false;
        r.has_block = true;
        r.block = line->data;
        line->state = mem::LineState::ValidU;
      } else {
        r.flag = true;  // absent: our eviction writeback is in flight
      }
      send(r);
      break;
    }

    case MsgType::AtomicReply: {
      CCSIM_CHECK(atomic_.active,
                  "node=%u block=%#llx cycle=%llu: atomic reply with no "
                  "atomic in flight",
                  static_cast<unsigned>(id_), static_cast<unsigned long long>(b),
                  static_cast<unsigned long long>(ctx_.q.now()));
      PendingAtomic pa = std::move(atomic_);
      atomic_.active = false;
      const std::uint64_t old = msg.payload;
      pending_acks_ += static_cast<std::int64_t>(msg.payload2);
      const mem::BlockAddr ab = mem::block_of(pa.addr);
      if (mem::CacheLine* line = cache_.find(ab)) {
        // Install the block image the home captured when it injected the
        // reply. FIFO delivery makes this exactly current: updates from
        // operations the home processed before the injection are included
        // in the image, and updates from later operations arrive after
        // this message and apply on top. (Recomputing old+delta locally
        // would clobber an update that overtook the reply.)
        line->data = msg.block;
        line->cu_counter = 0;
        cache_.notify(ab);
      } else if (pa.fill_ok) {
        // Atomically-accessed data is cached like everything else: the
        // reply carries the block, and the home made us a sharer. The
        // fetch counts as a miss (cold / drop / eviction by history).
        ctx_.misses.classify_miss(id_, pa.addr);
        fill(ab, msg.block);
      }
      check_fences();
      ctx_.q.schedule(kHitCycles, [done = std::move(pa.done), old] { done(old); });
      break;
    }

    default:
      CCSIM_CHECK(false,
                  "node=%u block=%#llx cycle=%llu: unexpected %s at update "
                  "cache controller",
                  static_cast<unsigned>(id_), static_cast<unsigned long long>(b),
                  static_cast<unsigned long long>(ctx_.q.now()),
                  std::string(net::to_string(msg.type)).c_str());
  }
}

} // namespace ccsim::proto
