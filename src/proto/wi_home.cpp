#include "proto/wi_controllers.hpp"

#include "obs/hot_blocks.hpp"
#include "obs/sharing.hpp"
#include "sim/check.hpp"

#include <cassert>
#include <string>

namespace ccsim::proto {

using net::Message;
using net::MsgType;
using mem::DirEntry;
using mem::DirState;

void WiHomeController::begin(const Message& req) {
  const mem::BlockAddr b = mem::block_of(req.addr);
  active_.emplace(b, Active{req, false, false, false});
  dispatch(b);
}

void WiHomeController::close(mem::BlockAddr b) {
  active_.erase(b);
  auto it = queued_.find(b);
  if (it == queued_.end() || it->second.empty()) {
    if (it != queued_.end()) queued_.erase(it);
    return;
  }
  Message next = it->second.front();
  it->second.pop_front();
  if (it->second.empty()) queued_.erase(it);
  begin(next);
}

void WiHomeController::restart(mem::BlockAddr b) {
  auto it = active_.find(b);
  CCSIM_CHECK(it != active_.end(),
              "home=%u block=%#llx cycle=%llu: restart of a transaction that "
              "is not active",
              static_cast<unsigned>(id_), static_cast<unsigned long long>(b),
              static_cast<unsigned long long>(ctx_.q.now()));
  it->second.awaiting_remote = false;
  it->second.wb_processed = false;
  it->second.waiting_wb = false;
  dispatch(b);
}

void WiHomeController::serve_gets(mem::BlockAddr b, const Message& req) {
  DirEntry& e = dir_.entry(b);
  if (e.state == DirState::Exclusive && e.owner == req.src) {
    // The requester evicted its dirty copy and re-missed before the
    // writeback reached us; absorb the writeback first.
    active_[b].waiting_wb = true;
    return;
  }
  if (e.state == DirState::Exclusive) {
    // Dirty at a remote cache: DASH-style forward; the transaction stays
    // open until the owner's SharedWB (or FwdNack) comes back.
    active_[b].awaiting_remote = true;
    Message f;
    f.type = MsgType::FwdGetS;
    f.dst = e.owner;
    f.addr = req.addr;
    f.requester = req.src;
    send_from(f);
    return;
  }
  const Cycle ready = memory_.book(ctx_.q.now(), mem::MemoryModule::AccessKind::BlockRead);
  Message d;
  d.type = MsgType::DataS;
  d.dst = req.src;
  d.addr = req.addr;
  d.has_block = true;
  d.block = memory_.read_block(b);
  e.state = DirState::Shared;
  e.add_sharer(req.src);
  ctx_.q.schedule_at(ready, [this, d, b]() mutable {
    // Read memory at send time: a write absorbed between dispatch and the
    // bank completing must be reflected in the data (the requester is
    // already in the sharer set, so later updates/invals assume it is).
    d.block = memory_.read_block(b);
    send_from(d);
  });
  close(b);
}

void WiHomeController::serve_getx(mem::BlockAddr b, const Message& req) {
  DirEntry& e = dir_.entry(b);
  if (e.state == DirState::Exclusive && e.owner == req.src) {
    // Writeback from the requester itself is still in flight (see
    // serve_gets); replay this request after absorbing it.
    active_[b].waiting_wb = true;
    return;
  }
  if (e.state == DirState::Exclusive) {
    active_[b].awaiting_remote = true;
    Message f;
    f.type = MsgType::FwdGetX;
    f.dst = e.owner;
    f.addr = req.addr;
    f.requester = req.src;
    send_from(f);
    return;
  }

  // Invalidate every other sharer; acks flow directly to the requester.
  unsigned acks = 0;
  if (e.state == DirState::Shared) {
    for (NodeId s = 0; s < ctx_.nprocs; ++s) {
      if (s == req.src || !e.has_sharer(s)) continue;
      Message inv;
      inv.type = MsgType::Inval;
      inv.dst = s;
      inv.addr = req.addr;  // carries the triggering word for classification
      inv.requester = req.src;
      send_from(inv);
      if (ctx_.sharing) ctx_.sharing->on_inval_sent(s, req.addr, req.src);
      ++acks;
    }
  }
  const Cycle ready = memory_.book(ctx_.q.now(), mem::MemoryModule::AccessKind::BlockRead);
  Message d;
  d.type = MsgType::DataX;
  d.dst = req.src;
  d.addr = req.addr;
  d.payload = acks;
  d.has_block = true;
  d.block = memory_.read_block(b);
  e.state = DirState::Exclusive;
  e.sharers = 0;
  e.owner = req.src;
  ctx_.q.schedule_at(ready, [this, d, b]() mutable {
    // Read memory at send time: a write absorbed between dispatch and the
    // bank completing must be reflected in the data (the requester is
    // already in the sharer set, so later updates/invals assume it is).
    d.block = memory_.read_block(b);
    send_from(d);
  });
  // The transaction closes on the requester's ExclDone: a later request
  // must never be forwarded to an owner that has not received its data.
}

void WiHomeController::dispatch(mem::BlockAddr b) {
  const Message req = active_.at(b).req;
  DirEntry& e = dir_.entry(b);
  switch (req.type) {
    case MsgType::GetS:
      serve_gets(b, req);
      break;
    case MsgType::GetX:
      serve_getx(b, req);
      break;
    case MsgType::Upgrade:
      if (e.state == DirState::Shared && e.has_sharer(req.src)) {
        unsigned acks = 0;
        for (NodeId s = 0; s < ctx_.nprocs; ++s) {
          if (s == req.src || !e.has_sharer(s)) continue;
          Message inv;
          inv.type = MsgType::Inval;
          inv.dst = s;
          inv.addr = req.addr;
          inv.requester = req.src;
          send_from(inv);
          if (ctx_.sharing) ctx_.sharing->on_inval_sent(s, req.addr, req.src);
          ++acks;
        }
        const Cycle ready =
            memory_.book(ctx_.q.now(), mem::MemoryModule::AccessKind::DirOnly);
        Message g;
        g.type = MsgType::UpgAck;
        g.dst = req.src;
        g.addr = req.addr;
        g.payload = acks;
        e.state = DirState::Exclusive;
        e.sharers = 0;
        e.owner = req.src;
        ctx_.q.schedule_at(ready, [this, g] { send_from(g); });
        // Closed by the requester's ExclDone (see serve_getx).
      } else {
        // The requester's copy was invalidated while the Upgrade was in
        // flight: serve data as if this were a GetX.
        serve_getx(b, req);
      }
      break;
    default:
      CCSIM_CHECK(false,
                  "home=%u block=%#llx cycle=%llu: unexpected active request "
                  "type %s",
                  static_cast<unsigned>(id_), static_cast<unsigned long long>(b),
                  static_cast<unsigned long long>(ctx_.q.now()),
                  std::string(net::to_string(req.type)).c_str());
  }
}

void WiHomeController::on_message(const Message& msg) {
  const mem::BlockAddr b = mem::block_of(msg.addr);
  if (ctx_.trace)
    ctx_.trace->event(
        obs::recv_event(obs::TraceCat::Home, ctx_.q.now(), id_, msg));
  switch (msg.type) {
    case MsgType::GetS:
    case MsgType::GetX:
    case MsgType::Upgrade:
      if (ctx_.hot) ctx_.hot->on_home_txn(b);
      if (active_.contains(b))
        queued_[b].push_back(msg);
      else
        begin(msg);
      break;

    case MsgType::SharedWB: {
      memory_.book(ctx_.q.now(), mem::MemoryModule::AccessKind::BlockWrite);
      memory_.write_block(b, msg.block);
      DirEntry& e = dir_.entry(b);
      e.state = DirState::Shared;
      e.sharers = 0;
      e.owner = kInvalidNode;
      e.add_sharer(msg.src);        // demoted owner keeps a shared copy
      e.add_sharer(msg.requester);  // the read requester got data directly
      close(b);
      break;
    }

    case MsgType::ExclDone: {
      memory_.book(ctx_.q.now(), mem::MemoryModule::AccessKind::DirOnly);
      DirEntry& e = dir_.entry(b);
      e.state = DirState::Exclusive;
      e.sharers = 0;
      e.owner = msg.src;
      close(b);
      break;
    }

    case MsgType::FwdNack: {
      // The owner no longer holds the block; its writeback is (or was)
      // in flight. Replay once the writeback has been absorbed.
      auto it = active_.find(b);
      CCSIM_CHECK(it != active_.end(),
                  "home=%u block=%#llx cycle=%llu: FwdNack with no active "
                  "transaction",
                  static_cast<unsigned>(id_), static_cast<unsigned long long>(b),
                  static_cast<unsigned long long>(ctx_.q.now()));
      if (it->second.wb_processed)
        restart(b);
      else
        it->second.waiting_wb = true;
      break;
    }

    case MsgType::Writeback: {
      memory_.book(ctx_.q.now(), mem::MemoryModule::AccessKind::BlockWrite);
      memory_.write_block(b, msg.block);
      DirEntry& e = dir_.entry(b);
      if ((e.state == DirState::Exclusive || e.state == DirState::Private) &&
          e.owner == msg.src) {
        e.state = DirState::Unowned;
        e.sharers = 0;
        e.owner = kInvalidNode;
      }
      {
        Message ack;
        ack.type = MsgType::WritebackAck;
        ack.dst = msg.src;
        ack.addr = mem::block_base(b);
        send_from(ack);
      }
      if (auto it = active_.find(b); it != active_.end()) {
        it->second.wb_processed = true;
        if (it->second.waiting_wb) restart(b);
      }
      break;
    }

    case MsgType::ReplHint: {
      memory_.book(ctx_.q.now(), mem::MemoryModule::AccessKind::DirOnly);
      DirEntry& e = dir_.entry(b);
      e.remove_sharer(msg.src);
      if (e.state == DirState::Shared && e.sharers == 0) e.state = DirState::Unowned;
      break;
    }

    default:
      CCSIM_CHECK(false,
                  "home=%u block=%#llx cycle=%llu: unexpected %s at WI home "
                  "controller",
                  static_cast<unsigned>(id_), static_cast<unsigned long long>(b),
                  static_cast<unsigned long long>(ctx_.q.now()),
                  std::string(net::to_string(msg.type)).c_str());
  }
}

} // namespace ccsim::proto
