// One node of the simulated multiprocessor: cache controller + home
// controller behind a single network sink.
#pragma once

#include "obs/host_perf.hpp"
#include "proto/protocol.hpp"

#include <memory>

namespace ccsim::proto {

class Node final : public net::MessageSink {
public:
  Node(Protocol p, NodeId id, ProtocolContext& ctx, std::size_t cache_bytes,
       std::size_t wb_entries, mem::MemTimings timings)
      : cache_ctrl_(make_cache_controller(p, id, ctx, cache_bytes, wb_entries)),
        home_ctrl_(make_home_controller(p, id, ctx, timings)),
        host_(ctx.host) {}

  void deliver(const net::Message& msg) override {
    // Host telemetry: everything below is protocol-handler work.
    obs::ScopedHostCat t(host_, obs::HostCat::Protocol);
    if (is_home_bound(msg.type))
      home_ctrl_->on_message(msg);
    else
      cache_ctrl_->on_message(msg);
  }

  [[nodiscard]] CacheController& cache_ctrl() noexcept { return *cache_ctrl_; }
  [[nodiscard]] HomeController& home_ctrl() noexcept { return *home_ctrl_; }

private:
  std::unique_ptr<CacheController> cache_ctrl_;
  std::unique_ptr<HomeController> home_ctrl_;
  obs::HostPerfCollector* host_;  ///< null unless host metrics are on
};

} // namespace ccsim::proto
