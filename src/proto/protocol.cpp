#include "proto/protocol.hpp"

#include "proto/cache_base.hpp"
#include "proto/update_controllers.hpp"
#include "proto/hybrid.hpp"
#include "proto/wi_controllers.hpp"

namespace ccsim::proto {

bool is_home_bound(net::MsgType t) noexcept {
  using net::MsgType;
  switch (t) {
    case MsgType::GetS:
    case MsgType::GetX:
    case MsgType::Upgrade:
    case MsgType::SharedWB:
    case MsgType::ExclDone:
    case MsgType::TransferAck:
    case MsgType::FwdNack:
    case MsgType::Writeback:
    case MsgType::ReplHint:
    case MsgType::UpdateReq:
    case MsgType::Prune:
    case MsgType::RecallReply:
    case MsgType::AtomicReq:
      return true;
    default:
      return false;
  }
}

std::unique_ptr<CacheController> make_cache_controller(Protocol p, NodeId id,
                                                       ProtocolContext& ctx,
                                                       std::size_t cache_bytes,
                                                       std::size_t wb_entries) {
  switch (p) {
    case Protocol::WI:
      return std::make_unique<WiCacheController>(id, ctx, cache_bytes, wb_entries);
    case Protocol::PU:
      return std::make_unique<UpdateCacheController>(id, ctx, cache_bytes, wb_entries,
                                                     /*drop_threshold=*/0);
    case Protocol::CU:
      return std::make_unique<UpdateCacheController>(id, ctx, cache_bytes, wb_entries,
                                                     ctx.cu_threshold);
    case Protocol::Hybrid:
      return std::make_unique<HybridCacheController>(id, ctx, cache_bytes, wb_entries);
  }
  return nullptr;
}

std::unique_ptr<HomeController> make_home_controller(Protocol p, NodeId id,
                                                     ProtocolContext& ctx,
                                                     mem::MemTimings timings) {
  switch (p) {
    case Protocol::WI:
      return std::make_unique<WiHomeController>(id, ctx, timings);
    case Protocol::PU:
      return std::make_unique<UpdateHomeController>(id, ctx, timings,
                                                    /*enable_private=*/true);
    case Protocol::CU:
      return std::make_unique<UpdateHomeController>(id, ctx, timings,
                                                    /*enable_private=*/false);
    case Protocol::Hybrid:
      return std::make_unique<HybridHomeController>(id, ctx, timings);
  }
  return nullptr;
}

// ---------------------------------------------------------------------
// BaseCacheController
// ---------------------------------------------------------------------

void BaseCacheController::cpu_load(Addr a, std::size_t size, LoadCallback done) {
  assert(mem::within_word(a, size));
  if (!mem::is_shared(a)) {
    const std::uint64_t v = read_private(a);
    ctx_.q.schedule(kHitCycles, [done = std::move(done), v] { done(v); });
    return;
  }
  ++ctx_.counters.mem.shared_reads;
  ctx_.updates.on_reference(id_, a);

  // Reads bypass queued writes; an exactly-matching queued store forwards.
  if (auto fwd = wb_.forward(a, size)) {
    ctx_.q.schedule(kHitCycles, [done = std::move(done), v = *fwd] { done(v); });
    return;
  }
  if (wb_.partially_overlaps(a, size)) {
    // Rare: wait a cycle for the buffer to drain past the overlap.
    ctx_.q.schedule(1, [this, a, size, done = std::move(done)]() mutable {
      --ctx_.counters.mem.shared_reads;  // will be recounted on retry
      cpu_load(a, size, std::move(done));
    });
    return;
  }

  const mem::BlockAddr b = mem::block_of(a);
  if (mem::CacheLine* line = cache_.find(b)) {
    ++ctx_.counters.mem.read_hits;
    on_cache_hit(*line, a);
    // Read at completion time, not issue time: an update applied during
    // the hit latency must be observed (its change notification has
    // already fired, so a spinner would otherwise sleep on a stale value).
    ctx_.q.schedule(kHitCycles, [this, a, size, done = std::move(done)]() mutable {
      if (cache_.find(mem::block_of(a))) {
        if (ctx_.checker)
          ctx_.checker->on_read(id_, a,
                                cache_.read(a - a % mem::kWordSize, mem::kWordSize));
        if (ctx_.sharing) ctx_.sharing->on_read(id_, a);
        done(cache_.read(a, size));
      } else {
        // The line vanished during the hit latency (invalidation/drop):
        // retry as a fresh access.
        --ctx_.counters.mem.shared_reads;
        cpu_load(a, size, std::move(done));
      }
    });
    return;
  }
  handle_load_miss(a, size, std::move(done));
}

void BaseCacheController::cpu_store(Addr a, std::size_t size, std::uint64_t v,
                                    DoneCallback done) {
  assert(mem::within_word(a, size));
  if (!mem::is_shared(a)) {
    private_mem_[a] = v;
    ctx_.q.schedule(kHitCycles, std::move(done));
    return;
  }
  ++ctx_.counters.mem.shared_writes;
  ctx_.updates.on_reference(id_, a);

  // Under sequential consistency the store completes (from the
  // processor's view) only once globally performed: chain a full fence
  // behind the buffer-accept.
  if (ctx_.consistency == Consistency::Sequential) {
    done = [this, done = std::move(done)]() mutable { cpu_fence(std::move(done)); };
  }

  const mem::WriteBufferEntry e{a, size, v};
  if (!wb_.full()) {
    wb_.push(e);
    ctx_.q.schedule(kHitCycles, std::move(done));
    kick_drain();
    return;
  }
  store_stalls_.push_back({e, std::move(done), ctx_.q.now()});
}

void BaseCacheController::cpu_fence(DoneCallback done) {
  if (fence_clear()) {
    ctx_.q.schedule(0, std::move(done));
    return;
  }
  const Cycle entered = ctx_.q.now();
  fence_waiters_.push_back([this, entered, done = std::move(done)]() mutable {
    ctx_.counters.mem.fence_stall_cycles += ctx_.q.now() - entered;
    done();
  });
}

void BaseCacheController::entry_done() {
  wb_.pop();
  if (!store_stalls_.empty()) {
    StalledStore s = std::move(store_stalls_.front());
    store_stalls_.erase(store_stalls_.begin());
    ctx_.counters.mem.write_buffer_stalls += ctx_.q.now() - s.since;
    wb_.push(s.entry);
    ctx_.q.schedule(kHitCycles, std::move(s.done));
  }
  check_fences();
  if (!wb_.empty())
    ctx_.q.schedule(1, [this] { drain_head(); });
  else
    draining_ = false;
}

void BaseCacheController::kick_drain() {
  if (draining_ || wb_.empty()) return;
  draining_ = true;
  ctx_.q.schedule(1, [this] { drain_head(); });
}

void BaseCacheController::check_fences() {
  if (!fence_clear() || fence_waiters_.empty()) return;
  std::vector<DoneCallback> ws = std::move(fence_waiters_);
  fence_waiters_.clear();
  for (auto& w : ws) w();
}

} // namespace ccsim::proto
