#include "proto/update_controllers.hpp"

#include "obs/hot_blocks.hpp"
#include "obs/invariants.hpp"
#include "obs/sharing.hpp"
#include "sim/check.hpp"

#include <cassert>
#include <string>

namespace ccsim::proto {

using net::Message;
using net::MsgType;
using mem::DirEntry;
using mem::DirState;

void UpdateHomeController::on_message(const Message& msg) {
  const mem::BlockAddr b = mem::block_of(msg.addr);
  if (ctx_.trace)
    ctx_.trace->event(
        obs::recv_event(obs::TraceCat::Home, ctx_.q.now(), id_, msg));
  switch (msg.type) {
    case MsgType::GetS:
    case MsgType::UpdateReq:
    case MsgType::AtomicReq:
      if (ctx_.hot) ctx_.hot->on_home_txn(b);
      if (pending_.contains(b)) {
        pending_[b].queued.push_back(msg);
        return;
      }
      process(msg);
      return;

    case MsgType::Prune:
    case MsgType::ReplHint: {
      memory_.book(ctx_.q.now(), mem::MemoryModule::AccessKind::DirOnly);
      DirEntry& e = dir_.entry(b);
      e.remove_sharer(msg.src);
      if (e.state == DirState::Private && e.owner == msg.src) {
        // The owner dropped a still-clean copy before learning it had been
        // granted private mode (the grant and the hint crossed). Memory is
        // current, so dissolve private mode and release anything parked.
        e.state = e.sharers == 0 ? DirState::Unowned : DirState::Update;
        e.owner = kInvalidNode;
        if (pending_.contains(b)) replay(b);
      } else if (e.state == DirState::Update && e.sharers == 0) {
        e.state = DirState::Unowned;
      }
      return;
    }

    case MsgType::Writeback: {
      memory_.book(ctx_.q.now(), mem::MemoryModule::AccessKind::BlockWrite);
      memory_.write_block(b, msg.block);
      DirEntry& e = dir_.entry(b);
      if (msg.flag) {
        // Demotion: the writer keeps a ValidU copy.
        e.state = DirState::Update;
        e.owner = kInvalidNode;
        e.add_sharer(msg.src);
      } else {
        // Eviction of a private-dirty copy.
        e.remove_sharer(msg.src);
        e.owner = kInvalidNode;
        e.state = e.sharers == 0 ? DirState::Unowned : DirState::Update;
      }
      {
        Message ack;
        ack.type = MsgType::WritebackAck;
        ack.dst = msg.src;
        ack.addr = mem::block_base(b);
        send_from(ack);
      }
      if (auto it = pending_.find(b); it != pending_.end() && it->second.waiting_wb)
        replay(b);
      return;
    }

    case MsgType::RecallReply: {
      auto it = pending_.find(b);
      CCSIM_CHECK(it != pending_.end(),
                  "home=%u block=%#llx cycle=%llu: RecallReply without a "
                  "recall in flight",
                  static_cast<unsigned>(id_), static_cast<unsigned long long>(b),
                  static_cast<unsigned long long>(ctx_.q.now()));
      if (msg.flag) {
        // Owner evicted; wait for its Writeback (unless it already landed).
        DirEntry& e = dir_.entry(b);
        if (e.state != DirState::Private) {
          replay(b);
        } else {
          it->second.waiting_wb = true;
        }
        return;
      }
      memory_.book(ctx_.q.now(), mem::MemoryModule::AccessKind::BlockWrite);
      memory_.write_block(b, msg.block);
      DirEntry& e = dir_.entry(b);
      e.state = DirState::Update;
      e.owner = kInvalidNode;
      e.add_sharer(msg.src);  // the demoted owner keeps its copy
      replay(b);
      return;
    }

    default:
      CCSIM_CHECK(false,
                  "home=%u block=%#llx cycle=%llu: unexpected %s at update "
                  "home controller",
                  static_cast<unsigned>(id_), static_cast<unsigned long long>(b),
                  static_cast<unsigned long long>(ctx_.q.now()),
                  std::string(net::to_string(msg.type)).c_str());
  }
}

void UpdateHomeController::process(const Message& msg) {
  switch (msg.type) {
    case MsgType::GetS: serve_gets(msg); break;
    case MsgType::UpdateReq: serve_update(msg); break;
    case MsgType::AtomicReq: serve_atomic(msg); break;
    default:
      CCSIM_CHECK(false, "home=%u cycle=%llu: %s is not a queueable request",
                  static_cast<unsigned>(id_),
                  static_cast<unsigned long long>(ctx_.q.now()),
                  std::string(net::to_string(msg.type)).c_str());
  }
}

void UpdateHomeController::start_recall(mem::BlockAddr b, const Message& first) {
  DirEntry& e = dir_.entry(b);
  CCSIM_CHECK(e.state == DirState::Private,
              "home=%u block=%#llx cycle=%llu: recall of a block not in "
              "Private mode",
              static_cast<unsigned>(id_), static_cast<unsigned long long>(b),
              static_cast<unsigned long long>(ctx_.q.now()));
  Pending& p = pending_[b];
  p.queued.push_back(first);
  Message r;
  r.type = MsgType::Recall;
  r.dst = e.owner;
  r.addr = mem::block_base(b);
  send_from(r);
}

void UpdateHomeController::replay(mem::BlockAddr b) {
  auto it = pending_.find(b);
  if (it == pending_.end()) return;
  std::deque<Message> queued = std::move(it->second.queued);
  pending_.erase(it);
  while (!queued.empty()) {
    Message m = queued.front();
    queued.pop_front();
    if (pending_.contains(b)) {
      // Processing re-entered a recall; push the remainder behind it.
      auto& q = pending_[b].queued;
      q.insert(q.end(), queued.begin(), queued.end());
      return;
    }
    process(m);
  }
}

void UpdateHomeController::serve_gets(const Message& msg) {
  const mem::BlockAddr b = mem::block_of(msg.addr);
  DirEntry& e = dir_.entry(b);
  if (e.state == DirState::Private) {
    if (e.owner == msg.src) {
      // Owner evicted its private copy and re-missed before the writeback
      // arrived; park the request until the writeback lands.
      Pending& p = pending_[b];
      p.queued.push_back(msg);
      p.waiting_wb = true;
    } else {
      start_recall(b, msg);
    }
    return;
  }
  const Cycle ready = memory_.book(ctx_.q.now(), mem::MemoryModule::AccessKind::BlockRead);
  Message d;
  d.type = MsgType::DataS;
  d.dst = msg.src;
  d.addr = msg.addr;
  d.has_block = true;
  d.block = memory_.read_block(b);
  e.state = DirState::Update;
  e.add_sharer(msg.src);
  ctx_.q.schedule_at(ready, [this, d, b]() mutable {
    // Read memory at send time: a write absorbed between dispatch and the
    // bank completing must be reflected in the data (the requester is
    // already in the sharer set, so later updates/invals assume it is).
    d.block = memory_.read_block(b);
    send_from(d);
  });
}

void UpdateHomeController::multicast_update(mem::BlockAddr b, Addr word_addr,
                                            std::uint64_t value, std::size_t size,
                                            NodeId writer, unsigned& count) {
  DirEntry& e = dir_.entry(b);
  count = 0;
  for (NodeId s = 0; s < ctx_.nprocs; ++s) {
    if (s == writer || !e.has_sharer(s)) continue;
    Message u;
    u.type = MsgType::Update;
    u.dst = s;
    u.addr = word_addr;
    u.payload = value;
    u.payload2 = size;
    u.requester = writer;
    send_from(u);
    ++count;
  }
}

void UpdateHomeController::serve_update(const Message& msg) {
  const mem::BlockAddr b = mem::block_of(msg.addr);
  DirEntry& e = dir_.entry(b);

  if (e.state == DirState::Private) {
    if (e.owner == msg.src) {
      // Writer raced its own private grant: keep it private.
      memory_.book(ctx_.q.now(), mem::MemoryModule::AccessKind::WordWrite);
      memory_.write_word(msg.addr, msg.payload2, msg.payload);
      ctx_.misses.on_store(msg.src, msg.addr);
      if (ctx_.checker)
        ctx_.checker->on_global_write(
            msg.src, msg.addr,
            memory_.read_word(msg.addr - msg.addr % mem::kWordSize,
                              mem::kWordSize));
      if (ctx_.sharing) ctx_.sharing->on_global_write(msg.src, msg.addr);
      Message g;
      g.type = MsgType::UpdateGrant;
      g.dst = msg.src;
      g.addr = msg.addr;
      g.payload = 0;
      g.flag = true;
      send_from(g);
    } else {
      start_recall(b, msg);
    }
    return;
  }

  memory_.book(ctx_.q.now(), mem::MemoryModule::AccessKind::WordWrite);
  memory_.write_word(msg.addr, msg.payload2, msg.payload);
  ctx_.misses.on_store(msg.src, msg.addr);
  // The home orders update-protocol writes: this is the global-order point.
  if (ctx_.checker)
    ctx_.checker->on_global_write(
        msg.src, msg.addr,
        memory_.read_word(msg.addr - msg.addr % mem::kWordSize, mem::kWordSize));
  if (ctx_.sharing) ctx_.sharing->on_global_write(msg.src, msg.addr);

  if (enable_private_ && e.state == DirState::Update && e.only_sharer_is(msg.src)) {
    // Only the writer caches this block: tell it to retain future updates
    // (PU's private-block optimization, paper section 3.1).
    e.state = DirState::Private;
    e.owner = msg.src;
    Message g;
    g.type = MsgType::UpdateGrant;
    g.dst = msg.src;
    g.addr = msg.addr;
    g.payload = 0;
    g.flag = true;
    send_from(g);
    return;
  }

  unsigned count = 0;
  multicast_update(b, msg.addr, msg.payload, msg.payload2, msg.src, count);
  Message g;
  g.type = MsgType::UpdateGrant;
  g.dst = msg.src;
  g.addr = msg.addr;
  g.payload = count;
  g.flag = false;
  send_from(g);
}

void UpdateHomeController::serve_atomic(const Message& msg) {
  const mem::BlockAddr b = mem::block_of(msg.addr);
  DirEntry& e = dir_.entry(b);
  if (e.state == DirState::Private) {
    if (e.owner == msg.src) {
      // The requester demotes before issuing an atomic, and FIFO delivery
      // puts its Writeback ahead of the AtomicReq -- but the grant that
      // made it private may still have been in flight when it fenced.
      // Park until the state settles via the writeback.
      Pending& p = pending_[b];
      p.queued.push_back(msg);
      p.waiting_wb = true;
    } else {
      start_recall(b, msg);
    }
    return;
  }

  const Cycle ready = memory_.book(ctx_.q.now(), mem::MemoryModule::AccessKind::WordRead);
  const std::uint64_t old = memory_.read_word(msg.addr, mem::kWordSize);
  std::uint64_t next = old;
  bool wrote = true;
  switch (msg.op) {
    case net::AtomicOp::FetchAdd: next = old + msg.payload; break;
    case net::AtomicOp::FetchStore: next = msg.payload; break;
    case net::AtomicOp::CompareSwap:
      if (old == msg.payload)
        next = msg.payload2;
      else
        wrote = false;
      break;
  }
  if (ctx_.checker) ctx_.checker->on_read(msg.src, msg.addr, old);
  if (ctx_.sharing) ctx_.sharing->on_read(msg.src, msg.addr);
  if (wrote) {
    memory_.write_word(msg.addr, mem::kWordSize, next);
    ctx_.misses.on_store(msg.src, msg.addr);
    if (ctx_.checker) ctx_.checker->on_global_write(msg.src, msg.addr, next);
    if (ctx_.sharing) ctx_.sharing->on_global_write(msg.src, msg.addr);
  }

  // Atomically-accessed data follows the same coherence protocol as all
  // other shared data (section 3.1): the requester caches the block, so it
  // joins the sharing set and the reply carries the block image. This is
  // what makes every MCS acquire/release multicast the tail pointer to all
  // past lockers under PU -- the paper's "sharing the global pointer to
  // the end of the list".
  e.add_sharer(msg.src);
  if (e.state == DirState::Unowned) e.state = DirState::Update;

  unsigned count = 0;
  if (wrote) multicast_update(b, msg.addr, next, mem::kWordSize, msg.src, count);

  Message r;
  r.type = MsgType::AtomicReply;
  r.dst = msg.src;
  r.addr = msg.addr;
  r.payload = old;
  r.payload2 = count;
  r.has_block = true;
  ctx_.q.schedule_at(ready, [this, r, b]() mutable {
    r.block = memory_.read_block(b);  // read at send time (see serve_gets)
    send_from(r);
  });
}

} // namespace ccsim::proto
