#include "proto/wi_controllers.hpp"

#include "obs/invariants.hpp"
#include "obs/sharing.hpp"
#include "sim/check.hpp"

#include <cassert>
#include <string>

namespace ccsim::proto {

using net::Message;
using net::MsgType;

// ---------------------------------------------------------------------
// loads
// ---------------------------------------------------------------------

void WiCacheController::handle_load_miss(Addr a, std::size_t size, LoadCallback done) {
  const mem::BlockAddr b = mem::block_of(a);
  if (auto it = txns_.find(b); it != txns_.end()) {
    // An outstanding fetch will satisfy this load; it is not a new miss.
    it->second.loads.push_back({a, size, std::move(done)});
    return;
  }
  ctx_.misses.classify_miss(id_, a);
  Txn& t = txns_[b];
  t.want_exclusive = false;
  t.loads.push_back({a, size, std::move(done)});

  Message m;
  m.type = MsgType::GetS;
  m.dst = ctx_.alloc.home_of(b);
  m.addr = a;
  send(m);
}

// ---------------------------------------------------------------------
// stores (write-buffer drain)
// ---------------------------------------------------------------------

void WiCacheController::perform_store(const mem::WriteBufferEntry& e) {
  cache_.write(e.addr, e.size, e.value);
  ctx_.misses.on_store(id_, e.addr);
  // A store into a Modified line is globally ordered the moment it lands.
  if (ctx_.checker)
    ctx_.checker->on_global_write(
        id_, e.addr,
        cache_.read(e.addr - e.addr % mem::kWordSize, mem::kWordSize));
  if (ctx_.sharing) ctx_.sharing->on_global_write(id_, e.addr);
}

void WiCacheController::drain_head() {
  const mem::WriteBufferEntry e = wb_.front();
  if (!mem::is_shared(e.addr)) {
    private_mem_[e.addr] = e.value;
    entry_done();
    return;
  }
  const mem::BlockAddr b = mem::block_of(e.addr);
  mem::CacheLine* line = cache_.find(b);

  if (line && line->state == mem::LineState::Modified) {
    ++ctx_.counters.mem.write_hits;
    perform_store(e);
    entry_done();
    return;
  }
  if (auto it = txns_.find(b); it != txns_.end()) {
    it->second.retries.push_back([this] { drain_head(); });
    return;
  }
  Txn& t = txns_[b];
  t.want_exclusive = true;
  t.retries.push_back([this] { drain_head(); });
  ++outstanding_;

  Message m;
  m.addr = e.addr;
  m.dst = ctx_.alloc.home_of(b);
  if (line && line->state == mem::LineState::Shared) {
    ctx_.misses.on_exclusive_request(id_);
    t.upgrade = true;
    m.type = MsgType::Upgrade;
  } else {
    ctx_.misses.classify_miss(id_, e.addr);
    m.type = MsgType::GetX;
  }
  send(m);
}

// ---------------------------------------------------------------------
// atomics (executed in the cache controller under WI)
// ---------------------------------------------------------------------

namespace {
std::uint64_t apply_atomic(net::AtomicOp op, std::uint64_t old, std::uint64_t v1,
                           std::uint64_t v2, bool& wrote) {
  wrote = true;
  switch (op) {
    case net::AtomicOp::FetchAdd: return old + v1;
    case net::AtomicOp::FetchStore: return v1;
    case net::AtomicOp::CompareSwap:
      if (old == v1) return v2;
      wrote = false;
      return old;
  }
  wrote = false;
  return old;
}
} // namespace

void WiCacheController::do_atomic_local(net::AtomicOp op, Addr a, std::uint64_t v1,
                                        std::uint64_t v2, LoadCallback done) {
  const std::uint64_t old = cache_.read(a, mem::kWordSize);
  if (ctx_.checker) ctx_.checker->on_read(id_, a, old);
  if (ctx_.sharing) ctx_.sharing->on_read(id_, a);
  bool wrote = false;
  const std::uint64_t next = apply_atomic(op, old, v1, v2, wrote);
  if (wrote) {
    cache_.write(a, mem::kWordSize, next);
    ctx_.misses.on_store(id_, a);
    if (ctx_.checker) ctx_.checker->on_global_write(id_, a, next);
    if (ctx_.sharing) ctx_.sharing->on_global_write(id_, a);
  }
  ctx_.q.schedule(kAtomicCycles, [done = std::move(done), old] { done(old); });
}

void WiCacheController::cpu_atomic(net::AtomicOp op, Addr a, std::uint64_t v1,
                                   std::uint64_t v2, LoadCallback done) {
  assert(mem::is_shared(a));
  ++ctx_.counters.mem.atomics;
  // Atomic instructions force a write-buffer flush (paper, section 3.1).
  cpu_fence([this, op, a, v1, v2, done = std::move(done)]() mutable {
    ctx_.updates.on_reference(id_, a);
    cpu_atomic_resume(op, a, v1, v2, std::move(done));
  });
}

void WiCacheController::cpu_atomic_resume(net::AtomicOp op, Addr a, std::uint64_t v1,
                                          std::uint64_t v2, LoadCallback done) {
  const mem::BlockAddr b = mem::block_of(a);
  mem::CacheLine* line = cache_.find(b);
  if (line && line->state == mem::LineState::Modified) {
    do_atomic_local(op, a, v1, v2, std::move(done));
    return;
  }
  if (auto it = txns_.find(b); it != txns_.end()) {
    it->second.retries.push_back([this, op, a, v1, v2, done = std::move(done)]() mutable {
      cpu_atomic_resume(op, a, v1, v2, std::move(done));
    });
    return;
  }
  Txn& t = txns_[b];
  t.want_exclusive = true;
  t.retries.push_back([this, op, a, v1, v2, done = std::move(done)]() mutable {
    cpu_atomic_resume(op, a, v1, v2, std::move(done));
  });
  ++outstanding_;

  Message m;
  m.addr = a;
  m.dst = ctx_.alloc.home_of(b);
  if (line && line->state == mem::LineState::Shared) {
    ctx_.misses.on_exclusive_request(id_);
    t.upgrade = true;
    m.type = MsgType::Upgrade;
  } else {
    ctx_.misses.classify_miss(id_, a);
    m.type = MsgType::GetX;
  }
  send(m);
}

// ---------------------------------------------------------------------
// flush
// ---------------------------------------------------------------------

void WiCacheController::cpu_flush(Addr a, DoneCallback done) {
  const mem::BlockAddr b = mem::block_of(a);
  // Wait for program-order-earlier stores to the block to be performed.
  if (wb_.contains_block(b) || txns_.contains(b)) {
    ctx_.q.schedule(1, [this, a, done = std::move(done)]() mutable {
      cpu_flush(a, std::move(done));
    });
    return;
  }
  if (mem::CacheLine* line = cache_.find(b)) {
    Message m;
    m.dst = ctx_.alloc.home_of(b);
    m.addr = mem::block_base(b);
    if (line->state == mem::LineState::Modified) {
      m.type = MsgType::Writeback;
      m.has_block = true;
      m.block = line->data;
      note_writeback_sent(b);
    } else {
      m.type = MsgType::ReplHint;
    }
    send(m);
    ctx_.misses.on_evicted(id_, b);
    ctx_.updates.on_block_replaced(id_, b);
    line->state = mem::LineState::Invalid;
    cache_.notify(b);
  }
  ctx_.q.schedule(kHitCycles, std::move(done));
}

// ---------------------------------------------------------------------
// fills, evictions, transaction completion
// ---------------------------------------------------------------------

void WiCacheController::evict_for(mem::BlockAddr incoming) {
  mem::CacheLine& line = cache_.set_for(incoming);
  if (!line.valid() || line.block == incoming) return;
  Message m;
  m.dst = ctx_.alloc.home_of(line.block);
  m.addr = mem::block_base(line.block);
  if (line.state == mem::LineState::Modified) {
    m.type = MsgType::Writeback;
    m.has_block = true;
    m.block = line.data;
    note_writeback_sent(line.block);
  } else {
    m.type = MsgType::ReplHint;
  }
  send(m);
  ctx_.misses.on_evicted(id_, line.block);
  ctx_.updates.on_block_replaced(id_, line.block);
  line.state = mem::LineState::Invalid;
  cache_.notify(line.block);
}

void WiCacheController::fill(mem::BlockAddr b,
                             const std::array<std::byte, mem::kBlockSize>& data,
                             mem::LineState state) {
  evict_for(b);
  mem::CacheLine& line = cache_.set_for(b);
  line.block = b;
  line.state = state;
  line.data = data;
  line.cu_counter = 0;
  ctx_.misses.on_fill(id_, b);
  cache_.notify(b);
}

void WiCacheController::invalidate_line(mem::CacheLine& l, Addr trigger) {
  ctx_.misses.on_invalidated(id_, l.block, trigger);
  l.state = mem::LineState::Invalid;
  cache_.notify(l.block);
}

void WiCacheController::complete_txn(mem::BlockAddr b) {
  auto it = txns_.find(b);
  CCSIM_CHECK(it != txns_.end(),
              "node=%u block=%#llx cycle=%llu: transaction completing that was "
              "never opened",
              static_cast<unsigned>(id_), static_cast<unsigned long long>(b),
              static_cast<unsigned long long>(ctx_.q.now()));
  Txn t = std::move(it->second);
  txns_.erase(it);

  // Waiting loads complete at +1 reading the line then (see
  // complete_load_later); if the deferred invalidation below takes the
  // line first, they retry with a fresh fetch.
  for (auto& w : t.loads) complete_load_later(w.addr, w.size, std::move(w.done));
  for (auto& r : t.retries) ctx_.q.schedule(1, std::move(r));

  if (t.inval_on_fill) {
    if (mem::CacheLine* line = cache_.find(b)) invalidate_line(*line, t.inval_trigger);
  }
}

// ---------------------------------------------------------------------
// incoming messages
// ---------------------------------------------------------------------

void WiCacheController::on_message(const Message& msg) {
  const mem::BlockAddr b = mem::block_of(msg.addr);
  if (ctx_.trace)
    ctx_.trace->event(
        obs::recv_event(obs::TraceCat::Cache, ctx_.q.now(), id_, msg));

  // A fill may not evict a line with its own transaction outstanding (the
  // Upgrade's grant would arrive for a line we no longer hold) -- the MSHR
  // conflict stalls the fill until the victim's transaction completes.
  switch (msg.type) {
    case MsgType::DataS:
    case MsgType::OwnerDataS:
    case MsgType::DataX:
    case MsgType::OwnerDataX: {
      const mem::CacheLine& victim = cache_.set_for(b);
      if (victim.valid() && victim.block != b) {
        if (auto it = txns_.find(victim.block); it != txns_.end()) {
          it->second.retries.push_back([this, msg] { on_message(msg); });
          return;
        }
      }
      break;
    }
    default:
      break;
  }

  switch (msg.type) {
    case MsgType::DataS:
    case MsgType::OwnerDataS:
      fill(b, msg.block, mem::LineState::Shared);
      complete_txn(b);
      break;

    case MsgType::DataX:
    case MsgType::OwnerDataX: {
      pending_acks_ += static_cast<std::int64_t>(msg.payload);
      --outstanding_;
      fill(b, msg.block, mem::LineState::Modified);
      if (ctx_.checker) ctx_.checker->on_writable(id_, b);
      if (ctx_.sharing) ctx_.sharing->on_writable(id_, b);
      Message fin;
      fin.type = MsgType::ExclDone;
      fin.dst = ctx_.alloc.home_of(b);
      fin.addr = mem::block_base(b);
      send(fin);
      complete_txn(b);
      check_fences();
      break;
    }

    case MsgType::UpgAck: {
      mem::CacheLine* line = cache_.find(b);
      CCSIM_CHECK(line && line->state == mem::LineState::Shared,
                  "node=%u block=%#llx cycle=%llu: upgrade grant for a line "
                  "not held Shared",
                  static_cast<unsigned>(id_), static_cast<unsigned long long>(b),
                  static_cast<unsigned long long>(ctx_.q.now()));
      line->state = mem::LineState::Modified;
      if (ctx_.checker) ctx_.checker->on_writable(id_, b);
      if (ctx_.sharing) ctx_.sharing->on_writable(id_, b);
      pending_acks_ += static_cast<std::int64_t>(msg.payload);
      --outstanding_;
      Message fin;
      fin.type = MsgType::ExclDone;
      fin.dst = ctx_.alloc.home_of(b);
      fin.addr = mem::block_base(b);
      send(fin);
      complete_txn(b);
      check_fences();
      break;
    }

    case MsgType::Inval: {
      if (mem::CacheLine* line = cache_.find(b)) {
        invalidate_line(*line, msg.addr);
      } else if (auto it = txns_.find(b); it != txns_.end()) {
        it->second.inval_on_fill = true;
        it->second.inval_trigger = msg.addr;
      }
      Message ack;
      ack.type = MsgType::InvalAck;
      ack.dst = msg.requester;
      ack.addr = msg.addr;
      send(ack);
      break;
    }

    case MsgType::InvalAck:
      --pending_acks_;
      check_fences();
      break;

    case MsgType::WritebackAck:
      note_writeback_acked(b);
      break;

    case MsgType::FwdGetS: {
      mem::CacheLine* line = cache_.find(b);
      if (!line || line->state != mem::LineState::Modified) {
        // If our own writeback of this block is still in flight, the home
        // will replay this transaction off it: nack. (Deferring here would
        // deadlock -- our refetch is queued at the home behind the very
        // transaction this forward belongs to.)
        if (writeback_in_flight(b)) {
          Message n;
          n.type = MsgType::FwdNack;
          n.dst = ctx_.alloc.home_of(b);
          n.addr = msg.addr;
          send(n);
          break;
        }
      }
      if (!line) {
        Message n;
        n.type = MsgType::FwdNack;
        n.dst = ctx_.alloc.home_of(b);
        n.addr = msg.addr;
        send(n);
        break;
      }
      Message d;
      d.type = MsgType::OwnerDataS;
      d.dst = msg.requester;
      d.addr = msg.addr;
      d.has_block = true;
      d.block = line->data;
      send(d);
      Message wb;
      wb.type = MsgType::SharedWB;
      wb.dst = ctx_.alloc.home_of(b);
      wb.addr = mem::block_base(b);
      wb.requester = msg.requester;
      wb.has_block = true;
      wb.block = line->data;
      send(wb);
      line->state = mem::LineState::Shared;
      break;
    }

    case MsgType::FwdGetX: {
      mem::CacheLine* line = cache_.find(b);
      if (!line || line->state != mem::LineState::Modified) {
        if (writeback_in_flight(b)) {  // see FwdGetS
          Message n;
          n.type = MsgType::FwdNack;
          n.dst = ctx_.alloc.home_of(b);
          n.addr = msg.addr;
          send(n);
          break;
        }
      }
      if (!line) {
        Message n;
        n.type = MsgType::FwdNack;
        n.dst = ctx_.alloc.home_of(b);
        n.addr = msg.addr;
        send(n);
        break;
      }
      Message d;
      d.type = MsgType::OwnerDataX;
      d.dst = msg.requester;
      d.addr = msg.addr;
      d.payload = 0;  // no invalidation acks follow a forwarded transfer
      d.has_block = true;
      d.block = line->data;
      send(d);
      invalidate_line(*line, msg.addr);
      break;
    }

    default:
      CCSIM_CHECK(false,
                  "node=%u block=%#llx cycle=%llu: unexpected %s at WI cache "
                  "controller",
                  static_cast<unsigned>(id_), static_cast<unsigned long long>(b),
                  static_cast<unsigned long long>(ctx_.q.now()),
                  std::string(net::to_string(msg.type)).c_str());
  }
}

} // namespace ccsim::proto
