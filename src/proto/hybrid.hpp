// Hybrid machine: per-region coherence protocols on one machine.
//
// The paper's motivation is machines with programmable protocol processors
// (FLASH, Typhoon) that can run "multiple coherence protocols within the
// same application"; its conclusion is that constructs should then pick
// both implementation AND protocol. The hybrid controllers make that
// executable: every node runs a WI engine and the two update engines side
// by side, and each shared block is served by the engine its domain tag
// selects (Machine::bind_protocol / SharedAllocator::set_domain).
//
// Blocks of different domains are disjoint state: each engine keeps its
// own cache array, write buffer, directory slice and backing store
// (a "protocol-split cache"; DESIGN.md section 5b records the capacity
// simplification). Fences synchronize across all engines, preserving
// release semantics for programs that mix domains.
#pragma once

#include "proto/protocol.hpp"

#include <array>
#include <memory>

namespace ccsim::proto {

/// Maps a block's allocator domain id to the protocol serving it.
/// Domain 0 = the machine's hybrid_default; domains 1..3 = WI/PU/CU.
[[nodiscard]] Protocol domain_protocol(std::uint8_t domain, Protocol fallback);

/// Domain id for binding a region to a protocol (see above).
[[nodiscard]] std::uint8_t domain_of_protocol(Protocol p);

class HybridCacheController final : public CacheController {
public:
  HybridCacheController(NodeId id, ProtocolContext& ctx, std::size_t cache_bytes,
                        std::size_t wb_entries);

  void cpu_load(Addr a, std::size_t size, LoadCallback done) override;
  void cpu_store(Addr a, std::size_t size, std::uint64_t v, DoneCallback done) override;
  void cpu_atomic(net::AtomicOp op, Addr a, std::uint64_t v1, std::uint64_t v2,
                  LoadCallback done) override;
  void cpu_fence(DoneCallback done) override;
  void cpu_flush(Addr a, DoneCallback done) override;
  void on_message(const net::Message& msg) override;

  [[nodiscard]] mem::DataCache& cache_for(mem::BlockAddr b) noexcept override;

  [[nodiscard]] CacheDebug debug_state() const override {
    CacheDebug d;
    for (const auto& e : engines_) {
      const CacheDebug ed = e->debug_state();
      d.wb_entries += ed.wb_entries;
      d.mshr += ed.mshr;
      d.pending_acks += ed.pending_acks;
      d.outstanding += ed.outstanding;
    }
    return d;
  }

private:
  [[nodiscard]] CacheController& engine_for(Addr a);

  std::array<std::unique_ptr<CacheController>, 3> engines_;  ///< WI, PU, CU
};

class HybridHomeController final : public HomeController {
public:
  HybridHomeController(NodeId id, ProtocolContext& ctx, mem::MemTimings timings);

  void on_message(const net::Message& msg) override;

  [[nodiscard]] mem::MemoryModule& memory_for(mem::BlockAddr b) noexcept override;
  [[nodiscard]] mem::Directory& directory_for(mem::BlockAddr b) noexcept override;

private:
  [[nodiscard]] HomeController& engine_for(Addr a);

  std::array<std::unique_ptr<HomeController>, 3> engines_;  ///< WI, PU, CU
};

} // namespace ccsim::proto
