#include "proto/node.hpp"
