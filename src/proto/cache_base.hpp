// Machinery shared by the WI and update-based cache controllers:
// private (non-coherent) memory, write-buffer acceptance and drain
// scheduling, fence bookkeeping, and the common load path.
#pragma once

#include "obs/invariants.hpp"
#include "obs/sharing.hpp"
#include "proto/protocol.hpp"

#include <cassert>
#include <unordered_map>
#include <vector>

namespace ccsim::proto {

class BaseCacheController : public CacheController {
public:
  using CacheController::CacheController;

  void cpu_load(Addr a, std::size_t size, LoadCallback done) override;
  void cpu_store(Addr a, std::size_t size, std::uint64_t v, DoneCallback done) override;
  void cpu_fence(DoneCallback done) override;

  [[nodiscard]] CacheDebug debug_state() const override {
    return {wb_.size(), mshr_count(), pending_acks_, outstanding_};
  }

protected:
  /// Outstanding block transactions, for watchdog diagnostics.
  [[nodiscard]] virtual std::size_t mshr_count() const { return 0; }

  // --- hooks the concrete protocols implement ------------------------

  /// Handle a load that missed in the cache (shared address, no forward).
  virtual void handle_load_miss(Addr a, std::size_t size, LoadCallback done) = 0;

  /// Process the write at the head of the write buffer. Must eventually
  /// call entry_done().
  virtual void drain_head() = 0;

  /// A load or store hit line `l`; protocol-specific reaction (e.g. the
  /// competitive-update counter resets on local references).
  virtual void on_cache_hit(mem::CacheLine& l, Addr a) { (void)l, (void)a; }

  // --- services for subclasses ----------------------------------------

  void send(net::Message m) {
    m.src = id_;
    ctx_.net.send(m);
  }

  /// Complete a load one hit-latency from now, reading the line at
  /// completion time. A change (update/invalidation) landing between now
  /// and then has already fired its change notification, so delivering a
  /// value captured NOW would let a spinner sleep through its wakeup.
  /// If the line is gone by then, the load retries from scratch.
  void complete_load_later(Addr a, std::size_t size, LoadCallback done) {
    ctx_.q.schedule(kHitCycles, [this, a, size, done = std::move(done)]() mutable {
      if (cache_.find(mem::block_of(a))) {
        if (ctx_.checker)
          ctx_.checker->on_read(id_, a,
                                cache_.read(a - a % mem::kWordSize, mem::kWordSize));
        if (ctx_.sharing) ctx_.sharing->on_read(id_, a);
        done(cache_.read(a, size));
      } else {
        --ctx_.counters.mem.shared_reads;  // recounted by the retry
        cpu_load(a, size, std::move(done));
      }
    });
  }

  /// The head write-buffer entry retired: pop it, admit a stalled store,
  /// and keep draining.
  void entry_done();

  /// Start the drain loop if it is not already running.
  void kick_drain();

  /// Re-evaluate pending fences; call after any counter decreases.
  void check_fences();

  [[nodiscard]] bool fence_clear() const noexcept {
    return wb_.empty() && pending_acks_ == 0 && outstanding_ == 0;
  }

  std::uint64_t read_private(Addr a) const {
    auto it = private_mem_.find(a);
    return it == private_mem_.end() ? 0 : it->second;
  }

  /// Latency of a cache hit / of accepting a store (1 cycle, section 3.1).
  static constexpr Cycle kHitCycles = 1;
  /// Extra cycles for the read-modify-write of a cache-side atomic.
  static constexpr Cycle kAtomicCycles = 2;

  /// Blocks with a Writeback of ours still unacknowledged by the home.
  /// Used to disambiguate forward races: a forward arriving for a block we
  /// just wrote back must be FwdNack'ed (the home replays off the
  /// writeback), never deferred.
  void note_writeback_sent(mem::BlockAddr b) { ++wb_pending_[b]; }
  void note_writeback_acked(mem::BlockAddr b) {
    auto it = wb_pending_.find(b);
    if (it != wb_pending_.end() && --it->second == 0) wb_pending_.erase(it);
  }
  [[nodiscard]] bool writeback_in_flight(mem::BlockAddr b) const {
    return wb_pending_.contains(b);
  }

  std::unordered_map<Addr, std::uint64_t> private_mem_;
  std::unordered_map<mem::BlockAddr, int> wb_pending_;

  /// Coherence acknowledgements still owed to this node's earlier writes.
  /// May transiently go negative when an ack overtakes the message that
  /// announces it.
  std::int64_t pending_acks_ = 0;
  /// Transactions whose ack count has not been announced yet (WI exclusive
  /// requests in flight, update grants in flight).
  int outstanding_ = 0;

private:
  struct StalledStore {
    mem::WriteBufferEntry entry;
    DoneCallback done;
    Cycle since;
  };

  bool draining_ = false;
  std::vector<DoneCallback> fence_waiters_;
  std::vector<StalledStore> store_stalls_;
};

} // namespace ccsim::proto
