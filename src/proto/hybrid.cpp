#include "proto/hybrid.hpp"

#include "sim/check.hpp"

#include <cassert>

namespace ccsim::proto {

Protocol domain_protocol(std::uint8_t domain, Protocol fallback) {
  switch (domain) {
    case 1: return Protocol::WI;
    case 2: return Protocol::PU;
    case 3: return Protocol::CU;
    default: return fallback;
  }
}

std::uint8_t domain_of_protocol(Protocol p) {
  switch (p) {
    case Protocol::WI: return 1;
    case Protocol::PU: return 2;
    case Protocol::CU: return 3;
    case Protocol::Hybrid: break;
  }
  CCSIM_CHECK(false, "cannot bind a region to the Hybrid pseudo-protocol");
  return 0;
}

namespace {
std::size_t engine_index(Protocol p) {
  switch (p) {
    case Protocol::WI: return 0;
    case Protocol::PU: return 1;
    case Protocol::CU: return 2;
    case Protocol::Hybrid: break;
  }
  CCSIM_CHECK(false, "Hybrid pseudo-protocol has no engine of its own");
  return 0;
}
} // namespace

// ---------------------------------------------------------------------
// cache side
// ---------------------------------------------------------------------

HybridCacheController::HybridCacheController(NodeId id, ProtocolContext& ctx,
                                             std::size_t cache_bytes,
                                             std::size_t wb_entries)
    : CacheController(id, ctx, /*own (unused) cache:*/ mem::kBlockSize * 2,
                      wb_entries) {
  engines_[0] = make_cache_controller(Protocol::WI, id, ctx, cache_bytes, wb_entries);
  engines_[1] = make_cache_controller(Protocol::PU, id, ctx, cache_bytes, wb_entries);
  engines_[2] = make_cache_controller(Protocol::CU, id, ctx, cache_bytes, wb_entries);
}

CacheController& HybridCacheController::engine_for(Addr a) {
  const Protocol p = domain_protocol(ctx_.alloc.domain_of(mem::block_of(a)),
                                     ctx_.hybrid_default);
  return *engines_[engine_index(p)];
}

mem::DataCache& HybridCacheController::cache_for(mem::BlockAddr b) noexcept {
  const Protocol p = domain_protocol(ctx_.alloc.domain_of(b), ctx_.hybrid_default);
  return engines_[engine_index(p)]->cache_for(b);
}

void HybridCacheController::cpu_load(Addr a, std::size_t size, LoadCallback done) {
  engine_for(a).cpu_load(a, size, std::move(done));
}

void HybridCacheController::cpu_store(Addr a, std::size_t size, std::uint64_t v,
                                      DoneCallback done) {
  engine_for(a).cpu_store(a, size, v, std::move(done));
}

void HybridCacheController::cpu_atomic(net::AtomicOp op, Addr a, std::uint64_t v1,
                                       std::uint64_t v2, LoadCallback done) {
  engine_for(a).cpu_atomic(op, a, v1, v2, std::move(done));
}

void HybridCacheController::cpu_fence(DoneCallback done) {
  // Release semantics span all domains: chain the engines' fences.
  engines_[0]->cpu_fence([this, done = std::move(done)]() mutable {
    engines_[1]->cpu_fence([this, done = std::move(done)]() mutable {
      engines_[2]->cpu_fence(std::move(done));
    });
  });
}

void HybridCacheController::cpu_flush(Addr a, DoneCallback done) {
  engine_for(a).cpu_flush(a, std::move(done));
}

void HybridCacheController::on_message(const net::Message& msg) {
  engine_for(msg.addr).on_message(msg);
}

// ---------------------------------------------------------------------
// home side
// ---------------------------------------------------------------------

HybridHomeController::HybridHomeController(NodeId id, ProtocolContext& ctx,
                                           mem::MemTimings timings)
    : HomeController(id, ctx, timings) {
  engines_[0] = make_home_controller(Protocol::WI, id, ctx, timings);
  engines_[1] = make_home_controller(Protocol::PU, id, ctx, timings);
  engines_[2] = make_home_controller(Protocol::CU, id, ctx, timings);
}

HomeController& HybridHomeController::engine_for(Addr a) {
  const Protocol p = domain_protocol(ctx_.alloc.domain_of(mem::block_of(a)),
                                     ctx_.hybrid_default);
  return *engines_[engine_index(p)];
}

mem::MemoryModule& HybridHomeController::memory_for(mem::BlockAddr b) noexcept {
  const Protocol p = domain_protocol(ctx_.alloc.domain_of(b), ctx_.hybrid_default);
  return engines_[engine_index(p)]->memory_for(b);
}

mem::Directory& HybridHomeController::directory_for(mem::BlockAddr b) noexcept {
  const Protocol p = domain_protocol(ctx_.alloc.domain_of(b), ctx_.hybrid_default);
  return engines_[engine_index(p)]->directory_for(b);
}

void HybridHomeController::on_message(const net::Message& msg) {
  engine_for(msg.addr).on_message(msg);
}

} // namespace ccsim::proto
