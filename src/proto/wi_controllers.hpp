// Write-invalidate protocol (DASH-like full-map directory, release
// consistent), paper section 3.1.
//
// Cache side: MSI states. Read misses send GetS; writes drain from the
// write buffer and send GetX (Invalid) or Upgrade (Shared); the processor
// stalls for invalidation acknowledgements only at release fences. Atomic
// instructions obtain an exclusive copy and execute in the cache controller.
//
// Home side: one transaction per block at a time (queued); dirty blocks are
// forwarded DASH-style (home -> owner -> requester, with a SharedWB /
// TransferAck closing message back to the home). Races between forwards and
// evictions resolve with FwdNack + writeback replay.
#pragma once

#include "proto/cache_base.hpp"

#include <deque>
#include <unordered_map>
#include <vector>

namespace ccsim::proto {

class WiCacheController final : public BaseCacheController {
public:
  using BaseCacheController::BaseCacheController;

  void cpu_atomic(net::AtomicOp op, Addr a, std::uint64_t v1, std::uint64_t v2,
                  LoadCallback done) override;
  void cpu_flush(Addr a, DoneCallback done) override;
  void on_message(const net::Message& msg) override;

protected:
  void handle_load_miss(Addr a, std::size_t size, LoadCallback done) override;
  void drain_head() override;
  [[nodiscard]] std::size_t mshr_count() const override { return txns_.size(); }

private:
  struct LoadWaiter {
    Addr addr;
    std::size_t size;
    LoadCallback done;
  };
  /// One outstanding block transaction (GetS / GetX / Upgrade).
  struct Txn {
    bool want_exclusive = false;
    bool upgrade = false;         ///< sent Upgrade (line was Shared)
    bool inval_on_fill = false;   ///< an Inval overtook the fill
    Addr inval_trigger = 0;
    std::vector<LoadWaiter> loads;
    std::vector<std::function<void()>> retries;  ///< drain / atomic resume
  };

  void fill(mem::BlockAddr b, const std::array<std::byte, mem::kBlockSize>& data,
            mem::LineState state);
  void complete_txn(mem::BlockAddr b);
  void invalidate_line(mem::CacheLine& l, Addr trigger);
  void evict_for(mem::BlockAddr incoming);
  void perform_store(const mem::WriteBufferEntry& e);
  void do_atomic_local(net::AtomicOp op, Addr a, std::uint64_t v1, std::uint64_t v2,
                       LoadCallback done);
  void cpu_atomic_resume(net::AtomicOp op, Addr a, std::uint64_t v1, std::uint64_t v2,
                         LoadCallback done);

  std::unordered_map<mem::BlockAddr, Txn> txns_;
};

class WiHomeController final : public HomeController {
public:
  WiHomeController(NodeId id, ProtocolContext& ctx, mem::MemTimings timings)
      : HomeController(id, ctx, timings) {}

  void on_message(const net::Message& msg) override;

private:
  struct Active {
    net::Message req;
    bool awaiting_remote = false;  ///< forwarded to the owner
    bool wb_processed = false;     ///< a Writeback arrived mid-transaction
    bool waiting_wb = false;       ///< FwdNack'ed; restart when WB arrives
  };

  void begin(const net::Message& req);
  void dispatch(mem::BlockAddr b);
  void close(mem::BlockAddr b);
  void restart(mem::BlockAddr b);
  void serve_gets(mem::BlockAddr b, const net::Message& req);
  void serve_getx(mem::BlockAddr b, const net::Message& req);
  void send_from(net::Message m) {
    m.src = id_;
    ctx_.net.send(m);
  }

  std::unordered_map<mem::BlockAddr, Active> active_;
  std::unordered_map<mem::BlockAddr, std::deque<net::Message>> queued_;
};

} // namespace ccsim::proto
