// Update-based protocols (paper section 3.1).
//
// PU (pure update): writes write through the cache to the home node; the
// home multicasts updates to the other sharers and tells the writer how
// many acknowledgements to expect; sharers ack the writer directly; the
// writer stalls for acks only at release fences. Writes ALLOCATE: a write
// miss first fetches the block, so writers keep caching what they write --
// this is what makes MCS-lock writers accumulate copies of other
// processors' qnodes and receive an update for each modification of them
// (paper section 4.1), and what the update-conscious flushes undo. PU adds the private-block
// optimization: when the home sees an update for a block cached only by
// the writer, the grant tells the writer to retain future updates locally
// (the block enters PrivateDirty and behaves like an owned dirty copy until
// the home recalls it).
//
// CU (competitive update): same machinery, no private mode; each cache
// keeps a per-block counter of updates received since the last local
// reference and self-invalidates at the threshold (4), sending the home a
// Prune so no further updates are sent.
//
// Atomic instructions execute at the home memory: the home performs the
// read-modify-write, multicasts the new value to sharers, and returns the
// old value to the requester.
#pragma once

#include "proto/cache_base.hpp"

#include <deque>
#include <unordered_map>
#include <vector>

namespace ccsim::proto {

class UpdateCacheController final : public BaseCacheController {
public:
  UpdateCacheController(NodeId id, ProtocolContext& ctx, std::size_t cache_bytes,
                        std::size_t wb_entries, unsigned drop_threshold)
      : BaseCacheController(id, ctx, cache_bytes, wb_entries),
        drop_threshold_(drop_threshold) {}

  void cpu_atomic(net::AtomicOp op, Addr a, std::uint64_t v1, std::uint64_t v2,
                  LoadCallback done) override;
  void cpu_flush(Addr a, DoneCallback done) override;
  void on_message(const net::Message& msg) override;

protected:
  void handle_load_miss(Addr a, std::size_t size, LoadCallback done) override;
  void drain_head() override;
  void on_cache_hit(mem::CacheLine& l, Addr a) override { (void)a; l.cu_counter = 0; }
  [[nodiscard]] std::size_t mshr_count() const override {
    return txns_.size() + (atomic_.active ? 1 : 0);
  }

private:
  struct LoadWaiter {
    Addr addr;
    std::size_t size;
    LoadCallback done;
  };
  struct Txn {
    std::vector<LoadWaiter> loads;
    std::vector<std::function<void()>> retries;  ///< write-allocate drains
  };
  struct PendingAtomic {
    net::AtomicOp op{};
    Addr addr = 0;
    std::uint64_t v1 = 0, v2 = 0;
    LoadCallback done;
    bool active = false;
    /// The reply may install the block -- unless our copy was dropped,
    /// evicted or flushed while the request was in flight (a Prune or
    /// ReplHint sent after the AtomicReq has already revoked the
    /// sharer-ship the reply's fill would claim).
    bool fill_ok = true;
  };

  void fill(mem::BlockAddr b, const std::array<std::byte, mem::kBlockSize>& data);
  void evict_line(mem::CacheLine& line, bool flushing);
  void apply_update(const net::Message& msg);

  unsigned drop_threshold_;  ///< 0 disables competitive drops (PU)
  std::unordered_map<mem::BlockAddr, Txn> txns_;
  PendingAtomic atomic_;
};

class UpdateHomeController final : public HomeController {
public:
  UpdateHomeController(NodeId id, ProtocolContext& ctx, mem::MemTimings timings,
                       bool enable_private)
      : HomeController(id, ctx, timings), enable_private_(enable_private) {}

  void on_message(const net::Message& msg) override;

private:
  /// A block mid-recall: requests queue here until the owner gives the
  /// block back (RecallReply or its racing Writeback).
  struct Pending {
    std::deque<net::Message> queued;
    bool waiting_wb = false;  ///< owner evicted; waiting for its Writeback
  };

  void process(const net::Message& msg);
  void serve_gets(const net::Message& msg);
  void serve_update(const net::Message& msg);
  void serve_atomic(const net::Message& msg);
  void start_recall(mem::BlockAddr b, const net::Message& first);
  void replay(mem::BlockAddr b);
  void multicast_update(mem::BlockAddr b, Addr word_addr, std::uint64_t value,
                        std::size_t size, NodeId writer, unsigned& count);
  void send_from(net::Message m) {
    m.src = id_;
    ctx_.net.send(m);
  }

  bool enable_private_;
  std::unordered_map<mem::BlockAddr, Pending> pending_;
};

} // namespace ccsim::proto
