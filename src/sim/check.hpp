// CCSIM_CHECK: release-mode protocol invariant checks with context.
//
// The protocol engines guard their state machines with invariants that must
// hold on every run, not just in Debug builds: a message type a controller
// cannot handle, a transaction completing that was never opened, an upgrade
// grant for a line that is not Shared. A bare assert() compiles away under
// NDEBUG, turning such a bug into silent corruption (or a hang) exactly in
// the Release configuration the benchmarks and sweeps run. CCSIM_CHECK stays
// on in every build and, before aborting, prints the failing condition plus
// printf-style context -- by convention the node, block and cycle involved --
// so a violated invariant in a 100-cell stress grid is diagnosable from the
// log alone.
//
//   CCSIM_CHECK(line->state == LineState::Shared,
//               "node=%u block=%#llx cycle=%llu: UpgAck without Shared line",
//               id_, (unsigned long long)b, (unsigned long long)ctx_.q.now());
//
// The condition is expected to be true on the hot path; the failure handler
// is out of line and cold.
#pragma once

namespace ccsim::sim {

/// Print the failed condition and formatted context to stderr, then abort.
[[noreturn]] void check_fail(const char* cond, const char* file, int line,
                             const char* fmt, ...)
#if defined(__GNUC__)
    __attribute__((format(printf, 4, 5)))
#endif
    ;

} // namespace ccsim::sim

#define CCSIM_CHECK(cond, ...)                                              \
  do {                                                                      \
    if (!(cond)) [[unlikely]]                                               \
      ::ccsim::sim::check_fail(#cond, __FILE__, __LINE__, __VA_ARGS__);     \
  } while (0)
