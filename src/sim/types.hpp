// Fundamental simulation-wide type aliases.
#pragma once

#include <cstdint>

namespace ccsim {

/// Simulated time, in processor cycles. The network and memory system run at
/// the same clock as the processors (paper, section 3.1).
using Cycle = std::uint64_t;

/// Identifies one node of the simulated multiprocessor (processor + cache +
/// local memory + directory slice + network interface).
using NodeId = std::uint32_t;

/// A simulated physical address. The shared segment lives at SHARED_BASE.
using Addr = std::uint64_t;

inline constexpr NodeId kInvalidNode = ~NodeId{0};

} // namespace ccsim
