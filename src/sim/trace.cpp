#include "sim/trace.hpp"

#include <cstdio>

namespace ccsim::sim {

void TraceLog::log(TraceCat c, Cycle now, const char* fmt, ...) {
  if (!on(c)) return;
  char buf[256];
  const int head = std::snprintf(buf, sizeof buf, "t=%llu ",
                                 static_cast<unsigned long long>(now));
  std::va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf + head, sizeof buf - static_cast<std::size_t>(head), fmt, args);
  va_end(args);

  if (echo_) std::fprintf(echo_, "%s\n", buf);
  ring_.emplace_back(buf);
  ++total_;
  if (ring_.size() > capacity_) ring_.pop_front();
}

std::string TraceLog::tail(std::size_t n) const {
  std::string out;
  const std::size_t start = ring_.size() > n ? ring_.size() - n : 0;
  for (std::size_t i = start; i < ring_.size(); ++i) {
    out += ring_[i];
    out += '\n';
  }
  return out;
}

} // namespace ccsim::sim
