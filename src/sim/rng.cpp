#include "sim/rng.hpp"
