// Coroutine task type for simulated-processor programs.
//
// Every simulated processor runs one root `Task`. Programs express memory
// operations as awaitables supplied by the CPU model (cpu/cpu.hpp); library
// routines (locks, barriers, reductions) are themselves Tasks awaited by the
// caller, composed with symmetric transfer so nesting costs no host stack.
//
// Tasks are lazy: the body does not run until the task is started (root) or
// awaited (child). This lets a routine be constructed, captured, and resumed
// from inside discrete-event callbacks.
#pragma once

#include "sim/event_queue.hpp"

#include <cassert>
#include <coroutine>
#include <exception>
#include <functional>
#include <utility>

namespace ccsim::sim {

namespace detail {
/// Coroutine frames allocated on this thread, ever. Thread-local because a
/// Machine runs entirely on one thread: the host-telemetry layer reads a
/// delta across Machine::run and gets a per-run count even when a parallel
/// sweep runs many Machines at once (obs/host_perf.hpp).
extern thread_local std::uint64_t t_frames_allocated;
} // namespace detail

/// Coroutine frames allocated by this thread so far.
[[nodiscard]] inline std::uint64_t frames_allocated() noexcept {
  return detail::t_frames_allocated;
}

class Task {
public:
  struct promise_type;
  using Handle = std::coroutine_handle<promise_type>;

  struct promise_type {
    // Frame allocations route through here so the host-telemetry layer can
    // count them (one increment; no behavior change).
    static void* operator new(std::size_t n) {
      ++detail::t_frames_allocated;
      return ::operator new(n);
    }
    static void operator delete(void* p) noexcept { ::operator delete(p); }

    std::coroutine_handle<> continuation;   ///< resumed when this task finishes
    std::function<void()> on_done;          ///< completion hook for root tasks
    std::exception_ptr exception;
    bool finished = false;

    Task get_return_object() { return Task{Handle::from_promise(*this)}; }
    std::suspend_always initial_suspend() noexcept { return {}; }

    struct FinalAwaiter {
      bool await_ready() noexcept { return false; }
      std::coroutine_handle<> await_suspend(Handle h) noexcept {
        auto& p = h.promise();
        p.finished = true;
        if (p.on_done) p.on_done();
        if (p.continuation) return p.continuation;
        return std::noop_coroutine();
      }
      void await_resume() noexcept {}
    };
    FinalAwaiter final_suspend() noexcept { return {}; }

    void return_void() noexcept {}
    void unhandled_exception() { exception = std::current_exception(); }
  };

  Task() = default;
  explicit Task(Handle h) : h_(h) {}
  Task(Task&& o) noexcept : h_(std::exchange(o.h_, {})) {}
  Task& operator=(Task&& o) noexcept {
    if (this != &o) {
      destroy();
      h_ = std::exchange(o.h_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  [[nodiscard]] bool valid() const noexcept { return static_cast<bool>(h_); }
  [[nodiscard]] bool done() const noexcept { return h_ && h_.promise().finished; }

  /// Start a root task. `on_done` fires when the task body returns.
  /// If the body completes with an exception, it is rethrown here (root
  /// tasks have nowhere else to report).
  void start(std::function<void()> on_done = {}) {
    assert(h_ && !h_.promise().finished);
    h_.promise().on_done = std::move(on_done);
    h_.resume();
    rethrow_if_failed();
  }

  /// Rethrow an exception captured from the task body, if any.
  void rethrow_if_failed() {
    if (h_ && h_.promise().finished && h_.promise().exception)
      std::rethrow_exception(h_.promise().exception);
  }

  /// Awaiting a task starts it and suspends the awaiter until it finishes.
  auto operator co_await() noexcept {
    struct Awaiter {
      Handle h;
      bool await_ready() const noexcept { return !h || h.promise().finished; }
      std::coroutine_handle<> await_suspend(std::coroutine_handle<> cont) noexcept {
        h.promise().continuation = cont;
        return h;   // symmetric transfer: start the child
      }
      void await_resume() const {
        if (h && h.promise().exception) std::rethrow_exception(h.promise().exception);
      }
    };
    return Awaiter{h_};
  }

private:
  void destroy() {
    if (h_) {
      h_.destroy();
      h_ = {};
    }
  }
  Handle h_;
};

/// Awaitable that resumes the coroutine `delay` cycles later.
/// Usage: `co_await sim::delay(queue, 10);`
struct DelayAwaiter {
  EventQueue& q;
  Cycle delay;
  bool await_ready() const noexcept { return delay == 0; }
  void await_suspend(std::coroutine_handle<> h) const {
    q.schedule(delay, [h] { h.resume(); });
  }
  void await_resume() const noexcept {}
};

inline DelayAwaiter delay(EventQueue& q, Cycle d) { return DelayAwaiter{q, d}; }

} // namespace ccsim::sim
