// Compatibility header: structured tracing moved to the observability
// subsystem (src/obs). The TraceLog / TraceCat names stay visible under
// ccsim::sim for existing call sites and user code.
#pragma once

#include "obs/trace.hpp"

namespace ccsim::sim {

using obs::TraceCat;
using obs::TraceLog;

} // namespace ccsim::sim
