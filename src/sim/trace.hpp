// Structured event tracing.
//
// Every controller logs its message receptions and key decisions through a
// TraceLog when one is attached (MachineConfig::trace). The log keeps a
// bounded ring of recent formatted events -- cheap enough to leave on for
// debugging runs -- and can optionally echo to a stream live. When a
// simulation deadlocks, Machine::run attaches the tail of the ring to the
// exception so the failure is diagnosable post-mortem.
#pragma once

#include "sim/types.hpp"

#include <cstdarg>
#include <cstdio>
#include <deque>
#include <string>

namespace ccsim::sim {

/// Trace categories; enable any subset.
enum class TraceCat : unsigned {
  Cache = 1u << 0,  ///< cache-controller message receptions / decisions
  Home = 1u << 1,   ///< directory/home message receptions
  Cpu = 1u << 2,    ///< processor-level operations (atomics, flushes)
  All = 0xffffffffu,
};

class TraceLog {
public:
  explicit TraceLog(unsigned mask = static_cast<unsigned>(TraceCat::All),
                    std::size_t ring_capacity = 512)
      : mask_(mask), capacity_(ring_capacity) {}

  [[nodiscard]] bool on(TraceCat c) const noexcept {
    return (mask_ & static_cast<unsigned>(c)) != 0;
  }
  void set_mask(unsigned mask) noexcept { mask_ = mask; }

  /// Echo every event to `f` as it is logged (nullptr = ring only).
  void set_echo(std::FILE* f) noexcept { echo_ = f; }

  /// printf-style event record; no-op if the category is masked off.
  void log(TraceCat c, Cycle now, const char* fmt, ...)
#if defined(__GNUC__)
      __attribute__((format(printf, 4, 5)))
#endif
      ;

  [[nodiscard]] const std::deque<std::string>& recent() const noexcept {
    return ring_;
  }
  [[nodiscard]] std::size_t total_events() const noexcept { return total_; }

  /// The last `n` events joined with newlines (for deadlock reports).
  [[nodiscard]] std::string tail(std::size_t n) const;

  void clear() {
    ring_.clear();
    total_ = 0;
  }

private:
  unsigned mask_;
  std::size_t capacity_;
  std::deque<std::string> ring_;
  std::size_t total_ = 0;
  std::FILE* echo_ = nullptr;
};

} // namespace ccsim::sim
