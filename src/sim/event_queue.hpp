// Discrete-event simulation kernel.
//
// A single global event queue drives the whole machine: cache controllers,
// directories, memory banks and network interfaces all schedule closures.
// Events at equal timestamps execute in scheduling order (a monotonically
// increasing sequence number breaks ties), which makes every simulation run
// bit-for-bit deterministic -- an invariant the test suite checks.
#pragma once

#include "sim/types.hpp"

#include <cstddef>
#include <functional>
#include <queue>
#include <vector>

namespace ccsim::sim {

/// Priority queue of timed events plus the simulation clock.
class EventQueue {
public:
  using Action = std::function<void()>;

  /// Current simulation time. Only advances inside run()/step().
  [[nodiscard]] Cycle now() const noexcept { return now_; }

  /// Schedule `fn` to run at absolute time `t` (>= now()).
  void schedule_at(Cycle t, Action fn);

  /// Schedule `fn` to run `delay` cycles from now.
  void schedule(Cycle delay, Action fn) { schedule_at(now_ + delay, std::move(fn)); }

  /// Execute the earliest pending event. Returns false if the queue is empty.
  bool step();

  /// Run until no events remain.
  void run();

  /// Run until the clock would pass `limit` or no events remain.
  /// Returns true if the queue drained, false if the limit stopped us.
  bool run_until(Cycle limit);

  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t pending() const noexcept { return heap_.size(); }

  /// Timestamp of the earliest pending event. Precondition: !empty().
  [[nodiscard]] Cycle next_time() const noexcept { return heap_.top().t; }

  /// Total number of events executed so far (for kernel micro-benchmarks).
  [[nodiscard]] std::uint64_t executed() const noexcept { return executed_; }

  /// Total number of events ever scheduled (== closure allocations; the
  /// host-telemetry layer reports it as an allocation stream).
  [[nodiscard]] std::uint64_t scheduled() const noexcept { return next_seq_; }

private:
  struct Event {
    Cycle t;
    std::uint64_t seq;
    Action fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      return a.t > b.t || (a.t == b.t && a.seq > b.seq);
    }
  };

  Cycle now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> heap_;
};

} // namespace ccsim::sim
