// Deterministic pseudo-random number generation for workloads.
//
// Simulation determinism is a hard invariant, so workloads never use
// std::random_device or global state: every generator is seeded explicitly
// (typically from (experiment seed, processor id, round)).
#pragma once

#include <cstdint>

namespace ccsim::sim {

/// SplitMix64: tiny, fast, well distributed; ideal for reproducible
/// per-processor streams.
class Rng {
public:
  explicit Rng(std::uint64_t seed) noexcept : state_(seed) {}

  /// Next raw 64-bit value.
  std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform value in [0, bound). bound must be nonzero.
  std::uint64_t below(std::uint64_t bound) noexcept { return next() % bound; }

  /// Uniform value in [lo, hi] inclusive.
  std::uint64_t between(std::uint64_t lo, std::uint64_t hi) noexcept {
    return lo + below(hi - lo + 1);
  }

  /// Derive an independent stream (e.g. per processor) from this seed.
  static std::uint64_t derive(std::uint64_t seed, std::uint64_t stream) noexcept {
    Rng r(seed ^ (0x632be59bd9b4e019ULL * (stream + 1)));
    return r.next();
  }

private:
  std::uint64_t state_;
};

} // namespace ccsim::sim
