// task.hpp is header-only; this translation unit exists so the build exposes
// a place for future out-of-line definitions and keeps one TU per module.
#include "sim/task.hpp"
