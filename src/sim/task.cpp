// task.hpp is mostly header-only; this translation unit holds the
// thread-local frame-allocation counter the host-telemetry layer reads.
#include "sim/task.hpp"

namespace ccsim::sim::detail {

thread_local std::uint64_t t_frames_allocated = 0;

} // namespace ccsim::sim::detail
