#include "sim/check.hpp"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace ccsim::sim {

void check_fail(const char* cond, const char* file, int line, const char* fmt,
                ...) {
  std::fprintf(stderr, "ccsim check failed: %s\n  at %s:%d\n  ", cond, file,
               line);
  std::va_list ap;
  va_start(ap, fmt);
  std::vfprintf(stderr, fmt, ap);
  va_end(ap);
  std::fputc('\n', stderr);
  std::fflush(stderr);
  std::abort();
}

} // namespace ccsim::sim
