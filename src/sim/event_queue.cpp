#include "sim/event_queue.hpp"

#include <cassert>
#include <utility>

namespace ccsim::sim {

void EventQueue::schedule_at(Cycle t, Action fn) {
  assert(t >= now_ && "cannot schedule an event in the past");
  heap_.push(Event{t, next_seq_++, std::move(fn)});
}

bool EventQueue::step() {
  if (heap_.empty()) return false;
  // priority_queue::top() is const; the action must be moved out before pop.
  Event ev = std::move(const_cast<Event&>(heap_.top()));
  heap_.pop();
  now_ = ev.t;
  ++executed_;
  ev.fn();
  return true;
}

void EventQueue::run() {
  while (step()) {
  }
}

bool EventQueue::run_until(Cycle limit) {
  while (!heap_.empty()) {
    if (heap_.top().t > limit) return false;
    step();
  }
  return true;
}

} // namespace ccsim::sim
