// 2D mesh topology with dimension-ordered (X then Y) routing.
//
// The paper's machine is a bi-directional wormhole-routed mesh. With
// contention modeled only at the source and destination network interfaces
// (paper, section 3.1), the route itself contributes only the per-switch
// header delay, so the topology's job is to give deterministic hop counts.
#pragma once

#include "sim/types.hpp"

#include <cstdint>
#include <utility>

namespace ccsim::net {

/// Geometry of an X-by-Y mesh holding `count` nodes (row-major ids).
class MeshTopology {
public:
  /// Build the smallest near-square mesh for `count` nodes
  /// (1x1, 2x1, 2x2, 4x2, 4x4, 8x4, ...).
  explicit MeshTopology(unsigned count);

  MeshTopology(unsigned x, unsigned y);

  [[nodiscard]] unsigned count() const noexcept { return count_; }
  [[nodiscard]] unsigned dim_x() const noexcept { return x_; }
  [[nodiscard]] unsigned dim_y() const noexcept { return y_; }

  /// (x, y) coordinate of a node.
  [[nodiscard]] std::pair<unsigned, unsigned> coords(NodeId n) const noexcept {
    return {static_cast<unsigned>(n) % x_, static_cast<unsigned>(n) / x_};
  }

  /// Number of switch hops on the dimension-ordered route from a to b.
  [[nodiscard]] unsigned hops(NodeId a, NodeId b) const noexcept;

  /// The next node after `from` on the dimension-ordered (X then Y) route
  /// toward `to`. Precondition: from != to.
  [[nodiscard]] NodeId next_hop(NodeId from, NodeId to) const noexcept;

private:
  unsigned x_ = 1;
  unsigned y_ = 1;
  unsigned count_ = 1;
};

} // namespace ccsim::net
