#include "net/network.hpp"

#include <algorithm>
#include <cassert>

namespace ccsim::net {

Network::Network(sim::EventQueue& q, MeshTopology topo, Params params,
                 stats::NetCounters* counters)
    : q_(q),
      topo_(topo),
      params_(params),
      counters_(counters),
      sinks_(topo.count(), nullptr),
      inject_free_(topo.count(), 0),
      eject_free_(topo.count(), 0),
      link_free_(params.link_contention
                     ? static_cast<std::size_t>(topo.count()) * topo.count()
                     : 0,
                 0) {}

void Network::attach(NodeId n, MessageSink& sink) {
  assert(n < sinks_.size());
  sinks_[n] = &sink;
}

void Network::send(const Message& msg) {
  assert(msg.src < sinks_.size() && msg.dst < sinks_.size());
  MessageSink* sink = sinks_[msg.dst];
  assert(sink && "destination node has no sink attached");

  if (counters_) ++counters_->by_type[static_cast<std::size_t>(msg.type)];
  if (msg.src == msg.dst) {
    if (counters_) ++counters_->local;
    q_.schedule(params_.local_latency, [sink, msg] { sink->deliver(msg); });
    return;
  }

  const std::size_t bytes = msg.wire_bytes();
  const Cycle flits =
      static_cast<Cycle>((bytes + params_.flit_bytes - 1) / params_.flit_bytes);
  const unsigned hops = topo_.hops(msg.src, msg.dst);

  // Source port: the tail flit leaves `flits` cycles after injection starts.
  const Cycle start = std::max(q_.now(), inject_free_[msg.src]);
  inject_free_[msg.src] = start + flits;

  // Flight: each switch delays the header by switch_delay cycles; with
  // link contention on, the header also waits for each channel of the
  // dimension-ordered route, and the flit stream then occupies it.
  Cycle head_arrival;
  if (params_.link_contention) {
    Cycle head = start;
    NodeId at = msg.src;
    while (at != msg.dst) {
      const NodeId next = topo_.next_hop(at, msg.dst);
      Cycle& busy = link_free_[static_cast<std::size_t>(at) * topo_.count() + next];
      head = std::max(head + params_.switch_delay, busy);
      busy = head + flits;
      at = next;
    }
    head_arrival = head;
  } else {
    head_arrival = start + params_.switch_delay * hops;
  }

  // Destination port: ejection serializes; the message is delivered when its
  // tail flit has been ejected.
  const Cycle eject_start = std::max(head_arrival, eject_free_[msg.dst]);
  const Cycle delivered = eject_start + flits;
  eject_free_[msg.dst] = delivered;

  if (counters_) {
    ++counters_->messages;
    counters_->flits += flits;
    counters_->hops += hops;
  }

  q_.schedule_at(delivered, [sink, msg] { sink->deliver(msg); });
}

} // namespace ccsim::net
