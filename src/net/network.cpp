#include "net/network.hpp"

#include "obs/host_perf.hpp"
#include "obs/trace.hpp"

#include <algorithm>
#include <cassert>

namespace ccsim::net {
namespace {

obs::TraceEvent net_event(obs::EventKind kind, Cycle at, Cycle dur, NodeId node,
                          NodeId peer, const Message& msg, std::uint64_t flow) {
  obs::TraceEvent e;
  e.cycle = at;
  e.dur = dur;
  e.cat = obs::TraceCat::Net;
  e.kind = kind;
  e.node = node;
  e.peer = peer;
  e.has_msg = true;
  e.msg = msg.type;
  e.addr = msg.addr;
  e.payload = msg.payload;
  e.flow = flow;
  return e;
}

} // namespace
} // namespace ccsim::net

namespace ccsim::net {

Network::Network(sim::EventQueue& q, MeshTopology topo, Params params,
                 stats::NetCounters* counters)
    : q_(q),
      topo_(topo),
      params_(params),
      counters_(counters),
      sinks_(topo.count(), nullptr),
      inject_free_(topo.count(), 0),
      eject_free_(topo.count(), 0),
      link_free_(params.link_contention
                     ? static_cast<std::size_t>(topo.count()) * topo.count()
                     : 0,
                 0),
      local_last_(topo.count(), 0),
      inflight_(topo.count(), 0),
      jitter_rng_(params.jitter_seed) {}

void Network::attach(NodeId n, MessageSink& sink) {
  assert(n < sinks_.size());
  sinks_[n] = &sink;
}

void Network::send(const Message& msg) {
  // Host telemetry: routing + contention arithmetic is network work.
  obs::ScopedHostCat host_scope(host_, obs::HostCat::Network);
  assert(msg.src < sinks_.size() && msg.dst < sinks_.size());
  MessageSink* sink = sinks_[msg.dst];
  assert(sink && "destination node has no sink attached");

  if (counters_) ++counters_->by_type[static_cast<std::size_t>(msg.type)];
  ++inflight_[msg.dst];
  if (msg.src == msg.dst) {
    if (counters_) ++counters_->local;
    Cycle arrive = q_.now() + params_.local_latency;
    if (params_.jitter_max != 0) {
      // Clamp against the previous local delivery: equal timestamps keep
      // scheduling order (seq tie-break), so same-node FIFO is preserved.
      arrive = std::max(arrive + jitter(), local_last_[msg.dst]);
      local_last_[msg.dst] = arrive;
    }
    if (trace_) {
      const std::uint64_t flow = trace_->next_flow_id();
      trace_->event(net_event(obs::EventKind::MsgSend, q_.now(), 0, msg.src,
                              msg.dst, msg, flow));
      obs::TraceLog* trace = trace_;
      q_.schedule_at(arrive, [this, sink, msg, trace, arrive, flow] {
        --inflight_[msg.dst];
        trace->event(net_event(obs::EventKind::MsgRecv, arrive, 0, msg.dst,
                               msg.src, msg, flow));
        sink->deliver(msg);
      });
    } else {
      q_.schedule_at(arrive, [this, sink, msg] {
        --inflight_[msg.dst];
        sink->deliver(msg);
      });
    }
    return;
  }

  const std::size_t bytes = msg.wire_bytes();
  const Cycle flits =
      static_cast<Cycle>((bytes + params_.flit_bytes - 1) / params_.flit_bytes);
  const unsigned hops = topo_.hops(msg.src, msg.dst);

  // Source port: the tail flit leaves `flits` cycles after injection starts.
  // Jitter delays the injection claim; because the claim still advances
  // inject_free_ monotonically, per-(src, dst) FIFO order is unaffected.
  const Cycle start = std::max(q_.now() + jitter(), inject_free_[msg.src]);
  inject_free_[msg.src] = start + flits;

  // Flight: each switch delays the header by switch_delay cycles; with
  // link contention on, the header also waits for each channel of the
  // dimension-ordered route, and the flit stream then occupies it.
  Cycle head_arrival;
  if (params_.link_contention) {
    Cycle head = start;
    NodeId at = msg.src;
    while (at != msg.dst) {
      const NodeId next = topo_.next_hop(at, msg.dst);
      Cycle& busy = link_free_[static_cast<std::size_t>(at) * topo_.count() + next];
      head = std::max(head + params_.switch_delay, busy);
      busy = head + flits;
      at = next;
    }
    head_arrival = head;
  } else {
    head_arrival = start + params_.switch_delay * hops;
  }

  // Destination port: ejection serializes; the message is delivered when its
  // tail flit has been ejected.
  const Cycle eject_start = std::max(head_arrival, eject_free_[msg.dst]);
  const Cycle delivered = eject_start + flits;
  eject_free_[msg.dst] = delivered;

  if (counters_) {
    ++counters_->messages;
    counters_->flits += flits;
    counters_->hops += hops;
  }

  if (trace_) {
    const std::uint64_t flow = trace_->next_flow_id();
    trace_->event(net_event(obs::EventKind::MsgSend, start, flits, msg.src,
                            msg.dst, msg, flow));
    obs::TraceLog* trace = trace_;
    q_.schedule_at(delivered, [this, sink, msg, trace, eject_start, flits, flow] {
      --inflight_[msg.dst];
      trace->event(net_event(obs::EventKind::MsgRecv, eject_start, flits,
                             msg.dst, msg.src, msg, flow));
      sink->deliver(msg);
    });
  } else {
    q_.schedule_at(delivered, [this, sink, msg] {
      --inflight_[msg.dst];
      sink->deliver(msg);
    });
  }
}

} // namespace ccsim::net
