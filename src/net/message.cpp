#include "net/message.hpp"

namespace ccsim::net {

std::string_view to_string(MsgType t) noexcept {
  switch (t) {
    case MsgType::GetS: return "GetS";
    case MsgType::GetX: return "GetX";
    case MsgType::Upgrade: return "Upgrade";
    case MsgType::DataS: return "DataS";
    case MsgType::DataX: return "DataX";
    case MsgType::UpgAck: return "UpgAck";
    case MsgType::Inval: return "Inval";
    case MsgType::InvalAck: return "InvalAck";
    case MsgType::FwdGetS: return "FwdGetS";
    case MsgType::FwdGetX: return "FwdGetX";
    case MsgType::OwnerDataS: return "OwnerDataS";
    case MsgType::OwnerDataX: return "OwnerDataX";
    case MsgType::SharedWB: return "SharedWB";
    case MsgType::ExclDone: return "ExclDone";
    case MsgType::TransferAck: return "TransferAck";
    case MsgType::FwdNack: return "FwdNack";
    case MsgType::Writeback: return "Writeback";
    case MsgType::WritebackAck: return "WritebackAck";
    case MsgType::ReplHint: return "ReplHint";
    case MsgType::UpdateReq: return "UpdateReq";
    case MsgType::UpdateGrant: return "UpdateGrant";
    case MsgType::Update: return "Update";
    case MsgType::UpdateAck: return "UpdateAck";
    case MsgType::Prune: return "Prune";
    case MsgType::Recall: return "Recall";
    case MsgType::RecallReply: return "RecallReply";
    case MsgType::AtomicReq: return "AtomicReq";
    case MsgType::AtomicReply: return "AtomicReply";
  }
  return "?";
}

std::size_t Message::wire_bytes() const noexcept {
  if (has_block) return kHeaderBytes + mem::kBlockSize;
  switch (type) {
    // word-carrying control messages
    case MsgType::UpdateReq:
    case MsgType::Update:
    case MsgType::AtomicReq:
    case MsgType::AtomicReply:
      return kHeaderBytes + mem::kWordSize;
    default:
      return kHeaderBytes;
  }
}

} // namespace ccsim::net
