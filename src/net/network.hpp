// Network model: wormhole mesh with contention at the endpoints.
//
// Per the paper (section 3.1): the network runs at the processor clock, the
// datapath is 16 bits wide (one flit = 2 bytes), each switch adds 2 cycles
// to the header, and contention is modeled only at the source and
// destination of messages. Between one (source, destination) pair delivery
// is FIFO: injection serializes at the source port and ejection at the
// destination port, so reordering is impossible -- the update protocols'
// same-word ordering relies on this.
#pragma once

#include "net/message.hpp"
#include "net/topology.hpp"
#include "sim/event_queue.hpp"
#include "sim/rng.hpp"
#include "stats/counters.hpp"

#include <cstdint>
#include <vector>

namespace ccsim::obs {
class HostPerfCollector;
class TraceLog;
}

namespace ccsim::net {

/// Receiver of delivered messages; each node registers one.
class MessageSink {
public:
  virtual ~MessageSink() = default;
  virtual void deliver(const Message& msg) = 0;
};

class Network {
public:
  struct Params {
    Cycle switch_delay = 2;       ///< per-hop header latency
    std::size_t flit_bytes = 2;   ///< 16-bit datapath
    Cycle local_latency = 1;      ///< node-internal delivery (no network)
    /// Model wormhole channel contention on every link of the
    /// dimension-ordered route, not just at the endpoints. The paper's
    /// machine models source/destination contention only (section 3.1);
    /// turning this on shows how much its conclusions depend on that
    /// simplification (see bench/abl_network_contention).
    bool link_contention = false;
    /// Deterministic delivery perturbation (tools/ccstress): every message
    /// is delayed by a pseudorandom extra 0..jitter_max cycles before it
    /// claims its injection port. Jitter shifts timing only -- per-(source,
    /// destination) FIFO order is preserved, because port claims stay
    /// monotonic in send order (local messages clamp against the previous
    /// local delivery instead) -- and the draw sequence is a pure function
    /// of the deterministic send order, so equal seeds give byte-identical
    /// runs. 0 disables jitter and leaves the send path untouched.
    Cycle jitter_max = 0;
    std::uint64_t jitter_seed = 0;
  };

  Network(sim::EventQueue& q, MeshTopology topo, Params params,
          stats::NetCounters* counters = nullptr);

  /// Register the receiver for messages addressed to node `n`.
  void attach(NodeId n, MessageSink& sink);

  /// Attach a trace log; every injected message then emits a MsgSend event
  /// at its source and a MsgRecv event at its destination, joined by a flow
  /// id so sinks can draw message-lifetime arrows.
  void set_trace(obs::TraceLog* trace) noexcept { trace_ = trace; }

  /// Attach the host-performance collector (obs/host_perf.hpp); send()
  /// then attributes its routing/contention host time to the network
  /// category. Pure host-side observer -- simulated timing is unchanged.
  void set_host(obs::HostPerfCollector* host) noexcept { host_ = host; }

  /// Inject a message. Delivery is scheduled on the event queue with full
  /// endpoint contention accounting.
  void send(const Message& msg);

  [[nodiscard]] const MeshTopology& topology() const noexcept { return topo_; }

  /// Earliest cycle at which node n's injection port is free (testing aid).
  [[nodiscard]] Cycle inject_free_at(NodeId n) const { return inject_free_[n]; }

  /// Messages sent to node `n` and not yet delivered (watchdog diagnostics).
  [[nodiscard]] std::uint64_t in_flight(NodeId n) const { return inflight_[n]; }

private:
  [[nodiscard]] Cycle jitter() {
    return params_.jitter_max == 0 ? 0 : jitter_rng_.below(params_.jitter_max + 1);
  }

  sim::EventQueue& q_;
  MeshTopology topo_;
  Params params_;
  stats::NetCounters* counters_;
  obs::TraceLog* trace_ = nullptr;
  obs::HostPerfCollector* host_ = nullptr;
  std::vector<MessageSink*> sinks_;
  std::vector<Cycle> inject_free_;
  std::vector<Cycle> eject_free_;
  /// link_contention: busy-until per directed link, indexed
  /// [from * count + to-of-adjacent-hop].
  std::vector<Cycle> link_free_;
  /// Jittered local (src == dst) messages clamp to the previous local
  /// delivery at the node so same-pair FIFO survives the perturbation.
  std::vector<Cycle> local_last_;
  std::vector<std::uint64_t> inflight_;  ///< undelivered messages per dst
  sim::Rng jitter_rng_;
};

} // namespace ccsim::net
