// Coherence message vocabulary shared by all three protocols.
#pragma once

#include "mem/address.hpp"
#include "sim/types.hpp"

#include <array>
#include <cstddef>
#include <cstdint>
#include <string_view>

namespace ccsim::net {

/// Every message exchanged between cache controllers and home directories.
enum class MsgType : std::uint8_t {
  // --- write-invalidate (DASH-like) ----------------------------------
  GetS,        ///< cache -> home: read miss
  GetX,        ///< cache -> home: write miss (wants exclusive + data)
  Upgrade,     ///< cache -> home: write hit on Shared (wants exclusive)
  DataS,       ///< home -> cache: shared data reply
  DataX,       ///< home -> cache: exclusive data reply (payload = #acks)
  UpgAck,      ///< home -> cache: upgrade granted (payload = #acks)
  Inval,       ///< home -> sharer: invalidate (requester field = writer)
  InvalAck,    ///< sharer -> writer: invalidation done
  FwdGetS,     ///< home -> owner: forward a read miss
  FwdGetX,     ///< home -> owner: forward a write miss
  OwnerDataS,  ///< owner -> requester: data for a forwarded read
  OwnerDataX,  ///< owner -> requester: data for a forwarded write
  SharedWB,    ///< owner -> home: demotion writeback closing a FwdGetS
  ExclDone,    ///< requester -> home: exclusive data received, close the
               ///< transaction (prevents forwards overtaking the grant)
  TransferAck, ///< (unused legacy) owner -> home transfer notice
  FwdNack,     ///< owner -> home: I no longer hold the block (race w/ WB)
  Writeback,   ///< cache -> home: evicting a dirty block (carries data)
  WritebackAck,///< home -> cache
  ReplHint,    ///< cache -> home: evicting a clean copy (keeps full map exact)
  // --- update-based (PU / CU) ----------------------------------------
  UpdateReq,   ///< writer -> home: write-through of one word
  UpdateGrant, ///< home -> writer: payload = #acks to expect; flag = private
  Update,      ///< home -> sharer: new value of one word
  UpdateAck,   ///< sharer -> writer
  Prune,       ///< sharer -> home (CU): drop me from the sharing set
  Recall,      ///< home -> private owner (PU): give the block back
  RecallReply, ///< owner -> home: block data, demoted to plain valid
  // --- atomic read-modify-write --------------------------------------
  AtomicReq,   ///< cache -> home (update protocols execute at the memory)
  AtomicReply, ///< home -> cache: payload = old value
};

[[nodiscard]] std::string_view to_string(MsgType t) noexcept;

/// Atomic primitives implemented by the simulator (paper, section 3.1).
enum class AtomicOp : std::uint8_t {
  FetchAdd,    ///< payload = addend;   returns old value
  FetchStore,  ///< payload = new value; returns old value
  CompareSwap, ///< payload = expected, payload2 = new; returns old value
};

/// One coherence message. Fixed-size (block payload inline) so the network
/// layer never allocates.
struct Message {
  MsgType type{};
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  /// Word address for word-granular traffic (updates/atomics), block base
  /// address for block-granular traffic.
  Addr addr = 0;
  /// Third party of 3-hop transactions: the node that started the
  /// transaction (e.g. the writer whose acks an Inval collects).
  NodeId requester = kInvalidNode;
  std::uint64_t payload = 0;
  std::uint64_t payload2 = 0;
  AtomicOp op{};
  bool flag = false;                       ///< e.g. "private" on UpdateGrant
  bool has_block = false;
  std::array<std::byte, mem::kBlockSize> block{};

  /// Size on the wire in bytes: control header (+ word / block payload).
  [[nodiscard]] std::size_t wire_bytes() const noexcept;
};

/// Header bytes of every message (route + type + address + bookkeeping).
inline constexpr std::size_t kHeaderBytes = 16;

} // namespace ccsim::net
