#include "net/topology.hpp"

#include <cassert>
#include <cstdlib>

namespace ccsim::net {

MeshTopology::MeshTopology(unsigned count) {
  assert(count >= 1);
  // Pick X >= Y with X*Y >= count and X/Y <= 2 where possible, preferring
  // powers of two (the paper's 32-node machine is an 8x4 mesh).
  unsigned x = 1, y = 1;
  while (x * y < count) {
    if (x <= y)
      x *= 2;
    else
      y *= 2;
  }
  x_ = x;
  y_ = y;
  count_ = count;
}

MeshTopology::MeshTopology(unsigned x, unsigned y) : x_(x), y_(y), count_(x * y) {
  assert(x >= 1 && y >= 1);
}

NodeId MeshTopology::next_hop(NodeId from, NodeId to) const noexcept {
  auto [fx, fy] = coords(from);
  auto [tx, ty] = coords(to);
  if (fx != tx) {
    const unsigned nx = fx < tx ? fx + 1 : fx - 1;
    return static_cast<NodeId>(fy * x_ + nx);
  }
  const unsigned ny = fy < ty ? fy + 1 : fy - 1;
  return static_cast<NodeId>(ny * x_ + fx);
}

unsigned MeshTopology::hops(NodeId a, NodeId b) const noexcept {
  auto [ax, ay] = coords(a);
  auto [bx, by] = coords(b);
  const unsigned dx = ax > bx ? ax - bx : bx - ax;
  const unsigned dy = ay > by ? ay - by : by - ay;
  return dx + dy;
}

} // namespace ccsim::net
