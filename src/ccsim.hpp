// ccsim -- umbrella header.
//
// Execution-driven simulator of a DASH-like multiprocessor under
// write-invalidate, pure-update and competitive-update coherence protocols,
// with the synchronization-construct library and traffic classification of
// Bianchini, Carrera & Kontothanassis, "The Interaction of Parallel
// Programming Constructs and Coherence Protocols" (PPoPP 1997).
//
// Typical use:
//
//   ccsim::harness::MachineConfig cfg;
//   cfg.nprocs = 8;
//   cfg.protocol = ccsim::proto::Protocol::CU;
//   ccsim::harness::Machine m(cfg);
//   ccsim::sync::TicketLock lock(m);
//   ccsim::Cycle t = m.run_all([&](ccsim::cpu::Cpu& c) -> ccsim::sim::Task {
//     co_await lock.acquire(c);
//     co_await c.think(50);
//     co_await lock.release(c);
//   });
#pragma once

#include "cpu/cpu.hpp"
#include "cpu/processor.hpp"
#include "harness/cli.hpp"
#include "harness/figure.hpp"
#include "harness/machine.hpp"
#include "harness/trajectory.hpp"
#include "harness/workloads.hpp"
#include "mem/address.hpp"
#include "mem/cache.hpp"
#include "mem/directory.hpp"
#include "mem/memory_module.hpp"
#include "mem/shared_alloc.hpp"
#include "mem/write_buffer.hpp"
#include "net/message.hpp"
#include "net/network.hpp"
#include "net/topology.hpp"
#include "obs/cycle_accounting.hpp"
#include "obs/hot_blocks.hpp"
#include "obs/jsonl_sink.hpp"
#include "obs/perfetto_sink.hpp"
#include "obs/sampler.hpp"
#include "obs/trace.hpp"
#include "proto/node.hpp"
#include "proto/protocol.hpp"
#include "sim/event_queue.hpp"
#include "sim/rng.hpp"
#include "sim/task.hpp"
#include "stats/counters.hpp"
#include "stats/json.hpp"
#include "stats/miss_classifier.hpp"
#include "stats/report.hpp"
#include "stats/update_classifier.hpp"
#include "sync/atomic_reduction.hpp"
#include "sync/barriers.hpp"
#include "sync/magic_sync.hpp"
#include "sync/mcs_lock.hpp"
#include "sync/reductions.hpp"
#include "sync/simple_locks.hpp"
#include "sync/sync.hpp"
#include "sync/ticket_lock.hpp"
