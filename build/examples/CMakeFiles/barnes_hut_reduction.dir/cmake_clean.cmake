file(REMOVE_RECURSE
  "CMakeFiles/barnes_hut_reduction.dir/barnes_hut_reduction.cpp.o"
  "CMakeFiles/barnes_hut_reduction.dir/barnes_hut_reduction.cpp.o.d"
  "barnes_hut_reduction"
  "barnes_hut_reduction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/barnes_hut_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
