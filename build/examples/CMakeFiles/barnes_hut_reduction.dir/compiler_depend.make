# Empty compiler generated dependencies file for barnes_hut_reduction.
# This may be replaced when dependencies are built.
