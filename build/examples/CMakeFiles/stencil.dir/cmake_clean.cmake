file(REMOVE_RECURSE
  "CMakeFiles/stencil.dir/stencil.cpp.o"
  "CMakeFiles/stencil.dir/stencil.cpp.o.d"
  "stencil"
  "stencil.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stencil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
