# Empty compiler generated dependencies file for custom_construct.
# This may be replaced when dependencies are built.
