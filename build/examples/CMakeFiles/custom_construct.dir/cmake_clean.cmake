file(REMOVE_RECURSE
  "CMakeFiles/custom_construct.dir/custom_construct.cpp.o"
  "CMakeFiles/custom_construct.dir/custom_construct.cpp.o.d"
  "custom_construct"
  "custom_construct.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_construct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
