
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/kernels.cpp" "src/CMakeFiles/ccsim.dir/apps/kernels.cpp.o" "gcc" "src/CMakeFiles/ccsim.dir/apps/kernels.cpp.o.d"
  "/root/repo/src/cpu/cpu.cpp" "src/CMakeFiles/ccsim.dir/cpu/cpu.cpp.o" "gcc" "src/CMakeFiles/ccsim.dir/cpu/cpu.cpp.o.d"
  "/root/repo/src/cpu/processor.cpp" "src/CMakeFiles/ccsim.dir/cpu/processor.cpp.o" "gcc" "src/CMakeFiles/ccsim.dir/cpu/processor.cpp.o.d"
  "/root/repo/src/harness/cli.cpp" "src/CMakeFiles/ccsim.dir/harness/cli.cpp.o" "gcc" "src/CMakeFiles/ccsim.dir/harness/cli.cpp.o.d"
  "/root/repo/src/harness/figure.cpp" "src/CMakeFiles/ccsim.dir/harness/figure.cpp.o" "gcc" "src/CMakeFiles/ccsim.dir/harness/figure.cpp.o.d"
  "/root/repo/src/harness/machine.cpp" "src/CMakeFiles/ccsim.dir/harness/machine.cpp.o" "gcc" "src/CMakeFiles/ccsim.dir/harness/machine.cpp.o.d"
  "/root/repo/src/harness/workloads.cpp" "src/CMakeFiles/ccsim.dir/harness/workloads.cpp.o" "gcc" "src/CMakeFiles/ccsim.dir/harness/workloads.cpp.o.d"
  "/root/repo/src/mem/address.cpp" "src/CMakeFiles/ccsim.dir/mem/address.cpp.o" "gcc" "src/CMakeFiles/ccsim.dir/mem/address.cpp.o.d"
  "/root/repo/src/mem/cache.cpp" "src/CMakeFiles/ccsim.dir/mem/cache.cpp.o" "gcc" "src/CMakeFiles/ccsim.dir/mem/cache.cpp.o.d"
  "/root/repo/src/mem/directory.cpp" "src/CMakeFiles/ccsim.dir/mem/directory.cpp.o" "gcc" "src/CMakeFiles/ccsim.dir/mem/directory.cpp.o.d"
  "/root/repo/src/mem/memory_module.cpp" "src/CMakeFiles/ccsim.dir/mem/memory_module.cpp.o" "gcc" "src/CMakeFiles/ccsim.dir/mem/memory_module.cpp.o.d"
  "/root/repo/src/mem/shared_alloc.cpp" "src/CMakeFiles/ccsim.dir/mem/shared_alloc.cpp.o" "gcc" "src/CMakeFiles/ccsim.dir/mem/shared_alloc.cpp.o.d"
  "/root/repo/src/mem/write_buffer.cpp" "src/CMakeFiles/ccsim.dir/mem/write_buffer.cpp.o" "gcc" "src/CMakeFiles/ccsim.dir/mem/write_buffer.cpp.o.d"
  "/root/repo/src/net/message.cpp" "src/CMakeFiles/ccsim.dir/net/message.cpp.o" "gcc" "src/CMakeFiles/ccsim.dir/net/message.cpp.o.d"
  "/root/repo/src/net/network.cpp" "src/CMakeFiles/ccsim.dir/net/network.cpp.o" "gcc" "src/CMakeFiles/ccsim.dir/net/network.cpp.o.d"
  "/root/repo/src/net/topology.cpp" "src/CMakeFiles/ccsim.dir/net/topology.cpp.o" "gcc" "src/CMakeFiles/ccsim.dir/net/topology.cpp.o.d"
  "/root/repo/src/proto/hybrid.cpp" "src/CMakeFiles/ccsim.dir/proto/hybrid.cpp.o" "gcc" "src/CMakeFiles/ccsim.dir/proto/hybrid.cpp.o.d"
  "/root/repo/src/proto/node.cpp" "src/CMakeFiles/ccsim.dir/proto/node.cpp.o" "gcc" "src/CMakeFiles/ccsim.dir/proto/node.cpp.o.d"
  "/root/repo/src/proto/protocol.cpp" "src/CMakeFiles/ccsim.dir/proto/protocol.cpp.o" "gcc" "src/CMakeFiles/ccsim.dir/proto/protocol.cpp.o.d"
  "/root/repo/src/proto/update_cache.cpp" "src/CMakeFiles/ccsim.dir/proto/update_cache.cpp.o" "gcc" "src/CMakeFiles/ccsim.dir/proto/update_cache.cpp.o.d"
  "/root/repo/src/proto/update_home.cpp" "src/CMakeFiles/ccsim.dir/proto/update_home.cpp.o" "gcc" "src/CMakeFiles/ccsim.dir/proto/update_home.cpp.o.d"
  "/root/repo/src/proto/wi_cache.cpp" "src/CMakeFiles/ccsim.dir/proto/wi_cache.cpp.o" "gcc" "src/CMakeFiles/ccsim.dir/proto/wi_cache.cpp.o.d"
  "/root/repo/src/proto/wi_home.cpp" "src/CMakeFiles/ccsim.dir/proto/wi_home.cpp.o" "gcc" "src/CMakeFiles/ccsim.dir/proto/wi_home.cpp.o.d"
  "/root/repo/src/sim/event_queue.cpp" "src/CMakeFiles/ccsim.dir/sim/event_queue.cpp.o" "gcc" "src/CMakeFiles/ccsim.dir/sim/event_queue.cpp.o.d"
  "/root/repo/src/sim/rng.cpp" "src/CMakeFiles/ccsim.dir/sim/rng.cpp.o" "gcc" "src/CMakeFiles/ccsim.dir/sim/rng.cpp.o.d"
  "/root/repo/src/sim/task.cpp" "src/CMakeFiles/ccsim.dir/sim/task.cpp.o" "gcc" "src/CMakeFiles/ccsim.dir/sim/task.cpp.o.d"
  "/root/repo/src/sim/trace.cpp" "src/CMakeFiles/ccsim.dir/sim/trace.cpp.o" "gcc" "src/CMakeFiles/ccsim.dir/sim/trace.cpp.o.d"
  "/root/repo/src/stats/counters.cpp" "src/CMakeFiles/ccsim.dir/stats/counters.cpp.o" "gcc" "src/CMakeFiles/ccsim.dir/stats/counters.cpp.o.d"
  "/root/repo/src/stats/histogram.cpp" "src/CMakeFiles/ccsim.dir/stats/histogram.cpp.o" "gcc" "src/CMakeFiles/ccsim.dir/stats/histogram.cpp.o.d"
  "/root/repo/src/stats/miss_classifier.cpp" "src/CMakeFiles/ccsim.dir/stats/miss_classifier.cpp.o" "gcc" "src/CMakeFiles/ccsim.dir/stats/miss_classifier.cpp.o.d"
  "/root/repo/src/stats/report.cpp" "src/CMakeFiles/ccsim.dir/stats/report.cpp.o" "gcc" "src/CMakeFiles/ccsim.dir/stats/report.cpp.o.d"
  "/root/repo/src/stats/update_classifier.cpp" "src/CMakeFiles/ccsim.dir/stats/update_classifier.cpp.o" "gcc" "src/CMakeFiles/ccsim.dir/stats/update_classifier.cpp.o.d"
  "/root/repo/src/sync/atomic_reduction.cpp" "src/CMakeFiles/ccsim.dir/sync/atomic_reduction.cpp.o" "gcc" "src/CMakeFiles/ccsim.dir/sync/atomic_reduction.cpp.o.d"
  "/root/repo/src/sync/barriers.cpp" "src/CMakeFiles/ccsim.dir/sync/barriers.cpp.o" "gcc" "src/CMakeFiles/ccsim.dir/sync/barriers.cpp.o.d"
  "/root/repo/src/sync/magic_sync.cpp" "src/CMakeFiles/ccsim.dir/sync/magic_sync.cpp.o" "gcc" "src/CMakeFiles/ccsim.dir/sync/magic_sync.cpp.o.d"
  "/root/repo/src/sync/mcs_lock.cpp" "src/CMakeFiles/ccsim.dir/sync/mcs_lock.cpp.o" "gcc" "src/CMakeFiles/ccsim.dir/sync/mcs_lock.cpp.o.d"
  "/root/repo/src/sync/reductions.cpp" "src/CMakeFiles/ccsim.dir/sync/reductions.cpp.o" "gcc" "src/CMakeFiles/ccsim.dir/sync/reductions.cpp.o.d"
  "/root/repo/src/sync/simple_locks.cpp" "src/CMakeFiles/ccsim.dir/sync/simple_locks.cpp.o" "gcc" "src/CMakeFiles/ccsim.dir/sync/simple_locks.cpp.o.d"
  "/root/repo/src/sync/ticket_lock.cpp" "src/CMakeFiles/ccsim.dir/sync/ticket_lock.cpp.o" "gcc" "src/CMakeFiles/ccsim.dir/sync/ticket_lock.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
