# Empty dependencies file for test_atomic_reduction.
# This may be replaced when dependencies are built.
