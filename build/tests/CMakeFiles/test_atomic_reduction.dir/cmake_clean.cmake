file(REMOVE_RECURSE
  "CMakeFiles/test_atomic_reduction.dir/test_atomic_reduction.cpp.o"
  "CMakeFiles/test_atomic_reduction.dir/test_atomic_reduction.cpp.o.d"
  "test_atomic_reduction"
  "test_atomic_reduction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_atomic_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
