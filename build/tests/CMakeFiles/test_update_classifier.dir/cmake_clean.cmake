file(REMOVE_RECURSE
  "CMakeFiles/test_update_classifier.dir/test_update_classifier.cpp.o"
  "CMakeFiles/test_update_classifier.dir/test_update_classifier.cpp.o.d"
  "test_update_classifier"
  "test_update_classifier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_update_classifier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
