# Empty compiler generated dependencies file for test_update_classifier.
# This may be replaced when dependencies are built.
