# Empty dependencies file for test_simple_locks.
# This may be replaced when dependencies are built.
