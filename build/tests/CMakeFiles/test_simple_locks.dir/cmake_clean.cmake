file(REMOVE_RECURSE
  "CMakeFiles/test_simple_locks.dir/test_simple_locks.cpp.o"
  "CMakeFiles/test_simple_locks.dir/test_simple_locks.cpp.o.d"
  "test_simple_locks"
  "test_simple_locks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simple_locks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
