file(REMOVE_RECURSE
  "CMakeFiles/test_miss_classifier.dir/test_miss_classifier.cpp.o"
  "CMakeFiles/test_miss_classifier.dir/test_miss_classifier.cpp.o.d"
  "test_miss_classifier"
  "test_miss_classifier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_miss_classifier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
