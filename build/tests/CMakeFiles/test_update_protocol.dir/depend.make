# Empty dependencies file for test_update_protocol.
# This may be replaced when dependencies are built.
