file(REMOVE_RECURSE
  "CMakeFiles/test_update_protocol.dir/test_update_protocol.cpp.o"
  "CMakeFiles/test_update_protocol.dir/test_update_protocol.cpp.o.d"
  "test_update_protocol"
  "test_update_protocol.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_update_protocol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
