file(REMOVE_RECURSE
  "CMakeFiles/test_flush.dir/test_flush.cpp.o"
  "CMakeFiles/test_flush.dir/test_flush.cpp.o.d"
  "test_flush"
  "test_flush.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_flush.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
