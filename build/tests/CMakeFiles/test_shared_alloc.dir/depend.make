# Empty dependencies file for test_shared_alloc.
# This may be replaced when dependencies are built.
