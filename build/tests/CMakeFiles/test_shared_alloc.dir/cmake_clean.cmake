file(REMOVE_RECURSE
  "CMakeFiles/test_shared_alloc.dir/test_shared_alloc.cpp.o"
  "CMakeFiles/test_shared_alloc.dir/test_shared_alloc.cpp.o.d"
  "test_shared_alloc"
  "test_shared_alloc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_shared_alloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
