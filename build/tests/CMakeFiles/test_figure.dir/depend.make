# Empty dependencies file for test_figure.
# This may be replaced when dependencies are built.
