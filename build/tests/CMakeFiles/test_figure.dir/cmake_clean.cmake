file(REMOVE_RECURSE
  "CMakeFiles/test_figure.dir/test_figure.cpp.o"
  "CMakeFiles/test_figure.dir/test_figure.cpp.o.d"
  "test_figure"
  "test_figure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_figure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
