file(REMOVE_RECURSE
  "CMakeFiles/test_magic_sync.dir/test_magic_sync.cpp.o"
  "CMakeFiles/test_magic_sync.dir/test_magic_sync.cpp.o.d"
  "test_magic_sync"
  "test_magic_sync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_magic_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
