# Empty dependencies file for test_magic_sync.
# This may be replaced when dependencies are built.
