# Empty compiler generated dependencies file for test_wi_protocol.
# This may be replaced when dependencies are built.
