file(REMOVE_RECURSE
  "CMakeFiles/test_wi_protocol.dir/test_wi_protocol.cpp.o"
  "CMakeFiles/test_wi_protocol.dir/test_wi_protocol.cpp.o.d"
  "test_wi_protocol"
  "test_wi_protocol.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wi_protocol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
