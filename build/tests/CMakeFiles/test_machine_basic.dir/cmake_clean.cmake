file(REMOVE_RECURSE
  "CMakeFiles/test_machine_basic.dir/test_machine_basic.cpp.o"
  "CMakeFiles/test_machine_basic.dir/test_machine_basic.cpp.o.d"
  "test_machine_basic"
  "test_machine_basic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_machine_basic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
