# Empty dependencies file for abl_reduction_atomic.
# This may be replaced when dependencies are built.
