file(REMOVE_RECURSE
  "CMakeFiles/abl_reduction_atomic.dir/abl_reduction_atomic.cpp.o"
  "CMakeFiles/abl_reduction_atomic.dir/abl_reduction_atomic.cpp.o.d"
  "abl_reduction_atomic"
  "abl_reduction_atomic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_reduction_atomic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
