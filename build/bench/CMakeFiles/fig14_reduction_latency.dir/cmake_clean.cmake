file(REMOVE_RECURSE
  "CMakeFiles/fig14_reduction_latency.dir/fig14_reduction_latency.cpp.o"
  "CMakeFiles/fig14_reduction_latency.dir/fig14_reduction_latency.cpp.o.d"
  "fig14_reduction_latency"
  "fig14_reduction_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_reduction_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
