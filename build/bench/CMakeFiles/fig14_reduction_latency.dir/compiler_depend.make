# Empty compiler generated dependencies file for fig14_reduction_latency.
# This may be replaced when dependencies are built.
