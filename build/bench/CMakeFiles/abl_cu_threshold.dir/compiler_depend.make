# Empty compiler generated dependencies file for abl_cu_threshold.
# This may be replaced when dependencies are built.
