file(REMOVE_RECURSE
  "CMakeFiles/abl_cu_threshold.dir/abl_cu_threshold.cpp.o"
  "CMakeFiles/abl_cu_threshold.dir/abl_cu_threshold.cpp.o.d"
  "abl_cu_threshold"
  "abl_cu_threshold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_cu_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
