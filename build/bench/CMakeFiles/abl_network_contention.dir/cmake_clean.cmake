file(REMOVE_RECURSE
  "CMakeFiles/abl_network_contention.dir/abl_network_contention.cpp.o"
  "CMakeFiles/abl_network_contention.dir/abl_network_contention.cpp.o.d"
  "abl_network_contention"
  "abl_network_contention.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_network_contention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
