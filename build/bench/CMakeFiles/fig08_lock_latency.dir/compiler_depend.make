# Empty compiler generated dependencies file for fig08_lock_latency.
# This may be replaced when dependencies are built.
