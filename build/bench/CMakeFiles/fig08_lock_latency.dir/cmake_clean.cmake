file(REMOVE_RECURSE
  "CMakeFiles/fig08_lock_latency.dir/fig08_lock_latency.cpp.o"
  "CMakeFiles/fig08_lock_latency.dir/fig08_lock_latency.cpp.o.d"
  "fig08_lock_latency"
  "fig08_lock_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_lock_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
