file(REMOVE_RECURSE
  "CMakeFiles/fig13_barrier_updates.dir/fig13_barrier_updates.cpp.o"
  "CMakeFiles/fig13_barrier_updates.dir/fig13_barrier_updates.cpp.o.d"
  "fig13_barrier_updates"
  "fig13_barrier_updates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_barrier_updates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
