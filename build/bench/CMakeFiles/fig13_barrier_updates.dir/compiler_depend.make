# Empty compiler generated dependencies file for fig13_barrier_updates.
# This may be replaced when dependencies are built.
