file(REMOVE_RECURSE
  "CMakeFiles/fig09_lock_misses.dir/fig09_lock_misses.cpp.o"
  "CMakeFiles/fig09_lock_misses.dir/fig09_lock_misses.cpp.o.d"
  "fig09_lock_misses"
  "fig09_lock_misses.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_lock_misses.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
