# Empty compiler generated dependencies file for fig09_lock_misses.
# This may be replaced when dependencies are built.
