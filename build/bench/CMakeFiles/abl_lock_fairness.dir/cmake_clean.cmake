file(REMOVE_RECURSE
  "CMakeFiles/abl_lock_fairness.dir/abl_lock_fairness.cpp.o"
  "CMakeFiles/abl_lock_fairness.dir/abl_lock_fairness.cpp.o.d"
  "abl_lock_fairness"
  "abl_lock_fairness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_lock_fairness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
