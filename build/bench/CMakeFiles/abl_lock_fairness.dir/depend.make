# Empty dependencies file for abl_lock_fairness.
# This may be replaced when dependencies are built.
