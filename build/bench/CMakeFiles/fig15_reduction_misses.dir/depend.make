# Empty dependencies file for fig15_reduction_misses.
# This may be replaced when dependencies are built.
