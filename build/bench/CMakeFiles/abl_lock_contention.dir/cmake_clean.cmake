file(REMOVE_RECURSE
  "CMakeFiles/abl_lock_contention.dir/abl_lock_contention.cpp.o"
  "CMakeFiles/abl_lock_contention.dir/abl_lock_contention.cpp.o.d"
  "abl_lock_contention"
  "abl_lock_contention.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_lock_contention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
