# Empty compiler generated dependencies file for abl_lock_contention.
# This may be replaced when dependencies are built.
