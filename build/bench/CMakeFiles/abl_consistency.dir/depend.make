# Empty dependencies file for abl_consistency.
# This may be replaced when dependencies are built.
