file(REMOVE_RECURSE
  "CMakeFiles/abl_consistency.dir/abl_consistency.cpp.o"
  "CMakeFiles/abl_consistency.dir/abl_consistency.cpp.o.d"
  "abl_consistency"
  "abl_consistency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_consistency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
