file(REMOVE_RECURSE
  "CMakeFiles/app_suite.dir/app_suite.cpp.o"
  "CMakeFiles/app_suite.dir/app_suite.cpp.o.d"
  "app_suite"
  "app_suite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/app_suite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
