# Empty compiler generated dependencies file for app_suite.
# This may be replaced when dependencies are built.
