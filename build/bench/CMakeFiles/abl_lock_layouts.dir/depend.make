# Empty dependencies file for abl_lock_layouts.
# This may be replaced when dependencies are built.
