file(REMOVE_RECURSE
  "CMakeFiles/abl_lock_layouts.dir/abl_lock_layouts.cpp.o"
  "CMakeFiles/abl_lock_layouts.dir/abl_lock_layouts.cpp.o.d"
  "abl_lock_layouts"
  "abl_lock_layouts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_lock_layouts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
