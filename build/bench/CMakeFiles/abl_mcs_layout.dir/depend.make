# Empty dependencies file for abl_mcs_layout.
# This may be replaced when dependencies are built.
