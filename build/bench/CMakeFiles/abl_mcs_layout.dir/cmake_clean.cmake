file(REMOVE_RECURSE
  "CMakeFiles/abl_mcs_layout.dir/abl_mcs_layout.cpp.o"
  "CMakeFiles/abl_mcs_layout.dir/abl_mcs_layout.cpp.o.d"
  "abl_mcs_layout"
  "abl_mcs_layout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_mcs_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
