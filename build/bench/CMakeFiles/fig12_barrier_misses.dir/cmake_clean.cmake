file(REMOVE_RECURSE
  "CMakeFiles/fig12_barrier_misses.dir/fig12_barrier_misses.cpp.o"
  "CMakeFiles/fig12_barrier_misses.dir/fig12_barrier_misses.cpp.o.d"
  "fig12_barrier_misses"
  "fig12_barrier_misses.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_barrier_misses.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
