# Empty dependencies file for fig12_barrier_misses.
# This may be replaced when dependencies are built.
