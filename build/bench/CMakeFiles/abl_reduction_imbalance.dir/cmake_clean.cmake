file(REMOVE_RECURSE
  "CMakeFiles/abl_reduction_imbalance.dir/abl_reduction_imbalance.cpp.o"
  "CMakeFiles/abl_reduction_imbalance.dir/abl_reduction_imbalance.cpp.o.d"
  "abl_reduction_imbalance"
  "abl_reduction_imbalance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_reduction_imbalance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
