# Empty compiler generated dependencies file for abl_reduction_imbalance.
# This may be replaced when dependencies are built.
