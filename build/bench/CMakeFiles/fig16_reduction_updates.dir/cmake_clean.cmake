file(REMOVE_RECURSE
  "CMakeFiles/fig16_reduction_updates.dir/fig16_reduction_updates.cpp.o"
  "CMakeFiles/fig16_reduction_updates.dir/fig16_reduction_updates.cpp.o.d"
  "fig16_reduction_updates"
  "fig16_reduction_updates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_reduction_updates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
