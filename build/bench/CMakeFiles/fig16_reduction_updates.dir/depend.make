# Empty dependencies file for fig16_reduction_updates.
# This may be replaced when dependencies are built.
