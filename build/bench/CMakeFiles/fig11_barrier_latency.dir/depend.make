# Empty dependencies file for fig11_barrier_latency.
# This may be replaced when dependencies are built.
