file(REMOVE_RECURSE
  "CMakeFiles/abl_lock_algos.dir/abl_lock_algos.cpp.o"
  "CMakeFiles/abl_lock_algos.dir/abl_lock_algos.cpp.o.d"
  "abl_lock_algos"
  "abl_lock_algos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_lock_algos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
