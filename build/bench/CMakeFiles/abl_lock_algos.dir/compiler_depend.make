# Empty compiler generated dependencies file for abl_lock_algos.
# This may be replaced when dependencies are built.
