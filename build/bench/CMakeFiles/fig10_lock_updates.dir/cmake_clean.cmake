file(REMOVE_RECURSE
  "CMakeFiles/fig10_lock_updates.dir/fig10_lock_updates.cpp.o"
  "CMakeFiles/fig10_lock_updates.dir/fig10_lock_updates.cpp.o.d"
  "fig10_lock_updates"
  "fig10_lock_updates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_lock_updates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
