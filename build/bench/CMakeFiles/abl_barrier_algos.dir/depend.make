# Empty dependencies file for abl_barrier_algos.
# This may be replaced when dependencies are built.
