file(REMOVE_RECURSE
  "CMakeFiles/abl_barrier_algos.dir/abl_barrier_algos.cpp.o"
  "CMakeFiles/abl_barrier_algos.dir/abl_barrier_algos.cpp.o.d"
  "abl_barrier_algos"
  "abl_barrier_algos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_barrier_algos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
