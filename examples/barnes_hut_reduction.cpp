// Barnes-Hut-style global reduction (the paper's motivating example: the
// parallel-reduction code of figure 6 "can be found in the Barnes-Hut
// application from the Splash2 suite").
//
// Each simulated processor integrates a chunk of bodies for several
// timesteps; after each timestep the processors reduce their local maximum
// velocity into a global one (used to pick the next dt). The example runs
// the same computation with a parallel (lock-based) and a sequential
// reduction under all three protocols and prints the comparison -- showing
// the paper's headline result: the best reduction strategy depends on the
// coherence protocol.
//
//   $ ./barnes_hut_reduction [nprocs] [timesteps]
#include "ccsim.hpp"

#include <iostream>

using namespace ccsim;

namespace {

struct Result {
  Cycle cycles;
  std::uint64_t final_max;
};

Result run(proto::Protocol p, unsigned nprocs, int steps, bool parallel) {
  harness::MachineConfig cfg;
  cfg.protocol = p;
  cfg.nprocs = nprocs;
  harness::Machine m(cfg);

  sync::TicketLock lock(m);        // real lock, real barrier: whole-app view
  sync::DisseminationBarrier barrier(m);
  sync::ParallelReduction par(m, lock, barrier);
  sync::SequentialReduction seq(m, barrier);

  // Per-processor "bodies": velocities evolve with a cheap deterministic
  // recurrence; the reduction input is each chunk's local maximum.
  const unsigned bodies_per_proc = 16;
  Result res{0, 0};
  std::uint64_t final_max = 0;

  res.cycles = m.run_all([&, steps](cpu::Cpu& c) -> sim::Task {
    sim::Rng rng(sim::Rng::derive(42, c.id()));
    std::uint64_t vel[16];
    for (auto& v : vel) v = rng.below(1000);

    for (int t = 0; t < steps; ++t) {
      // "Integrate": local work plus a velocity kick.
      std::uint64_t local_max = 0;
      for (unsigned b = 0; b < bodies_per_proc; ++b) {
        vel[b] += rng.below(50);
        local_max = std::max(local_max, vel[b]);
      }
      co_await c.think(bodies_per_proc * 8);  // force computation

      std::uint64_t global = 0;
      if (parallel)
        co_await par.reduce(c, local_max, &global);
      else
        co_await seq.reduce(c, local_max, &global);
      if (c.id() == 0) final_max = global;
    }
  });
  res.final_max = final_max;
  return res;
}

} // namespace

int main(int argc, char** argv) {
  const unsigned nprocs = argc > 1 ? static_cast<unsigned>(std::stoul(argv[1])) : 16;
  const int steps = argc > 2 ? std::stoi(argv[2]) : 200;

  std::cout << "Barnes-Hut-style max-velocity reduction, " << nprocs
            << " processors, " << steps << " timesteps\n\n";
  harness::Table t({"protocol", "parallel (cycles)", "sequential (cycles)", "winner"});
  for (proto::Protocol p :
       {proto::Protocol::WI, proto::Protocol::PU, proto::Protocol::CU}) {
    const Result par = run(p, nprocs, steps, /*parallel=*/true);
    const Result seq = run(p, nprocs, steps, /*parallel=*/false);
    if (par.final_max != seq.final_max) {
      std::cerr << "reduction mismatch!\n";
      return 1;
    }
    t.add_row({std::string(proto::to_string(p)), harness::Table::num(par.cycles),
               harness::Table::num(seq.cycles),
               par.cycles < seq.cycles ? "parallel" : "sequential"});
  }
  t.print(std::cout);
  std::cout << "\nRead it both ways: fixing the implementation, the protocol "
               "changes the cost several-fold; fixing the protocol, the "
               "implementation changes the gap (and, with tight synchronization "
               "-- see bench/fig14 -- the winner). Constructs and protocols "
               "must be chosen together: the paper's central point.\n";
  return 0;
}
