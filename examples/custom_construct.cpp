// Writing your own synchronization construct against the CPU API.
//
// This example implements a construct that is NOT in the library -- a
// sense-reversing COUNTING SEMAPHORE-style combining barrier ("tournament
// barrier", pairwise rounds) -- using only public primitives (loads,
// stores, spin_until, fences, shared allocation), then validates it and
// compares its traffic signature against the library's barriers under two
// protocols.
//
//   $ ./custom_construct [nprocs]
#include "ccsim.hpp"

#include <bit>
#include <iostream>

using namespace ccsim;

namespace {

/// Tournament barrier: in round k, processor i with i % 2^(k+1) == 0 is a
/// "winner" that waits for the "loser" i + 2^k to signal; the overall
/// champion (processor 0) toggles a global release flag everyone spins on.
/// Flags are block-padded and homed at their spinners, following the same
/// placement discipline as the library's dissemination barrier.
class TournamentBarrier final : public sync::Barrier {
public:
  explicit TournamentBarrier(harness::Machine& m)
      : parties_(m.nprocs()),
        rounds_(parties_ > 1 ? std::bit_width(parties_ - 1) : 0),
        sense_(parties_, 1) {
    arrival_.reserve(parties_);
    for (NodeId i = 0; i < parties_; ++i)
      arrival_.push_back(m.alloc().allocate_on(i, std::max<unsigned>(rounds_, 1) *
                                                      mem::kBlockSize));
    release_ = m.alloc().allocate_on(0, mem::kWordSize);
    m.poke(release_, 0);
  }

  sim::Task wait(cpu::Cpu& c) override {
    const NodeId i = c.id();
    const std::uint64_t sense = sense_[i];
    bool dropped_out = false;
    for (unsigned k = 0; k < rounds_ && !dropped_out; ++k) {
      const unsigned span = 1u << (k + 1);
      if (i % span == 0) {
        const NodeId loser = i + (1u << k);
        if (loser < parties_) {
          // Winner: wait for the loser's arrival signal for this round.
          co_await c.spin_until(arrival_flag(i, k), [sense](std::uint64_t v) {
            return v == sense;
          });
        }
      } else {
        // Loser: signal the winner, then wait for the global release.
        const NodeId winner = i - (i % span);
        co_await c.fence();  // release everything done before the barrier
        co_await c.store(arrival_flag(winner, k), sense);
        dropped_out = true;
      }
    }
    if (i == 0) {
      co_await c.fence();
      co_await c.store(release_, sense);
    } else {
      co_await c.spin_until(release_,
                            [sense](std::uint64_t v) { return v == sense; });
    }
    sense_[i] ^= 1u;
  }

private:
  [[nodiscard]] Addr arrival_flag(NodeId winner, unsigned round) const {
    return arrival_[winner] + round * mem::kBlockSize;
  }

  unsigned parties_;
  unsigned rounds_;
  std::vector<Addr> arrival_;
  Addr release_;
  std::vector<std::uint64_t> sense_;
};

struct Probe {
  Cycle per_episode;
  stats::Counters counters;
};

template <typename MakeBarrier>
Probe probe(proto::Protocol p, unsigned nprocs, MakeBarrier make) {
  harness::MachineConfig cfg;
  cfg.protocol = p;
  cfg.nprocs = nprocs;
  harness::Machine m(cfg);
  auto barrier = make(m);
  const int episodes = 300;
  // Validate separation while measuring.
  std::vector<int> arrived(nprocs, 0);
  const Cycle cycles = m.run_all([&](cpu::Cpu& c) -> sim::Task {
    for (int e = 0; e < episodes; ++e) {
      arrived[c.id()] = e + 1;
      co_await c.think(1 + (c.id() * 11 + e * 3) % 30);
      co_await barrier->wait(c);
      for (unsigned q = 0; q < m.nprocs(); ++q) {
        if (arrived[q] < e + 1) throw std::logic_error("barrier separation violated");
      }
    }
  });
  return {cycles / episodes, m.counters()};
}

} // namespace

int main(int argc, char** argv) {
  const unsigned nprocs = argc > 1 ? static_cast<unsigned>(std::stoul(argv[1])) : 16;
  std::cout << "Custom tournament barrier vs library barriers, " << nprocs
            << " processors\n\n";

  harness::Table t({"barrier/proto", "cycles/episode", "misses", "updates",
                    "useful-upd"});
  for (proto::Protocol p : {proto::Protocol::WI, proto::Protocol::PU}) {
    const auto tour = probe(p, nprocs, [](harness::Machine& m) {
      return std::make_unique<TournamentBarrier>(m);
    });
    const auto diss = probe(p, nprocs, [](harness::Machine& m) {
      return std::make_unique<sync::DisseminationBarrier>(m);
    });
    const auto cent = probe(p, nprocs, [](harness::Machine& m) {
      return std::make_unique<sync::CentralBarrier>(m);
    });
    const std::string tag = std::string(proto::to_string(p));
    const auto row = [&](const char* name, const Probe& pr) {
      t.add_row({name + ("/" + tag), harness::Table::num(pr.per_episode),
                 harness::Table::num(pr.counters.misses.total()),
                 harness::Table::num(pr.counters.updates.total()),
                 harness::Table::num(pr.counters.updates.useful())});
    };
    row("tournament", tour);
    row("dissemination", diss);
    row("central", cent);
  }
  t.print(std::cout);
  std::cout << "\nAnything implementing sync::Barrier plugs into the same "
               "harness, classifiers and workloads as the built-ins.\n";
  return 0;
}
