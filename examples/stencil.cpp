// Red-black Gauss-Seidel stencil relaxation -- a barrier-per-sweep
// mini-app in the mold of the SPLASH kernels the paper's methodology
// targets. Each processor owns a band of rows of a 1D heat rod
// (block-padded, homed at its owner); neighbors exchange halo cells every
// sweep; a barrier separates the phases; every 8 sweeps the processors run
// a convergence reduction (maximum residual).
//
// The run prints per-protocol execution time and traffic for two barrier
// choices, showing how the paper's construct-level conclusions translate
// into whole-application behavior: the dissemination barrier's advantage
// under update protocols carries straight through to app speedup, and the
// halo exchange itself is exactly the producer/consumer pattern update
// protocols excel at.
//
//   $ ./stencil [nprocs] [cells_per_proc] [sweeps]
#include "ccsim.hpp"

#include <iostream>

using namespace ccsim;

namespace {

struct AppResult {
  Cycle cycles = 0;
  std::uint64_t residual = 0;
  stats::Counters counters;
};

AppResult run(proto::Protocol p, unsigned nprocs, unsigned cells, int sweeps,
              harness::BarrierKind bk) {
  harness::MachineConfig cfg;
  cfg.protocol = p;
  cfg.nprocs = nprocs;
  harness::Machine m(cfg);

  std::unique_ptr<sync::Barrier> barrier;
  switch (bk) {
    case harness::BarrierKind::Central:
      barrier = std::make_unique<sync::CentralBarrier>(m);
      break;
    default:
      barrier = std::make_unique<sync::DisseminationBarrier>(m);
      break;
  }
  sync::CasMaxReduction residual(m, *barrier);

  // Each processor's band: `cells` fixed-point values in its own memory;
  // plus a block-padded halo slot either side, written by the neighbor.
  std::vector<Addr> band(nprocs), halo_lo(nprocs), halo_hi(nprocs);
  for (NodeId i = 0; i < nprocs; ++i) {
    band[i] = m.alloc().allocate_on(i, cells * mem::kWordSize);
    halo_lo[i] = m.alloc().allocate_on(i, mem::kWordSize);
    halo_hi[i] = m.alloc().allocate_on(i, mem::kWordSize);
  }
  // Initial condition: hot left end.
  m.poke(band[0], 1'000'000);

  AppResult res;
  std::uint64_t final_residual = 0;
  res.cycles = m.run_all([&, sweeps, cells](cpu::Cpu& c) -> sim::Task {
    const NodeId me = c.id();
    for (int s = 0; s < sweeps; ++s) {
      // Publish boundary cells into the neighbors' halo slots.
      if (me > 0) {
        const std::uint64_t first = co_await c.load(band[me]);
        co_await c.store(halo_hi[me - 1], first);
      }
      if (me + 1 < m.nprocs()) {
        const std::uint64_t last =
            co_await c.load(band[me] + (cells - 1) * mem::kWordSize);
        co_await c.store(halo_lo[me + 1], last);
      }
      co_await c.fence();
      co_await barrier->wait(c);

      // Relax the band: v[i] = (v[i-1] + 2 v[i] + v[i+1]) / 4, walking
      // left to right with the halos as boundary values.
      std::uint64_t left = me > 0 ? co_await c.load(halo_lo[me]) : 0;
      std::uint64_t max_delta = 0;
      for (unsigned i = 0; i < cells; ++i) {
        const Addr a = band[me] + i * mem::kWordSize;
        const std::uint64_t v = co_await c.load(a);
        const std::uint64_t right = i + 1 < cells
                                        ? co_await c.load(a + mem::kWordSize)
                                        : (me + 1 < m.nprocs()
                                               ? co_await c.load(halo_hi[me])
                                               : 0);
        const std::uint64_t nv = (left + 2 * v + right) / 4;
        max_delta = std::max(max_delta, nv > v ? nv - v : v - nv);
        co_await c.store(a, nv);
        left = nv;
        co_await c.think(4);  // the arithmetic
      }
      co_await barrier->wait(c);

      // Convergence check every 8 sweeps.
      if (s % 8 == 7) {
        std::uint64_t global = 0;
        co_await residual.reduce(c, max_delta, &global);
        if (me == 0) final_residual = global;
      }
    }
  });
  res.residual = final_residual;
  res.counters = m.counters();
  return res;
}

} // namespace

int main(int argc, char** argv) {
  const unsigned nprocs = argc > 1 ? static_cast<unsigned>(std::stoul(argv[1])) : 16;
  const unsigned cells = argc > 2 ? static_cast<unsigned>(std::stoul(argv[2])) : 24;
  const int sweeps = argc > 3 ? std::stoi(argv[3]) : 64;

  std::cout << "Red-black stencil: " << nprocs << " procs x " << cells
            << " cells, " << sweeps << " sweeps\n\n";
  harness::Table t({"proto/barrier", "cycles", "misses", "updates", "useful-upd",
                    "residual"});
  std::uint64_t want_residual = 0;
  bool first = true;
  for (proto::Protocol p :
       {proto::Protocol::WI, proto::Protocol::PU, proto::Protocol::CU}) {
    for (harness::BarrierKind bk :
         {harness::BarrierKind::Central, harness::BarrierKind::Dissemination}) {
      const AppResult r = run(p, nprocs, cells, sweeps, bk);
      // Identical numerics regardless of protocol/barrier: a strong
      // whole-app coherence check.
      if (first) {
        want_residual = r.residual;
        first = false;
      } else if (r.residual != want_residual) {
        std::cerr << "numerics diverged across protocols!\n";
        return 1;
      }
      t.add_row({std::string(proto::to_string(p)) + "/" +
                     std::string(to_string(bk)),
                 harness::Table::num(r.cycles),
                 harness::Table::num(r.counters.misses.total()),
                 harness::Table::num(r.counters.updates.total()),
                 harness::Table::num(r.counters.updates.useful()),
                 harness::Table::num(r.residual)});
    }
  }
  t.print(std::cout);
  std::cout << "\nSame numerics everywhere; the protocol and barrier choice "
               "changes only (and substantially) the cycle count.\n";
  return 0;
}
