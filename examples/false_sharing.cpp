// False sharing, demonstrated and diagnosed by the sharing classifier.
//
// Two runs of the same program: every processor repeatedly increments its
// own private counter -- no data is logically shared. In the "unpadded"
// layout the counters are packed one word apart, so eight of them land in
// each 64-byte block and the block ping-pongs between writers; in the
// "padded" layout each counter gets its own block. The --sharing tracker
// classifies the packed blocks as false-shared (word-disjoint accessors in
// one block) and the padded ones as private, and its projected costs show
// what the padding buys.
//
//   $ ./false_sharing [--procs N] [--iters N]
//
// Exits nonzero if the classifier misses the diagnosis (the padded layout
// must come out clean); tests/test_examples runs it that way.
#include "ccsim.hpp"

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

using namespace ccsim;

namespace {

struct Layout {
  const char* label;
  obs::SharingReport report;
  Cycle cycles = 0;
};

/// Run the increment loop with counter i at `base + i * stride` and return
/// the run's sharing report.
Layout run_layout(const char* label, unsigned procs, int iters,
                  std::size_t stride) {
  harness::MachineConfig cfg;
  cfg.nprocs = procs;
  cfg.protocol = proto::Protocol::WI;
  cfg.obs.sharing = true;
  harness::Machine m(cfg);

  const Addr base = m.alloc().allocate_on(
      0, procs * stride, stride >= mem::kBlockSize ? "counters.padded"
                                                   : "counters.unpadded");
  Layout out;
  out.label = label;
  out.cycles = m.run_all([&](cpu::Cpu& c) -> sim::Task {
    const Addr mine = base + c.id() * stride;
    for (int i = 0; i < iters; ++i) {
      const std::uint64_t v = co_await c.load(mine);
      co_await c.store(mine, v + 1);
      co_await c.think(20);
    }
  });
  out.report = m.sharing_report();
  return out;
}

/// Every block of the allocation must carry the expected pattern.
bool all_blocks(const obs::SharingReport& r, obs::SharingPattern want) {
  bool any = false;
  for (const obs::SharingReport::Row& row : r.blocks) {
    any = true;
    if (row.pattern != want) return false;
  }
  return any;
}

} // namespace

int main(int argc, char** argv) {
  unsigned procs = 8;
  int iters = 200;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind("--procs=", 0) == 0) {
      procs = static_cast<unsigned>(std::atoi(a.c_str() + 8));
    } else if (a.rfind("--iters=", 0) == 0) {
      iters = std::atoi(a.c_str() + 8);
    } else {
      std::cerr << "usage: false_sharing [--procs=N] [--iters=N]\n";
      return 2;
    }
  }
  if (procs == 0 || procs > mem::kWordsPerBlock * 4 || iters <= 0) {
    std::cerr << "error: procs must be in [1, "
              << mem::kWordsPerBlock * 4 << "], iters positive\n";
    return 2;
  }

  const Layout unpadded =
      run_layout("unpadded", procs, iters, mem::kWordSize);
  const Layout padded =
      run_layout("padded", procs, iters, mem::kBlockSize);

  for (const Layout* l : {&unpadded, &padded}) {
    std::cout << l->label << ": " << l->cycles << " cycles\n";
    stats::print_sharing(std::cout, l->report);
    std::cout << '\n';
  }
  const double speedup = padded.cycles != 0
                             ? static_cast<double>(unpadded.cycles) /
                                   static_cast<double>(padded.cycles)
                             : 0.0;
  std::cout << "padding speedup: " << speedup << "x\n";

  // The diagnosis the example exists to demonstrate. With one processor
  // there is no sharing at all, so both layouts must come out private.
  const obs::SharingPattern packed_want =
      procs > 1 ? obs::SharingPattern::FalseShared : obs::SharingPattern::Private;
  if (!all_blocks(unpadded.report, packed_want)) {
    std::cerr << "FAIL: unpadded layout not classified false-shared\n";
    return 1;
  }
  if (!all_blocks(padded.report, obs::SharingPattern::Private)) {
    std::cerr << "FAIL: padded layout not classified private\n";
    return 1;
  }
  std::cout << "OK: unpadded flagged "
            << obs::to_string(packed_want) << ", padded clean\n";
  return 0;
}
