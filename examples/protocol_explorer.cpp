// Protocol explorer: run any construct under any protocol at any machine
// size and print the latency plus full categorized traffic -- the tool for
// answering "which implementation should I use on THIS machine?"
//
//   $ ./protocol_explorer <lock|barrier|reduction> <impl> <WI|PU|CU> [P]
//
//   impl: ticket | mcs | ucmcs        (locks)
//         central | dissem | tree     (barriers)
//         parallel | sequential       (reductions)
//
//   $ ./protocol_explorer lock mcs CU 32
//   $ ./protocol_explorer barrier dissem PU 16
#include "ccsim.hpp"

#include <iostream>
#include <string>

using namespace ccsim;

namespace {

int usage() {
  std::cerr << "usage: protocol_explorer <lock|barrier|reduction> <impl> "
               "<WI|PU|CU> [nprocs]\n"
               "  lock impls:      ticket mcs ucmcs\n"
               "  barrier impls:   central dissem tree\n"
               "  reduction impls: parallel sequential\n";
  return 1;
}

proto::Protocol parse_protocol(const std::string& s) {
  if (s == "WI" || s == "wi") return proto::Protocol::WI;
  if (s == "PU" || s == "pu") return proto::Protocol::PU;
  if (s == "CU" || s == "cu") return proto::Protocol::CU;
  throw std::invalid_argument("unknown protocol: " + s);
}

} // namespace

int main(int argc, char** argv) {
  if (argc < 4) return usage();
  const std::string family = argv[1];
  const std::string impl = argv[2];

  harness::MachineConfig cfg;
  try {
    cfg.protocol = parse_protocol(argv[3]);
    cfg.nprocs = argc > 4 ? static_cast<unsigned>(std::stoul(argv[4])) : 32;

    harness::RunResult r;
    std::string metric;
    if (family == "lock") {
      harness::LockKind k;
      if (impl == "ticket")
        k = harness::LockKind::Ticket;
      else if (impl == "mcs")
        k = harness::LockKind::Mcs;
      else if (impl == "ucmcs")
        k = harness::LockKind::UcMcs;
      else
        return usage();
      r = harness::run_lock_experiment(cfg, k, {.total_acquires = 3200});
      metric = "avg acquire-release latency";
    } else if (family == "barrier") {
      harness::BarrierKind k;
      if (impl == "central")
        k = harness::BarrierKind::Central;
      else if (impl == "dissem")
        k = harness::BarrierKind::Dissemination;
      else if (impl == "tree")
        k = harness::BarrierKind::Tree;
      else
        return usage();
      r = harness::run_barrier_experiment(cfg, k, {.episodes = 500});
      metric = "avg barrier episode latency";
    } else if (family == "reduction") {
      harness::ReductionKind k;
      if (impl == "parallel")
        k = harness::ReductionKind::Parallel;
      else if (impl == "sequential")
        k = harness::ReductionKind::Sequential;
      else
        return usage();
      r = harness::run_reduction_experiment(cfg, k, {.rounds = 500});
      metric = "avg reduction latency";
    } else {
      return usage();
    }

    std::cout << family << "/" << impl << " under " << proto::to_string(cfg.protocol)
              << " on " << cfg.nprocs << " processors\n";
    std::cout << metric << ": " << r.avg_latency << " cycles\n";
    std::cout << "total simulated cycles: " << r.cycles << "\n\n";
    stats::print_report(std::cout, r.counters);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
  return 0;
}
