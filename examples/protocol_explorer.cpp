// Protocol explorer: run any construct under any protocol at any machine
// size and print the latency plus full categorized traffic -- the tool for
// answering "which implementation should I use on THIS machine?"
//
//   $ ./protocol_explorer <lock|barrier|reduction> <impl> <WI|PU|CU> [P] [obs flags]
//
//   impl: ticket | mcs | ucmcs        (locks)
//         central | dissem | tree     (barriers)
//         parallel | sequential       (reductions)
//
//   Observability flags (--json, --trace-out, --trace-format,
//   --sample-interval, --hot-top) are accepted after the positionals.
//
//   $ ./protocol_explorer lock mcs CU 32
//   $ ./protocol_explorer barrier dissem PU 16 --json mcs.json --trace-out t.json
#include "ccsim.hpp"
#include "harness/obs_session.hpp"

#include <iostream>
#include <string>

using namespace ccsim;

namespace {

int usage() {
  std::cerr << "usage: protocol_explorer <lock|barrier|reduction> <impl> "
               "<WI|PU|CU> [nprocs] [--json FILE] [--trace-out FILE]\n"
               "                         [--trace-format ring|jsonl|perfetto] "
               "[--sample-interval N] [--hot-top K]\n"
               "  lock impls:      ticket mcs ucmcs\n"
               "  barrier impls:   central dissem tree\n"
               "  reduction impls: parallel sequential\n";
  return 1;
}

proto::Protocol parse_protocol(const std::string& s) {
  if (s == "WI" || s == "wi") return proto::Protocol::WI;
  if (s == "PU" || s == "pu") return proto::Protocol::PU;
  if (s == "CU" || s == "cu") return proto::Protocol::CU;
  throw std::invalid_argument("unknown protocol: " + s);
}

} // namespace

int main(int argc, char** argv) {
  if (argc < 4) return usage();
  const std::string family = argv[1];
  const std::string impl = argv[2];

  harness::MachineConfig cfg;
  try {
    cfg.protocol = parse_protocol(argv[3]);
    int i = 4;
    if (i < argc && argv[i][0] != '-') {
      cfg.nprocs = static_cast<unsigned>(std::stoul(argv[i]));
      ++i;
    }
    harness::ObsOptions obs_opts;
    for (; i < argc; ++i)
      if (!harness::parse_obs_arg(obs_opts, argc, argv, i)) return usage();
    harness::ObsSession obs(obs_opts, "protocol_explorer");
    obs.configure(cfg, family + "/" + impl + "/" +
                           std::string(proto::to_string(cfg.protocol)));

    harness::RunResult r;
    std::string metric;
    if (family == "lock") {
      harness::LockKind k;
      if (impl == "ticket")
        k = harness::LockKind::Ticket;
      else if (impl == "mcs")
        k = harness::LockKind::Mcs;
      else if (impl == "ucmcs")
        k = harness::LockKind::UcMcs;
      else
        return usage();
      r = harness::run_lock_experiment(cfg, k, {.total_acquires = 3200});
      metric = "avg acquire-release latency";
    } else if (family == "barrier") {
      harness::BarrierKind k;
      if (impl == "central")
        k = harness::BarrierKind::Central;
      else if (impl == "dissem")
        k = harness::BarrierKind::Dissemination;
      else if (impl == "tree")
        k = harness::BarrierKind::Tree;
      else
        return usage();
      r = harness::run_barrier_experiment(cfg, k, {.episodes = 500});
      metric = "avg barrier episode latency";
    } else if (family == "reduction") {
      harness::ReductionKind k;
      if (impl == "parallel")
        k = harness::ReductionKind::Parallel;
      else if (impl == "sequential")
        k = harness::ReductionKind::Sequential;
      else
        return usage();
      r = harness::run_reduction_experiment(cfg, k, {.rounds = 500});
      metric = "avg reduction latency";
    } else {
      return usage();
    }

    std::cout << family << "/" << impl << " under " << proto::to_string(cfg.protocol)
              << " on " << cfg.nprocs << " processors\n";
    std::cout << metric << ": " << r.avg_latency << " cycles\n";
    std::cout << "total simulated cycles: " << r.cycles << "\n\n";
    stats::print_report(std::cout, r.counters);
    if (!r.hot.empty()) {
      std::cout << "\nhottest blocks (by attributed traffic):\n";
      for (const auto& row : r.hot) {
        std::cout << "  0x" << std::hex << row.base << std::dec;
        if (!row.name.empty()) std::cout << " (" << row.name << ")";
        std::cout << ": score=" << row.cell.score()
                  << " misses=" << row.cell.miss_total()
                  << " updates=" << row.cell.update_total()
                  << " invals=" << row.cell.invals
                  << " home_txns=" << row.cell.home_txns << "\n";
      }
    }
    obs.record(r);
    obs.finish();
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
  return 0;
}
