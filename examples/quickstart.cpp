// Quickstart: build a 4-processor machine under the competitive-update
// protocol, run a ticket-lock-protected shared counter, and print the run's
// timing and categorized traffic.
//
//   $ ./quickstart
#include "ccsim.hpp"

#include <iostream>

using namespace ccsim;

int main() {
  // 1. Configure the machine (paper defaults: 64 KB direct-mapped caches,
  //    64 B blocks, 4-entry write buffers, CU threshold 4).
  harness::MachineConfig cfg;
  cfg.nprocs = 4;
  cfg.protocol = proto::Protocol::CU;
  harness::Machine m(cfg);

  // 2. Allocate shared data and build a synchronization construct.
  //    allocate_on() places data on a chosen home node (block-aligned).
  const Addr counter = m.alloc().allocate_on(/*home=*/0, 8);
  sync::TicketLock lock(m);

  // 3. Write the per-processor program as a coroutine: every shared-memory
  //    operation is a co_await with full protocol timing.
  const int iters = 100;
  const Cycle total = m.run_all([&](cpu::Cpu& c) -> sim::Task {
    for (int i = 0; i < iters; ++i) {
      co_await lock.acquire(c);
      const std::uint64_t v = co_await c.load(counter);
      co_await c.store(counter, v + 1);
      co_await lock.release(c);
      co_await c.think(50);  // local work outside the critical section
    }
  });

  // 4. Inspect the results.
  std::cout << "final counter: " << m.peek(counter) << " (expected "
            << iters * cfg.nprocs << ")\n";
  std::cout << "simulated cycles: " << total << "\n\n";
  stats::print_report(std::cout, m.counters());
  return 0;
}
