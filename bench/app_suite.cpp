// Application-level protocol comparison: the four kernels under the three
// protocols, with correctness enforced on every run. This is the paper's
// bottom line exercised end to end: construct and protocol choices visible
// in whole-application cycles, not just microbenchmark latencies.
#include "apps/kernels.hpp"
#include "bench_common.hpp"

using namespace ccbench;

namespace {

void body(const harness::BenchOptions& opts, harness::ObsSession& obs) {
  const unsigned p = opts.procs.back();
  harness::Table t({"kernel/proto", "cycles", "misses", "updates", "useful-upd"});

  // The kernels build their MachineConfig internally, so the session's
  // settings travel through a scratch config's ObsConfig.
  harness::MachineConfig ocfg;
  const auto emit = [&](const std::string& name, auto&& run_kernel) {
    obs.configure(ocfg, name);
    const apps::KernelResult r = run_kernel(&ocfg.obs);
    if (!r.correct) throw std::runtime_error(name + ": oracle check FAILED");
    harness::RunResult rr;
    rr.cycles = r.cycles;
    rr.counters = r.counters;
    rr.samples = r.samples;
    rr.hot = r.hot;
    obs.record(rr);
    t.add_row({name, harness::Table::num(r.cycles),
               harness::Table::num(r.counters.misses.total()),
               harness::Table::num(r.counters.updates.total()),
               harness::Table::num(r.counters.updates.useful())});
  };

  for (proto::Protocol proto : kProtocols) {
    const std::string tag = std::string(proto::to_string(proto));
    apps::SorParams sor;
    sor.sweeps = static_cast<int>(opts.scaled(640));
    emit("sor/" + tag, [&](const harness::ObsConfig* o) {
      return apps::run_sor(proto, p, sor, o);
    });

    apps::HistogramParams hist;
    hist.items_per_proc = static_cast<unsigned>(opts.scaled(1280));
    emit("histogram/" + tag, [&](const harness::ObsConfig* o) {
      return apps::run_histogram(proto, p, hist, o);
    });

    apps::NbodyParams nb;
    nb.steps = static_cast<int>(opts.scaled(320));
    emit("nbody-pr/" + tag, [&](const harness::ObsConfig* o) {
      return apps::run_nbody_step(proto, p, nb, o);
    });
    nb.parallel_reduction = false;
    emit("nbody-sr/" + tag, [&](const harness::ObsConfig* o) {
      return apps::run_nbody_step(proto, p, nb, o);
    });

    apps::PipelineParams pipe;
    pipe.items = static_cast<unsigned>(opts.scaled(2560));
    emit("pipeline/" + tag, [&](const harness::ObsConfig* o) {
      return apps::run_pipeline(proto, p, pipe, o);
    });

    apps::MatmulParams mat;
    mat.dim = 16;
    emit("matmul/" + tag, [&](const harness::ObsConfig* o) {
      return apps::run_matmul(proto, p, mat, o);
    });
  }
  print_table(t, opts);
}

} // namespace

int main(int argc, char** argv) {
  return bench_main(argc, argv,
                    "Application kernel suite across protocols (P=32, "
                    "oracle-checked)",
                    body);
}
