// Host-performance micro-benchmarks of the simulator's hot paths
// (google-benchmark): event kernel throughput, network send/deliver,
// cache lookups, and end-to-end simulated-cycles-per-host-second.
#include "ccsim.hpp"

#include <benchmark/benchmark.h>

namespace {

using namespace ccsim;

void BM_EventQueueChurn(benchmark::State& state) {
  for (auto _ : state) {
    sim::EventQueue q;
    int count = 0;
    std::function<void()> chain = [&] {
      if (++count < 1000) q.schedule(1, chain);
    };
    q.schedule(1, chain);
    q.run();
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueChurn);

void BM_EventQueueFanOut(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::EventQueue q;
    for (int i = 0; i < n; ++i) q.schedule_at(static_cast<Cycle>(i % 64), [] {});
    q.run();
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventQueueFanOut)->Arg(1024)->Arg(16384);

void BM_NetworkSend(benchmark::State& state) {
  struct Sink final : net::MessageSink {
    void deliver(const net::Message&) override {}
  };
  sim::EventQueue q;
  net::Network net(q, net::MeshTopology(32), {}, nullptr);
  Sink sink;
  for (NodeId i = 0; i < 32; ++i) net.attach(i, sink);
  net::Message m;
  m.type = net::MsgType::Update;
  m.addr = mem::kSharedBase;
  std::uint64_t i = 0;
  for (auto _ : state) {
    m.src = static_cast<NodeId>(i % 32);
    m.dst = static_cast<NodeId>((i * 7 + 3) % 32);
    net.send(m);
    ++i;
    if (i % 4096 == 0) q.run();
  }
  q.run();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NetworkSend);

void BM_CacheLookup(benchmark::State& state) {
  mem::DataCache cache(64 * 1024);
  for (mem::BlockAddr b = 0; b < 1024; ++b) {
    auto& l = cache.set_for(b);
    l.block = b;
    l.state = mem::LineState::Shared;
  }
  std::uint64_t i = 0, hits = 0;
  for (auto _ : state) {
    hits += cache.find((i * 37) % 2048) != nullptr;
    ++i;
  }
  benchmark::DoNotOptimize(hits);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheLookup);

void BM_EndToEndLockWorkload(benchmark::State& state) {
  // Simulated cycles per host-second for the densest workload we have.
  std::uint64_t simulated = 0;
  for (auto _ : state) {
    harness::MachineConfig cfg;
    cfg.protocol = proto::Protocol::CU;
    cfg.nprocs = 16;
    const auto r = harness::run_lock_experiment(cfg, harness::LockKind::Ticket,
                                                {.total_acquires = 1600});
    simulated += r.cycles;
  }
  state.counters["sim_cycles"] =
      benchmark::Counter(static_cast<double>(simulated), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_EndToEndLockWorkload)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
