// Bench-trajectory writer: the figure suite distilled into one JSON file.
//
// Runs the paper's three synthetic programs (locks, barriers, reductions --
// figures 8, 11, 14) for every construct under WI / PU / CU with the
// cycle-accounting profiler attached, and writes a schema-versioned
// trajectory document (see src/harness/trajectory.hpp): per benchmark the
// total cycles, the paper's latency metric, p50/p99 operation latencies,
// and the per-category cycle breakdown. tools/bench_compare diffs two such
// documents; CI regenerates one per push and compares it against the
// committed BENCH_ppopp97.json baseline.
//
//   run_trajectory [--out=FILE] [--scale=X] [--procs=a,b] [--paper]
//                  [--jobs=N] [--host-metrics] [--progress] [--quiet]
//
// Defaults: --out=BENCH_ppopp97.json, --scale=0.02, --procs=16, --jobs=1.
// --progress paints a live stderr cell counter (TTY only; progress is
// presentation, not data, so the written document is unaffected) and
// --quiet suppresses the final "wrote N benchmarks" confirmation.
// --host-metrics additionally records per-entry host throughput (ms,
// cycles/sec, events/sec) so bench_compare can gate simulator-throughput
// drops; host readings are wall-clock, so a --host-metrics document is NOT
// byte-reproducible and the committed baseline is written without it.
// The simulator is deterministic and the suite's cells are independent
// simulations, so --jobs=N fans them out over the sweep engine with
// byte-identical output for every N (the committed baseline can be
// regenerated at full parallelism); a given tree always produces the
// same bytes and the baseline can be compared exactly.
#include "bench_common.hpp"
#include "harness/progress.hpp"
#include "harness/sweep.hpp"
#include "harness/trajectory.hpp"

#include <fstream>
#include <iostream>

using namespace ccbench;

namespace {

harness::TrajectoryEntry make_entry(std::string name, const harness::RunResult& r) {
  harness::TrajectoryEntry e;
  e.name = std::move(name);
  e.cycles = r.cycles;
  e.avg_latency = r.avg_latency;
  e.p50 = static_cast<double>(r.latency.percentile(0.50));
  e.p99 = static_cast<double>(r.latency.percentile(0.99));
  if (r.profile.enabled()) {
    const auto totals = r.profile.totals();
    e.breakdown.assign(totals.begin(), totals.end());
  }
  if (r.host.enabled()) {
    e.has_host = true;
    e.host_ms = r.host.ms();
    e.cycles_per_sec = r.host.cycles_per_sec();
    e.events_per_sec = r.host.events_per_sec();
  }
  return e;
}

std::string point_name(std::string_view fig, std::string_view tag,
                       proto::Protocol proto, unsigned p) {
  std::string s{fig};
  s += '/';
  s += tag;
  s += '/';
  s += proto::to_string(proto);
  s += "/p";
  s += std::to_string(p);
  return s;
}

harness::MachineConfig machine(proto::Protocol proto, unsigned p,
                               bool host_metrics) {
  harness::MachineConfig cfg;
  cfg.protocol = proto;
  cfg.nprocs = p;
  cfg.obs.profile = true;  // the breakdown vector is part of the document
  cfg.obs.host_metrics = host_metrics;
  return cfg;
}

std::vector<harness::SweepJob> suite_jobs(const harness::BenchOptions& opts) {
  std::vector<harness::SweepJob> jobs;
  for (proto::Protocol proto : kProtocols) {
    for (unsigned p : opts.procs) {
      for (harness::LockKind k : {harness::LockKind::Ticket, harness::LockKind::Mcs,
                                  harness::LockKind::UcMcs}) {
        harness::SweepJob j;
        j.name = point_name("fig08", lock_tag(k), proto, p);
        j.machine = machine(proto, p, opts.obs.host_metrics);
        j.family = harness::ConstructFamily::Lock;
        j.lock = k;
        j.lock_params.total_acquires = opts.scaled(32000);
        jobs.push_back(std::move(j));
      }
      for (harness::BarrierKind k :
           {harness::BarrierKind::Central, harness::BarrierKind::Dissemination,
            harness::BarrierKind::Tree, harness::BarrierKind::CombiningTree}) {
        harness::SweepJob j;
        j.name = point_name("fig11", barrier_tag(k), proto, p);
        j.machine = machine(proto, p, opts.obs.host_metrics);
        j.family = harness::ConstructFamily::Barrier;
        j.barrier = k;
        j.barrier_params.episodes = opts.scaled(5000);
        jobs.push_back(std::move(j));
      }
      for (harness::ReductionKind k :
           {harness::ReductionKind::Parallel, harness::ReductionKind::Sequential}) {
        harness::SweepJob j;
        j.name = point_name("fig14", reduction_tag(k), proto, p);
        j.machine = machine(proto, p, opts.obs.host_metrics);
        j.family = harness::ConstructFamily::Reduction;
        j.reduction = k;
        j.reduction_params.rounds = opts.scaled(5000);
        jobs.push_back(std::move(j));
      }
    }
  }
  return jobs;
}

harness::TrajectoryDoc run_suite(const harness::BenchOptions& opts, bool progress) {
  harness::SweepOptions so;
  so.jobs = opts.jobs;
  const std::vector<harness::SweepJob> jobs = suite_jobs(opts);
  harness::ProgressReporter reporter(std::cerr, jobs.size());
  if (progress)
    so.progress = [&reporter](std::size_t done, std::size_t) {
      reporter.update(done);
    };
  const std::vector<harness::SweepResult> results = harness::run_sweep(jobs, so);
  reporter.finish();

  harness::TrajectoryDoc doc;
  doc.bench = "ppopp97";
  std::size_t failed = 0;
  for (const harness::SweepResult& r : results) {
    if (!r.ok) {
      ++failed;
      std::fprintf(stderr, "failed cell %s: %s\n", r.name.c_str(),
                   r.error.c_str());
      continue;
    }
    doc.entries.push_back(make_entry(r.name, r.run));
  }
  if (failed != 0)
    throw std::runtime_error(std::to_string(failed) +
                             " cell(s) failed; refusing to write a partial "
                             "trajectory");
  return doc;
}

} // namespace

int main(int argc, char** argv) {
  try {
    std::string out = "BENCH_ppopp97.json";
    bool progress = false;
    bool quiet = false;
    harness::BenchOptions opts;
    opts.scale = 0.02;
    opts.procs = {16};
    // Same flags as the figure benches, plus --out; re-parse what we need
    // here because the trajectory writer has no table/CSV output.
    for (int i = 1; i < argc; ++i) {
      const std::string a = argv[i];
      if (a.rfind("--out=", 0) == 0) {
        out = a.substr(6);
      } else if (a == "--paper") {
        opts.scale = 1.0;
      } else if (a.rfind("--scale=", 0) == 0) {
        opts.scale = std::atof(a.c_str() + 8);
      } else if (a.rfind("--jobs=", 0) == 0) {
        char* end = nullptr;
        const unsigned long n = std::strtoul(a.c_str() + 7, &end, 10);
        if (end == a.c_str() + 7 || *end != '\0')
          throw std::invalid_argument("--jobs needs a non-negative integer");
        opts.jobs = static_cast<unsigned>(n);
      } else if (a == "--host-metrics") {
        opts.obs.host_metrics = true;
      } else if (a == "--progress") {
        progress = true;
      } else if (a == "--quiet") {
        quiet = true;
      } else if (a.rfind("--procs=", 0) == 0) {
        std::vector<unsigned> procs;
        std::string list = a.substr(8);
        std::size_t pos = 0;
        while (pos < list.size()) {
          std::size_t comma = list.find(',', pos);
          if (comma == std::string::npos) comma = list.size();
          procs.push_back(
              static_cast<unsigned>(std::stoul(list.substr(pos, comma - pos))));
          pos = comma + 1;
        }
        if (procs.empty())
          throw std::invalid_argument("--procs needs at least one value");
        opts.procs = std::move(procs);
      } else {
        throw std::invalid_argument("unknown argument: " + a);
      }
    }
    if (opts.scale <= 0.0 || opts.scale > 1.0)
      throw std::invalid_argument("scale must be in (0, 1]");

    const harness::TrajectoryDoc doc = run_suite(opts, progress && !quiet);
    if (out == "-") {
      harness::write_trajectory(std::cout, doc);
    } else {
      std::ofstream os(out);
      if (!os) throw std::runtime_error("cannot open output file: " + out);
      harness::write_trajectory(os, doc);
      if (!quiet)
        std::cout << "wrote " << doc.entries.size() << " benchmarks to " << out
                  << "\n";
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
