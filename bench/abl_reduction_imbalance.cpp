// Ablation (paper section 4.3, prose): reductions with load imbalance.
//
// A pseudorandom pre-reduction delay reduces lock contention; the paper
// reports parallel reductions become more efficient than sequential ones,
// but parallel under PU/CU still beats parallel under WI.
#include "bench_common.hpp"

using namespace ccbench;

namespace {

void body(const harness::BenchOptions& opts, harness::ObsSession& obs) {
  for (Cycle imbalance : {Cycle{0}, Cycle{500}, Cycle{2000}}) {
    std::vector<std::string> headers{"red/proto"};
    for (unsigned p : opts.procs) headers.push_back("P=" + std::to_string(p));
    harness::Table t(std::move(headers));

    for (harness::ReductionKind k :
         {harness::ReductionKind::Sequential, harness::ReductionKind::Parallel}) {
      for (proto::Protocol proto : kProtocols) {
        std::vector<std::string> row{series_label(reduction_tag(k), proto)};
        for (unsigned p : opts.procs) {
          harness::MachineConfig cfg;
          cfg.protocol = proto;
          cfg.nprocs = p;
          harness::ReductionParams params;
          params.rounds = opts.scaled(5000);
          params.imbalance_max = imbalance;
          obs.configure(cfg, series_label(reduction_tag(k), proto) + "/imb" +
                                 std::to_string(imbalance) + "/P" +
                                 std::to_string(p));
          const auto r = harness::run_reduction_experiment(cfg, k, params);
          obs.record(r);
          // Subtract the mean injected imbalance so columns stay comparable.
          row.push_back(harness::Table::num(
              r.avg_latency - static_cast<double>(imbalance) / 2.0, 1));
        }
        t.add_row(std::move(row));
      }
    }
    if (!opts.csv)
      std::printf("--- pre-reduction imbalance in [0, %llu] cycles ---\n",
                  static_cast<unsigned long long>(imbalance));
    print_table(t, opts);
    if (!opts.csv) std::printf("\n");
  }
}

} // namespace

int main(int argc, char** argv) {
  return bench_main(argc, argv,
                    "Ablation: reductions under load imbalance (section 4.3)", body);
}
