// Shared scaffolding for the figure-reproduction benches.
#pragma once

#include "ccsim.hpp"
#include "harness/obs_session.hpp"
#include "harness/sweep.hpp"

#include <cstdio>
#include <iostream>
#include <stdexcept>
#include <string>
#include <vector>

namespace ccbench {

using namespace ccsim;

/// The protocols the figure benches sweep. Protocol::Hybrid is
/// deliberately excluded: a hybrid machine is meaningless without
/// per-region Machine::bind_protocol calls choosing a protocol for each
/// allocation, and the generic figure workloads make none (every region
/// would silently run hybrid_default, duplicating a pure-protocol
/// column under a misleading label). The dedicated abl_hybrid bench,
/// which binds each construct's memory to its best protocol, is the one
/// place hybrid machines are measured; series_label still handles
/// Hybrid ("/h") for that bench's tables.
inline constexpr proto::Protocol kProtocols[] = {proto::Protocol::WI,
                                                 proto::Protocol::PU,
                                                 proto::Protocol::CU};

/// "tk/i" style series label, matching the paper's bar labels ("tk", "MCS",
/// "uc" x "i", "u", "c"); "h" = hybrid (abl_hybrid only, see kProtocols).
inline std::string series_label(std::string_view algo, proto::Protocol p) {
  std::string s{algo};
  s += '/';
  switch (p) {
    case proto::Protocol::WI: s += 'i'; break;
    case proto::Protocol::PU: s += 'u'; break;
    case proto::Protocol::CU: s += 'c'; break;
    case proto::Protocol::Hybrid: s += 'h'; break;
  }
  return s;
}

inline std::string_view lock_tag(harness::LockKind k) {
  switch (k) {
    case harness::LockKind::Ticket: return "tk";
    case harness::LockKind::Mcs: return "MCS";
    case harness::LockKind::UcMcs: return "uc";
  }
  return "?";
}

inline std::string_view barrier_tag(harness::BarrierKind k) {
  switch (k) {
    case harness::BarrierKind::Central: return "cb";
    case harness::BarrierKind::Dissemination: return "db";
    case harness::BarrierKind::Tree: return "tb";
    case harness::BarrierKind::CombiningTree: return "ct";
  }
  return "?";
}

inline std::string_view reduction_tag(harness::ReductionKind k) {
  return k == harness::ReductionKind::Parallel ? "pr" : "sr";
}

inline void print_table(const harness::Table& t, const harness::BenchOptions& o) {
  if (o.csv)
    t.print_csv(std::cout);
  else
    t.print(std::cout);
}

/// Run a figure sweep's cells. With --jobs != 1 and no obs flags the
/// cells run concurrently on the sweep engine; obs output (one shared
/// trace sink, per-run streaming) is inherently ordered, so obs flags
/// force the sequential path (with a stderr note). Both paths contain
/// per-cell failures; results come back in submission order either way.
inline std::vector<harness::SweepResult> run_cells(
    const std::vector<harness::SweepJob>& jobs, const harness::BenchOptions& opts,
    harness::ObsSession& obs) {
  if (opts.jobs != 1 && obs.enabled())
    std::fprintf(stderr,
                 "note: observability flags stream per-run output; "
                 "running with --jobs=1\n");
  if (opts.jobs != 1 && !obs.enabled()) {
    harness::SweepOptions so;
    so.jobs = opts.jobs;
    return harness::run_sweep(jobs, so);
  }
  std::vector<harness::SweepResult> out;
  out.reserve(jobs.size());
  for (const harness::SweepJob& j : jobs) {
    harness::SweepJob job = j;
    obs.configure(job.machine, job.name);
    out.push_back(harness::run_sweep_job(job));
    if (out.back().ok) obs.record(out.back().run);
  }
  return out;
}

/// Table cell for one sweep result ("err" for a contained failure).
inline std::string cell_num(const harness::SweepResult& r, int precision = 1) {
  return r.ok ? harness::Table::num(r.run.avg_latency, precision)
              : std::string("err");
}

/// After the table is printed: report failed cells on stderr and exit
/// nonzero (throwing matches bench_main's error path).
inline void check_failures(const std::vector<harness::SweepResult>& results) {
  std::size_t failed = 0;
  for (const harness::SweepResult& r : results) {
    if (r.ok) continue;
    ++failed;
    std::fprintf(stderr, "failed cell %s: %s\n", r.name.c_str(),
                 r.error.c_str());
  }
  if (failed != 0)
    throw std::runtime_error(std::to_string(failed) + " cell(s) failed");
}

/// Strip a leading path and a trailing extension from argv[0] to name the
/// metrics document after the bench binary.
inline std::string bench_name(const char* argv0) {
  std::string s = argv0 ? argv0 : "bench";
  if (const auto slash = s.find_last_of("/\\"); slash != std::string::npos)
    s.erase(0, slash + 1);
  if (const auto dot = s.rfind('.'); dot != std::string::npos && dot > 0)
    s.erase(dot);
  return s;
}

inline int bench_main(int argc, char** argv, const char* title,
                      void (*body)(const harness::BenchOptions&,
                                   harness::ObsSession&)) {
  try {
    const harness::BenchOptions opts = harness::parse_bench_args(argc, argv);
    harness::ObsSession obs(opts.obs, bench_name(argc > 0 ? argv[0] : nullptr));
    if (!opts.csv) {
      std::printf("%s\n", title);
      std::printf("(scale=%.3g of the paper's iteration counts; --paper for full)\n\n",
                  opts.scale);
    }
    body(opts, obs);
    obs.finish();
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}

} // namespace ccbench
