// Shared scaffolding for the figure-reproduction benches.
#pragma once

#include "ccsim.hpp"
#include "harness/obs_session.hpp"

#include <cstdio>
#include <iostream>
#include <string>

namespace ccbench {

using namespace ccsim;

inline constexpr proto::Protocol kProtocols[] = {proto::Protocol::WI,
                                                 proto::Protocol::PU,
                                                 proto::Protocol::CU};

/// "tk/i" style series label, matching the paper's bar labels ("tk", "MCS",
/// "uc" x "i", "u", "c").
inline std::string series_label(std::string_view algo, proto::Protocol p) {
  std::string s{algo};
  s += '/';
  switch (p) {
    case proto::Protocol::WI: s += 'i'; break;
    case proto::Protocol::PU: s += 'u'; break;
    case proto::Protocol::CU: s += 'c'; break;
    case proto::Protocol::Hybrid: s += 'h'; break;
  }
  return s;
}

inline std::string_view lock_tag(harness::LockKind k) {
  switch (k) {
    case harness::LockKind::Ticket: return "tk";
    case harness::LockKind::Mcs: return "MCS";
    case harness::LockKind::UcMcs: return "uc";
  }
  return "?";
}

inline std::string_view barrier_tag(harness::BarrierKind k) {
  switch (k) {
    case harness::BarrierKind::Central: return "cb";
    case harness::BarrierKind::Dissemination: return "db";
    case harness::BarrierKind::Tree: return "tb";
    case harness::BarrierKind::CombiningTree: return "ct";
  }
  return "?";
}

inline std::string_view reduction_tag(harness::ReductionKind k) {
  return k == harness::ReductionKind::Parallel ? "pr" : "sr";
}

inline void print_table(const harness::Table& t, const harness::BenchOptions& o) {
  if (o.csv)
    t.print_csv(std::cout);
  else
    t.print(std::cout);
}

/// Strip a leading path and a trailing extension from argv[0] to name the
/// metrics document after the bench binary.
inline std::string bench_name(const char* argv0) {
  std::string s = argv0 ? argv0 : "bench";
  if (const auto slash = s.find_last_of("/\\"); slash != std::string::npos)
    s.erase(0, slash + 1);
  if (const auto dot = s.rfind('.'); dot != std::string::npos && dot > 0)
    s.erase(dot);
  return s;
}

inline int bench_main(int argc, char** argv, const char* title,
                      void (*body)(const harness::BenchOptions&,
                                   harness::ObsSession&)) {
  try {
    const harness::BenchOptions opts = harness::parse_bench_args(argc, argv);
    harness::ObsSession obs(opts.obs, bench_name(argc > 0 ? argv[0] : nullptr));
    if (!opts.csv) {
      std::printf("%s\n", title);
      std::printf("(scale=%.3g of the paper's iteration counts; --paper for full)\n\n",
                  opts.scale);
    }
    body(opts, obs);
    obs.finish();
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}

} // namespace ccbench
