// Extension ablation: atomic-primitive reductions (fetch_and_add sum /
// CAS-loop max) against the paper's lock-based parallel and sequential
// max reductions, under all three protocols. Under PU/CU the atomic
// executes at the home memory, so the fetch_and_add reduction behaves
// like hardware combining -- the logical endpoint of the paper's
// observation that update protocols suit reductions.
#include "bench_common.hpp"

using namespace ccbench;

namespace {

double run_cas_max(harness::ObsSession& obs, proto::Protocol p,
                   unsigned nprocs, std::uint64_t rounds) {
  harness::MachineConfig cfg;
  cfg.protocol = p;
  cfg.nprocs = nprocs;
  obs.configure(cfg, series_label("cas", p) + "/P" + std::to_string(nprocs));
  harness::Machine m(cfg);
  sync::MagicBarrier barrier(m.queue(), nprocs);
  sync::CasMaxReduction red(m, barrier);
  const Cycle cycles = m.run_all([&](cpu::Cpu& c) -> sim::Task {
    sim::Rng rng(sim::Rng::derive(11, c.id()));
    for (std::uint64_t r = 0; r < rounds; ++r)
      co_await red.reduce(c, rng.below(1ull << 40));
  });
  harness::RunResult r;
  r.cycles = cycles;
  r.avg_latency = static_cast<double>(cycles) / static_cast<double>(rounds);
  r.counters = m.counters();
  r.samples = m.samples();
  r.hot = m.hot_blocks();
  obs.record(r);
  return r.avg_latency;
}

double run_atomic_sum(harness::ObsSession& obs, proto::Protocol p,
                      unsigned nprocs, std::uint64_t rounds) {
  harness::MachineConfig cfg;
  cfg.protocol = p;
  cfg.nprocs = nprocs;
  obs.configure(cfg, series_label("f&a", p) + "/P" + std::to_string(nprocs));
  harness::Machine m(cfg);
  sync::MagicBarrier barrier(m.queue(), nprocs);
  sync::AtomicSumReduction red(m, barrier);
  const Cycle cycles = m.run_all([&](cpu::Cpu& c) -> sim::Task {
    for (std::uint64_t r = 0; r < rounds; ++r) co_await red.reduce(c, c.id() + 1);
  });
  harness::RunResult r;
  r.cycles = cycles;
  r.avg_latency = static_cast<double>(cycles) / static_cast<double>(rounds);
  r.counters = m.counters();
  r.samples = m.samples();
  r.hot = m.hot_blocks();
  obs.record(r);
  return r.avg_latency;
}

void body(const harness::BenchOptions& opts, harness::ObsSession& obs) {
  const std::uint64_t rounds = opts.scaled(5000);
  std::vector<std::string> headers{"red/proto"};
  for (unsigned p : opts.procs) headers.push_back("P=" + std::to_string(p));
  harness::Table t(std::move(headers));

  // Paper baselines (max semantics).
  for (harness::ReductionKind k :
       {harness::ReductionKind::Sequential, harness::ReductionKind::Parallel}) {
    for (proto::Protocol proto : kProtocols) {
      std::vector<std::string> row{series_label(reduction_tag(k), proto)};
      for (unsigned p : opts.procs) {
        harness::MachineConfig cfg;
        cfg.protocol = proto;
        cfg.nprocs = p;
        obs.configure(cfg, series_label(reduction_tag(k), proto) + "/P" +
                               std::to_string(p));
        const auto r = harness::run_reduction_experiment(cfg, k, {.rounds = rounds});
        obs.record(r);
        row.push_back(harness::Table::num(r.avg_latency, 1));
      }
      t.add_row(std::move(row));
    }
  }
  // CAS-loop max.
  for (proto::Protocol proto : kProtocols) {
    std::vector<std::string> row{series_label("cas", proto)};
    for (unsigned p : opts.procs)
      row.push_back(harness::Table::num(run_cas_max(obs, proto, p, rounds), 1));
    t.add_row(std::move(row));
  }
  // fetch_and_add sum (different operator; shown for its traffic shape).
  for (proto::Protocol proto : kProtocols) {
    std::vector<std::string> row{series_label("f&a", proto)};
    for (unsigned p : opts.procs)
      row.push_back(harness::Table::num(run_atomic_sum(obs, proto, p, rounds), 1));
    t.add_row(std::move(row));
  }
  print_table(t, opts);
}

} // namespace

int main(int argc, char** argv) {
  return bench_main(argc, argv,
                    "Ablation: atomic-primitive reductions vs the paper's "
                    "strategies (avg reduction latency)",
                    body);
}
