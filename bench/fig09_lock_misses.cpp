// Figure 9: miss traffic of spin locks in the synthetic program (32 procs).
//
// Categorized cache misses (cold / true / false sharing / eviction / drop)
// plus exclusive-request transactions, for each lock/protocol combination.
#include "bench_common.hpp"

using namespace ccbench;

namespace {

void body(const harness::BenchOptions& opts, harness::ObsSession& obs) {
  std::vector<std::string> headers{"lock/proto"};
  for (const auto& h : harness::miss_headers()) headers.push_back(h);
  harness::Table t(std::move(headers));

  const unsigned p = opts.procs.back();
  for (harness::LockKind k :
       {harness::LockKind::Ticket, harness::LockKind::Mcs, harness::LockKind::UcMcs}) {
    for (proto::Protocol proto : kProtocols) {
      harness::MachineConfig cfg;
      cfg.protocol = proto;
      cfg.nprocs = p;
      harness::LockParams params;
      params.total_acquires = opts.scaled(32000);
      obs.configure(cfg, series_label(lock_tag(k), proto));
      const auto r = harness::run_lock_experiment(cfg, k, params);
      obs.record(r);
      std::vector<std::string> row{series_label(lock_tag(k), proto)};
      for (auto& cell : harness::miss_cells(r.counters.misses)) row.push_back(cell);
      t.add_row(std::move(row));
    }
  }
  print_table(t, opts);
}

} // namespace

int main(int argc, char** argv) {
  return bench_main(argc, argv, "Figure 9: lock cache-miss traffic at P=32", body);
}
