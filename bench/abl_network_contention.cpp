// Ablation (design choice, section 3.1): network contention modeling.
//
// The paper models contention only at the source and destination of
// messages; this sweep re-runs the lock and barrier experiments with full
// per-link wormhole channel contention to show how that simplification
// flatters the traffic-heavy combinations (the update protocols' multicast
// storms in particular).
#include "bench_common.hpp"

using namespace ccbench;

namespace {

void body(const harness::BenchOptions& opts, harness::ObsSession& obs) {
  const unsigned p = opts.procs.back();

  harness::Table t({"experiment", "endpoint-only", "full-link", "slowdown"});
  const auto row = [&](const std::string& name, auto&& run) {
    const double endpoint = run(false);
    const double link = run(true);
    t.add_row({name, harness::Table::num(endpoint, 1), harness::Table::num(link, 1),
               harness::Table::num(link / endpoint, 2) + "x"});
  };

  for (harness::LockKind k :
       {harness::LockKind::Ticket, harness::LockKind::Mcs, harness::LockKind::UcMcs}) {
    for (proto::Protocol proto : kProtocols) {
      row(std::string("lock ") + series_label(lock_tag(k), proto), [&](bool link) {
        harness::MachineConfig cfg;
        cfg.protocol = proto;
        cfg.nprocs = p;
        cfg.net.link_contention = link;
        harness::LockParams params;
        params.total_acquires = opts.scaled(32000);
        obs.configure(cfg, series_label(lock_tag(k), proto) +
                               (link ? "/link" : "/endpoint"));
        const auto r = harness::run_lock_experiment(cfg, k, params);
        obs.record(r);
        return r.avg_latency;
      });
    }
  }
  for (harness::BarrierKind k :
       {harness::BarrierKind::Central, harness::BarrierKind::Dissemination,
        harness::BarrierKind::Tree}) {
    for (proto::Protocol proto : kProtocols) {
      row(std::string("barrier ") + series_label(barrier_tag(k), proto),
          [&](bool link) {
            harness::MachineConfig cfg;
            cfg.protocol = proto;
            cfg.nprocs = p;
            cfg.net.link_contention = link;
            obs.configure(cfg, series_label(barrier_tag(k), proto) +
                                   (link ? "/link" : "/endpoint"));
            const auto r =
                harness::run_barrier_experiment(cfg, k, {opts.scaled(5000)});
            obs.record(r);
            return r.avg_latency;
          });
    }
  }
  print_table(t, opts);
}

} // namespace

int main(int argc, char** argv) {
  return bench_main(argc, argv,
                    "Ablation: endpoint-only vs full-link network contention "
                    "(P=32 latencies)",
                    body);
}
