// The paper's conclusion, executed: "for multiprocessors that can support
// more than one coherence protocol both the protocol and implementation
// should be taken into account when exploiting parallel constructs."
//
// A combined workload -- an MCS-lock critical section plus a CENTRALIZED
// barrier per round -- pits constructs whose best protocols DIFFER: the
// contended MCS lock wants CU (figure 8) while the centralized barrier
// wants WI at scale (figure 11). No pure machine can satisfy both; the
// hybrid machine binds the lock's data to CU and the barrier's counter to
// WI and should win at the larger sizes where the tension bites.
#include "bench_common.hpp"

using namespace ccbench;

namespace {

Cycle run_combined(harness::ObsSession& obs, const std::string& label,
                   proto::Protocol machine_proto, unsigned nprocs, int rounds,
                   bool bind) {
  harness::MachineConfig cfg;
  cfg.protocol = machine_proto;
  cfg.nprocs = nprocs;
  obs.configure(cfg, label + "/P" + std::to_string(nprocs));
  harness::Machine m(cfg);
  sync::McsLock lock(m);
  sync::CentralBarrier barrier(m);
  if (bind) {
    m.bind_protocol(lock.tail_addr(), mem::kWordSize, proto::Protocol::CU);
    for (NodeId i = 0; i < nprocs; ++i)
      m.bind_protocol(lock.qnode_addr(i), 2 * mem::kWordSize, proto::Protocol::CU);
    // count and sense share one block (figure 3): bind it to WI.
    m.bind_protocol(barrier.count_addr(), 2 * mem::kWordSize, proto::Protocol::WI);
  }
  const Cycle cycles = m.run_all([&, rounds](cpu::Cpu& c) -> sim::Task {
    for (int i = 0; i < rounds; ++i) {
      co_await lock.acquire(c);
      co_await c.think(50);
      co_await lock.release(c);
      co_await barrier.wait(c);
    }
  });
  harness::RunResult r;
  r.cycles = cycles;
  r.avg_latency = static_cast<double>(cycles) / static_cast<double>(rounds);
  r.counters = m.counters();
  r.samples = m.samples();
  r.hot = m.hot_blocks();
  obs.record(r);
  return cycles;
}

void body(const harness::BenchOptions& opts, harness::ObsSession& obs) {
  const int rounds = static_cast<int>(opts.scaled(2000));
  std::vector<std::string> headers{"machine"};
  for (unsigned p : opts.procs) headers.push_back("P=" + std::to_string(p));
  harness::Table t(std::move(headers));

  const auto row = [&](const char* name, auto&& run) {
    std::vector<std::string> cells{name};
    for (unsigned p : opts.procs)
      cells.push_back(harness::Table::num(
          static_cast<double>(run(p)) / static_cast<double>(rounds), 1));
    t.add_row(std::move(cells));
  };
  row("pure WI", [&](unsigned p) { return run_combined(obs, "WI", proto::Protocol::WI, p, rounds, false); });
  row("pure PU", [&](unsigned p) { return run_combined(obs, "PU", proto::Protocol::PU, p, rounds, false); });
  row("pure CU", [&](unsigned p) { return run_combined(obs, "CU", proto::Protocol::CU, p, rounds, false); });
  row("hybrid (lock=CU, barrier=WI)",
      [&](unsigned p) { return run_combined(obs, "hybrid", proto::Protocol::Hybrid, p, rounds, true); });
  print_table(t, opts);
  if (!opts.csv)
    std::printf("\nrows are cycles per round (one critical section + one "
                "barrier episode)\n");
}

} // namespace

int main(int argc, char** argv) {
  return bench_main(argc, argv,
                    "Hybrid machine: per-construct protocol binding vs pure "
                    "machines (combined lock+barrier workload)",
                    body);
}
