// Extension ablation: MCS qnode layout -- the paper's packed shared array
// (four qnodes per block) versus block-padded qnodes homed at their
// owners. Padding removes the co-residence that makes spinners cache each
// other's qnodes, which under PU eliminates most proliferation updates --
// quantifying how much of the MCS-under-update problem is a pure layout
// artifact versus intrinsic to the algorithm (the tail-pointer sharing
// remains either way).
#include "bench_common.hpp"

using namespace ccbench;

namespace {

void body(const harness::BenchOptions& opts, harness::ObsSession& obs) {
  harness::Table t({"layout/proto", "avg-lat", "misses", "updates", "useful-upd",
                    "prolif-upd"});
  const unsigned p = opts.procs.back();
  const std::uint64_t total = opts.scaled(32000);

  for (bool padded : {false, true}) {
    for (proto::Protocol proto : kProtocols) {
      harness::MachineConfig cfg;
      cfg.protocol = proto;
      cfg.nprocs = p;
      obs.configure(cfg, series_label(padded ? "padded" : "packed", proto));
      harness::Machine m(cfg);
      sync::McsLock lock(m, /*update_conscious=*/false, /*home=*/0, padded);
      const std::uint64_t iters = std::max<std::uint64_t>(1, total / p);
      const Cycle cycles = m.run_all([&](cpu::Cpu& c) -> sim::Task {
        for (std::uint64_t i = 0; i < iters; ++i) {
          co_await lock.acquire(c);
          co_await c.think(50);
          co_await lock.release(c);
        }
      });
      const double avg =
          static_cast<double>(cycles) / static_cast<double>(iters * p) - 50.0;
      const auto& ctr = m.counters();
      harness::RunResult r;
      r.cycles = cycles;
      r.avg_latency = avg;
      r.counters = ctr;
      r.samples = m.samples();
      r.hot = m.hot_blocks();
      obs.record(r);
      t.add_row({series_label(padded ? "padded" : "packed", proto),
                 harness::Table::num(avg, 1),
                 harness::Table::num(ctr.misses.total()),
                 harness::Table::num(ctr.updates.total()),
                 harness::Table::num(ctr.updates.useful()),
                 harness::Table::num(ctr.updates[stats::UpdateClass::Proliferation])});
    }
  }
  print_table(t, opts);
}

} // namespace

int main(int argc, char** argv) {
  return bench_main(argc, argv,
                    "Ablation: MCS qnode layout (packed vs padded) at P=32", body);
}
