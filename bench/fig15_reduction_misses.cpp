// Figure 15: miss traffic of reductions in the synthetic program (32 procs).
#include "bench_common.hpp"

using namespace ccbench;

namespace {

void body(const harness::BenchOptions& opts, harness::ObsSession& obs) {
  std::vector<std::string> headers{"red/proto"};
  for (const auto& h : harness::miss_headers()) headers.push_back(h);
  harness::Table t(std::move(headers));

  const unsigned p = opts.procs.back();
  for (harness::ReductionKind k :
       {harness::ReductionKind::Sequential, harness::ReductionKind::Parallel}) {
    for (proto::Protocol proto : kProtocols) {
      harness::MachineConfig cfg;
      cfg.protocol = proto;
      cfg.nprocs = p;
      harness::ReductionParams params;
      params.rounds = opts.scaled(5000);
      obs.configure(cfg, series_label(reduction_tag(k), proto));
      const auto r = harness::run_reduction_experiment(cfg, k, params);
      obs.record(r);
      std::vector<std::string> row{series_label(reduction_tag(k), proto)};
      for (auto& cell : harness::miss_cells(r.counters.misses)) row.push_back(cell);
      t.add_row(std::move(row));
    }
  }
  print_table(t, opts);
}

} // namespace

int main(int argc, char** argv) {
  return bench_main(argc, argv, "Figure 15: reduction cache-miss traffic at P=32",
                    body);
}
