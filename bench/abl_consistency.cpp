// Ablation (design choice, section 3.1): release vs sequential
// consistency. The paper's machine uses RC -- the write buffer stalls only
// at releases. This sweep quantifies what the constructs pay if every
// shared store must instead be globally performed before the processor
// continues (SC), per protocol.
#include "bench_common.hpp"

using namespace ccbench;

namespace {

void body(const harness::BenchOptions& opts, harness::ObsSession& obs) {
  const unsigned p = opts.procs.back();
  harness::Table t({"experiment", "RC", "SC", "SC/RC"});

  const auto row = [&](const std::string& name, auto&& run) {
    const double rc = run(proto::Consistency::Release);
    const double sc = run(proto::Consistency::Sequential);
    t.add_row({name, harness::Table::num(rc, 1), harness::Table::num(sc, 1),
               harness::Table::num(sc / rc, 2) + "x"});
  };

  for (proto::Protocol proto : kProtocols) {
    row(std::string("lock MCS/") + std::string(proto::to_string(proto)),
        [&](proto::Consistency m) {
          harness::MachineConfig cfg;
          cfg.protocol = proto;
          cfg.nprocs = p;
          cfg.consistency = m;
          harness::LockParams params;
          params.total_acquires = opts.scaled(32000);
          obs.configure(cfg, "MCS/" + std::string(proto::to_string(proto)) +
                                 (m == proto::Consistency::Release ? "/RC" : "/SC"));
          const auto r =
              harness::run_lock_experiment(cfg, harness::LockKind::Mcs, params);
          obs.record(r);
          return r.avg_latency;
        });
    row(std::string("barrier db/") + std::string(proto::to_string(proto)),
        [&](proto::Consistency m) {
          harness::MachineConfig cfg;
          cfg.protocol = proto;
          cfg.nprocs = p;
          cfg.consistency = m;
          obs.configure(cfg, "db/" + std::string(proto::to_string(proto)) +
                                 (m == proto::Consistency::Release ? "/RC" : "/SC"));
          const auto r = harness::run_barrier_experiment(
              cfg, harness::BarrierKind::Dissemination, {opts.scaled(5000)});
          obs.record(r);
          return r.avg_latency;
        });
    row(std::string("reduction sr/") + std::string(proto::to_string(proto)),
        [&](proto::Consistency m) {
          harness::MachineConfig cfg;
          cfg.protocol = proto;
          cfg.nprocs = p;
          cfg.consistency = m;
          obs.configure(cfg, "sr/" + std::string(proto::to_string(proto)) +
                                 (m == proto::Consistency::Release ? "/RC" : "/SC"));
          const auto r = harness::run_reduction_experiment(
              cfg, harness::ReductionKind::Sequential,
              {.rounds = opts.scaled(5000)});
          obs.record(r);
          return r.avg_latency;
        });
  }
  print_table(t, opts);
}

} // namespace

int main(int argc, char** argv) {
  return bench_main(argc, argv,
                    "Ablation: release vs sequential consistency (P=32)", body);
}
