// Figure 11: performance of barriers in the synthetic program.
//
// Processors pass a barrier in a tight loop (5000 episodes); reported is
// the average episode latency (execution_time / episodes) per machine
// size, for centralized / dissemination / tree barriers under WI / PU / CU.
#include "bench_common.hpp"

using namespace ccbench;

namespace {

void body(const harness::BenchOptions& opts, harness::ObsSession& obs) {
  std::vector<std::string> headers{"barrier/proto"};
  for (unsigned p : opts.procs) headers.push_back("P=" + std::to_string(p));
  harness::Table t(std::move(headers));

  for (harness::BarrierKind k :
       {harness::BarrierKind::Central, harness::BarrierKind::Dissemination,
        harness::BarrierKind::Tree}) {
    for (proto::Protocol proto : kProtocols) {
      std::vector<std::string> row{series_label(barrier_tag(k), proto)};
      for (unsigned p : opts.procs) {
        harness::MachineConfig cfg;
        cfg.protocol = proto;
        cfg.nprocs = p;
        obs.configure(cfg, series_label(barrier_tag(k), proto) + "/P" +
                               std::to_string(p));
        const auto r = harness::run_barrier_experiment(cfg, k,
                                                       {opts.scaled(5000)});
        obs.record(r);
        row.push_back(harness::Table::num(r.avg_latency, 1));
      }
      t.add_row(std::move(row));
    }
  }
  print_table(t, opts);
}

} // namespace

int main(int argc, char** argv) {
  return bench_main(argc, argv, "Figure 11: average barrier episode latency (cycles)",
                    body);
}
