// Figure 11: performance of barriers in the synthetic program.
//
// Processors pass a barrier in a tight loop (5000 episodes); reported is
// the average episode latency (execution_time / episodes) per machine
// size, for centralized / dissemination / tree barriers under WI / PU / CU.
#include "bench_common.hpp"

using namespace ccbench;

namespace {

void body(const harness::BenchOptions& opts, harness::ObsSession& obs) {
  std::vector<std::string> headers{"barrier/proto"};
  for (unsigned p : opts.procs) headers.push_back("P=" + std::to_string(p));
  harness::Table t(std::move(headers));

  std::vector<harness::SweepJob> jobs;
  for (harness::BarrierKind k :
       {harness::BarrierKind::Central, harness::BarrierKind::Dissemination,
        harness::BarrierKind::Tree}) {
    for (proto::Protocol proto : kProtocols) {
      for (unsigned p : opts.procs) {
        harness::SweepJob j;
        j.name = series_label(barrier_tag(k), proto) + "/P" + std::to_string(p);
        j.machine.protocol = proto;
        j.machine.nprocs = p;
        j.family = harness::ConstructFamily::Barrier;
        j.barrier = k;
        j.barrier_params.episodes = opts.scaled(5000);
        jobs.push_back(std::move(j));
      }
    }
  }

  const auto results = run_cells(jobs, opts, obs);
  std::size_t i = 0;
  for (harness::BarrierKind k :
       {harness::BarrierKind::Central, harness::BarrierKind::Dissemination,
        harness::BarrierKind::Tree}) {
    for (proto::Protocol proto : kProtocols) {
      std::vector<std::string> row{series_label(barrier_tag(k), proto)};
      for (unsigned p : opts.procs) {
        (void)p;
        row.push_back(cell_num(results[i++]));
      }
      t.add_row(std::move(row));
    }
  }
  print_table(t, opts);
  check_failures(results);
}

} // namespace

int main(int argc, char** argv) {
  return bench_main(argc, argv, "Figure 11: average barrier episode latency (cycles)",
                    body);
}
