// Extension ablation: lock FAIRNESS, which the paper's averages cannot
// show. Per-acquire wait-time distributions (p50/p99/max) for the five
// lock algorithms under the three protocols at P=32: the FIFO locks
// (ticket, MCS) keep p99 ~ p50 while the unfair test-and-set variants grow
// long tails, and the coherence protocol modulates how heavy those tails
// get (update protocols wake all contenders at once; WI hands the line to
// whoever refetches first).
#include "bench_common.hpp"

#include <memory>

using namespace ccbench;

namespace {

void body(const harness::BenchOptions& opts, harness::ObsSession& obs) {
  struct Algo {
    const char* tag;
    std::function<std::unique_ptr<sync::Lock>(harness::Machine&)> make;
  };
  const Algo algos[] = {
      {"tas", [](harness::Machine& m) { return std::make_unique<sync::TasLock>(m); }},
      {"ttas",
       [](harness::Machine& m) { return std::make_unique<sync::TtasLock>(m); }},
      {"tk",
       [](harness::Machine& m) { return std::make_unique<sync::TicketLock>(m); }},
      {"MCS",
       [](harness::Machine& m) { return std::make_unique<sync::McsLock>(m); }},
  };

  const unsigned p = opts.procs.back();
  const std::uint64_t total = opts.scaled(32000);
  harness::Table t({"lock/proto", "mean", "p50", "p99", "max", "p99/p50"});

  for (const Algo& algo : algos) {
    for (proto::Protocol proto : kProtocols) {
      harness::MachineConfig cfg;
      cfg.protocol = proto;
      cfg.nprocs = p;
      obs.configure(cfg,
                    series_label(algo.tag, proto) + "/P" + std::to_string(p));
      harness::Machine m(cfg);
      auto lock = algo.make(m);
      stats::LatencyHistogram h;
      const std::uint64_t iters = std::max<std::uint64_t>(1, total / p);
      m.run_all([&](cpu::Cpu& c) -> sim::Task {
        for (std::uint64_t i = 0; i < iters; ++i) {
          const Cycle t0 = c.queue().now();
          co_await lock->acquire(c);
          h.add(c.queue().now() - t0);
          co_await c.think(50);
          co_await lock->release(c);
        }
      });
      harness::RunResult r;
      r.avg_latency = h.mean();
      r.counters = m.counters();
      r.latency = h;
      r.samples = m.samples();
      r.hot = m.hot_blocks();
      obs.record(r);
      const double p50 = static_cast<double>(h.percentile(0.50));
      const double p99 = static_cast<double>(h.percentile(0.99));
      t.add_row({series_label(algo.tag, proto), harness::Table::num(h.mean(), 1),
                 harness::Table::num(static_cast<std::uint64_t>(p50)),
                 harness::Table::num(static_cast<std::uint64_t>(p99)),
                 harness::Table::num(h.max()),
                 harness::Table::num(p99 / std::max(1.0, p50), 1) + "x"});
    }
  }
  print_table(t, opts);
}

} // namespace

int main(int argc, char** argv) {
  return bench_main(argc, argv,
                    "Ablation: per-acquire wait distributions (fairness) at P=32",
                    body);
}
