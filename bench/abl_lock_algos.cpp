// Extension ablation: the full MCS'91 lock set -- test-and-set and
// test-and-test&set with exponential backoff alongside the paper's ticket
// and MCS locks -- under all three protocols. The paper picked ticket and
// MCS because earlier WI studies showed the centralized lock ideal at low
// contention and MCS at high contention; this table shows where the
// simpler locks land once update protocols enter the picture.
#include "bench_common.hpp"

#include <memory>

using namespace ccbench;

namespace {

struct Algo {
  const char* tag;
  std::function<std::unique_ptr<sync::Lock>(harness::Machine&)> make;
};

void body(const harness::BenchOptions& opts, harness::ObsSession& obs) {
  const Algo algos[] = {
      {"tas", [](harness::Machine& m) { return std::make_unique<sync::TasLock>(m); }},
      {"ttas",
       [](harness::Machine& m) { return std::make_unique<sync::TtasLock>(m); }},
      {"tk",
       [](harness::Machine& m) { return std::make_unique<sync::TicketLock>(m); }},
      {"MCS",
       [](harness::Machine& m) { return std::make_unique<sync::McsLock>(m); }},
      {"uc",
       [](harness::Machine& m) { return std::make_unique<sync::McsLock>(m, true); }},
  };

  std::vector<std::string> headers{"lock/proto"};
  for (unsigned p : opts.procs) headers.push_back("P=" + std::to_string(p));
  harness::Table t(std::move(headers));

  const std::uint64_t total = opts.scaled(32000);
  for (const Algo& algo : algos) {
    for (proto::Protocol proto : kProtocols) {
      std::vector<std::string> row{series_label(algo.tag, proto)};
      for (unsigned p : opts.procs) {
        harness::MachineConfig cfg;
        cfg.protocol = proto;
        cfg.nprocs = p;
        obs.configure(cfg, series_label(algo.tag, proto) + "/P" +
                               std::to_string(p));
        harness::Machine m(cfg);
        auto lock = algo.make(m);
        const std::uint64_t iters = std::max<std::uint64_t>(1, total / p);
        const Cycle cycles = m.run_all([&](cpu::Cpu& c) -> sim::Task {
          for (std::uint64_t i = 0; i < iters; ++i) {
            co_await lock->acquire(c);
            co_await c.think(50);
            co_await lock->release(c);
          }
        });
        const double avg =
            static_cast<double>(cycles) / static_cast<double>(iters * p) - 50.0;
        harness::RunResult r;
        r.cycles = cycles;
        r.avg_latency = avg;
        r.counters = m.counters();
        r.samples = m.samples();
        r.hot = m.hot_blocks();
        obs.record(r);
        row.push_back(harness::Table::num(avg, 1));
      }
      t.add_row(std::move(row));
    }
  }
  print_table(t, opts);
}

} // namespace

int main(int argc, char** argv) {
  return bench_main(argc, argv,
                    "Ablation: TAS/TTAS/ticket/MCS/uc-MCS across protocols "
                    "(avg acquire-release latency)",
                    body);
}
