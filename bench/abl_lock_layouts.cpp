// Extension ablation: shared-data layout inside the lock structures.
//
// Figure 1 declares the ticket lock's two counters adjacently (one cache
// block); under update protocols every fetch&add of next_ticket then
// multicasts a FALSE-SHARING update to every spinner of now_serving.
// Splitting the counters into separate blocks removes those updates --
// spinners only cache the now_serving block, so ticket handouts update
// nobody. This quantifies how much of figure 10's tk useless traffic is
// pure layout.
#include "bench_common.hpp"

using namespace ccbench;

namespace {

void body(const harness::BenchOptions& opts, harness::ObsSession& obs) {
  const unsigned p = opts.procs.back();
  const std::uint64_t total = opts.scaled(32000);
  harness::Table t({"layout/proto", "avg-lat", "updates", "useful-upd",
                    "false-upd", "misses"});

  for (bool split : {false, true}) {
    for (proto::Protocol proto : kProtocols) {
      harness::MachineConfig cfg;
      cfg.protocol = proto;
      cfg.nprocs = p;
      obs.configure(cfg, series_label(split ? "split" : "packed", proto));
      harness::Machine m(cfg);
      sync::TicketLock lock(m, 0, split);
      const std::uint64_t iters = std::max<std::uint64_t>(1, total / p);
      const Cycle cycles = m.run_all([&](cpu::Cpu& c) -> sim::Task {
        for (std::uint64_t i = 0; i < iters; ++i) {
          co_await lock.acquire(c);
          co_await c.think(50);
          co_await lock.release(c);
        }
      });
      const double avg =
          static_cast<double>(cycles) / static_cast<double>(iters * p) - 50.0;
      const auto& ctr = m.counters();
      harness::RunResult r;
      r.cycles = cycles;
      r.avg_latency = avg;
      r.counters = ctr;
      r.samples = m.samples();
      r.hot = m.hot_blocks();
      obs.record(r);
      t.add_row({series_label(split ? "split" : "packed", proto),
                 harness::Table::num(avg, 1),
                 harness::Table::num(ctr.updates.total()),
                 harness::Table::num(ctr.updates.useful()),
                 harness::Table::num(ctr.updates[stats::UpdateClass::FalseSharing]),
                 harness::Table::num(ctr.misses.total())});
    }
  }
  print_table(t, opts);
}

} // namespace

int main(int argc, char** argv) {
  return bench_main(argc, argv,
                    "Ablation: ticket-lock counter layout (figure 1's single "
                    "block vs split blocks) at P=32",
                    body);
}
