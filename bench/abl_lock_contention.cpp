// Ablation (paper section 4.1, prose): lock experiments under reduced
// contention -- (a) a pseudorandom bounded pause after each release, and
// (b) work outside / inside the critical section ~= P (+-10%).
//
// The paper reports both variants are qualitatively the same as the tight
// loop; this bench lets you check that claim.
#include "bench_common.hpp"

using namespace ccbench;

namespace {

void run_variant(const harness::BenchOptions& opts, harness::ObsSession& obs,
                 const char* tag, const char* name,
                 harness::LockParams params) {
  std::vector<std::string> headers{"lock/proto"};
  for (unsigned p : opts.procs) headers.push_back("P=" + std::to_string(p));
  harness::Table t(std::move(headers));

  for (harness::LockKind k :
       {harness::LockKind::Ticket, harness::LockKind::Mcs, harness::LockKind::UcMcs}) {
    for (proto::Protocol proto : kProtocols) {
      std::vector<std::string> row{series_label(lock_tag(k), proto)};
      for (unsigned p : opts.procs) {
        harness::MachineConfig cfg;
        cfg.protocol = proto;
        cfg.nprocs = p;
        harness::LockParams pp = params;
        pp.total_acquires = opts.scaled(32000);
        if (pp.work_ratio != 0) pp.work_ratio = p;  // ratio tracks machine size
        obs.configure(cfg, std::string(tag) + "/" +
                               series_label(lock_tag(k), proto) + "/P" +
                               std::to_string(p));
        const auto r = harness::run_lock_experiment(cfg, k, pp);
        obs.record(r);
        row.push_back(harness::Table::num(r.avg_latency, 1));
      }
      t.add_row(std::move(row));
    }
  }
  if (!opts.csv) std::printf("%s\n", name);
  print_table(t, opts);
  if (!opts.csv) std::printf("\n");
}

void body(const harness::BenchOptions& opts, harness::ObsSession& obs) {
  harness::LockParams pause;
  pause.random_pause_max = 500;
  run_variant(opts, obs, "pause",
              "--- random bounded pause after release (max 500 cycles) ---",
              pause);

  harness::LockParams ratio;
  ratio.work_ratio = 1;  // replaced by P per machine size
  run_variant(opts, obs, "ratio",
              "--- work outside/inside critical section ~= P (+-10%) ---",
              ratio);
}

} // namespace

int main(int argc, char** argv) {
  return bench_main(argc, argv,
                    "Ablation: spin locks under reduced contention (section 4.1)",
                    body);
}
