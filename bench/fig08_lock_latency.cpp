// Figure 8: performance of spin locks in the synthetic program.
//
// Each processor acquires the lock, holds it for 50 cycles, releases, in a
// tight loop (32000/P iterations). Reported: the average latency of an
// acquire-release pair = execution_time / 32000 - 50, per machine size,
// for ticket / MCS / update-conscious-MCS under WI / PU / CU.
#include "bench_common.hpp"

using namespace ccbench;

namespace {

void body(const harness::BenchOptions& opts, harness::ObsSession& obs) {
  std::vector<std::string> headers{"lock/proto"};
  for (unsigned p : opts.procs) headers.push_back("P=" + std::to_string(p));
  harness::Table t(std::move(headers));

  for (harness::LockKind k :
       {harness::LockKind::Ticket, harness::LockKind::Mcs, harness::LockKind::UcMcs}) {
    for (proto::Protocol proto : kProtocols) {
      std::vector<std::string> row{series_label(lock_tag(k), proto)};
      for (unsigned p : opts.procs) {
        harness::MachineConfig cfg;
        cfg.protocol = proto;
        cfg.nprocs = p;
        harness::LockParams params;
        params.total_acquires = opts.scaled(32000);
        obs.configure(cfg, series_label(lock_tag(k), proto) + "/P" +
                               std::to_string(p));
        const auto r = harness::run_lock_experiment(cfg, k, params);
        obs.record(r);
        row.push_back(harness::Table::num(r.avg_latency, 1));
      }
      t.add_row(std::move(row));
    }
  }
  print_table(t, opts);
}

} // namespace

int main(int argc, char** argv) {
  return bench_main(argc, argv,
                    "Figure 8: average acquire-release latency (cycles)", body);
}
