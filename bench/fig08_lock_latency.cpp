// Figure 8: performance of spin locks in the synthetic program.
//
// Each processor acquires the lock, holds it for 50 cycles, releases, in a
// tight loop (32000/P iterations). Reported: the average latency of an
// acquire-release pair = execution_time / 32000 - 50, per machine size,
// for ticket / MCS / update-conscious-MCS under WI / PU / CU.
#include "bench_common.hpp"

using namespace ccbench;

namespace {

void body(const harness::BenchOptions& opts, harness::ObsSession& obs) {
  std::vector<std::string> headers{"lock/proto"};
  for (unsigned p : opts.procs) headers.push_back("P=" + std::to_string(p));
  harness::Table t(std::move(headers));

  std::vector<harness::SweepJob> jobs;
  for (harness::LockKind k :
       {harness::LockKind::Ticket, harness::LockKind::Mcs, harness::LockKind::UcMcs}) {
    for (proto::Protocol proto : kProtocols) {
      for (unsigned p : opts.procs) {
        harness::SweepJob j;
        j.name = series_label(lock_tag(k), proto) + "/P" + std::to_string(p);
        j.machine.protocol = proto;
        j.machine.nprocs = p;
        j.family = harness::ConstructFamily::Lock;
        j.lock = k;
        j.lock_params.total_acquires = opts.scaled(32000);
        jobs.push_back(std::move(j));
      }
    }
  }

  const auto results = run_cells(jobs, opts, obs);
  std::size_t i = 0;
  for (harness::LockKind k :
       {harness::LockKind::Ticket, harness::LockKind::Mcs, harness::LockKind::UcMcs}) {
    for (proto::Protocol proto : kProtocols) {
      std::vector<std::string> row{series_label(lock_tag(k), proto)};
      for (unsigned p : opts.procs) {
        (void)p;
        row.push_back(cell_num(results[i++]));
      }
      t.add_row(std::move(row));
    }
  }
  print_table(t, opts);
  check_failures(results);
}

} // namespace

int main(int argc, char** argv) {
  return bench_main(argc, argv,
                    "Figure 8: average acquire-release latency (cycles)", body);
}
