// Ablation (design choice, DESIGN.md): the competitive-update threshold.
//
// The paper fixes the per-block counter threshold at 4; this sweeps it
// over {1, 2, 4, 8, 16} on the lock and barrier workloads to show the
// trade-off between update suppression (drops/prunes) and drop misses.
#include "bench_common.hpp"

using namespace ccbench;

namespace {

void body(const harness::BenchOptions& opts, harness::ObsSession& obs) {
  const unsigned p = opts.procs.back();

  harness::Table t({"workload", "thresh", "avg-lat", "misses", "drop-miss",
                    "updates", "drops"});
  for (unsigned thresh : {1u, 2u, 4u, 8u, 16u}) {
    {
      harness::MachineConfig cfg;
      cfg.protocol = proto::Protocol::CU;
      cfg.nprocs = p;
      cfg.cu_threshold = thresh;
      harness::LockParams params;
      params.total_acquires = opts.scaled(32000);
      obs.configure(cfg, "MCS/t" + std::to_string(thresh));
      const auto r = harness::run_lock_experiment(cfg, harness::LockKind::Mcs, params);
      obs.record(r);
      t.add_row({"MCS lock", harness::Table::num(std::uint64_t{thresh}),
                 harness::Table::num(r.avg_latency, 1),
                 harness::Table::num(r.counters.misses.total()),
                 harness::Table::num(r.counters.misses[stats::MissClass::Drop]),
                 harness::Table::num(r.counters.updates.total()),
                 harness::Table::num(r.counters.updates[stats::UpdateClass::Drop])});
    }
    {
      harness::MachineConfig cfg;
      cfg.protocol = proto::Protocol::CU;
      cfg.nprocs = p;
      cfg.cu_threshold = thresh;
      obs.configure(cfg, "cb/t" + std::to_string(thresh));
      const auto r = harness::run_barrier_experiment(
          cfg, harness::BarrierKind::Central, {opts.scaled(5000)});
      obs.record(r);
      t.add_row({"central barrier", harness::Table::num(std::uint64_t{thresh}),
                 harness::Table::num(r.avg_latency, 1),
                 harness::Table::num(r.counters.misses.total()),
                 harness::Table::num(r.counters.misses[stats::MissClass::Drop]),
                 harness::Table::num(r.counters.updates.total()),
                 harness::Table::num(r.counters.updates[stats::UpdateClass::Drop])});
    }
  }
  print_table(t, opts);
}

} // namespace

int main(int argc, char** argv) {
  return bench_main(argc, argv,
                    "Ablation: competitive-update threshold sweep (CU, P=32)", body);
}
