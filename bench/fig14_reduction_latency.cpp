// Figure 14: performance of reductions in the synthetic program.
//
// Each processor performs 5000 max-reductions in a tight loop,
// synchronized by zero-traffic (magic) lock/barrier so only the
// reduction's own communication is measured. Reported: the average
// latency of a whole reduction (execution_time / rounds), for parallel
// vs sequential reductions under WI / PU / CU.
#include "bench_common.hpp"

using namespace ccbench;

namespace {

void body(const harness::BenchOptions& opts, harness::ObsSession& obs) {
  std::vector<std::string> headers{"red/proto"};
  for (unsigned p : opts.procs) headers.push_back("P=" + std::to_string(p));
  harness::Table t(std::move(headers));

  std::vector<harness::SweepJob> jobs;
  for (harness::ReductionKind k :
       {harness::ReductionKind::Sequential, harness::ReductionKind::Parallel}) {
    for (proto::Protocol proto : kProtocols) {
      for (unsigned p : opts.procs) {
        harness::SweepJob j;
        j.name = series_label(reduction_tag(k), proto) + "/P" + std::to_string(p);
        j.machine.protocol = proto;
        j.machine.nprocs = p;
        j.family = harness::ConstructFamily::Reduction;
        j.reduction = k;
        j.reduction_params.rounds = opts.scaled(5000);
        jobs.push_back(std::move(j));
      }
    }
  }

  const auto results = run_cells(jobs, opts, obs);
  std::size_t i = 0;
  for (harness::ReductionKind k :
       {harness::ReductionKind::Sequential, harness::ReductionKind::Parallel}) {
    for (proto::Protocol proto : kProtocols) {
      std::vector<std::string> row{series_label(reduction_tag(k), proto)};
      for (unsigned p : opts.procs) {
        (void)p;
        row.push_back(cell_num(results[i++]));
      }
      t.add_row(std::move(row));
    }
  }
  print_table(t, opts);
  check_failures(results);
}

} // namespace

int main(int argc, char** argv) {
  return bench_main(argc, argv, "Figure 14: average reduction latency (cycles)", body);
}
