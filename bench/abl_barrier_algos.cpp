// Extension ablation: the full barrier set -- the paper's three plus the
// MCS'91 combining tree barrier (4-ary arrival, binary wakeup tree of
// per-processor flags) -- under all three protocols. Shows how much of
// the figure-5 tree barrier's cost is the shared global sense flag.
#include "bench_common.hpp"

using namespace ccbench;

namespace {

void body(const harness::BenchOptions& opts, harness::ObsSession& obs) {
  std::vector<std::string> headers{"barrier/proto"};
  for (unsigned p : opts.procs) headers.push_back("P=" + std::to_string(p));
  harness::Table t(std::move(headers));

  for (harness::BarrierKind k :
       {harness::BarrierKind::Central, harness::BarrierKind::Dissemination,
        harness::BarrierKind::Tree, harness::BarrierKind::CombiningTree}) {
    for (proto::Protocol proto : kProtocols) {
      const char* tag = k == harness::BarrierKind::CombiningTree
                            ? "ct"
                            : barrier_tag(k).data();
      std::vector<std::string> row{series_label(tag, proto)};
      for (unsigned p : opts.procs) {
        harness::MachineConfig cfg;
        cfg.protocol = proto;
        cfg.nprocs = p;
        obs.configure(cfg,
                      series_label(tag, proto) + "/P" + std::to_string(p));
        const auto r =
            harness::run_barrier_experiment(cfg, k, {opts.scaled(5000)});
        obs.record(r);
        row.push_back(harness::Table::num(r.avg_latency, 1));
      }
      t.add_row(std::move(row));
    }
  }
  print_table(t, opts);
}

} // namespace

int main(int argc, char** argv) {
  return bench_main(argc, argv,
                    "Ablation: all barrier algorithms across protocols "
                    "(avg episode latency)",
                    body);
}
