// ccperf: self-profile the simulator on a fixed workload matrix.
//
//   ccperf [--procs N] [--scale X] [--jobs N] [--out FILE]
//          [--progress] [--quiet]
//
// Runs the paper's three constructs (ticket lock, central barrier,
// parallel reduction) under WI / PU / CU with host-performance telemetry
// attached (obs/host_perf.hpp) -- nine cells that together exercise every
// protocol engine and construct family -- and reports how fast the *host*
// executes the simulator: simulated Mcycles/sec, events/sec, event-queue
// depth statistics, and where host time goes (event loop vs protocol
// handlers vs network routing vs obs hooks). This is the report to run
// before and after a simulator-core optimization; bench_compare gates the
// same throughput series continuously via run_trajectory --host-metrics.
//
// Output: an aligned table on stdout (one row per cell plus a merged
// TOTAL row) and, with --out, a JSON report (schema in docs/schema.md)
// whose per-cell "host" objects match the benches' --json documents.
// Host readings are wall-clock: the table and JSON vary run to run and
// are never byte-compared. Exit codes: 0 = every cell ran and produced
// nonzero throughput; 1 = a cell failed or timed so fast that throughput
// rounded to zero; 2 = usage error.
#include "harness/obs_session.hpp"
#include "harness/progress.hpp"
#include "harness/sweep.hpp"
#include "stats/json.hpp"
#include "stats/table.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <stdexcept>
#include <string>
#include <vector>

using namespace ccsim;

namespace {

struct Options {
  unsigned procs = 16;
  double scale = 0.02;
  unsigned jobs = 1;
  std::string out;  ///< JSON report path ("" = table only)
  bool progress = false;
  bool quiet = false;
};

/// Match `--flag=value` or `--flag value`.
bool take_value(const std::string& flag, int argc, char** argv, int& i,
                std::string& value) {
  const std::string a = argv[i];
  if (a.rfind(flag + "=", 0) == 0) {
    value = a.substr(flag.size() + 1);
    return true;
  }
  if (a == flag) {
    if (i + 1 >= argc) throw std::invalid_argument(flag + " needs a value");
    value = argv[++i];
    return true;
  }
  return false;
}

void usage() {
  std::printf(
      "usage: ccperf [--procs N] [--scale X] [--jobs N] [--out FILE]\n"
      "              [--progress] [--quiet]\n");
}

Options parse_args(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    std::string v;
    if (take_value("--procs", argc, argv, i, v)) {
      const unsigned long p = std::strtoul(v.c_str(), nullptr, 10);
      if (p == 0 || p > 32) throw std::invalid_argument("--procs must be in [1, 32]");
      o.procs = static_cast<unsigned>(p);
    } else if (take_value("--scale", argc, argv, i, v)) {
      o.scale = std::atof(v.c_str());
      if (o.scale <= 0.0 || o.scale > 1.0)
        throw std::invalid_argument("--scale must be in (0, 1]");
    } else if (take_value("--jobs", argc, argv, i, v)) {
      char* end = nullptr;
      const unsigned long n = std::strtoul(v.c_str(), &end, 10);
      if (end == v.c_str() || *end != '\0')
        throw std::invalid_argument("--jobs needs a non-negative integer");
      o.jobs = static_cast<unsigned>(n);
    } else if (take_value("--out", argc, argv, i, v)) {
      o.out = v;
    } else if (a == "--progress") {
      o.progress = true;
    } else if (a == "--quiet") {
      o.quiet = true;
    } else if (a == "--help" || a == "-h") {
      usage();
      std::exit(0);
    } else {
      throw std::invalid_argument("unknown argument: " + a);
    }
  }
  return o;
}

std::uint64_t scaled(double scale, std::uint64_t paper_count) {
  const auto n =
      static_cast<std::uint64_t>(static_cast<double>(paper_count) * scale);
  return n < 32 ? 32 : n;
}

std::vector<harness::SweepJob> build_matrix(const Options& o) {
  std::vector<harness::SweepJob> jobs;
  for (proto::Protocol proto :
       {proto::Protocol::WI, proto::Protocol::PU, proto::Protocol::CU}) {
    harness::MachineConfig cfg;
    cfg.protocol = proto;
    cfg.nprocs = o.procs;
    cfg.obs.host_metrics = true;

    harness::SweepJob lock;
    lock.name = std::string(proto::to_string(proto)) + "/lock/tk";
    lock.machine = cfg;
    lock.family = harness::ConstructFamily::Lock;
    lock.lock = harness::LockKind::Ticket;
    lock.lock_params.total_acquires = scaled(o.scale, 32000);
    jobs.push_back(std::move(lock));

    harness::SweepJob barrier;
    barrier.name = std::string(proto::to_string(proto)) + "/barrier/cb";
    barrier.machine = cfg;
    barrier.family = harness::ConstructFamily::Barrier;
    barrier.barrier = harness::BarrierKind::Central;
    barrier.barrier_params.episodes = scaled(o.scale, 5000);
    jobs.push_back(std::move(barrier));

    harness::SweepJob reduction;
    reduction.name = std::string(proto::to_string(proto)) + "/reduction/pr";
    reduction.machine = cfg;
    reduction.family = harness::ConstructFamily::Reduction;
    reduction.reduction = harness::ReductionKind::Parallel;
    reduction.reduction_params.rounds = scaled(o.scale, 5000);
    jobs.push_back(std::move(reduction));
  }
  return jobs;
}

void print_table(std::ostream& os,
                 const std::vector<harness::SweepResult>& results,
                 const obs::HostPerfReport& total) {
  using stats::Table;
  Table t({{"cell", 16, true, ""},
           {"Mcyc", 9, false, " "},
           {"host ms", 9, false, " "},
           {"Mcyc/s", 8, false, " "},
           {"kev/s", 9, false, " "},
           {"q.p50", 6, false, " "},
           {"q.p99", 6, false, " "},
           {"peak", 5, false, " "},
           {"loop/proto/net/obs %", 0, true, "  "}});
  auto row = [&](const std::string& name, const obs::HostPerfReport& h) {
    t.add_row({name, Table::num(static_cast<double>(h.sim_cycles) * 1e-6, 2),
               Table::num(h.ms()), Table::num(h.cycles_per_sec() * 1e-6, 2),
               Table::num(h.events_per_sec() * 1e-3),
               Table::num(h.queue_depth.percentile(0.50)),
               Table::num(h.queue_depth.percentile(0.99)),
               Table::num(h.queue_peak),
               Table::num(100.0 * h.share(obs::HostCat::EventLoop), 0) + "/" +
                   Table::num(100.0 * h.share(obs::HostCat::Protocol), 0) +
                   "/" + Table::num(100.0 * h.share(obs::HostCat::Network), 0) +
                   "/" + Table::num(100.0 * h.share(obs::HostCat::ObsHooks), 0)});
  };
  for (const harness::SweepResult& r : results) {
    if (!r.ok) {
      t.add_row({r.name, "FAILED: " + r.error});
      continue;
    }
    row(r.name, r.run.host);
  }
  row("TOTAL", total);
  t.print(os);
}

void write_report(std::ostream& os, const Options& o,
                  const std::vector<harness::SweepResult>& results,
                  const obs::HostPerfReport& total) {
  stats::JsonWriter w(os);
  w.begin_object();
  w.key("schema").value(std::uint64_t{1});
  w.key("tool").value("ccperf");
  w.key("procs").value(o.procs);
  w.key("scale").value(o.scale);
  w.key("cells").begin_array();
  for (const harness::SweepResult& r : results) {
    w.begin_object();
    w.key("name").value(r.name);
    w.key("ok").value(r.ok);
    if (r.ok) {
      w.key("host").begin_object();
      harness::write_host_fields(w, r.run.host);
      w.end_object();
    } else {
      w.key("fail_kind").value(harness::to_string(r.fail));
      w.key("error").value(r.error);
    }
    w.end_object();
  }
  w.end_array();
  w.key("summary").begin_object();
  w.key("cells").value(static_cast<std::uint64_t>(results.size()));
  std::uint64_t ok = 0;
  for (const harness::SweepResult& r : results) ok += r.ok;
  w.key("ok").value(ok);
  w.key("host").begin_object();
  harness::write_host_fields(w, total);
  w.end_object();
  w.end_object();
  w.end_object();
  os << '\n';
}

} // namespace

int main(int argc, char** argv) {
  try {
    const Options o = parse_args(argc, argv);
    const std::vector<harness::SweepJob> jobs = build_matrix(o);
    harness::SweepOptions so;
    so.jobs = o.jobs;
    harness::ProgressReporter reporter(std::cerr, jobs.size());
    if (o.progress && !o.quiet)
      so.progress = [&reporter](std::size_t done, std::size_t total) {
        (void)total;
        reporter.update(done);
      };
    const std::vector<harness::SweepResult> results = harness::run_sweep(jobs, so);
    reporter.finish();

    obs::HostPerfReport total;
    bool any_failed = false;
    for (const harness::SweepResult& r : results) {
      if (!r.ok) {
        any_failed = true;
        std::fprintf(stderr, "failed cell %s: %s\n", r.name.c_str(),
                     r.error.c_str());
        continue;
      }
      total.merge(r.run.host);
    }

    if (!o.quiet) print_table(std::cout, results, total);
    if (!o.out.empty()) {
      std::ofstream os(o.out);
      if (!os) throw std::runtime_error("cannot open output file: " + o.out);
      write_report(os, o, results, total);
      if (!o.quiet)
        std::fprintf(stderr, "wrote host-profile report to %s\n", o.out.c_str());
    }
    if (any_failed) return 1;
    // A throughput of zero means the collector never saw host time pass --
    // a broken clock or a broken hook path; fail loudly.
    if (!(total.cycles_per_sec() > 0.0) || !(total.events_per_sec() > 0.0))
      return 1;
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    usage();
    return 2;
  }
}
