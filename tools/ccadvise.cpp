// ccadvise: cross-validate the sharing-pattern advisor against measured
// protocol rankings.
//
//   ccadvise [--procs N] [--scale X] [--jobs N] [--out FILE]
//            [--tie PCT] [--threshold PCT] [--progress] [--quiet]
//
// Runs the paper's nine synchronization constructs (three locks, four
// barriers, two reductions -- figures 8, 11, 14) under WI / PU / CU.
// The WI run of each construct carries the sharing tracker
// (obs/sharing.hpp); its classifier output feeds the cost model, whose
// recommended protocol is then compared against the *measured* best
// static protocol for that construct (lowest simulated cycle count,
// with anything within --tie percent of the minimum counted as tied for
// best, default 2%). The advisor rides on WI because write-interval
// reader-sets are protocol-invariant: the same program produces the
// same advice no matter which protocol observed it, and validating that
// advice against ground truth from all three protocols is exactly the
// check this tool automates.
//
// Output: an aligned table on stdout (per construct: measured Mcycles
// under each protocol, the tie-set of measured-best protocols, the
// advisor's pick, and whether they agree) plus a summary line, and with
// --out a JSON document (schema in docs/schema.md) embedding each WI
// run's full "sharing" section. Exit codes: 0 = every cell ran and the
// advisor agreed with the measured best on at least --threshold percent
// of constructs (default 80); 1 = a cell failed or agreement fell below
// the threshold; 2 = usage error.
#include "harness/obs_session.hpp"
#include "harness/progress.hpp"
#include "harness/sweep.hpp"
#include "stats/json.hpp"
#include "stats/table.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <stdexcept>
#include <string>
#include <vector>

using namespace ccsim;

namespace {

constexpr proto::Protocol kProtocols[] = {proto::Protocol::WI,
                                          proto::Protocol::PU,
                                          proto::Protocol::CU};

struct Options {
  unsigned procs = 16;
  double scale = 0.02;
  unsigned jobs = 1;
  std::string out;        ///< JSON report path ("" = table only)
  double tie_pct = 2.0;   ///< cycles within this % of min count as tied-best
  double threshold = 80;  ///< minimum agreement % for exit code 0
  bool progress = false;
  bool quiet = false;
};

/// Match `--flag=value` or `--flag value`.
bool take_value(const std::string& flag, int argc, char** argv, int& i,
                std::string& value) {
  const std::string a = argv[i];
  if (a.rfind(flag + "=", 0) == 0) {
    value = a.substr(flag.size() + 1);
    return true;
  }
  if (a == flag) {
    if (i + 1 >= argc) throw std::invalid_argument(flag + " needs a value");
    value = argv[++i];
    return true;
  }
  return false;
}

void usage() {
  std::printf(
      "usage: ccadvise [--procs N] [--scale X] [--jobs N] [--out FILE]\n"
      "                [--tie PCT] [--threshold PCT] [--progress] [--quiet]\n");
}

Options parse_args(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    std::string v;
    if (take_value("--procs", argc, argv, i, v)) {
      const unsigned long p = std::strtoul(v.c_str(), nullptr, 10);
      if (p == 0 || p > 32) throw std::invalid_argument("--procs must be in [1, 32]");
      o.procs = static_cast<unsigned>(p);
    } else if (take_value("--scale", argc, argv, i, v)) {
      o.scale = std::atof(v.c_str());
      if (o.scale <= 0.0 || o.scale > 1.0)
        throw std::invalid_argument("--scale must be in (0, 1]");
    } else if (take_value("--jobs", argc, argv, i, v)) {
      char* end = nullptr;
      const unsigned long n = std::strtoul(v.c_str(), &end, 10);
      if (end == v.c_str() || *end != '\0')
        throw std::invalid_argument("--jobs needs a non-negative integer");
      o.jobs = static_cast<unsigned>(n);
    } else if (take_value("--out", argc, argv, i, v)) {
      o.out = v;
    } else if (take_value("--tie", argc, argv, i, v)) {
      o.tie_pct = std::atof(v.c_str());
      if (o.tie_pct < 0.0 || o.tie_pct > 100.0)
        throw std::invalid_argument("--tie must be in [0, 100]");
    } else if (take_value("--threshold", argc, argv, i, v)) {
      o.threshold = std::atof(v.c_str());
      if (o.threshold < 0.0 || o.threshold > 100.0)
        throw std::invalid_argument("--threshold must be in [0, 100]");
    } else if (a == "--progress") {
      o.progress = true;
    } else if (a == "--quiet") {
      o.quiet = true;
    } else if (a == "--help" || a == "-h") {
      usage();
      std::exit(0);
    } else {
      throw std::invalid_argument("unknown argument: " + a);
    }
  }
  return o;
}

std::uint64_t scaled(double scale, std::uint64_t paper_count) {
  const auto n =
      static_cast<std::uint64_t>(static_cast<double>(paper_count) * scale);
  return n < 32 ? 32 : n;
}

/// One construct of the validation matrix (one row of the report).
struct Construct {
  std::string name;  ///< e.g. "lock/tk"
  harness::ConstructFamily family;
  harness::LockKind lock = harness::LockKind::Ticket;
  harness::BarrierKind barrier = harness::BarrierKind::Central;
  harness::ReductionKind reduction = harness::ReductionKind::Parallel;
};

std::vector<Construct> construct_matrix() {
  std::vector<Construct> cs;
  for (harness::LockKind k : {harness::LockKind::Ticket, harness::LockKind::Mcs,
                              harness::LockKind::UcMcs}) {
    Construct c;
    c.name = "lock/" + std::string(harness::to_string(k));
    c.family = harness::ConstructFamily::Lock;
    c.lock = k;
    cs.push_back(std::move(c));
  }
  for (harness::BarrierKind k :
       {harness::BarrierKind::Central, harness::BarrierKind::Dissemination,
        harness::BarrierKind::Tree, harness::BarrierKind::CombiningTree}) {
    Construct c;
    c.name = "barrier/" + std::string(harness::to_string(k));
    c.family = harness::ConstructFamily::Barrier;
    c.barrier = k;
    cs.push_back(std::move(c));
  }
  for (harness::ReductionKind k :
       {harness::ReductionKind::Parallel, harness::ReductionKind::Sequential}) {
    Construct c;
    c.name = "reduction/" + std::string(harness::to_string(k));
    c.family = harness::ConstructFamily::Reduction;
    c.reduction = k;
    cs.push_back(std::move(c));
  }
  return cs;
}

/// Jobs in construct-major order: results[c * 3 + p] is construct c under
/// kProtocols[p]. Only the WI run carries the sharing tracker -- that is
/// the run whose report drives the advice, and leaving it off the PU/CU
/// runs keeps their cycle measurements a pure ground truth.
std::vector<harness::SweepJob> build_matrix(const Options& o,
                                            const std::vector<Construct>& cs) {
  std::vector<harness::SweepJob> jobs;
  for (const Construct& c : cs) {
    for (proto::Protocol proto : kProtocols) {
      harness::SweepJob j;
      j.name = c.name + "/" + std::string(proto::to_string(proto));
      j.machine.protocol = proto;
      j.machine.nprocs = o.procs;
      j.machine.obs.sharing = proto == proto::Protocol::WI;
      j.family = c.family;
      j.lock = c.lock;
      j.barrier = c.barrier;
      j.reduction = c.reduction;
      j.lock_params.total_acquires = scaled(o.scale, 32000);
      j.barrier_params.episodes = scaled(o.scale, 5000);
      j.reduction_params.rounds = scaled(o.scale, 5000);
      jobs.push_back(std::move(j));
    }
  }
  return jobs;
}

/// The advisor-vs-measurement verdict for one construct.
struct Verdict {
  std::string name;
  bool ok = false;         ///< all three runs completed
  std::string error;       ///< first failure text when !ok
  double cycles[3] = {};   ///< measured cycles, indexed like kProtocols
  std::vector<proto::Protocol> best;  ///< measured tie-set (ties allowed)
  proto::Protocol advised = proto::Protocol::WI;
  bool agree = false;      ///< advised is in the measured tie-set
  obs::SharingReport sharing;  ///< the WI run's report
};

Verdict judge(const Construct& c, const harness::SweepResult* runs,
              double tie_pct) {
  Verdict v;
  v.name = c.name;
  for (int p = 0; p < 3; ++p) {
    if (!runs[p].ok) {
      v.error = runs[p].name + ": " + runs[p].error;
      return v;
    }
    v.cycles[p] = static_cast<double>(runs[p].run.cycles);
  }
  v.ok = true;
  v.sharing = runs[0].run.sharing;
  v.advised = v.sharing.recommended;
  double min = v.cycles[0];
  for (double cyc : v.cycles) min = std::min(min, cyc);
  const double cutoff = min * (1.0 + tie_pct / 100.0);
  for (int p = 0; p < 3; ++p)
    if (v.cycles[p] <= cutoff) v.best.push_back(kProtocols[p]);
  for (proto::Protocol b : v.best) v.agree |= b == v.advised;
  return v;
}

std::string tie_set_string(const std::vector<proto::Protocol>& best) {
  std::string s;
  for (proto::Protocol p : best) {
    if (!s.empty()) s += '/';
    s += proto::to_string(p);
  }
  return s;
}

void print_table(std::ostream& os, const std::vector<Verdict>& verdicts) {
  stats::Table t = stats::Table::figure({"construct", "WI Mcyc", "PU Mcyc",
                                         "CU Mcyc", "measured", "advised",
                                         "agree"});
  for (const Verdict& v : verdicts) {
    if (!v.ok) {
      t.add_row({v.name, "-", "-", "-", "-", "-", "FAILED"});
      continue;
    }
    t.add_row({v.name, stats::Table::num(v.cycles[0] * 1e-6, 2),
               stats::Table::num(v.cycles[1] * 1e-6, 2),
               stats::Table::num(v.cycles[2] * 1e-6, 2), tie_set_string(v.best),
               std::string(proto::to_string(v.advised)),
               v.agree ? "yes" : "NO"});
  }
  t.print(os);
}

void write_report(std::ostream& os, const Options& o,
                  const std::vector<Verdict>& verdicts, std::size_t agreed,
                  double agreement, bool pass) {
  stats::JsonWriter w(os);
  w.begin_object();
  w.key("schema").value(std::uint64_t{1});
  w.key("tool").value("ccadvise");
  w.key("procs").value(o.procs);
  w.key("scale").value(o.scale);
  w.key("tie_pct").value(o.tie_pct);
  w.key("threshold_pct").value(o.threshold);
  w.key("constructs").begin_array();
  for (const Verdict& v : verdicts) {
    w.begin_object();
    w.key("name").value(v.name);
    w.key("ok").value(v.ok);
    if (!v.ok) {
      w.key("error").value(v.error);
      w.end_object();
      continue;
    }
    w.key("cycles").begin_object();
    for (int p = 0; p < 3; ++p)
      w.key(std::string(proto::to_string(kProtocols[p]))).value(v.cycles[p]);
    w.end_object();
    w.key("measured_best").begin_array();
    for (proto::Protocol b : v.best)
      w.value(std::string(proto::to_string(b)));
    w.end_array();
    w.key("advised").value(std::string(proto::to_string(v.advised)));
    w.key("agree").value(v.agree);
    w.key("sharing").begin_object();
    harness::write_sharing_fields(w, v.sharing);
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.key("summary").begin_object();
  w.key("constructs").value(static_cast<std::uint64_t>(verdicts.size()));
  w.key("agreed").value(static_cast<std::uint64_t>(agreed));
  w.key("agreement_pct").value(agreement);
  w.key("pass").value(pass);
  w.end_object();
  w.end_object();
  os << '\n';
}

} // namespace

int main(int argc, char** argv) {
  try {
    const Options o = parse_args(argc, argv);
    const std::vector<Construct> cs = construct_matrix();
    const std::vector<harness::SweepJob> jobs = build_matrix(o, cs);
    harness::SweepOptions so;
    so.jobs = o.jobs;
    harness::ProgressReporter reporter(std::cerr, jobs.size());
    if (o.progress && !o.quiet)
      so.progress = [&reporter](std::size_t done, std::size_t total) {
        (void)total;
        reporter.update(done);
      };
    const std::vector<harness::SweepResult> results = harness::run_sweep(jobs, so);
    reporter.finish();

    std::vector<Verdict> verdicts;
    std::size_t agreed = 0;
    bool any_failed = false;
    for (std::size_t c = 0; c < cs.size(); ++c) {
      Verdict v = judge(cs[c], &results[c * 3], o.tie_pct);
      if (!v.ok) {
        any_failed = true;
        std::fprintf(stderr, "failed cell %s\n", v.error.c_str());
      }
      agreed += v.agree;
      verdicts.push_back(std::move(v));
    }
    // A failed construct counts against agreement: the advisor cannot be
    // validated on a cell without ground truth.
    const double agreement =
        verdicts.empty() ? 0.0
                         : 100.0 * static_cast<double>(agreed) /
                               static_cast<double>(verdicts.size());
    const bool pass = !any_failed && agreement >= o.threshold;

    if (!o.quiet) {
      print_table(std::cout, verdicts);
      std::printf("agreement: %zu/%zu constructs (%.1f%%), threshold %.0f%% -> %s\n",
                  agreed, verdicts.size(), agreement, o.threshold,
                  pass ? "PASS" : "FAIL");
    }
    if (!o.out.empty()) {
      std::ofstream os(o.out);
      if (!os) throw std::runtime_error("cannot open output file: " + o.out);
      write_report(os, o, verdicts, agreed, agreement, pass);
      if (!o.quiet)
        std::fprintf(stderr, "wrote advisor report to %s\n", o.out.c_str());
    }
    return pass ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    usage();
    return 2;
  }
}
