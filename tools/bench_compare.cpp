// bench_compare: diff two bench-trajectory documents and gate on regressions.
//
//   bench_compare BASELINE CANDIDATE [--max-regress=PCT] [--allow-missing]
//                 [--max-tput-drop=PCT]
//
// Prints a per-benchmark table of the paper's latency metric (baseline,
// candidate, delta) and exits nonzero when any benchmark's latency regresses
// by more than PCT percent (default 10), or -- unless --allow-missing --
// when a baseline benchmark is absent from the candidate. Speedups and new
// benchmarks never fail the gate. CI runs this against the committed
// BENCH_ppopp97.json baseline on every push.
//
// Gating is direction-aware: latency may not RISE past --max-regress, and
// host simulator throughput (cycles/sec, recorded by run_trajectory
// --host-metrics) may not FALL past --max-tput-drop (default 10). The
// throughput gate applies only to entries where both documents carry a
// "host" section; baselines written without --host-metrics (including the
// committed one) compare on latency alone.
#include "harness/trajectory.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

namespace {

ccsim::harness::TrajectoryDoc load(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("cannot open " + path);
  try {
    return ccsim::harness::read_trajectory(is);
  } catch (const std::exception& e) {
    throw std::runtime_error(path + ": " + e.what());
  }
}

} // namespace

int main(int argc, char** argv) {
  try {
    std::vector<std::string> files;
    ccsim::harness::CompareOptions opt;
    for (int i = 1; i < argc; ++i) {
      const std::string a = argv[i];
      if (a.rfind("--max-regress=", 0) == 0) {
        opt.max_regress_pct = std::atof(a.c_str() + 14);
        if (opt.max_regress_pct <= 0.0)
          throw std::invalid_argument("--max-regress must be > 0");
      } else if (a.rfind("--max-tput-drop=", 0) == 0) {
        opt.max_tput_drop_pct = std::atof(a.c_str() + 16);
        if (opt.max_tput_drop_pct <= 0.0)
          throw std::invalid_argument("--max-tput-drop must be > 0");
      } else if (a == "--allow-missing") {
        opt.require_all = false;
      } else if (a == "--help" || a == "-h") {
        std::printf(
            "usage: bench_compare BASELINE CANDIDATE"
            " [--max-regress=PCT] [--allow-missing] [--max-tput-drop=PCT]\n");
        return 0;
      } else if (!a.empty() && a[0] == '-') {
        throw std::invalid_argument("unknown argument: " + a);
      } else {
        files.push_back(a);
      }
    }
    if (files.size() != 2)
      throw std::invalid_argument("expected exactly two trajectory files");

    const ccsim::harness::TrajectoryDoc base = load(files[0]);
    const ccsim::harness::TrajectoryDoc cand = load(files[1]);
    if (base.bench != cand.bench)
      std::fprintf(stderr, "warning: comparing different suites (%s vs %s)\n",
                   base.bench.c_str(), cand.bench.c_str());

    const auto r = ccsim::harness::compare_trajectories(base, cand, opt);
    ccsim::harness::print_compare(std::cout, r, opt);
    return r.ok ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
