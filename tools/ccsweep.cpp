// ccsweep: run a (protocol x construct x config) simulation grid through
// the parallel sweep engine and emit one JSON document for the whole grid.
//
//   ccsweep [--protocols WI,PU,CU] [--constructs lock,barrier,reduction]
//           [--locks tk,MCS,uc] [--barriers cb,db,tb,ct]
//           [--reductions sr,pr] [--procs 8,16,32] [--cu-threshold 2,4,8]
//           [--seeds 0x5eed,7] [--scale=X | --paper] [--jobs N]
//           [--profile] [--host-metrics] [--max-cycles N] [--out FILE]
//           [--progress] [--quiet]
//
// Every flag accepts `--flag value` and `--flag=value`. The grid is the
// cross product of the lists; --cu-threshold multiplies only CU cells
// (the threshold is inert under WI/PU and would duplicate cells), and
// --seeds multiplies only lock and reduction cells (barriers take no
// seed). --jobs N runs cells on N worker threads (0 = one per hardware
// thread); output is byte-identical for every N because cells are
// independent deterministic simulations emitted in submission order.
//
// Output (stdout by default): a schema-versioned document with one
// object per cell -- the same run-object schema as the benches' --json
// documents (see docs/schema.md), plus ok/error so a cell that threw
// (e.g. hit its --max-cycles deadlock backstop) is reported as a failed
// cell without aborting the sweep -- and a merged summary (counts,
// failed cell names, best cell per construct family). Exits 0 when every
// cell succeeded, 1 otherwise, 2 on usage errors.
//
// --host-metrics adds the opt-in per-cell "host" section (host ms,
// throughput, queue stats; docs/schema.md) -- host readings vary run to
// run, so documents with it are not byte-comparable. --progress paints a
// live cells-done/rate/ETA line on stderr (only when stderr is a TTY;
// --quiet suppresses it and the final summary line).
#include "harness/obs_session.hpp"
#include "harness/progress.hpp"
#include "harness/sweep.hpp"
#include "stats/json.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <limits>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

using namespace ccsim;

namespace {

struct Options {
  std::vector<proto::Protocol> protocols{proto::Protocol::WI,
                                         proto::Protocol::PU,
                                         proto::Protocol::CU};
  std::vector<harness::ConstructFamily> constructs{
      harness::ConstructFamily::Lock, harness::ConstructFamily::Barrier,
      harness::ConstructFamily::Reduction};
  std::vector<harness::LockKind> locks{harness::LockKind::Ticket,
                                       harness::LockKind::Mcs,
                                       harness::LockKind::UcMcs};
  std::vector<harness::BarrierKind> barriers{
      harness::BarrierKind::Central, harness::BarrierKind::Dissemination,
      harness::BarrierKind::Tree};
  std::vector<harness::ReductionKind> reductions{
      harness::ReductionKind::Sequential, harness::ReductionKind::Parallel};
  std::vector<unsigned> procs{16};
  std::vector<unsigned> cu_thresholds{4};
  std::vector<std::uint64_t> seeds;  ///< empty = the construct defaults
  double scale = 0.02;
  unsigned jobs = 1;
  bool profile = false;
  bool host_metrics = false;
  bool progress = false;
  bool quiet = false;
  Cycle max_cycles = 0;  ///< 0 = MachineConfig's default backstop
  std::string out = "-";
};

std::vector<std::string> split(const std::string& s) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos <= s.size()) {
    std::size_t comma = s.find(',', pos);
    if (comma == std::string::npos) comma = s.size();
    if (comma > pos) out.push_back(s.substr(pos, comma - pos));
    pos = comma + 1;
  }
  if (out.empty()) throw std::invalid_argument("empty list value");
  return out;
}

std::uint64_t parse_u64(const std::string& s, const char* what) {
  char* end = nullptr;
  const std::uint64_t v = std::strtoull(s.c_str(), &end, 0);
  // strtoull silently wraps "-1" to 2^64-1; reject signs explicitly.
  if (end == s.c_str() || *end != '\0' || s.find_first_of("+-") != std::string::npos)
    throw std::invalid_argument(std::string(what) + ": bad number \"" + s + '"');
  return v;
}

proto::Protocol parse_protocol(const std::string& s) {
  if (s == "WI" || s == "wi") return proto::Protocol::WI;
  if (s == "PU" || s == "pu") return proto::Protocol::PU;
  if (s == "CU" || s == "cu") return proto::Protocol::CU;
  throw std::invalid_argument("--protocols: unknown protocol \"" + s +
                              "\" (WI, PU, CU)");
}

harness::ConstructFamily parse_family(const std::string& s) {
  if (s == "lock") return harness::ConstructFamily::Lock;
  if (s == "barrier") return harness::ConstructFamily::Barrier;
  if (s == "reduction") return harness::ConstructFamily::Reduction;
  throw std::invalid_argument("--constructs: unknown construct \"" + s +
                              "\" (lock, barrier, reduction)");
}

harness::LockKind parse_lock(const std::string& s) {
  if (s == "tk") return harness::LockKind::Ticket;
  if (s == "MCS" || s == "mcs") return harness::LockKind::Mcs;
  if (s == "uc") return harness::LockKind::UcMcs;
  throw std::invalid_argument("--locks: unknown lock \"" + s +
                              "\" (tk, MCS, uc)");
}

harness::BarrierKind parse_barrier(const std::string& s) {
  if (s == "cb") return harness::BarrierKind::Central;
  if (s == "db") return harness::BarrierKind::Dissemination;
  if (s == "tb") return harness::BarrierKind::Tree;
  if (s == "ct") return harness::BarrierKind::CombiningTree;
  throw std::invalid_argument("--barriers: unknown barrier \"" + s +
                              "\" (cb, db, tb, ct)");
}

harness::ReductionKind parse_reduction(const std::string& s) {
  if (s == "sr") return harness::ReductionKind::Sequential;
  if (s == "pr") return harness::ReductionKind::Parallel;
  throw std::invalid_argument("--reductions: unknown reduction \"" + s +
                              "\" (sr, pr)");
}

std::string_view lock_tag(harness::LockKind k) {
  switch (k) {
    case harness::LockKind::Ticket: return "tk";
    case harness::LockKind::Mcs: return "MCS";
    case harness::LockKind::UcMcs: return "uc";
  }
  return "?";
}
std::string_view barrier_tag(harness::BarrierKind k) {
  switch (k) {
    case harness::BarrierKind::Central: return "cb";
    case harness::BarrierKind::Dissemination: return "db";
    case harness::BarrierKind::Tree: return "tb";
    case harness::BarrierKind::CombiningTree: return "ct";
  }
  return "?";
}
std::string_view reduction_tag(harness::ReductionKind k) {
  return k == harness::ReductionKind::Parallel ? "pr" : "sr";
}

/// Match `--flag=value` or `--flag value`.
bool take_value(const std::string& flag, int argc, char** argv, int& i,
                std::string& value) {
  const std::string a = argv[i];
  if (a.rfind(flag + "=", 0) == 0) {
    value = a.substr(flag.size() + 1);
    return true;
  }
  if (a == flag) {
    if (i + 1 >= argc) throw std::invalid_argument(flag + " needs a value");
    value = argv[++i];
    return true;
  }
  return false;
}

void usage() {
  std::printf(
      "usage: ccsweep [--protocols WI,PU,CU] [--constructs "
      "lock,barrier,reduction]\n"
      "               [--locks tk,MCS,uc] [--barriers cb,db,tb,ct]\n"
      "               [--reductions sr,pr] [--procs a,b,...]\n"
      "               [--cu-threshold a,b,...] [--seeds a,b,...]\n"
      "               [--scale=X | --paper] [--jobs N] [--profile]\n"
      "               [--host-metrics] [--max-cycles N] [--out FILE]\n"
      "               [--progress] [--quiet]\n");
}

Options parse_args(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    std::string v;
    if (take_value("--protocols", argc, argv, i, v)) {
      o.protocols.clear();
      for (const std::string& s : split(v)) o.protocols.push_back(parse_protocol(s));
    } else if (take_value("--constructs", argc, argv, i, v)) {
      o.constructs.clear();
      for (const std::string& s : split(v)) o.constructs.push_back(parse_family(s));
    } else if (take_value("--locks", argc, argv, i, v)) {
      o.locks.clear();
      for (const std::string& s : split(v)) o.locks.push_back(parse_lock(s));
    } else if (take_value("--barriers", argc, argv, i, v)) {
      o.barriers.clear();
      for (const std::string& s : split(v)) o.barriers.push_back(parse_barrier(s));
    } else if (take_value("--reductions", argc, argv, i, v)) {
      o.reductions.clear();
      for (const std::string& s : split(v))
        o.reductions.push_back(parse_reduction(s));
    } else if (take_value("--procs", argc, argv, i, v)) {
      o.procs.clear();
      for (const std::string& s : split(v)) {
        const std::uint64_t p = parse_u64(s, "--procs");
        if (p == 0 || p > 32)
          throw std::invalid_argument("--procs must be in [1, 32]");
        o.procs.push_back(static_cast<unsigned>(p));
      }
    } else if (take_value("--cu-threshold", argc, argv, i, v)) {
      o.cu_thresholds.clear();
      for (const std::string& s : split(v)) {
        const std::uint64_t t = parse_u64(s, "--cu-threshold");
        if (t == 0) throw std::invalid_argument("--cu-threshold must be > 0");
        o.cu_thresholds.push_back(static_cast<unsigned>(t));
      }
    } else if (take_value("--seeds", argc, argv, i, v)) {
      o.seeds.clear();
      for (const std::string& s : split(v)) o.seeds.push_back(parse_u64(s, "--seeds"));
    } else if (take_value("--scale", argc, argv, i, v)) {
      o.scale = std::atof(v.c_str());
      if (o.scale <= 0.0 || o.scale > 1.0)
        throw std::invalid_argument("--scale must be in (0, 1]");
    } else if (a == "--paper") {
      o.scale = 1.0;
    } else if (take_value("--jobs", argc, argv, i, v)) {
      o.jobs = static_cast<unsigned>(parse_u64(v, "--jobs"));
    } else if (a == "--profile") {
      o.profile = true;
    } else if (a == "--host-metrics") {
      o.host_metrics = true;
    } else if (a == "--progress") {
      o.progress = true;
    } else if (a == "--quiet") {
      o.quiet = true;
    } else if (take_value("--max-cycles", argc, argv, i, v)) {
      o.max_cycles = parse_u64(v, "--max-cycles");
      if (o.max_cycles == 0)
        throw std::invalid_argument("--max-cycles must be > 0");
    } else if (take_value("--out", argc, argv, i, v)) {
      o.out = v;
    } else if (a == "--help" || a == "-h") {
      usage();
      std::exit(0);
    } else {
      throw std::invalid_argument("unknown argument: " + a);
    }
  }
  return o;
}

std::uint64_t scaled(double scale, std::uint64_t paper_count) {
  const auto n =
      static_cast<std::uint64_t>(static_cast<double>(paper_count) * scale);
  return n < 32 ? 32 : n;
}

harness::MachineConfig machine(const Options& o, proto::Protocol proto,
                               unsigned p, unsigned cu_threshold) {
  harness::MachineConfig cfg;
  cfg.protocol = proto;
  cfg.nprocs = p;
  cfg.cu_threshold = cu_threshold;
  cfg.obs.profile = o.profile;
  cfg.obs.host_metrics = o.host_metrics;
  if (o.max_cycles != 0) cfg.max_cycles = o.max_cycles;
  return cfg;
}

std::string cell_name(harness::ConstructFamily fam, std::string_view tag,
                      proto::Protocol proto, unsigned p,
                      std::optional<unsigned> threshold,
                      std::optional<std::uint64_t> seed) {
  std::string s{harness::to_string(fam)};
  s += '/';
  s += tag;
  s += '/';
  s += proto::to_string(proto);
  if (threshold) s += "/t" + std::to_string(*threshold);
  s += "/p" + std::to_string(p);
  if (seed) s += "/s" + std::to_string(*seed);
  return s;
}

std::vector<harness::SweepJob> build_grid(const Options& o) {
  // Seed lists multiply only the constructs that consume a seed; an empty
  // list means "one cell with the construct's default seed".
  std::vector<std::optional<std::uint64_t>> seeds;
  if (o.seeds.empty())
    seeds.push_back(std::nullopt);
  else
    for (std::uint64_t s : o.seeds) seeds.push_back(s);

  std::vector<harness::SweepJob> jobs;
  for (proto::Protocol proto : o.protocols) {
    // The CU threshold is inert under WI/PU; sweeping it there would
    // emit duplicate cells under different names.
    std::vector<std::optional<unsigned>> thresholds;
    if (proto == proto::Protocol::CU)
      for (unsigned t : o.cu_thresholds) thresholds.push_back(t);
    else
      thresholds.push_back(std::nullopt);

    for (const auto& threshold : thresholds) {
      for (unsigned p : o.procs) {
        for (harness::ConstructFamily fam : o.constructs) {
          switch (fam) {
            case harness::ConstructFamily::Lock:
              for (harness::LockKind k : o.locks) {
                for (const auto& seed : seeds) {
                  harness::SweepJob j;
                  j.name = cell_name(fam, lock_tag(k), proto, p, threshold, seed);
                  j.machine = machine(o, proto, p, threshold.value_or(4));
                  j.family = fam;
                  j.lock = k;
                  j.lock_params.total_acquires = scaled(o.scale, 32000);
                  if (seed) j.lock_params.seed = *seed;
                  jobs.push_back(std::move(j));
                }
              }
              break;
            case harness::ConstructFamily::Barrier:
              for (harness::BarrierKind k : o.barriers) {
                harness::SweepJob j;
                j.name =
                    cell_name(fam, barrier_tag(k), proto, p, threshold, {});
                j.machine = machine(o, proto, p, threshold.value_or(4));
                j.family = fam;
                j.barrier = k;
                j.barrier_params.episodes = scaled(o.scale, 5000);
                jobs.push_back(std::move(j));
              }
              break;
            case harness::ConstructFamily::Reduction:
              for (harness::ReductionKind k : o.reductions) {
                for (const auto& seed : seeds) {
                  harness::SweepJob j;
                  j.name =
                      cell_name(fam, reduction_tag(k), proto, p, threshold, seed);
                  j.machine = machine(o, proto, p, threshold.value_or(4));
                  j.family = fam;
                  j.reduction = k;
                  j.reduction_params.rounds = scaled(o.scale, 5000);
                  if (seed) j.reduction_params.seed = *seed;
                  jobs.push_back(std::move(j));
                }
              }
              break;
          }
        }
      }
    }
  }
  return jobs;
}

void write_doc(std::ostream& os, const Options& o,
               const std::vector<harness::SweepJob>& jobs,
               const std::vector<harness::SweepResult>& results) {
  stats::JsonWriter w(os);
  w.begin_object();
  w.key("schema").value(std::uint64_t{1});
  w.key("tool").value("ccsweep");
  w.key("scale").value(o.scale);

  w.key("grid").begin_object();
  w.key("protocols").begin_array();
  for (proto::Protocol p : o.protocols) w.value(proto::to_string(p));
  w.end_array();
  w.key("constructs").begin_array();
  for (harness::ConstructFamily f : o.constructs) w.value(harness::to_string(f));
  w.end_array();
  w.key("procs").begin_array();
  for (unsigned p : o.procs) w.value(p);
  w.end_array();
  w.key("cu_thresholds").begin_array();
  for (unsigned t : o.cu_thresholds) w.value(t);
  w.end_array();
  if (!o.seeds.empty()) {
    w.key("seeds").begin_array();
    for (std::uint64_t s : o.seeds) w.value(s);
    w.end_array();
  }
  w.key("cells").value(static_cast<std::uint64_t>(jobs.size()));
  w.end_object();

  w.key("cells").begin_array();
  for (const harness::SweepResult& r : results) {
    w.begin_object();
    w.key("name").value(r.name);
    w.key("ok").value(r.ok);
    if (r.ok) {
      harness::write_run_fields(w, r.run);
    } else {
      w.key("fail_kind").value(harness::to_string(r.fail));
      w.key("error").value(r.error);
    }
    w.end_object();
  }
  w.end_array();

  // Merged summary: counts, failures by name, and the fastest cell per
  // construct family (ties resolve to the earliest submitted cell).
  std::size_t ok = 0;
  std::vector<const harness::SweepResult*> failed;
  std::uint64_t total_cycles = 0;
  const harness::SweepResult* best[3] = {nullptr, nullptr, nullptr};
  for (std::size_t i = 0; i < results.size(); ++i) {
    const harness::SweepResult& r = results[i];
    if (!r.ok) {
      failed.push_back(&r);
      continue;
    }
    ++ok;
    total_cycles += r.run.cycles;
    const auto fam = static_cast<std::size_t>(jobs[i].family);
    if (best[fam] == nullptr ||
        r.run.avg_latency < best[fam]->run.avg_latency)
      best[fam] = &r;
  }
  w.key("summary").begin_object();
  w.key("cells").value(static_cast<std::uint64_t>(results.size()));
  w.key("ok").value(static_cast<std::uint64_t>(ok));
  w.key("failed").value(static_cast<std::uint64_t>(failed.size()));
  if (!failed.empty()) {
    w.key("failed_cells").begin_array();
    for (const harness::SweepResult* r : failed) {
      w.begin_object();
      w.key("name").value(r->name);
      w.key("fail_kind").value(harness::to_string(r->fail));
      w.key("error").value(r->error);
      w.end_object();
    }
    w.end_array();
  }
  w.key("total_cycles").value(total_cycles);
  w.key("best").begin_object();
  for (std::size_t f = 0; f < 3; ++f) {
    if (best[f] == nullptr) continue;
    w.key(harness::to_string(static_cast<harness::ConstructFamily>(f)));
    w.begin_object();
    w.key("name").value(best[f]->name);
    w.key("avg_latency").value(best[f]->run.avg_latency);
    w.end_object();
  }
  w.end_object();
  w.end_object();

  w.end_object();
  os << '\n';
}

} // namespace

int main(int argc, char** argv) {
  try {
    const Options o = parse_args(argc, argv);
    const std::vector<harness::SweepJob> jobs = build_grid(o);
    harness::SweepOptions so;
    so.jobs = o.jobs;
    harness::ProgressReporter reporter(std::cerr, jobs.size());
    if (o.progress && !o.quiet)
      so.progress = [&reporter](std::size_t done, std::size_t total) {
        (void)total;
        reporter.update(done);
      };
    const std::vector<harness::SweepResult> results = harness::run_sweep(jobs, so);
    reporter.finish();

    std::size_t failed = 0;
    for (const harness::SweepResult& r : results)
      if (!r.ok) {
        ++failed;
        std::fprintf(stderr, "failed cell %s: %s\n", r.name.c_str(),
                     r.error.c_str());
      }

    if (o.out == "-") {
      write_doc(std::cout, o, jobs, results);
    } else {
      std::ofstream os(o.out);
      if (!os) throw std::runtime_error("cannot open output file: " + o.out);
      write_doc(os, o, jobs, results);
      if (!o.quiet)
        std::fprintf(stderr, "wrote %zu cell(s) to %s (%zu failed)\n",
                     results.size(), o.out.c_str(), failed);
    }
    return failed == 0 ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    usage();
    return 2;
  }
}
