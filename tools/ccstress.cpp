// ccstress: seeded randomized robustness tester.
//
//   ccstress [--protocols WI,PU,CU] [--seeds N | --seed-list a,b,...]
//            [--jitters 0,3,17] [--procs 16] [--segments 6] [--ops 48]
//            [--blocks 16] [--watchdog N] [--max-cycles N] [--jobs N]
//            [--no-check] [--inject-hang] [--host-metrics] [--out FILE]
//            [--progress] [--quiet]
//
// Fans a grid of (protocol x seed x network-jitter) stress cells through
// the parallel sweep engine. Every cell runs the segment-structured random
// workload of harness/stress.hpp -- randomized read/write/atomic/lock mixes
// separated by randomly chosen barriers and reduction rounds -- with the
// coherence-invariant checker and the deadlock/livelock watchdog enabled,
// under deterministic network-delivery jitter. The whole grid is a pure
// function of its seeds: the same invocation produces a byte-identical
// report for any --jobs value.
//
// --inject-hang appends one deliberately hung cell (a spin nobody
// satisfies) so CI can assert the watchdog path end to end.
//
// --host-metrics adds the opt-in per-cell "host" section (host ms,
// throughput, queue stats; docs/schema.md) -- host readings vary run to
// run, so documents with it are not byte-comparable. --progress paints a
// live cells-done/rate/ETA line on stderr (only when stderr is a TTY;
// --quiet suppresses it and the final summary line).
//
// Exit codes: 0 = every cell passed; 1 = some cell failed another way;
// 2 = usage error; 3 = a cell tripped the deadlock/livelock watchdog;
// 4 = a cell violated a coherence invariant. Invariant beats deadlock
// beats other when cells disagree.
#include "harness/obs_session.hpp"
#include "harness/progress.hpp"
#include "harness/stress.hpp"
#include "harness/sweep.hpp"
#include "sim/rng.hpp"
#include "stats/json.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <stdexcept>
#include <string>
#include <vector>

using namespace ccsim;

namespace {

struct Options {
  std::vector<proto::Protocol> protocols{proto::Protocol::WI,
                                         proto::Protocol::PU,
                                         proto::Protocol::CU};
  std::vector<std::uint64_t> seeds;  ///< filled from --seeds N if empty
  unsigned seed_count = 12;
  std::vector<Cycle> jitters{0, 3, 17};
  unsigned procs = 16;
  unsigned segments = 6;
  unsigned ops = 48;
  unsigned blocks = 16;
  Cycle watchdog = 2'000'000;
  Cycle max_cycles = 50'000'000;
  unsigned jobs = 1;
  bool check = true;
  bool inject_hang = false;
  bool host_metrics = false;
  bool progress = false;
  bool quiet = false;
  std::string out = "-";
};

std::vector<std::string> split(const std::string& s) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos <= s.size()) {
    std::size_t comma = s.find(',', pos);
    if (comma == std::string::npos) comma = s.size();
    if (comma > pos) out.push_back(s.substr(pos, comma - pos));
    pos = comma + 1;
  }
  if (out.empty()) throw std::invalid_argument("empty list value");
  return out;
}

std::uint64_t parse_u64(const std::string& s, const char* what) {
  char* end = nullptr;
  const std::uint64_t v = std::strtoull(s.c_str(), &end, 0);
  // strtoull silently wraps "-1" to 2^64-1; reject signs explicitly.
  if (end == s.c_str() || *end != '\0' || s.find_first_of("+-") != std::string::npos)
    throw std::invalid_argument(std::string(what) + ": bad number \"" + s + '"');
  return v;
}

proto::Protocol parse_protocol(const std::string& s) {
  if (s == "WI" || s == "wi") return proto::Protocol::WI;
  if (s == "PU" || s == "pu") return proto::Protocol::PU;
  if (s == "CU" || s == "cu") return proto::Protocol::CU;
  throw std::invalid_argument("--protocols: unknown protocol \"" + s +
                              "\" (WI, PU, CU)");
}

/// Match `--flag=value` or `--flag value`.
bool take_value(const std::string& flag, int argc, char** argv, int& i,
                std::string& value) {
  const std::string a = argv[i];
  if (a.rfind(flag + "=", 0) == 0) {
    value = a.substr(flag.size() + 1);
    return true;
  }
  if (a == flag) {
    if (i + 1 >= argc) throw std::invalid_argument(flag + " needs a value");
    value = argv[++i];
    return true;
  }
  return false;
}

void usage() {
  std::printf(
      "usage: ccstress [--protocols WI,PU,CU] [--seeds N | --seed-list "
      "a,b,...]\n"
      "                [--jitters 0,3,17] [--procs N] [--segments N] [--ops "
      "N]\n"
      "                [--blocks N] [--watchdog CYCLES] [--max-cycles N]\n"
      "                [--jobs N] [--no-check] [--inject-hang] [--host-metrics]\n"
      "                [--out FILE] [--progress] [--quiet]\n"
      "exit codes: 0 ok, 1 other failure, 2 usage, 3 watchdog/deadlock,\n"
      "            4 invariant violation\n");
}

Options parse_args(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    std::string v;
    if (take_value("--protocols", argc, argv, i, v)) {
      o.protocols.clear();
      for (const std::string& s : split(v)) o.protocols.push_back(parse_protocol(s));
    } else if (take_value("--seeds", argc, argv, i, v)) {
      o.seed_count = static_cast<unsigned>(parse_u64(v, "--seeds"));
      if (o.seed_count == 0) throw std::invalid_argument("--seeds must be > 0");
    } else if (take_value("--seed-list", argc, argv, i, v)) {
      o.seeds.clear();
      for (const std::string& s : split(v))
        o.seeds.push_back(parse_u64(s, "--seed-list"));
    } else if (take_value("--jitters", argc, argv, i, v)) {
      o.jitters.clear();
      for (const std::string& s : split(v))
        o.jitters.push_back(parse_u64(s, "--jitters"));
    } else if (take_value("--procs", argc, argv, i, v)) {
      const std::uint64_t p = parse_u64(v, "--procs");
      if (p == 0 || p > 32) throw std::invalid_argument("--procs must be in [1, 32]");
      o.procs = static_cast<unsigned>(p);
    } else if (take_value("--segments", argc, argv, i, v)) {
      o.segments = static_cast<unsigned>(parse_u64(v, "--segments"));
      if (o.segments == 0) throw std::invalid_argument("--segments must be > 0");
    } else if (take_value("--ops", argc, argv, i, v)) {
      o.ops = static_cast<unsigned>(parse_u64(v, "--ops"));
      if (o.ops == 0) throw std::invalid_argument("--ops must be > 0");
    } else if (take_value("--blocks", argc, argv, i, v)) {
      o.blocks = static_cast<unsigned>(parse_u64(v, "--blocks"));
      if (o.blocks == 0) throw std::invalid_argument("--blocks must be > 0");
    } else if (take_value("--watchdog", argc, argv, i, v)) {
      o.watchdog = parse_u64(v, "--watchdog");
    } else if (take_value("--max-cycles", argc, argv, i, v)) {
      o.max_cycles = parse_u64(v, "--max-cycles");
      if (o.max_cycles == 0) throw std::invalid_argument("--max-cycles must be > 0");
    } else if (take_value("--jobs", argc, argv, i, v)) {
      o.jobs = static_cast<unsigned>(parse_u64(v, "--jobs"));
    } else if (a == "--no-check") {
      o.check = false;
    } else if (a == "--inject-hang") {
      o.inject_hang = true;
    } else if (a == "--host-metrics") {
      o.host_metrics = true;
    } else if (a == "--progress") {
      o.progress = true;
    } else if (a == "--quiet") {
      o.quiet = true;
    } else if (take_value("--out", argc, argv, i, v)) {
      o.out = v;
    } else if (a == "--help" || a == "-h") {
      usage();
      std::exit(0);
    } else {
      throw std::invalid_argument("unknown argument: " + a);
    }
  }
  if (o.seeds.empty())
    for (unsigned s = 1; s <= o.seed_count; ++s) o.seeds.push_back(s);
  return o;
}

harness::MachineConfig stress_machine(const Options& o, proto::Protocol proto,
                                      std::uint64_t seed, Cycle jitter) {
  harness::MachineConfig cfg;
  cfg.protocol = proto;
  cfg.nprocs = o.procs;
  cfg.max_cycles = o.max_cycles;
  cfg.watchdog_stall_cycles = o.watchdog;
  cfg.obs.check_invariants = o.check;
  cfg.obs.host_metrics = o.host_metrics;
  cfg.net.jitter_max = jitter;
  // Each cell draws its own jitter stream; tied to the cell seed so one
  // seed replays the cell exactly, including the perturbation.
  cfg.net.jitter_seed = sim::Rng::derive(seed, 0x717e5);
  return cfg;
}

std::vector<harness::SweepJob> build_grid(const Options& o) {
  std::vector<harness::SweepJob> jobs;
  for (proto::Protocol proto : o.protocols) {
    for (Cycle jitter : o.jitters) {
      for (std::uint64_t seed : o.seeds) {
        harness::SweepJob j;
        j.name = "stress/" + std::string(proto::to_string(proto)) + "/j" +
                 std::to_string(jitter) + "/s" + std::to_string(seed);
        j.machine = stress_machine(o, proto, seed, jitter);
        harness::StressParams sp;
        sp.seed = seed;
        sp.segments = o.segments;
        sp.ops_per_segment = o.ops;
        sp.data_blocks = o.blocks;
        j.runner = [sp](const harness::MachineConfig& cfg) {
          return harness::run_stress_cell(cfg, sp);
        };
        jobs.push_back(std::move(j));
      }
    }
  }
  if (o.inject_hang) {
    // A cell that can never finish: processor 0 spins on a word nobody
    // writes. Exercises the watchdog/deadlock reporting path end to end.
    harness::SweepJob j;
    j.name = "stress/inject-hang";
    j.machine = stress_machine(o, o.protocols.front(), 1, 0);
    j.runner = [](const harness::MachineConfig& cfg) {
      harness::Machine m(cfg);
      const Addr a = m.alloc().allocate_on(0, mem::kWordSize, "hang.word");
      std::vector<harness::Machine::Program> ps;
      ps.push_back([a](cpu::Cpu& c) -> sim::Task {
        co_await c.spin_until(a, [](std::uint64_t v) { return v == 1; });
      });
      m.run(ps);
      return harness::RunResult{};
    };
    jobs.push_back(std::move(j));
  }
  return jobs;
}

void write_doc(std::ostream& os, const Options& o,
               const std::vector<harness::SweepResult>& results) {
  stats::JsonWriter w(os);
  w.begin_object();
  w.key("schema").value(std::uint64_t{1});
  w.key("tool").value("ccstress");

  w.key("grid").begin_object();
  w.key("protocols").begin_array();
  for (proto::Protocol p : o.protocols) w.value(proto::to_string(p));
  w.end_array();
  w.key("seeds").begin_array();
  for (std::uint64_t s : o.seeds) w.value(s);
  w.end_array();
  w.key("jitters").begin_array();
  for (Cycle j : o.jitters) w.value(j);
  w.end_array();
  w.key("procs").value(o.procs);
  w.key("segments").value(o.segments);
  w.key("ops_per_segment").value(o.ops);
  w.key("data_blocks").value(o.blocks);
  w.key("watchdog_stall_cycles").value(o.watchdog);
  w.key("check_invariants").value(o.check);
  w.key("cells").value(static_cast<std::uint64_t>(results.size()));
  w.end_object();

  w.key("cells").begin_array();
  for (const harness::SweepResult& r : results) {
    w.begin_object();
    w.key("name").value(r.name);
    w.key("ok").value(r.ok);
    if (r.ok) {
      harness::write_run_fields(w, r.run);
    } else {
      w.key("fail_kind").value(harness::to_string(r.fail));
      w.key("error").value(r.error);
    }
    w.end_object();
  }
  w.end_array();

  std::size_t ok = 0, deadlocks = 0, invariants = 0, other = 0;
  std::uint64_t total_checks = 0;
  for (const harness::SweepResult& r : results) {
    if (r.ok) {
      ++ok;
      total_checks += r.run.invariant_checks;
      continue;
    }
    switch (r.fail) {
      case harness::SweepResult::FailKind::Deadlock: ++deadlocks; break;
      case harness::SweepResult::FailKind::Invariant: ++invariants; break;
      default: ++other; break;
    }
  }
  w.key("summary").begin_object();
  w.key("cells").value(static_cast<std::uint64_t>(results.size()));
  w.key("ok").value(static_cast<std::uint64_t>(ok));
  w.key("deadlocks").value(static_cast<std::uint64_t>(deadlocks));
  w.key("invariant_violations").value(static_cast<std::uint64_t>(invariants));
  w.key("other_failures").value(static_cast<std::uint64_t>(other));
  w.key("invariant_checks").value(total_checks);
  w.end_object();

  w.end_object();
  os << '\n';
}

} // namespace

int main(int argc, char** argv) {
  try {
    const Options o = parse_args(argc, argv);
    const std::vector<harness::SweepJob> jobs = build_grid(o);
    harness::SweepOptions so;
    so.jobs = o.jobs;
    harness::ProgressReporter reporter(std::cerr, jobs.size());
    if (o.progress && !o.quiet)
      so.progress = [&reporter](std::size_t done, std::size_t total) {
        (void)total;
        reporter.update(done);
      };
    const std::vector<harness::SweepResult> results = harness::run_sweep(jobs, so);
    reporter.finish();

    bool any_deadlock = false, any_invariant = false, any_other = false;
    for (const harness::SweepResult& r : results) {
      if (r.ok) continue;
      std::fprintf(stderr, "failed cell %s [%s]:\n%s\n", r.name.c_str(),
                   std::string(harness::to_string(r.fail)).c_str(),
                   r.error.c_str());
      switch (r.fail) {
        case harness::SweepResult::FailKind::Deadlock: any_deadlock = true; break;
        case harness::SweepResult::FailKind::Invariant: any_invariant = true; break;
        default: any_other = true; break;
      }
    }

    if (o.out == "-") {
      write_doc(std::cout, o, results);
    } else {
      std::ofstream os(o.out);
      if (!os) throw std::runtime_error("cannot open output file: " + o.out);
      write_doc(os, o, results);
      if (!o.quiet)
        std::fprintf(stderr, "wrote %zu cell(s) to %s\n", results.size(),
                     o.out.c_str());
    }
    if (any_invariant) return 4;
    if (any_deadlock) return 3;
    if (any_other) return 1;
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    usage();
    return 2;
  }
}
